// Tests for the parallel profiling pipeline: fanning runs out over a
// worker pool must be an implementation detail, invisible in every
// observable result.
package inlinec_test

import (
	"bytes"
	"runtime"
	"testing"

	"inlinec"
	"inlinec/internal/bench"
)

// serializeProfile renders a profile through the on-disk format, the
// strictest equality available (it covers every count the profile holds).
func serializeProfile(t *testing.T, p *inlinec.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelProfilingDeterminism: the worker pool produces byte-identical
// serialized profiles to a serial run, across suite benchmarks and worker
// counts (including more workers than inputs).
func TestParallelProfilingDeterminism(t *testing.T) {
	for _, name := range []string{"wc", "tee"} {
		bm := bench.Get(name)
		if bm == nil {
			t.Fatalf("missing suite benchmark %s", name)
		}
		inputs := bm.Inputs
		if testing.Short() && len(inputs) > 6 {
			inputs = inputs[:6]
		}
		p, err := bm.Compile()
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = 1
		serial, err := p.ProfileInputs(inputs...)
		if err != nil {
			t.Fatal(err)
		}
		want := serializeProfile(t, serial)
		for _, par := range []int{0, 2, 4, len(inputs) + 3} {
			p.Parallelism = par
			prof, err := p.ProfileInputs(inputs...)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", name, par, err)
			}
			if got := serializeProfile(t, prof); !bytes.Equal(got, want) {
				t.Errorf("%s: parallelism %d profile differs from serial run:\n--- serial ---\n%s--- parallel ---\n%s",
					name, par, want, got)
			}
		}
	}
}

// TestParallelRunAllDeterminism: RunAll with a worker pool returns results
// in suite order with the same measurements a serial pass produces. Uses a
// single capped run per benchmark to keep the suite fast.
func TestParallelRunAllDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is not short")
	}
	cfg := bench.DefaultConfig()
	cfg.MaxRuns = 1
	cfg.Parallelism = 1
	serial, err := bench.RunAll(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	parallel, err := bench.RunAll(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name {
			t.Fatalf("result %d out of order: %s vs %s", i, s.Name, p.Name)
		}
		if s.AvgIL != p.AvgIL || s.AvgILAfter != p.AvgILAfter ||
			s.Expansions != p.Expansions || s.CallDec != p.CallDec || s.CodeInc != p.CodeInc {
			t.Errorf("%s: parallel measurements differ from serial: %+v vs %+v", s.Name, s, p)
		}
	}
	// The rendered tables — what ilbench prints — must match byte for byte.
	if st, pt := bench.AllTables(serial), bench.AllTables(parallel); st != pt {
		t.Errorf("tables differ between serial and parallel runs:\n%s\nvs\n%s", st, pt)
	}
}
