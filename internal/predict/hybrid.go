package predict

import (
	"math"

	"inlinec/internal/profile"
)

// Hybrid merges a measured profile (resolved from a profile database
// against the current module) with a synthesized prediction, per the
// hybrid -profile-mode contract: sites whose fingerprint resolution
// reported `exact` keep their measured weights untouched — down to the
// raw totals, so their averaged weights (and therefore their inlining
// decisions) are bit-identical to measured mode — while `moved`,
// `dropped`, and new sites take the prediction. exact maps resolved
// call-site ids to whether the source position matched (true = exact,
// false = moved); ids absent from the map never resolved at all.
//
// Function entry counts have no source position to move, so measured
// node weights win wherever the database still knows the function;
// functions the database never saw get predicted node weights.
//
// A nil or empty measured profile degrades to the pure prediction.
func Hybrid(pred, measured *profile.Profile, exact map[int]bool) *profile.Profile {
	if measured == nil || measured.Runs <= 0 {
		return pred
	}
	runs := measured.Runs
	cnt := func(avg float64) int64 { return int64(math.Round(avg * float64(runs))) }

	out := profile.NewProfile()
	out.Runs = runs
	// Scalar totals describe the measured runs; the call totals are
	// recomputed below so they stay consistent with the merged sites.
	out.TotalIL = measured.TotalIL
	out.TotalControl = measured.TotalControl
	out.TotalExtern = measured.TotalExtern
	out.TotalPtr = measured.TotalPtr
	out.TotalTruncated = measured.TotalTruncated
	out.MaxStack = measured.MaxStack

	for id, n := range measured.SiteCounts {
		if exact[id] {
			out.SiteCounts[id] = n
		}
	}
	for id := range pred.SiteCounts {
		if _, keep := out.SiteCounts[id]; keep {
			continue
		}
		if c := cnt(pred.SiteWeight(id)); c > 0 {
			out.SiteCounts[id] = c
		}
	}
	for _, n := range out.SiteCounts {
		out.TotalCalls += n
	}
	out.TotalReturns = out.TotalCalls

	for id, targets := range measured.PtrTargets {
		if !exact[id] {
			continue
		}
		for t, n := range targets {
			out.AddPtrTarget(id, t, n)
		}
	}
	for id, targets := range pred.PtrTargets {
		if _, keep := out.PtrTargets[id]; keep {
			continue
		}
		if exact[id] {
			// An exact site without measured target data keeps its
			// measured (empty) resolution rather than a guess.
			continue
		}
		for t := range targets {
			if c := cnt(pred.SiteTargetWeight(id, t)); c > 0 {
				out.AddPtrTarget(id, t, c)
			}
		}
	}

	for name, n := range measured.FuncCounts {
		out.FuncCounts[name] = n
	}
	for name := range pred.FuncCounts {
		if _, ok := out.FuncCounts[name]; ok {
			continue
		}
		if c := cnt(pred.FuncWeight(name)); c > 0 {
			out.FuncCounts[name] = c
		}
	}
	return out
}
