package inline

import (
	"strings"
	"testing"

	"inlinec/internal/callgraph"
	"inlinec/internal/interp"
	"inlinec/internal/ir"
	"inlinec/internal/irgen"
	"inlinec/internal/opt"
	"inlinec/internal/parser"
	"inlinec/internal/profile"
	"inlinec/internal/sema"
)

// build compiles source and profiles it once, returning everything the
// expander needs.
func build(t *testing.T, src string) (*ir.Module, *callgraph.Graph, *profile.Profile) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	opt.PreInline(mod)
	m, err := interp.NewMachine(mod, interp.NewEnv(), interp.Options{})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	prof := profile.NewProfile()
	prof.Add(st)
	return mod, callgraph.Build(mod, prof), prof
}

func runModule(t *testing.T, mod *ir.Module) (string, *profile.RunStats) {
	t.Helper()
	m, err := interp.NewMachine(mod, interp.NewEnv(), interp.Options{})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Env.Stdout.String(), st
}

const chainSrc = `
extern int printf(char *fmt, ...);
int bottom(int x) { return x + 1; }
int middle(int x) { return bottom(x) * 2; }
int top(int x) { return middle(x) + bottom(x); }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 100; i++) s += top(i);
    printf("%d\n", s);
    return 0;
}
`

func TestLinearizationOrder(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	res, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 4.0})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	pos := make(map[string]int)
	for i, n := range res.Order {
		pos[n] = i
	}
	// Weights: bottom 200, middle 100, top 100, main 1. bottom must lead;
	// among the 100s, middle (height 1) precedes top (height 2); main last.
	if pos["bottom"] != 0 {
		t.Errorf("order = %v; bottom must be first", res.Order)
	}
	if !(pos["middle"] < pos["top"] && pos["top"] < pos["main"]) {
		t.Errorf("order = %v; want middle < top < main", res.Order)
	}
}

func TestMultiLevelExpansion(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	before, stBefore := runModule(t, mod)
	res, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 6.0})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	after, stAfter := runModule(t, mod)
	if before != after {
		t.Fatalf("output changed: %q -> %q", before, after)
	}
	// All four user arcs are hot; everything should be expanded and all
	// user calls eliminated.
	if stAfter.Calls >= stBefore.Calls {
		t.Errorf("calls %d -> %d; want decrease", stBefore.Calls, stAfter.Calls)
	}
	userCallsAfter := stAfter.Calls - stAfter.ExternCalls
	if userCallsAfter != 0 {
		t.Errorf("remaining user calls = %d, want 0 (full multi-level inlining)", userCallsAfter)
	}
	if res.NumExpansions != 4 {
		t.Errorf("expansions = %d, want 4 (one per arc, thanks to linear order)", res.NumExpansions)
	}
}

func TestPathQualifiedRenaming(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	if _, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 6.0}); err != nil {
		t.Fatalf("expand: %v", err)
	}
	// main absorbed top (which had absorbed middle/bottom): its slots must
	// carry path-qualified names like "top.middle.bottom.x".
	mainFn := mod.Func("main")
	var sawQualified, sawDeep bool
	for _, s := range mainFn.Slots {
		if strings.Contains(s.Name, ".") {
			sawQualified = true
		}
		if strings.Count(s.Name, ".") >= 2 {
			sawDeep = true
		}
	}
	if !sawQualified || !sawDeep {
		t.Errorf("slot names lack path qualification: %+v", mainFn.Slots)
	}
}

func TestCallReturnBecomeJumps(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	if _, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 6.0}); err != nil {
		t.Fatalf("expand: %v", err)
	}
	mainFn := mod.Func("main")
	for i := range mainFn.Code {
		if mainFn.Code[i].Op == ir.OpCall && mainFn.Code[i].Sym == "top" {
			t.Error("call to top survived expansion")
		}
		if mainFn.Code[i].Op == ir.OpRet && i < len(mainFn.Code)-2 {
			// Inlined returns must have been rewritten to jumps; only the
			// function's own returns remain (at the tail after lowering).
			// A mid-body ret would have been the callee's.
			// (The lowered main has exactly one ret from `return 0`— plus
			// the implicit one.)
			continue
		}
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRejectionReasons(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int hot(int x) { return x + 1; }
int coldf(int x) { return x - 1; }
int selfrec(int n) { if (n <= 0) return 0; return selfrec(n - 1); }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 100; i++) s += hot(i);
    if (s < 0) s = coldf(s);
    s += selfrec(3);
    printf("%d\n", s);
    return 0;
}
`
	mod, g, prof := build(t, src)
	res, err := Expand(mod, g, prof, DefaultParams())
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	reasons := make(map[string]string)
	for _, d := range res.Decisions {
		if !d.Accepted {
			reasons[d.Caller+"->"+d.Callee] = d.Reason
		}
	}
	// coldf has weight 0, so linearization places it after main and the
	// arc main->coldf is not_expandable before it ever reaches the cost
	// function; either way it must not be expanded.
	for _, d := range res.Expanded {
		if d.Callee == "coldf" {
			t.Error("cold callee expanded")
		}
	}
	// selfrec->selfrec is not_expandable and never reaches Decisions;
	// main->selfrec (weight 1) is below threshold.
	if r, ok := reasons["main->selfrec"]; !ok || !strings.Contains(r, "threshold") {
		t.Errorf("main->selfrec reason = %q", r)
	}
	for _, d := range res.Expanded {
		if d.Callee == "selfrec" {
			t.Error("recursive callee expanded")
		}
	}
}

func TestBodyCacheStats(t *testing.T) {
	// Many callers of the same callee: the second and later fetches hit.
	src := `
extern int printf(char *fmt, ...);
int shared(int x) { return x * 3; }
int a(int x) { return shared(x) + 1; }
int b(int x) { return shared(x) + 2; }
int c(int x) { return shared(x) + 3; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 50; i++) s += a(i) + b(i) + c(i);
    printf("%d\n", s);
    return 0;
}
`
	mod, g, prof := build(t, src)
	res, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 8.0})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if res.Cache.Lookups == 0 {
		t.Fatal("no cache lookups recorded")
	}
	if res.Cache.Hits == 0 {
		t.Errorf("expected cache hits when one callee is absorbed repeatedly: %+v", res.Cache)
	}
	if res.Cache.Hits+res.Cache.Misses != res.Cache.Lookups {
		t.Errorf("inconsistent cache stats: %+v", res.Cache)
	}
}

func TestTinyCacheEvicts(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	res, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 6.0, CacheCapacity: 1})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if res.Cache.Evictions == 0 && res.Cache.Misses > 1 {
		t.Errorf("capacity-1 cache with %d misses must evict: %+v", res.Cache.Misses, res.Cache)
	}
}

func TestHeuristicLeaf(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	res, err := Expand(mod, g, prof, Params{Heuristic: HeuristicLeaf, SizeLimitFactor: 6.0})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, d := range res.Expanded {
		if d.Callee != "bottom" {
			t.Errorf("leaf heuristic expanded non-leaf %s", d.Callee)
		}
	}
	if len(res.Expanded) == 0 {
		t.Error("leaf heuristic expanded nothing")
	}
	out, _ := runModule(t, mod)
	if !strings.Contains(out, "\n") {
		t.Error("program broken after leaf inlining")
	}
}

func TestHeuristicSmall(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	res, err := Expand(mod, g, prof, Params{
		Heuristic: HeuristicSmall, SmallCalleeLimit: 10, SizeLimitFactor: 6.0,
	})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, d := range res.Expanded {
		if d.Callee == "top" {
			t.Errorf("small-callee heuristic expanded large callee %s", d.Callee)
		}
	}
}

func TestNoLinearOrderStillCorrect(t *testing.T) {
	ordered, g1, prof1 := build(t, chainSrc)
	free, g2, prof2 := build(t, chainSrc)
	wantOut, _ := runModule(t, ordered)

	r1, err := Expand(ordered, g1, prof1, Params{WeightThreshold: 1, SizeLimitFactor: 6.0})
	if err != nil {
		t.Fatalf("ordered expand: %v", err)
	}
	r2, err := Expand(free, g2, prof2, Params{WeightThreshold: 1, SizeLimitFactor: 6.0, NoLinearOrder: true})
	if err != nil {
		t.Fatalf("free expand: %v", err)
	}
	o1, _ := runModule(t, ordered)
	o2, _ := runModule(t, free)
	if o1 != wantOut || o2 != wantOut {
		t.Fatalf("outputs diverge: ordered %q free %q want %q", o1, o2, wantOut)
	}
	// The paper's point: without the order, expansion work is >= ordered
	// (re-expansion of absorbed bodies).
	if r2.NumExpansions < r1.NumExpansions {
		t.Errorf("free expansions %d < ordered %d", r2.NumExpansions, r1.NumExpansions)
	}
}

func TestStackBoundBlocksRecursiveFrames(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int bigframe(int n) {
    int pad[1024];
    pad[0] = n;
    return pad[0] + 1;
}
int spin(int n) {
    if (n <= 0) return 0;
    return spin(n - 1) + bigframe(n);
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 50; i++) s += spin(4);
    printf("%d\n", s);
    return 0;
}
`
	mod, g, prof := build(t, src)
	res, err := Expand(mod, g, prof, Params{
		WeightThreshold: 1, SizeLimitFactor: 8.0, StackBound: 4096,
		ConservativeRecursion: false,
	})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	// spin->bigframe would put an 8 KiB frame inside the recursion of
	// spin... but the hazard is about the CALLEE being recursive. Here the
	// callee bigframe is not recursive, so expansion is allowed — and the
	// recursion in spin then carries the 8 KiB frame per level. The
	// conservative mode blocks it because bigframe sits on a $$$-cycle.
	modC, gC, profC := build(t, src)
	resC, err := Expand(modC, gC, profC, Params{
		WeightThreshold: 1, SizeLimitFactor: 8.0, StackBound: 4096,
		ConservativeRecursion: true,
	})
	if err != nil {
		t.Fatalf("conservative expand: %v", err)
	}
	expandedInto := func(r *Result, callee string) bool {
		for _, d := range r.Expanded {
			if d.Callee == callee {
				return true
			}
		}
		return false
	}
	if expandedInto(resC, "bigframe") {
		t.Error("conservative mode must reject the big-frame callee")
	}
	_ = res
	for _, r := range resC.Decisions {
		if r.Callee == "bigframe" && r.Accepted {
			t.Errorf("bigframe accepted under conservative recursion")
		}
	}
}

func TestExpandEmptyProfile(t *testing.T) {
	// With an all-zero profile, profile-guided selection expands nothing.
	mod, _, _ := build(t, chainSrc)
	fresh := callgraph.Build(mod, profile.NewProfile())
	res, err := Expand(mod, fresh, profile.NewProfile(), DefaultParams())
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(res.Expanded) != 0 {
		t.Errorf("expanded %d arcs with zero weights", len(res.Expanded))
	}
	if res.FinalSize != res.OriginalSize {
		t.Errorf("size changed with no expansions")
	}
}
