// Package obs is the reproduction's zero-dependency observability layer:
// a lock-cheap metrics registry (counters, gauges, histograms) with
// Prometheus text-format export, phase spans with Chrome trace-event
// export, the typed inline-decision trace the expander emits, and a
// structured HTTP request logger. Everything here is stdlib-only and
// safe for concurrent use; instrumented code paths must behave
// identically whether or not a registry is attached (a nil *Registry is
// a valid no-op receiver for every recording method).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType distinguishes the Prometheus families a Registry exports.
type MetricType string

// The supported metric families.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing value. Add is a single atomic
// op, cheap enough to leave on in hot paths.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Negative deltas are ignored (counters
// never go down).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Set/Value are single
// atomic ops on the float's bit pattern.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// SetMax raises the gauge to v if v exceeds the current value. The
// compare-and-swap loop makes it safe for concurrent writers racing to
// publish a high-water mark: the largest value always wins.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts per upper bound, plus sum and count. Observe takes one
// short mutex; the bucket set is fixed at registration.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []int64   // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the sum, and the count.
func (h *Histogram) snapshot() (cum []int64, sum float64, count int64) {
	if h == nil {
		return nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var acc int64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// DefBuckets are the default histogram bounds, in seconds: they span
// microsecond WAL fsyncs to multi-second benchmark phases.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are default bounds for count-valued histograms (batch
// sizes, wave widths).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metric is one instance within a family: a concrete label set plus the
// value container.
type metric struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all instances sharing one metric name.
type family struct {
	name string
	typ  MetricType
	help string
	inst map[string]*metric
	keys []string // sorted label strings, for deterministic export
}

// Registry holds metric families and phase spans. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid no-op receiver
// for every method, so instrumented code never branches on "is
// observability on" — it just records.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	names []string // sorted family names
	epoch time.Time
	spans []Span
}

// NewRegistry returns an empty registry whose span clock starts now.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), epoch: time.Now()}
}

// renderLabels turns k,v pairs into a canonical {k="v",...} string.
// Pairs are sorted by key so the same label set always renders the same.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// get returns the metric instance for (name, labels), creating the
// family and instance on first use. Type and help are fixed by the
// first registration; later mismatched types panic (a programming
// error, not an operational condition). The value container — including
// a histogram's buckets — is fully constructed before the instance
// becomes visible, so a concurrent scrape can never observe a
// half-built metric.
func (r *Registry) get(name string, typ MetricType, help string, bounds []float64, kv []string) *metric {
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help, inst: make(map[string]*metric)}
		r.fams[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.inst[labels]
	if !ok {
		m = &metric{labels: labels}
		switch typ {
		case TypeCounter:
			m.c = &Counter{}
		case TypeGauge:
			m.g = &Gauge{}
		case TypeHistogram:
			if bounds == nil {
				bounds = DefBuckets
			}
			b := append([]float64(nil), bounds...)
			sort.Float64s(b)
			m.h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		}
		f.inst[labels] = m
		f.keys = append(f.keys, labels)
		sort.Strings(f.keys)
	}
	return m
}

// Counter returns the named counter, creating it on first use. The
// optional kv arguments are label key/value pairs.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, TypeCounter, help, nil, kv).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, TypeGauge, help, nil, kv).g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (nil = DefBuckets). Buckets are fixed
// by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, TypeHistogram, help, bounds, kv).h
}

// formatFloat renders a sample value the way Prometheus text format
// expects: integral values without an exponent, everything else in
// shortest-round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in text exposition format,
// sorted by metric name and label set, so successive scrapes of an
// unchanged registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot every family's metadata and metric pointers while holding
	// the lock: get() mutates f.inst and f.keys under r.mu, so reading
	// them unlocked races with first-seen label registrations. The value
	// containers themselves (Counter/Gauge/Histogram) are internally
	// synchronized and immutable once published, so rendering — which
	// does formatted I/O — can proceed without the lock.
	type famSnap struct {
		name string
		typ  MetricType
		help string
		ms   []*metric
	}
	r.mu.Lock()
	snaps := make([]famSnap, 0, len(r.names))
	for _, n := range r.names {
		f := r.fams[n]
		ms := make([]*metric, len(f.keys))
		for i, key := range f.keys {
			ms[i] = f.inst[key]
		}
		snaps = append(snaps, famSnap{name: f.name, typ: f.typ, help: f.help, ms: ms})
	}
	r.mu.Unlock()
	for _, f := range snaps {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range f.ms {
			switch f.typ {
			case TypeCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, m.labels, m.c.Value())
			case TypeGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, m.labels, formatFloat(m.g.Value()))
			case TypeHistogram:
				if m.h == nil {
					continue
				}
				cum, sum, count := m.h.snapshot()
				for i, bound := range m.h.bounds {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						mergeLabels(m.labels, fmt.Sprintf("le=%q", formatFloat(bound))), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					mergeLabels(m.labels, `le="+Inf"`), cum[len(cum)-1])
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, m.labels, formatFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, m.labels, count)
			}
		}
	}
	return nil
}

// mergeLabels splices an extra label into an already-rendered label
// string.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// CounterValue returns the current value of a counter instance, or 0 if
// it was never registered. Useful for cross-checking exports.
func (r *Registry) CounterValue(name string, kv ...string) int64 {
	if r == nil {
		return 0
	}
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil || f.typ != TypeCounter {
		return 0
	}
	m := f.inst[labels]
	if m == nil {
		return 0
	}
	return m.c.Value()
}
