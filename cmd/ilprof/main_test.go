package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inlinec"
)

const prog = `
extern int printf(char *fmt, ...);
int work(int x) { return x * x; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i++) s += work(i);
    printf("%d\n", s);
    return 0;
}
`

func runCLI(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestProfilerBasic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(prog), 0o644)
	code, out, errb := runCLI(t, []string{p}, "")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if !strings.Contains(out, "work") || !strings.Contains(out, "25.0") {
		t.Errorf("profile output = %q", out)
	}
}

func TestProfilerSites(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(prog), 0o644)
	code, out, _ := runCLI(t, []string{"-sites", p}, "")
	if code != 0 {
		t.Fatal("nonzero exit")
	}
	if !strings.Contains(out, "call sites") || !strings.Contains(out, "main") {
		t.Errorf("sites output = %q", out)
	}
}

func TestProfilerMultipleInputsAndOutputFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "cat.c")
	os.WriteFile(p, []byte(`
extern int getchar();
int seen;
int note(int c) { seen++; return c; }
int main() {
    int c;
    while ((c = getchar()) != -1) note(c);
    return 0;
}
`), 0o644)
	in1 := filepath.Join(dir, "a.txt")
	in2 := filepath.Join(dir, "b.txt")
	os.WriteFile(in1, []byte("xx"), 0o644)     // 2 calls
	os.WriteFile(in2, []byte("yyyyyy"), 0o644) // 6 calls
	profPath := filepath.Join(dir, "out.prof")
	code, out, errb := runCLI(t, []string{"-in", in1, "-in", in2, "-o", profPath, p}, "")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	// Averaged over two runs: note entered (2+6)/2 = 4 times.
	if !strings.Contains(out, "2 run(s)") {
		t.Errorf("runs missing from %q", out)
	}
	data, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	prof, err := inlinec.ReadProfile(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := prof.FuncWeight("note"); got != 4 {
		t.Errorf("note weight = %v, want 4", got)
	}
}

func TestProfilerErrors(t *testing.T) {
	if code, _, _ := runCLI(t, nil, ""); code == 0 {
		t.Error("no args must fail")
	}
	if code, _, _ := runCLI(t, []string{"nope.c"}, ""); code == 0 {
		t.Error("missing file must fail")
	}
}
