package sema

import (
	"strings"
	"testing"

	"inlinec/internal/parser"
)

func check(t *testing.T, src string) (*Program, error) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	p, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Errorf("expected error containing %q for:\n%s", fragment, src)
		return
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err.Error(), fragment)
	}
}

func TestCheckBasicProgram(t *testing.T) {
	p := mustCheck(t, `
extern int printf(char *fmt, ...);
int helper(int x) { return x * 2; }
int main() { printf("%d\n", helper(21)); return 0; }
`)
	if len(p.Funcs) != 2 {
		t.Errorf("defined funcs = %d, want 2", len(p.Funcs))
	}
	if len(p.Externs) != 1 || p.Externs[0].Name != "printf" {
		t.Errorf("externs = %v", p.Externs)
	}
	if p.Main == nil || p.Main.Name != "main" {
		t.Error("main not identified")
	}
}

func TestCheckPrototypeMerging(t *testing.T) {
	p := mustCheck(t, `
int later(int x);
int caller() { return later(1); }
int later(int x) { return x + 1; }
`)
	if len(p.Funcs) != 2 {
		t.Errorf("funcs = %d, want 2 (prototype merged with definition)", len(p.Funcs))
	}
	if len(p.Externs) != 0 {
		t.Errorf("externs = %d, want 0", len(p.Externs))
	}
}

func TestCheckConflictingPrototypes(t *testing.T) {
	wantError(t, `
int f(int x);
char f(int x) { return 'a'; }
`, "conflicting declarations")
}

func TestCheckAddressTaken(t *testing.T) {
	p := mustCheck(t, `
int used(int x) { return x; }
int stored(int x) { return x; }
int direct(int x) { return x; }
int (*g)(int) = stored;
int take(int (*f)(int)) { return f(1); }
int main() { g = used; return take(used) + direct(2); }
`)
	taken := make(map[string]bool)
	for fd := range p.AddressTaken {
		taken[fd.Name] = true
	}
	if !taken["used"] || !taken["stored"] {
		t.Errorf("address-taken = %v, want used and stored", taken)
	}
	if taken["direct"] {
		t.Error("direct is only called directly; must not be address-taken")
	}
}

func TestCheckScopesAndShadowing(t *testing.T) {
	mustCheck(t, `
int x;
int f(int x) {
    int y;
    y = x;
    { int x; x = 3; y += x; }
    return y;
}
`)
	wantError(t, "int f() { int a; int a; return 0; }", "redeclared")
	wantError(t, "int f(int a, int a) { return a; }", "redeclared")
	wantError(t, "int f() { { int b; } return b; }", "undefined")
}

func TestCheckTypeErrors(t *testing.T) {
	wantError(t, "int f() { return *3; }", "dereference")
	wantError(t, "struct S { int a; }; int f() { struct S s; return s + 1; }", "invalid operands")
	wantError(t, "int f() { undefined_var = 1; return 0; }", "undefined")
	wantError(t, "int f(int a) { 5 = a; return 0; }", "lvalue")
	wantError(t, "struct S { int a; }; int f() { struct S s; return s.b; }", "no field")
	wantError(t, "int f() { int x; return x.a; }", "requires a struct")
	wantError(t, "int f() { int x; return x->a; }", "pointer to struct")
}

func TestCheckCallErrors(t *testing.T) {
	wantError(t, "int g(int a) { return a; } int f() { return g(); }", "number of arguments")
	wantError(t, "int g(int a) { return a; } int f() { return g(1, 2); }", "number of arguments")
	wantError(t, "int f() { int x; x = 3; return x(1); }", "not a function")
	wantError(t, "int f() { return missing(1); }", "undefined")
	// Variadic externs take extra args freely.
	mustCheck(t, `extern int printf(char *f, ...); int m() { return printf("%d %d", 1, 2); }`)
}

func TestCheckControlFlowErrors(t *testing.T) {
	wantError(t, "int f() { break; return 0; }", "break outside")
	wantError(t, "int f() { continue; return 0; }", "continue outside")
	wantError(t, "int f() { goto nowhere; return 0; }", "undefined label")
	wantError(t, `int f(int x) { switch (x) { default: return 1; default: return 2; } }`, "duplicate default")
	wantError(t, `int f(int x) { switch (x) { case 1: return 1; case 1: return 2; } }`, "duplicate case")
	wantError(t, `int f(int x) { lbl: x++; lbl: x--; return x; }`, "redefined")
	// break inside a switch is fine.
	mustCheck(t, `int f(int x) { switch (x) { case 1: break; } return 0; }`)
}

func TestCheckReturnTypes(t *testing.T) {
	wantError(t, "int f() { return; }", "must return a value")
	wantError(t, "void f() { return 3; }", "void function")
	wantError(t, "struct S { int a; }; struct S g; int f() { return g; }", "cannot return")
	mustCheck(t, "void f() { return; }")
	mustCheck(t, "char f() { return 300; }") // narrowing allowed, C-style
}

func TestCheckGlobalInitializers(t *testing.T) {
	mustCheck(t, `
int a = 42;
int b = -7;
char msg[] = "hi";
char *p = "str";
int tab[3] = {1, 2, 3};
int fn(int x) { return x; }
int (*fp)(int) = fn;
`)
	wantError(t, "int a = a + 1;", "must be constant")
	wantError(t, "int g() { return 1; } int a = g();", "must be constant")
}

func TestCheckIncompleteTypes(t *testing.T) {
	wantError(t, "struct Never; struct Never v;", "incomplete type")
	// Pointers to forward-declared structs are fine.
	mustCheck(t, "struct Fwd; struct Fwd *p;")
}

func TestCheckVoidVariables(t *testing.T) {
	wantError(t, "int f() { void v; return 0; }", "void type")
}

func TestCheckConditionTypes(t *testing.T) {
	wantError(t, "struct S { int a; }; int f() { struct S s; if (s) return 1; return 0; }", "scalar")
	mustCheck(t, "int f(char *p) { if (p) return 1; return 0; }")
	mustCheck(t, "int f(int x) { return x ? 1 : 2; }")
}
