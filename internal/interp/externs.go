package interp

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"unicode/utf8"
)

// ExternImpl is the Go implementation of an external function. The
// compiler never sees these bodies — exactly the paper's "external
// function" situation, summarized by the $$$ node in the call graph.
type ExternImpl func(m *Machine, args []int64) (int64, error)

// Externs is the standard library available to MiniC programs. Names
// mirror the UNIX routines the paper's benchmarks leaned on.
var Externs = map[string]ExternImpl{
	// --- character and stream I/O ----------------------------------------
	"getchar": func(m *Machine, args []int64) (int64, error) {
		return m.Env.Getchar(), nil
	},
	"putchar": func(m *Machine, args []int64) (int64, error) {
		return m.Env.Putc(byte(args[0]), FdStdout), nil
	},
	"puts": func(m *Machine, args []int64) (int64, error) {
		s, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		m.Env.Stdout.Write(s)
		m.Env.Stdout.WriteByte('\n')
		return int64(len(s) + 1), nil
	},
	"printf": func(m *Machine, args []int64) (int64, error) {
		return m.doPrintf(FdStdout, args[0], args[1:])
	},
	"fprintf": func(m *Machine, args []int64) (int64, error) {
		return m.doPrintf(args[0], args[1], args[2:])
	},
	"sprintf": func(m *Machine, args []int64) (int64, error) {
		b, err := m.formatPrintf(args[1], args[2:])
		if err != nil {
			return 0, err
		}
		n := len(b)
		if err := m.mem.WriteBytes(args[0], append(b, 0)); err != nil {
			return 0, err
		}
		return int64(n), nil
	},
	"open": func(m *Machine, args []int64) (int64, error) {
		path, err := m.mem.CString(args[0])
		if err != nil {
			return 0, err
		}
		return m.Env.Open(path, args[1]), nil
	},
	"close": func(m *Machine, args []int64) (int64, error) {
		return m.Env.Close(args[0]), nil
	},
	"getc": func(m *Machine, args []int64) (int64, error) {
		return m.Env.Getc(args[0]), nil
	},
	"putc": func(m *Machine, args []int64) (int64, error) {
		return m.Env.Putc(byte(args[0]), args[1]), nil
	},
	"read": func(m *Machine, args []int64) (int64, error) {
		data := m.Env.ReadBytes(args[0], args[2])
		if data == nil {
			return -1, nil
		}
		if err := m.mem.WriteBytes(args[1], data); err != nil {
			return 0, err
		}
		return int64(len(data)), nil
	},
	"write": func(m *Machine, args []int64) (int64, error) {
		buf, err := m.mem.Bytes(args[1], args[2])
		if err != nil {
			return 0, err
		}
		return m.Env.WriteBytes(args[0], buf), nil
	},

	// --- memory management ------------------------------------------------
	"malloc": func(m *Machine, args []int64) (int64, error) {
		return m.mem.Alloc(args[0]), nil
	},
	"calloc": func(m *Machine, args []int64) (int64, error) {
		return m.mem.Alloc(args[0] * args[1]), nil // heap is pre-zeroed
	},
	"free": func(m *Machine, args []int64) (int64, error) {
		return 0, nil // bump allocator: free is a no-op
	},

	// --- string and memory routines ----------------------------------------
	"strlen": func(m *Machine, args []int64) (int64, error) {
		s, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		return int64(len(s)), nil
	},
	"strcmp": func(m *Machine, args []int64) (int64, error) {
		a, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		b, err := m.mem.cstrBytes(args[1])
		if err != nil {
			return 0, err
		}
		return int64(bytes.Compare(a, b)), nil
	},
	"strncmp": func(m *Machine, args []int64) (int64, error) {
		a, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		b, err := m.mem.cstrBytes(args[1])
		if err != nil {
			return 0, err
		}
		n := int(args[2])
		if len(a) > n {
			a = a[:n]
		}
		if len(b) > n {
			b = b[:n]
		}
		return int64(bytes.Compare(a, b)), nil
	},
	"strcpy": func(m *Machine, args []int64) (int64, error) {
		s, err := m.mem.cstrBytes(args[1])
		if err != nil {
			return 0, err
		}
		// Stage through the pooled buffer: the destination may overlap the
		// source, and WriteBytes must see the pre-overwrite bytes.
		buf := append(m.pieceBuf[:0], s...)
		buf = append(buf, 0)
		m.pieceBuf = buf[:0]
		if err := m.mem.WriteBytes(args[0], buf); err != nil {
			return 0, err
		}
		return args[0], nil
	},
	"strcat": func(m *Machine, args []int64) (int64, error) {
		d, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		dlen := int64(len(d))
		s, err := m.mem.cstrBytes(args[1])
		if err != nil {
			return 0, err
		}
		buf := append(m.pieceBuf[:0], s...)
		buf = append(buf, 0)
		m.pieceBuf = buf[:0]
		if err := m.mem.WriteBytes(args[0]+dlen, buf); err != nil {
			return 0, err
		}
		return args[0], nil
	},
	"strchr": func(m *Machine, args []int64) (int64, error) {
		s, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		c := byte(args[1])
		for i := 0; i < len(s); i++ {
			if s[i] == c {
				return args[0] + int64(i), nil
			}
		}
		if c == 0 {
			return args[0] + int64(len(s)), nil
		}
		return 0, nil
	},
	"memcpy": func(m *Machine, args []int64) (int64, error) {
		if args[2] <= 0 {
			return args[0], nil
		}
		src, err := m.mem.Bytes(args[1], args[2])
		if err != nil {
			return 0, err
		}
		// Stage through the pooled buffer so overlapping copies see the
		// pre-overwrite source bytes.
		tmp := append(m.pieceBuf[:0], src...)
		m.pieceBuf = tmp[:0]
		if err := m.mem.WriteBytes(args[0], tmp); err != nil {
			return 0, err
		}
		return args[0], nil
	},
	"memset": func(m *Machine, args []int64) (int64, error) {
		if args[2] <= 0 {
			return args[0], nil
		}
		buf, err := m.mem.Bytes(args[0], args[2])
		if err != nil {
			return 0, err
		}
		b := byte(args[1])
		for i := range buf {
			buf[i] = b
		}
		return args[0], nil
	},
	"memcmp": func(m *Machine, args []int64) (int64, error) {
		if args[2] <= 0 {
			return 0, nil
		}
		a, err := m.mem.Bytes(args[0], args[2])
		if err != nil {
			return 0, err
		}
		b, err := m.mem.Bytes(args[1], args[2])
		if err != nil {
			return 0, err
		}
		return int64(bytes.Compare(a, b)), nil
	},

	// --- conversions and misc ------------------------------------------------
	"atoi": func(m *Machine, args []int64) (int64, error) {
		s, err := m.mem.cstrBytes(args[0])
		if err != nil {
			return 0, err
		}
		i := 0
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		j := i
		if j < len(s) && (s[j] == '-' || s[j] == '+') {
			j++
		}
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		v, _ := strconv.ParseInt(string(s[i:j]), 10, 64)
		return v, nil
	},
	"abs": func(m *Machine, args []int64) (int64, error) {
		if args[0] < 0 {
			return -args[0], nil
		}
		return args[0], nil
	},
	"rand": func(m *Machine, args []int64) (int64, error) {
		return m.Env.Rand(), nil
	},
	"srand": func(m *Machine, args []int64) (int64, error) {
		m.Env.Srand(args[0])
		return 0, nil
	},
	"exit": func(m *Machine, args []int64) (int64, error) {
		return 0, &exitError{code: args[0]}
	},
	"abort": func(m *Machine, args []int64) (int64, error) {
		return 0, fmt.Errorf("abort() called")
	},
}

// ExternNames returns the sorted names of available externs (for tools and
// for generating extern declaration headers).
func ExternNames() []string {
	names := make([]string, 0, len(Externs))
	for n := range Externs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// doPrintf formats and writes to a descriptor.
func (m *Machine) doPrintf(fd, fmtAddr int64, args []int64) (int64, error) {
	b, err := m.formatPrintf(fmtAddr, args)
	if err != nil {
		return 0, err
	}
	return m.Env.WriteBytes(fd, b), nil
}

// formatPrintf implements the printf subset %d %u %x %c %s %% with
// optional width (e.g. %6d, %-8s, %04d). It formats into the machine's
// pooled buffer — the printf family is the hottest extern path, and
// building the result with strconv.Append* keeps a steady-state run
// allocation-free. The returned slice is valid until the next extern
// call; callers write it out immediately.
func (m *Machine) formatPrintf(fmtAddr int64, args []int64) ([]byte, error) {
	f, err := m.mem.cstrBytes(fmtAddr)
	if err != nil {
		return nil, err
	}
	out := m.fmtBuf[:0]
	ai := 0
	nextArg := func() int64 {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return 0
	}
	for i := 0; i < len(f); i++ {
		if f[i] != '%' {
			out = append(out, f[i])
			continue
		}
		i++
		if i >= len(f) {
			break
		}
		if f[i] == '%' {
			out = append(out, '%')
			continue
		}
		// Parse flags and width.
		leftAlign := false
		zeroPad := false
		if f[i] == '-' {
			leftAlign = true
			i++
		}
		if i < len(f) && f[i] == '0' {
			zeroPad = true
			i++
		}
		width := 0
		for i < len(f) && f[i] >= '0' && f[i] <= '9' {
			width = width*10 + int(f[i]-'0')
			i++
		}
		if i < len(f) && f[i] == 'l' { // %ld treated as %d
			i++
		}
		if i >= len(f) {
			break
		}
		var piece []byte
		pb := m.pieceBuf[:0]
		switch f[i] {
		case 'd', 'u':
			pb = strconv.AppendInt(pb, nextArg(), 10)
			piece = pb
		case 'x':
			pb = strconv.AppendUint(pb, uint64(nextArg()), 16)
			piece = pb
		case 'o':
			pb = strconv.AppendUint(pb, uint64(nextArg()), 8)
			piece = pb
		case 'c':
			pb = utf8.AppendRune(pb, rune(byte(nextArg())))
			piece = pb
		case 's':
			s, err := m.mem.cstrBytes(nextArg())
			if err != nil {
				m.fmtBuf = out[:0]
				return nil, err
			}
			piece = s
		default:
			pb = append(pb, '%', f[i])
			piece = pb
		}
		m.pieceBuf = pb[:0]
		if pad := width - len(piece); pad > 0 {
			padByte := byte(' ')
			if !leftAlign && zeroPad {
				padByte = '0'
			}
			if leftAlign {
				out = append(out, piece...)
				for ; pad > 0; pad-- {
					out = append(out, ' ')
				}
				continue
			}
			for ; pad > 0; pad-- {
				out = append(out, padByte)
			}
		}
		out = append(out, piece...)
	}
	m.fmtBuf = out
	return out, nil
}
