// Package parser implements a recursive-descent parser for MiniC. It
// produces an ast.File; type names (struct tags, typedefs, enum constants)
// are resolved during parsing so that declarations can be distinguished
// from expressions, as in C.
package parser

import (
	"fmt"

	"inlinec/internal/ast"
	"inlinec/internal/lexer"
	"inlinec/internal/token"
	"inlinec/internal/types"
)

// Error is a parse error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a collection of parse errors implementing error.
type ErrorList []*Error

func (el ErrorList) Error() string {
	switch len(el) {
	case 0:
		return "no errors"
	case 1:
		return el[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", el[0], len(el)-1)
	}
}

// Parser holds the parsing state for one translation unit.
type Parser struct {
	toks []token.Token
	pos  int
	errs ErrorList

	structs    map[string]*types.StructType
	lastParams *paramInfo
	typedefs   map[string]types.Type
	enumConsts map[string]*ast.EnumConst
	file       *ast.File
}

// maxErrors bounds error accumulation so that a badly broken file does not
// produce an avalanche of useless diagnostics.
const maxErrors = 25

type bailout struct{}

// Parse parses a MiniC translation unit.
func Parse(filename, src string) (*ast.File, error) {
	toks, lexErrs := lexer.ScanAll(filename, src)
	p := &Parser{
		toks:       toks,
		structs:    make(map[string]*types.StructType),
		typedefs:   make(map[string]types.Type),
		enumConsts: make(map[string]*ast.EnumConst),
		file:       &ast.File{Name: filename},
	}
	for _, e := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(bailout); !ok {
					panic(r)
				}
			}
		}()
		p.parseFile()
	}()
	if len(p.errs) > 0 {
		return p.file, p.errs
	}
	return p.file, nil
}

// ------------------------------------------------------------------ plumbing

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) >= maxErrors {
		panic(bailout{})
	}
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *Parser) sync() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.RBrace:
			return
		case token.Semi:
			p.next()
			return
		}
		p.next()
	}
}

// ------------------------------------------------------------- declarations

func (p *Parser) parseFile() {
	for !p.at(token.EOF) {
		start := p.pos
		p.parseTopDecl()
		if p.pos == start {
			// No progress: report and skip to avoid an infinite loop.
			p.errorf(p.cur().Pos, "unexpected token %s", p.cur())
			p.next()
		}
	}
}

func (p *Parser) parseTopDecl() {
	switch p.cur().Kind {
	case token.KwTypedef:
		p.parseTypedef()
		return
	case token.KwEnum:
		// enum definition used as a declaration.
		if p.peek().Kind == token.LBrace || (p.peek().Kind == token.Ident && p.toks[p.pos+2].Kind == token.LBrace) {
			p.parseTypeSpecifier()
			p.expect(token.Semi)
			return
		}
	case token.KwStruct:
		// struct definition without declarator: struct S { ... };
		if p.peek().Kind == token.Ident && p.toks[p.pos+2].Kind == token.LBrace {
			p.parseTypeSpecifier()
			if p.accept(token.Semi) {
				return
			}
			// Fall through: struct S { ... } var;
			p.errorf(p.cur().Pos, "expected ';' after struct definition")
			p.sync()
			return
		}
	case token.Semi:
		p.next()
		return
	}

	isExtern := p.accept(token.KwExtern)
	isStatic := p.accept(token.KwStatic)
	base := p.parseTypeSpecifier()
	if base == nil {
		p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
		p.sync()
		return
	}
	if p.accept(token.Semi) {
		return // bare type, e.g. "struct S;"
	}

	// First declarator decides function vs variable.
	name, typ, namePos := p.parseDeclarator(base)
	if ft, ok := typ.(*types.FuncType); ok && (p.at(token.LBrace) || p.at(token.Semi) || p.at(token.Comma)) && name != "" {
		p.finishFuncDecl(name, namePos, ft, isExtern, isStatic)
		return
	}
	p.finishVarDecls(name, namePos, typ, base, isExtern, isStatic, true)
}

// paramInfo is stashed by parseDeclSuffixes when it parses a parameter
// list, so finishFuncDecl can recover declared parameter names.
type paramInfo struct {
	names []string
	poss  []token.Pos
	types []types.Type
}

func (p *Parser) finishFuncDecl(name string, namePos token.Pos, ft *types.FuncType, isExtern, isStatic bool) {
	fd := &ast.FuncDecl{
		NamePos:  namePos,
		Name:     name,
		Type:     ft,
		IsExtern: isExtern,
		IsStatic: isStatic,
	}
	if p.lastParams != nil {
		for i, pn := range p.lastParams.names {
			fd.Params = append(fd.Params, &ast.VarDecl{
				NamePos: p.lastParams.poss[i],
				Name:    pn,
				Type:    p.lastParams.types[i],
				IsParam: true,
			})
		}
	}
	p.lastParams = nil
	if p.at(token.LBrace) {
		fd.Body = p.parseBlock()
	} else {
		fd.IsExtern = true
		p.expect(token.Semi)
	}
	p.file.Decls = append(p.file.Decls, fd)
}

func (p *Parser) finishVarDecls(name string, namePos token.Pos, typ, base types.Type, isExtern, isStatic, topLevel bool) {
	add := func(n string, np token.Pos, t types.Type, init ast.Expr) *ast.VarDecl {
		vd := &ast.VarDecl{NamePos: np, Name: n, Type: t, Init: init, IsExtern: isExtern, IsStatic: isStatic}
		if topLevel {
			p.file.Decls = append(p.file.Decls, vd)
		}
		return vd
	}
	var init ast.Expr
	if p.accept(token.Assign) {
		init = p.parseInitializer()
	}
	first := add(name, namePos, p.completeArray(typ, init), init)
	_ = first
	for p.accept(token.Comma) {
		n2, t2, np2 := p.parseDeclarator(base)
		var init2 ast.Expr
		if p.accept(token.Assign) {
			init2 = p.parseInitializer()
		}
		add(n2, np2, p.completeArray(t2, init2), init2)
	}
	p.expect(token.Semi)
}

// completeArray infers the length of an unsized array from its initializer:
// char s[] = "abc"; int a[] = {1,2,3};
func (p *Parser) completeArray(t types.Type, init ast.Expr) types.Type {
	arr, ok := t.(*types.Arr)
	if !ok || arr.Len >= 0 || init == nil {
		return t
	}
	switch in := init.(type) {
	case *ast.StrLit:
		return types.ArrayOf(arr.Elem, len(in.Value)+1)
	case *ast.InitListExpr:
		return types.ArrayOf(arr.Elem, len(in.Elems))
	}
	return t
}

func (p *Parser) parseTypedef() {
	p.expect(token.KwTypedef)
	base := p.parseTypeSpecifier()
	if base == nil {
		p.errorf(p.cur().Pos, "expected type after typedef")
		p.sync()
		return
	}
	name, typ, pos := p.parseDeclarator(base)
	if name == "" {
		p.errorf(pos, "typedef requires a name")
	} else {
		p.typedefs[name] = typ
	}
	p.expect(token.Semi)
}

// parseTypeSpecifier parses a base type: primitive, struct, enum, or a
// typedef name. Returns nil if the current token does not begin a type.
func (p *Parser) parseTypeSpecifier() types.Type {
	p.accept(token.KwConst) // const is accepted and ignored
	switch p.cur().Kind {
	case token.KwUnsigned:
		p.next()
		// unsigned [int|char|long]
		switch p.cur().Kind {
		case token.KwChar:
			p.next()
			return types.CharType
		case token.KwInt, token.KwLong:
			p.next()
			return types.IntType
		}
		return types.IntType
	case token.KwInt:
		p.next()
		return types.IntType
	case token.KwLong:
		p.next()
		p.accept(token.KwInt) // long int
		return types.IntType
	case token.KwChar:
		p.next()
		return types.CharType
	case token.KwVoid:
		p.next()
		return types.VoidType
	case token.KwStruct:
		return p.parseStructSpecifier()
	case token.KwEnum:
		return p.parseEnumSpecifier()
	case token.Ident:
		if t, ok := p.typedefs[p.cur().Text]; ok {
			p.next()
			return t
		}
	}
	return nil
}

func (p *Parser) parseStructSpecifier() types.Type {
	p.expect(token.KwStruct)
	nameTok := p.expect(token.Ident)
	st, ok := p.structs[nameTok.Text]
	if !ok {
		st = types.NewStruct(nameTok.Text)
		p.structs[nameTok.Text] = st
		p.file.Structs = append(p.file.Structs, st)
	}
	if p.accept(token.LBrace) {
		if st.Complete() {
			p.errorf(nameTok.Pos, "redefinition of struct %s", nameTok.Text)
		}
		var fields []types.Field
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			base := p.parseTypeSpecifier()
			if base == nil {
				p.errorf(p.cur().Pos, "expected field type in struct %s", nameTok.Text)
				p.sync()
				continue
			}
			for {
				fname, ftyp, fpos := p.parseDeclarator(base)
				if fname == "" {
					p.errorf(fpos, "expected field name")
				}
				fields = append(fields, types.Field{Name: fname, Type: ftyp})
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.Semi)
		}
		p.expect(token.RBrace)
		st.SetFields(fields)
	}
	return st
}

func (p *Parser) parseEnumSpecifier() types.Type {
	p.expect(token.KwEnum)
	p.accept(token.Ident) // optional tag, unused
	if p.accept(token.LBrace) {
		next := int64(0)
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			nameTok := p.expect(token.Ident)
			if p.accept(token.Assign) {
				v, ok := p.parseConstExpr()
				if !ok {
					p.errorf(nameTok.Pos, "enum value must be a constant expression")
				}
				next = v
			}
			p.enumConsts[nameTok.Text] = &ast.EnumConst{Name: nameTok.Text, Value: next}
			next++
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
	}
	return types.IntType
}

// parseConstExpr parses and folds a small constant expression used in enum
// values and array lengths. Only literals, enum constants, unary minus, and
// | + - * << are supported here; general folding happens in opt.
func (p *Parser) parseConstExpr() (int64, bool) {
	v, ok := p.parseConstUnary()
	if !ok {
		return 0, false
	}
	for {
		op := p.cur().Kind
		switch op {
		case token.Plus, token.Minus, token.Star, token.Shl, token.Pipe:
			p.next()
			w, ok2 := p.parseConstUnary()
			if !ok2 {
				return 0, false
			}
			switch op {
			case token.Plus:
				v += w
			case token.Minus:
				v -= w
			case token.Star:
				v *= w
			case token.Shl:
				v <<= uint(w)
			case token.Pipe:
				v |= w
			}
		default:
			return v, true
		}
	}
}

func (p *Parser) parseConstUnary() (int64, bool) {
	switch p.cur().Kind {
	case token.Minus:
		p.next()
		v, ok := p.parseConstUnary()
		return -v, ok
	case token.Int:
		return p.next().Val, true
	case token.Ident:
		if ec, ok := p.enumConsts[p.cur().Text]; ok {
			p.next()
			return ec.Value, true
		}
	case token.LParen:
		p.next()
		v, ok := p.parseConstExpr()
		p.expect(token.RParen)
		return v, ok
	}
	return 0, false
}

// parseDeclarator parses a C declarator against a base type and returns
// the declared name (possibly empty for abstract declarators), the full
// type, and the name position. Handles pointers, arrays, function
// parameter lists, and parenthesized (function-pointer) declarators.
func (p *Parser) parseDeclarator(base types.Type) (string, types.Type, token.Pos) {
	for p.accept(token.Star) {
		p.accept(token.KwConst)
		base = types.PointerTo(base)
	}
	return p.parseDirectDeclarator(base)
}

func (p *Parser) parseDirectDeclarator(base types.Type) (string, types.Type, token.Pos) {
	var name string
	namePos := p.cur().Pos

	// A parenthesized declarator, e.g. (*f)(int). We must distinguish it
	// from a parameter list of an abstract declarator; '(' followed by '*'
	// or an identifier that is not a type name means nested declarator.
	var inner func(types.Type) types.Type
	if p.at(token.LParen) && p.isNestedDeclarator() {
		p.next()
		// Parse the inner declarator against a placeholder; we thread the
		// eventual outer type through a continuation.
		var innerName string
		var innerPos token.Pos
		holder := &typeHolder{}
		innerName, innerType, ip := p.parseDeclarator(holder)
		innerPos = ip
		p.expect(token.RParen)
		name, namePos = innerName, innerPos
		inner = func(outer types.Type) types.Type {
			return substHolder(innerType, holder, outer)
		}
	} else if p.at(token.Ident) {
		t := p.next()
		name, namePos = t.Text, t.Pos
	}

	// Suffixes: arrays and parameter lists, innermost first per C rules
	// (suffixes bind tighter than the leading stars already consumed).
	typ := p.parseDeclSuffixes(base)
	if inner != nil {
		typ = inner(typ)
	}
	return name, typ, namePos
}

// typeHolder is a placeholder type used to thread nested declarators.
type typeHolder struct{ actual types.Type }

func (h *typeHolder) Kind() types.Kind { return h.actual.Kind() }
func (h *typeHolder) Size() int        { return h.actual.Size() }
func (h *typeHolder) Align() int       { return h.actual.Align() }
func (h *typeHolder) String() string   { return h.actual.String() }

// substHolder rebuilds t with the holder replaced by outer.
func substHolder(t types.Type, h *typeHolder, outer types.Type) types.Type {
	switch tt := t.(type) {
	case *typeHolder:
		return outer
	case *types.Ptr:
		return types.PointerTo(substHolder(tt.Elem, h, outer))
	case *types.Arr:
		return types.ArrayOf(substHolder(tt.Elem, h, outer), tt.Len)
	case *types.FuncType:
		nf := &types.FuncType{Result: substHolder(tt.Result, h, outer), Variadic: tt.Variadic}
		nf.Params = append(nf.Params, tt.Params...)
		return nf
	}
	return t
}

// isNestedDeclarator reports whether the '(' at the current position opens
// a nested declarator rather than a parameter list.
func (p *Parser) isNestedDeclarator() bool {
	nxt := p.peek()
	if nxt.Kind == token.Star {
		return true
	}
	if nxt.Kind == token.Ident {
		_, isType := p.typedefs[nxt.Text]
		return !isType
	}
	return false
}

func (p *Parser) parseDeclSuffixes(base types.Type) types.Type {
	switch p.cur().Kind {
	case token.LBracket:
		p.next()
		n := -1
		if !p.at(token.RBracket) {
			v, ok := p.parseConstExpr()
			if !ok {
				p.errorf(p.cur().Pos, "array length must be a constant expression")
			} else if v < 0 {
				p.errorf(p.cur().Pos, "negative array length")
			} else {
				n = int(v)
			}
		}
		p.expect(token.RBracket)
		elem := p.parseDeclSuffixes(base)
		return types.ArrayOf(elem, n)
	case token.LParen:
		p.next()
		ft := &types.FuncType{Result: base}
		info := &paramInfo{}
		if p.at(token.KwVoid) && p.peek().Kind == token.RParen {
			p.next() // f(void)
		}
		for !p.at(token.RParen) && !p.at(token.EOF) {
			if p.accept(token.Ellipsis) {
				ft.Variadic = true
				break
			}
			pbase := p.parseTypeSpecifier()
			if pbase == nil {
				p.errorf(p.cur().Pos, "expected parameter type")
				p.sync()
				break
			}
			pname, ptyp, ppos := p.parseDeclarator(pbase)
			ptyp = types.Decay(ptyp) // arrays decay to pointers in params
			ft.Params = append(ft.Params, ptyp)
			info.names = append(info.names, pname)
			info.poss = append(info.poss, ppos)
			info.types = append(info.types, ptyp)
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
		p.lastParams = info
		return ft
	}
	return base
}

// parseInitializer parses an initializer: an assignment expression or a
// brace-enclosed list.
func (p *Parser) parseInitializer() ast.Expr {
	if p.at(token.LBrace) {
		lb := p.next().Pos
		lst := &ast.InitListExpr{Lbrace: lb}
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			lst.Elems = append(lst.Elems, p.parseInitializer())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
		return lst
	}
	return p.parseAssignExpr()
}

// ---------------------------------------------------------------- statements

func (p *Parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace).Pos
	blk := &ast.BlockStmt{Lbrace: lb}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		start := p.pos
		blk.List = append(blk.List, p.parseStmt())
		if p.pos == start {
			p.errorf(p.cur().Pos, "unexpected token %s in block", p.cur())
			p.next()
		}
	}
	p.expect(token.RBrace)
	return blk
}

// startsType reports whether the current token begins a type (and hence a
// local declaration).
func (p *Parser) startsType() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwChar, token.KwLong, token.KwVoid, token.KwStruct,
		token.KwEnum, token.KwConst, token.KwUnsigned, token.KwStatic, token.KwExtern:
		return true
	case token.Ident:
		if _, ok := p.typedefs[p.cur().Text]; ok {
			// "t * x;" is a declaration; "t * x" as expr is possible only
			// if t is also a variable, which MiniC forbids.
			return true
		}
	}
	return false
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		return &ast.EmptyStmt{Semi: p.next().Pos}
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		pos := p.next().Pos
		var x ast.Expr
		if !p.at(token.Semi) {
			x = p.parseExpr()
		}
		p.expect(token.Semi)
		return &ast.ReturnStmt{Return: pos, X: x}
	case token.KwBreak:
		pos := p.next().Pos
		p.expect(token.Semi)
		return &ast.BreakStmt{Break: pos}
	case token.KwContinue:
		pos := p.next().Pos
		p.expect(token.Semi)
		return &ast.ContinueStmt{Continue: pos}
	case token.KwGoto:
		pos := p.next().Pos
		lbl := p.expect(token.Ident)
		p.expect(token.Semi)
		return &ast.GotoStmt{Goto: pos, Label: lbl.Text}
	case token.KwSwitch:
		return p.parseSwitch()
	case token.Ident:
		if p.peek().Kind == token.Colon {
			nameTok := p.next()
			p.next() // colon
			return &ast.LabeledStmt{LabelPos: nameTok.Pos, Label: nameTok.Text, Stmt: p.parseStmt()}
		}
	}
	if p.startsType() {
		return p.parseLocalDecl()
	}
	x := p.parseExpr()
	p.expect(token.Semi)
	return &ast.ExprStmt{X: x}
}

// parseLocalDecl parses one or more local variable declarations sharing a
// base type and wraps multiples in a synthetic block-less sequence (the
// statement list absorbs them via a BlockStmt with the same scope).
func (p *Parser) parseLocalDecl() ast.Stmt {
	p.accept(token.KwStatic) // accepted, treated as ordinary local
	isExtern := p.accept(token.KwExtern)
	base := p.parseTypeSpecifier()
	if base == nil {
		p.errorf(p.cur().Pos, "expected type in declaration")
		p.sync()
		return &ast.EmptyStmt{Semi: p.cur().Pos}
	}
	var decls []ast.Stmt
	for {
		name, typ, namePos := p.parseDeclarator(base)
		if name == "" {
			p.errorf(namePos, "expected variable name")
		}
		var init ast.Expr
		if p.accept(token.Assign) {
			init = p.parseInitializer()
		}
		decls = append(decls, &ast.VarDecl{
			NamePos: namePos, Name: name, Type: p.completeArray(typ, init),
			Init: init, IsExtern: isExtern,
		})
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semi)
	if len(decls) == 1 {
		return decls[0]
	}
	// Multiple declarators: return them as a transparent block; sema treats
	// a DeclGroup block transparently for scoping.
	return &ast.BlockStmt{Lbrace: decls[0].Pos(), List: decls, DeclGroup: true}
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{If: pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseWhile() ast.Stmt {
	pos := p.expect(token.KwWhile).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.WhileStmt{While: pos, Cond: cond, Body: body}
}

func (p *Parser) parseDoWhile() ast.Stmt {
	pos := p.expect(token.KwDo).Pos
	body := p.parseStmt()
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	p.expect(token.Semi)
	return &ast.DoWhileStmt{Do: pos, Body: body, Cond: cond}
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.expect(token.KwFor).Pos
	p.expect(token.LParen)
	f := &ast.ForStmt{For: pos}
	if !p.at(token.Semi) {
		if p.startsType() {
			f.Init = p.parseLocalDecl()
		} else {
			x := p.parseExpr()
			p.expect(token.Semi)
			f.Init = &ast.ExprStmt{X: x}
		}
	} else {
		p.next()
	}
	if !p.at(token.Semi) {
		f.Cond = p.parseExpr()
	}
	p.expect(token.Semi)
	if !p.at(token.RParen) {
		f.Post = p.parseExpr()
	}
	p.expect(token.RParen)
	f.Body = p.parseStmt()
	return f
}

func (p *Parser) parseSwitch() ast.Stmt {
	pos := p.expect(token.KwSwitch).Pos
	p.expect(token.LParen)
	tag := p.parseExpr()
	p.expect(token.RParen)
	p.expect(token.LBrace)
	sw := &ast.SwitchStmt{Switch: pos, Tag: tag}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		cc := &ast.CaseClause{Case: p.cur().Pos}
		switch {
		case p.accept(token.KwCase):
			for {
				cc.Values = append(cc.Values, p.parseCondExpr())
				p.expect(token.Colon)
				if !p.accept(token.KwCase) {
					break
				}
			}
		case p.accept(token.KwDefault):
			p.expect(token.Colon)
		default:
			p.errorf(p.cur().Pos, "expected case or default in switch, found %s", p.cur())
			p.sync()
			continue
		}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !p.at(token.RBrace) && !p.at(token.EOF) {
			// A trailing break terminates the clause; other breaks belong
			// to loops inside the clause bodies and are handled by sema.
			cc.Body = append(cc.Body, p.parseStmt())
		}
		sw.Cases = append(sw.Cases, cc)
	}
	p.expect(token.RBrace)
	return sw
}

// --------------------------------------------------------------- expressions

func (p *Parser) parseExpr() ast.Expr {
	x := p.parseAssignExpr()
	for p.at(token.Comma) {
		p.next()
		y := p.parseAssignExpr()
		x = &ast.CommaExpr{X: x, Y: y}
	}
	return x
}

func (p *Parser) parseAssignExpr() ast.Expr {
	x := p.parseCondExpr()
	if p.cur().Kind.IsAssignOp() {
		op := p.next()
		y := p.parseAssignExpr()
		return &ast.AssignExpr{OpPos: op.Pos, Op: op.Kind, X: x, Y: y}
	}
	return x
}

func (p *Parser) parseCondExpr() ast.Expr {
	cond := p.parseBinaryExpr(1)
	if p.accept(token.Question) {
		then := p.parseExpr()
		p.expect(token.Colon)
		els := p.parseCondExpr()
		return &ast.CondExpr{Cond: cond, Then: then, Else: els}
	}
	return cond
}

// binaryPrec returns the precedence of a binary operator, 0 if not binary.
func binaryPrec(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 1
	case token.AndAnd:
		return 2
	case token.Pipe:
		return 3
	case token.Caret:
		return 4
	case token.Amp:
		return 5
	case token.EqEq, token.NotEq:
		return 6
	case token.Lt, token.Gt, token.Le, token.Ge:
		return 7
	case token.Shl, token.Shr:
		return 8
	case token.Plus, token.Minus:
		return 9
	case token.Star, token.Slash, token.Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseUnaryExpr()
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = &ast.BinaryExpr{OpPos: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	switch p.cur().Kind {
	case token.Plus:
		p.next()
		return p.parseUnaryExpr()
	case token.Minus, token.Bang, token.Tilde, token.Star, token.Amp:
		op := p.next()
		x := p.parseUnaryExpr()
		return &ast.UnaryExpr{OpPos: op.Pos, Op: op.Kind, X: x}
	case token.PlusPlus, token.MinusMinus:
		op := p.next()
		x := p.parseUnaryExpr()
		return &ast.UnaryExpr{OpPos: op.Pos, Op: op.Kind, X: x}
	case token.KwSizeof:
		kw := p.next()
		if p.at(token.LParen) && p.typeAfterLParen() {
			p.next()
			t := p.parseTypeName()
			p.expect(token.RParen)
			return &ast.SizeofExpr{KwPos: kw.Pos, ArgType: t}
		}
		x := p.parseUnaryExpr()
		return &ast.SizeofExpr{KwPos: kw.Pos, Arg: x}
	case token.LParen:
		if p.typeAfterLParen() {
			lp := p.next()
			t := p.parseTypeName()
			p.expect(token.RParen)
			x := p.parseUnaryExpr()
			return &ast.CastExpr{LparenPos: lp.Pos, To: t, X: x}
		}
	}
	return p.parsePostfixExpr()
}

// typeAfterLParen reports whether the token after the current '(' begins a
// type name (for casts and sizeof).
func (p *Parser) typeAfterLParen() bool {
	nxt := p.peek()
	switch nxt.Kind {
	case token.KwInt, token.KwChar, token.KwLong, token.KwVoid, token.KwStruct,
		token.KwEnum, token.KwConst, token.KwUnsigned:
		return true
	case token.Ident:
		_, ok := p.typedefs[nxt.Text]
		return ok
	}
	return false
}

// parseTypeName parses a type for casts/sizeof: specifier plus abstract
// declarator (stars and array/function suffixes without a name).
func (p *Parser) parseTypeName() types.Type {
	base := p.parseTypeSpecifier()
	if base == nil {
		p.errorf(p.cur().Pos, "expected type name")
		return types.IntType
	}
	_, t, _ := p.parseDeclarator(base)
	return t
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.cur().Kind {
		case token.LParen:
			lp := p.next()
			call := &ast.CallExpr{Lparen: lp.Pos, Fun: x}
			for !p.at(token.RParen) && !p.at(token.EOF) {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.RParen)
			x = call
		case token.LBracket:
			lb := p.next()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.IndexExpr{Lbrack: lb.Pos, X: x, Index: idx}
		case token.Dot:
			dp := p.next()
			name := p.expect(token.Ident)
			x = &ast.MemberExpr{DotPos: dp.Pos, X: x, Name: name.Text}
		case token.Arrow:
			dp := p.next()
			name := p.expect(token.Ident)
			x = &ast.MemberExpr{DotPos: dp.Pos, X: x, Name: name.Text, Arrow: true}
		case token.PlusPlus, token.MinusMinus:
			op := p.next()
			x = &ast.PostfixExpr{OpPos: op.Pos, Op: op.Kind, X: x}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	switch t := p.cur(); t.Kind {
	case token.Int:
		p.next()
		return &ast.IntLit{LitPos: t.Pos, Value: t.Val}
	case token.String:
		p.next()
		// Adjacent string literals concatenate, as in C.
		val := t.Str
		for p.at(token.String) {
			val += p.next().Str
		}
		return &ast.StrLit{LitPos: t.Pos, Value: val}
	case token.Ident:
		p.next()
		if ec, ok := p.enumConsts[t.Text]; ok {
			lit := &ast.IntLit{LitPos: t.Pos, Value: ec.Value}
			return lit
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Text}
	case token.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	}
	p.errorf(p.cur().Pos, "expected expression, found %s", p.cur())
	p.next()
	return &ast.IntLit{LitPos: p.cur().Pos, Value: 0}
}
