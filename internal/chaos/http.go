package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
)

// HTTPConfig sets per-request fault probabilities for a RoundTripper.
type HTTPConfig struct {
	Seed int64
	// Reset drops the connection before a response arrives (the request
	// may or may not have been processed — the hard retry case).
	Reset float64
	// Timeout fails the request with a net.Error whose Timeout() is true.
	Timeout float64
	// ServerErr answers 503 without forwarding to the real server.
	ServerErr float64
}

// netTimeoutError satisfies net.Error with Timeout() == true.
type netTimeoutError struct{}

func (netTimeoutError) Error() string   { return "chaos: injected timeout" }
func (netTimeoutError) Timeout() bool   { return true }
func (netTimeoutError) Temporary() bool { return true }

// RoundTripper wraps an http.RoundTripper with seeded fault injection;
// install it as an http.Client's Transport to make any profdb client
// suffer resets, timeouts, and 5xx responses deterministically.
type RoundTripper struct {
	Base http.RoundTripper
	cfg  HTTPConfig

	mu       sync.Mutex
	rng      *rand.Rand
	Injected int
	// AfterSend, when true, injects resets *after* forwarding the request
	// to the real server: the server processed it, the client never
	// learned — the case that makes blind POST retries double-count.
	AfterSend bool
}

// NewRoundTripper wraps base (nil means http.DefaultTransport).
func NewRoundTripper(base http.RoundTripper, cfg HTTPConfig) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{Base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (rt *RoundTripper) hit(p float64) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	v := rt.rng.Float64()
	if p <= 0 {
		return false
	}
	if v < p {
		rt.Injected++
		return true
	}
	return false
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.hit(rt.cfg.Timeout) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, netTimeoutError{}
	}
	if rt.hit(rt.cfg.Reset) {
		if rt.AfterSend {
			// Deliver the request, then lose the response.
			resp, err := rt.Base.RoundTrip(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		} else if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: injected connection reset on %s %s", req.Method, req.URL.Path)
	}
	if rt.hit(rt.cfg.ServerErr) {
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (chaos)",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request: req,
		}, nil
	}
	return rt.Base.RoundTrip(req)
}
