package bench

import (
	"strings"
	"testing"

	"inlinec"
)

// TestSuiteCompilesAndRuns compiles every benchmark and executes its first
// input, checking that the program terminates cleanly and produces its
// summary line.
func TestSuiteCompilesAndRuns(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := b.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(b.Inputs) == 0 {
				t.Fatalf("benchmark has no inputs")
			}
			out, err := p.Run(b.Inputs[0])
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if b.Name != "tee" && b.Name != "wc" && !strings.Contains(out.Stdout, b.Name+":") {
				t.Errorf("missing summary line in output (%d bytes):\n%.300s",
					len(out.Stdout), out.Stdout)
			}
			if out.Stats.IL == 0 {
				t.Errorf("no instructions executed")
			}
			t.Logf("%s: IL=%d CT=%d calls=%d (extern %d, ptr %d)",
				b.Name, out.Stats.IL, out.Stats.Control, out.Stats.Calls,
				out.Stats.ExternCalls, out.Stats.PtrCalls)
		})
	}
}

// TestSuiteDeterministicInputs checks that regenerating the suite yields
// byte-identical inputs (the profiling methodology depends on it).
func TestSuiteDeterministicInputs(t *testing.T) {
	a := buildSuite()
	b := buildSuite()
	for i := range a {
		if len(a[i].Inputs) != len(b[i].Inputs) {
			t.Fatalf("%s: input count differs", a[i].Name)
		}
		for j := range a[i].Inputs {
			if string(a[i].Inputs[j].Stdin) != string(b[i].Inputs[j].Stdin) {
				t.Errorf("%s input %d: stdin differs", a[i].Name, j)
			}
		}
	}
}

// TestSuiteInlinePreservesOutputs runs every benchmark's first two inputs
// before and after inline expansion and requires identical observable
// behaviour — the strongest end-to-end correctness check in the repo.
func TestSuiteInlinePreservesOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("long end-to-end check")
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p, err := b.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			n := len(b.Inputs)
			if n > 2 {
				n = 2
			}
			prof, err := p.ProfileInputs(b.Inputs[:n]...)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			if _, err := p.Inline(prof, inlinec.DefaultParams()); err != nil {
				t.Fatalf("inline: %v", err)
			}
			for j := 0; j < n; j++ {
				before, err := p.RunOriginal(b.Inputs[j])
				if err != nil {
					t.Fatalf("run original input %d: %v", j, err)
				}
				after, err := p.Run(b.Inputs[j])
				if err != nil {
					t.Fatalf("run inlined input %d: %v", j, err)
				}
				if before.Stdout != after.Stdout {
					t.Errorf("input %d: stdout differs after inlining\nbefore: %.200q\nafter:  %.200q",
						j, before.Stdout, after.Stdout)
				}
				if before.ExitCode != after.ExitCode {
					t.Errorf("input %d: exit code %d -> %d", j, before.ExitCode, after.ExitCode)
				}
			}
		})
	}
}
