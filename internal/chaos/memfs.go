package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
)

// ErrCrashed is returned by file handles that survived a MemFS.Crash:
// the process they belonged to is conceptually dead.
var ErrCrashed = errors.New("chaos: filesystem crashed under this handle")

// MemFS is an in-memory filesystem that models the durability gap
// between the page cache and the disk. Every mutation lands in the
// "cache" immediately; only Sync (file contents) and SyncDir (directory
// entries) move state to the "disk". Crash throws away the cache — and,
// like real hardware, may persist a torn prefix of unsynced appends —
// which is exactly the state a store reopened after kill -9 sees.
type MemFS struct {
	mu    sync.Mutex
	cur   map[string]*memFile // namespace as the process sees it
	dur   map[string]*memFile // namespace as the disk sees it
	epoch int                 // incremented by Crash; stale handles fail
}

type memFile struct {
	data    []byte // cached content
	durable []byte // content guaranteed to survive a crash
}

// NewMemFS returns an empty crash-simulating filesystem.
func NewMemFS() *MemFS {
	return &MemFS{cur: make(map[string]*memFile), dur: make(map[string]*memFile)}
}

func clean(name string) string { return filepath.Clean(name) }

// Crash simulates kill -9 / power loss: all unsynced state is lost.
// Directory entries revert to the last SyncDir; file contents revert to
// the last Sync. With a non-nil rng the crash is adversarial about the
// unsynced tail of append-style writes: a random prefix of it may
// persist, and a persisted tail may be torn (corrupted bytes) — the
// states checksummed WALs exist to detect. Open handles go stale.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	next := make(map[string]*memFile, len(m.dur))
	for name, f := range m.dur {
		crashed := append([]byte(nil), f.durable...)
		if rng != nil && len(f.data) > len(f.durable) &&
			string(f.data[:len(f.durable)]) == string(f.durable) {
			// The cache held a strict extension of the durable content (an
			// append in flight). Persist a random prefix of the tail...
			tail := f.data[len(f.durable):]
			keep := rng.Intn(len(tail) + 1)
			torn := append([]byte(nil), tail[:keep]...)
			// ...and sometimes tear it: garbage where blocks half-landed.
			if keep > 0 && rng.Intn(2) == 0 {
				torn[rng.Intn(keep)] ^= byte(1 + rng.Intn(255))
			}
			crashed = append(crashed, torn...)
		}
		nf := &memFile{data: crashed, durable: append([]byte(nil), crashed...)}
		next[name] = nf
	}
	m.cur = next
	m.dur = make(map[string]*memFile, len(next))
	for name, f := range next {
		m.dur[name] = f
	}
}

// SyncEverything forces all current state durable — a convenience for
// building a known-good baseline before a chaos schedule starts.
func (m *MemFS) SyncEverything() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dur = make(map[string]*memFile, len(m.cur))
	for name, f := range m.cur {
		f.durable = append([]byte(nil), f.data...)
		m.dur[name] = f
	}
}

// ReadFile returns the current (cached) content of a file.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces a file's content and makes it durable immediately —
// a setup helper, not part of the FS interface.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...)}
	f.durable = append([]byte(nil), f.data...)
	m.cur[clean(name)] = f
	m.dur[clean(name)] = f
}

// CorruptTail overwrites the last n bytes (cache and disk) with garbage,
// for building hand-made torn files in recovery tests.
func (m *MemFS) CorruptTail(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(name)]
	if !ok {
		return &os.PathError{Op: "corrupt", Path: name, Err: os.ErrNotExist}
	}
	for i := len(f.data) - n; i < len(f.data); i++ {
		if i >= 0 {
			f.data[i] ^= 0x5a
		}
	}
	f.durable = append([]byte(nil), f.data...)
	return nil
}

type memHandle struct {
	fs    *MemFS
	f     *memFile
	epoch int
	rdoff int
	read  bool // read-only handle
}

func (h *memHandle) stale() bool {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.epoch != h.fs.epoch
}

func (h *memHandle) Read(p []byte) (int, error) {
	if h.stale() {
		return 0, ErrCrashed
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.rdoff >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.rdoff:])
	h.rdoff += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.stale() {
		return 0, ErrCrashed
	}
	if h.read {
		return 0, fmt.Errorf("chaos: write to read-only handle")
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	if h.stale() {
		return ErrCrashed
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.durable = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, f: f, epoch: m.epoch, read: true}, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(name)]
	if ok {
		// Truncation is a cached metadata+data change; the previously
		// synced content stays durable until the next Sync.
		f.data = nil
	} else {
		f = &memFile{}
		m.cur[clean(name)] = f
	}
	return &memHandle{fs: m, f: f, epoch: m.epoch}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(name)]
	if !ok {
		f = &memFile{}
		m.cur[clean(name)] = f
	}
	return &memHandle{fs: m, f: f, epoch: m.epoch}, nil
}

// Rename is atomic in the cached namespace; durability of the entry
// waits for SyncDir. The renamed file keeps whatever content durability
// it already had.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(oldpath)]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(m.cur, clean(oldpath))
	m.cur[clean(newpath)] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cur[clean(name)]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.cur, clean(name))
	return nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[clean(name)]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// SyncDir makes the directory's entries durable: files created, renamed
// into, or removed from dir since the last SyncDir are committed to the
// disk namespace.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := clean(dir)
	for name := range m.dur {
		if filepath.Dir(name) == d {
			if _, ok := m.cur[name]; !ok {
				delete(m.dur, name)
			}
		}
	}
	for name, f := range m.cur {
		if filepath.Dir(name) == d {
			m.dur[name] = f
		}
	}
	return nil
}
