package inline

import (
	"strings"
	"testing"

	"inlinec/internal/ir"
)

// expandEverything inlines with a permissive configuration.
func expandEverything(t *testing.T, src string) (*ir.Module, *Result) {
	t.Helper()
	mod, g, prof := build(t, src)
	res, err := Expand(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 10.0})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify after expand: %v", err)
	}
	return mod, res
}

func TestSpliceVoidCallee(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int total;
void bump(int by) { total += by; }
int main() {
    int i;
    for (i = 0; i < 40; i++) bump(i);
    printf("%d\n", total);
    return 0;
}
`
	mod, res := expandEverything(t, src)
	if len(res.Expanded) != 1 {
		t.Fatalf("expanded = %v", res.Expanded)
	}
	out, _ := runModule(t, mod)
	if out != "780\n" {
		t.Errorf("output = %q", out)
	}
}

func TestSpliceManyParamsAndCharParam(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int blend(int a, int b, int c, int d, char tag, int e) {
    return a + b * 2 + c * 3 + d * 4 + tag + e * 5;
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 30; i++) s += blend(i, i + 1, i + 2, i + 3, 'A', i + 4);
    printf("%d\n", s);
    return 0;
}
`
	mod, res := expandEverything(t, src)
	if len(res.Expanded) != 1 {
		t.Fatalf("expanded = %v", res.Expanded)
	}
	// The char parameter's inlined slot must stay 1 byte: the splice's
	// argument store must truncate like the call did.
	mainFn := mod.Func("main")
	var sawCharSlot bool
	for _, s := range mainFn.Slots {
		if strings.HasSuffix(s.Name, ".tag") && s.Size == 1 {
			sawCharSlot = true
		}
	}
	if !sawCharSlot {
		t.Errorf("char param slot missing or resized: %+v", mainFn.Slots)
	}
	out, _ := runModule(t, mod)
	want := "" // computed by the un-inlined original
	orig, _, _ := build(t, src)
	want, _ = runModule(t, orig)
	if out != want {
		t.Errorf("output %q != original %q", out, want)
	}
}

func TestSpliceCalleeWithArrayLocal(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int window(int x) {
    int buf[8];
    int i; int s;
    for (i = 0; i < 8; i++) buf[i] = x + i;
    s = 0;
    for (i = 0; i < 8; i++) s += buf[i];
    return s;
}
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 25; i++) acc += window(i);
    printf("%d\n", acc);
    return 0;
}
`
	mod, _ := expandEverything(t, src)
	mainFn := mod.Func("main")
	// The callee's 64-byte array must now live in main's frame.
	if mainFn.FrameSize < 64 {
		t.Errorf("caller frame %d too small to hold the inlined array", mainFn.FrameSize)
	}
	out, _ := runModule(t, mod)
	if out != "3100\n" { // sum over x<25 of (8x + 28) = 2400 + 700
		t.Errorf("output = %q", out)
	}
}

func TestSpliceBodyWithPointerCall(t *testing.T) {
	// Inlining a function that itself contains a call through a pointer:
	// the interior callptr must survive with a fresh site id.
	src := `
extern int printf(char *fmt, ...);
int double_(int x) { return x * 2; }
int via(int (*f)(int), int v) { return f(v) + 1; }
int hot(int v) { return via(double_, v); }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 60; i++) s += hot(i);
    printf("%d\n", s);
    return 0;
}
`
	mod, _ := expandEverything(t, src)
	out, st := runModule(t, mod)
	if out != "3600\n" { // sum(2i+1) for i<60 = 2*1770 + 60
		t.Errorf("output = %q", out)
	}
	if st.PtrCalls == 0 {
		t.Error("pointer calls vanished; they cannot be inlined")
	}
	// Call ids must still be unique module-wide.
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSpliceConstantArguments(t *testing.T) {
	// Call sites pass constants; after folding the call's argument may be
	// a VKConst, and the splice must store it correctly.
	src := `
extern int printf(char *fmt, ...);
int mulshift(int a, int b) { return (a * b) >> 1; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 20; i++) s += mulshift(6, 14);
    printf("%d\n", s);
    return 0;
}
`
	mod, _ := expandEverything(t, src)
	out, _ := runModule(t, mod)
	if out != "840\n" {
		t.Errorf("output = %q", out)
	}
}

func TestSpliceErrorOnNonCall(t *testing.T) {
	f := &ir.Func{Name: "x", ReturnsValue: true}
	r := f.NewReg()
	f.Emit(ir.Instr{Op: ir.OpConst, Dst: r, A: ir.C(1)})
	f.Emit(ir.Instr{Op: ir.OpRet, A: ir.R(r)})
	callee := &ir.Func{Name: "y"}
	callee.Emit(ir.Instr{Op: ir.OpRet, A: ir.None})
	if err := spliceCall(f, 0, callee); err == nil {
		t.Error("splicing a non-call instruction must fail")
	}
}

func TestSpliceArgumentCountMismatch(t *testing.T) {
	caller := &ir.Func{Name: "c", ReturnsValue: true}
	r := caller.NewReg()
	caller.Emit(ir.Instr{Op: ir.OpCall, Dst: r, Sym: "callee", CallID: 1})
	caller.Emit(ir.Instr{Op: ir.OpRet, A: ir.R(r)})
	callee := &ir.Func{Name: "callee", ReturnsValue: true}
	callee.AddSlot("p", 8, 8, true)
	callee.NumParams = 1
	rr := callee.NewReg()
	callee.Emit(ir.Instr{Op: ir.OpConst, Dst: rr, A: ir.C(0)})
	callee.Emit(ir.Instr{Op: ir.OpRet, A: ir.R(rr)})
	if err := spliceCall(caller, 0, callee); err == nil ||
		!strings.Contains(err.Error(), "args") {
		t.Errorf("argument mismatch not detected: %v", err)
	}
}
