package interp

import (
	"inlinec/internal/ir"
)

// translate compiles every loaded function into bytecode. It runs after
// NewMachine's resolution passes and consumes their results — the dense
// function ids, resolved call targets, and branch targets in cfs — so
// the bytecode engine observes exactly the same counter layout as the
// switch engine. fuse enables superinstruction formation; the trace hook
// needs to observe every instruction individually, so tracing machines
// translate unfused.
func (m *Machine) translate(cfs []*compiledFunc, fuse bool) {
	globalAddr, globalsLen := layoutGlobals(m.Mod)
	m.bfuncs = make(map[string]*bcFunc, len(cfs))
	bfs := make([]*bcFunc, len(cfs))
	for i, cf := range cfs {
		bf := &bcFunc{fn: cf.fn, id: cf.id,
			countEntry: m.entryCount == nil || m.entryCount[cf.id]}
		bfs[i] = bf
		m.bfuncs[cf.fn.Name] = bf
	}
	for i, cf := range cfs {
		m.translateFunc(cf, bfs[i], fuse, globalAddr, globalsLen)
	}

	// Dense function-pointer table over user functions and declared
	// externs (the only symbols with runtime addresses).
	m.ptrTargets = make([]ptrTarget, len(m.Mod.Funcs)+len(m.Mod.Externs))
	for addr, cf := range m.byAddr {
		m.ptrTargets[(addr-FuncBase)/FuncStride] = ptrTarget{user: m.bfuncs[cf.fn.Name]}
	}
	for addr, et := range m.extByAddr {
		m.ptrTargets[(addr-FuncBase)/FuncStride] = ptrTarget{ext: et.impl, id: int32(et.id)}
	}
}

// isCmp reports whether op is a comparison fusable with a following
// conditional branch.
func isCmp(op ir.Op) bool {
	return op >= ir.OpEq && op <= ir.OpGe
}

// binaryBC maps a binary ir.Op to its bytecode opcode. The two opcode
// spaces run in the same order, so the mapping is an offset.
func binaryBC(op ir.Op) bcOp {
	if op >= ir.OpEq { // Eq..Ge follow Neg/Not in the ir numbering
		return bcEq + bcOp(op-ir.OpEq)
	}
	return bcAdd + bcOp(op-ir.OpAdd)
}

// cmpBrBC maps a comparison ir.Op to its fused compare-branch opcode.
func cmpBrBC(op ir.Op) bcOp {
	return bcEqBr + bcOp(op-ir.OpEq)
}

// loadWidthOK reports whether an access width has a specialized opcode.
func loadWidthOK(size int) bool { return size == 1 || size == 8 }

func (m *Machine) translateFunc(cf *compiledFunc, bf *bcFunc, fuse bool, globalAddr map[string]int64, globalsLen int) {
	fn := cf.fn
	code := fn.Code

	// Constant-pool registers: every constant operand is assigned a
	// register index past fn.NumRegs, preloaded at function entry.
	// Binary ops then read registers unconditionally — no operand-kind
	// branch in the dispatch loop, and no opcode explosion into
	// reg/const variants.
	pool := make(map[int64]int32)
	poolReg := func(v int64) int32 {
		if r, ok := pool[v]; ok {
			return r
		}
		r := int32(fn.NumRegs + len(bf.consts))
		pool[v] = r
		bf.consts = append(bf.consts, v)
		return r
	}
	operand := func(v ir.Value) int32 {
		if v.Kind == ir.VKConst {
			return poolReg(v.Imm)
		}
		return int32(v.Reg)
	}
	symIdx := func(s string) int32 {
		bf.syms = append(bf.syms, s)
		return int32(len(bf.syms) - 1)
	}
	emit := func(origPC int, in bcInstr) {
		bf.code = append(bf.code, in)
		bf.origPC = append(bf.origPC, int32(origPC))
	}

	// irToBC[pc] is the bytecode index of the first instruction emitted
	// at or after IR index pc; branch targets (always labels, which emit
	// nothing) resolve through it after emission.
	irToBC := make([]int32, len(code)+1)
	type patch struct {
		bcPC     int
		irTarget int32
	}
	var patches []patch

	for pc := 0; pc < len(code); pc++ {
		irToBC[pc] = int32(len(bf.code))
		in := &code[pc]
		switch in.Op {
		case ir.OpLabel:
			// Labels vanish: they are not executed, not counted, and only
			// exist as branch targets, which irToBC already records.
		case ir.OpNop:
			emit(pc, bcInstr{op: bcNop})
		case ir.OpConst:
			emit(pc, bcInstr{op: bcConst, dst: int32(in.Dst), imm: in.A.Imm})
		case ir.OpMov:
			if in.A.Kind == ir.VKConst {
				emit(pc, bcInstr{op: bcConst, dst: int32(in.Dst), imm: in.A.Imm})
			} else {
				emit(pc, bcInstr{op: bcMov, dst: int32(in.Dst), a: int32(in.A.Reg)})
			}
		case ir.OpNeg:
			emit(pc, bcInstr{op: bcNeg, dst: int32(in.Dst), a: operand(in.A)})
		case ir.OpNot:
			emit(pc, bcInstr{op: bcNot, dst: int32(in.Dst), a: operand(in.A)})
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			// compare + conditional branch on the compare's result fuses
			// when the pair is adjacent (labels are the only branch
			// targets, so nothing can jump between adjacent instructions).
			if fuse && isCmp(in.Op) && pc+1 < len(code) {
				if br := &code[pc+1]; br.Op == ir.OpBr && br.A.Kind == ir.VKReg && br.A.Reg == in.Dst {
					emit(pc, bcInstr{op: cmpBrBC(in.Op), dst: int32(in.Dst), a: operand(in.A), b: operand(in.B)})
					patches = append(patches, patch{len(bf.code) - 1, cf.branchPC[pc+1]})
					irToBC[pc+1] = int32(len(bf.code) - 1)
					pc++
					continue
				}
			}
			emit(pc, bcInstr{op: binaryBC(in.Op), dst: int32(in.Dst), a: operand(in.A), b: operand(in.B)})
		case ir.OpLoad:
			op := bcLoadN
			switch in.Size {
			case 1:
				op = bcLoad1
			case 8:
				op = bcLoad8
			}
			emit(pc, bcInstr{op: op, dst: int32(in.Dst), a: operand(in.A), aux: int32(in.Size)})
		case ir.OpStore:
			op := bcStoreN
			switch in.Size {
			case 1:
				op = bcStore1
			case 8:
				op = bcStore8
			}
			emit(pc, bcInstr{op: op, a: operand(in.A), b: operand(in.B), aux: int32(in.Size)})
		case ir.OpAddrL:
			slot := fn.Slots[in.A.Imm]
			off := int64(slot.Offset)
			// addrl + load/store through the just-formed address fuses
			// into a direct frame access when the access provably stays
			// inside the frame (which push has already bounds-checked
			// against the stack segment).
			if fuse && pc+1 < len(code) {
				nxt := &code[pc+1]
				if nxt.Op == ir.OpLoad && nxt.A.Kind == ir.VKReg && nxt.A.Reg == in.Dst &&
					loadWidthOK(nxt.Size) && off+int64(nxt.Size) <= int64(fn.FrameSize) {
					op := bcLoadL8
					if nxt.Size == 1 {
						op = bcLoadL1
					}
					emit(pc, bcInstr{op: op, dst: int32(nxt.Dst), a: int32(in.Dst), imm: off})
					irToBC[pc+1] = int32(len(bf.code) - 1)
					pc++
					continue
				}
				if nxt.Op == ir.OpStore && nxt.A.Kind == ir.VKReg && nxt.A.Reg == in.Dst &&
					loadWidthOK(nxt.Size) && off+int64(nxt.Size) <= int64(fn.FrameSize) {
					op := bcStoreL8
					if nxt.Size == 1 {
						op = bcStoreL1
					}
					emit(pc, bcInstr{op: op, a: int32(in.Dst), b: operand(nxt.B), imm: off})
					irToBC[pc+1] = int32(len(bf.code) - 1)
					pc++
					continue
				}
			}
			emit(pc, bcInstr{op: bcAddrL, dst: int32(in.Dst), imm: off})
		case ir.OpAddrG:
			ga, ok := globalAddr[in.Sym]
			if !ok {
				emit(pc, bcInstr{op: bcBadAddrG, aux: symIdx(in.Sym)})
				break
			}
			goff := ga - GlobalsBase
			if fuse && pc+1 < len(code) {
				nxt := &code[pc+1]
				if nxt.Op == ir.OpLoad && nxt.A.Kind == ir.VKReg && nxt.A.Reg == in.Dst &&
					loadWidthOK(nxt.Size) && goff+int64(nxt.Size) <= int64(globalsLen) {
					op := bcLoadG8
					if nxt.Size == 1 {
						op = bcLoadG1
					}
					emit(pc, bcInstr{op: op, dst: int32(nxt.Dst), a: int32(in.Dst), aux: int32(goff), imm: ga})
					irToBC[pc+1] = int32(len(bf.code) - 1)
					pc++
					continue
				}
				if nxt.Op == ir.OpStore && nxt.A.Kind == ir.VKReg && nxt.A.Reg == in.Dst &&
					loadWidthOK(nxt.Size) && goff+int64(nxt.Size) <= int64(globalsLen) {
					op := bcStoreG8
					if nxt.Size == 1 {
						op = bcStoreG1
					}
					emit(pc, bcInstr{op: op, a: int32(in.Dst), b: operand(nxt.B), aux: int32(goff), imm: ga})
					irToBC[pc+1] = int32(len(bf.code) - 1)
					pc++
					continue
				}
			}
			emit(pc, bcInstr{op: bcConst, dst: int32(in.Dst), imm: ga})
		case ir.OpAddrF:
			if addr, ok := m.addrByName[in.Sym]; ok {
				emit(pc, bcInstr{op: bcConst, dst: int32(in.Dst), imm: addr})
			} else {
				emit(pc, bcInstr{op: bcBadAddrF, aux: symIdx(in.Sym)})
			}
		case ir.OpJump:
			emit(pc, bcInstr{op: bcJump})
			patches = append(patches, patch{len(bf.code) - 1, cf.branchPC[pc]})
		case ir.OpBr:
			emit(pc, bcInstr{op: bcBr, a: operand(in.A)})
			patches = append(patches, patch{len(bf.code) - 1, cf.branchPC[pc]})
		case ir.OpCall, ir.OpCallPtr:
			info := bcCallInfo{site: int32(in.CallID), dst: int32(in.Dst), sym: in.Sym,
				countSite: m.siteCount == nil || m.siteCount[in.CallID]}
			if in.Op == ir.OpCall {
				ct := &cf.callees[pc]
				if ct.user != nil {
					info.user = m.bfuncs[ct.user.fn.Name]
				} else {
					info.ext = ct.ext
					info.extID = int32(ct.id)
					info.countExtEntry = m.entryCount == nil || m.entryCount[ct.id]
				}
			}
			info.args = make([]int32, len(in.Args))
			allConst := true
			for i, a := range in.Args {
				if a.Kind == ir.VKConst {
					info.args[i] = poolReg(a.Imm)
				} else {
					info.args[i] = int32(a.Reg)
					allConst = false
				}
			}
			if fuse && allConst {
				// call-with-const-args: the argument vector is fully known
				// at translate time.
				info.constArgs = make([]int64, len(in.Args))
				for i, a := range in.Args {
					info.constArgs[i] = a.Imm
				}
			}
			op := bcCall
			var target int32
			if in.Op == ir.OpCallPtr {
				op = bcCallPtr
				target = operand(in.A)
			}
			emit(pc, bcInstr{op: op, a: target, aux: int32(len(bf.calls))})
			bf.calls = append(bf.calls, info)
		case ir.OpRet:
			if in.A.Kind == ir.VKNone {
				emit(pc, bcInstr{op: bcRetVoid})
			} else {
				emit(pc, bcInstr{op: bcRet, a: operand(in.A)})
			}
		default:
			emit(pc, bcInstr{op: bcBadOp, aux: symIdx(in.Op.String())})
		}
	}
	irToBC[len(code)] = int32(len(bf.code))
	emit(len(code), bcInstr{op: bcEnd})

	for _, p := range patches {
		bf.code[p.bcPC].aux = irToBC[p.irTarget]
	}
	bf.numRegs = fn.NumRegs + len(bf.consts)
}
