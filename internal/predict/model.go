package predict

import (
	"bufio"
	_ "embed"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// The on-disk model format is a line-oriented text file in the spirit of
// the ILPROF profiler-to-compiler interface: small enough to check in and
// diff, strict enough that a corrupt or concatenated model can never
// silently skew the expander's weights.
//
//	ILPREDICT 1
//	coef bias 0.25
//	coef loopdepth 2.1
//	...                       (one line per FeatureNames entry)
//	param recursion 2
//	param domshare 0.9
//	param maxfreq 4096
//	param scale 64
//
// The decoder is strict: the magic line is mandatory, every coef and
// param directive must appear exactly once (no unknowns, no duplicates,
// no omissions), values must be finite, and the structural params must
// lie in their documented ranges. Any violation is a line-numbered error.
// Serialization is canonical — sorted directives, shortest round-trip
// float formatting — so write/parse/write is byte-stable (the property
// FuzzPredictModelDecoder checks).

const modelMagic = "ILPREDICT 1"

// Model holds the calibrated predictor: log-space feature coefficients
// plus the structural parameters the propagation pass uses.
type Model struct {
	// Coef are the log-linear feature coefficients: a site's expected
	// calls per caller invocation is exp(Coef · features), clamped to
	// [0, MaxFreq].
	Coef [NumFeatures]float64

	// Recursion multiplies the local frequency of arcs inside a
	// recursive cycle: a recursive call repeats, so its arc carries more
	// weight than the surrounding straight-line code suggests. Must be
	// positive.
	Recursion float64
	// DomShare is the fraction of a pointer-call site's weight guessed to
	// go to its dominant target (the nearest preceding address-of
	// operand); the remainder is split evenly over the other candidates.
	// Must lie in (0, 1].
	DomShare float64
	// MaxFreq clamps a single site's predicted calls per caller
	// invocation. Must be at least 1.
	MaxFreq float64
	// Scale is the synthetic profile's run denominator: predicted weights
	// are fixed-point with resolution 1/Scale (the profile carries
	// Runs=Scale and counts of weight×Scale), so fractional weights
	// survive the integer profile format. Must be at least 1.
	Scale float64
}

// structural params, in canonical (sorted) on-disk order.
var paramNames = []string{"domshare", "maxfreq", "recursion", "scale"}

// Validate checks the structural-parameter ranges and that every value is
// finite. The decoder calls it; Calibrate's output satisfies it by
// construction.
func (m *Model) Validate() error {
	for i, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("predict: coef %s is not finite", FeatureNames[i])
		}
	}
	switch {
	case math.IsNaN(m.Recursion) || m.Recursion <= 0:
		return fmt.Errorf("predict: param recursion %v outside (0, inf)", m.Recursion)
	case math.IsInf(m.Recursion, 0):
		return fmt.Errorf("predict: param recursion is not finite")
	case math.IsNaN(m.DomShare) || m.DomShare <= 0 || m.DomShare > 1:
		return fmt.Errorf("predict: param domshare %v outside (0, 1]", m.DomShare)
	case math.IsNaN(m.MaxFreq) || math.IsInf(m.MaxFreq, 0) || m.MaxFreq < 1:
		return fmt.Errorf("predict: param maxfreq %v outside [1, inf)", m.MaxFreq)
	case math.IsNaN(m.Scale) || math.IsInf(m.Scale, 0) || m.Scale < 1:
		return fmt.Errorf("predict: param scale %v outside [1, inf)", m.Scale)
	}
	return nil
}

// param returns a pointer to the named structural parameter.
func (m *Model) param(name string) *float64 {
	switch name {
	case "recursion":
		return &m.Recursion
	case "domshare":
		return &m.DomShare
	case "maxfreq":
		return &m.MaxFreq
	case "scale":
		return &m.Scale
	}
	return nil
}

// fmtFloat renders a coefficient in the canonical on-disk form: the
// shortest decimal that round-trips exactly, so write/parse/write is
// byte-stable.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTo serializes the model in canonical form.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintln(&sb, modelMagic)
	for i, name := range FeatureNames {
		fmt.Fprintf(&sb, "coef %s %s\n", name, fmtFloat(m.Coef[i]))
	}
	for _, name := range paramNames {
		fmt.Fprintf(&sb, "param %s %s\n", name, fmtFloat(*m.param(name)))
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// ReadModel parses a serialized model, strictly.
func ReadModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("predict: empty model input")
	}
	if sc.Text() != modelMagic {
		return nil, fmt.Errorf("predict: bad magic %q", sc.Text())
	}
	featIdx := make(map[string]int, NumFeatures)
	for i, name := range FeatureNames {
		featIdx[name] = i
	}
	m := &Model{}
	seenCoef := make(map[string]int)
	seenParam := make(map[string]int)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("predict: line %d: malformed %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || fields[2] != fmtFloat(v) {
			// Rejecting non-canonical spellings (1e0, +1, 01, inf) keeps
			// write/parse/write byte-stable and finiteness checkable here.
			return nil, fmt.Errorf("predict: line %d: bad value %q", lineNo, fields[2])
		}
		switch fields[0] {
		case "coef":
			i, ok := featIdx[fields[1]]
			if !ok {
				return nil, fmt.Errorf("predict: line %d: unknown feature %q", lineNo, fields[1])
			}
			if prev, dup := seenCoef[fields[1]]; dup {
				return nil, fmt.Errorf("predict: line %d: duplicate coef %q (first on line %d)", lineNo, fields[1], prev)
			}
			seenCoef[fields[1]] = lineNo
			m.Coef[i] = v
		case "param":
			p := m.param(fields[1])
			if p == nil {
				return nil, fmt.Errorf("predict: line %d: unknown param %q", lineNo, fields[1])
			}
			if prev, dup := seenParam[fields[1]]; dup {
				return nil, fmt.Errorf("predict: line %d: duplicate param %q (first on line %d)", lineNo, fields[1], prev)
			}
			seenParam[fields[1]] = lineNo
			*p = v
		default:
			return nil, fmt.Errorf("predict: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range FeatureNames {
		if _, ok := seenCoef[name]; !ok {
			return nil, fmt.Errorf("predict: missing coef %q", name)
		}
	}
	for _, name := range paramNames {
		if _, ok := seenParam[name]; !ok {
			return nil, fmt.Errorf("predict: missing param %q", name)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// defaultModelBytes is the checked-in calibrated model, regenerated by
// `go test ./internal/bench -run TestCalibratedDefaultModel -update`
// (see calibrate.go for the procedure and corpus).
//
//go:embed default.ilpredict
var defaultModelBytes []byte

var (
	defaultModelOnce sync.Once
	defaultModel     *Model
	defaultModelErr  error
)

// DefaultModel returns the embedded calibrated model. The file is checked
// in and covered by strict-parse tests and fuzzing, so a parse failure is
// a build corruption: it panics rather than returning a half-zero model
// that would silently mispredict everything.
func DefaultModel() *Model {
	defaultModelOnce.Do(func() {
		defaultModel, defaultModelErr = ReadModel(strings.NewReader(string(defaultModelBytes)))
	})
	if defaultModelErr != nil {
		panic(fmt.Sprintf("predict: embedded default.ilpredict is invalid: %v", defaultModelErr))
	}
	return defaultModel
}
