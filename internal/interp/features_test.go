package interp

import "testing"

func TestFeature2DArrays(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int grid[3][4];
int main() {
    int i; int j; int sum;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            grid[i][j] = i * 10 + j;
    sum = 0;
    for (i = 0; i < 3; i++) sum += grid[i][3];
    printf("%d %d\n", grid[2][1], sum);
    return 0;
}
`)
	if out != "21 39\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureEnumAndTypedef(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
enum { BUFSIZE = 64, MODE_A = 1, MODE_B };
typedef struct Pair Pair;
struct Pair { int a; int b; };
typedef int (*BinOp)(int, int);
int mul(int x, int y) { return x * y; }
int main() {
    Pair p;
    BinOp f;
    char buf[BUFSIZE];
    p.a = MODE_A; p.b = MODE_B;
    f = mul;
    buf[0] = 'x';
    printf("%d %d %d %c\n", p.a, p.b, f(6, 7), buf[0]);
    return 0;
}
`)
	if out != "1 2 42 x\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureGotoAndLabels(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    int i; int n;
    i = 0; n = 0;
again:
    i++;
    if (i > 10) goto done;
    if (i % 2) goto again;
    n += i;
    goto again;
done:
    printf("%d\n", n);
    return 0;
}
`)
	if out != "30\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeaturePointerWalk(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int count(char *s, char c) {
    int n;
    n = 0;
    while (*s) { if (*s == c) n++; s++; }
    return n;
}
int main() {
    char *msg;
    msg = "abracadabra";
    printf("%d %d\n", count(msg, 'a'), count(msg, 'z'));
    return 0;
}
`)
	if out != "5 0\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureStructPointersAndLinkedList(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
extern int malloc(int n);
struct Node { int val; struct Node *next; };
int main() {
    struct Node *head; struct Node *n; int i; int sum;
    head = 0;
    for (i = 1; i <= 5; i++) {
        n = (struct Node *)malloc(sizeof(struct Node));
        n->val = i * i;
        n->next = head;
        head = n;
    }
    sum = 0;
    for (n = head; n; n = n->next) sum += n->val;
    printf("%d\n", sum);
    return 0;
}
`)
	if out != "55\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureCharArithmeticAndHexOctal(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    char c;
    int x;
    c = 'A' + 2;
    x = 0x1f + 010; // 31 + 8
    printf("%c %d %d\n", c, x, (char)(300));
    return 0;
}
`)
	if out != "C 39 44\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureFileIO(t *testing.T) {
	m := compileSrc(t, `
extern int open(char *path, int mode);
extern int close(int fd);
extern int getc(int fd);
extern int putc(int c, int fd);
extern int printf(char *fmt, ...);
int main() {
    int in; int out; int c; int n;
    in = open("input.txt", 0);
    out = open("copy.txt", 1);
    if (in < 0 || out < 0) { printf("open failed\n"); return 1; }
    n = 0;
    while ((c = getc(in)) != -1) { putc(c, out); n++; }
    close(in);
    close(out);
    printf("copied %d\n", n);
    return 0;
}
`)
	m.Env.Files["input.txt"] = []byte("hello file")
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Env.Stdout.String(); got != "copied 10\n" {
		t.Errorf("stdout = %q", got)
	}
	if got := string(m.Env.Files["copy.txt"]); got != "hello file" {
		t.Errorf("copy.txt = %q", got)
	}
}

func TestFeatureDeepRecursionStackOverflow(t *testing.T) {
	file, err := parserParse(`
int eat(int n) {
    int pad[2048];
    pad[0] = n;
    if (n == 0) return 0;
    return eat(n - 1) + pad[0];
}
int main() { return eat(1000000); }
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := buildMachine(file)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, err = m.Run()
	if err == nil {
		t.Fatalf("expected control stack overflow")
	}
	if !containsStr(err.Error(), "control stack overflow") {
		t.Errorf("error = %v, want control stack overflow", err)
	}
}
