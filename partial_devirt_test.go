package inlinec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"inlinec/internal/interp"
	"inlinec/internal/obs"
	"inlinec/internal/testgen"
)

// partialDevirtParams is the differential configuration: a per-callee
// limit tight enough that testgen's hot/cold bodies overflow it, with
// both guarded-expansion features switched on.
func partialDevirtParams() Params {
	p := DefaultParams()
	p.WeightThreshold = 1
	p.SizeLimitFactor = 3.0
	p.MaxCalleeSize = 60
	p.PartialInline = true
	p.DevirtThreshold = 0.5
	return p
}

// transformAt compiles src, profiles it, and runs the guarded expander
// at the given worker count, returning the program, its base profile,
// the inline result, and the decision trace serialized as JSONL.
func transformAt(t *testing.T, src string, par int, inputs []Input) (*Program, *Profile, *Result, string) {
	t.Helper()
	p, err := Compile("pd.c", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	p.Parallelism = par
	base, err := p.ProfileInputs(inputs...)
	if err != nil {
		t.Fatalf("base profile (par %d): %v", par, err)
	}
	res, err := p.Inline(base, partialDevirtParams())
	if err != nil {
		t.Fatalf("inline (par %d): %v", par, err)
	}
	var tr strings.Builder
	if err := obs.WriteInlineTraceJSONL(&tr, res.Trace); err != nil {
		t.Fatal(err)
	}
	return p, base, res, tr.String()
}

// TestPropertyPartialDevirtDifferential is the differential layer for
// region-based partial inlining and guarded devirtualization. For random
// programs shaped to trigger both features it checks, per seed:
//
//  1. The transformed module and its decision trace are byte-identical
//     at Parallelism 1, 2, and 8 (region plans are snapshotted during
//     serial selection, so waves cannot race).
//  2. Program output is byte-identical to the original under both
//     interpreter engines and all three profile modes — the guards are
//     plain IL, so no engine needs to know the features exist.
//  3. Fallback counters are exact: a devirtualized site keeps its
//     original call id on the CALLPTR fallback, so its transformed
//     full-profile count must equal the base count minus the dominant
//     target's count, and the residual target histogram must be the
//     base histogram with the dominant entry removed. Per-target
//     histograms are exact even in sampled mode.
//  4. A partially inlined site's fallback fires at most as often as the
//     original call did.
//  5. Minimal-mode profiles of the transformed module serialize
//     byte-identically to full mode — flow-conservation reconstruction
//     stays exact across the new guard diamonds.
//
// An aggregate assertion at the end requires that both features
// actually fired across the seed set, so the suite cannot rot into
// vacuous passes if selection stops accepting them.
func TestPropertyPartialDevirtDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	shapes := []testgen.Options{
		{Funcs: 6, HotColdBodies: true, DominantFuncPtr: true},
		{Funcs: 5, HotColdBodies: true},
		{Funcs: 7, DominantFuncPtr: true, MaxStmts: 8},
		{Funcs: 8, HotColdBodies: true, DominantFuncPtr: true, Extern: true},
	}
	inputs := []Input{{}, {}, {}}
	const sampleK = 8

	var totalPartial, totalDevirt int64
	t.Run("seeds", func(t *testing.T) {
		for seed := int64(500); seed < 516; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				src := testgen.Generate(seed, shapes[int(seed)%len(shapes)])

				ref, base, res, refTrace := transformAt(t, src, 1, inputs)
				want := make([]string, len(inputs))
				for i, in := range inputs {
					out, err := ref.RunOriginal(in)
					if err != nil {
						t.Fatalf("run original: %v", err)
					}
					want[i] = out.Stdout
				}
				refMod := ref.Module.String()

				// (1) Determinism across worker counts.
				for _, par := range []int{2, 8} {
					p, _, _, trace := transformAt(t, src, par, inputs)
					if got := p.Module.String(); got != refMod {
						t.Errorf("transformed module differs at Parallelism %d", par)
					}
					if trace != refTrace {
						t.Errorf("decision trace differs at Parallelism %d:\n%s\nvs\n%s", par, refTrace, trace)
					}
				}

				var partial, devirt []obs.ArcEvent
				for _, ev := range res.Trace {
					switch ev.Outcome {
					case obs.OutcomePartialInlined:
						partial = append(partial, ev)
					case obs.OutcomeDevirtualized:
						devirt = append(devirt, ev)
					}
				}
				atomic.AddInt64(&totalPartial, int64(len(partial)))
				atomic.AddInt64(&totalDevirt, int64(len(devirt)))

				// Reference serialization of the transformed module's full
				// profile, for the minimal-mode byte-identity check.
				profileAs := func(engine, mode string, rate int) *Profile {
					t.Helper()
					ref.Engine, ref.ProfileMode, ref.SampleRate = engine, mode, rate
					prof, err := ref.ProfileInputs(inputs...)
					if err != nil {
						t.Fatalf("profile transformed (engine %s, mode %s): %v", engine, mode, err)
					}
					return prof
				}
				serialize := func(p *Profile) string {
					var sb strings.Builder
					if _, err := p.WriteTo(&sb); err != nil {
						t.Fatal(err)
					}
					return sb.String()
				}
				tfull := profileAs(interp.EngineBytecode, interp.ProfileFull, 0)
				refSerial := serialize(tfull)

				for _, engine := range []string{interp.EngineBytecode, interp.EngineSwitch} {
					for _, mode := range []string{interp.ProfileFull, interp.ProfileMinimal, interp.ProfileSampled} {
						rate := 0
						if mode == interp.ProfileSampled {
							rate = sampleK
						}
						ref.Engine, ref.ProfileMode, ref.SampleRate = engine, mode, rate

						// (2) Output byte-identity on every input.
						for i, in := range inputs {
							out, err := ref.Run(in)
							if err != nil {
								t.Fatalf("run transformed (engine %s, mode %s): %v", engine, mode, err)
							}
							if out.Stdout != want[i] {
								t.Errorf("output diverged (engine %s, mode %s, input %d)\nwant %q\ngot  %q\nsource:\n%s",
									engine, mode, i, want[i], out.Stdout, src)
							}
						}

						prof := profileAs(engine, mode, rate)
						switch mode {
						case interp.ProfileFull, interp.ProfileMinimal:
							// (5) Exact modes serialize byte-identically.
							if got := serialize(prof); got != refSerial {
								t.Errorf("%s/%s profile of transformed module not byte-identical to full:\n%s\nvs\n%s",
									engine, mode, refSerial, got)
							}
						case interp.ProfileSampled:
							bound := int64((sampleK - 1) * len(inputs))
							for id, exact := range tfull.SiteCounts {
								if got := prof.SiteCounts[id]; got > exact || exact-got > bound {
									t.Errorf("sampled site %d count %d outside [%d-%d, %d] (engine %s)",
										id, got, exact, bound, exact, engine)
								}
							}
						}

						// (3) Devirt fallback counters: exact in every mode for
						// the per-target histogram, exact in exact modes for the
						// site counter.
						for _, ev := range devirt {
							dom, domCount, _ := base.DominantTarget(ev.Site)
							wantFallback := base.SiteCounts[ev.Site] - domCount
							if mode != interp.ProfileSampled {
								if got := prof.SiteCounts[ev.Site]; got != wantFallback {
									t.Errorf("devirt site %d fallback count %d, want %d (= %d base - %d dominant %s) (engine %s, mode %s)",
										ev.Site, got, wantFallback, base.SiteCounts[ev.Site], domCount, dom, engine, mode)
								}
							}
							if got := prof.PtrTargets[ev.Site][dom]; got != 0 {
								t.Errorf("devirt site %d still resolves %d calls to dominant %s (engine %s, mode %s)",
									ev.Site, got, dom, engine, mode)
							}
							for tgt, n := range base.PtrTargets[ev.Site] {
								if tgt == dom {
									continue
								}
								if got := prof.PtrTargets[ev.Site][tgt]; got != n {
									t.Errorf("devirt site %d residual target %s count %d, want %d (engine %s, mode %s)",
										ev.Site, tgt, got, n, engine, mode)
								}
							}
						}

						// (4) Partial fallback never fires more often than the
						// original call.
						if mode != interp.ProfileSampled {
							for _, ev := range partial {
								if got := prof.SiteCounts[ev.Site]; got > base.SiteCounts[ev.Site] {
									t.Errorf("partial site %d fallback count %d exceeds original %d (engine %s, mode %s)",
										ev.Site, got, base.SiteCounts[ev.Site], engine, mode)
								}
							}
						}
					}
				}
			})
		}
	})

	if totalPartial == 0 {
		t.Errorf("no partial inlines fired across the seed set — the differential layer is vacuous")
	}
	if totalDevirt == 0 {
		t.Errorf("no devirtualizations fired across the seed set — the differential layer is vacuous")
	}
}
