package callgraph

import (
	"sort"

	"inlinec/internal/ir"
	"inlinec/internal/token"
)

// SiteInfo describes one static call site in a form that survives
// call-site id renumbering: raw ids are assigned globally in module order,
// so inserting one function (or one call) shifts every later id, while the
// (caller, callee, ordinal) triple only moves when the caller itself is
// edited. The profdb subsystem keys persistent profiles on this triple
// plus a source-position hash; the call graph owns the enumeration so the
// two stay consistent about what a "site" is.
type SiteInfo struct {
	// ID is the current module's raw call-site id (Instr.CallID).
	ID int
	// Caller is the containing function's name.
	Caller string
	// Callee is the called function's name — a user function or an extern —
	// or PointerNodeName for calls through pointers, matching the graph's
	// ### summary node.
	Callee string
	// Ordinal is the index of this site among Caller's static calls to
	// Callee, in code order (0-based). It disambiguates repeated calls to
	// the same callee without depending on global ids.
	Ordinal int
	// Pos is the call's source position (best effort; may be zero).
	Pos token.Pos
	// Instr is the instruction index within the caller's Code.
	Instr int
	// ViaPointer marks a call-through-pointer site.
	ViaPointer bool
}

// StableSites enumerates every call site of the module in deterministic
// order (module function order, then code order) with per-(caller, callee)
// ordinals assigned.
func StableSites(mod *ir.Module) []SiteInfo {
	var sites []SiteInfo
	for _, f := range mod.Funcs {
		ord := make(map[string]int)
		for i := range f.Code {
			in := &f.Code[i]
			var callee string
			switch in.Op {
			case ir.OpCall:
				callee = in.Sym
			case ir.OpCallPtr:
				callee = PointerNodeName
			default:
				continue
			}
			sites = append(sites, SiteInfo{
				ID:         in.CallID,
				Caller:     f.Name,
				Callee:     callee,
				Ordinal:    ord[callee],
				Pos:        in.Pos,
				Instr:      i,
				ViaPointer: in.Op == ir.OpCallPtr,
			})
			ord[callee]++
		}
	}
	return sites
}

// PointerCallees returns the names of the functions a call through a
// pointer may reach — the callees of the ### summary node's worst-case
// arcs — sorted for determinism. This is the candidate set weight
// prediction spreads a pointer site's guessed targets over when the
// caller itself takes no function addresses.
func (g *Graph) PointerCallees() []string {
	names := make([]string, 0, len(g.Pointer.Out))
	for _, a := range g.Pointer.Out {
		if !a.Callee.IsSpecial() {
			names = append(names, a.Callee.Name)
		}
	}
	sort.Strings(names)
	return names
}
