package fleet

// In-process fleet tests: real Nodes behind httptest servers, a real
// Router, and the chaos network injector between them. The headline
// property is read identity — a routed merged read must be
// byte-identical to a single node holding all the data, at any shard
// count, replication factor, or ingest order — plus the quorum status
// protocol and anti-entropy convergence.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inlinec/internal/chaos"
	"inlinec/internal/profdb"
)

// testRec builds a synthetic but fully-populated record, distinct per
// (fp, gen, salt) so winner comparisons have real content to bite on.
func testRec(fp string, gen int, runs int, salt int64) *profdb.Record {
	r := profdb.NewRecord(fp, gen)
	r.Runs = runs
	r.IL = 1000 + salt
	r.Control = 400 + salt
	r.Calls = 60 + salt
	r.Returns = 60 + salt
	r.MaxStack = 5
	r.Funcs = map[string]int64{"main": 7 + salt, "work": 21 + salt, "leaf": 3}
	r.Sites = map[profdb.SiteKey]int64{
		{Caller: "main", Callee: "work", Ordinal: 0, PosHash: 0x11}: 21 + salt,
		{Caller: "work", Callee: "leaf", Ordinal: 1, PosHash: 0x22}: 3,
	}
	return r
}

// testFleet is N in-memory nodes + a router, wired through a chaos
// Network so tests can partition and "restart" nodes.
type testFleet struct {
	t     *testing.T
	names []string // logical peer URLs ("http://node0", ...)
	nodes map[string]*Node
	srvs  map[string]*httptest.Server
	net   *chaos.Network
	rt    *Router
	rtSrv *httptest.Server
}

func newTestFleet(t *testing.T, n, replicas int) *testFleet {
	t.Helper()
	f := &testFleet{
		t:     t,
		nodes: make(map[string]*Node),
		srvs:  make(map[string]*httptest.Server),
		net:   chaos.NewNetwork(nil),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("http://node%d", i)
		f.names = append(f.names, name)
		node := NewNode(profdb.NewDB(""), 0)
		node.Start()
		srv := httptest.NewServer(node.Handler())
		f.nodes[name] = node
		f.srvs[name] = srv
		f.net.SetAddr(strings.TrimPrefix(name, "http://"), srv.URL)
	}
	rt, err := NewRouter(f.names, replicas, RouterOptions{
		Transport: f.net,
		Timeout:   5 * time.Second,
		Attempts:  2,
		Backoff:   -1, // literally zero: injected dial failures retry instantly
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.rtSrv = httptest.NewServer(rt.Handler())
	return f
}

func (f *testFleet) close() {
	f.rtSrv.Close()
	for _, name := range f.names {
		f.srvs[name].Close()
		f.nodes[name].Stop()
	}
}

// logical strips the scheme: chaos.Network keys hosts, peers are URLs.
func logical(peer string) string { return strings.TrimPrefix(peer, "http://") }

// postRouter sends one snapshot through the router, returning status
// code and body.
func (f *testFleet) postRouter(program string, rec *profdb.Record) (int, string) {
	f.t.Helper()
	var buf bytes.Buffer
	if _, err := profdb.WriteSnapshot(&buf, program, rec); err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.Post(f.rtSrv.URL+"/ingest", "text/plain", &buf)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestMergedReadByteIdentity is the acceptance property: the routed
// merged read is byte-identical at N=1/3/5, R=1/2, regardless of
// ingest order.
func TestMergedReadByteIdentity(t *testing.T) {
	// The workload: 6 fingerprints x 3 generations, several copies each.
	type ingest struct {
		rec *profdb.Record
	}
	var work []ingest
	var fps []string
	for i := 0; i < 6; i++ {
		fp := fmt.Sprintf("%016x", uint64(0xabc123)+uint64(i)*0x1111)
		fps = append(fps, fp)
		for gen := 0; gen < 3; gen++ {
			for copyN := 0; copyN <= i%3; copyN++ {
				work = append(work, ingest{rec: testRec(fp, gen, 1+copyN, int64(i*10+gen))})
			}
		}
	}

	// Reference: one in-memory node holding everything.
	ref := NewNode(profdb.NewDB(""), 0)
	ref.Start()
	refSrv := httptest.NewServer(ref.Handler())
	defer refSrv.Close()
	defer ref.Stop()
	for _, in := range work {
		var buf bytes.Buffer
		profdb.WriteSnapshot(&buf, "ident.c", in.rec)
		resp, err := http.Post(refSrv.URL+"/ingest", "text/plain", &buf)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference ingest: status %d", resp.StatusCode)
		}
	}
	want := make(map[string][]byte)
	for _, fp := range fps {
		code, body := httpGet(t, refSrv.URL+"/profile?fingerprint="+fp)
		if code != http.StatusOK {
			t.Fatalf("reference read %s: status %d: %s", fp, code, body)
		}
		want[fp] = body
	}

	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 3, 5} {
		for _, r := range []int{1, 2} {
			for order := 0; order < 2; order++ {
				name := fmt.Sprintf("N%d_R%d_order%d", n, r, order)
				t.Run(name, func(t *testing.T) {
					f := newTestFleet(t, n, r)
					defer f.close()
					seq := append([]ingest(nil), work...)
					if order == 1 {
						rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
					}
					for _, in := range seq {
						if code, body := f.postRouter("ident.c", in.rec); code != http.StatusOK {
							t.Fatalf("router ingest: status %d: %s", code, body)
						}
					}
					for _, fp := range fps {
						code, got := httpGet(t, f.rtSrv.URL+"/profile?fingerprint="+fp)
						if code != http.StatusOK {
							t.Fatalf("router read %s: status %d: %s", fp, code, got)
						}
						if !bytes.Equal(got, want[fp]) {
							t.Errorf("%s: routed read differs from single-node read:\n--- fleet ---\n%s--- single ---\n%s",
								fp, got, want[fp])
						}
					}
				})
			}
		}
	}
}

// TestQuorumStatusProtocol pins the write-side contract: 200 only when
// every replica committed; 503 (safe retry) only when provably nothing
// committed; 502 (do not retry) on partial commit.
func TestQuorumStatusProtocol(t *testing.T) {
	f := newTestFleet(t, 3, 2)
	defer f.close()
	fp := fmt.Sprintf("%016x", uint64(0xfeed0001))
	owners := f.rt.Ring().Owners(fp)
	if len(owners) != 2 {
		t.Fatalf("expected 2 owners, got %v", owners)
	}

	// All up: acked.
	if code, body := f.postRouter("q.c", testRec(fp, 0, 3, 1)); code != http.StatusOK {
		t.Fatalf("healthy ingest: status %d: %s", code, body)
	}

	// Both owners cut: nothing commits, provably — 503.
	f.net.Partition(logical(owners[0]), logical(owners[1]))
	if code, body := f.postRouter("q.c", testRec(fp, 0, 5, 1)); code != http.StatusServiceUnavailable {
		t.Fatalf("full partition: status %d, want 503: %s", code, body)
	}

	// One owner cut: the other commits — partial, 502.
	f.net.Heal()
	f.net.Partition(logical(owners[1]))
	code, body := f.postRouter("q.c", testRec(fp, 0, 7, 1))
	if code != http.StatusBadGateway {
		t.Fatalf("partial partition: status %d, want 502: %s", code, body)
	}

	// Healed read sees the acked 3 runs plus the partially-committed 7:
	// the reader combines per-key winners, and the surviving owner's
	// copy carries both.
	f.net.Heal()
	code, got := httpGet(t, f.rtSrv.URL+"/profile?fingerprint="+fp)
	if code != http.StatusOK {
		t.Fatalf("healed read: status %d: %s", code, got)
	}
	_, rec, err := profdb.ReadSnapshot(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Runs != 3+7 {
		t.Errorf("healed read has %d runs, want 10 (3 acked + 7 partial)", rec.Runs)
	}

	// The client-side policy: a router 502 must not be retried, a router
	// 503 must be classified not-committed.
	if profdb.NotCommitted(&profdb.HTTPError{StatusCode: http.StatusBadGateway}) {
		t.Error("502 classified as not-committed")
	}
	if !profdb.NotCommitted(&profdb.HTTPError{StatusCode: http.StatusServiceUnavailable}) {
		t.Error("503 not classified as not-committed")
	}
}

// TestAntiEntropyConvergence: partial commits leave replicas diverged;
// sweeps must push every winner back until the fleet is byte-identical
// to the reference, and converged sweeps must be stable (push nothing).
func TestAntiEntropyConvergence(t *testing.T) {
	f := newTestFleet(t, 3, 2)
	defer f.close()

	refDB := profdb.NewDB("ae.c")
	var fps []string
	for i := 0; i < 5; i++ {
		fp := fmt.Sprintf("%016x", uint64(0xae0000)+uint64(i)*0x777)
		fps = append(fps, fp)
		owners := f.rt.Ring().Owners(fp)
		// Three clean ingests, then two that land only on owners[0]
		// (owners[1] partitioned away): replicas now diverge.
		for k := 0; k < 3; k++ {
			rec := testRec(fp, k%2, 2, int64(i))
			if code, body := f.postRouter("ae.c", rec); code != http.StatusOK {
				t.Fatalf("clean ingest: status %d: %s", code, body)
			}
			refDB.Ingest(rec)
		}
		f.net.Partition(logical(owners[1]))
		for k := 0; k < 2; k++ {
			rec := testRec(fp, k%2, 3, int64(i))
			if code, _ := f.postRouter("ae.c", rec); code != http.StatusBadGateway {
				t.Fatalf("expected partial 502, got %d", code)
			}
			refDB.Ingest(rec) // committed on owners[0]; counts in the fleet view
		}
		f.net.Heal()
	}

	// Sweep until converged (bounded).
	var last *SweepResult
	for i := 0; i < 6; i++ {
		res, err := f.rt.RepairSweep()
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		last = res
		if res.Converged {
			break
		}
	}
	if last == nil || !last.Converged {
		t.Fatalf("fleet did not converge: %+v", last)
	}

	// Every owner now holds the winner copy, byte-identically.
	for _, fp := range fps {
		for gen := 0; gen < 2; gen++ {
			key := profdb.RecordKey{Fingerprint: fp, Gen: gen}
			want := refDB.Records[key]
			if want == nil {
				continue
			}
			for _, owner := range f.rt.Ring().Owners(fp) {
				node := f.nodes[owner]
				got := node.DB().Records[key]
				if got == nil {
					t.Fatalf("%s missing %v after convergence", owner, key)
				}
				if !bytes.Equal(recordBytes(got), recordBytes(want)) {
					t.Errorf("%s diverges on %v after convergence", owner, key)
				}
			}
		}
	}

	// A converged fleet's merged read equals the reference database's.
	for _, fp := range fps {
		code, got := httpGet(t, f.rtSrv.URL+"/profile?fingerprint="+fp)
		if code != http.StatusOK {
			t.Fatalf("read %s: status %d", fp, code)
		}
		merged, stats := refDB.Merge(fp, profdb.DefaultMergeParams())
		if stats.Records == 0 {
			t.Fatalf("reference lost %s", fp)
		}
		var want bytes.Buffer
		profdb.WriteSnapshot(&want, "ae.c", merged)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: converged fleet read differs from reference", fp)
		}
	}

	// Stability: an immediately repeated sweep pushes nothing.
	res, err := f.rt.RepairSweep()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pushed != 0 || !res.Converged {
		t.Errorf("repeat sweep not stable: %+v", res)
	}
}

// TestRouterCoverage: reads require every shard reachable; /healthz
// reports membership.
func TestRouterCoverage(t *testing.T) {
	f := newTestFleet(t, 3, 1)
	defer f.close()
	fp := fmt.Sprintf("%016x", uint64(0xc0ffee))
	if code, body := f.postRouter("cov.c", testRec(fp, 0, 1, 0)); code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", code, body)
	}
	if code, _ := httpGet(t, f.rtSrv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthy fleet /healthz: %d", code)
	}
	// R=1: any node down breaks coverage — reads and healthz go 503.
	f.net.Partition(logical(f.names[1]))
	if code, _ := httpGet(t, f.rtSrv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("partitioned fleet /healthz: %d, want 503", code)
	}
	code, body := httpGet(t, f.rtSrv.URL+"/profile?fingerprint="+fp)
	if code != http.StatusServiceUnavailable {
		t.Errorf("uncovered read: %d, want 503: %s", code, body)
	}
	f.net.Heal()
	if code, _ := httpGet(t, f.rtSrv.URL+"/profile?fingerprint="+fp); code != http.StatusOK {
		t.Errorf("healed read: %d, want 200", code)
	}
}

// TestNodeRepairAdoptIfBetter pins the node-side adoption rule:
// strictly-better copies replace, equal or worse pushes are ignored.
func TestNodeRepairAdoptIfBetter(t *testing.T) {
	node := NewNode(profdb.NewDB("n.c"), 0)
	node.Start()
	defer node.Stop()
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	client := profdb.NewClient(srv.URL)
	client.Attempts = 1

	if _, err := client.PostSnapshot("n.c", testRec("aa01", 0, 2, 5)); err != nil {
		t.Fatal(err)
	}

	// A better copy (more runs) is adopted.
	push := profdb.NewDB("n.c")
	better := testRec("aa01", 0, 9, 5)
	push.Records[profdb.RecordKey{Fingerprint: "aa01", Gen: 0}] = better
	adopted, err := client.PostRepair(push)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 1 {
		t.Fatalf("adopted = %d, want 1", adopted)
	}
	db, err := client.FetchDB()
	if err != nil {
		t.Fatal(err)
	}
	got := db.Records[profdb.RecordKey{Fingerprint: "aa01", Gen: 0}]
	if got == nil || got.Runs != 9 {
		t.Fatalf("node did not adopt the better copy: %+v", got)
	}

	// Re-pushing the same copy is a no-op (idempotent)...
	adopted, err = client.PostRepair(push)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 {
		t.Errorf("re-push adopted %d, want 0", adopted)
	}
	// ...and a worse copy never regresses the node.
	worse := profdb.NewDB("n.c")
	worse.Records[profdb.RecordKey{Fingerprint: "aa01", Gen: 0}] = testRec("aa01", 0, 1, 5)
	adopted, err = client.PostRepair(worse)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 {
		t.Errorf("worse push adopted %d, want 0", adopted)
	}
}

// TestWinnerOrderTotal sanity-checks betterRecord: asymmetric, total,
// and equality-stable.
func TestWinnerOrderTotal(t *testing.T) {
	a := testRec("bb01", 0, 5, 1)
	b := testRec("bb01", 0, 5, 2) // same runs, different content
	c := testRec("bb01", 0, 6, 1)
	if betterRecord(a, a) {
		t.Error("record beats itself")
	}
	if betterRecord(a, b) == betterRecord(b, a) {
		t.Error("tie-break not asymmetric for distinct content")
	}
	if !betterRecord(c, a) || betterRecord(a, c) {
		t.Error("runs ordering wrong")
	}
	if !betterRecord(a, nil) || betterRecord(nil, a) {
		t.Error("nil handling wrong")
	}
}
