package inlinec

import (
	"testing"

	"inlinec/internal/interp"
	"inlinec/internal/ir"
	"inlinec/internal/irgen"
	"inlinec/internal/parser"
	"inlinec/internal/sema"
)

// FuzzCompileAndRun drives the whole pipeline on arbitrary source: any
// input that survives the front end must lower to verified IL, execute
// under a small instruction budget without panicking, and still behave
// identically after inline expansion. Runtime errors (faults, overflow,
// budget) are fine; panics and divergence are not.
func FuzzCompileAndRun(f *testing.F) {
	seeds := []string{
		"int main() { return 42; }",
		`extern int printf(char *f, ...);
int sq(int x) { return x * x; }
int main() { printf("%d\n", sq(7)); return 0; }`,
		`int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`,
		`int main() { int a[4]; int i; for (i=0;i<4;i++) a[i]=i; return a[3]; }`,
		`struct P { int x; char c; };
int main() { struct P p; p.x = 1; p.c = 'z'; return p.x + p.c; }`,
		`int h(int x) { return x ^ 0x5a; }
int g(int x) { return h(x) + h(x+1); }
int main() { int i; int s; s=0; for (i=0;i<9;i++) s+=g(i); return s & 0x7f; }`,
		`int main() { char *s; s = "abc"; return s[0] + s[1]; }`,
		`int main() { int x; x = 1 / 1; return x % 1; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip()
		}
		file, err := parser.Parse("fuzz.c", src)
		if err != nil {
			return
		}
		prog, err := sema.Check(file)
		if err != nil {
			return
		}
		mod, err := irgen.Generate(prog)
		if err != nil {
			return
		}
		if err := mod.Verify(); err != nil {
			t.Fatalf("front end produced invalid IL: %v\nsource:\n%s", err, src)
		}
		if mod.Func("main") == nil {
			return
		}
		run := func(m *ir.Module) (string, bool) {
			mm, err := interp.NewMachine(m, interp.NewEnv(), interp.Options{
				MaxIL: 200000, StackSize: 1 << 20, HeapSize: 1 << 20,
			})
			if err != nil {
				return "", false
			}
			if _, err := mm.Run(); err != nil {
				return "", false
			}
			return mm.Env.Stdout.String(), true
		}
		before, okBefore := run(mod)
		if !okBefore {
			return // runtime error: acceptable, nothing to compare
		}
		p := &Program{Module: mod, Original: mod.Clone(), name: "fuzz.c"}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			return
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 3.0
		if _, err := p.Inline(prof, params); err != nil {
			t.Fatalf("inline failed on valid program: %v\nsource:\n%s", err, src)
		}
		after, okAfter := run(p.Module)
		if !okAfter {
			t.Fatalf("program broke after inlining\nsource:\n%s", src)
		}
		if before != after {
			t.Fatalf("inlining changed output %q -> %q\nsource:\n%s", before, after, src)
		}
	})
}
