// Call-graph anatomy: builds the weighted call graph of a program that
// exhibits every structure section 2 of the paper discusses — external
// functions (the $$$ node), calls through pointers (the ### node), simple
// and mutual recursion, an unreachable function, and address-taken
// functions — then prints the graph, its hazards, and the Graphviz dot
// rendering.
package main

import (
	"fmt"
	"log"

	"inlinec"
)

const src = `
extern int printf(char *fmt, ...);
extern int getchar();

/* simple recursion: an arc from fact to itself */
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}

/* mutual recursion: a two-node cycle */
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }

/* address-taken functions reached through a pointer (###) */
int plus(int a, int b) { return a + b; }
int minus(int a, int b) { return a - b; }
int apply(int (*op)(int, int), int a, int b) { return op(a, b); }

/* never called and not address-taken; still kept alive by the
 * worst-case rules because the module calls external functions */
int orphan(int x) { return x * 3; }

int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 20; i++) acc += apply(plus, i, fact(3));
    acc = apply(minus, acc, is_even(10));
    printf("%d\n", acc);
    return 0;
}
`

func main() {
	prog, err := inlinec.Compile("anatomy.c", src)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := prog.ProfileInputs(inlinec.Input{})
	if err != nil {
		log.Fatal(err)
	}
	g := prog.CallGraph(prof)

	fmt.Print(g)
	fmt.Println()

	fmt.Println("recursion analysis:")
	for name, node := range g.Nodes {
		strict := g.Recursive(node)
		conservative := g.ConservativelyRecursive(node)
		if strict || conservative {
			fmt.Printf("  %-10s strict=%v conservative(via $$$/###)=%v\n",
				name, strict, conservative)
		}
	}

	fmt.Println("\nunreachable functions (conservative rules):")
	dead := g.UnreachableFunctions()
	if len(dead) == 0 {
		fmt.Println("  none — external calls force the worst-case assumption",
			"that $$$ may call anything (section 2.6)")
	}
	for _, d := range dead {
		fmt.Printf("  %s\n", d)
	}

	fmt.Println("\ncall-site classes:")
	classes := g.Classify(inlinec.DefaultClassifyParams())
	for _, a := range g.Arcs {
		fmt.Printf("  site %-3d %-10s -> %-10s w=%-6.0f %s\n",
			a.ID, a.Caller.Name, a.Callee.Name, a.Weight, classes[a])
	}

	fmt.Println("\ndot rendering (pipe into `dot -Tsvg`):")
	fmt.Print(g.Dot())
}
