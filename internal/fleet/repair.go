package fleet

import (
	"bytes"
	"fmt"

	"inlinec/internal/profdb"
)

// The fleet's convergence story rests on one total order over records.
//
// profdb records are accumulating counters with no per-ingest identity,
// so diverged replicas cannot be unioned — there is no way to tell
// which ingests a lagging copy is missing. Instead the fleet relies on
// the write quorum: an ingest is acked only when EVERY owner of its key
// committed it, so each replica's copy of a key is a prefix of the same
// ingest sequence and the longest copy — the winner — contains every
// acked ingest. Anti-entropy therefore never merges: it replaces losing
// copies with the winner, which is provably acked-preserving.

// recordBytes is the canonical serialization used for winner
// tie-breaks; the program name is irrelevant to the order and omitted.
func recordBytes(rec *profdb.Record) []byte {
	var buf bytes.Buffer
	profdb.WriteSnapshot(&buf, "", rec)
	return buf.Bytes()
}

// betterRecord reports whether a beats b in the winner order: more
// Runs first, ties broken toward the lexicographically larger
// canonical serialization. Equal serializations are equal records —
// neither beats the other, so adoption terminates. Total and
// deterministic: every router instance picks the same winner from the
// same copies.
func betterRecord(a, b *profdb.Record) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	if a.Runs != b.Runs {
		return a.Runs > b.Runs
	}
	return bytes.Compare(recordBytes(a), recordBytes(b)) > 0
}

// combineWinners folds replica databases into the fleet view: the
// per-key winner across all copies. Because the winner order is total,
// the result is independent of the order dbs are supplied in. Records
// are shared, not copied — callers must treat the result as read-only.
func combineWinners(dbs []*profdb.DB) (*profdb.DB, error) {
	out := profdb.NewDB("")
	for _, db := range dbs {
		if db == nil {
			continue
		}
		if db.Program != "" {
			if out.Program == "" {
				out.Program = db.Program
			} else if db.Program != out.Program {
				return nil, fmt.Errorf("fleet: nodes disagree on program: %q vs %q",
					out.Program, db.Program)
			}
		}
		if db.Epoch > out.Epoch {
			out.Epoch = db.Epoch
		}
		for _, key := range db.SortedKeys() {
			if rec := db.Records[key]; betterRecord(rec, out.Records[key]) {
				out.Records[key] = rec
			}
		}
	}
	return out, nil
}
