package inline

import "inlinec/internal/ir"

// CacheStats counts body-cache behaviour during physical expansion. The
// paper caches "the definitions of the most frequently inlined functions
// in memory to reduce the number of file reads" with a write-back policy;
// here every body is in memory anyway, so the cache exists to account for
// the I/O the paper's implementation would have performed: a miss models a
// file read of the callee's definition.
type CacheStats struct {
	Lookups int
	Hits    int
	Misses  int
	// Evictions counts write-backs of displaced definitions.
	Evictions int
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// add accumulates another cache's counters. Wave-scheduled expansion
// keeps one cache per worker and merges them in worker order, so the
// combined stats are reproducible for a given worker count (locality —
// and hence the hit/miss split — legitimately varies with the count;
// Lookups always equals the number of splices performed).
func (s *CacheStats) add(o CacheStats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

// cacheNode is one resident definition on the recency list.
type cacheNode struct {
	name       string
	fn         *ir.Func
	prev, next *cacheNode
}

// bodyCache is an LRU over function definitions: a name-indexed map of
// nodes threaded on a doubly-linked recency list (head = least recently
// used, tail = most recently used), so lookup, touch, and eviction are
// all O(1) regardless of capacity.
type bodyCache struct {
	cap        int
	nodes      map[string]*cacheNode
	head, tail *cacheNode
	Stats      CacheStats
}

func newBodyCache(capacity int) *bodyCache {
	if capacity <= 0 {
		capacity = 8
	}
	return &bodyCache{cap: capacity, nodes: make(map[string]*cacheNode)}
}

// fetch returns the current definition of name, recording hit/miss and
// maintaining LRU order. Because the linear expansion order finalizes a
// body before any caller absorbs it, a cached definition never goes stale.
func (c *bodyCache) fetch(mod *ir.Module, name string) *ir.Func {
	c.Stats.Lookups++
	if n, ok := c.nodes[name]; ok {
		c.Stats.Hits++
		c.touch(n)
		return n.fn
	}
	c.Stats.Misses++
	f := mod.Func(name)
	if f == nil {
		return nil
	}
	if len(c.nodes) >= c.cap {
		victim := c.head
		c.unlink(victim)
		delete(c.nodes, victim.name)
		c.Stats.Evictions++
	}
	n := &cacheNode{name: name, fn: f}
	c.nodes[name] = n
	c.pushBack(n)
	return f
}

// touch moves a resident node to the most-recently-used position.
func (c *bodyCache) touch(n *cacheNode) {
	if c.tail == n {
		return
	}
	c.unlink(n)
	c.pushBack(n)
}

func (c *bodyCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *bodyCache) pushBack(n *cacheNode) {
	n.prev = c.tail
	n.next = nil
	if c.tail != nil {
		c.tail.next = n
	} else {
		c.head = n
	}
	c.tail = n
}
