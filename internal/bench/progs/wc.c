/* wc - count lines, words, and characters, after the UNIX wc benchmark.
 * The paper's wc makes almost no function calls (one call per ~18000
 * ILs): it reads input in large blocks and counts in a single loop in
 * main, with user functions only on the cold reporting path. Inline
 * expansion should find essentially nothing worth doing here, matching
 * the paper's 0% call decrease for wc. */

extern int read(int fd, char *buf, int n);
extern int printf(char *fmt, ...);

enum { OUT = 0, IN = 1, BUFSIZE = 4096 };

char buf[BUFSIZE];

int total_lines;
int total_words;
int total_chars;

void report(char *label, int n) {
    printf("%7d %s\n", n, label);
}

int main() {
    int c, state, n, i;
    int lines, words, chars;
    lines = 0;
    words = 0;
    chars = 0;
    state = OUT;
    for (;;) {
        n = read(0, buf, BUFSIZE);
        if (n <= 0) break;
        for (i = 0; i < n; i++) {
            c = buf[i];
            chars++;
            if (c == '\n') lines++;
            if (c == ' ' || c == '\n' || c == '\t') {
                state = OUT;
            } else if (state == OUT) {
                state = IN;
                words++;
            }
        }
    }
    total_lines = lines;
    total_words = words;
    total_chars = chars;
    report("lines", lines);
    report("words", words);
    report("chars", chars);
    return 0;
}
