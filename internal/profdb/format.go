package profdb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"inlinec/internal/ir"
	"inlinec/internal/profile"
)

// On-disk formats, version 1. Both are line-oriented text in the spirit
// of the legacy ILPROF interface.
//
// Database file:
//
//	ILPROFDB 1
//	program <name>
//	record <fingerprint> <gen>
//	runs <n>
//	il <n>
//	control <n>
//	calls <n>
//	returns <n>
//	extern <n>
//	ptr <n>
//	truncated <n>
//	maxstack <n>
//	samplerate <k>          (optional; k>0 sampled, -1 mixed, omitted exact)
//	func <name> <total-count>
//	site <caller> <callee> <ordinal> <poshash> <total-count>
//	target <caller> <callee> <ordinal> <poshash> <target-func> <total-count>
//	end
//	record ...
//
// Snapshot (one record, the ilprofd ingest/serve payload):
//
//	ILPROFSNAP 1
//	program <name>
//	fingerprint <fp>
//	gen <n>
//	runs <n>
//	... same record body, no "end" ...
//
// Records are sorted by (fingerprint, gen), funcs by name, and sites by
// key, so a database's serialization is a pure function of its contents.
// Decoding is strict — duplicate directives, duplicate entries, unknown
// directives, and malformed fields are line-numbered errors.

const (
	dbMagic   = "ILPROFDB 1"
	snapMagic = "ILPROFSNAP 1"
)

// WriteTo serializes the database deterministically.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintln(&sb, dbMagic)
	// An unnamed store (nothing ingested yet) omits the directive — a
	// bare "program " line would not re-parse.
	if db.Program != "" {
		fmt.Fprintf(&sb, "program %s\n", db.Program)
	}
	// The durability epoch is written only when the crash-safe Store has
	// stamped one, so plain offline databases keep their historical bytes.
	if db.Epoch > 0 {
		fmt.Fprintf(&sb, "epoch %d\n", db.Epoch)
	}
	for _, key := range db.sortedKeys() {
		rec := db.Records[key]
		fmt.Fprintf(&sb, "record %s %d\n", rec.Fingerprint, rec.Gen)
		writeRecordBody(&sb, rec)
		fmt.Fprintln(&sb, "end")
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteSnapshot serializes one record as an ingest/serve payload.
func WriteSnapshot(w io.Writer, program string, rec *Record) (int64, error) {
	var sb strings.Builder
	fmt.Fprintln(&sb, snapMagic)
	if program != "" {
		fmt.Fprintf(&sb, "program %s\n", program)
	}
	fmt.Fprintf(&sb, "fingerprint %s\n", rec.Fingerprint)
	fmt.Fprintf(&sb, "gen %d\n", rec.Gen)
	writeRecordBody(&sb, rec)
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

func writeRecordBody(sb *strings.Builder, rec *Record) {
	fmt.Fprintf(sb, "runs %d\n", rec.Runs)
	fmt.Fprintf(sb, "il %d\n", rec.IL)
	fmt.Fprintf(sb, "control %d\n", rec.Control)
	fmt.Fprintf(sb, "calls %d\n", rec.Calls)
	fmt.Fprintf(sb, "returns %d\n", rec.Returns)
	fmt.Fprintf(sb, "extern %d\n", rec.Extern)
	fmt.Fprintf(sb, "ptr %d\n", rec.Ptr)
	fmt.Fprintf(sb, "truncated %d\n", rec.Truncated)
	fmt.Fprintf(sb, "maxstack %d\n", rec.MaxStack)
	// Exact records (rate 0) omit the directive so historical databases
	// keep their bytes; -1 persists the mixed-rate marker.
	if rec.SampleRate != 0 {
		fmt.Fprintf(sb, "samplerate %d\n", rec.SampleRate)
	}
	for _, name := range rec.sortedFuncNames() {
		fmt.Fprintf(sb, "func %s %d\n", name, rec.Funcs[name])
	}
	for _, k := range rec.sortedSiteKeys() {
		fmt.Fprintf(sb, "site %s %d\n", k, rec.Sites[k])
	}
	for _, k := range rec.sortedTargetKeys() {
		ts := rec.Targets[k]
		names := make([]string, 0, len(ts))
		for t := range ts {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			fmt.Fprintf(sb, "target %s %s %d\n", k, t, ts[t])
		}
	}
}

// decoder is a line-numbered strict scanner shared by the DB and
// snapshot readers.
type decoder struct {
	sc     *bufio.Scanner
	lineNo int
	what   string
}

func newDecoder(r io.Reader, what string) *decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	return &decoder{sc: sc, what: what}
}

// next returns the fields of the next non-blank, non-comment line.
func (d *decoder) next() ([]string, bool) {
	for d.sc.Scan() {
		d.lineNo++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), true
	}
	return nil, false
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("%s: line %d: %s", d.what, d.lineNo, fmt.Sprintf(format, args...))
}

func (d *decoder) num(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, d.errf("bad number %q", s)
	}
	return v, nil
}

// scalarFields maps record-body directives onto record fields.
func scalarFields(rec *Record) map[string]*int64 {
	return map[string]*int64{
		"il": &rec.IL, "control": &rec.Control, "calls": &rec.Calls,
		"returns": &rec.Returns, "extern": &rec.Extern, "ptr": &rec.Ptr,
		"truncated": &rec.Truncated, "maxstack": &rec.MaxStack,
	}
}

// readBodyLine parses one record-body directive into rec. Returns
// handled=false when the directive belongs to the enclosing container.
func (d *decoder) readBodyLine(fields []string, rec *Record, seen map[string]int) (handled bool, err error) {
	switch fields[0] {
	case "runs":
		if len(fields) != 2 {
			return true, d.errf("malformed %q", strings.Join(fields, " "))
		}
		if prev, dup := seen["runs"]; dup {
			return true, d.errf("duplicate %q directive (first on line %d)", "runs", prev)
		}
		seen["runs"] = d.lineNo
		v, err := d.num(fields[1])
		if err != nil {
			return true, err
		}
		rec.Runs = int(v)
		return true, nil
	case "samplerate":
		if len(fields) != 2 {
			return true, d.errf("malformed %q", strings.Join(fields, " "))
		}
		if prev, dup := seen["samplerate"]; dup {
			return true, d.errf("duplicate %q directive (first on line %d)", "samplerate", prev)
		}
		seen["samplerate"] = d.lineNo
		v, err := d.num(fields[1])
		if err != nil {
			return true, err
		}
		if v < -1 {
			return true, d.errf("bad samplerate %d (want -1, 0, or a positive rate)", v)
		}
		rec.SampleRate = int(v)
		return true, nil
	case "il", "control", "calls", "returns", "extern", "ptr", "truncated", "maxstack":
		if len(fields) != 2 {
			return true, d.errf("malformed %q", strings.Join(fields, " "))
		}
		if prev, dup := seen[fields[0]]; dup {
			return true, d.errf("duplicate %q directive (first on line %d)", fields[0], prev)
		}
		seen[fields[0]] = d.lineNo
		v, err := d.num(fields[1])
		if err != nil {
			return true, err
		}
		*scalarFields(rec)[fields[0]] = v
		return true, nil
	case "func":
		if len(fields) != 3 {
			return true, d.errf("malformed func entry (want `func <name> <count>`)")
		}
		if _, dup := rec.Funcs[fields[1]]; dup {
			return true, d.errf("duplicate func entry %q", fields[1])
		}
		v, err := d.num(fields[2])
		if err != nil {
			return true, err
		}
		rec.Funcs[fields[1]] = v
		return true, nil
	case "site":
		if len(fields) != 6 {
			return true, d.errf("malformed site entry (want `site <caller> <callee> <ordinal> <poshash> <count>`)")
		}
		ord, err := d.num(fields[3])
		if err != nil {
			return true, err
		}
		ph, err := strconv.ParseUint(fields[4], 16, 32)
		if err != nil {
			return true, d.errf("bad poshash %q", fields[4])
		}
		v, err := d.num(fields[5])
		if err != nil {
			return true, err
		}
		k := SiteKey{Caller: fields[1], Callee: fields[2], Ordinal: int(ord), PosHash: uint32(ph)}
		if _, dup := rec.Sites[k]; dup {
			return true, d.errf("duplicate site entry %q", k.String())
		}
		rec.Sites[k] = v
		return true, nil
	case "target":
		if len(fields) != 7 {
			return true, d.errf("malformed target entry (want `target <caller> <callee> <ordinal> <poshash> <target-func> <count>`)")
		}
		ord, err := d.num(fields[3])
		if err != nil {
			return true, err
		}
		ph, err := strconv.ParseUint(fields[4], 16, 32)
		if err != nil {
			return true, d.errf("bad poshash %q", fields[4])
		}
		v, err := d.num(fields[6])
		if err != nil {
			return true, err
		}
		k := SiteKey{Caller: fields[1], Callee: fields[2], Ordinal: int(ord), PosHash: uint32(ph)}
		if _, dup := rec.Targets[k][fields[5]]; dup {
			return true, d.errf("duplicate target entry %q %s", k.String(), fields[5])
		}
		rec.addTarget(k, fields[5], v)
		return true, nil
	}
	return false, nil
}

// ReadDB parses a serialized database.
func ReadDB(r io.Reader) (*DB, error) {
	d := newDecoder(r, "profdb")
	fields, ok := d.next()
	if !ok {
		return nil, fmt.Errorf("profdb: empty input")
	}
	if strings.Join(fields, " ") != dbMagic {
		return nil, fmt.Errorf("profdb: bad magic %q", strings.Join(fields, " "))
	}
	db := NewDB("")
	var rec *Record
	var seen map[string]int
	sawProgram := false
	sawEpoch := false
	finish := func() error {
		if rec == nil {
			return nil
		}
		return d.errf("record %s %d not terminated by `end`", rec.Fingerprint, rec.Gen)
	}
	for {
		fields, ok := d.next()
		if !ok {
			if err := d.sc.Err(); err != nil {
				return nil, err
			}
			if err := finish(); err != nil {
				return nil, err
			}
			return db, nil
		}
		switch fields[0] {
		case "program":
			if rec != nil {
				return nil, d.errf("`program` inside a record")
			}
			if sawProgram {
				return nil, d.errf("duplicate `program` directive")
			}
			if len(fields) != 2 {
				return nil, d.errf("malformed program directive")
			}
			sawProgram = true
			db.Program = fields[1]
		case "epoch":
			if rec != nil {
				return nil, d.errf("`epoch` inside a record")
			}
			if sawEpoch {
				return nil, d.errf("duplicate `epoch` directive")
			}
			if len(fields) != 2 {
				return nil, d.errf("malformed epoch directive")
			}
			v, err := d.num(fields[1])
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, d.errf("negative epoch %d", v)
			}
			sawEpoch = true
			db.Epoch = int(v)
		case "record":
			if rec != nil {
				return nil, d.errf("`record` before previous record's `end`")
			}
			if len(fields) != 3 {
				return nil, d.errf("malformed record header (want `record <fingerprint> <gen>`)")
			}
			gen, err := d.num(fields[2])
			if err != nil {
				return nil, err
			}
			rec = NewRecord(fields[1], int(gen))
			seen = make(map[string]int)
		case "end":
			if rec == nil {
				return nil, d.errf("`end` outside a record")
			}
			if rec.Runs <= 0 {
				return nil, d.errf("record %s %d has missing or non-positive runs count", rec.Fingerprint, rec.Gen)
			}
			key := RecordKey{rec.Fingerprint, rec.Gen}
			if _, dup := db.Records[key]; dup {
				return nil, d.errf("duplicate record %s %d", rec.Fingerprint, rec.Gen)
			}
			db.Records[key] = rec
			rec = nil
		default:
			if rec == nil {
				return nil, d.errf("unknown directive %q", fields[0])
			}
			handled, err := d.readBodyLine(fields, rec, seen)
			if err != nil {
				return nil, err
			}
			if !handled {
				return nil, d.errf("unknown directive %q", fields[0])
			}
		}
	}
}

// ReadSnapshot parses an ingest/serve payload.
func ReadSnapshot(r io.Reader) (program string, rec *Record, err error) {
	d := newDecoder(r, "profdb snapshot")
	fields, ok := d.next()
	if !ok {
		return "", nil, fmt.Errorf("profdb snapshot: empty input")
	}
	if strings.Join(fields, " ") != snapMagic {
		return "", nil, fmt.Errorf("profdb snapshot: bad magic %q", strings.Join(fields, " "))
	}
	rec = NewRecord("", 0)
	seen := make(map[string]int)
	for {
		fields, ok := d.next()
		if !ok {
			if err := d.sc.Err(); err != nil {
				return "", nil, err
			}
			if rec.Fingerprint == "" {
				return "", nil, fmt.Errorf("profdb snapshot: missing fingerprint")
			}
			if rec.Runs <= 0 {
				return "", nil, fmt.Errorf("profdb snapshot: missing or non-positive runs count")
			}
			return program, rec, nil
		}
		switch fields[0] {
		case "program":
			if len(fields) != 2 {
				return "", nil, d.errf("malformed program directive")
			}
			if prev, dup := seen["program"]; dup {
				return "", nil, d.errf("duplicate %q directive (first on line %d)", "program", prev)
			}
			seen["program"] = d.lineNo
			program = fields[1]
		case "fingerprint":
			if len(fields) != 2 {
				return "", nil, d.errf("malformed fingerprint directive")
			}
			if prev, dup := seen["fingerprint"]; dup {
				return "", nil, d.errf("duplicate %q directive (first on line %d)", "fingerprint", prev)
			}
			seen["fingerprint"] = d.lineNo
			rec.Fingerprint = fields[1]
		case "gen":
			if len(fields) != 2 {
				return "", nil, d.errf("malformed gen directive")
			}
			if prev, dup := seen["gen"]; dup {
				return "", nil, d.errf("duplicate %q directive (first on line %d)", "gen", prev)
			}
			seen["gen"] = d.lineNo
			v, err := d.num(fields[1])
			if err != nil {
				return "", nil, err
			}
			rec.Gen = int(v)
		default:
			handled, err := d.readBodyLine(fields, rec, seen)
			if err != nil {
				return "", nil, err
			}
			if !handled {
				return "", nil, d.errf("unknown directive %q", fields[0])
			}
		}
	}
}

// SnapshotOf converts an id-keyed averaged profile collected on mod into
// a stable-key record stamped with the module's fingerprint. It fails if
// the profile references a call-site id the module doesn't define — the
// exact profile/module mismatch stable keys exist to catch.
func SnapshotOf(prof *profile.Profile, mod *ir.Module, gen int) (*Record, error) {
	keys := ModuleKeys(mod)
	rec := NewRecord(ModuleFingerprint(mod), gen)
	rec.Runs = prof.Runs
	rec.IL = prof.TotalIL
	rec.Control = prof.TotalControl
	rec.Calls = prof.TotalCalls
	rec.Returns = prof.TotalReturns
	rec.Extern = prof.TotalExtern
	rec.Ptr = prof.TotalPtr
	rec.Truncated = prof.TotalTruncated
	rec.MaxStack = prof.MaxStack
	rec.SampleRate = prof.SampleRate

	ids := make([]int, 0, len(prof.SiteCounts))
	for id := range prof.SiteCounts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		k, ok := keys.Key(id)
		if !ok {
			return nil, fmt.Errorf("profdb: profile references call-site id %d, which %s does not define (profile/module mismatch)",
				id, mod.Name)
		}
		rec.Sites[k] += prof.SiteCounts[id]
	}
	tids := make([]int, 0, len(prof.PtrTargets))
	for id := range prof.PtrTargets {
		tids = append(tids, id)
	}
	sort.Ints(tids)
	for _, id := range tids {
		k, ok := keys.Key(id)
		if !ok {
			return nil, fmt.Errorf("profdb: profile references call-site id %d, which %s does not define (profile/module mismatch)",
				id, mod.Name)
		}
		for t, n := range prof.PtrTargets[id] {
			rec.addTarget(k, t, n)
		}
	}
	for name, n := range prof.FuncCounts {
		rec.Funcs[name] = n
	}
	return rec, nil
}

// ReadDBFile loads a database from disk. A missing file yields an empty
// database named program, so first ingests need no separate init step.
func ReadDBFile(path, program string) (*DB, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewDB(program), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadDB(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// WriteDBFile atomically replaces path with the database's serialization
// (write to a temp file in the same directory, then rename).
func WriteDBFile(path string, db *DB) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".profdb-*")
	if err != nil {
		return err
	}
	if _, err := db.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// The rename must only ever install fully-durable bytes: without this
	// barrier a crash shortly after can leave the new name pointing at a
	// half-written file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
