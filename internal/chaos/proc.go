package chaos

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Proc supervises one subprocess under chaos test: it captures stderr,
// watches for a readiness line, and exposes the kill levers the fleet
// suites pull — SIGKILL for a crash that skips every cleanup path,
// SIGTERM for a graceful shutdown. Extracted from the ilprofd SIGKILL
// test so multi-node suites can run a whole fleet of real processes.
type Proc struct {
	cmd *exec.Cmd

	mu  sync.Mutex
	out bytes.Buffer
}

// StartProc launches cmd (which must not have Stderr set), scans its
// stderr for the first line containing readyMarker, and returns the
// first whitespace-separated token following the marker — for ilprofd,
// the listen address after "listening on ". On timeout the process is
// killed and the collected output is included in the error.
func StartProc(cmd *exec.Cmd, readyMarker string, timeout time.Duration) (*Proc, string, error) {
	pipe, err := cmd.StderrPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	p := &Proc{cmd: cmd}
	readyCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if i := strings.Index(line, readyMarker); i >= 0 {
				fields := strings.Fields(line[i+len(readyMarker):])
				token := ""
				if len(fields) > 0 {
					token = fields[0]
				}
				select {
				case readyCh <- token:
				default:
				}
			}
		}
	}()
	select {
	case token := <-readyCh:
		return p, token, nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("chaos: process never reported %q; output:\n%s",
			readyMarker, p.Output())
	}
}

// Output returns everything the process has written to stderr so far.
func (p *Proc) Output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// Pid returns the process id.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Kill9 delivers SIGKILL: no handlers, no flush, no cleanup — the
// kernel-level crash the WAL ack barrier must survive.
func (p *Proc) Kill9() error { return p.cmd.Process.Kill() }

// Signal delivers an arbitrary signal (SIGTERM for graceful shutdown).
func (p *Proc) Signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }

// Interrupt is Signal(SIGTERM).
func (p *Proc) Interrupt() error { return p.Signal(syscall.SIGTERM) }

// Wait reaps the process and returns its exit error, if any.
func (p *Proc) Wait() error { return p.cmd.Wait() }
