package callgraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"inlinec/internal/ir"
)

// randomModule builds a random module of n functions with random direct
// calls (possibly cyclic), a main, and optionally an extern call.
func randomModule(r *rand.Rand, n int, withExtern bool) *ir.Module {
	mod := ir.NewModule("rand")
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("f%d", i)
	}
	names[0] = "main"
	for i := 0; i < n; i++ {
		f := &ir.Func{Name: names[i], ReturnsValue: true}
		reg := f.NewReg()
		f.Emit(ir.Instr{Op: ir.OpConst, Dst: reg, A: ir.C(int64(i))})
		calls := r.Intn(3)
		for c := 0; c < calls; c++ {
			callee := names[r.Intn(n)]
			d := f.NewReg()
			f.Emit(ir.Instr{Op: ir.OpCall, Dst: d, Sym: callee, Args: nil})
		}
		if withExtern && r.Intn(3) == 0 {
			f.Emit(ir.Instr{Op: ir.OpCall, Dst: ir.NoReg, Sym: "putchar", Args: []ir.Value{ir.R(reg)}})
		}
		f.Emit(ir.Instr{Op: ir.OpRet, A: ir.R(reg)})
		mod.AddFunc(f)
	}
	if withExtern {
		mod.AddExtern(ir.Extern{Name: "putchar", NumParams: 1})
	}
	mod.AssignCallIDs()
	return mod
}

// TestQuickSameCycleIsEquivalence: SameCycle is symmetric and transitive
// over random graphs, and irreflexive by definition.
func TestQuickSameCycleIsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Build(randomModule(r, 2+r.Intn(8), r.Intn(2) == 0), nil)
		var nodes []*Node
		for _, n := range g.Nodes {
			nodes = append(nodes, n)
		}
		for _, a := range nodes {
			if g.SameCycle(a, a) {
				return false // irreflexive by definition
			}
			for _, b := range nodes {
				if g.SameCycle(a, b) != g.SameCycle(b, a) {
					return false
				}
				for _, c := range nodes {
					if g.SameCycle(a, b) && g.SameCycle(b, c) && a != c && !g.SameCycle(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecursiveIffOnCycle: a node is Recursive exactly when it has a
// path back to itself over user arcs.
func TestQuickRecursiveIffOnCycle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Build(randomModule(r, 2+r.Intn(8), false), nil)
		// Reference check: DFS from each node over non-synthetic arcs.
		reaches := func(from, to *Node) bool {
			seen := make(map[*Node]bool)
			var stack []*Node
			stack = append(stack, from)
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, a := range n.Out {
					if a.Synthetic || a.Callee.IsSpecial() {
						continue
					}
					if a.Callee == to {
						return true
					}
					if !seen[a.Callee] {
						seen[a.Callee] = true
						stack = append(stack, a.Callee)
					}
				}
			}
			return false
		}
		for _, n := range g.Nodes {
			if g.Recursive(n) != reaches(n, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeightsRespectArcs: every non-cycle user arc goes from a
// higher (or equal, within a cycle) node to a lower one.
func TestQuickHeightsRespectArcs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Build(randomModule(r, 2+r.Intn(8), false), nil)
		for _, n := range g.Nodes {
			for _, a := range n.Out {
				if a.Synthetic || a.Callee.IsSpecial() {
					continue
				}
				if g.SameCycle(n, a.Callee) || n == a.Callee {
					if n.Height() != a.Callee.Height() {
						return false // cycle members share a height
					}
					continue
				}
				if n.Height() <= a.Callee.Height() {
					return false // caller must sit above its callee
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickReachabilityMonotone: conservative reachability is a superset
// of strict reachability.
func TestQuickReachabilityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Build(randomModule(r, 2+r.Intn(8), true), nil)
		strict := g.Reachable(false)
		conservative := g.Reachable(true)
		for name := range strict {
			if !conservative[name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
