package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func ringPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://node%d", i)
	}
	return peers
}

func sampleFingerprints(n int) []string {
	fps := make([]string, n)
	for i := range fps {
		fps[i] = fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return fps
}

// TestRingDeterministicAcrossPeerOrder: every router instance must
// compute the same placement from the same membership, however the
// peer list was written down.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	peers := ringPeers(5)
	ref, err := NewRing(peers, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	fps := sampleFingerprints(200)
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := NewRing(shuffled, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, fp := range fps {
			if got, want := r.Owners(fp), ref.Owners(fp); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Owners(%s) = %v, want %v", trial, fp, got, want)
			}
		}
	}
}

func TestRingOwnersDistinctAndSized(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		for _, repl := range []int{1, 2, 7} {
			r, err := NewRing(ringPeers(n), repl)
			if err != nil {
				t.Fatal(err)
			}
			wantR := repl
			if wantR > n {
				wantR = n
			}
			if wantR < 1 {
				wantR = 1
			}
			if r.Replicas() != wantR {
				t.Fatalf("N=%d repl=%d: Replicas() = %d, want %d", n, repl, r.Replicas(), wantR)
			}
			for _, fp := range sampleFingerprints(100) {
				owners := r.Owners(fp)
				if len(owners) != wantR {
					t.Fatalf("N=%d repl=%d: %d owners, want %d", n, repl, len(owners), wantR)
				}
				seen := map[string]bool{}
				for _, o := range owners {
					if seen[o] {
						t.Fatalf("duplicate owner %s for %s", o, fp)
					}
					seen[o] = true
				}
			}
		}
	}
}

// TestRingSpreads: with enough vnodes every peer should be the primary
// owner of a reasonable share of keys — no peer starves, no peer hogs.
func TestRingSpreads(t *testing.T) {
	r, err := NewRing(ringPeers(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	fps := sampleFingerprints(5000)
	for _, fp := range fps {
		counts[r.Owners(fp)[0]]++
	}
	for _, p := range r.Peers() {
		share := float64(counts[p]) / float64(len(fps))
		if share < 0.05 || share > 0.50 {
			t.Errorf("peer %s owns %.1f%% of keys — distribution badly skewed: %v",
				p, share*100, counts)
		}
	}
}

func TestRingCovered(t *testing.T) {
	r, err := NewRing(ringPeers(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	up := func(down ...string) func(string) bool {
		d := map[string]bool{}
		for _, p := range down {
			d[p] = true
		}
		return func(p string) bool { return !d[p] }
	}
	if !r.Covered(up()) {
		t.Error("fully-up fleet reported uncovered")
	}
	// R=2: any single node down still leaves every replica set with one
	// live member.
	for _, p := range r.Peers() {
		if !r.Covered(up(p)) {
			t.Errorf("R=2 with only %s down reported uncovered", p)
		}
	}
	if r.Covered(up(r.Peers()...)) {
		t.Error("fully-down fleet reported covered")
	}

	// R=1: every node owns some arc exclusively, so any node down breaks
	// coverage.
	r1, err := NewRing(ringPeers(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r1.Peers() {
		if r1.Covered(up(p)) {
			t.Errorf("R=1 with %s down reported covered", p)
		}
	}
}

func TestRingRejectsEmptyAndDedups(t *testing.T) {
	if _, err := NewRing(nil, 1); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 1); err == nil {
		t.Error("empty peer name accepted")
	}
	r, err := NewRing([]string{"http://a", "http://a", "http://b"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Peers()) != 2 || r.Replicas() != 2 {
		t.Errorf("dedup: peers=%v replicas=%d", r.Peers(), r.Replicas())
	}
}
