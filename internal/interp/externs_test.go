package interp

import (
	"strings"
	"testing"
)

func TestExternPrintfFormats(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    printf("%d|%5d|%-5d|%05d|", 42, 42, 42, 42);
    printf("%x|%o|%c|%s|%%|", 255, 8, 'Z', "str");
    printf("%ld|", 7);
    return 0;
}
`)
	want := "42|   42|42   |00042|ff|10|Z|str|%|7|"
	if out != want {
		t.Errorf("printf output\n got %q\nwant %q", out, want)
	}
}

func TestExternSprintf(t *testing.T) {
	out, _ := runSrc(t, `
extern int sprintf(char *buf, char *fmt, ...);
extern int puts(char *s);
int main() {
    char buf[64];
    int n;
    n = sprintf(buf, "<%d,%s>", 9, "x");
    puts(buf);
    return n;
}
`)
	if out != "<9,x>\n" {
		t.Errorf("sprintf -> %q", out)
	}
}

func TestExternStringFamily(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
extern int strlen(char *s);
extern int strcmp(char *a, char *b);
extern int strncmp(char *a, char *b, int n);
extern int strcpy(char *d, char *s);
extern int strcat(char *d, char *s);
extern int strchr(char *s, int c);
int main() {
    char buf[32];
    int found;
    strcpy(buf, "abc");
    strcat(buf, "def");
    found = strchr(buf, 'd') != 0;
    printf("%d %d %d %d %d %s\n",
        strlen(buf),
        strcmp("a", "b") < 0,
        strcmp("same", "same") == 0,
        strncmp("abcX", "abcY", 3) == 0,
        found,
        buf);
    return 0;
}
`)
	if out != "6 1 1 1 1 abcdef\n" {
		t.Errorf("string family -> %q", out)
	}
}

func TestExternMemFamily(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
extern int malloc(int n);
extern int calloc(int n, int sz);
extern char *memcpy(char *d, char *s, int n);
extern char *memset(char *d, int c, int n);
extern int memcmp(char *a, char *b, int n);
int main() {
    char *p; char *q; int *z;
    p = (char *)malloc(16);
    memset(p, 'A', 15);
    p[15] = 0;
    q = (char *)malloc(16);
    memcpy(q, p, 16);
    z = (int *)calloc(4, 8);
    printf("%d %d %d\n", memcmp(p, q, 16) == 0, strlenish(q), z[3]);
    return 0;
}
int strlenish(char *s) { int n; n = 0; while (s[n]) n++; return n; }
`)
	if out != "1 15 0\n" {
		t.Errorf("mem family -> %q", out)
	}
}

func TestExternAtoiAbsRand(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
extern int atoi(char *s);
extern int abs(int x);
extern int rand();
extern void srand(int seed);
int main() {
    int a; int b;
    srand(12345);
    a = rand();
    srand(12345);
    b = rand();
    printf("%d %d %d %d %d\n",
        atoi("  -42x"), atoi("123"), abs(-5), abs(5), a == b && a >= 0);
    return 0;
}
`)
	if out != "-42 123 5 5 1\n" {
		t.Errorf("misc externs -> %q", out)
	}
}

func TestExternFileRoundTrip(t *testing.T) {
	m := compileSrc(t, `
extern int open(char *path, int mode);
extern int close(int fd);
extern int write(int fd, char *buf, int n);
extern int read(int fd, char *buf, int n);
extern int printf(char *fmt, ...);
int main() {
    int fd; int n;
    char buf[32];
    fd = open("new.txt", 1);
    write(fd, "payload", 7);
    close(fd);
    fd = open("new.txt", 0);
    n = read(fd, buf, 32);
    buf[n] = 0;
    close(fd);
    printf("%d %s\n", n, buf);
    /* append mode */
    fd = open("new.txt", 2);
    write(fd, "++", 2);
    close(fd);
    fd = open("new.txt", 0);
    n = read(fd, buf, 32);
    buf[n] = 0;
    printf("%s\n", buf);
    return 0;
}
`)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Env.Stdout.String(); got != "7 payload\npayload++\n" {
		t.Errorf("file round trip -> %q", got)
	}
}

func TestExternOpenMissingFile(t *testing.T) {
	out, code := runSrc(t, `
extern int open(char *path, int mode);
int main() { if (open("ghost", 0) < 0) return 7; return 0; }
`)
	_ = out
	if code != 7 {
		t.Errorf("open of missing file must return -1 (exit = %d)", code)
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct {
		name, src, fragment string
	}{
		{"null deref", `int main() { int *p; p = 0; return *p; }`, "memory fault"},
		{"div zero", `int main() { int z; z = 0; return 1 / z; }`, "division by zero"},
		{"bad fp", `int main() { int (*f)(int); f = (int (*)(int))12345; return f(1); }`, "invalid function pointer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			file, err := parserParse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			m, err := buildMachine(file)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			_, err = m.Run()
			if err == nil || !strings.Contains(err.Error(), c.fragment) {
				t.Errorf("error = %v, want mention of %q", err, c.fragment)
			}
		})
	}
}

func TestInstructionBudget(t *testing.T) {
	file, err := parserParse(`int main() { for (;;) ; return 0; }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, mod := mustLower(t, file)
	_ = prog
	m, err := NewMachine(mod, NewEnv(), Options{MaxIL: 10000})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("infinite loop not stopped by budget: %v", err)
	}
}

func TestHeapExhaustionReturnsNull(t *testing.T) {
	file, err := parserParse(`
extern int malloc(int n);
int main() {
    int p;
    p = malloc(1024 * 1024); /* larger than the 64 KiB heap below */
    if (p == 0) return 42;
    return 0;
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, mod := mustLower(t, file)
	m, err := NewMachine(mod, NewEnv(), Options{HeapSize: 64 << 10})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.ExitCode != 42 {
		t.Errorf("exit = %d, want 42 (malloc returned NULL)", st.ExitCode)
	}
}

func TestExternNamesSortedAndImplemented(t *testing.T) {
	names := ExternNames()
	if len(names) < 20 {
		t.Errorf("only %d externs registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("extern names not sorted: %s >= %s", names[i-1], names[i])
		}
	}
	for _, n := range names {
		if Externs[n] == nil {
			t.Errorf("extern %s registered without implementation", n)
		}
	}
}
