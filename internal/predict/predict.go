package predict

import (
	"math"
	"sort"

	"inlinec/internal/callgraph"
	"inlinec/internal/ir"
	"inlinec/internal/profile"
)

// LocalFreq evaluates the model on one feature vector: the expected
// number of times the site executes per invocation of its caller,
// exp(Coef · vec) clamped to [0, MaxFreq].
func (m *Model) LocalFreq(vec [NumFeatures]float64) float64 {
	dot := 0.0
	for i, c := range m.Coef {
		dot += c * vec[i]
	}
	f := math.Exp(dot)
	if f > m.MaxFreq {
		return m.MaxFreq
	}
	return f
}

// targetShare is one guessed resolution of a pointer-call site.
type targetShare struct {
	name  string
	share float64
}

// edge is one weighted call-graph edge for the propagation pass: a
// direct call carries share 1; a pointer call fans out one edge per
// guessed target.
type edge struct {
	siteID int
	caller int // module function index
	callee int
	freq   float64 // local frequency (already includes the share)
}

// Synthesize predicts a full profile for the module: node weights
// (FuncCounts), arc weights (SiteCounts), and pointer-target dominance
// guesses (PtrTargets), shaped exactly like a measured profile so the
// call graph, the expander, guarded devirtualization, and partial
// inlining consume it unchanged. The synthetic profile carries
// Runs = Scale with counts of weight × Scale, i.e. fixed-point weights
// with resolution 1/Scale, normalized to one entry of main per run.
//
// The estimate is purely static and deterministic: local per-site
// frequencies come from the calibrated model, whole-program weights from
// one topological propagation over the call graph's SCC condensation
// (recursive cycles get one relaxation round scaled by the Recursion
// parameter rather than a fixed point — crude, but bounded and
// reproducible).
func Synthesize(mod *ir.Module, m *Model) *profile.Profile {
	feats := Featurize(mod)
	g := callgraph.Build(mod, nil)

	idx := make(map[string]int, len(mod.Funcs))
	for i, f := range mod.Funcs {
		idx[f.Name] = i
	}

	// Per-site local frequencies, pointer-target guesses, and the edge
	// list, all in StableSites order.
	freqs := make([]float64, len(feats))
	guesses := make([][]targetShare, len(feats))
	var edges []edge
	ptrCandidates := g.PointerCallees()
	for i, sf := range feats {
		lf := m.LocalFreq(sf.Vec)
		freqs[i] = lf
		caller := idx[sf.Site.Caller]
		switch {
		case sf.Site.ViaPointer:
			ts := guessTargets(mod, mod.Funcs[caller], sf.Site.Instr, ptrCandidates, m.DomShare)
			guesses[i] = ts
			for _, t := range ts {
				edges = append(edges, edge{siteID: sf.Site.ID, caller: caller, callee: idx[t.name], freq: lf * t.share})
			}
		default:
			if callee, ok := idx[sf.Site.Callee]; ok {
				edges = append(edges, edge{siteID: sf.Site.ID, caller: caller, callee: callee, freq: lf})
			}
			// Extern callees contribute no node weight; their arc weight
			// still lands in SiteCounts below.
		}
	}

	weights := propagate(len(mod.Funcs), idx["main"], edges, m.Recursion)

	// Assemble the profile. A site's arc weight is its caller's final
	// node weight times the local frequency (times Recursion when the
	// arc closes a cycle, matching the propagation).
	comp := sccOf(len(mod.Funcs), edges)
	scale := math.Round(m.Scale)
	cnt := func(w float64) int64 { return int64(math.Round(w * scale)) }
	prof := profile.NewProfile()
	prof.Runs = int(scale)
	var totalIL, totalControl float64
	for i, f := range mod.Funcs {
		if c := cnt(weights[i]); c > 0 {
			prof.FuncCounts[f.Name] = c
		}
		totalIL += weights[i] * float64(f.CodeSize())
		totalControl += weights[i] * float64(countControl(f))
	}
	for i, sf := range feats {
		caller := idx[sf.Site.Caller]
		w := weights[caller] * freqs[i]
		if callee, ok := idx[sf.Site.Callee]; ok && !sf.Site.ViaPointer && comp[callee] == comp[caller] {
			w *= m.Recursion
		}
		c := cnt(w)
		if c <= 0 {
			continue
		}
		prof.SiteCounts[sf.Site.ID] = c
		prof.TotalCalls += c
		switch {
		case sf.Site.ViaPointer:
			prof.TotalPtr += c
			for _, t := range guesses[i] {
				if tc := cnt(w * t.share); tc > 0 {
					prof.AddPtrTarget(sf.Site.ID, t.name, tc)
				}
			}
		case mod.Func(sf.Site.Callee) == nil:
			prof.TotalExtern += c
		}
	}
	prof.TotalReturns = prof.TotalCalls
	prof.TotalIL = cnt(totalIL)
	prof.TotalControl = cnt(totalControl)
	prof.MaxStack = estimateMaxStack(g)
	return prof
}

// guessTargets picks the candidate targets of one pointer-call site and
// their shares. The primary candidate set is the nearest assignment
// cluster: address-of-function operands found scanning backward from the
// call until the previous call site (assignments before an intervening
// call belong to an earlier dispatch, not this one). Those clusters are
// the arms of the if-chain that selected the pointer, so positional
// conventions apply: the first arm of a chain of three or more is
// treated as the common case and gets the dominant share; a two-armed
// diamond gives no positional reason to favor either arm, so the share
// splits evenly (and guarded devirtualization, correctly, refuses the
// site). A call with no preceding cluster falls back to every
// address-of-function in the caller, then the module, then the supplied
// worst-case set — first name dominant in each.
func guessTargets(mod *ir.Module, caller *ir.Func, instr int, fallback []string, domShare float64) []targetShare {
	var names []string // candidates, source order
	seen := make(map[string]bool)
	for i := instr - 1; i >= 0; i-- {
		in := &caller.Code[i]
		if in.Op == ir.OpCall || in.Op == ir.OpCallPtr {
			break
		}
		if in.Op == ir.OpAddrF && mod.Func(in.Sym) != nil && !seen[in.Sym] {
			seen[in.Sym] = true
			names = append(names, in.Sym)
		}
	}
	// The backward scan found the arms last-first; restore source order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) == 0 {
		for i := range caller.Code {
			in := &caller.Code[i]
			if in.Op == ir.OpAddrF && mod.Func(in.Sym) != nil && !seen[in.Sym] {
				seen[in.Sym] = true
				names = append(names, in.Sym)
			}
		}
	}
	if len(names) == 0 {
		// Module-wide fallback: the first function (in module order) that
		// any code takes the address of dominates.
		for _, f := range mod.Funcs {
			for i := range f.Code {
				in := &f.Code[i]
				if in.Op == ir.OpAddrF && mod.Func(in.Sym) != nil && !seen[in.Sym] {
					seen[in.Sym] = true
					names = append(names, in.Sym)
				}
			}
		}
	}
	if len(names) == 0 {
		names = append(names, fallback...)
	}
	switch len(names) {
	case 0:
		return nil
	case 1:
		return []targetShare{{name: names[0], share: 1}}
	case 2:
		a, b := names[0], names[1]
		if b < a {
			a, b = b, a
		}
		return []targetShare{{name: a, share: 0.5}, {name: b, share: 0.5}}
	}
	dominant := names[0]
	rest := (1 - domShare) / float64(len(names)-1)
	sort.Strings(names)
	out := make([]targetShare, 0, len(names))
	for _, n := range names {
		s := rest
		if n == dominant {
			s = domShare
		}
		out = append(out, targetShare{name: n, share: s})
	}
	return out
}

// propagate computes node weights: main executes once, and every edge
// forwards weight(caller) × freq to its callee, processed over the SCC
// condensation in topological order. Within a recursive component, one
// relaxation round scaled by the recursion parameter stands in for the
// (divergent) fixed point: each intra-component edge forwards its
// caller's externally-accumulated weight once, times recursion.
func propagate(n, main int, edges []edge, recursion float64) []float64 {
	weights := make([]float64, n)
	if n == 0 || main < 0 {
		return weights
	}
	comp := sccOf(n, edges)
	nc := 0
	for _, c := range comp {
		if c+1 > nc {
			nc = c + 1
		}
	}
	// Components are numbered in reverse topological order (callees
	// first), so callers come last: process components highest-first.
	members := make([][]int, nc)
	for v := 0; v < n; v++ {
		members[comp[v]] = append(members[comp[v]], v)
	}
	outEdges := make([][]edge, n)
	for _, e := range edges {
		outEdges[e.caller] = append(outEdges[e.caller], e)
	}
	weights[main] = 1
	for c := nc - 1; c >= 0; c-- {
		// One relaxation round inside the component: intra edges forward
		// the externally-accumulated base weights, scaled by recursion.
		base := make(map[int]float64, len(members[c]))
		for _, v := range members[c] {
			base[v] = weights[v]
		}
		for _, v := range members[c] {
			for _, e := range outEdges[v] {
				if comp[e.callee] == c {
					weights[e.callee] += base[v] * e.freq * recursion
				}
			}
		}
		// Then forward the final member weights downstream.
		for _, v := range members[c] {
			for _, e := range outEdges[v] {
				if comp[e.callee] != c {
					weights[e.callee] += weights[v] * e.freq
				}
			}
		}
	}
	return weights
}

// sccOf computes strongly connected components over the edge list with
// Tarjan's algorithm (iterative). Component ids come out in reverse
// topological order of the condensation: every edge u -> v with
// comp[u] != comp[v] has comp[u] > comp[v].
func sccOf(n int, edges []edge) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.caller] = append(adj[e.caller], e.callee)
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next, nc := 0, 0

	type frame struct{ v, ei int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		call := []frame{{start, 0}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					call = append(call, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && low[w] < low[v] {
					low[v] = low[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nc
					if w == v {
						break
					}
				}
				nc++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp
}

// countControl counts the control-transfer instructions of a function
// (jumps, branches, calls, returns) for the synthetic TotalControl
// estimate.
func countControl(f *ir.Func) int {
	n := 0
	for i := range f.Code {
		switch f.Code[i].Op {
		case ir.OpJump, ir.OpBr, ir.OpCall, ir.OpCallPtr, ir.OpRet:
			n++
		}
	}
	return n
}

// estimateMaxStack guesses the peak control-stack depth: the largest
// frame times the deepest user-arc chain. Informational only — the
// expander's recursion hazard uses per-callee frame sizes, not this.
func estimateMaxStack(g *callgraph.Graph) int64 {
	maxFrame, maxHeight := 0, 0
	for _, node := range g.Nodes {
		if node.Fn == nil {
			continue
		}
		if node.Fn.FrameSize > maxFrame {
			maxFrame = node.Fn.FrameSize
		}
		if node.Height() > maxHeight {
			maxHeight = node.Height()
		}
	}
	return int64(maxFrame) * int64(maxHeight+1)
}
