package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"inlinec"
	"inlinec/internal/bench"
	"inlinec/internal/fleet"
	"inlinec/internal/profdb"
)

// snapshotBytes serializes one record as an ingest payload.
func snapshotBytes(t *testing.T, program string, rec *profdb.Record) []byte {
	t.Helper()
	var sb strings.Builder
	if _, err := profdb.WriteSnapshot(&sb, program, rec); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

// TestSmokeEspresso is the end-to-end daemon smoke CI runs: start the
// daemon, ingest the espresso profile twice over HTTP, and assert that
// GET /profile returns exactly the offline merge of the same two
// snapshots — then shut down and check the final flush survives a reload.
func TestSmokeEspresso(t *testing.T) {
	b := bench.Get("espresso")
	if b == nil {
		t.Fatal("espresso benchmark missing")
	}
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := prog.ProfileInputs(b.Inputs[:3]...)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := prog.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := snapshotBytes(t, "espresso.c", rec)

	dbPath := filepath.Join(t.TempDir(), "espresso.profdb")
	addrCh := make(chan string, 1)
	shutdown := make(chan struct{})
	exitCh := make(chan int, 1)
	var stdout, stderr bytes.Buffer
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0", "-db", dbPath, "-flush-every", "1000"},
			&stdout, &stderr, func(addr string) { addrCh <- addr }, shutdown)
	}()
	addr := <-addrCh
	base := "http://" + addr

	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/ingest", "text/plain", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(base + "/profile?fingerprint=" + rec.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: status %d: %s", resp.StatusCode, served)
	}

	// Offline merge of the same two snapshots.
	offline := profdb.NewDB("espresso.c")
	if err := offline.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	if err := offline.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	merged, _ := offline.Merge(rec.Fingerprint, profdb.DefaultMergeParams())
	want := snapshotBytes(t, "espresso.c", merged)
	if !bytes.Equal(served, want) {
		t.Fatalf("served merge differs from offline merge:\n--- served ---\n%s--- offline ---\n%s", served, want)
	}

	// The served snapshot must resolve back into the doubled profile.
	_, servedRec, err := profdb.ReadSnapshot(bytes.NewReader(served))
	if err != nil {
		t.Fatal(err)
	}
	got, stats := servedRec.Resolve(profdb.ModuleKeys(prog.Module))
	if stats.DroppedSites != 0 || stats.MovedSites != 0 {
		t.Fatalf("resolve reported staleness on identical module: %+v", stats)
	}
	if got.Runs != 2*prof.Runs || got.TotalIL != 2*prof.TotalIL || got.TotalCalls != 2*prof.TotalCalls {
		t.Errorf("resolved profile is not the doubled profile: runs=%d IL=%d calls=%d",
			got.Runs, got.TotalIL, got.TotalCalls)
	}

	var stats1 struct {
		IngestedSnaps int64 `json:"ingested_snapshots"`
		MergesServed  int64 `json:"merges_served"`
		TotalRuns     int   `json:"total_runs"`
	}
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats1.IngestedSnaps != 2 || stats1.MergesServed != 1 || stats1.TotalRuns != 2*prof.Runs {
		t.Errorf("stats: %+v", stats1)
	}

	// Graceful shutdown must flush everything (flush-every was too high to
	// have flushed during the run).
	close(shutdown)
	if code := <-exitCh; code != 0 {
		t.Fatalf("daemon exit code %d\nstderr: %s", code, stderr.String())
	}
	reloaded, err := profdb.ReadDBFile(dbPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.TotalRuns() != 2*prof.Runs {
		t.Errorf("reloaded db has %d runs, want %d", reloaded.TotalRuns(), 2*prof.Runs)
	}
	if !strings.Contains(stdout.String(), "flushed") {
		t.Errorf("shutdown did not report the final flush: %q", stdout.String())
	}
}

// TestConcurrentIngest hammers /ingest from many clients and checks the
// store ends up identical to the same snapshots ingested serially —
// the single-writer batching must not lose or double-apply anything.
func TestConcurrentIngest(t *testing.T) {
	p, err := inlinec.Compile("t.c", "int f(int x) { return x + 1; }\nint main() { int i; int s; s = 0; for (i = 0; i < 20; i++) { s = f(s); } return s; }\n")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	recs := make([]*profdb.Record, n)
	for i := 0; i < n; i++ {
		prof, err := p.ProfileInputs(make([]inlinec.Input, i%3+1)...)
		if err != nil {
			t.Fatal(err)
		}
		recs[i], err = p.Snapshot(prof, i%5)
		if err != nil {
			t.Fatal(err)
		}
	}

	s := fleet.NewNode(profdb.NewDB("t.c"), 0)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/ingest", "text/plain",
				bytes.NewReader(snapshotBytes(t, "t.c", recs[i])))
			if err != nil {
				errs[i] = err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	serial := profdb.NewDB("t.c")
	for _, rec := range recs {
		if err := serial.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	var a, b strings.Builder
	s.DB().WriteTo(&a)
	serial.WriteTo(&b)
	if a.String() != b.String() {
		t.Errorf("concurrent ingest diverged from serial ingest:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestIngestRejections: bad payloads 400, program mismatches 409, and
// neither corrupts the store.
func TestIngestRejections(t *testing.T) {
	s := fleet.NewNode(profdb.NewDB("a.c"), 0)
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage payload: status %d, want 400", resp.StatusCode)
	}

	rec := profdb.NewRecord("ffff", 0)
	rec.Runs = 1
	resp, err = http.Post(ts.URL+"/ingest", "text/plain",
		bytes.NewReader(snapshotBytes(t, "other.c", rec)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("program mismatch: status %d, want 409", resp.StatusCode)
	}
	if len(s.DB().Records) != 0 {
		t.Errorf("rejected payloads reached the store: %d records", len(s.DB().Records))
	}

	resp, err = http.Get(ts.URL + "/profile?fingerprint=none")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing fingerprint: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no fingerprint param: status %d, want 400", resp.StatusCode)
	}
}
