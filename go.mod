module inlinec

go 1.22
