package inlinec

import (
	"bytes"
	"testing"

	"inlinec/internal/obs"
	"inlinec/internal/testgen"
)

// traceArtifacts compiles src, profiles one run, inlines at the given
// worker count, and returns the three byte streams the determinism
// contract covers: the JSONL decision trace, the -explain-inline report,
// and the expanded module.
func traceArtifacts(t *testing.T, src string, par int) (jsonl []byte, report, module string) {
	t.Helper()
	p, err := Compile("d.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = par
	prof, err := p.ProfileInputs(Input{}, Input{Stdin: []byte("7\n")})
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.WeightThreshold = 1
	params.SizeLimitFactor = 2.0
	res, err := p.Inline(prof, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteInlineTraceJSONL(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), obs.FormatInlineReport(res.Order, res.Trace), p.Module.String()
}

// TestInlineTraceDeterministic: the decision trace, the explain report,
// and the expanded module are byte-identical at any Parallelism, across
// program shapes that exercise the tricky arcs (recursion, function
// pointers, extern summaries).
func TestInlineTraceDeterministic(t *testing.T) {
	shapes := []struct {
		name string
		opts testgen.Options
	}{
		{"plain", testgen.Options{Funcs: 9}},
		{"recursion", testgen.Options{Funcs: 8, Recursion: true}},
		{"funcptrs_extern", testgen.Options{Funcs: 8, FuncPtrs: true, Extern: true, Recursion: true}},
		{"pointers", testgen.Options{Funcs: 10, Pointers: true, MaxDepth: 3}},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			src := testgen.Generate(1234, sh.opts)
			refJSONL, refReport, refModule := traceArtifacts(t, src, 1)
			if len(refJSONL) == 0 {
				t.Fatal("empty trace — shape produced no arcs to decide")
			}
			for _, par := range []int{2, 8} {
				jsonl, report, module := traceArtifacts(t, src, par)
				if !bytes.Equal(jsonl, refJSONL) {
					t.Errorf("JSONL trace differs between Parallelism 1 and %d", par)
				}
				if report != refReport {
					t.Errorf("explain report differs between Parallelism 1 and %d", par)
				}
				if module != refModule {
					t.Errorf("expanded module differs between Parallelism 1 and %d", par)
				}
			}
		})
	}
}

// TestInlineTraceRoundTrip: the JSONL writer and reader are inverses, so
// tooling downstream of -inline-trace sees exactly what the expander
// decided.
func TestInlineTraceRoundTrip(t *testing.T) {
	src := testgen.Generate(99, testgen.Options{Funcs: 9, Recursion: true})
	jsonl, _, _ := traceArtifacts(t, src, 1)
	events, err := obs.ReadInlineTraceJSONL(bytes.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteInlineTraceJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), jsonl) {
		t.Error("write -> read -> write is not the identity")
	}
	for i, ev := range events {
		if ev.Outcome != obs.OutcomeExpanded && ev.Reason == obs.ReasonNone {
			t.Errorf("event %d: non-expanded arc with empty reason: %+v", i, ev)
		}
		if ev.Outcome == obs.OutcomeExpanded && ev.Reason != obs.ReasonNone {
			t.Errorf("event %d: expanded arc carries a rejection reason %q", i, ev.Reason)
		}
	}
}

// TestObsDoesNotPerturbCompilation: attaching a registry is observation
// only — the compiled and expanded module is byte-identical with and
// without one.
func TestObsDoesNotPerturbCompilation(t *testing.T) {
	src := testgen.Generate(5, testgen.Options{Funcs: 9, Pointers: true})
	build := func(reg *obs.Registry) string {
		p, err := CompileWithObs("d.c", src, reg)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Inline(prof, DefaultParams()); err != nil {
			t.Fatal(err)
		}
		if err := p.Optimize(); err != nil {
			t.Fatal(err)
		}
		return p.Module.String()
	}
	bare := build(nil)
	reg := obs.NewRegistry()
	observed := build(reg)
	if bare != observed {
		t.Error("module differs with a registry attached")
	}
	// And the registry actually saw the pipeline.
	phases := reg.PhaseSeconds()
	for _, want := range []string{"frontend.parse", "profile", "inline.select", "opt.postinline"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("phase %q missing from registry (have %v)", want, phases)
		}
	}
}

// predictedArtifacts mirrors traceArtifacts with the profile synthesized
// by the predictor instead of measured — zero interpreter runs.
func predictedArtifacts(t *testing.T, src, engine string, par int) (jsonl []byte, report, module string) {
	t.Helper()
	p, err := Compile("d.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = par
	p.Engine = engine
	prof := p.PredictProfile()
	params := DefaultParams()
	params.WeightThreshold = 0.25
	params.SizeLimitFactor = 2.0
	res, err := p.Inline(prof, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteInlineTraceJSONL(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), obs.FormatInlineReport(res.Order, res.Trace), p.Module.String()
}

// TestPredictedTraceDeterministic: the determinism contract extends to
// profile-free compilation — synthesized weights, the decision trace,
// and the expanded module are byte-identical at any Parallelism and on
// either interpreter engine (the engine never even runs, so it must not
// be able to matter).
func TestPredictedTraceDeterministic(t *testing.T) {
	shapes := []struct {
		name string
		opts testgen.Options
	}{
		{"plain", testgen.Options{Funcs: 9}},
		{"recursion", testgen.Options{Funcs: 8, Recursion: true}},
		{"funcptrs_extern", testgen.Options{Funcs: 8, FuncPtrs: true, Extern: true, Recursion: true}},
		{"pointers", testgen.Options{Funcs: 10, Pointers: true, MaxDepth: 3}},
		{"dominant_ptr", testgen.Options{Funcs: 8, DominantFuncPtr: true}},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			src := testgen.Generate(1234, sh.opts)
			refJSONL, refReport, refModule := predictedArtifacts(t, src, "", 1)
			if len(refJSONL) == 0 {
				t.Fatal("empty trace — shape produced no arcs to decide")
			}
			for _, engine := range []string{"", "switch"} {
				for _, par := range []int{1, 2, 8} {
					if engine == "" && par == 1 {
						continue
					}
					jsonl, report, module := predictedArtifacts(t, src, engine, par)
					if !bytes.Equal(jsonl, refJSONL) {
						t.Errorf("engine %q parallelism %d: JSONL trace differs from the reference", engine, par)
					}
					if report != refReport {
						t.Errorf("engine %q parallelism %d: explain report differs from the reference", engine, par)
					}
					if module != refModule {
						t.Errorf("engine %q parallelism %d: expanded module differs from the reference", engine, par)
					}
				}
			}
		})
	}
}
