package profdb

// Compaction vs concurrent ingest. The DB itself is single-writer, so
// "racing" means what the daemon actually does: many producers feeding
// one writer that interleaves ingests with compactions under the write
// lock while readers merge under the read lock. Run under -race in
// CI's race job. Two phases:
//
//  1. Race phase — timing-dependent interleavings, checking only
//     timing-independent invariants (serving merges never tears, the
//     record set stays well-formed). Mid-stream compaction is NOT
//     merge-equivalent in general (a later ingest can raise maxGen and
//     change the decay a fold already applied), so no byte-identity is
//     asserted here.
//
//  2. Determinism phase — concurrent ingest, then ONE final compaction:
//     the result must be byte-identical to the same records ingested
//     serially and compacted once, at any worker count.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func compactRec(fp string, gen, runs int, salt int64) *Record {
	r := NewRecord(fp, gen)
	r.Runs = runs
	r.IL = 900 + salt
	r.Calls = 30 + salt
	r.Returns = 30 + salt
	r.Funcs = map[string]int64{"main": 4 + salt, "hot": 26 + salt}
	r.Sites = map[SiteKey]int64{
		{Caller: "main", Callee: "hot", Ordinal: 0, PosHash: 0x5a}: 26 + salt,
	}
	return r
}

// TestCompactRacingIngest is the race-detector phase: a daemon-shaped
// writer (ingest + periodic compact under one mutex) against
// concurrent merging readers.
func TestCompactRacingIngest(t *testing.T) {
	db := NewDB("race.c")
	var mu sync.RWMutex

	const producers, perProducer = 4, 60
	work := make(chan *Record, 64)
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				work <- compactRec(fmt.Sprintf("%04x", 0xf0+p%2), (p+i)%5, 1, int64(p))
			}
		}(p)
	}
	go func() { prodWG.Wait(); close(work) }()

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		n := 0
		for rec := range work {
			mu.Lock()
			if err := db.Ingest(rec); err != nil {
				t.Error(err)
			}
			n++
			if n%17 == 0 {
				db.Compact(DefaultMergeParams())
			}
			mu.Unlock()
		}
	}()

	var readerWG sync.WaitGroup
	readerDone := make(chan struct{})
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-readerDone:
					return
				default:
				}
				mu.RLock()
				merged, stats := db.Merge("00f0", DefaultMergeParams())
				// A mid-race merge must always serialize cleanly.
				if stats.Records > 0 && merged.Runs > 0 {
					var buf bytes.Buffer
					if _, err := WriteSnapshot(&buf, db.Program, merged); err != nil {
						t.Errorf("mid-race merge failed to serialize: %v", err)
					}
				}
				mu.RUnlock()
			}
		}()
	}

	writerWG.Wait()
	close(readerDone)
	readerWG.Wait()

	// Post-race structural invariants: every record parses back through
	// the wire format, and per-fingerprint generation counts are sane.
	mu.Lock()
	defer mu.Unlock()
	var dump bytes.Buffer
	if _, err := db.WriteTo(&dump); err != nil {
		t.Fatalf("post-race db failed to serialize: %v", err)
	}
	back, err := ReadDB(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("post-race db failed to re-parse: %v", err)
	}
	if len(back.Records) != len(db.Records) {
		t.Fatalf("round-trip changed record count: %d vs %d", len(back.Records), len(db.Records))
	}
	total := 0
	for _, rec := range db.Records {
		total += rec.Runs
	}
	if total == 0 {
		t.Fatal("race phase ingested nothing — test inert")
	}
}

// TestCompactAfterConcurrentIngestDeterministic is the determinism
// phase: ingest order must not matter once the final compaction runs.
func TestCompactAfterConcurrentIngestDeterministic(t *testing.T) {
	var recs []*Record
	for i := 0; i < 120; i++ {
		recs = append(recs, compactRec(fmt.Sprintf("%04x", 0xa0+i%3), i%6, 1+i%2, int64(i%4)))
	}

	// Serial reference.
	ref := NewDB("det.c")
	for _, rec := range recs {
		if err := ref.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	ref.Compact(DefaultMergeParams())
	var want bytes.Buffer
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		db := NewDB("det.c")
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(recs); i += workers {
					mu.Lock()
					err := db.Ingest(recs[i])
					mu.Unlock()
					if err != nil {
						t.Error(err)
					}
				}
			}(w)
		}
		wg.Wait()
		db.Compact(DefaultMergeParams())
		var got bytes.Buffer
		if _, err := db.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("workers=%d: post-compaction snapshot differs from serial reference:\n%s\nvs\n%s",
				workers, got.String(), want.String())
		}
	}
}
