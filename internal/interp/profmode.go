package interp

import (
	"fmt"

	"inlinec/internal/callgraph"
	"inlinec/internal/profile"
)

// Profile modes. Full instruments every counter the profiler defines —
// one increment per call arc plus one per function entry. Minimal keeps
// only a minimum coverage set (the arc counters plus a pointer-entry
// counter per callee; see internal/callgraph/coverage.go) and
// reconstructs every elided entry count exactly by flow conservation at
// run finalize. Sampled uses the minimal placement and additionally
// counts only every k-th event per counter with a deterministic skip
// counter, rescaling by k on finalize — approximate arc weights with a
// per-site, per-run error below k, at roughly 1/k of full mode's
// instrumentation events. IL, Control, Calls, Returns, ExternCalls,
// PtrCalls, MaxStack, ExitCode, and Truncated remain exact in every mode
// (they live in dispatch-loop registers, not profiling counters).
const (
	ProfileFull    = "full"
	ProfileMinimal = "minimal"
	ProfileSampled = "sampled"
)

// DefaultSampleRate is the 1-in-k rate sampled mode uses when
// Options.SampleRate is zero.
const DefaultSampleRate = 32

// denseRecon is one flow-conservation equation in dense-id form:
// entries(id) = Σ siteCounts[sites] (+1 root entry when the run entered
// the program through this function).
type denseRecon struct {
	id    int32
	root  bool
	sites []int32
}

// initProfileMode validates the profiling options and, for the minimal
// and sampled modes, consumes the module's minimum coverage plan: dense
// counter masks for both engines (the bytecode translator reads them to
// elide counter superinstructions; the switch oracle applies the same
// masks at dispatch) plus the dense reconstruction steps finalizeCounts
// replays after every run.
func (m *Machine) initProfileMode() error {
	opts := &m.opts
	if opts.SampleRate < 0 {
		return fmt.Errorf("negative sample rate %d", opts.SampleRate)
	}
	switch opts.ProfileMode {
	case "", ProfileFull:
		m.profileMode = ProfileFull
		m.sampleK = 1
		return nil
	case ProfileMinimal:
		m.profileMode = ProfileMinimal
		m.sampleK = 1
	case ProfileSampled:
		m.profileMode = ProfileSampled
		m.sampleK = int64(opts.SampleRate)
		if m.sampleK == 0 {
			m.sampleK = DefaultSampleRate
		}
	default:
		return fmt.Errorf("unknown profile mode %q (want %q, %q, or %q)",
			opts.ProfileMode, ProfileFull, ProfileMinimal, ProfileSampled)
	}

	plan := callgraph.MinimalPlan(m.Mod)

	// Dense id per entity name, mirroring call resolution: user functions
	// precede externs in funcNames, and direct calls resolve user-first,
	// so first occurrence wins.
	idByName := make(map[string]int32, len(m.funcNames))
	for id, name := range m.funcNames {
		if _, seen := idByName[name]; !seen {
			idByName[name] = int32(id)
		}
	}

	m.entryCount = make([]bool, len(m.funcCounts))
	for name, counted := range plan.EntryCounted {
		if id, ok := idByName[name]; ok && counted {
			m.entryCount[id] = true
		}
	}

	// Site mask: direct sites per the plan; pointer sites are always
	// instrumented (they appear in no conservation equation, so the plan
	// can never elide them — their arc weight has no other witness).
	_, _, sites := callgraph.ModuleCoverage(m.Mod)
	m.siteCount = make([]bool, len(m.siteCounts))
	for _, s := range sites {
		if s.ID >= len(m.siteCount) {
			continue
		}
		if s.Callee == "" {
			m.siteCount[s.ID] = true
		} else {
			m.siteCount[s.ID] = plan.SiteCounted[s.ID]
		}
	}

	// Reconstruction steps in dense form. Entities that resolved to no
	// dense id (direct calls to symbols with no implementation) are
	// skipped: such calls fault at dispatch, so no successful —
	// profile-visible — run ever reaches them.
	for _, step := range plan.Steps {
		id, ok := idByName[step.Entity]
		if !ok {
			continue
		}
		dr := denseRecon{id: id, root: step.Root}
		for _, s := range step.Sites {
			if s < len(m.siteCounts) {
				dr.sites = append(dr.sites, int32(s))
			}
		}
		m.recon = append(m.recon, dr)
	}

	m.ptrEntries = make([]int64, len(m.funcCounts))
	if m.sampleK > 1 {
		m.siteSkip = make([]int64, len(m.siteCounts))
		m.ptrSkip = make([]int64, len(m.funcCounts))
	}
	return nil
}

// finalizeCounts runs after every execution, before the dense counters
// fold into RunStats: it measures the instrumentation events the run
// performed, rescales sampled counters, and solves the coverage plan's
// conservation equations to rebuild the elided entry counts. It is a
// pure function of the dense counter arrays, which both engines fill
// identically, so the reconstructed RunStats keep cross-engine
// bit-identity per mode.
func (m *Machine) finalizeCounts(st *profile.RunStats) {
	// Every nonzero raw counter value is the number of increments that
	// counter performed this run (computed before any rescale).
	var ev int64
	for _, c := range m.siteCounts {
		ev += c
	}
	for _, c := range m.funcCounts {
		ev += c
	}
	for _, c := range m.ptrEntries {
		ev += c
	}
	st.ProfileEvents = ev
	if m.profileMode == ProfileFull {
		return
	}

	var end func()
	if m.opts.Obs != nil {
		end = m.opts.Obs.StartSpan("reconstruct")
	}
	if m.sampleK > 1 {
		for i, c := range m.siteCounts {
			if c != 0 {
				m.siteCounts[i] = c * m.sampleK
			}
		}
		for i, c := range m.ptrEntries {
			if c != 0 {
				m.ptrEntries[i] = c * m.sampleK
			}
		}
	}
	for i := range m.recon {
		rs := &m.recon[i]
		var sum int64
		for _, s := range rs.sites {
			sum += m.siteCounts[s]
		}
		if rs.root && m.rootEntered {
			sum++
		}
		m.funcCounts[rs.id] += sum
	}
	// Entries through function pointers belong to the same equations but
	// are counted separately per dense id (a shadowed name can split
	// across ids; foldCounts sums by name either way).
	for id, c := range m.ptrEntries {
		if c != 0 {
			m.funcCounts[id] += c
		}
	}
	if end != nil {
		end()
	}
}

// resetProfileCounters clears the per-run mode-specific counter state.
// Sampling skip counters restart at k every run so each run's counts —
// and therefore merged profiles — are deterministic at any worker count
// and input order.
func (m *Machine) resetProfileCounters() {
	m.rootEntered = false
	for i := range m.ptrEntries {
		m.ptrEntries[i] = 0
	}
	for i := range m.siteSkip {
		m.siteSkip[i] = m.sampleK
	}
	for i := range m.ptrSkip {
		m.ptrSkip[i] = m.sampleK
	}
}

// bumpEntry counts one function entry, honoring the coverage plan's
// entry mask (nil mask = full mode, everything counted).
func (m *Machine) bumpEntry(id int) {
	if m.entryCount == nil || m.entryCount[id] {
		m.funcCounts[id]++
	}
}

// bumpSite counts one call-arc event at a masked site, sampling 1-in-k
// when the rate is above one. The skip counter is deterministic: events
// k, 2k, ... are the counted ones.
func (m *Machine) bumpSite(id int) {
	if !m.siteCount[id] {
		return
	}
	if m.sampleK > 1 {
		m.siteSkip[id]--
		if m.siteSkip[id] != 0 {
			return
		}
		m.siteSkip[id] = m.sampleK
	}
	m.siteCounts[id]++
}

// bumpPtrEntry counts one function entry reached through a pointer call
// in the minimal/sampled modes (full mode counts these through the
// ordinary entry counter instead).
func (m *Machine) bumpPtrEntry(id int32) {
	if m.sampleK > 1 {
		m.ptrSkip[id]--
		if m.ptrSkip[id] != 0 {
			return
		}
		m.ptrSkip[id] = m.sampleK
	}
	m.ptrEntries[id]++
}
