package interp

import "testing"

func TestFeatureCommaAndNestedTernary(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    int a, b, c;
    a = (b = 3, b + 1);               /* comma yields the right operand */
    c = a > 3 ? (b > 2 ? 10 : 20) : 30;
    printf("%d %d %d\n", a, b, c);
    return 0;
}
`)
	if out != "4 3 10\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureCharCompoundOps(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
char g;
int main() {
    char c;
    c = 250;
    c += 10;       /* wraps at a byte boundary: 260 & 0xff = 4 */
    g = c;
    g <<= 4;       /* 64 */
    printf("%d %d\n", c, g);
    return 0;
}
`)
	if out != "4 64\n" {
		t.Errorf("unsigned-char wrap: %q", out)
	}
}

func TestFeatureStructArraysAndChains(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
struct Item { int id; char tag[4]; struct Item *next; };
struct Item items[3];
int main() {
    int i; int sum;
    for (i = 0; i < 3; i++) {
        items[i].id = (i + 1) * 11;
        items[i].tag[0] = 'a' + i;
        items[i].tag[1] = 0;
        if (i > 0) items[i - 1].next = &items[i];
    }
    items[2].next = 0;
    sum = 0;
    {
        struct Item *p;
        for (p = &items[0]; p; p = p->next) sum += p->id;
    }
    printf("%d %c %c %d\n", sum, items[0].tag[0], items[0].next->tag[0],
           items[0].next->next->id);
    return 0;
}
`)
	if out != "66 a b 33\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureGlobalAggregateInit(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
struct P { int x; int y; };
struct P origin = { 3, 4 };
int grid[2][3] = { {1, 2, 3}, {4, 5, 6} };
char tags[4] = { 'a', 'b', 'c', 0 };
int main() {
    printf("%d %d %d %s\n", origin.x + origin.y, grid[0][2], grid[1][1], tags);
    return 0;
}
`)
	if out != "7 3 5 abc\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeaturePointerDifferenceAndComparison(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int arr[10];
int main() {
    int *p; int *q;
    p = &arr[2];
    q = &arr[7];
    printf("%d %d %d %d\n", q - p, p < q, q - 3 == p + 2, p == q);
    return 0;
}
`)
	if out != "5 1 1 0\n" {
		t.Errorf("pointer arithmetic: %q", out)
	}
}

func TestFeatureNegativeDivRem(t *testing.T) {
	// MiniC uses truncated division like C99.
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    printf("%d %d %d %d\n", -7 / 2, -7 % 2, 7 / -2, 7 % -2);
    return 0;
}
`)
	if out != "-3 -1 -3 1\n" {
		t.Errorf("truncated division: %q", out)
	}
}

func TestFeatureDoWhileBreakContinue(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    int i; int sum;
    i = 0;
    sum = 0;
    do {
        i++;
        if (i == 3) continue;
        if (i == 6) break;
        sum += i;
    } while (i < 10);
    printf("%d %d\n", i, sum);
    return 0;
}
`)
	// sum = 1+2+4+5 = 12, exits at i == 6.
	if out != "6 12\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureShiftSemantics(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int main() {
    int neg;
    neg = -16;
    /* >> on a negative value is a logical shift in MiniC's 64-bit
       model (documented divergence: the IL uses unsigned shifts) */
    printf("%d %d %d\n", 1 << 10, 1024 >> 3, (neg >> 2) > 0);
    return 0;
}
`)
	if out != "1024 128 1\n" {
		t.Errorf("shifts: %q", out)
	}
}

func TestFeatureFunctionPointerParamAndReturnViaTable(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
typedef int (*Op)(int);
Op ops[2] = { inc, dec };
int twice(Op f, int v) { return f(f(v)); }
int main() {
    int r;
    r = twice(ops[0], 10) + twice(ops[1], 10);
    printf("%d\n", r);
    return 0;
}
`)
	if out != "20\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureStringArrayGlobals(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
char *days[3] = { "mon", "tue", "wed" };
int main() {
    int i;
    for (i = 0; i < 3; i++) printf("%s ", days[i]);
    printf("\n");
    return 0;
}
`)
	if out != "mon tue wed \n" {
		t.Errorf("output = %q", out)
	}
}

func TestFeatureLocalArrayInitializers(t *testing.T) {
	out, _ := runSrc(t, `
extern int printf(char *fmt, ...);
struct V { int a; char b; };
int main() {
    int nums[4] = { 9, 8, 7 };     /* trailing element zeroed */
    char word[] = "hi";
    struct V v = { 5, 'x' };
    printf("%d %d %d %s %d %c\n", nums[0], nums[2], nums[3], word, v.a, v.b);
    return 0;
}
`)
	if out != "9 7 0 hi 5 x\n" {
		t.Errorf("output = %q", out)
	}
}
