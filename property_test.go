package inlinec

import (
	"fmt"
	"strings"
	"testing"

	"inlinec/internal/inline"
	"inlinec/internal/testgen"
)

// runChecked compiles and runs a generated program with an instruction
// budget, failing the test on any error.
func runChecked(t *testing.T, p *Program, original bool) string {
	t.Helper()
	var out *RunOutput
	var err error
	if original {
		out, err = p.RunOriginal(Input{})
	} else {
		out, err = p.Run(Input{})
	}
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.Stdout
}

// TestPropertyInlinePreservesSemantics is the repo's central property
// test: for many random programs and several expander configurations,
// inline expansion must not change observable behaviour.
func TestPropertyInlinePreservesSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	configs := []Params{
		DefaultParams(),
		{WeightThreshold: 1, SizeLimitFactor: 4.0},
		{WeightThreshold: 50, SizeLimitFactor: 1.1},
		{Heuristic: inline.HeuristicLeaf, SizeLimitFactor: 3.0},
		{Heuristic: inline.HeuristicSmall, SmallCalleeLimit: 40, SizeLimitFactor: 3.0},
		{NoLinearOrder: true, SizeLimitFactor: 2.0},
		{WeightThreshold: 1, SizeLimitFactor: 3.0, MaxCalleeSize: 25,
			PartialInline: true, DevirtThreshold: 0.5},
		{WeightThreshold: 1, SizeLimitFactor: 4.0, MaxCalleeSize: 30,
			PartialInline: true},
	}
	shapes := []testgen.Options{
		{},
		{Funcs: 3, MaxStmts: 10, MaxDepth: 4},
		{Funcs: 10, Recursion: true},
		{Funcs: 5, Pointers: true, Recursion: true},
		{Funcs: 6, FuncPtrs: true},
		{Funcs: 4, FuncPtrs: true, Extern: true, Pointers: true},
		{Funcs: 6, HotColdBodies: true, DominantFuncPtr: true},
		{Funcs: 8, HotColdBodies: true, FuncPtrs: true, Extern: true},
	}
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			shape := shapes[int(seed)%len(shapes)]
			src := testgen.Generate(seed, shape)
			cfg := configs[int(seed)%len(configs)]

			p, err := Compile(fmt.Sprintf("gen%d.c", seed), src)
			if err != nil {
				t.Fatalf("compile generated program: %v\n%s", err, src)
			}
			want := runChecked(t, p, true)
			prof, err := p.ProfileInputs(Input{})
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			res, err := p.Inline(prof, cfg)
			if err != nil {
				t.Fatalf("inline (%+v): %v", cfg, err)
			}
			got := runChecked(t, p, false)
			if got != want {
				t.Fatalf("inlining changed output (cfg %+v)\nwant %q\ngot  %q\nexpanded: %v\nsource:\n%s",
					cfg, want, got, res.Expanded, src)
			}
			// Post-inline optimization must also preserve behaviour.
			if err := p.Optimize(); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			if got2 := runChecked(t, p, false); got2 != want {
				t.Fatalf("post-inline optimization changed output\nwant %q\ngot %q\nsource:\n%s", want, got2, src)
			}
		})
	}
}

// truncatedSrc ends some runs with exit() mid-call-chain, so Returns !=
// Calls and frames die without unwinding — the hardest case for
// flow-conservation reconstruction, since entry counts and site counts
// disagree transiently at the moment of death.
const truncatedSrc = `
extern int exit(int code);
int leaf(int n) { return n + 1; }
int mid(int n) {
	int i;
	i = 0;
	while (i < 10) { leaf(i); i = i + 1; }
	if (n > 3) exit(7);
	return leaf(n);
}
int main() {
	int i;
	i = 0;
	while (i < 6) { mid(i); i = i + 1; }
	return 0;
}
`

// TestPropertyMinimalProfileExact: for program shapes covering every
// call-arc kind (direct, recursive, pointer-valued, indirect, extern)
// and for truncated runs, the minimal profile mode must serialize
// byte-identically to full mode at every worker count — reconstruction
// by flow conservation is exact, not approximate. Sampled mode must
// stay within its deterministic per-site bound of (k-1) per run.
func TestPropertyMinimalProfileExact(t *testing.T) {
	shapes := []testgen.Options{
		{},
		{Funcs: 10, Recursion: true},
		{Funcs: 5, Pointers: true, Recursion: true},
		{Funcs: 6, FuncPtrs: true},
		{Funcs: 4, FuncPtrs: true, Extern: true, Pointers: true},
		{Funcs: 9, FuncPtrs: true, Extern: true, Recursion: true, MaxStmts: 8},
		{Funcs: 7, HotColdBodies: true, DominantFuncPtr: true},
	}
	srcs := []string{truncatedSrc}
	for i, shape := range shapes {
		srcs = append(srcs, testgen.Generate(int64(3000+i), shape))
	}
	inputs := []Input{{}, {Stdin: []byte("4\n")}, {Stdin: []byte("1 2 3\n")}, {Stdin: []byte("x")}, {}, {Stdin: []byte("42\n")}}

	serialize := func(t *testing.T, src, mode string, rate, par int) (*Profile, string) {
		t.Helper()
		p, err := Compile("prop.c", src)
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		p.ProfileMode = mode
		p.SampleRate = rate
		p.Parallelism = par
		prof, err := p.ProfileInputs(inputs...)
		if err != nil {
			t.Fatalf("profile (mode %s, par %d): %v", mode, par, err)
		}
		var sb strings.Builder
		if _, err := prof.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		return prof, sb.String()
	}

	for si, src := range srcs {
		src := src
		t.Run(fmt.Sprintf("src%d", si), func(t *testing.T) {
			t.Parallel()
			full, ref := serialize(t, src, "full", 0, 1)
			for _, par := range []int{1, 2, 8} {
				if _, got := serialize(t, src, "minimal", 0, par); got != ref {
					t.Errorf("minimal profile at Parallelism %d is not byte-identical to full:\nfull:\n%s\nminimal:\n%s", par, ref, got)
				}
			}
			// Sampled: each site may under-report by at most k-1 events per
			// run, never over-report.
			const k = 16
			sampled, _ := serialize(t, src, "sampled", k, 1)
			bound := int64((k - 1) * len(inputs))
			for id, want := range full.SiteCounts {
				got := sampled.SiteCounts[id]
				if got > want || want-got > bound {
					t.Errorf("sampled site %d count %d outside [%d-%d, %d] (k=%d, %d runs)",
						id, got, want, bound, want, k, len(inputs))
				}
			}
			if sampled.SampleRate != k {
				t.Errorf("sampled profile carries rate %d, want %d", sampled.SampleRate, k)
			}
			if sampled.ProfileEvents >= full.ProfileEvents {
				t.Errorf("sampled mode performed %d profile events, full %d — no reduction",
					sampled.ProfileEvents, full.ProfileEvents)
			}
		})
	}
}

// TestPropertySizeLimitRespected checks that for random programs, the
// final code size never exceeds the configured cap (small additive slack:
// each splice emits a continuation label that does not count and the
// estimate is made before argument stores).
func TestPropertySizeLimitRespected(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		src := testgen.Generate(seed, testgen.Options{Funcs: 8})
		p, err := Compile("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 1.3
		res, err := p.Inline(prof, params)
		if err != nil {
			t.Fatalf("seed %d: inline: %v", seed, err)
		}
		// The selection estimate excludes the per-argument stores the
		// splice adds (2 instructions per parameter), so allow that slack.
		slack := 8 * len(res.Expanded)
		limit := int(1.3*float64(res.OriginalSize)) + slack
		if res.FinalSize > limit {
			t.Errorf("seed %d: size %d -> %d exceeds cap %d (expanded %d)",
				seed, res.OriginalSize, res.FinalSize, limit, len(res.Expanded))
		}
	}
}

// TestPropertyExpansionCountMatchesDecisions verifies the linearization
// guarantee: with the linear order active, physical expansions == accepted
// arcs (each site spliced exactly once).
func TestPropertyExpansionCountMatchesDecisions(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		src := testgen.Generate(seed, testgen.Options{Funcs: 7, Recursion: true})
		p, err := Compile("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 2.5
		res, err := p.Inline(prof, params)
		if err != nil {
			t.Fatalf("seed %d: inline: %v", seed, err)
		}
		if res.NumExpansions != len(res.Expanded) {
			t.Errorf("seed %d: %d physical expansions for %d accepted arcs",
				seed, res.NumExpansions, len(res.Expanded))
		}
	}
}
