// Package irgen lowers a type-checked MiniC program (sema.Program) into
// the IL module representation. All named locals live in addressable frame
// slots; expression temporaries use virtual registers. Lowering is
// deliberately naive — the paper applies constant folding and jump
// optimization as separate passes before inline expansion, and this
// pipeline does the same (see package opt).
package irgen

import (
	"encoding/binary"
	"fmt"
	"strings"

	"inlinec/internal/ast"
	"inlinec/internal/ir"
	"inlinec/internal/sema"
	"inlinec/internal/token"
	"inlinec/internal/types"
)

// Generate lowers the program to an IL module.
func Generate(prog *sema.Program) (*ir.Module, error) {
	g := &gen{
		prog:    prog,
		mod:     ir.NewModule(prog.File.Name),
		strLits: make(map[string]string),
		globals: make(map[*ast.VarDecl]string),
		unit:    unitTag(prog.File.Name),
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	g.mod.AssignCallIDs()
	if err := g.mod.Verify(); err != nil {
		return nil, fmt.Errorf("irgen produced invalid IL: %w", err)
	}
	return g.mod, nil
}

type gen struct {
	prog    *sema.Program
	mod     *ir.Module
	strLits map[string]string       // literal value -> global name
	globals map[*ast.VarDecl]string // global decl -> global name
	unit    string                  // sanitized unit name for static symbols

	// Per-function state.
	fn        *ir.Func
	slotOf    map[*ast.VarDecl]int
	userLabel map[string]int // goto label name -> IR label
	breaks    []int          // label stack for break
	conts     []int          // label stack for continue
}

type genError struct {
	pos token.Pos
	msg string
}

func (e *genError) Error() string { return fmt.Sprintf("%s: %s", e.pos, e.msg) }

func (g *gen) failf(pos token.Pos, format string, args ...any) {
	panic(&genError{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// unitTag derives a symbol-safe tag from a file name, used to qualify
// unit-private (static) symbols so separately compiled units can be
// linked without collisions.
func unitTag(file string) string {
	base := file
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	out := make([]byte, 0, len(base))
	for i := 0; i < len(base); i++ {
		c := base[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unit"
	}
	return string(out)
}

// funcSym returns the IL-level name of a function declaration: static
// functions are qualified with the unit tag.
func (g *gen) funcSym(fd *ast.FuncDecl) string {
	if fd.IsStatic && fd.Body != nil {
		return g.unit + "$" + fd.Name
	}
	return fd.Name
}

func (g *gen) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ge, ok := r.(*genError); ok {
				err = ge
				return
			}
			panic(r)
		}
	}()

	for _, e := range g.prog.Externs {
		g.mod.AddExtern(ir.Extern{
			Name:      e.Name,
			NumParams: len(e.Type.Params),
			Variadic:  e.Type.Variadic,
		})
	}
	for _, vd := range g.prog.Globals {
		g.genGlobal(vd)
	}
	for _, fd := range g.prog.Funcs {
		g.genFunc(fd)
	}
	for fd := range g.prog.AddressTaken {
		if fd.Body != nil {
			g.mod.AddressTaken[g.funcSym(fd)] = true
		}
	}
	return nil
}

// --------------------------------------------------------------- globals

func (g *gen) internString(s string) string {
	if name, ok := g.strLits[s]; ok {
		return name
	}
	name := fmt.Sprintf(".str%d", len(g.strLits))
	g.strLits[s] = name
	data := append([]byte(s), 0)
	g.mod.AddGlobal(&ir.Global{Name: name, Size: len(data), Align: 1, Init: data})
	return name
}

func (g *gen) genGlobal(vd *ast.VarDecl) {
	name := vd.Name
	if vd.IsStatic {
		name = g.unit + "$" + name
	}
	if vd.IsExtern && vd.Init == nil {
		// Declaration without storage: the linker resolves it against a
		// definition in another unit.
		g.mod.ExternGlobals[name] = true
		g.globals[vd] = name
		return
	}
	size := vd.Type.Size()
	if size == 0 {
		size = types.IntSize
	}
	glob := &ir.Global{Name: name, Size: size, Align: vd.Type.Align()}
	if vd.Init != nil {
		glob.Init = make([]byte, size)
		g.emitGlobalInit(glob, 0, vd.Type, vd.Init)
	}
	g.mod.AddGlobal(glob)
	g.globals[vd] = name
}

// emitGlobalInit writes the constant initializer for type t at offset off.
func (g *gen) emitGlobalInit(glob *ir.Global, off int, t types.Type, init ast.Expr) {
	switch e := init.(type) {
	case *ast.IntLit:
		g.putInt(glob, off, t, e.Value)
	case *ast.UnaryExpr:
		v, ok := constFold(init)
		if !ok {
			g.failf(init.Pos(), "unsupported constant initializer")
		}
		g.putInt(glob, off, t, v)
	case *ast.StrLit:
		if arr, isArr := t.(*types.Arr); isArr && arr.Elem.Kind() == types.Char {
			copy(glob.Init[off:], e.Value)
			// NUL terminator is implicit (Init was zeroed).
			return
		}
		// Pointer initialized with the address of an interned string.
		name := g.internString(e.Value)
		glob.Relocs = append(glob.Relocs, ir.Reloc{Offset: off, Sym: name})
	case *ast.Ident:
		// A function name: store its address.
		if fd, ok := e.Ref.(*ast.FuncDecl); ok {
			glob.Relocs = append(glob.Relocs, ir.Reloc{Offset: off, Sym: g.funcSym(fd), IsFunc: true})
			return
		}
		g.failf(init.Pos(), "unsupported constant initializer")
	case *ast.InitListExpr:
		switch tt := t.(type) {
		case *types.Arr:
			es := tt.Elem.Size()
			for i, el := range e.Elems {
				g.emitGlobalInit(glob, off+i*es, tt.Elem, el)
			}
		case *types.StructType:
			for i, el := range e.Elems {
				if i < len(tt.Fields) {
					g.emitGlobalInit(glob, off+tt.Fields[i].Offset, tt.Fields[i].Type, el)
				}
			}
		default:
			g.failf(init.Pos(), "initializer list for non-aggregate type %s", t)
		}
	default:
		g.failf(init.Pos(), "unsupported constant initializer %T", init)
	}
}

func (g *gen) putInt(glob *ir.Global, off int, t types.Type, v int64) {
	if t.Kind() == types.Char {
		glob.Init[off] = byte(v)
		return
	}
	binary.LittleEndian.PutUint64(glob.Init[off:], uint64(v))
}

// constFold evaluates the tiny constant-expression forms allowed in
// initializers (literals under unary - and ~).
func constFold(e ast.Expr) (int64, bool) {
	switch ee := e.(type) {
	case *ast.IntLit:
		return ee.Value, true
	case *ast.UnaryExpr:
		v, ok := constFold(ee.X)
		if !ok {
			return 0, false
		}
		switch ee.Op {
		case token.Minus:
			return -v, true
		case token.Tilde:
			return ^v, true
		}
	}
	return 0, false
}

// --------------------------------------------------------------- functions

func (g *gen) genFunc(fd *ast.FuncDecl) {
	g.fn = &ir.Func{
		Name:         g.funcSym(fd),
		ReturnsValue: !types.IsVoid(fd.Type.Result),
		SrcLines:     srcLines(fd),
	}
	g.slotOf = make(map[*ast.VarDecl]int)
	g.userLabel = make(map[string]int)
	g.breaks, g.conts = nil, nil

	for _, p := range fd.Params {
		t := types.Decay(p.Type)
		idx := g.fn.AddSlot(p.Name, sizeOf(t), t.Align(), true)
		g.slotOf[p] = idx
		g.fn.NumParams++
	}
	g.genBlock(fd.Body)

	// Implicit return for functions that fall off the end.
	if g.fn.ReturnsValue {
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpConst, Dst: r, A: ir.C(0), Pos: fd.Pos()})
		g.emit(ir.Instr{Op: ir.OpRet, A: ir.R(r), Pos: fd.Pos()})
	} else {
		g.emit(ir.Instr{Op: ir.OpRet, A: ir.None, Pos: fd.Pos()})
	}
	g.mod.AddFunc(g.fn)
	g.fn = nil
}

func srcLines(fd *ast.FuncDecl) int {
	if fd.Body == nil {
		return 1
	}
	last := fd.Pos().Line
	var walk func(s ast.Stmt)
	walkE := func(e ast.Expr) {
		if e != nil && e.Pos().Line > last {
			last = e.Pos().Line
		}
	}
	walk = func(s ast.Stmt) {
		if s == nil {
			return
		}
		if s.Pos().Line > last {
			last = s.Pos().Line
		}
		switch ss := s.(type) {
		case *ast.BlockStmt:
			for _, st := range ss.List {
				walk(st)
			}
		case *ast.IfStmt:
			walkE(ss.Cond)
			walk(ss.Then)
			walk(ss.Else)
		case *ast.WhileStmt:
			walkE(ss.Cond)
			walk(ss.Body)
		case *ast.DoWhileStmt:
			walk(ss.Body)
			walkE(ss.Cond)
		case *ast.ForStmt:
			walk(ss.Init)
			walkE(ss.Cond)
			walkE(ss.Post)
			walk(ss.Body)
		case *ast.LabeledStmt:
			walk(ss.Stmt)
		case *ast.SwitchStmt:
			walkE(ss.Tag)
			for _, cc := range ss.Cases {
				for _, st := range cc.Body {
					walk(st)
				}
			}
		case *ast.ExprStmt:
			walkE(ss.X)
		case *ast.ReturnStmt:
			walkE(ss.X)
		case *ast.VarDecl:
			walkE(ss.Init)
		}
	}
	walk(fd.Body)
	return last - fd.Pos().Line + 1
}

func sizeOf(t types.Type) int {
	s := t.Size()
	if s == 0 {
		s = types.IntSize
	}
	return s
}

func (g *gen) emit(in ir.Instr) { g.fn.Emit(in) }

func (g *gen) label(l int, pos token.Pos) {
	g.emit(ir.Instr{Op: ir.OpLabel, Label: l, Pos: pos})
}

// accessSize returns the load/store width for a scalar type.
func accessSize(t types.Type) int {
	if t.Kind() == types.Char {
		return 1
	}
	return types.IntSize
}

// ---------------------------------------------------------------- statements

func (g *gen) genBlock(b *ast.BlockStmt) {
	for _, s := range b.List {
		g.genStmt(s)
	}
}

func (g *gen) genStmt(s ast.Stmt) {
	switch ss := s.(type) {
	case *ast.BlockStmt:
		g.genBlock(ss)
	case *ast.EmptyStmt:
	case *ast.VarDecl:
		g.genLocalDecl(ss)
	case *ast.ExprStmt:
		g.genExpr(ss.X)
	case *ast.IfStmt:
		g.genIf(ss)
	case *ast.WhileStmt:
		g.genWhile(ss)
	case *ast.DoWhileStmt:
		g.genDoWhile(ss)
	case *ast.ForStmt:
		g.genFor(ss)
	case *ast.ReturnStmt:
		if ss.X != nil {
			v := g.rvalue(ss.X)
			g.emit(ir.Instr{Op: ir.OpRet, A: v, Pos: ss.Pos()})
		} else {
			g.emit(ir.Instr{Op: ir.OpRet, A: ir.None, Pos: ss.Pos()})
		}
	case *ast.BreakStmt:
		g.emit(ir.Instr{Op: ir.OpJump, Label: g.breaks[len(g.breaks)-1], Pos: ss.Pos()})
	case *ast.ContinueStmt:
		g.emit(ir.Instr{Op: ir.OpJump, Label: g.conts[len(g.conts)-1], Pos: ss.Pos()})
	case *ast.GotoStmt:
		g.emit(ir.Instr{Op: ir.OpJump, Label: g.gotoLabel(ss.Label), Pos: ss.Pos()})
	case *ast.LabeledStmt:
		g.label(g.gotoLabel(ss.Label), ss.Pos())
		g.genStmt(ss.Stmt)
	case *ast.SwitchStmt:
		g.genSwitch(ss)
	default:
		g.failf(s.Pos(), "unhandled statement %T", s)
	}
}

func (g *gen) gotoLabel(name string) int {
	if l, ok := g.userLabel[name]; ok {
		return l
	}
	l := g.fn.NewLabel()
	g.userLabel[name] = l
	return l
}

func (g *gen) genLocalDecl(vd *ast.VarDecl) {
	t := vd.Type
	idx := g.fn.AddSlot(vd.Name, sizeOf(t), t.Align(), false)
	g.slotOf[vd] = idx
	if vd.Init == nil {
		return
	}
	base := func() ir.Value {
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpAddrL, Dst: r, A: ir.C(int64(idx)), Pos: vd.Pos()})
		return ir.R(r)
	}
	switch init := vd.Init.(type) {
	case *ast.InitListExpr:
		switch tt := t.(type) {
		case *types.Arr:
			es := tt.Elem.Size()
			for i, el := range init.Elems {
				v := g.rvalue(el)
				addr := g.addOffset(base(), int64(i*es), el.Pos())
				g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: accessSize(tt.Elem), Pos: el.Pos()})
			}
		case *types.StructType:
			for i, el := range init.Elems {
				if i >= len(tt.Fields) {
					break
				}
				f := tt.Fields[i]
				v := g.rvalue(el)
				addr := g.addOffset(base(), int64(f.Offset), el.Pos())
				g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: accessSize(f.Type), Pos: el.Pos()})
			}
		}
	case *ast.StrLit:
		if arr, isArr := t.(*types.Arr); isArr && arr.Elem.Kind() == types.Char {
			// char buf[] = "..." : copy the interned literal byte by byte.
			name := g.internString(init.Value)
			src := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpAddrG, Dst: src, Sym: name, Pos: vd.Pos()})
			g.emitMemCopy(base(), ir.R(src), len(init.Value)+1, vd.Pos())
			return
		}
		v := g.rvalue(vd.Init)
		g.emit(ir.Instr{Op: ir.OpStore, A: base(), B: v, Size: accessSize(t), Pos: vd.Pos()})
	default:
		v := g.rvalue(vd.Init)
		if st, isStruct := t.(*types.StructType); isStruct {
			g.emitMemCopy(base(), v, st.Size(), vd.Pos())
			return
		}
		g.emit(ir.Instr{Op: ir.OpStore, A: base(), B: v, Size: accessSize(t), Pos: vd.Pos()})
	}
}

// emitMemCopy copies n bytes from src address to dst address with unrolled
// word and byte moves (small n; struct assignment and string init).
func (g *gen) emitMemCopy(dst, src ir.Value, n int, pos token.Pos) {
	off := 0
	for n-off >= 8 {
		tmp := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: tmp, A: g.addOffset(src, int64(off), pos), Size: 8, Pos: pos})
		g.emit(ir.Instr{Op: ir.OpStore, A: g.addOffset(dst, int64(off), pos), B: ir.R(tmp), Size: 8, Pos: pos})
		off += 8
	}
	for off < n {
		tmp := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: tmp, A: g.addOffset(src, int64(off), pos), Size: 1, Pos: pos})
		g.emit(ir.Instr{Op: ir.OpStore, A: g.addOffset(dst, int64(off), pos), B: ir.R(tmp), Size: 1, Pos: pos})
		off++
	}
}

func (g *gen) genIf(s *ast.IfStmt) {
	elseL := g.fn.NewLabel()
	endL := elseL
	if s.Else != nil {
		endL = g.fn.NewLabel()
	}
	g.genCondBranch(s.Cond, false, elseL)
	g.genStmt(s.Then)
	if s.Else != nil {
		g.emit(ir.Instr{Op: ir.OpJump, Label: endL, Pos: s.Pos()})
		g.label(elseL, s.Pos())
		g.genStmt(s.Else)
	}
	g.label(endL, s.Pos())
}

func (g *gen) genWhile(s *ast.WhileStmt) {
	top := g.fn.NewLabel()
	end := g.fn.NewLabel()
	g.label(top, s.Pos())
	g.genCondBranch(s.Cond, false, end)
	g.breaks = append(g.breaks, end)
	g.conts = append(g.conts, top)
	g.genStmt(s.Body)
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	g.emit(ir.Instr{Op: ir.OpJump, Label: top, Pos: s.Pos()})
	g.label(end, s.Pos())
}

func (g *gen) genDoWhile(s *ast.DoWhileStmt) {
	top := g.fn.NewLabel()
	cond := g.fn.NewLabel()
	end := g.fn.NewLabel()
	g.label(top, s.Pos())
	g.breaks = append(g.breaks, end)
	g.conts = append(g.conts, cond)
	g.genStmt(s.Body)
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	g.label(cond, s.Pos())
	g.genCondBranch(s.Cond, true, top)
	g.label(end, s.Pos())
}

func (g *gen) genFor(s *ast.ForStmt) {
	if s.Init != nil {
		g.genStmt(s.Init)
	}
	top := g.fn.NewLabel()
	post := g.fn.NewLabel()
	end := g.fn.NewLabel()
	g.label(top, s.Pos())
	if s.Cond != nil {
		g.genCondBranch(s.Cond, false, end)
	}
	g.breaks = append(g.breaks, end)
	g.conts = append(g.conts, post)
	g.genStmt(s.Body)
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	g.label(post, s.Pos())
	if s.Post != nil {
		g.genExpr(s.Post)
	}
	g.emit(ir.Instr{Op: ir.OpJump, Label: top, Pos: s.Pos()})
	g.label(end, s.Pos())
}

func (g *gen) genSwitch(s *ast.SwitchStmt) {
	tag := g.rvalue(s.Tag)
	// Materialize the tag once.
	tagReg := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpMov, Dst: tagReg, A: tag, Pos: s.Pos()})
	end := g.fn.NewLabel()

	bodyLabels := make([]int, len(s.Cases))
	defaultIdx := -1
	for i, cc := range s.Cases {
		bodyLabels[i] = g.fn.NewLabel()
		if cc.Values == nil {
			defaultIdx = i
		}
	}
	// Dispatch: compare against each case constant in order.
	for i, cc := range s.Cases {
		for _, v := range cc.Values {
			lit, ok := v.(*ast.IntLit)
			if !ok {
				g.failf(v.Pos(), "case value must be constant")
			}
			cv := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpConst, Dst: cv, A: ir.C(lit.Value), Pos: v.Pos()})
			cmp := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpEq, Dst: cmp, A: ir.R(tagReg), B: ir.R(cv), Pos: v.Pos()})
			g.emit(ir.Instr{Op: ir.OpBr, A: ir.R(cmp), Label: bodyLabels[i], Pos: v.Pos()})
		}
	}
	if defaultIdx >= 0 {
		g.emit(ir.Instr{Op: ir.OpJump, Label: bodyLabels[defaultIdx], Pos: s.Pos()})
	} else {
		g.emit(ir.Instr{Op: ir.OpJump, Label: end, Pos: s.Pos()})
	}
	// Bodies. MiniC clauses do not fall through; a trailing break in the
	// source simply jumps to end as well.
	g.breaks = append(g.breaks, end)
	for i, cc := range s.Cases {
		g.label(bodyLabels[i], cc.Pos())
		for _, st := range cc.Body {
			g.genStmt(st)
		}
		g.emit(ir.Instr{Op: ir.OpJump, Label: end, Pos: cc.Pos()})
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.label(end, s.Pos())
}

// genCondBranch evaluates cond and branches to target when the condition's
// truth equals want. Short-circuits && and || without materializing 0/1.
func (g *gen) genCondBranch(cond ast.Expr, want bool, target int) {
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AndAnd:
			if want {
				// (a && b) true -> target: a false skips, b true jumps.
				skip := g.fn.NewLabel()
				g.genCondBranch(e.X, false, skip)
				g.genCondBranch(e.Y, true, target)
				g.label(skip, e.Pos())
			} else {
				g.genCondBranch(e.X, false, target)
				g.genCondBranch(e.Y, false, target)
			}
			return
		case token.OrOr:
			if want {
				g.genCondBranch(e.X, true, target)
				g.genCondBranch(e.Y, true, target)
			} else {
				skip := g.fn.NewLabel()
				g.genCondBranch(e.X, true, skip)
				g.genCondBranch(e.Y, false, target)
				g.label(skip, e.Pos())
			}
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.Bang {
			g.genCondBranch(e.X, !want, target)
			return
		}
	}
	v := g.rvalue(cond)
	if want {
		g.emit(ir.Instr{Op: ir.OpBr, A: v, Label: target, Pos: cond.Pos()})
		return
	}
	// Branch when false: invert with eq-zero.
	z := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpConst, Dst: z, A: ir.C(0), Pos: cond.Pos()})
	inv := g.fn.NewReg()
	var reg ir.Value = v
	if v.Kind == ir.VKConst {
		t := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpConst, Dst: t, A: v, Pos: cond.Pos()})
		reg = ir.R(t)
	}
	g.emit(ir.Instr{Op: ir.OpEq, Dst: inv, A: reg, B: ir.R(z), Pos: cond.Pos()})
	g.emit(ir.Instr{Op: ir.OpBr, A: ir.R(inv), Label: target, Pos: cond.Pos()})
}
