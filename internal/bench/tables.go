package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"inlinec/internal/callgraph"
)

// Table1 renders benchmark characteristics: static C lines, run counts,
// and per-run dynamic IL and control-transfer counts in thousands.
func Table1(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Benchmark characteristics.\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tC lines\truns\tIL's\tcontrol\tinput description")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0fK\t%.1fK\t%s\n",
			r.Name, r.CLines, r.Runs, r.AvgIL/1000, r.AvgControl/1000, r.InputDesc)
	}
	w.Flush()
	return sb.String()
}

// Table2 renders static call-site characteristics: total sites and the
// percentage that are external, through pointers, unsafe, and safe.
func Table2(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Static function call characteristics.\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\ttotal\texternal\tpointer\tunsafe\tsafe")
	var ext, ptr, uns, safe []float64
	for _, r := range results {
		total := float64(r.Classes.TotalStatic())
		pc := func(c callgraph.SiteClass) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(r.Classes.Static[c]) / total
		}
		e, p, u, s := pc(callgraph.ClassExternal), pc(callgraph.ClassPointer),
			pc(callgraph.ClassUnsafe), pc(callgraph.ClassSafe)
		ext, ptr, uns, safe = append(ext, e), append(ptr, p), append(uns, u), append(safe, s)
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Name, r.Classes.TotalStatic(), e, p, u, s)
	}
	writeAvgSD4(w, ext, ptr, uns, safe, "")
	w.Flush()
	return sb.String()
}

// Table3 renders dynamic call behaviour: total dynamic calls (thousands)
// and the percentage by class, weighted by invocation counts.
func Table3(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Table 3. Dynamic function call behavior.\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tcalls\texternal\tpointer\tunsafe\tsafe")
	var ext, ptr, uns, safe []float64
	for _, r := range results {
		total := r.Classes.TotalDynamic()
		pc := func(c callgraph.SiteClass) float64 {
			if total == 0 {
				return 0
			}
			return 100 * r.Classes.Dynamic[c] / total
		}
		e, p, u, s := pc(callgraph.ClassExternal), pc(callgraph.ClassPointer),
			pc(callgraph.ClassUnsafe), pc(callgraph.ClassSafe)
		ext, ptr, uns, safe = append(ext, e), append(ptr, p), append(uns, u), append(safe, s)
		fmt.Fprintf(w, "%s\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Name, kilo(total), e, p, u, s)
	}
	writeAvgSD4(w, ext, ptr, uns, safe, "")
	w.Flush()
	return sb.String()
}

// Table4 renders the paper's headline results: static code increase,
// dynamic call decrease, and the post-inline ILs and control transfers
// per remaining call, with AVG and SD rows.
func Table4(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Table 4. Inline expansion results.\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tcode inc\tcall dec\tIL's per call\tCT's per call")
	var incs, decs, ils, cts []float64
	for _, r := range results {
		inc := 100 * r.CodeInc
		dec := 100 * r.CallDec
		incs, decs = append(incs, inc), append(decs, dec)
		ils, cts = append(ils, r.ILPerCall), append(cts, r.CTPerCall)
		fmt.Fprintf(w, "%s\t%.0f%%\t%.0f%%\t%.0f\t%.0f\n", r.Name, inc, dec, r.ILPerCall, r.CTPerCall)
	}
	mi, si := meanSD(incs)
	md, sd := meanSD(decs)
	mil, sil := meanSD(ils)
	mct, sct := meanSD(cts)
	fmt.Fprintf(w, "AVG\t%.1f%%\t%.1f%%\t%.0f\t%.0f\n", mi, md, mil, mct)
	fmt.Fprintf(w, "SD\t%.1f%%\t%.1f%%\t%.0f\t%.0f\n", si, sd, sil, sct)
	w.Flush()
	return sb.String()
}

// Table4x renders the section 4.4 epilogue: the class mix of the dynamic
// calls that remain after inline expansion, averaged across benchmarks
// (the paper reports external 56.1%, pointer 2.8%, unsafe 18.0%,
// safe 23.1%).
func Table4x(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Post-inline dynamic call mix (section 4.4).\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\texternal\tpointer\tunsafe\tsafe")
	var cols [4][]float64
	for _, r := range results {
		for i := 0; i < 4; i++ {
			cols[i] = append(cols[i], 100*r.PostMix[i])
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Name, 100*r.PostMix[0], 100*r.PostMix[1], 100*r.PostMix[2], 100*r.PostMix[3])
	}
	writeAvgSD4(w, cols[0], cols[1], cols[2], cols[3], "")
	w.Flush()
	return sb.String()
}

// kilo formats a count in thousands, keeping precision for tiny values
// (wc makes ~10 calls per run; "0.0K" would hide it).
func kilo(v float64) string {
	if v < 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1fK", v/1000)
}

func writeAvgSD4(w *tabwriter.Writer, a, b, c, d []float64, suffix string) {
	ma, _ := meanSD(a)
	mb, _ := meanSD(b)
	mc, _ := meanSD(c)
	md, _ := meanSD(d)
	fmt.Fprintf(w, "AVG\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n", suffix, ma, mb, mc, md)
}

// AllTables renders the complete experiment report.
func AllTables(results []*BenchResult) string {
	return Table1(results) + "\n" + Table2(results) + "\n" +
		Table3(results) + "\n" + Table4(results) + "\n" + Table4x(results)
}

// OverheadTable renders the profiling-overhead comparison: counter
// increments and arc-weight error per benchmark and profile mode, with
// the event-reduction factor relative to the full-mode row of the same
// benchmark and engine when one is present. Empty unless some result
// used a reduced mode — single-mode full runs have nothing to compare.
func OverheadTable(results []*BenchResult) string {
	reduced := false
	full := make(map[string]int64)
	for _, r := range results {
		if r.ProfileMode != "" && r.ProfileMode != "full" {
			reduced = true
		} else {
			full[r.Name+"\x00"+r.Engine] = r.ProfileEvents
		}
	}
	if !reduced {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("Profiling overhead by mode (counter increments across both profiling passes).\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tengine\tmode\trate\tevents\tvs full\tweight err")
	for _, r := range results {
		mode := r.ProfileMode
		if mode == "" {
			mode = "full"
		}
		rate := "-"
		if r.SampleRate > 0 {
			rate = fmt.Sprintf("1/%d", r.SampleRate)
		}
		vs := "-"
		if f, ok := full[r.Name+"\x00"+r.Engine]; ok && mode != "full" && r.ProfileEvents > 0 {
			vs = fmt.Sprintf("%.1fx less", float64(f)/float64(r.ProfileEvents))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\t%.2f%%\n",
			r.Name, r.Engine, mode, rate, r.ProfileEvents, vs, r.WeightErrPct)
	}
	w.Flush()
	return sb.String()
}
