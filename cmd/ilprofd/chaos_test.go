package main

// Process-level crash test: a real ilprofd is killed with SIGKILL while
// retrying clients hammer /ingest, over several rounds sharing one
// database. After the dust settles the store must load cleanly and hold
// every acknowledged run — the WAL ack barrier, exercised against a
// genuine kernel kill rather than a simulated crash.

import (
	"math/rand"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"inlinec/internal/chaos"
	"inlinec/internal/profdb"
)

// chaosRec builds the minimal valid snapshot record the daemon accepts.
func chaosRec(fp string, gen int) *profdb.Record {
	r := profdb.NewRecord(fp, gen)
	r.Runs = 1
	r.IL = 500
	r.Calls = 20
	r.Funcs = map[string]int64{"main": 5, "work": 15}
	r.Sites = map[profdb.SiteKey]int64{
		{Caller: "main", Callee: "work", Ordinal: 0, PosHash: 0x77}: 15,
	}
	return r
}

// daemon wraps one running ilprofd subprocess under the shared chaos
// supervisor.
type daemon struct {
	proc *chaos.Proc
	addr string
}

// startDaemon launches the binary and waits for its listen report.
func startDaemon(t *testing.T, bin, dbPath string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-db", dbPath, "-flush-every", "2"}, extra...)
	proc, addr, err := chaos.StartProc(exec.Command(bin, args...), "listening on ", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &daemon{proc: proc, addr: addr}
}

func TestChaosDaemonKillNineMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ilprofd-under-test")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	dbPath := filepath.Join(dir, "fleet.profdb")
	rng := rand.New(rand.NewSource(1))

	var mu sync.Mutex
	acked := map[profdb.RecordKey]int{}
	attempted := map[profdb.RecordKey]int{}

	// hammer fires concurrent ingests until stop closes, counting every
	// attempt and every positive ack.
	hammer := func(addr string, stop <-chan struct{}) *sync.WaitGroup {
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := profdb.NewClient("http://" + addr)
				client.Attempts = 2
				client.Backoff = 5 * time.Millisecond
				client.HTTP.Timeout = 2 * time.Second
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rec := chaosRec("deadbeefcafe0001", (w+i)%3)
					k := profdb.RecordKey{Fingerprint: rec.Fingerprint, Gen: rec.Gen}
					mu.Lock()
					attempted[k] += rec.Runs
					mu.Unlock()
					if _, err := client.PostSnapshot("chaos.c", rec); err == nil {
						mu.Lock()
						acked[k] += rec.Runs
						mu.Unlock()
					}
				}
			}()
		}
		return &wg
	}

	// Three rounds of SIGKILL mid-traffic, sharing one database.
	for round := 0; round < 3; round++ {
		d := startDaemon(t, bin, dbPath)
		stop := make(chan struct{})
		wg := hammer(d.addr, stop)
		time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
		if err := d.proc.Kill9(); err != nil { // SIGKILL: no cleanup, no flush
			t.Fatalf("round %d: kill: %v", round, err)
		}
		close(stop)
		wg.Wait()
		d.proc.Wait()
	}

	// One graceful round: the daemon must recover the kill-torn state,
	// serve traffic, and shut down cleanly on SIGTERM.
	d := startDaemon(t, bin, dbPath)
	stop := make(chan struct{})
	wg := hammer(d.addr, stop)
	time.Sleep(40 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := d.proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.proc.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with %v; stderr:\n%s", err, d.proc.Output())
	}

	// The store must load and hold exactly the durable truth:
	// acked <= recovered <= attempted for every key.
	store, recovery, err := profdb.Open(chaos.OSFS{}, dbPath, "")
	if err != nil {
		t.Fatalf("store failed to load after kill rounds: %v (recovery: %s)", err, recovery)
	}
	total := 0
	mu.Lock()
	defer mu.Unlock()
	for k, want := range acked {
		got := 0
		if r, ok := store.DB().Records[k]; ok {
			got = r.Runs
		}
		total += got
		if got < want {
			t.Errorf("%v: recovered %d run(s), below %d acked — SIGKILL lost acknowledged data", k, got, want)
		}
	}
	for k, r := range store.DB().Records {
		if r.Runs > attempted[k] {
			t.Errorf("%v: recovered %d run(s), above %d attempted — double count", k, r.Runs, attempted[k])
		}
	}
	if total == 0 {
		t.Error("no acked runs recovered at all; the hammer never landed — test inert")
	}
	ackedTotal := 0
	for _, n := range acked {
		ackedTotal += n
	}
	t.Logf("recovered %d run(s); %d acked across %d key(s); final recovery: %s",
		total, ackedTotal, len(store.DB().Records), recovery)
}
