// Package profile defines the execution-profile data the IMPACT-style
// pipeline collects: per-run dynamic counts and the averaged weights that
// become node and arc weights on the call graph. The paper's profiler
// "accumulates the average run-time statistics over many runs"; Merge does
// exactly that.
package profile

import (
	"fmt"
	"sort"
	"strings"
)

// RunStats holds the dynamic counts from one execution of a program.
type RunStats struct {
	// IL is the number of executed intermediate instructions (labels are
	// not instructions).
	IL int64
	// Control is the number of executed control transfers other than
	// call/return: unconditional jumps and conditional branches.
	Control int64
	// Calls is the total number of dynamic calls, including calls to
	// external functions and calls through pointers.
	Calls int64
	// Returns counts function returns (equals Calls for programs that run
	// to completion, modulo exit()).
	Returns int64
	// SiteCounts maps a static call-site id to its dynamic invocation
	// count (arc weights).
	SiteCounts map[int]int64
	// FuncCounts maps a function name to its entry count (node weights).
	FuncCounts map[string]int64
	// PtrTargets maps a pointer call-site id to its resolved-target
	// histogram (target function name -> invocation count). Targets are
	// counted exactly in every profile mode — the devirtualization
	// decision needs true dominance fractions, and a masked or sampled
	// histogram would break the minimal==full byte-identity contract.
	PtrTargets map[int]map[string]int64
	// ExternCalls counts dynamic calls whose callee body is unavailable.
	ExternCalls int64
	// PtrCalls counts dynamic calls made through pointers.
	PtrCalls int64
	// MaxStack is the high-water control-stack usage in bytes.
	MaxStack int64
	// ExitCode is the program's exit status.
	ExitCode int64
	// Truncated is 1 when the run ended with Returns != Calls — an
	// exit()-style termination that unwound no frames. Truncated runs skew
	// averaged arc weights, so merges count them instead of hiding them.
	Truncated int64
	// ProfileEvents is the number of counter-increment events the profiler
	// actually performed during the run — the instrumentation overhead the
	// minimal and sampled profile modes exist to shrink. It is a
	// measurement about the profiler, not the program, so it is excluded
	// from serialized profiles (reconstructed minimal profiles stay
	// byte-identical to full ones).
	ProfileEvents int64
}

// NewRunStats returns an empty, initialized RunStats.
func NewRunStats() *RunStats {
	return &RunStats{
		SiteCounts: make(map[int]int64),
		FuncCounts: make(map[string]int64),
		PtrTargets: make(map[int]map[string]int64),
	}
}

// AddPtrTarget records one resolved pointer-call target at a site.
func (rs *RunStats) AddPtrTarget(site int, target string, n int64) {
	if rs.PtrTargets == nil {
		rs.PtrTargets = make(map[int]map[string]int64)
	}
	m := rs.PtrTargets[site]
	if m == nil {
		m = make(map[string]int64)
		rs.PtrTargets[site] = m
	}
	m[target] += n
}

// Profile is the average of one or more runs: the weighted-call-graph
// inputs for inline expansion.
type Profile struct {
	Runs int
	// Totals across all runs; use the Avg* accessors for per-run values.
	TotalIL      int64
	TotalControl int64
	TotalCalls   int64
	TotalReturns int64
	TotalExtern  int64
	TotalPtr     int64
	// TotalTruncated counts runs that ended with Returns != Calls (exit()
	// or equivalent), which under-report returns relative to calls.
	TotalTruncated int64
	SiteCounts     map[int]int64
	FuncCounts     map[string]int64
	// PtrTargets accumulates per-target counts for pointer call sites
	// (site id -> target function name -> total count across runs). Exact
	// in every profile mode; see RunStats.PtrTargets.
	PtrTargets map[int]map[string]int64
	MaxStack   int64
	// ProfileEvents totals the counter-increment events across runs (see
	// RunStats.ProfileEvents). Not serialized.
	ProfileEvents int64
	// SampleRate is the 1-in-k sampling rate the counts were collected at:
	// 0 for exact profiles (full and minimal modes), k > 0 for sampled
	// profiles whose site weights were rescaled by k on finalize. Carried
	// through serialization and the profile database so consumers can
	// reason about the error bound (each active site under-reports by at
	// most k-1 events per run).
	SampleRate int
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		SiteCounts: make(map[int]int64),
		FuncCounts: make(map[string]int64),
		PtrTargets: make(map[int]map[string]int64),
	}
}

// Add accumulates one run into the profile.
func (p *Profile) Add(rs *RunStats) {
	p.Runs++
	p.TotalIL += rs.IL
	p.TotalControl += rs.Control
	p.TotalCalls += rs.Calls
	p.TotalReturns += rs.Returns
	p.TotalExtern += rs.ExternCalls
	p.TotalPtr += rs.PtrCalls
	p.TotalTruncated += rs.Truncated
	p.ProfileEvents += rs.ProfileEvents
	for id, n := range rs.SiteCounts {
		p.SiteCounts[id] += n
	}
	for f, n := range rs.FuncCounts {
		p.FuncCounts[f] += n
	}
	for site, targets := range rs.PtrTargets {
		for t, n := range targets {
			p.AddPtrTarget(site, t, n)
		}
	}
	if rs.MaxStack > p.MaxStack {
		p.MaxStack = rs.MaxStack
	}
}

// AddPtrTarget accumulates one resolved pointer-call target count.
func (p *Profile) AddPtrTarget(site int, target string, n int64) {
	if p.PtrTargets == nil {
		p.PtrTargets = make(map[int]map[string]int64)
	}
	m := p.PtrTargets[site]
	if m == nil {
		m = make(map[string]int64)
		p.PtrTargets[site] = m
	}
	m[target] += n
}

func (p *Profile) avg(total int64) float64 {
	if p.Runs == 0 {
		return 0
	}
	return float64(total) / float64(p.Runs)
}

// AvgIL is the average dynamic IL count per run.
func (p *Profile) AvgIL() float64 { return p.avg(p.TotalIL) }

// AvgControl is the average dynamic control-transfer count per run.
func (p *Profile) AvgControl() float64 { return p.avg(p.TotalControl) }

// AvgCalls is the average dynamic call count per run.
func (p *Profile) AvgCalls() float64 { return p.avg(p.TotalCalls) }

// SiteWeight returns the averaged invocation count of a call site — the
// arc weight used by the inline expander.
func (p *Profile) SiteWeight(id int) float64 { return p.avg(p.SiteCounts[id]) }

// FuncWeight returns the averaged entry count of a function — the node
// weight used for linearization.
func (p *Profile) FuncWeight(name string) float64 { return p.avg(p.FuncCounts[name]) }

// SiteTargetWeight returns the averaged count of one resolved target at a
// pointer call site.
func (p *Profile) SiteTargetWeight(site int, target string) float64 {
	return p.avg(p.PtrTargets[site][target])
}

// DominantTarget returns the most-frequent resolved target of a pointer
// call site, its total count, and the site's total resolved count. Ties
// break toward the lexically smaller name so the answer is deterministic.
func (p *Profile) DominantTarget(site int) (target string, count, total int64) {
	for t, n := range p.PtrTargets[site] {
		total += n
		if n > count || (n == count && (target == "" || t < target)) {
			target, count = t, n
		}
	}
	return target, count, total
}

// String renders a compact summary.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile: %d run(s), avg IL=%.0f, avg CT=%.0f, avg calls=%.0f (extern %.0f, ptr %.0f)\n",
		p.Runs, p.AvgIL(), p.AvgControl(), p.AvgCalls(), p.avg(p.TotalExtern), p.avg(p.TotalPtr))
	if p.TotalTruncated > 0 {
		fmt.Fprintf(&sb, "  warning: %d of %d run(s) truncated (returns != calls; exit() before unwinding)\n",
			p.TotalTruncated, p.Runs)
	}
	names := make([]string, 0, len(p.FuncCounts))
	for n := range p.FuncCounts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.FuncCounts[names[i]] != p.FuncCounts[names[j]] {
			return p.FuncCounts[names[i]] > p.FuncCounts[names[j]]
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-24s %12.1f\n", n, p.FuncWeight(n))
	}
	return sb.String()
}
