// Command ilcc is the MiniC compiler driver: it compiles source files to
// IL and can dump the IL, the weighted call graph (text or dot), run the
// program, profile it, and apply profile-guided inline expansion.
//
//	ilcc prog.c                      # compile, report sizes
//	ilcc -run prog.c < input         # compile and execute
//	ilcc -dump prog.c                # print the IL
//	ilcc -dot prog.c                 # call graph in Graphviz dot
//	ilcc -inline -run prog.c         # profile on stdin, inline, re-run
//	ilcc -inline -heuristic leaf ... # static baseline policies
//	ilcc -inline -run a.c b.c c.c    # separate compilation + link-time inlining
//	ilcc -tco -run prog.c            # remove self tail recursion first
//	ilcc -inline -profile p.prof ... # use a profile saved by ilprof -o
//	ilcc -inline -profdb p.profdb .. # merged profile from a database file
//	ilcc -inline -profdb http://host:7411 ...  # ... or from a running ilprofd
//	ilcc -inline -partial-inline -maxcallee 60 prog.c  # split oversized callees
//	ilcc -inline -devirt-threshold 0.9 prog.c  # guarded pointer-call devirtualization
//	ilcc -explain-inline prog.c      # per-arc inline decision report (implies -inline)
//	ilcc -inline -inline-trace t.jsonl prog.c  # machine-readable decision trace
//	ilcc -inline -trace phases.json prog.c     # Chrome trace-event phase timings
//
// The decision report and JSONL trace are deterministic: byte-identical
// at any -parallel setting. The Chrome trace carries wall-clock phase
// timings and is the only output that varies run to run.
//
// The simulated file system is populated with -file guest=host pairs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"inlinec"
	"inlinec/internal/inline"
	"inlinec/internal/obs"
	"inlinec/internal/profdb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type fileList []string

func (f *fileList) String() string { return strings.Join(*f, ",") }
func (f *fileList) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilcc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doRun := fs.Bool("run", false, "execute the program (stdin is the program's stdin)")
	dump := fs.Bool("dump", false, "print the IL module")
	dot := fs.Bool("dot", false, "print the call graph in dot format")
	doInline := fs.Bool("inline", false, "profile once and apply inline expansion")
	postOpt := fs.Bool("O", false, "apply post-inline cleanup optimizations")
	tco := fs.Bool("tco", false, "eliminate self tail calls before anything else")
	heuristic := fs.String("heuristic", "profile", "site selection: profile, leaf, or small")
	threshold := fs.Float64("threshold", 10, "arc weight threshold (profile heuristic)")
	sizeLimit := fs.Float64("sizelimit", 1.25, "program size limit factor")
	maxCallee := fs.Int("maxcallee", 0, "per-callee instruction limit (0 = unlimited)")
	partialInline := fs.Bool("partial-inline", false, "expand the hot entry region of callees over -maxcallee, with a guarded fallback call to the original")
	devirtThreshold := fs.Float64("devirt-threshold", 0, "devirtualize pointer-call sites whose dominant profiled target takes at least this fraction of resolved calls (0 = off)")
	stats := fs.Bool("stats", false, "print dynamic statistics after -run")
	profilePath := fs.String("profile", "", "use a saved profile (from ilprof -o) for -inline")
	profdbSrc := fs.String("profdb", "", "use a merged database profile for -inline: a .profdb file or an ilprofd base URL")
	parallel := fs.Int("parallel", 0, "worker count for multi-unit compilation, profiling, and expansion (0 = all cores, 1 = serial); any value yields identical output")
	engine := fs.String("engine", "", "interpreter engine for -run/-inline profiling: bytecode (default) or switch; identical output either way")
	profileMode := fs.String("profile-mode", "", "profile source/instrumentation: full (default), minimal, or sampled select measured instrumentation; measured is an alias for full; predicted synthesizes weights from static features with zero profiling runs; hybrid merges a -profdb snapshot (exact sites measured, moved/dropped/new sites predicted)")
	sampleRate := fs.Int("samplerate", 0, "1-in-k rate for -profile-mode sampled (0 = default rate)")
	explainInline := fs.Bool("explain-inline", false, "print the per-arc inline decision report — every arc with its accept/reject reason (implies -inline)")
	inlineTrace := fs.String("inline-trace", "", "write the inline-decision trace as JSON lines to this file (implies -inline)")
	tracePath := fs.String("trace", "", "write per-phase timings as Chrome trace-event JSON to this file (load in chrome://tracing or Perfetto)")
	var files fileList
	fs.Var(&files, "file", "seed the simulated FS: guestpath=hostpath (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *explainInline || *inlineTrace != "" {
		*doInline = true
	}
	var reg *obs.Registry
	if *tracePath != "" {
		reg = obs.NewRegistry()
		defer func() {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(stderr, "ilcc: -trace: %v\n", err)
				return
			}
			if err := reg.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(stderr, "ilcc: -trace: %v\n", err)
			}
			f.Close()
		}()
	}

	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: ilcc [flags] prog.c [more.c ...]")
		fs.PrintDefaults()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "ilcc: %v\n", err)
		return 1
	}

	srcPath := fs.Arg(0)
	var prog *inlinec.Program
	if fs.NArg() == 1 {
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return fail(err)
		}
		prog, err = inlinec.CompileWithObs(srcPath, string(src), reg)
		if err != nil {
			return fail(err)
		}
	} else {
		// Separate compilation + linking (section 2.1 of the paper):
		// units compile concurrently on the -parallel worker pool, then
		// link. Diagnostics come back in command-line order regardless of
		// which worker found them.
		sources := make([]inlinec.UnitSource, 0, fs.NArg())
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return fail(err)
			}
			sources = append(sources, inlinec.UnitSource{Name: path, Src: string(src)})
		}
		var err error
		prog, err = inlinec.CompileAndLinkObs("a.out", *parallel, reg, sources...)
		if err != nil {
			return fail(err)
		}
	}
	// -profile-mode covers two axes: the instrumentation modes
	// (full/minimal/sampled) flow into the interpreter, while the
	// profile-source modes (measured/predicted/hybrid) select where
	// -inline gets its arc weights. The source modes leave the
	// interpreter on full instrumentation for any run they perform.
	profSource := ""
	switch *profileMode {
	case "measured", "predicted", "hybrid":
		profSource = *profileMode
		*profileMode = ""
	}
	prog.Parallelism = *parallel
	prog.Engine = *engine
	prog.ProfileMode = *profileMode
	prog.SampleRate = *sampleRate

	if *tco {
		n, err := prog.EliminateTailCalls()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "ilcc: rewrote %d self tail call(s)\n", n)
	}

	input := inlinec.Input{Files: make(map[string][]byte)}
	for _, spec := range files {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			return fail(fmt.Errorf("bad -file spec %q (want guest=host)", spec))
		}
		data, err := os.ReadFile(parts[1])
		if err != nil {
			return fail(err)
		}
		input.Files[parts[0]] = data
	}
	if *doRun || *doInline {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return fail(err)
		}
		input.Stdin = data
	}

	if *doInline {
		var prof *inlinec.Profile
		switch {
		case *profdbSrc != "" && *profilePath != "":
			return fail(fmt.Errorf("-profile and -profdb are mutually exclusive"))
		case profSource == "predicted":
			if *profilePath != "" || *profdbSrc != "" {
				return fail(fmt.Errorf("-profile-mode=predicted takes no measured profile; drop -profile/-profdb or use -profile-mode=hybrid"))
			}
			// Zero profiling runs: weights come from static features and
			// the embedded calibrated model alone.
			prof = prog.PredictProfile()
		case profSource == "hybrid":
			if *profdbSrc == "" {
				return fail(fmt.Errorf("-profile-mode=hybrid needs -profdb (a .profdb file or an ilprofd base URL)"))
			}
			var err error
			prof, err = hybridFromDB(prog, *profdbSrc, stderr)
			if err != nil {
				if !strings.HasPrefix(*profdbSrc, "http://") && !strings.HasPrefix(*profdbSrc, "https://") {
					return fail(err)
				}
				// A fleet daemon being down must not fail the compile: the
				// whole point of hybrid is surviving missing measurements,
				// so degrade to pure prediction and keep going.
				fmt.Fprintf(stderr, "ilcc: warning: profile database %s unavailable (%v); falling back to predicted weights\n",
					*profdbSrc, err)
				prof = prog.PredictProfile()
			}
		case *profdbSrc != "":
			var err error
			prof, err = profileFromDB(prog, *profdbSrc, stderr)
			if err != nil {
				if !strings.HasPrefix(*profdbSrc, "http://") && !strings.HasPrefix(*profdbSrc, "https://") {
					return fail(err) // a local file is deterministic config: failing it is a bug to surface
				}
				// A fleet daemon being down must not fail the compile:
				// degrade to in-process profiling and keep going.
				fmt.Fprintf(stderr, "ilcc: warning: profile database %s unavailable (%v); falling back to in-process profiling\n",
					*profdbSrc, err)
				prof, err = prog.ProfileInputs(input)
				if err != nil {
					return fail(fmt.Errorf("profiling: %w", err))
				}
			}
		case *profilePath != "":
			f, err := os.Open(*profilePath)
			if err != nil {
				return fail(err)
			}
			prof, err = inlinec.ReadProfile(f)
			f.Close()
			if err != nil {
				return fail(err)
			}
		default:
			var err error
			prof, err = prog.ProfileInputs(input)
			if err != nil {
				return fail(fmt.Errorf("profiling: %w", err))
			}
		}
		params := inlinec.DefaultParams()
		params.WeightThreshold = *threshold
		params.SizeLimitFactor = *sizeLimit
		params.MaxCalleeSize = *maxCallee
		params.PartialInline = *partialInline
		params.DevirtThreshold = *devirtThreshold
		if *devirtThreshold < 0 || *devirtThreshold > 1 {
			return fail(fmt.Errorf("-devirt-threshold %g outside [0, 1]", *devirtThreshold))
		}
		switch *heuristic {
		case "profile":
		case "leaf":
			params.Heuristic = inline.HeuristicLeaf
		case "small":
			params.Heuristic = inline.HeuristicSmall
		default:
			return fail(fmt.Errorf("unknown heuristic %q", *heuristic))
		}
		res, err := prog.Inline(prof, params)
		if err != nil {
			return fail(err)
		}
		if *postOpt {
			if err := prog.Optimize(); err != nil {
				return fail(err)
			}
		}
		if *inlineTrace != "" {
			f, err := os.Create(*inlineTrace)
			if err != nil {
				return fail(err)
			}
			err = obs.WriteInlineTraceJSONL(f, res.Trace)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fail(fmt.Errorf("-inline-trace: %w", err))
			}
		}
		if *explainInline {
			fmt.Fprint(stdout, obs.FormatInlineReport(res.Order, res.Trace))
		}
		fmt.Fprintf(stderr, "%s", res)
	}

	switch {
	case *dump:
		fmt.Fprint(stdout, prog.Module.String())
	case *dot:
		prof, err := prog.ProfileInputs(input)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, prog.CallGraph(prof).Dot())
	case *doRun:
		out, err := prog.Run(input)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out.Stdout)
		fmt.Fprint(stderr, out.Stderr)
		if *stats {
			fmt.Fprintf(stderr, "IL=%d control=%d calls=%d (extern %d, ptr %d) maxstack=%dB\n",
				out.Stats.IL, out.Stats.Control, out.Stats.Calls,
				out.Stats.ExternCalls, out.Stats.PtrCalls, out.Stats.MaxStack)
		}
		return int(out.ExitCode)
	default:
		fmt.Fprintf(stdout, "%s: %d functions, %d IL instructions\n",
			srcPath, len(prog.Module.Funcs), prog.Module.TotalCodeSize())
	}
	return 0
}

// profileFromDB obtains the merged database profile for the compiled
// program — from a local .profdb file, or over HTTP from a running
// ilprofd when src is a base URL. Either way the stable-key snapshot is
// resolved against the current module and any staleness is reported to
// stderr before the weights feed the call graph.
func profileFromDB(prog *inlinec.Program, src string, stderr io.Writer) (*inlinec.Profile, error) {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		db, err := profdb.ReadDBFile(src, "")
		if err != nil {
			return nil, err
		}
		prof, report := prog.ProfileFromDB(db, profdb.DefaultMergeParams())
		if prof.Runs == 0 {
			return nil, fmt.Errorf("%s holds no usable data for fingerprint %s", src, prog.Fingerprint())
		}
		if !report.Clean() {
			fmt.Fprintf(stderr, "%s\n", report)
		}
		return prof, nil
	}

	client := profdb.NewClient(src)
	client.Warn = stderr
	client.Obs = prog.Obs
	_, rec, err := client.FetchProfile(prog.Fingerprint(), nil)
	if err != nil {
		return nil, err
	}
	prof, stats := rec.Resolve(profdb.ModuleKeys(prog.Module))
	if prof.Runs == 0 {
		return nil, fmt.Errorf("%s served an empty profile", src)
	}
	if stats.MovedSites > 0 || stats.DroppedSites > 0 || stats.DroppedFuncs > 0 {
		report := &profdb.Report{Resolve: *stats}
		fmt.Fprintf(stderr, "%s\n", report)
	}
	return prof, nil
}

// hybridFromDB obtains the hybrid (measured-where-exact, predicted
// elsewhere) profile from a database file or a running ilprofd. Unlike
// the measured path, an empty or fully stale database is not an error:
// prediction fills whatever measurement cannot cover, and only the
// staleness report tells the difference.
func hybridFromDB(prog *inlinec.Program, src string, stderr io.Writer) (*inlinec.Profile, error) {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		db, err := profdb.ReadDBFile(src, "")
		if err != nil {
			return nil, err
		}
		prof, report := prog.HybridProfileFromDB(db, profdb.DefaultMergeParams())
		if !report.Clean() {
			fmt.Fprintf(stderr, "%s\n", report)
		}
		return prof, nil
	}
	client := profdb.NewClient(src)
	client.Warn = stderr
	client.Obs = prog.Obs
	_, rec, err := client.FetchProfile(prog.Fingerprint(), nil)
	if err != nil {
		return nil, err
	}
	prof, stats := prog.HybridProfileFromRecord(rec)
	if stats.MovedSites > 0 || stats.DroppedSites > 0 || stats.DroppedFuncs > 0 {
		report := &profdb.Report{Resolve: *stats}
		fmt.Fprintf(stderr, "%s\n", report)
	}
	return prof, nil
}
