// Package token defines the lexical tokens of MiniC, the C subset compiled
// by this reproduction of the IMPACT-I inline function expander, along with
// source positions used for diagnostics throughout the front end.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The set mirrors the C constructs MiniC supports: the usual
// operators, a small keyword set, and the literal forms needed by the
// benchmark programs (decimal/hex/char/string).
const (
	EOF Kind = iota
	Illegal

	// Literals and identifiers.
	Ident  // main
	Int    // 42, 0x2a, 'a'
	String // "abc"

	// Punctuation.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	Colon    // :
	Question // ?
	Ellipsis // ...

	// Operators.
	Assign     // =
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Bang       // !
	Shl        // <<
	Shr        // >>
	Lt         // <
	Gt         // >
	Le         // <=
	Ge         // >=
	EqEq       // ==
	NotEq      // !=
	AndAnd     // &&
	OrOr       // ||
	PlusPlus   // ++
	MinusMinus // --
	Arrow      // ->
	Dot        // .
	PlusEq     // +=
	MinusEq    // -=
	StarEq     // *=
	SlashEq    // /=
	PercentEq  // %=
	AmpEq      // &=
	PipeEq     // |=
	CaretEq    // ^=
	ShlEq      // <<=
	ShrEq      // >>=

	// Keywords.
	KwInt
	KwChar
	KwLong
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwStruct
	KwSwitch
	KwCase
	KwDefault
	KwGoto
	KwSizeof
	KwExtern
	KwStatic
	KwTypedef
	KwEnum
	KwConst
	KwUnsigned
)

var kindNames = map[Kind]string{
	EOF:        "EOF",
	Illegal:    "ILLEGAL",
	Ident:      "identifier",
	Int:        "integer",
	String:     "string",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBracket:   "[",
	RBracket:   "]",
	Comma:      ",",
	Semi:       ";",
	Colon:      ":",
	Question:   "?",
	Ellipsis:   "...",
	Assign:     "=",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Amp:        "&",
	Pipe:       "|",
	Caret:      "^",
	Tilde:      "~",
	Bang:       "!",
	Shl:        "<<",
	Shr:        ">>",
	Lt:         "<",
	Gt:         ">",
	Le:         "<=",
	Ge:         ">=",
	EqEq:       "==",
	NotEq:      "!=",
	AndAnd:     "&&",
	OrOr:       "||",
	PlusPlus:   "++",
	MinusMinus: "--",
	Arrow:      "->",
	Dot:        ".",
	PlusEq:     "+=",
	MinusEq:    "-=",
	StarEq:     "*=",
	SlashEq:    "/=",
	PercentEq:  "%=",
	AmpEq:      "&=",
	PipeEq:     "|=",
	CaretEq:    "^=",
	ShlEq:      "<<=",
	ShrEq:      ">>=",
	KwInt:      "int",
	KwChar:     "char",
	KwLong:     "long",
	KwVoid:     "void",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwDo:       "do",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwStruct:   "struct",
	KwSwitch:   "switch",
	KwCase:     "case",
	KwDefault:  "default",
	KwGoto:     "goto",
	KwSizeof:   "sizeof",
	KwExtern:   "extern",
	KwStatic:   "static",
	KwTypedef:  "typedef",
	KwEnum:     "enum",
	KwConst:    "const",
	KwUnsigned: "unsigned",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds. The lexer consults it
// after scanning an identifier.
var Keywords = map[string]Kind{
	"int":      KwInt,
	"char":     KwChar,
	"long":     KwLong,
	"void":     KwVoid,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"do":       KwDo,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"struct":   KwStruct,
	"switch":   KwSwitch,
	"case":     KwCase,
	"default":  KwDefault,
	"goto":     KwGoto,
	"sizeof":   KwSizeof,
	"extern":   KwExtern,
	"static":   KwStatic,
	"typedef":  KwTypedef,
	"enum":     KwEnum,
	"const":    KwConst,
	"unsigned": KwUnsigned,
}

// Pos is a source position: 1-based line and column within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source text and position.
// Val carries the decoded integer value for Int tokens; Str carries the
// decoded body for String tokens.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
	Val  int64
	Str  string
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, String:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether the kind is an assignment operator
// (= += -= *= /= %= &= |= ^= <<= >>=).
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
		AmpEq, PipeEq, CaretEq, ShlEq, ShrEq:
		return true
	}
	return false
}

// BaseOp returns the underlying binary operator for a compound assignment
// kind, e.g. PlusEq → Plus. It returns Illegal for plain Assign and for
// kinds that are not assignment operators.
func (k Kind) BaseOp() Kind {
	switch k {
	case PlusEq:
		return Plus
	case MinusEq:
		return Minus
	case StarEq:
		return Star
	case SlashEq:
		return Slash
	case PercentEq:
		return Percent
	case AmpEq:
		return Amp
	case PipeEq:
		return Pipe
	case CaretEq:
		return Caret
	case ShlEq:
		return Shl
	case ShrEq:
		return Shr
	}
	return Illegal
}
