package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"inlinec"
	"inlinec/internal/inline"
)

// AblationReport runs the design-choice studies DESIGN.md calls out —
// weight-threshold sweep, size-limit sweep, static-heuristic comparison,
// and the linearization effect — and renders them as tables. These are
// the same measurements the testing.B ablation benchmarks expose as
// metrics, packaged for `ilbench -ablation`.
func AblationReport(cfg Config) (string, error) {
	var sb strings.Builder

	if err := thresholdSweep(&sb, cfg); err != nil {
		return sb.String(), err
	}
	sb.WriteByte('\n')
	if err := sizeLimitSweep(&sb, cfg); err != nil {
		return sb.String(), err
	}
	sb.WriteByte('\n')
	if err := heuristicComparison(&sb, cfg); err != nil {
		return sb.String(), err
	}
	sb.WriteByte('\n')
	if err := linearizationEffect(&sb, cfg); err != nil {
		return sb.String(), err
	}
	sb.WriteByte('\n')
	if err := representativeness(&sb, cfg); err != nil {
		return sb.String(), err
	}
	return sb.String(), nil
}

func thresholdSweep(sb *strings.Builder, cfg Config) error {
	sb.WriteString("Ablation A. Weight-threshold sweep (cccp).\n")
	w := tabwriter.NewWriter(sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "threshold\texpanded\tcall dec\tcode inc")
	for _, th := range []float64{0, 1, 10, 100, 1000, 10000} {
		c := cfg
		c.Inline.WeightThreshold = th
		c.Classify.WeightThreshold = th
		r, err := RunOne(Get("cccp"), c)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0f\t%d\t%.1f%%\t%.1f%%\n", th, r.Expansions, 100*r.CallDec, 100*r.CodeInc)
	}
	w.Flush()
	return nil
}

func sizeLimitSweep(sb *strings.Builder, cfg Config) error {
	sb.WriteString("Ablation B. Program-size-limit sweep (lex).\n")
	w := tabwriter.NewWriter(sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "cap\texpanded\tcall dec\tcode inc")
	for _, factor := range []float64{1.05, 1.1, 1.25, 1.5, 2.0, 3.0} {
		c := cfg
		c.Inline.SizeLimitFactor = factor
		r, err := RunOne(Get("lex"), c)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2fx\t%d\t%.1f%%\t%.1f%%\n", factor, r.Expansions, 100*r.CallDec, 100*r.CodeInc)
	}
	w.Flush()
	return nil
}

func heuristicComparison(sb *strings.Builder, cfg Config) error {
	sb.WriteString("Ablation C. Profile guidance vs static policies (compress).\n")
	w := tabwriter.NewWriter(sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "policy\texpanded\tcall dec\tcode inc")
	for _, h := range []inline.Heuristic{
		inline.HeuristicProfile, inline.HeuristicLeaf, inline.HeuristicSmall,
	} {
		c := cfg
		c.Inline.Heuristic = h
		r, err := RunOne(Get("compress"), c)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\n", h, r.Expansions, 100*r.CallDec, 100*r.CodeInc)
	}
	w.Flush()
	return nil
}

func linearizationEffect(sb *strings.Builder, cfg Config) error {
	sb.WriteString("Ablation D. Linearization vs fixed-point expansion (compress).\n")
	w := tabwriter.NewWriter(sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tphysical expansions\tcall dec\tcode inc")
	for _, noOrder := range []bool{false, true} {
		bm := Get("compress")
		p, err := bm.Compile()
		if err != nil {
			return err
		}
		inputs := bm.Inputs
		if cfg.MaxRuns > 0 && len(inputs) > cfg.MaxRuns {
			inputs = inputs[:cfg.MaxRuns]
		}
		prof, err := p.ProfileInputs(inputs...)
		if err != nil {
			return err
		}
		params := cfg.Inline
		params.NoLinearOrder = noOrder
		r, err := p.Inline(prof, params)
		if err != nil {
			return err
		}
		after, err := p.ProfileInputs(inputs...)
		if err != nil {
			return err
		}
		dec := 0.0
		if prof.AvgCalls() > 0 {
			dec = (prof.AvgCalls() - after.AvgCalls()) / prof.AvgCalls()
		}
		mode := "linear order"
		if noOrder {
			mode = "fixed point"
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\n", mode, r.NumExpansions, 100*dec, 100*r.CodeIncrease())
	}
	w.Flush()
	return nil
}

// representativeness measures the paper's section 1.2 caveat ("it is
// critical that the inputs used for executing the equivalent C program
// are representative"): profile on the even-indexed inputs, inline with
// that profile, then measure the call decrease separately on the training
// inputs and on the held-out odd-indexed inputs.
func representativeness(sb *strings.Builder, cfg Config) error {
	sb.WriteString("Ablation E. Profile representativeness (train on even inputs, test on odd).\n")
	w := tabwriter.NewWriter(sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tcall dec (train)\tcall dec (held out)")
	for _, name := range []string{"cccp", "compress", "grep", "lex", "yacc"} {
		bm := Get(name)
		var train, test []inlinec.Input
		for i, in := range bm.Inputs {
			if i%2 == 0 {
				train = append(train, in)
			} else {
				test = append(test, in)
			}
		}
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		p, err := bm.Compile()
		if err != nil {
			return err
		}
		trainBefore, err := p.ProfileInputs(train...)
		if err != nil {
			return err
		}
		testBefore, err := p.ProfileInputs(test...)
		if err != nil {
			return err
		}
		if _, err := p.Inline(trainBefore, cfg.Inline); err != nil {
			return err
		}
		trainAfter, err := p.ProfileInputs(train...)
		if err != nil {
			return err
		}
		testAfter, err := p.ProfileInputs(test...)
		if err != nil {
			return err
		}
		dec := func(before, after float64) float64 {
			if before <= 0 {
				return 0
			}
			return 100 * (before - after) / before
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\n", name,
			dec(trainBefore.AvgCalls(), trainAfter.AvgCalls()),
			dec(testBefore.AvgCalls(), testAfter.AvgCalls()))
	}
	w.Flush()
	return nil
}

// ICacheReport sweeps the instruction-cache simulation across the given
// benchmarks and cache sizes (direct-mapped, 16-byte lines), printing
// before/after miss rates — the conclusion-section extension.
func ICacheReport(names []string, sizes []int, cfg Config) (string, error) {
	var sb strings.Builder
	sb.WriteString("Instruction-cache effect (direct-mapped, 16-byte lines).\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "benchmark")
	for _, s := range sizes {
		fmt.Fprintf(w, "\t%dB", s)
	}
	fmt.Fprintln(w)
	for _, name := range names {
		bm := Get(name)
		if bm == nil {
			return sb.String(), fmt.Errorf("unknown benchmark %q", name)
		}
		p, err := bm.Compile()
		if err != nil {
			return sb.String(), err
		}
		prof, err := p.ProfileInputs(bm.Inputs[0])
		if err != nil {
			return sb.String(), err
		}
		if _, err := p.Inline(prof, cfg.Inline); err != nil {
			return sb.String(), err
		}
		fmt.Fprintf(w, "%s", name)
		for _, size := range sizes {
			c := inlinec.ICacheConfig{Size: size, LineSize: 16, Assoc: 1}
			before, err := p.SimulateICacheOriginal(bm.Inputs[0], c)
			if err != nil {
				return sb.String(), err
			}
			after, err := p.SimulateICache(bm.Inputs[0], c)
			if err != nil {
				return sb.String(), err
			}
			fmt.Fprintf(w, "\t%.2f→%.2f%%", 100*before.MissRate(), 100*after.MissRate())
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String(), nil
}
