package opt

import (
	"testing"

	"inlinec/internal/interp"
	"inlinec/internal/ir"
)

func runStats(t *testing.T, mod *ir.Module) (string, *interp.Machine, int64, int64) {
	t.Helper()
	m, err := interp.NewMachine(mod, interp.NewEnv(), interp.Options{})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Env.Stdout.String(), m, st.Calls, st.MaxStack
}

func TestTailCallEliminateCountdown(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int countdown(int n, int acc) {
    if (n <= 0) return acc;
    return countdown(n - 1, acc + n);
}
int main() {
    printf("%d\n", countdown(1000, 0));
    return 0;
}
`
	mod := compile(t, src)
	wantOut, _, callsBefore, stackBefore := runStats(t, mod)

	n := TailCallEliminate(mod)
	if n != 1 {
		t.Fatalf("rewrote %d sites, want 1", n)
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	gotOut, _, callsAfter, stackAfter := runStats(t, mod)
	if gotOut != wantOut {
		t.Fatalf("output changed: %q -> %q", wantOut, gotOut)
	}
	if callsAfter >= callsBefore {
		t.Errorf("calls %d -> %d; recursion not flattened", callsBefore, callsAfter)
	}
	if stackAfter >= stackBefore {
		t.Errorf("max stack %d -> %d; frames not reused", stackBefore, stackAfter)
	}
	// 1000 recursive calls collapse to the single outer call.
	if callsAfter > callsBefore/100 {
		t.Errorf("too many calls remain: %d", callsAfter)
	}
}

func TestTailCallArgumentsBufferedInParallel(t *testing.T) {
	// The classic swap hazard: gcd(b, a % b) reads both current params
	// while computing the new ones.
	src := `
extern int printf(char *fmt, ...);
int gcd(int a, int b) {
    if (b == 0) return a;
    return gcd(b, a % b);
}
int main() {
    printf("%d %d %d\n", gcd(48, 18), gcd(17, 5), gcd(100000, 99999));
    return 0;
}
`
	mod := compile(t, src)
	want, _, _, _ := runStats(t, mod)
	if n := TailCallEliminate(mod); n != 1 {
		t.Fatalf("rewrote %d sites, want 1", n)
	}
	got, _, _, _ := runStats(t, mod)
	if got != want {
		t.Fatalf("parallel-assignment hazard: %q -> %q", want, got)
	}
	if want != "6 1 1\n" {
		t.Fatalf("baseline wrong: %q", want)
	}
}

func TestTailCallLeavesNonTailRecursionAlone(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1); /* NOT a tail call: multiply afterwards */
}
int main() { printf("%d\n", fact(10)); return 0; }
`
	mod := compile(t, src)
	want, _, callsBefore, _ := runStats(t, mod)
	if n := TailCallEliminate(mod); n != 0 {
		t.Fatalf("rewrote %d sites in non-tail recursion", n)
	}
	got, _, callsAfter, _ := runStats(t, mod)
	if got != want || callsAfter != callsBefore {
		t.Fatalf("non-tail function disturbed")
	}
}

func TestTailCallDeepRecursionNoOverflow(t *testing.T) {
	// Without the rewrite this depth overflows a small stack; with it the
	// function runs in constant space.
	src := `
extern int printf(char *fmt, ...);
int burn(int n, int acc) {
    int pad[64];
    pad[0] = n;
    if (n <= 0) return acc;
    return burn(n - 1, acc + pad[0]);
}
int main() { printf("%d\n", burn(100000, 0)); return 0; }
`
	mod := compile(t, src)
	TailCallEliminate(mod)
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m, err := interp.NewMachine(mod, interp.NewEnv(), interp.Options{StackSize: 64 << 10})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run with 64 KiB stack: %v", err)
	}
	if got := m.Env.Stdout.String(); got != "5000050000\n" {
		t.Errorf("output = %q", got)
	}
}

func TestTailCallMutualRecursionUntouched(t *testing.T) {
	// Only self tail calls are rewritten; mutual recursion is left as is.
	src := `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main() { return even(10); }
`
	mod := compile(t, src)
	if n := TailCallEliminate(mod); n != 0 {
		t.Errorf("mutual recursion rewritten (%d sites)", n)
	}
}
