package profile

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, p *Profile) *Profile {
	t.Helper()
	var sb strings.Builder
	if _, err := p.WriteTo(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	q, err := ReadProfile(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v\nserialized:\n%s", err, sb.String())
	}
	return q
}

func TestSerializeRoundTrip(t *testing.T) {
	p := NewProfile()
	p.Add(sample(1000, 40, map[int]int64{1: 30, 7: 10}, map[string]int64{"f": 30, "main": 1}))
	p.Add(sample(3000, 60, map[int]int64{1: 50, 9: 10}, map[string]int64{"f": 50, "main": 1}))
	q := roundTrip(t, p)

	if q.Runs != p.Runs || q.TotalIL != p.TotalIL || q.TotalCalls != p.TotalCalls {
		t.Errorf("scalars differ: %+v vs %+v", q, p)
	}
	if q.AvgIL() != p.AvgIL() {
		t.Errorf("AvgIL %v != %v", q.AvgIL(), p.AvgIL())
	}
	for id := range p.SiteCounts {
		if q.SiteWeight(id) != p.SiteWeight(id) {
			t.Errorf("site %d weight %v != %v", id, q.SiteWeight(id), p.SiteWeight(id))
		}
	}
	for name := range p.FuncCounts {
		if q.FuncWeight(name) != p.FuncWeight(name) {
			t.Errorf("func %s weight differs", name)
		}
	}
}

func TestSerializeDeterministic(t *testing.T) {
	p := NewProfile()
	p.Add(sample(10, 5, map[int]int64{3: 1, 1: 2, 2: 3}, map[string]int64{"z": 1, "a": 2}))
	var s1, s2 strings.Builder
	p.WriteTo(&s1)
	p.WriteTo(&s2)
	if s1.String() != s2.String() {
		t.Error("serialization not deterministic")
	}
	// Sorted sections.
	out := s1.String()
	if strings.Index(out, "func a") > strings.Index(out, "func z") {
		t.Error("func entries not sorted")
	}
	if strings.Index(out, "site 1") > strings.Index(out, "site 3") {
		t.Error("site entries not sorted")
	}
}

func TestReadProfileErrors(t *testing.T) {
	cases := []string{
		"",
		"WRONG 1\nruns 1\n",
		"ILPROF 1\nruns x\n",
		"ILPROF 1\nruns 1\nfunc onlytwo\n",
		"ILPROF 1\nruns 1\nsite 1\n",
		"ILPROF 1\nruns 1\nmystery 4\n",
		"ILPROF 1\nil 5\n", // missing runs
	}
	for _, src := range cases {
		if _, err := ReadProfile(strings.NewReader(src)); err == nil {
			t.Errorf("ReadProfile(%q): expected error", src)
		}
	}
}

func TestReadProfileToleratesCommentsAndBlanks(t *testing.T) {
	src := "ILPROF 1\n# a comment\n\nruns 2\nil 100\n"
	p, err := ReadProfile(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if p.Runs != 2 || p.TotalIL != 100 {
		t.Errorf("parsed %+v", p)
	}
}
