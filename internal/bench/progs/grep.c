/* grep - pattern search over stdin, after the UNIX grep benchmark.
 * Implements the classic K&R regular-expression matcher: literal
 * characters, '.', '*' closure, '^' anchors, '$' end anchor, and
 * [...] character classes. The pattern comes from the file "pattern".
 * match/matchhere/matchstar/matchclass recurse per input character,
 * giving the dense call profile the paper's grep shows (99% of dynamic
 * calls eliminated after inlining). */

extern int getchar();
extern int open(char *path, int mode);
extern int close(int fd);
extern int getc(int fd);
extern int read(int fd, char *buf, int n);
extern int printf(char *fmt, ...);

enum { MAXLINE = 512, MAXPAT = 128, GRBUF = 2048, MAXPATS = 16 };

char pattern[MAXPAT];

/* -f mode: several patterns, a line matches if any does (cold) */
char patterns_buf[MAXPATS][MAXPAT];
int npatterns;
int pattern_hits[MAXPATS];
int matched_lines;
int total_lines;

/* options (cold: read once from the opts file) */
int opt_count_only; /* -c: print only the match count */
int opt_invert;     /* -v: print non-matching lines */
int opt_number;     /* -n: prefix line numbers */
int opt_stats;      /* -s: line-length statistics (cold) */
int opt_before;     /* -B: print one line of leading context (cold) */
int opt_lint;       /* -L: validate the pattern before matching (cold) */

int len_hist[8];    /* matched-line lengths, bucketed by 16 */

/* one-line context ring for -B */
char prev_line[MAXLINE];
int have_prev;
int prev_printed;

/* ---- buffered stdin ---- */

char grbuf[GRBUF];
int grlen;
int grpos;

int in_byte() {
    if (grpos >= grlen) {
        grlen = read(0, grbuf, GRBUF);
        grpos = 0;
        if (grlen <= 0) return -1;
    }
    return grbuf[grpos++];
}

int matchhere(char *pat, char *text);

/* matchclass: does c belong to the class starting at pat[0]=='['?
 * Returns the index just past ']' via *advance, 1/0 match via result. */
int class_end(char *pat) {
    int i;
    i = 1;
    if (pat[i] == '^') i++;
    if (pat[i] == ']') i++;
    while (pat[i] && pat[i] != ']') i++;
    return i;
}

int in_class(char *pat, int c) {
    int i, negate, hit, end;
    negate = 0;
    i = 1;
    if (pat[i] == '^') { negate = 1; i++; }
    end = class_end(pat);
    hit = 0;
    while (i < end) {
        if (pat[i + 1] == '-' && i + 2 < end) {
            if (c >= pat[i] && c <= pat[i + 2]) hit = 1;
            i += 3;
        } else {
            if (c == pat[i]) hit = 1;
            i++;
        }
    }
    if (negate) return !hit;
    return hit;
}

/* single-element match: literal, '.', or class */
int matchone(char *pat, int c) {
    if (c == '\0') return 0;
    if (pat[0] == '.') return 1;
    if (pat[0] == '[') return in_class(pat, c);
    return pat[0] == c;
}

/* length of one pattern element */
int elemlen(char *pat) {
    if (pat[0] == '[') return class_end(pat) + 1;
    return 1;
}

/* matchstar: e* then rest of pattern */
int matchstar(char *elem, char *rest, char *text) {
    do {
        if (matchhere(rest, text)) return 1;
    } while (*text && matchone(elem, *text++));
    return 0;
}

int matchhere(char *pat, char *text) {
    int n;
    if (pat[0] == '\0') return 1;
    n = elemlen(pat);
    if (pat[n] == '*') return matchstar(pat, pat + n + 1, text);
    if (pat[0] == '$' && pat[1] == '\0') return *text == '\0';
    if (matchone(pat, *text)) return matchhere(pat + n, text + 1);
    return 0;
}

int match(char *pat, char *text) {
    if (pat[0] == '^') return matchhere(pat + 1, text);
    do {
        if (matchhere(pat, text)) return 1;
    } while (*text++);
    return 0;
}

int read_line(char *buf, int max) {
    int c, n;
    n = 0;
    for (;;) {
        c = in_byte();
        if (c == -1) {
            if (n == 0) return -1;
            break;
        }
        if (c == '\n') break;
        if (n < max - 1) buf[n++] = c;
    }
    buf[n] = '\0';
    return n;
}

void emit_line(char *s) {
    if (opt_count_only) return;
    if (opt_number) printf("%d:%s\n", total_lines, s);
    else printf("%s\n", s);
}

void load_options() {
    char buf[16];
    int fd, n, i;
    fd = open("opts", 0);
    if (fd < 0) return;
    n = read(fd, buf, 15);
    close(fd);
    for (i = 0; i < n; i++) {
        if (buf[i] == 'c') opt_count_only = 1;
        if (buf[i] == 'v') opt_invert = 1;
        if (buf[i] == 'n') opt_number = 1;
        if (buf[i] == 's') opt_stats = 1;
        if (buf[i] == 'B') opt_before = 1;
        if (buf[i] == 'L') opt_lint = 1;
    }
}

/* ---- cold: -B leading-context support ---- */

void remember_line(char *s) {
    int i;
    for (i = 0; s[i] && i < MAXLINE - 1; i++) prev_line[i] = s[i];
    prev_line[i] = '\0';
    have_prev = 1;
    prev_printed = 0;
}

void emit_context() {
    if (!have_prev || prev_printed) return;
    printf("-%s\n", prev_line);
    prev_printed = 1;
}

/* ---- cold: -L pattern lint — the validation a real grep does while
 * compiling the expression ---- */

int lint_class_ok(char *pat, int i) {
    int j;
    j = i + 1;
    if (pat[j] == '^') j++;
    if (pat[j] == ']') j++;
    while (pat[j] && pat[j] != ']') j++;
    return pat[j] == ']';
}

int lint_star_position(char *pat) {
    if (pat[0] == '*') return 0;
    return 1;
}

int lint_dollar_position(char *pat) {
    int i;
    for (i = 0; pat[i]; i++) {
        if (pat[i] == '$' && pat[i + 1] != '\0') return 0;
    }
    return 1;
}

int lint_pattern(char *pat) {
    int i, problems;
    problems = 0;
    if (!lint_star_position(pat)) {
        printf("grep: pattern starts with *\n");
        problems++;
    }
    if (!lint_dollar_position(pat)) {
        printf("grep: $ in mid-pattern matches literally\n");
    }
    for (i = 0; pat[i]; i++) {
        if (pat[i] == '[' && !lint_class_ok(pat, i)) {
            printf("grep: unterminated class at %d\n", i);
            problems++;
        }
        if (pat[i] == '*' && pat[i + 1] == '*') {
            printf("grep: doubled * at %d\n", i);
            problems++;
        }
    }
    return problems == 0;
}

/* ---- cold: matched-line length statistics (-s) ---- */

int line_length(char *s) {
    int n;
    n = 0;
    while (s[n]) n++;
    return n;
}

void note_match(char *s) {
    int b;
    b = line_length(s) / 16;
    if (b > 7) b = 7;
    len_hist[b]++;
}

void print_match_stats() {
    int i;
    printf("grep: matched-line lengths:\n");
    for (i = 0; i < 8; i++) {
        if (len_hist[i] > 0)
            printf("  %3d..%3d: %d\n", i * 16, i * 16 + 15, len_hist[i]);
    }
}

int load_pattern() {
    int fd, c, n;
    fd = open("pattern", 0);
    if (fd < 0) return 0;
    n = 0;
    while ((c = getc(fd)) != -1 && c != '\n') {
        if (n < MAXPAT - 1) pattern[n++] = c;
    }
    pattern[n] = '\0';
    close(fd);
    return n;
}

/* ---- cold: -f multi-pattern mode ---- */

int load_pattern_file() {
    int fd, c, n;
    fd = open("patterns", 0);
    if (fd < 0) return 0;
    npatterns = 0;
    n = 0;
    for (;;) {
        c = getc(fd);
        if (c == -1 || c == '\n') {
            if (n > 0 && npatterns < MAXPATS) {
                patterns_buf[npatterns][n] = '\0';
                npatterns++;
            }
            n = 0;
            if (c == -1) break;
            continue;
        }
        if (n < MAXPAT - 1 && npatterns < MAXPATS) {
            patterns_buf[npatterns][n++] = c;
        }
    }
    close(fd);
    return npatterns;
}

int match_any(char *text) {
    int k;
    for (k = 0; k < npatterns; k++) {
        if (match(patterns_buf[k], text)) {
            pattern_hits[k]++;
            return 1;
        }
    }
    return 0;
}

void report_pattern_hits() {
    int k;
    for (k = 0; k < npatterns; k++) {
        printf("  pattern %d (%s): %d\n", k, patterns_buf[k], pattern_hits[k]);
    }
}

int main() {
    char line[MAXLINE];
    int hit;
    matched_lines = 0;
    total_lines = 0;
    grlen = 0;
    grpos = 0;
    opt_count_only = 0;
    opt_invert = 0;
    opt_number = 0;
    opt_stats = 0;
    npatterns = 0;
    have_prev = 0;
    prev_printed = 0;
    load_options();
    load_pattern_file();
    if (npatterns == 0 && load_pattern() == 0) { printf("grep: no pattern\n"); return 2; }
    if (opt_lint && !lint_pattern(pattern)) return 2;
    while (read_line(line, MAXLINE) >= 0) {
        total_lines++;
        if (npatterns > 0) hit = match_any(line);
        else hit = match(pattern, line);
        if (opt_invert) hit = !hit;
        if (hit) {
            matched_lines++;
            if (opt_stats) note_match(line);
            if (opt_before) emit_context();
            emit_line(line);
        }
        if (opt_before) remember_line(line);
    }
    if (npatterns > 0) report_pattern_hits();
    if (opt_stats) print_match_stats();
    printf("grep: %d/%d lines matched\n", matched_lines, total_lines);
    if (matched_lines == 0) return 1;
    return 0;
}
