package interp

import (
	"reflect"
	"testing"

	"inlinec/internal/irgen"
	"inlinec/internal/parser"
	"inlinec/internal/sema"
)

// dispatchSrc exercises every counter class in one program: direct
// calls, an extern, and a pointer site with a skewed target split — the
// shape whose per-target histograms must stay exact in every mode.
const dispatchSrc = `
extern int printf(char *fmt, ...);
int twice(int x) { return x + x; }
int thrice(int x) { return x * 3; }
int pick(int i) {
    int (*fp)(int);
    if ((i & 3) != 0) fp = twice; else fp = thrice;
    return fp(i);
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 64; i++) s += pick(i) & 0xffff;
    printf("%d\n", s);
    return 0;
}
`

// runWith executes dispatchSrc under one engine/mode pair on a fresh
// machine and returns the observable results.
func runWith(t *testing.T, engine, mode string, rate int) (string, *RunStatsView) {
	t.Helper()
	f, err := parser.Parse("t.c", dispatchSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	m, err := NewMachine(mod, NewEnv(), Options{Engine: engine, ProfileMode: mode, SampleRate: rate})
	if err != nil {
		t.Fatalf("machine(%s,%s): %v", engine, mode, err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run(%s,%s): %v", engine, mode, err)
	}
	return m.Env.Stdout.String(), &RunStatsView{
		SiteCounts: st.SiteCounts,
		FuncCounts: st.FuncCounts,
		PtrTargets: st.PtrTargets,
		Calls:      st.Calls,
		PtrCalls:   st.PtrCalls,
	}
}

// RunStatsView is the cross-engine comparison slice of RunStats.
type RunStatsView struct {
	SiteCounts map[int]int64
	FuncCounts map[string]int64
	PtrTargets map[int]map[string]int64
	Calls      int64
	PtrCalls   int64
}

// TestEnginesAgreeAcrossProfileModes pins the package-level contract the
// root differential suite relies on: for every profile mode, the switch
// oracle and the bytecode engine produce the same output and the same
// counters, and the exact modes agree with each other bit for bit —
// including the per-target pointer histograms, which stay exact even
// under sampling.
func TestEnginesAgreeAcrossProfileModes(t *testing.T) {
	refOut, refSt := runWith(t, EngineBytecode, ProfileFull, 0)
	for _, mode := range []string{ProfileFull, ProfileMinimal, ProfileSampled} {
		for _, engine := range []string{EngineBytecode, EngineSwitch} {
			out, st := runWith(t, engine, mode, 4)
			if out != refOut {
				t.Errorf("%s/%s output %q, want %q", engine, mode, out, refOut)
			}
			if st.Calls != refSt.Calls || st.PtrCalls != refSt.PtrCalls {
				t.Errorf("%s/%s calls=%d ptr=%d, want %d/%d",
					engine, mode, st.Calls, st.PtrCalls, refSt.Calls, refSt.PtrCalls)
			}
			if !reflect.DeepEqual(st.PtrTargets, refSt.PtrTargets) {
				t.Errorf("%s/%s ptr targets %v, want %v (must be exact in every mode)",
					engine, mode, st.PtrTargets, refSt.PtrTargets)
			}
			if mode != ProfileSampled {
				if !reflect.DeepEqual(st.SiteCounts, refSt.SiteCounts) {
					t.Errorf("%s/%s site counts %v, want %v", engine, mode, st.SiteCounts, refSt.SiteCounts)
				}
				if !reflect.DeepEqual(st.FuncCounts, refSt.FuncCounts) {
					t.Errorf("%s/%s func counts %v, want %v", engine, mode, st.FuncCounts, refSt.FuncCounts)
				}
			}
		}
	}
}

func TestBadProfileOptions(t *testing.T) {
	f, err := parser.Parse("t.c", dispatchSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, mod := mustLower(t, f)
	if _, err := NewMachine(mod, NewEnv(), Options{ProfileMode: "bogus"}); err == nil {
		t.Error("bogus profile mode accepted")
	}
	if _, err := NewMachine(mod, NewEnv(), Options{SampleRate: -1}); err == nil {
		t.Error("negative sample rate accepted")
	}
	m, err := NewMachine(mod, NewEnv(), Options{Engine: EngineSwitch})
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine() != EngineSwitch {
		t.Errorf("Engine() = %q, want %q", m.Engine(), EngineSwitch)
	}
}
