package icache

import (
	"testing"
	"testing/quick"

	"inlinec/internal/ir"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 16, Assoc: 1},
		{Size: 1024, LineSize: 0, Assoc: 1},
		{Size: 1024, LineSize: 16, Assoc: 0},
		{Size: 1000, LineSize: 16, Assoc: 1}, // not divisible
		{Size: 1024, LineSize: 24, Assoc: 1}, // line not a power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSequentialAccessHitsWithinLine(t *testing.T) {
	c := mustCache(t, Config{Size: 256, LineSize: 16, Assoc: 1})
	// 16-byte lines of 4-byte words: one miss then three hits per line.
	for addr := int64(0); addr < 64; addr += 4 {
		c.Access(addr)
	}
	if c.Stats.Accesses != 16 || c.Stats.Misses != 4 {
		t.Errorf("stats = %+v, want 16 accesses / 4 misses", c.Stats)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two addresses one cache-size apart alias in a direct-mapped cache:
	// alternating accesses always miss.
	c := mustCache(t, Config{Size: 256, LineSize: 16, Assoc: 1})
	for i := 0; i < 10; i++ {
		c.Access(0)
		c.Access(256)
	}
	if c.Stats.Misses != 20 {
		t.Errorf("direct-mapped aliasing: %d misses, want 20", c.Stats.Misses)
	}
	// The same pattern in a 2-way cache hits after the first round.
	c2 := mustCache(t, Config{Size: 256, LineSize: 16, Assoc: 2})
	for i := 0; i < 10; i++ {
		c2.Access(0)
		c2.Access(256)
	}
	if c2.Stats.Misses != 2 {
		t.Errorf("2-way aliasing: %d misses, want 2", c2.Stats.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set, three aliasing lines: A B A C -> C evicts B, then B misses.
	c := mustCache(t, Config{Size: 128, LineSize: 16, Assoc: 2})
	a, b, d := int64(0), int64(64*1), int64(64*2) // 4 sets -> 64-byte alias stride
	c.Access(a)                                   // miss -> [A]
	c.Access(b)                                   // miss -> [A B]
	c.Access(a)                                   // hit, refreshes A -> [B A]
	c.Access(d)                                   // miss, evicts LRU=B -> [A D]
	if hit := c.Access(b); hit {
		t.Error("B should have been evicted as LRU")
	}
	// That B miss evicted A (LRU after D's insertion): [D B].
	if hit := c.Access(d); !hit {
		t.Error("D should still be resident")
	}
	if hit := c.Access(a); hit {
		t.Error("A should have been evicted by B's reload")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate must be 0")
	}
	s.Accesses = 4
	s.Misses = 1
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestLayoutAddresses(t *testing.T) {
	mod := ir.NewModule("m")
	f1 := &ir.Func{Name: "a"}
	f1.Emit(ir.Instr{Op: ir.OpRet, A: ir.None})
	f1.Emit(ir.Instr{Op: ir.OpRet, A: ir.None})
	f2 := &ir.Func{Name: "b"}
	f2.Emit(ir.Instr{Op: ir.OpRet, A: ir.None})
	mod.AddFunc(f1)
	mod.AddFunc(f2)
	l := NewLayout(mod)
	if l.Addr(f1, 0) != 0 || l.Addr(f1, 1) != 4 {
		t.Errorf("f1 addrs = %d, %d", l.Addr(f1, 0), l.Addr(f1, 1))
	}
	if l.Addr(f2, 0) != 8 {
		t.Errorf("f2 base = %d, want 8 (after f1's 2 words)", l.Addr(f2, 0))
	}
	if l.TotalWords != 3 {
		t.Errorf("total words = %d", l.TotalWords)
	}
}

// TestQuickFullyAssociativeSubset: a cache can never have more misses
// than accesses, and a larger (same-geometry) cache never misses more on
// the same trace.
func TestQuickCacheMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		small := &Cache{cfg: Config{Size: 256, LineSize: 16, Assoc: 1}, sets: 16, tags: make([][]int64, 16)}
		big := &Cache{cfg: Config{Size: 1024, LineSize: 16, Assoc: 4}, sets: 16, tags: make([][]int64, 16)}
		x := uint64(seed)
		steps := int(n)%200 + 20
		for i := 0; i < steps; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			addr := int64(x % 4096)
			small.Access(addr)
			big.Access(addr)
		}
		if small.Stats.Misses > small.Stats.Accesses {
			return false
		}
		// A 4-way cache with 4x capacity and identical set count dominates
		// the direct-mapped one on any trace (its sets are supersets).
		return big.Stats.Misses <= small.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
