// Tests for the parallel profiling pipeline: fanning runs out over a
// worker pool must be an implementation detail, invisible in every
// observable result.
package inlinec_test

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"inlinec"
	"inlinec/internal/bench"
)

// serializeProfile renders a profile through the on-disk format, the
// strictest equality available (it covers every count the profile holds).
func serializeProfile(t *testing.T, p *inlinec.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelProfilingDeterminism: the worker pool produces byte-identical
// serialized profiles to a serial run, across suite benchmarks and worker
// counts (including more workers than inputs).
func TestParallelProfilingDeterminism(t *testing.T) {
	for _, name := range []string{"wc", "tee"} {
		bm := bench.Get(name)
		if bm == nil {
			t.Fatalf("missing suite benchmark %s", name)
		}
		inputs := bm.Inputs
		if testing.Short() && len(inputs) > 6 {
			inputs = inputs[:6]
		}
		p, err := bm.Compile()
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = 1
		serial, err := p.ProfileInputs(inputs...)
		if err != nil {
			t.Fatal(err)
		}
		want := serializeProfile(t, serial)
		for _, par := range []int{0, 2, 4, len(inputs) + 3} {
			p.Parallelism = par
			prof, err := p.ProfileInputs(inputs...)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", name, par, err)
			}
			if got := serializeProfile(t, prof); !bytes.Equal(got, want) {
				t.Errorf("%s: parallelism %d profile differs from serial run:\n--- serial ---\n%s--- parallel ---\n%s",
					name, par, want, got)
			}
		}
	}
}

// TestParallelRunAllDeterminism: RunAll with a worker pool returns results
// in suite order with the same measurements a serial pass produces. Uses a
// single capped run per benchmark to keep the suite fast.
func TestParallelRunAllDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is not short")
	}
	cfg := bench.DefaultConfig()
	cfg.MaxRuns = 1
	cfg.Parallelism = 1
	serial, err := bench.RunAll(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	parallel, err := bench.RunAll(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name {
			t.Fatalf("result %d out of order: %s vs %s", i, s.Name, p.Name)
		}
		if s.AvgIL != p.AvgIL || s.AvgILAfter != p.AvgILAfter ||
			s.Expansions != p.Expansions || s.CallDec != p.CallDec || s.CodeInc != p.CodeInc {
			t.Errorf("%s: parallel measurements differ from serial: %+v vs %+v", s.Name, s, p)
		}
	}
	// The rendered tables — what ilbench prints — must match byte for byte.
	if st, pt := bench.AllTables(serial), bench.AllTables(parallel); st != pt {
		t.Errorf("tables differ between serial and parallel runs:\n%s\nvs\n%s", st, pt)
	}
}

// renderDecisions flattens everything Inline decided — the linear order,
// every decision with its reason, and the size accounting — into one
// comparable string. Cache stats are deliberately excluded: the hit/miss
// split is per-worker state and varies with the worker count.
func renderDecisions(res *inlinec.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "order: %s\n", strings.Join(res.Order, " "))
	for _, d := range res.Decisions {
		fmt.Fprintf(&sb, "site %d %s<-%s w=%.1f accepted=%v reason=%q\n",
			d.SiteID, d.Caller, d.Callee, d.Weight, d.Accepted, d.Reason)
	}
	fmt.Fprintf(&sb, "expansions=%d size %d->%d\n%s",
		res.NumExpansions, res.OriginalSize, res.FinalSize, res.String())
	return sb.String()
}

// TestParallelInlineDeterminism: wave-scheduled physical expansion must
// be invisible — byte-identical module, decision list, and rendered
// report versus the serial walk at worker counts {1, 2, 8} on real
// multi-function benchmarks.
func TestParallelInlineDeterminism(t *testing.T) {
	for _, name := range []string{"espresso", "cccp"} {
		bm := bench.Get(name)
		if bm == nil {
			t.Fatalf("missing suite benchmark %s", name)
		}
		inputs := bm.Inputs[:4]
		if testing.Short() {
			inputs = inputs[:2]
		}
		base, err := bm.Compile()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := base.ProfileInputs(inputs...)
		if err != nil {
			t.Fatal(err)
		}
		inlineAt := func(par int) (string, string) {
			p, err := bm.Compile()
			if err != nil {
				t.Fatal(err)
			}
			params := inlinec.DefaultParams()
			params.Parallelism = par
			res, err := p.Inline(prof, params)
			if err != nil {
				t.Fatalf("%s inline (par %d): %v", name, par, err)
			}
			if res.Cache.Lookups != res.NumExpansions {
				t.Errorf("%s par %d: %d cache lookups for %d splices", name, par, res.Cache.Lookups, res.NumExpansions)
			}
			return p.Module.String(), renderDecisions(res)
		}
		wantMod, wantRes := inlineAt(1)
		for _, par := range []int{2, 8} {
			gotMod, gotRes := inlineAt(par)
			if gotMod != wantMod {
				t.Errorf("%s: parallelism %d module differs from serial expansion", name, par)
			}
			if gotRes != wantRes {
				t.Errorf("%s: parallelism %d decisions differ from serial:\n--- serial ---\n%s--- parallel ---\n%s",
					name, par, wantRes, gotRes)
			}
		}
	}
}

// TestParallelOptimizeDeterminism: the concurrent per-function cleanup
// pipelines must produce the byte-identical module a serial pass does,
// at worker counts {1, 2, 8}.
func TestParallelOptimizeDeterminism(t *testing.T) {
	bm := bench.Get("espresso")
	if bm == nil {
		t.Fatal("missing suite benchmark espresso")
	}
	base, err := bm.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := base.ProfileInputs(bm.Inputs[:2]...)
	if err != nil {
		t.Fatal(err)
	}
	optimizeAt := func(par int) string {
		p, err := bm.Compile()
		if err != nil {
			t.Fatal(err)
		}
		params := inlinec.DefaultParams()
		params.Parallelism = 1 // identical input module for every par
		if _, err := p.Inline(prof, params); err != nil {
			t.Fatal(err)
		}
		p.Parallelism = par
		if err := p.Optimize(); err != nil {
			t.Fatalf("optimize (par %d): %v", par, err)
		}
		return p.Module.String()
	}
	want := optimizeAt(1)
	for _, par := range []int{2, 8} {
		if got := optimizeAt(par); got != want {
			t.Errorf("parallelism %d optimized module differs from serial", par)
		}
	}
}

// Multi-unit sources for the parallel front end tests.
var unitSources = []inlinec.UnitSource{
	{Name: "math.c", Src: `
int square(int x) { return x * x; }
int cube(int x) { return square(x) * x; }
static int twist(int x) { return x ^ 0x2a; }
int scramble(int x) { return twist(x) + 1; }
`},
	{Name: "acc.c", Src: `
extern int square(int x);
int total;
int accumulate(int x) { total += square(x); return total; }
static int twist(int x) { return x + 1000; }
int wobble(int x) { return twist(x); }
`},
	{Name: "main.c", Src: `
extern int printf(char *fmt, ...);
extern int cube(int x);
extern int accumulate(int x);
extern int scramble(int x);
extern int wobble(int x);
extern int total;
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 40; i++) s += accumulate(i) + cube(i);
    s += scramble(s) + wobble(s);
    printf("%d %d\n", s, total);
    return 0;
}
`},
}

// TestParallelCompileUnitsDeterminism: the parallel multi-unit front end
// must link the byte-identical module a serial unit-by-unit compile
// does, at worker counts {1, 2, 8}, and behave identically when run.
func TestParallelCompileUnitsDeterminism(t *testing.T) {
	linkAt := func(par int) (string, string) {
		p, err := inlinec.CompileAndLink("prog", par, unitSources...)
		if err != nil {
			t.Fatalf("compile+link (par %d): %v", par, err)
		}
		out, err := p.Run(inlinec.Input{})
		if err != nil {
			t.Fatalf("run (par %d): %v", par, err)
		}
		return p.Module.String(), out.Stdout
	}
	wantMod, wantOut := linkAt(1)
	for _, par := range []int{2, 8} {
		gotMod, gotOut := linkAt(par)
		if gotMod != wantMod {
			t.Errorf("parallelism %d linked module differs from serial front end", par)
		}
		if gotOut != wantOut {
			t.Errorf("parallelism %d program output %q, serial %q", par, gotOut, wantOut)
		}
	}
}

// TestParallelCompileUnitsDiagnostics: diagnostics from failing units
// merge in input order with identical text at any worker count, and
// every failing unit is reported — not just the first.
func TestParallelCompileUnitsDiagnostics(t *testing.T) {
	bad := []inlinec.UnitSource{
		{Name: "ok.c", Src: `int fine(int x) { return x; }`},
		{Name: "broken1.c", Src: `int oops( { return 1; }`},
		{Name: "broken2.c", Src: `int main() { return undeclared_thing; }`},
	}
	errAt := func(par int) string {
		_, err := inlinec.CompileUnits(par, bad...)
		if err == nil {
			t.Fatalf("compile (par %d) of broken units succeeded", par)
		}
		return err.Error()
	}
	want := errAt(1)
	for _, unit := range []string{"broken1.c", "broken2.c"} {
		if !strings.Contains(want, unit) {
			t.Errorf("merged diagnostics missing %s: %q", unit, want)
		}
	}
	if i1, i2 := strings.Index(want, "broken1.c"), strings.Index(want, "broken2.c"); i1 > i2 {
		t.Errorf("diagnostics out of input order: %q", want)
	}
	for _, par := range []int{2, 8} {
		if got := errAt(par); got != want {
			t.Errorf("parallelism %d diagnostics differ:\n--- serial ---\n%s\n--- parallel ---\n%s", par, want, got)
		}
	}
}
