// Package ast defines the abstract syntax tree for MiniC programs.
// Expression nodes carry a Type field that the semantic analyzer fills in;
// the parser leaves it nil.
package ast

import (
	"inlinec/internal/token"
	"inlinec/internal/types"
)

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------- programs

// File is a parsed translation unit.
type File struct {
	Name    string
	Decls   []Decl
	Structs []*types.StructType // struct types declared in the file
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// FuncDecl declares (and possibly defines) a function.
type FuncDecl struct {
	NamePos  token.Pos
	Name     string
	Type     *types.FuncType
	Params   []*VarDecl // parameter declarations, in order
	Body     *BlockStmt // nil for extern declarations
	IsExtern bool       // declared 'extern' or without a body
	IsStatic bool
}

// Pos returns the declaration position.
func (d *FuncDecl) Pos() token.Pos { return d.NamePos }
func (d *FuncDecl) declNode()      {}

// VarDecl declares a global or local variable. Init may be nil. For
// globals, Init must be a constant expression or a string literal.
type VarDecl struct {
	NamePos  token.Pos
	Name     string
	Type     types.Type
	Init     Expr
	IsExtern bool
	IsStatic bool
	IsParam  bool
}

// Pos returns the declaration position.
func (d *VarDecl) Pos() token.Pos { return d.NamePos }
func (d *VarDecl) declNode()      {}
func (d *VarDecl) stmtNode()      {}

// ------------------------------------------------------------------- stmts

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-enclosed statement list with its own scope.
// DeclGroup marks a synthetic wrapper the parser emits for a multi-
// declarator statement like "int a, b;", which shares the enclosing scope.
type BlockStmt struct {
	Lbrace    token.Pos
	List      []Stmt
	DeclGroup bool
}

// Pos returns the opening brace position.
func (s *BlockStmt) Pos() token.Pos { return s.Lbrace }
func (s *BlockStmt) stmtNode()      {}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct{ X Expr }

// Pos returns the expression position.
func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *ExprStmt) stmtNode()      {}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Semi token.Pos }

// Pos returns the semicolon position.
func (s *EmptyStmt) Pos() token.Pos { return s.Semi }
func (s *EmptyStmt) stmtNode()      {}

// IfStmt is if (Cond) Then else Else; Else may be nil.
type IfStmt struct {
	If   token.Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

// Pos returns the if keyword position.
func (s *IfStmt) Pos() token.Pos { return s.If }
func (s *IfStmt) stmtNode()      {}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	While token.Pos
	Cond  Expr
	Body  Stmt
}

// Pos returns the while keyword position.
func (s *WhileStmt) Pos() token.Pos { return s.While }
func (s *WhileStmt) stmtNode()      {}

// DoWhileStmt is do Body while (Cond);.
type DoWhileStmt struct {
	Do   token.Pos
	Body Stmt
	Cond Expr
}

// Pos returns the do keyword position.
func (s *DoWhileStmt) Pos() token.Pos { return s.Do }
func (s *DoWhileStmt) stmtNode()      {}

// ForStmt is for (Init; Cond; Post) Body; any clause may be nil. Init is a
// statement so it can be a declaration or an expression statement.
type ForStmt struct {
	For  token.Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Pos returns the for keyword position.
func (s *ForStmt) Pos() token.Pos { return s.For }
func (s *ForStmt) stmtNode()      {}

// ReturnStmt is return X; X may be nil.
type ReturnStmt struct {
	Return token.Pos
	X      Expr
}

// Pos returns the return keyword position.
func (s *ReturnStmt) Pos() token.Pos { return s.Return }
func (s *ReturnStmt) stmtNode()      {}

// BreakStmt is break;.
type BreakStmt struct{ Break token.Pos }

// Pos returns the break keyword position.
func (s *BreakStmt) Pos() token.Pos { return s.Break }
func (s *BreakStmt) stmtNode()      {}

// ContinueStmt is continue;.
type ContinueStmt struct{ Continue token.Pos }

// Pos returns the continue keyword position.
func (s *ContinueStmt) Pos() token.Pos { return s.Continue }
func (s *ContinueStmt) stmtNode()      {}

// GotoStmt is goto Label;.
type GotoStmt struct {
	Goto  token.Pos
	Label string
}

// Pos returns the goto keyword position.
func (s *GotoStmt) Pos() token.Pos { return s.Goto }
func (s *GotoStmt) stmtNode()      {}

// LabeledStmt is Label: Stmt.
type LabeledStmt struct {
	LabelPos token.Pos
	Label    string
	Stmt     Stmt
}

// Pos returns the label position.
func (s *LabeledStmt) Pos() token.Pos { return s.LabelPos }
func (s *LabeledStmt) stmtNode()      {}

// SwitchStmt is switch (Tag) { cases }. Cases appear in source order; a
// nil Values slice marks the default case.
type SwitchStmt struct {
	Switch token.Pos
	Tag    Expr
	Cases  []*CaseClause
}

// Pos returns the switch keyword position.
func (s *SwitchStmt) Pos() token.Pos { return s.Switch }
func (s *SwitchStmt) stmtNode()      {}

// CaseClause is one case (or default) arm of a switch. MiniC switches do
// not fall through between clauses written separately, but multiple case
// labels may share a body via Values holding several constants.
type CaseClause struct {
	Case   token.Pos
	Values []Expr // nil for default
	Body   []Stmt
}

// Pos returns the case keyword position.
func (c *CaseClause) Pos() token.Pos { return c.Case }

// ------------------------------------------------------------------- exprs

// Expr is an expression node. Type is set by the semantic analyzer.
type Expr interface {
	Node
	exprNode()
	// TypeOf returns the semantic type (nil before checking).
	TypeOf() types.Type
	// SetType records the semantic type.
	SetType(types.Type)
}

type typed struct{ t types.Type }

func (t *typed) TypeOf() types.Type   { return t.t }
func (t *typed) SetType(x types.Type) { t.t = x }

// IntLit is an integer (or character) literal.
type IntLit struct {
	typed
	LitPos token.Pos
	Value  int64
}

// Pos returns the literal position.
func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) exprNode()      {}

// StrLit is a string literal; it denotes a pointer to a static buffer.
type StrLit struct {
	typed
	LitPos token.Pos
	Value  string
}

// Pos returns the literal position.
func (e *StrLit) Pos() token.Pos { return e.LitPos }
func (e *StrLit) exprNode()      {}

// Ident is a use of a named variable, function, or enum constant.
type Ident struct {
	typed
	NamePos token.Pos
	Name    string
	// Ref is resolved by sema: *VarDecl, *FuncDecl, or *EnumConst.
	Ref any
}

// Pos returns the identifier position.
func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Ident) exprNode()      {}

// EnumConst is the resolved referent of an enum constant identifier.
type EnumConst struct {
	Name  string
	Value int64
}

// UnaryExpr is a prefix operator application: - ! ~ * & ++ --.
type UnaryExpr struct {
	typed
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// Pos returns the operator position.
func (e *UnaryExpr) Pos() token.Pos { return e.OpPos }
func (e *UnaryExpr) exprNode()      {}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	typed
	OpPos token.Pos
	Op    token.Kind // PlusPlus or MinusMinus
	X     Expr
}

// Pos returns the operand position.
func (e *PostfixExpr) Pos() token.Pos { return e.X.Pos() }
func (e *PostfixExpr) exprNode()      {}

// BinaryExpr is a binary operator application (arithmetic, comparison,
// logical && and ||, shifts, bitwise).
type BinaryExpr struct {
	typed
	OpPos token.Pos
	Op    token.Kind
	X, Y  Expr
}

// Pos returns the left operand position.
func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()      {}

// AssignExpr is X op= Y (op may be plain Assign).
type AssignExpr struct {
	typed
	OpPos token.Pos
	Op    token.Kind
	X, Y  Expr
}

// Pos returns the target position.
func (e *AssignExpr) Pos() token.Pos { return e.X.Pos() }
func (e *AssignExpr) exprNode()      {}

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	typed
	Cond, Then, Else Expr
}

// Pos returns the condition position.
func (e *CondExpr) Pos() token.Pos { return e.Cond.Pos() }
func (e *CondExpr) exprNode()      {}

// CallExpr is Fun(Args...). After sema, Direct names the called function
// when the call target is a plain function identifier; otherwise the call
// is through a pointer value.
type CallExpr struct {
	typed
	Lparen token.Pos
	Fun    Expr
	Args   []Expr
	Direct *FuncDecl // non-nil for direct calls
}

// Pos returns the callee position.
func (e *CallExpr) Pos() token.Pos { return e.Fun.Pos() }
func (e *CallExpr) exprNode()      {}

// IndexExpr is X[Index].
type IndexExpr struct {
	typed
	Lbrack token.Pos
	X      Expr
	Index  Expr
}

// Pos returns the indexed expression position.
func (e *IndexExpr) Pos() token.Pos { return e.X.Pos() }
func (e *IndexExpr) exprNode()      {}

// MemberExpr is X.Name or X->Name (Arrow true).
type MemberExpr struct {
	typed
	DotPos token.Pos
	X      Expr
	Name   string
	Arrow  bool
	Field  *types.Field // resolved by sema
}

// Pos returns the receiver position.
func (e *MemberExpr) Pos() token.Pos { return e.X.Pos() }
func (e *MemberExpr) exprNode()      {}

// SizeofExpr is sizeof(type) or sizeof expr. Exactly one of Arg/ArgType
// is set.
type SizeofExpr struct {
	typed
	KwPos   token.Pos
	Arg     Expr
	ArgType types.Type
}

// Pos returns the keyword position.
func (e *SizeofExpr) Pos() token.Pos { return e.KwPos }
func (e *SizeofExpr) exprNode()      {}

// CastExpr is (Type)X.
type CastExpr struct {
	typed
	LparenPos token.Pos
	To        types.Type
	X         Expr
}

// Pos returns the opening paren position.
func (e *CastExpr) Pos() token.Pos { return e.LparenPos }
func (e *CastExpr) exprNode()      {}

// InitListExpr is a brace-enclosed initializer list {a, b, c}, valid only
// as a variable initializer for array and struct types.
type InitListExpr struct {
	typed
	Lbrace token.Pos
	Elems  []Expr
}

// Pos returns the opening brace position.
func (e *InitListExpr) Pos() token.Pos { return e.Lbrace }
func (e *InitListExpr) exprNode()      {}

// CommaExpr is X, Y evaluated left to right, yielding Y.
type CommaExpr struct {
	typed
	X, Y Expr
}

// Pos returns the left operand position.
func (e *CommaExpr) Pos() token.Pos { return e.X.Pos() }
func (e *CommaExpr) exprNode()      {}
