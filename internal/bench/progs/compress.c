/* compress - an LZW compressor modeled on the UNIX compress benchmark.
 * Reads bytes from stdin through a user-level buffered reader (as
 * stdio's getc macro was), emits 12-bit codes packed into bytes through
 * a buffered writer, then prints a ratio summary. The dictionary is a
 * hash table of (prefix code, suffix byte) pairs probed with open
 * addressing; the hash, probe, and code-output helpers are the hot
 * small functions. Cold regions mirror the real tool: an option file
 * can force a smaller code width, request verbose statistics, or run a
 * self-check decompression of the emitted stream. */

extern int read(int fd, char *buf, int n);
extern int write(int fd, char *buf, int n);
extern int open(char *path, int mode);
extern int close(int fd);
extern int putc(int c, int fd);
extern int printf(char *fmt, ...);

enum {
    MAXBITS = 12,
    MAXCODES = 4096,     /* 1 << MAXBITS */
    HASHSIZE = 5003,
    FIRSTCODE = 256,
    IOBUF = 2048
};

int hash_prefix[HASHSIZE];
int hash_suffix[HASHSIZE];
int hash_code[HASHSIZE];

/* decoder table for the self-check pass (cold) */
int dec_prefix[MAXCODES];
int dec_suffix[MAXCODES];

int code_bits;  /* current code width, default MAXBITS */
int next_code;
int in_bytes;
int out_bytes;

int opt_verbose;
int opt_check;
int opt_decode;
int opt_blocks;   /* cold 'B': reset the dictionary every block */
int block_resets;

/* bit packing state */
int bit_buffer;
int bit_count;

/* ---- buffered input ---- */

char inbuf[IOBUF];
int inlen;
int inpos;

int fill_input() {
    inlen = read(0, inbuf, IOBUF);
    inpos = 0;
    return inlen > 0;
}

int get_byte() {
    if (inpos >= inlen) {
        if (!fill_input()) return -1;
    }
    in_bytes++;
    return inbuf[inpos++];
}

/* ---- buffered output; the compressed stream is also retained in a
 * window so the self-check can re-read what was written (cold) ---- */

char outbuf[IOBUF];
int outlen;

enum { KEEPMAX = 65536 };
char kept[KEEPMAX];
int nkept;

void flush_output() {
    if (outlen > 0) write(1, outbuf, outlen);
    outlen = 0;
}

void put_byte(int c) {
    if (outlen >= IOBUF) flush_output();
    outbuf[outlen++] = c;
    if (nkept < KEEPMAX) kept[nkept++] = c;
    out_bytes++;
}

/* ---- dictionary ---- */

void table_init() {
    int i;
    for (i = 0; i < HASHSIZE; i++) hash_code[i] = -1;
    next_code = FIRSTCODE;
}

int max_code() { return 1 << code_bits; }

int hash_slot(int prefix, int suffix) {
    int h;
    h = (prefix << 4) ^ suffix;
    h = h % HASHSIZE;
    if (h < 0) h += HASHSIZE;
    return h;
}

int probe_next(int slot) {
    slot = slot + 1;
    if (slot >= HASHSIZE) slot = 0;
    return slot;
}

int table_find(int prefix, int suffix) {
    int slot;
    slot = hash_slot(prefix, suffix);
    while (hash_code[slot] != -1) {
        if (hash_prefix[slot] == prefix && hash_suffix[slot] == suffix)
            return hash_code[slot];
        slot = probe_next(slot);
    }
    return -1;
}

void table_add(int prefix, int suffix) {
    int slot;
    if (next_code >= max_code()) return;
    slot = hash_slot(prefix, suffix);
    while (hash_code[slot] != -1) slot = probe_next(slot);
    hash_prefix[slot] = prefix;
    hash_suffix[slot] = suffix;
    hash_code[slot] = next_code;
    dec_prefix[next_code] = prefix;
    dec_suffix[next_code] = suffix;
    next_code++;
}

/* ---- code stream ---- */

void put_code(int code) {
    bit_buffer = (bit_buffer << code_bits) | code;
    bit_count += code_bits;
    while (bit_count >= 8) {
        put_byte((bit_buffer >> (bit_count - 8)) & 0xff);
        bit_count -= 8;
    }
}

void flush_bits() {
    if (bit_count > 0) {
        put_byte((bit_buffer << (8 - bit_count)) & 0xff);
        bit_count = 0;
    }
}

/* ---- compressor ---- */

/* cold 'B': restart the dictionary when it degrades, as the real
 * compress monitors its ratio and emits a CLEAR code */
enum { BLOCKBYTES = 4096 };

int should_reset(int consumed) {
    if (!opt_blocks) return 0;
    if (next_code < max_code()) return 0;
    return consumed % BLOCKBYTES == 0;
}

void reset_dictionary() {
    table_init();
    block_resets++;
}

void compress_stream() {
    int prefix, c, code;
    prefix = get_byte();
    if (prefix == -1) return;
    for (;;) {
        c = get_byte();
        if (c == -1) break;
        code = table_find(prefix, c);
        if (code != -1) {
            prefix = code;
        } else {
            put_code(prefix);
            table_add(prefix, c);
            prefix = c;
        }
        if (should_reset(in_bytes)) {
            put_code(prefix);
            reset_dictionary();
            prefix = get_byte();
            if (prefix == -1) { flush_bits(); return; }
        }
    }
    put_code(prefix);
    flush_bits();
}

/* ---- cold: full decompressor ('d' option) — decodes the retained
 * stream back to the original bytes and writes them to the file
 * "decoded" so a harness can compare round trips ---- */

char stack_bytes[MAXCODES];
int stack_top;

void push_byte(int c) {
    if (stack_top < MAXCODES) stack_bytes[stack_top++] = c;
}

int pop_byte() {
    if (stack_top <= 0) return -1;
    stack_top--;
    return stack_bytes[stack_top];
}

/* expand one code onto the byte stack; returns its first byte */
int unwind_code(int code) {
    int first;
    first = code;
    while (code >= FIRSTCODE) {
        push_byte(dec_suffix[code]);
        code = dec_prefix[code];
    }
    push_byte(code);
    first = code;
    return first;
}

int dec_pos;
int dec_bits;
int dec_buf;

int next_dec_code() {
    int c;
    while (dec_bits < code_bits) {
        if (dec_pos >= nkept) return -1;
        c = kept[dec_pos++];
        dec_buf = (dec_buf << 8) | c;
        dec_bits += 8;
    }
    dec_bits -= code_bits;
    return (dec_buf >> dec_bits) & (max_code() - 1);
}

void decompress_stream(int outfd) {
    int code, c, written;
    dec_pos = 0;
    dec_bits = 0;
    dec_buf = 0;
    stack_top = 0;
    written = 0;
    for (;;) {
        code = next_dec_code();
        if (code < 0) break;
        if (code >= next_code) {
            printf("compress: decode error: code %d\n", code);
            return;
        }
        unwind_code(code);
        while ((c = pop_byte()) != -1) {
            putc(c, outfd);
            written++;
        }
    }
    printf("compress: decoded %d bytes\n", written);
}

void run_decompress() {
    int fd;
    fd = open("decoded", 1);
    if (fd < 0) {
        printf("compress: cannot create decoded output\n");
        return;
    }
    decompress_stream(fd);
    close(fd);
}

/* ---- cold: self-check decoder over the retained stream ---- */

int check_pos;
int check_bits;
int check_buf;

int next_check_code() {
    int c;
    while (check_bits < code_bits) {
        if (check_pos >= nkept) return -1;
        c = kept[check_pos++];
        check_buf = (check_buf << 8) | c;
        check_bits += 8;
    }
    check_bits -= code_bits;
    return (check_buf >> check_bits) & (max_code() - 1);
}

/* expand one code, returning the number of original bytes it covers */
int code_span(int code) {
    int n;
    n = 0;
    while (code >= FIRSTCODE) {
        code = dec_prefix[code];
        n++;
    }
    return n + 1;
}

void self_check() {
    int code, covered, codes;
    check_pos = 0;
    check_bits = 0;
    check_buf = 0;
    covered = 0;
    codes = 0;
    for (;;) {
        code = next_check_code();
        if (code < 0) break;
        if (code >= next_code) {
            printf("compress: self-check: bad code %d\n", code);
            return;
        }
        covered += code_span(code);
        codes++;
    }
    if (covered < in_bytes) {
        printf("compress: self-check: covered %d of %d bytes (%d codes)\n",
               covered, in_bytes, codes);
    } else {
        printf("compress: self-check ok (%d codes)\n", codes);
    }
}

/* ---- cold: options ---- */

void load_options() {
    char buf[68]; /* two bytes of NUL slack for the look-ahead below */
    int fd, n, i;
    fd = open("opts", 0);
    if (fd < 0) return;
    n = read(fd, buf, 63);
    close(fd);
    if (n < 0) n = 0;
    buf[n] = '\0';
    for (i = 0; i < n; i++) {
        if (buf[i] == 'v') opt_verbose = 1;
        if (buf[i] == 'C') opt_check = 1;
        if (buf[i] == 'd') opt_decode = 1;
        if (buf[i] == 'B') opt_blocks = 1;
        if (buf[i] == 'b') {
            /* -b<digit>: reduce code width (9..12) */
            if (buf[i + 1] >= '9' && buf[i + 1] <= '9') code_bits = 9;
            if (buf[i + 1] == '1' && buf[i + 2] == '0') code_bits = 10;
            if (buf[i + 1] == '1' && buf[i + 2] == '1') code_bits = 11;
        }
    }
}

/* chain depth of a dictionary code: how many prefix links to a byte */
int chain_depth(int code) {
    int d;
    d = 0;
    while (code >= FIRSTCODE) {
        code = dec_prefix[code];
        d++;
    }
    return d;
}

int deepest_chain() {
    int c, best, d;
    best = 0;
    for (c = FIRSTCODE; c < next_code; c++) {
        d = chain_depth(c);
        if (d > best) best = d;
    }
    return best;
}

int occupancy_percent() {
    int used, i;
    used = 0;
    for (i = 0; i < HASHSIZE; i++) {
        if (hash_code[i] != -1) used++;
    }
    return (used * 100) / HASHSIZE;
}

void print_stats() {
    int pct;
    if (in_bytes == 0) return;
    pct = (out_bytes * 100) / in_bytes;
    printf("compress: table %d/%d entries, output %d%% of input\n",
           next_code - FIRSTCODE, max_code() - FIRSTCODE, pct);
    printf("compress: hash occupancy %d%%, deepest chain %d\n",
           occupancy_percent(), deepest_chain());
}

int main() {
    in_bytes = 0;
    out_bytes = 0;
    bit_buffer = 0;
    bit_count = 0;
    inlen = 0;
    inpos = 0;
    outlen = 0;
    nkept = 0;
    code_bits = MAXBITS;
    opt_verbose = 0;
    opt_check = 0;
    opt_decode = 0;
    opt_blocks = 0;
    block_resets = 0;
    load_options();
    table_init();
    compress_stream();
    flush_output();
    printf("\ncompress: %d -> %d bytes, %d codes\n",
           in_bytes, out_bytes, next_code - FIRSTCODE);
    if (opt_blocks && block_resets > 0)
        printf("compress: %d dictionary reset(s)\n", block_resets);
    if (opt_verbose) print_stats();
    if (opt_check) self_check();
    if (opt_decode) run_decompress();
    return 0;
}
