package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inlinec/internal/bench"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBenchSingleBenchmarkTable4(t *testing.T) {
	code, out, errb := runBench(t, "-bench", "tee", "-runs", "1", "-table", "4")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "tee") {
		t.Errorf("output = %q", out)
	}
	// tee must show 0% call decrease, the paper's result.
	if !strings.Contains(out, "0%") {
		t.Errorf("tee row should show 0%%: %q", out)
	}
}

func TestBenchAllTablesOneBenchmark(t *testing.T) {
	code, out, _ := runBench(t, "-bench", "wc", "-runs", "1", "-v")
	if code != 0 {
		t.Fatal("nonzero exit")
	}
	for _, frag := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Post-inline"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q", frag)
		}
	}
}

func TestBenchJSONOutput(t *testing.T) {
	code, out, errb := runBench(t, "-bench", "wc", "-runs", "1", "-json")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	var rep bench.JSONReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "wc" {
		t.Fatalf("results = %+v", rep.Results)
	}
	r := rep.Results[0]
	if r.Runs != 1 || r.AvgILBefore <= 0 || r.AvgILAfter <= 0 || r.Seconds <= 0 {
		t.Errorf("implausible record: %+v", r)
	}
}

func TestBenchParallelMatchesSerial(t *testing.T) {
	_, serial, _ := runBench(t, "-bench", "grep", "-runs", "2", "-parallel", "1", "-table", "4")
	_, parallel, _ := runBench(t, "-bench", "grep", "-runs", "2", "-parallel", "4", "-table", "4")
	if serial != parallel {
		t.Errorf("-parallel changed the tables:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestBenchBaselineGate(t *testing.T) {
	// Record a baseline from a real run, then gate against it: the same
	// workload must pass a generous factor and fail an absurdly strict one.
	code, out, errb := runBench(t, "-bench", "wc", "-runs", "1", "-json")
	if code != 0 {
		t.Fatalf("baseline run exit = %d (%s)", code, errb)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb = runBench(t, "-bench", "wc", "-runs", "1", "-baseline", path, "-maxregress", "1000")
	if code != 0 {
		t.Errorf("generous gate failed: exit %d (%s)", code, errb)
	} else if !strings.Contains(errb, "wall time within") {
		t.Errorf("passing gate should report success: %q", errb)
	}
	code, _, errb = runBench(t, "-bench", "wc", "-runs", "1", "-baseline", path, "-maxregress", "0.000001")
	if code == 0 || !strings.Contains(errb, "regression") {
		t.Errorf("impossible gate passed: exit %d (%s)", code, errb)
	}
	if code, _, errb = runBench(t, "-bench", "wc", "-runs", "1", "-baseline", "no-such-file.json"); code == 0 {
		t.Errorf("missing baseline file accepted: %s", errb)
	}
}

func TestBenchUnknownBenchmark(t *testing.T) {
	code, _, errb := runBench(t, "-bench", "nonesuch")
	if code == 0 || !strings.Contains(errb, "unknown benchmark") {
		t.Errorf("exit=%d err=%q", code, errb)
	}
}

func TestBenchBadFlag(t *testing.T) {
	if code, _, _ := runBench(t, "-nope"); code == 0 {
		t.Error("unknown flag must fail")
	}
}
