package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Predicted-vs-measured inlining agreement: the quantified score behind
// `ilbench -agreement` and the CI predict-gate. Two inline-decision
// traces over the same module are compared arc by arc; the score is the
// fraction of arcs where the predicted-weight compile made the same
// decision — accept, reject, partial-inline, or devirtualize (to the
// same target) — as the measured-weight compile.

// DecisionClass buckets an outcome into the four decisions the agreement
// metric distinguishes. Rejected and not-expandable collapse into one
// "reject" class: both leave the call site untouched, and whether an arc
// was excluded before or at the cost function can legitimately differ
// between weight sources without changing the compiled program.
func (o Outcome) DecisionClass() string {
	switch o {
	case OutcomeExpanded:
		return "accept"
	case OutcomePartialInlined:
		return "partial"
	case OutcomeDevirtualized:
		return "devirt"
	default:
		return "reject"
	}
}

// ArcDisagreement records one arc where the two traces decided
// differently.
type ArcDisagreement struct {
	Site   int    `json:"site"`
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	// Measured/Predicted are the two outcomes ("absent" when the arc
	// appears in only one trace).
	Measured  string `json:"measured"`
	Predicted string `json:"predicted"`
	// MeasuredTarget/PredictedTarget carry the devirtualization targets
	// when either side devirtualized.
	MeasuredTarget  string `json:"measured_target,omitempty"`
	PredictedTarget string `json:"predicted_target,omitempty"`
}

// AgreementStats is the arc-level diff of two inline-decision traces.
type AgreementStats struct {
	// Arcs is the union arc count; Agree how many decided identically.
	Arcs  int `json:"arcs"`
	Agree int `json:"agree"`
	// ByDecision counts agreeing arcs per decision class.
	ByDecision map[string]int `json:"by_decision,omitempty"`
	// Disagreements lists every differing arc, sorted by site id.
	Disagreements []ArcDisagreement `json:"disagreements,omitempty"`
}

// Score returns the agreement fraction in [0, 1] (1 for two empty
// traces: no arcs, no disagreement).
func (s *AgreementStats) Score() float64 {
	if s.Arcs == 0 {
		return 1
	}
	return float64(s.Agree) / float64(s.Arcs)
}

// ScorePct is Score in percent.
func (s *AgreementStats) ScorePct() float64 { return 100 * s.Score() }

// CompareInlineTraces diffs two decision traces over the same module,
// arc by arc (matched by call-site id — both compiles see the same
// pre-inline module, so ids align). Arcs present in only one trace count
// as disagreements; devirtualized arcs additionally must agree on the
// guarded target.
func CompareInlineTraces(measured, predicted []ArcEvent) *AgreementStats {
	mBy := make(map[int]*ArcEvent, len(measured))
	for i := range measured {
		mBy[measured[i].Site] = &measured[i]
	}
	pBy := make(map[int]*ArcEvent, len(predicted))
	for i := range predicted {
		pBy[predicted[i].Site] = &predicted[i]
	}
	sites := make([]int, 0, len(mBy))
	for id := range mBy {
		sites = append(sites, id)
	}
	for id := range pBy {
		if _, ok := mBy[id]; !ok {
			sites = append(sites, id)
		}
	}
	sort.Ints(sites)

	s := &AgreementStats{ByDecision: make(map[string]int)}
	for _, id := range sites {
		s.Arcs++
		m, p := mBy[id], pBy[id]
		if m != nil && p != nil &&
			m.Outcome.DecisionClass() == p.Outcome.DecisionClass() &&
			m.Target == p.Target {
			s.Agree++
			s.ByDecision[m.Outcome.DecisionClass()]++
			continue
		}
		d := ArcDisagreement{Site: id, Measured: "absent", Predicted: "absent"}
		if m != nil {
			d.Caller, d.Callee = m.Caller, m.Callee
			d.Measured = string(m.Outcome)
			d.MeasuredTarget = m.Target
		}
		if p != nil {
			d.Caller, d.Callee = p.Caller, p.Callee
			d.Predicted = string(p.Outcome)
			d.PredictedTarget = p.Target
		}
		s.Disagreements = append(s.Disagreements, d)
	}
	return s
}

// RecordAgreement publishes the comparison as metrics:
// inline_decisions_agree_total{mode} and inline_decisions_total{mode},
// where mode names the weight source compared against measured mode
// ("predicted" or "hybrid"). Nil-registry safe.
func (r *Registry) RecordAgreement(mode string, s *AgreementStats) {
	if r == nil {
		return
	}
	r.Counter("inline_decisions_agree_total",
		"arcs where this profile mode's inlining decision matched measured mode",
		"mode", mode).Add(int64(s.Agree))
	r.Counter("inline_decisions_total",
		"arcs compared between this profile mode and measured mode",
		"mode", mode).Add(int64(s.Arcs))
}

// FormatAgreementReport renders the agreement diff for humans:
// the score, the per-decision agreement mix, and every disagreeing arc.
// Deterministic — byte-identical for identical traces.
func FormatAgreementReport(name string, s *AgreementStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: predicted-vs-measured inlining agreement %.1f%% (%d/%d arcs)\n",
		name, s.ScorePct(), s.Agree, s.Arcs)
	classes := make([]string, 0, len(s.ByDecision))
	for c := range s.ByDecision {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&sb, "  agreed %-8s %d\n", c, s.ByDecision[c])
	}
	if len(s.Disagreements) > 0 {
		fmt.Fprintf(&sb, "  disagreements (%d):\n", len(s.Disagreements))
		for _, d := range s.Disagreements {
			fmt.Fprintf(&sb, "    site %-4d %-20s <- %-20s measured=%s", d.Site, d.Caller, d.Callee, d.Measured)
			if d.MeasuredTarget != "" {
				fmt.Fprintf(&sb, "(%s)", d.MeasuredTarget)
			}
			fmt.Fprintf(&sb, " predicted=%s", d.Predicted)
			if d.PredictedTarget != "" {
				fmt.Fprintf(&sb, "(%s)", d.PredictedTarget)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
