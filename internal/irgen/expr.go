package irgen

import (
	"inlinec/internal/ast"
	"inlinec/internal/ir"
	"inlinec/internal/token"
	"inlinec/internal/types"
)

// genExpr evaluates e for its side effects and returns its value (None for
// void expressions).
func (g *gen) genExpr(e ast.Expr) ir.Value { return g.rvalue(e) }

// materialize forces v into a register.
func (g *gen) materialize(v ir.Value, pos token.Pos) ir.Value {
	if v.Kind == ir.VKReg {
		return v
	}
	r := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpConst, Dst: r, A: v, Pos: pos})
	return ir.R(r)
}

// addOffset returns base + off, emitting an add only when off != 0.
func (g *gen) addOffset(base ir.Value, off int64, pos token.Pos) ir.Value {
	if off == 0 {
		return base
	}
	c := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpConst, Dst: c, A: ir.C(off), Pos: pos})
	r := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpAdd, Dst: r, A: g.materialize(base, pos), B: ir.R(c), Pos: pos})
	return ir.R(r)
}

// isAggregate reports whether values of t are represented by their address.
func isAggregate(t types.Type) bool {
	k := t.Kind()
	return k == types.Array || k == types.Struct
}

// lvalueAddr computes the address of an lvalue expression.
func (g *gen) lvalueAddr(e ast.Expr) ir.Value {
	switch ee := e.(type) {
	case *ast.Ident:
		switch d := ee.Ref.(type) {
		case *ast.VarDecl:
			if idx, ok := g.slotOf[d]; ok {
				r := g.fn.NewReg()
				g.emit(ir.Instr{Op: ir.OpAddrL, Dst: r, A: ir.C(int64(idx)), Pos: ee.Pos()})
				return ir.R(r)
			}
			r := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpAddrG, Dst: r, Sym: g.globalSym(d), Pos: ee.Pos()})
			return ir.R(r)
		case *ast.FuncDecl:
			r := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpAddrF, Dst: r, Sym: g.funcSym(d), Pos: ee.Pos()})
			return ir.R(r)
		}
		g.failf(ee.Pos(), "cannot take address of %s", ee.Name)
	case *ast.UnaryExpr:
		if ee.Op == token.Star {
			return g.materialize(g.rvalue(ee.X), ee.Pos())
		}
	case *ast.IndexExpr:
		base := g.rvalue(ee.X) // pointer or decayed array: an address
		idx := g.rvalue(ee.Index)
		elem := elemType(ee.X.TypeOf())
		return g.scaledAdd(base, idx, int64(sizeOf(elem)), ee.Pos())
	case *ast.MemberExpr:
		var base ir.Value
		if ee.Arrow {
			base = g.rvalue(ee.X)
		} else {
			base = g.lvalueAddr(ee.X)
		}
		return g.addOffset(base, int64(ee.Field.Offset), ee.Pos())
	}
	g.failf(e.Pos(), "expression is not an lvalue (%T)", e)
	return ir.None
}

func elemType(t types.Type) types.Type {
	switch tt := types.Decay(t).(type) {
	case *types.Ptr:
		return tt.Elem
	}
	return types.IntType
}

// scaledAdd returns base + idx*scale.
func (g *gen) scaledAdd(base, idx ir.Value, scale int64, pos token.Pos) ir.Value {
	if idx.Kind == ir.VKConst {
		return g.addOffset(base, idx.Imm*scale, pos)
	}
	scaled := idx
	if scale != 1 {
		c := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpConst, Dst: c, A: ir.C(scale), Pos: pos})
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpMul, Dst: r, A: g.materialize(idx, pos), B: ir.R(c), Pos: pos})
		scaled = ir.R(r)
	}
	r := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpAdd, Dst: r, A: g.materialize(base, pos), B: g.materialize(scaled, pos), Pos: pos})
	return ir.R(r)
}

// loadFrom loads a scalar of type t from the address.
func (g *gen) loadFrom(addr ir.Value, t types.Type, pos token.Pos) ir.Value {
	r := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpLoad, Dst: r, A: g.materialize(addr, pos), Size: accessSize(t), Pos: pos})
	return ir.R(r)
}

// globalSym returns the IL name of a global variable declaration.
func (g *gen) globalSym(d *ast.VarDecl) string {
	if name, ok := g.globals[d]; ok {
		return name
	}
	return d.Name
}

// rvalue evaluates e and returns its value.
func (g *gen) rvalue(e ast.Expr) ir.Value {
	switch ee := e.(type) {
	case *ast.IntLit:
		return ir.C(ee.Value)
	case *ast.StrLit:
		name := g.internString(ee.Value)
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpAddrG, Dst: r, Sym: name, Pos: ee.Pos()})
		return ir.R(r)
	case *ast.Ident:
		switch d := ee.Ref.(type) {
		case *ast.VarDecl:
			addr := g.lvalueAddr(ee)
			if isAggregate(d.Type) {
				return addr // arrays and structs decay to their address
			}
			return g.loadFrom(addr, d.Type, ee.Pos())
		case *ast.FuncDecl:
			r := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpAddrF, Dst: r, Sym: g.funcSym(d), Pos: ee.Pos()})
			return ir.R(r)
		}
		g.failf(ee.Pos(), "unresolved identifier %s", ee.Name)
	case *ast.UnaryExpr:
		return g.genUnary(ee)
	case *ast.PostfixExpr:
		return g.genIncDec(ee.X, ee.Op, true, ee.Pos())
	case *ast.BinaryExpr:
		return g.genBinary(ee)
	case *ast.AssignExpr:
		return g.genAssign(ee)
	case *ast.CondExpr:
		return g.genCond(ee)
	case *ast.CallExpr:
		return g.genCall(ee)
	case *ast.IndexExpr:
		addr := g.lvalueAddr(ee)
		if isAggregate(ee.TypeOf()) {
			return addr
		}
		return g.loadFrom(addr, ee.TypeOf(), ee.Pos())
	case *ast.MemberExpr:
		addr := g.lvalueAddr(ee)
		if isAggregate(ee.TypeOf()) {
			return addr
		}
		return g.loadFrom(addr, ee.TypeOf(), ee.Pos())
	case *ast.SizeofExpr:
		if ee.ArgType != nil {
			return ir.C(int64(ee.ArgType.Size()))
		}
		return ir.C(int64(sizeOf(ee.Arg.TypeOf())))
	case *ast.CastExpr:
		v := g.rvalue(ee.X)
		if ee.To.Kind() == types.Char {
			// Truncate to byte, keeping MiniC's unsigned-char model.
			m := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpConst, Dst: m, A: ir.C(0xff), Pos: ee.Pos()})
			r := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpAnd, Dst: r, A: g.materialize(v, ee.Pos()), B: ir.R(m), Pos: ee.Pos()})
			return ir.R(r)
		}
		return v
	case *ast.CommaExpr:
		g.rvalue(ee.X)
		return g.rvalue(ee.Y)
	}
	g.failf(e.Pos(), "unhandled expression %T", e)
	return ir.None
}

func (g *gen) genUnary(ee *ast.UnaryExpr) ir.Value {
	switch ee.Op {
	case token.Minus:
		v := g.rvalue(ee.X)
		if v.Kind == ir.VKConst {
			return ir.C(-v.Imm)
		}
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpNeg, Dst: r, A: v, Pos: ee.Pos()})
		return ir.R(r)
	case token.Tilde:
		v := g.rvalue(ee.X)
		if v.Kind == ir.VKConst {
			return ir.C(^v.Imm)
		}
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpNot, Dst: r, A: v, Pos: ee.Pos()})
		return ir.R(r)
	case token.Bang:
		v := g.rvalue(ee.X)
		if v.Kind == ir.VKConst {
			if v.Imm == 0 {
				return ir.C(1)
			}
			return ir.C(0)
		}
		z := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpConst, Dst: z, A: ir.C(0), Pos: ee.Pos()})
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpEq, Dst: r, A: v, B: ir.R(z), Pos: ee.Pos()})
		return ir.R(r)
	case token.Star:
		addr := g.rvalue(ee.X)
		t := ee.TypeOf()
		if t.Kind() == types.Pointer {
			if _, isFn := t.(*types.Ptr).Elem.(*types.FuncType); isFn {
				return addr // *fp is still the function pointer
			}
		}
		if isAggregate(t) {
			return g.materialize(addr, ee.Pos())
		}
		return g.loadFrom(addr, t, ee.Pos())
	case token.Amp:
		if id, ok := ee.X.(*ast.Ident); ok {
			if fd, isFn := id.Ref.(*ast.FuncDecl); isFn {
				r := g.fn.NewReg()
				g.emit(ir.Instr{Op: ir.OpAddrF, Dst: r, Sym: g.funcSym(fd), Pos: ee.Pos()})
				return ir.R(r)
			}
		}
		return g.lvalueAddr(ee.X)
	case token.PlusPlus, token.MinusMinus:
		return g.genIncDec(ee.X, ee.Op, false, ee.Pos())
	}
	g.failf(ee.Pos(), "unhandled unary operator %s", ee.Op)
	return ir.None
}

// genIncDec lowers ++/-- (postfix yields the old value).
func (g *gen) genIncDec(x ast.Expr, op token.Kind, postfix bool, pos token.Pos) ir.Value {
	addr := g.materialize(g.lvalueAddr(x), pos)
	t := x.TypeOf()
	old := g.loadFrom(addr, t, pos)
	step := int64(1)
	if pt, ok := types.Decay(t).(*types.Ptr); ok {
		step = int64(sizeOf(pt.Elem))
	}
	c := g.fn.NewReg()
	g.emit(ir.Instr{Op: ir.OpConst, Dst: c, A: ir.C(step), Pos: pos})
	nw := g.fn.NewReg()
	o := ir.OpAdd
	if op == token.MinusMinus {
		o = ir.OpSub
	}
	g.emit(ir.Instr{Op: o, Dst: nw, A: old, B: ir.R(c), Pos: pos})
	g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: ir.R(nw), Size: accessSize(t), Pos: pos})
	if postfix {
		return old
	}
	return ir.R(nw)
}

var binOps = map[token.Kind]ir.Op{
	token.Plus:    ir.OpAdd,
	token.Minus:   ir.OpSub,
	token.Star:    ir.OpMul,
	token.Slash:   ir.OpDiv,
	token.Percent: ir.OpRem,
	token.Amp:     ir.OpAnd,
	token.Pipe:    ir.OpOr,
	token.Caret:   ir.OpXor,
	token.Shl:     ir.OpShl,
	token.Shr:     ir.OpShr,
	token.EqEq:    ir.OpEq,
	token.NotEq:   ir.OpNe,
	token.Lt:      ir.OpLt,
	token.Le:      ir.OpLe,
	token.Gt:      ir.OpGt,
	token.Ge:      ir.OpGe,
}

func (g *gen) genBinary(ee *ast.BinaryExpr) ir.Value {
	switch ee.Op {
	case token.AndAnd, token.OrOr:
		// Produce 0/1 via short-circuit control flow.
		res := g.fn.NewReg()
		falseL := g.fn.NewLabel()
		endL := g.fn.NewLabel()
		if ee.Op == token.AndAnd {
			g.genCondBranch(ee.X, false, falseL)
			g.genCondBranch(ee.Y, false, falseL)
			g.emit(ir.Instr{Op: ir.OpConst, Dst: res, A: ir.C(1), Pos: ee.Pos()})
			g.emit(ir.Instr{Op: ir.OpJump, Label: endL, Pos: ee.Pos()})
			g.label(falseL, ee.Pos())
			g.emit(ir.Instr{Op: ir.OpConst, Dst: res, A: ir.C(0), Pos: ee.Pos()})
		} else {
			trueL := falseL
			g.genCondBranch(ee.X, true, trueL)
			g.genCondBranch(ee.Y, true, trueL)
			g.emit(ir.Instr{Op: ir.OpConst, Dst: res, A: ir.C(0), Pos: ee.Pos()})
			g.emit(ir.Instr{Op: ir.OpJump, Label: endL, Pos: ee.Pos()})
			g.label(trueL, ee.Pos())
			g.emit(ir.Instr{Op: ir.OpConst, Dst: res, A: ir.C(1), Pos: ee.Pos()})
		}
		g.label(endL, ee.Pos())
		return ir.R(res)
	}

	tx := types.Decay(ee.X.TypeOf())
	ty := types.Decay(ee.Y.TypeOf())
	x := g.rvalue(ee.X)
	y := g.rvalue(ee.Y)

	// Pointer arithmetic.
	if ee.Op == token.Plus || ee.Op == token.Minus {
		px, isPx := tx.(*types.Ptr)
		py, isPy := ty.(*types.Ptr)
		switch {
		case isPx && !isPy:
			if ee.Op == token.Minus {
				return g.pointerOffset(x, y, int64(sizeOf(px.Elem)), true, ee.Pos())
			}
			return g.scaledAdd(x, y, int64(sizeOf(px.Elem)), ee.Pos())
		case !isPx && isPy && ee.Op == token.Plus:
			return g.scaledAdd(y, x, int64(sizeOf(py.Elem)), ee.Pos())
		case isPx && isPy && ee.Op == token.Minus:
			d := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpSub, Dst: d, A: g.materialize(x, ee.Pos()), B: g.materialize(y, ee.Pos()), Pos: ee.Pos()})
			es := int64(sizeOf(px.Elem))
			if es == 1 {
				return ir.R(d)
			}
			c := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpConst, Dst: c, A: ir.C(es), Pos: ee.Pos()})
			q := g.fn.NewReg()
			g.emit(ir.Instr{Op: ir.OpDiv, Dst: q, A: ir.R(d), B: ir.R(c), Pos: ee.Pos()})
			return ir.R(q)
		}
	}

	op := binOps[ee.Op]
	// Constant fold trivially when both sides are constants.
	if x.Kind == ir.VKConst && y.Kind == ir.VKConst {
		if v, ok := foldBinary(op, x.Imm, y.Imm); ok {
			return ir.C(v)
		}
	}
	r := g.fn.NewReg()
	g.emit(ir.Instr{Op: op, Dst: r, A: g.materialize(x, ee.Pos()), B: g.materialize(y, ee.Pos()), Pos: ee.Pos()})
	return ir.R(r)
}

// pointerOffset computes ptr - idx*scale (sub true) or ptr + idx*scale.
func (g *gen) pointerOffset(base, idx ir.Value, scale int64, sub bool, pos token.Pos) ir.Value {
	scaled := idx
	if scale != 1 {
		c := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpConst, Dst: c, A: ir.C(scale), Pos: pos})
		m := g.fn.NewReg()
		g.emit(ir.Instr{Op: ir.OpMul, Dst: m, A: g.materialize(idx, pos), B: ir.R(c), Pos: pos})
		scaled = ir.R(m)
	}
	r := g.fn.NewReg()
	op := ir.OpAdd
	if sub {
		op = ir.OpSub
	}
	g.emit(ir.Instr{Op: op, Dst: r, A: g.materialize(base, pos), B: g.materialize(scaled, pos), Pos: pos})
	return ir.R(r)
}

// foldBinary evaluates op on constants; division by zero is left to run
// time so the interpreter reports it with position information.
func foldBinary(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << uint64(b&63), true
	case ir.OpShr:
		return int64(uint64(a) >> uint64(b&63)), true
	case ir.OpEq:
		return b2i(a == b), true
	case ir.OpNe:
		return b2i(a != b), true
	case ir.OpLt:
		return b2i(a < b), true
	case ir.OpLe:
		return b2i(a <= b), true
	case ir.OpGt:
		return b2i(a > b), true
	case ir.OpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (g *gen) genAssign(ee *ast.AssignExpr) ir.Value {
	t := ee.X.TypeOf()
	addr := g.materialize(g.lvalueAddr(ee.X), ee.Pos())

	if ee.Op == token.Assign {
		v := g.rvalue(ee.Y)
		if st, ok := t.(*types.StructType); ok {
			g.emitMemCopy(addr, g.materialize(v, ee.Pos()), st.Size(), ee.Pos())
			return v
		}
		g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: accessSize(t), Pos: ee.Pos()})
		return v
	}

	// Compound assignment: load, combine, store.
	old := g.loadFrom(addr, t, ee.Pos())
	y := g.rvalue(ee.Y)
	base := ee.Op.BaseOp()
	var nw ir.Value
	if pt, ok := types.Decay(t).(*types.Ptr); ok && (base == token.Plus || base == token.Minus) {
		nw = g.pointerOffset(old, y, int64(sizeOf(pt.Elem)), base == token.Minus, ee.Pos())
	} else {
		r := g.fn.NewReg()
		g.emit(ir.Instr{Op: binOps[base], Dst: r, A: old, B: g.materialize(y, ee.Pos()), Pos: ee.Pos()})
		nw = ir.R(r)
	}
	g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: nw, Size: accessSize(t), Pos: ee.Pos()})
	return nw
}

func (g *gen) genCond(ee *ast.CondExpr) ir.Value {
	res := g.fn.NewReg()
	elseL := g.fn.NewLabel()
	endL := g.fn.NewLabel()
	g.genCondBranch(ee.Cond, false, elseL)
	v1 := g.rvalue(ee.Then)
	g.emit(ir.Instr{Op: ir.OpMov, Dst: res, A: g.movOperand(v1, ee.Pos()), Pos: ee.Pos()})
	g.emit(ir.Instr{Op: ir.OpJump, Label: endL, Pos: ee.Pos()})
	g.label(elseL, ee.Pos())
	v2 := g.rvalue(ee.Else)
	g.emit(ir.Instr{Op: ir.OpMov, Dst: res, A: g.movOperand(v2, ee.Pos()), Pos: ee.Pos()})
	g.label(endL, ee.Pos())
	return ir.R(res)
}

// movOperand allows OpMov to take a constant directly.
func (g *gen) movOperand(v ir.Value, pos token.Pos) ir.Value {
	if v.Kind == ir.VKNone {
		return ir.C(0) // void value used in a value context (tolerated)
	}
	return v
}

func (g *gen) genCall(ee *ast.CallExpr) ir.Value {
	args := make([]ir.Value, len(ee.Args))
	for i, a := range ee.Args {
		args[i] = g.materialize(g.rvalue(a), a.Pos())
	}
	var dst ir.Reg = ir.NoReg
	hasResult := ee.TypeOf() != nil && !types.IsVoid(ee.TypeOf())
	if hasResult {
		dst = g.fn.NewReg()
	}
	if ee.Direct != nil {
		g.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Sym: g.funcSym(ee.Direct), Args: args, Pos: ee.Pos()})
	} else {
		fp := g.materialize(g.rvalue(ee.Fun), ee.Pos())
		g.emit(ir.Instr{Op: ir.OpCallPtr, Dst: dst, A: fp, Args: args, Pos: ee.Pos()})
	}
	if !hasResult {
		return ir.None
	}
	return ir.R(dst)
}
