package bench

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"inlinec"
	"inlinec/internal/callgraph"
	"inlinec/internal/inline"
	"inlinec/internal/interp"
	"inlinec/internal/obs"
)

// Config selects the experiment parameters. Zero values take the paper's
// defaults.
type Config struct {
	Inline   inlinec.Params
	Classify inlinec.ClassifyParams
	// MaxRuns caps the profiling runs per benchmark (0 = all). Useful for
	// quick tests; the full tables use every input.
	MaxRuns int
	// PostOptimize additionally runs the post-inline cleanup passes before
	// the final measurement (the paper did not; this is the ablation its
	// section 4.4 sketches).
	PostOptimize bool
	// Parallelism bounds the worker pools: RunAll runs up to this many
	// benchmarks concurrently, and each benchmark's profiling runs fan out
	// over the same number of workers (0 = all cores, 1 = serial). Results
	// are merged in suite and input order, so every setting produces the
	// same tables.
	Parallelism int
	// Engine selects the interpreter engine ("bytecode", the default when
	// empty, or "switch"). Both engines produce identical tables; the
	// wall-clock columns are what differ.
	Engine string
	// ProfileMode selects the profiling instrumentation mode ("full", the
	// default when empty, "minimal", or "sampled"). Full and minimal
	// produce identical tables; sampled tables are approximate. The
	// ProfileEvents/WeightErrPct columns record the overhead and accuracy
	// trade-off. The special mode "predicted" feeds the inline expander
	// synthesized weights (zero profiling runs behind its decisions) while
	// the before/after measurements still run fully instrumented — the
	// configuration the predictor's compile-time cost is tracked under;
	// its WeightErrPct column reports the predicted-vs-measured total
	// call-count error.
	ProfileMode string
	// SampleRate is the 1-in-k rate for the sampled mode (0 = the
	// interpreter's default rate).
	SampleRate int
}

// ModePredicted is the Config.ProfileMode value that drives the inline
// expander with synthesized weights (internal/predict) instead of the
// measured profile. It is a bench-level mode, not an interpreter
// instrumentation mode: measurements still run ProfileFull.
const ModePredicted = "predicted"

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		Inline:   inlinec.DefaultParams(),
		Classify: inlinec.DefaultClassifyParams(),
	}
}

// BenchResult holds everything the four tables need for one benchmark.
type BenchResult struct {
	Name      string
	InputDesc string
	// Engine is the interpreter engine the dynamic measurements ran on.
	Engine string
	// ProfileMode is the profiling instrumentation mode the measurements
	// used ("full", "minimal", or "sampled"), with SampleRate the
	// effective 1-in-k rate when sampled (0 otherwise).
	ProfileMode string
	SampleRate  int
	// ProfileEvents totals the profiling counter increments across both
	// profiling passes (before and after inlining) — the instrumentation
	// overhead the reduced modes exist to shrink.
	ProfileEvents int64
	// WeightErrPct is the pre-inline profile's total arc-weight error in
	// percent: |Σ site counts − exact total calls| / exact total calls.
	// Exactly 0 in full and minimal modes; bounded by the sampling rate
	// in sampled mode.
	WeightErrPct float64

	// Table 1: benchmark characteristics.
	CLines     int
	Runs       int
	AvgIL      float64 // dynamic IL count per typical run (pre-inline)
	AvgControl float64 // dynamic control transfers per run (pre-inline)
	AvgILAfter float64 // dynamic IL count per run after inline expansion
	// Seconds is the wall-clock cost of the whole methodology for this
	// benchmark (compile, two profiling passes, expansion, classification).
	Seconds float64
	// Phases breaks Seconds down by pipeline phase (frontend.parse,
	// profile, inline.expand, ...), summed across workers — concurrent
	// phases can exceed Seconds. Wall-clock like Seconds: compare
	// trends, not digits.
	Phases map[string]float64

	// Table 2/3: static and dynamic call-site characteristics.
	Classes callgraph.ClassCounts

	// Table 4: inline expansion results.
	CodeInc    float64    // fractional static code increase
	CallDec    float64    // fraction of dynamic calls eliminated
	ILPerCall  float64    // dynamic ILs between calls, after inlining
	CTPerCall  float64    // dynamic control transfers between calls, after
	PostMix    [4]float64 // post-inline dynamic call mix by class (fractions)
	Expansions int
	Result     *inline.Result
}

// RunOne executes the full methodology for one benchmark: profile the
// original, classify its call sites, inline with profile guidance,
// re-profile, and collect the table rows.
func RunOne(b *Benchmark, cfg Config) (*BenchResult, error) {
	start := time.Now()
	inputs := b.Inputs
	if cfg.MaxRuns > 0 && len(inputs) > cfg.MaxRuns {
		inputs = inputs[:cfg.MaxRuns]
	}
	// A per-benchmark registry keeps the phase breakdown isolated from
	// benchmarks running concurrently in RunAll.
	p, err := b.CompileObs(obs.NewRegistry())
	if err != nil {
		return nil, err
	}
	predicted := cfg.ProfileMode == ModePredicted
	p.Parallelism = cfg.Parallelism
	p.Engine = cfg.Engine
	if !predicted {
		// Predicted mode measures with full instrumentation; only the
		// expander's weights come from the predictor.
		p.ProfileMode = cfg.ProfileMode
		p.SampleRate = cfg.SampleRate
	}
	before, err := p.ProfileInputs(inputs...)
	if err != nil {
		return nil, fmt.Errorf("%s: profiling original: %w", b.Name, err)
	}

	engine := cfg.Engine
	if engine == "" {
		engine = interp.EngineBytecode
	}
	mode := cfg.ProfileMode
	if mode == "" {
		mode = interp.ProfileFull
	}
	rate := 0
	if mode == interp.ProfileSampled {
		rate = cfg.SampleRate
		if rate == 0 {
			rate = interp.DefaultSampleRate
		}
	}
	r := &BenchResult{
		Name:        b.Name,
		InputDesc:   b.InputDesc,
		Engine:      engine,
		ProfileMode: mode,
		SampleRate:  rate,
		CLines:      b.CLines(),
		Runs:        len(inputs),
		AvgIL:       before.AvgIL(),
		AvgControl:  before.AvgControl(),
	}
	guide := before
	if predicted {
		guide = p.PredictProfile()
		// Accuracy column: how far the synthesized calls-per-run total is
		// from the measured one.
		if before.TotalCalls > 0 && before.Runs > 0 && guide.Runs > 0 {
			measuredPerRun := float64(before.TotalCalls) / float64(before.Runs)
			predictedPerRun := float64(guide.TotalCalls) / float64(guide.Runs)
			r.WeightErrPct = 100 * math.Abs(predictedPerRun-measuredPerRun) / measuredPerRun
		}
	} else {
		// Arc-weight accuracy: the Calls total stays exact in every mode,
		// so comparing it against the (possibly rescaled) per-site sum
		// measures the sampling error directly.
		var siteSum int64
		for _, n := range before.SiteCounts {
			siteSum += n
		}
		if before.TotalCalls > 0 {
			diff := siteSum - before.TotalCalls
			if diff < 0 {
				diff = -diff
			}
			r.WeightErrPct = 100 * float64(diff) / float64(before.TotalCalls)
		}
	}

	// Tables 2 and 3: classification of the original module's call sites.
	g := p.CallGraph(guide)
	r.Classes = callgraph.Count(g.Classify(cfg.Classify))

	// Table 4: expand, optionally clean up, and re-measure.
	res, err := p.Inline(guide, cfg.Inline)
	if err != nil {
		return nil, fmt.Errorf("%s: inline expansion: %w", b.Name, err)
	}
	if cfg.PostOptimize {
		if err := p.Optimize(); err != nil {
			return nil, fmt.Errorf("%s: post-inline optimize: %w", b.Name, err)
		}
	}
	r.Result = res
	r.Expansions = res.NumExpansions
	r.CodeInc = float64(p.Module.TotalCodeSize()-res.OriginalSize) / float64(res.OriginalSize)

	after, err := p.ProfileInputs(inputs...)
	if err != nil {
		return nil, fmt.Errorf("%s: profiling inlined: %w", b.Name, err)
	}
	r.ProfileEvents = before.ProfileEvents + after.ProfileEvents
	r.AvgILAfter = after.AvgIL()
	if before.AvgCalls() > 0 {
		r.CallDec = (before.AvgCalls() - after.AvgCalls()) / before.AvgCalls()
	}
	if after.AvgCalls() > 0 {
		r.ILPerCall = after.AvgIL() / after.AvgCalls()
		r.CTPerCall = after.AvgControl() / after.AvgCalls()
	} else {
		r.ILPerCall = after.AvgIL()
		r.CTPerCall = after.AvgControl()
	}

	// Section 4.4: the class mix of the calls that remain after expansion.
	ga := p.CallGraph(after)
	cc := callgraph.Count(ga.Classify(cfg.Classify))
	total := cc.TotalDynamic()
	if total > 0 {
		for i := 0; i < 4; i++ {
			r.PostMix[i] = cc.Dynamic[i] / total
		}
	}
	r.Seconds = time.Since(start).Seconds()
	r.Phases = p.Obs.PhaseSeconds()
	return r, nil
}

// RunAll runs every benchmark, fanning the suite out over up to
// cfg.Parallelism workers (0 = all cores). Results come back in suite
// order — identical to a serial pass — and progress, if non-nil, is
// called with each benchmark name before it runs.
func RunAll(cfg Config, progress func(string)) ([]*BenchResult, error) {
	suite := Suite()
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(suite) {
		par = len(suite)
	}
	if par <= 1 {
		var out []*BenchResult
		for _, b := range suite {
			if progress != nil {
				progress(b.Name)
			}
			r, err := RunOne(b, cfg)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	results := make([]*BenchResult, len(suite))
	errs := make([]error, len(suite))
	var mu sync.Mutex // serializes the progress callback
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(suite) {
					return
				}
				if progress != nil {
					mu.Lock()
					progress(suite[i].Name)
					mu.Unlock()
				}
				results[i], errs[i] = RunOne(suite[i], cfg)
			}
		}()
	}
	wg.Wait()
	var out []*BenchResult
	for i := range suite {
		if errs[i] != nil {
			return out, errs[i]
		}
		out = append(out, results[i])
	}
	return out, nil
}

// Mean and SD over a column, as the paper's AVG/SD rows.
func meanSD(vals []float64) (mean, sd float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(vals)))
	return mean, sd
}
