// Package link merges separately compiled IL modules into one program,
// the prerequisite for the paper's link-time inline expansion (section
// 2.1: "because all functions are available at the link time, inline
// expansion can naturally be performed without sacrificing separate
// compilation"). The linker resolves cross-unit function and variable
// references, keeps unit-private (static) symbols distinct — the front
// end qualifies them with a unit tag — renumbers interned string
// literals, and reassigns globally unique call-site identifiers.
package link

import (
	"fmt"
	"sort"
	"strings"

	"inlinec/internal/ir"
)

// Error is a link failure (duplicate or undefined symbols).
type Error struct{ Msg string }

func (e *Error) Error() string { return "link: " + e.Msg }

func errorf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Link merges the units into a single runnable module named name.
// The inputs are not modified.
func Link(name string, units ...*ir.Module) (*ir.Module, error) {
	if len(units) == 0 {
		return nil, errorf("no input units")
	}
	out := ir.NewModule(name)

	// Pass 1: collect definitions and check for duplicates.
	funcDef := make(map[string]string)   // function -> defining unit
	globalDef := make(map[string]string) // global -> defining unit
	for _, u := range units {
		for _, f := range u.Funcs {
			if prev, dup := funcDef[f.Name]; dup {
				return nil, errorf("duplicate function %q (defined in %s and %s)", f.Name, prev, u.Name)
			}
			funcDef[f.Name] = u.Name
		}
		for _, g := range u.Globals {
			if isStringLit(g.Name) {
				continue // interned literals are renumbered, never conflict
			}
			if prev, dup := globalDef[g.Name]; dup {
				return nil, errorf("duplicate variable %q (defined in %s and %s)", g.Name, prev, u.Name)
			}
			globalDef[g.Name] = u.Name
		}
	}

	// Pass 2: copy units into the output, renaming string literals to a
	// fresh global numbering and deduplicating identical contents.
	strByContent := make(map[string]string)
	nextStr := 0
	for _, u := range units {
		cl := u.Clone() // unit copies are mutated freely below
		renames := make(map[string]string)
		for _, g := range cl.Globals {
			if !isStringLit(g.Name) {
				continue
			}
			content := string(g.Init)
			if existing, ok := strByContent[content]; ok {
				renames[g.Name] = existing
				continue
			}
			fresh := fmt.Sprintf(".str%d", nextStr)
			nextStr++
			strByContent[content] = fresh
			renames[g.Name] = fresh
		}
		// Rewrite this unit's references to its renamed literals first —
		// old and new names share the ".strN" namespace, so rewriting must
		// not touch globals that already carry their final names.
		for _, f := range cl.Funcs {
			for i := range f.Code {
				in := &f.Code[i]
				if in.Op == ir.OpAddrG {
					if nn, ok := renames[in.Sym]; ok {
						in.Sym = nn
					}
				}
			}
		}
		for _, g := range cl.Globals {
			for ri := range g.Relocs {
				if nn, ok := renames[g.Relocs[ri].Sym]; ok && !g.Relocs[ri].IsFunc {
					g.Relocs[ri].Sym = nn
				}
			}
		}
		for _, g := range cl.Globals {
			if isStringLit(g.Name) {
				target := renames[g.Name]
				if out.Global(target) != nil {
					continue // deduplicated against an earlier unit
				}
				ng := *g
				ng.Name = target
				out.AddGlobal(&ng)
				continue
			}
			out.AddGlobal(g)
		}
		for _, f := range cl.Funcs {
			out.AddFunc(f)
		}
		for name := range cl.AddressTaken {
			out.AddressTaken[name] = true
		}
		for name := range cl.ExternGlobals {
			out.ExternGlobals[name] = true
		}
	}

	// Pass 3: resolve externs. A function declared extern in one unit and
	// defined in another resolves silently: OpCall instructions refer by
	// name, so nothing to rewrite — only the extern table shrinks to the
	// names no unit defines (the true library externs).
	for _, u := range units {
		for _, e := range u.Externs {
			if out.Func(e.Name) == nil {
				out.AddExtern(e)
			}
		}
	}
	// Extern variables must be defined by exactly one unit.
	var undefined []string
	for name := range out.ExternGlobals {
		if out.Global(name) == nil {
			undefined = append(undefined, name)
		}
	}
	if len(undefined) > 0 {
		sort.Strings(undefined)
		return nil, errorf("undefined variable(s): %s", strings.Join(undefined, ", "))
	}

	if out.Func("main") == nil {
		return nil, errorf("no unit defines main")
	}

	// Fresh, globally unique call-site ids.
	for _, f := range out.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == ir.OpCall || f.Code[i].Op == ir.OpCallPtr {
				f.Code[i].CallID = 0
			}
		}
	}
	out.AssignCallIDs()
	if err := out.Verify(); err != nil {
		return nil, errorf("linked module invalid: %v", err)
	}
	return out, nil
}

// isStringLit reports whether the global is an interned string literal
// (front-end naming convention ".strN").
func isStringLit(name string) bool {
	return strings.HasPrefix(name, ".str")
}
