package profdb_test

import (
	"fmt"
	"strings"
	"testing"

	"inlinec"
	"inlinec/internal/profdb"
)

// srcV1 is the baseline program: poly calls add twice (ordinals 0 and 1)
// so stable keys must disambiguate repeated calls to the same callee.
const srcV1 = `int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int poly(int x) { return add(mul(x, x), add(x, 1)); }
int main() { int i; int s; s = 0; for (i = 0; i < 50; i++) { s = s + poly(i); } return s & 255; }
`

// srcV2 edits srcV1 the way real source drifts: a new function with a
// call is inserted ahead of everything (shifting every raw call-site id),
// and poly's second add call is gone (so one old key must be dropped, not
// misattributed to whichever site now owns its raw id).
const srcV2 = `int head(int x) { return mul(x, 2); }
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int poly(int x) { return add(mul(x, x), x + 1); }
int main() { int i; int s; s = 0; for (i = 0; i < 50; i++) { s = s + head(poly(i)); } return s & 255; }
`

func compileAndProfile(t *testing.T, src string, runs int) (*inlinec.Program, *inlinec.Profile) {
	t.Helper()
	p, err := inlinec.Compile("prog.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inputs := make([]inlinec.Input, runs)
	prof, err := p.ProfileInputs(inputs...)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return p, prof
}

func profileBytes(t *testing.T, prof *inlinec.Profile) string {
	t.Helper()
	var sb strings.Builder
	if _, err := prof.WriteTo(&sb); err != nil {
		t.Fatalf("profile write: %v", err)
	}
	return sb.String()
}

func dbBytes(t *testing.T, db *profdb.DB) string {
	t.Helper()
	var sb strings.Builder
	if _, err := db.WriteTo(&sb); err != nil {
		t.Fatalf("db write: %v", err)
	}
	return sb.String()
}

// TestSnapshotResolveExact proves the exact path is lossless: profile →
// snapshot → ingest → merge → resolve on the same module reproduces the
// in-process profile byte for byte.
func TestSnapshotResolveExact(t *testing.T) {
	p, prof := compileAndProfile(t, srcV1, 3)
	rec, err := p.Snapshot(prof, 0)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	db := profdb.NewDB("prog.c")
	if err := db.Ingest(rec); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	got, report := p.ProfileFromDB(db, profdb.DefaultMergeParams())
	if !report.Clean() {
		t.Fatalf("same-module consume reported staleness:\n%s", report)
	}
	if a, b := profileBytes(t, got), profileBytes(t, prof); a != b {
		t.Errorf("round-tripped profile differs:\n%s\nvs\n%s", a, b)
	}
}

// TestIngestOrderInvariance: the same record set ingested in any order
// serializes to an identical database and produces an identical inline
// decision list.
func TestIngestOrderInvariance(t *testing.T) {
	p, _ := compileAndProfile(t, srcV1, 1)
	var recs []*profdb.Record
	for i := 0; i < 4; i++ {
		// Distinct per-record run counts so order mistakes would show.
		_, prof := compileAndProfile(t, srcV1, i+1)
		rec, err := p.Snapshot(prof, i%2) // two generations
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		recs = append(recs, rec)
	}
	build := func(order []int) (*profdb.DB, string) {
		db := profdb.NewDB("prog.c")
		for _, i := range order {
			if err := db.Ingest(recs[i]); err != nil {
				t.Fatalf("ingest: %v", err)
			}
		}
		return db, dbBytes(t, db)
	}
	db1, ser1 := build([]int{0, 1, 2, 3})
	db2, ser2 := build([]int{3, 1, 0, 2})
	if ser1 != ser2 {
		t.Fatalf("serialized database depends on insertion order:\n%s\nvs\n%s", ser1, ser2)
	}
	decisions := func(db *profdb.DB) string {
		q, err := inlinec.Compile("prog.c", srcV1)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		prof, _ := q.ProfileFromDB(db, profdb.DefaultMergeParams())
		params := inlinec.DefaultParams()
		params.WeightThreshold = 1
		res, err := q.Inline(prof, params)
		if err != nil {
			t.Fatalf("inline: %v", err)
		}
		return fmt.Sprintf("%v\n%+v", res.Order, res.Decisions)
	}
	if d1, d2 := decisions(db1), decisions(db2); d1 != d2 {
		t.Errorf("decision list depends on insertion order:\n%s\nvs\n%s", d1, d2)
	}
}

// TestRoundTripSerialization: write → read → write is the identity.
func TestRoundTripSerialization(t *testing.T) {
	p1, prof1 := compileAndProfile(t, srcV1, 2)
	p2, prof2 := compileAndProfile(t, srcV2, 3)
	db := profdb.NewDB("prog.c")
	for gen, pair := range []struct {
		p    *inlinec.Program
		prof *inlinec.Profile
	}{{p1, prof1}, {p2, prof2}} {
		rec, err := pair.p.Snapshot(pair.prof, gen)
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		if err := db.Ingest(rec); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	ser := dbBytes(t, db)
	back, err := profdb.ReadDB(strings.NewReader(ser))
	if err != nil {
		t.Fatalf("read: %v\n%s", err, ser)
	}
	if ser2 := dbBytes(t, back); ser2 != ser {
		t.Errorf("round trip changed serialization:\n%s\nvs\n%s", ser, ser2)
	}
	if back.Program != "prog.c" || len(back.Records) != 2 {
		t.Errorf("round trip lost structure: program=%q records=%d", back.Program, len(back.Records))
	}
}

// TestStaleDetection is the misattribution test: a v1 profile consumed by
// the edited v2 program must land its weights on the right (caller,
// callee) arcs despite every raw id having shifted, and the key that no
// longer exists must be dropped and reported, not applied to whichever
// site inherited its raw id.
func TestStaleDetection(t *testing.T) {
	p1, prof1 := compileAndProfile(t, srcV1, 2)
	rec, err := p1.Snapshot(prof1, 0)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	db := profdb.NewDB("prog.c")
	if err := db.Ingest(rec); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	p2, err := inlinec.Compile("prog.c", srcV2)
	if err != nil {
		t.Fatalf("compile v2: %v", err)
	}
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("edited program has the same fingerprint")
	}
	// Trust the stale version fully so weights pass through unscaled and
	// are easy to check.
	params := profdb.MergeParams{StaleWeight: 1}
	prof2, report := p2.ProfileFromDB(db, params)
	if report.Clean() {
		t.Fatal("consuming a stale profile reported clean")
	}
	if report.Merge.ExactRecords != 0 || report.Merge.StaleRecords != 1 {
		t.Errorf("record accounting: %+v", report.Merge)
	}
	// poly's second call to add is gone in v2: exactly that key drops.
	if report.Resolve.DroppedSites != 1 {
		t.Errorf("dropped sites = %d, want 1 (%v)", report.Resolve.DroppedSites, report.Resolve.Dropped)
	}
	if len(report.Resolve.Dropped) != 1 || !strings.Contains(report.Resolve.Dropped[0], "poly add 1") {
		t.Errorf("dropped list: %v, want poly->add ordinal 1", report.Resolve.Dropped)
	}
	// The head insertion shifted every line, so survivors resolve as moved.
	if report.Resolve.MovedSites == 0 || report.Resolve.ExactSites != 0 {
		t.Errorf("site accounting: %+v", report.Resolve)
	}
	// No misattribution: every remapped weight sits on an arc whose
	// caller/callee match the stable key it came from. head's mul call
	// (new in v2, id-colliding with some v1 site) must carry no weight.
	g := p2.CallGraph(prof2)
	keys2 := profdb.ModuleKeys(p2.Module)
	for id, n := range prof2.SiteCounts {
		a := g.Arc(id)
		if a == nil {
			t.Fatalf("profile references unknown arc %d", id)
		}
		k, ok := keys2.Key(id)
		if !ok {
			t.Fatalf("no stable key for arc %d", id)
		}
		if a.Caller.Name != k.Caller {
			t.Errorf("weight %d attributed to caller %s, key says %s", n, a.Caller.Name, k.Caller)
		}
		if a.Caller.Name == "head" || a.Callee.Name == "head" {
			t.Errorf("stale profile put weight %d on v2-only function head (site %d)", n, id)
		}
	}
	// The surviving poly->add weight equals v1's inner add(x, 1) count
	// (100 calls over 2 runs), remapped onto v2's sole poly->add site.
	var polyAdd int64
	for id, n := range prof2.SiteCounts {
		if k, _ := keys2.Key(id); k.Caller == "poly" && k.Callee == "add" {
			polyAdd += n
		}
	}
	if polyAdd != 100 {
		t.Errorf("poly->add remapped weight = %d, want 100", polyAdd)
	}
}

// TestDecayFreshDominates: with a half-life set, newer generations carry
// exponentially more weight than older ones.
func TestDecayFreshDominates(t *testing.T) {
	p, prof := compileAndProfile(t, srcV1, 4)
	old, err := p.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := p.Snapshot(prof, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := profdb.NewDB("prog.c")
	if err := db.Ingest(old); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(fresh); err != nil {
		t.Fatal(err)
	}
	merged, _ := db.Merge(p.Fingerprint(), profdb.MergeParams{HalfLifeGens: 4})
	// gen 8 weighs 1, gen 0 weighs 0.5^(8/4) = 0.25: 4 + 1 runs.
	if merged.Runs != 5 {
		t.Errorf("decayed runs = %d, want 5 (4*1 + 4*0.25)", merged.Runs)
	}
	wantIL := int64(float64(prof.TotalIL)*1.25 + 0.5)
	if merged.IL != wantIL {
		t.Errorf("decayed IL = %d, want %d", merged.IL, wantIL)
	}
	// Without decay the two generations sum exactly.
	flat, _ := db.Merge(p.Fingerprint(), profdb.MergeParams{})
	if flat.Runs != 8 || flat.IL != 2*prof.TotalIL {
		t.Errorf("flat merge runs=%d IL=%d, want 8 and %d", flat.Runs, flat.IL, 2*prof.TotalIL)
	}
}

// TestStaleWeightZeroDrops: StaleWeight 0 removes other-version records
// entirely instead of down-weighting them.
func TestStaleWeightZeroDrops(t *testing.T) {
	p1, prof1 := compileAndProfile(t, srcV1, 2)
	p2, prof2 := compileAndProfile(t, srcV2, 3)
	db := profdb.NewDB("prog.c")
	r1, _ := p1.Snapshot(prof1, 0)
	r2, _ := p2.Snapshot(prof2, 0)
	if err := db.Ingest(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(r2); err != nil {
		t.Fatal(err)
	}
	merged, stats := db.Merge(p2.Fingerprint(), profdb.MergeParams{StaleWeight: 0})
	if stats.DroppedRecords != 1 || stats.StaleRecords != 0 {
		t.Errorf("stats %+v, want 1 dropped", stats)
	}
	if merged.Runs != 3 || merged.IL != prof2.TotalIL {
		t.Errorf("merge leaked stale data: runs=%d IL=%d", merged.Runs, merged.IL)
	}
}

// TestCompact folds generations without changing what a merge sees.
func TestCompact(t *testing.T) {
	p, prof := compileAndProfile(t, srcV1, 2)
	db := profdb.NewDB("prog.c")
	for gen := 0; gen < 3; gen++ {
		rec, err := p.Snapshot(prof, gen)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	params := profdb.MergeParams{HalfLifeGens: 2}
	before, _ := db.Merge(p.Fingerprint(), params)
	removed := db.Compact(params)
	if removed != 2 {
		t.Errorf("compact removed %d records, want 2", removed)
	}
	if len(db.Records) != 1 {
		t.Errorf("compacted store has %d records, want 1", len(db.Records))
	}
	after, _ := db.Merge(p.Fingerprint(), params)
	var a, b strings.Builder
	profdb.WriteSnapshot(&a, "prog.c", before)
	profdb.WriteSnapshot(&b, "prog.c", after)
	if a.String() != b.String() {
		t.Errorf("compaction changed the merged view:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestTruncatedRunsSurviveTheDB: exit()-truncated runs stay visible after
// snapshot/merge/resolve.
func TestTruncatedRunsSurviveTheDB(t *testing.T) {
	src := `extern void exit(int c);
int f(int x) { if (x > 2) { exit(7); } return x; }
int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) { s = s + f(i); } return s; }
`
	p, prof := compileAndProfile(t, src, 2)
	if prof.TotalTruncated != 2 {
		t.Fatalf("TotalTruncated = %d, want 2 (every run exits early)", prof.TotalTruncated)
	}
	rec, err := p.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := profdb.NewDB("t.c")
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	got, report := p.ProfileFromDB(db, profdb.DefaultMergeParams())
	if !report.Clean() {
		t.Fatalf("unexpected staleness: %s", report)
	}
	if got.TotalTruncated != 2 {
		t.Errorf("TotalTruncated after DB round trip = %d, want 2", got.TotalTruncated)
	}
	if !strings.Contains(got.String(), "truncated") {
		t.Errorf("Profile.String does not surface truncation:\n%s", got.String())
	}
}

// TestStrictDecoding: the DB and snapshot decoders reject duplicates,
// garbage, and structural errors with line-numbered messages.
func TestStrictDecoding(t *testing.T) {
	valid := "ILPROFDB 1\nprogram p.c\nrecord abcd 0\nruns 1\nil 10\nfunc main 1\nsite main f 0 00000000 5\nend\n"
	if _, err := profdb.ReadDB(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	bad := []struct{ name, in string }{
		{"empty", ""},
		{"magic", "NOPE 9\n"},
		{"dup scalar", "ILPROFDB 1\nrecord a 0\nruns 1\nruns 2\nend\n"},
		{"dup func", "ILPROFDB 1\nrecord a 0\nruns 1\nfunc f 1\nfunc f 2\nend\n"},
		{"dup site", "ILPROFDB 1\nrecord a 0\nruns 1\nsite a b 0 00000000 1\nsite a b 0 00000000 2\nend\n"},
		{"dup record", "ILPROFDB 1\nrecord a 0\nruns 1\nend\nrecord a 0\nruns 1\nend\n"},
		{"unterminated", "ILPROFDB 1\nrecord a 0\nruns 1\n"},
		{"end outside", "ILPROFDB 1\nend\n"},
		{"unknown directive", "ILPROFDB 1\nrecord a 0\nruns 1\nwat 3\nend\n"},
		{"trailing fields", "ILPROFDB 1\nrecord a 0\nruns 1 junk\nend\n"},
		{"no runs", "ILPROFDB 1\nrecord a 0\nil 5\nend\n"},
		{"bad poshash", "ILPROFDB 1\nrecord a 0\nruns 1\nsite a b 0 zz 1\nend\n"},
	}
	for _, c := range bad {
		if _, err := profdb.ReadDB(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadDB accepted %q", c.name, c.in)
		}
	}
	badSnap := []struct{ name, in string }{
		{"magic", "ILPROFDB 1\n"},
		{"no fingerprint", "ILPROFSNAP 1\nprogram p\ngen 0\nruns 1\n"},
		{"dup gen", "ILPROFSNAP 1\nfingerprint a\ngen 0\ngen 1\nruns 1\n"},
		{"no runs", "ILPROFSNAP 1\nfingerprint a\ngen 0\n"},
	}
	for _, c := range badSnap {
		if _, _, err := profdb.ReadSnapshot(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadSnapshot accepted %q", c.name, c.in)
		}
	}
}
