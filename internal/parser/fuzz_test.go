package parser

import (
	"testing"
)

// FuzzParse checks that arbitrary input never panics the front end —
// errors are the only acceptable failure mode. The seed corpus covers
// every syntactic construct; `go test` runs the seeds, `go test -fuzz`
// explores.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int f(int a, int b) { return a ? b : a; }",
		"struct S { int x; struct S *n; }; typedef struct S S;",
		"enum { A, B = 5 }; int g = A + B;",
		"int (*fp)(int); int (*tab[3])(char *);",
		"int f() { for (;;) { break; } while (0) ; do ; while (1); }",
		"int f(int x) { switch (x) { case 1: return 1; default: return 0; } }",
		"char *s = \"esc \\n \\x41 \\\\\"; char c = 'q';",
		"int f() { goto l; l: return 0; }",
		"extern int printf(char *fmt, ...);",
		"int a[3][4]; int *p = a;",
		"static int s; extern int e;",
		"int f() { int x; x = sizeof(int) + sizeof x; return (char)x; }",
		"int f() { return 0x7fffffffffffffff + 010 + 'a'; }",
		"/* unterminated", "int f( {", "\"open", "'", "#only a pragma\n",
		"int f() { x ||= 3; }", "}}}}", "((((", "int int int;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		// Must not panic; the error result is unconstrained.
		_, _ = Parse("fuzz.c", src)
	})
}
