// Package ir defines the three-address intermediate language (IL) used by
// this reproduction of the IMPACT-I inline expander. A function is a flat
// list of instructions over virtual registers, with label pseudo-
// instructions as branch targets — the representation the paper's
// measurements are defined on: "IL's" are dynamic executed instructions,
// "control transfers" are executed jumps and conditional branches (calls
// and returns counted separately).
//
// Named local variables live in a byte-addressed stack frame (so that &x
// works uniformly); virtual registers hold expression temporaries. Both
// are per-function and are renamed when a function body is inlined into a
// caller.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"inlinec/internal/token"
)

// Reg is a virtual register index within a function. NoReg means "no
// destination" (e.g. a void call).
type Reg int

// NoReg marks the absence of a destination register.
const NoReg Reg = -1

// Op is an IL opcode.
type Op int

// IL opcodes.
const (
	OpNop Op = iota
	OpLabel
	OpConst // Dst = A.Imm
	OpMov   // Dst = A
	OpAdd   // Dst = A + B
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg // Dst = -A
	OpNot // Dst = ^A
	OpEq  // Dst = A == B
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLoad    // Dst = mem[A], width Size
	OpStore   // mem[A] = B, width Size
	OpAddrG   // Dst = address of global A.Sym
	OpAddrL   // Dst = frame address of local slot A.Imm
	OpAddrF   // Dst = address of function A.Sym
	OpJump    // goto Label
	OpBr      // if A != 0 goto Label
	OpCall    // Dst = Callee(Args...)
	OpCallPtr // Dst = (*A)(Args...)
	OpRet     // return A (or nothing if A.Kind == VKNone)
)

var opNames = [...]string{
	OpNop: "nop", OpLabel: "label", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpLoad: "load", OpStore: "store",
	OpAddrG: "addrg", OpAddrL: "addrl", OpAddrF: "addrf",
	OpJump: "jump", OpBr: "br", OpCall: "call", OpCallPtr: "callptr",
	OpRet: "ret",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinary reports whether the op is a two-operand arithmetic/compare op.
func (o Op) IsBinary() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// ValueKind discriminates operand forms.
type ValueKind int

// Operand kinds.
const (
	VKNone  ValueKind = iota
	VKReg             // virtual register
	VKConst           // integer immediate
)

// Value is an instruction operand: a register or an immediate.
type Value struct {
	Kind ValueKind
	Reg  Reg
	Imm  int64
}

// R returns a register operand.
func R(r Reg) Value { return Value{Kind: VKReg, Reg: r} }

// C returns a constant operand.
func C(v int64) Value { return Value{Kind: VKConst, Imm: v} }

// None is the absent operand.
var None = Value{Kind: VKNone}

// String renders the operand.
func (v Value) String() string {
	switch v.Kind {
	case VKReg:
		return fmt.Sprintf("r%d", v.Reg)
	case VKConst:
		return fmt.Sprintf("#%d", v.Imm)
	}
	return "_"
}

// Instr is one IL instruction.
type Instr struct {
	Op   Op
	Dst  Reg   // destination register, NoReg if none
	A, B Value // operands
	// Size is the access width in bytes for OpLoad/OpStore (1 or 8).
	Size int
	// Label is the label id for OpLabel/OpJump/OpBr.
	Label int
	// Sym is the global name (OpAddrG), or function name (OpAddrF, OpCall).
	Sym string
	// Args are call arguments for OpCall/OpCallPtr.
	Args []Value
	// CallID is the unique static call-site identifier for OpCall/OpCallPtr;
	// assigned by Module.Finalize and kept unique across inlining.
	CallID int
	// Pos is the originating source position (best effort).
	Pos token.Pos
}

// IsReal reports whether the instruction is counted in code size and in
// dynamic IL counts (labels and nops are not).
func (in *Instr) IsReal() bool { return in.Op != OpLabel && in.Op != OpNop }

// String renders the instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpLabel:
		return fmt.Sprintf("L%d:", in.Label)
	case OpNop:
		return "  nop"
	case OpConst:
		return fmt.Sprintf("  r%d = #%d", in.Dst, in.A.Imm)
	case OpMov:
		return fmt.Sprintf("  r%d = %s", in.Dst, in.A)
	case OpNeg, OpNot:
		return fmt.Sprintf("  r%d = %s %s", in.Dst, in.Op, in.A)
	case OpLoad:
		return fmt.Sprintf("  r%d = load%d [%s]", in.Dst, in.Size, in.A)
	case OpStore:
		return fmt.Sprintf("  store%d [%s] = %s", in.Size, in.A, in.B)
	case OpAddrG:
		return fmt.Sprintf("  r%d = &%s", in.Dst, in.Sym)
	case OpAddrL:
		return fmt.Sprintf("  r%d = &local[%d]", in.Dst, in.A.Imm)
	case OpAddrF:
		return fmt.Sprintf("  r%d = &fn:%s", in.Dst, in.Sym)
	case OpJump:
		return fmt.Sprintf("  jump L%d", in.Label)
	case OpBr:
		return fmt.Sprintf("  br %s, L%d", in.A, in.Label)
	case OpCall:
		return fmt.Sprintf("  %s call %s(%s) #site%d", dstStr(in.Dst), in.Sym, argStr(in.Args), in.CallID)
	case OpCallPtr:
		return fmt.Sprintf("  %s callptr %s(%s) #site%d", dstStr(in.Dst), in.A, argStr(in.Args), in.CallID)
	case OpRet:
		if in.A.Kind == VKNone {
			return "  ret"
		}
		return fmt.Sprintf("  ret %s", in.A)
	}
	if in.Op.IsBinary() {
		return fmt.Sprintf("  r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
	return fmt.Sprintf("  %s ?", in.Op)
}

func dstStr(d Reg) string {
	if d == NoReg {
		return "     "
	}
	return fmt.Sprintf("r%d =", d)
}

func argStr(args []Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Slot is a named local variable in a function's stack frame.
type Slot struct {
	Name   string // path-qualified after inlining, e.g. "callee.x"
	Offset int    // byte offset within the frame
	Size   int
	Align  int
	// IsParam marks parameter slots; the interpreter stores incoming
	// arguments into them in order.
	IsParam bool
}

// Func is an IL function.
type Func struct {
	Name string
	// NumParams is the number of leading parameter slots.
	NumParams int
	Slots     []Slot
	NumRegs   int
	// FrameSize is the byte size of the frame (locals laid end to end,
	// aligned); this is the paper's "control stack usage" estimate.
	FrameSize int
	Code      []Instr
	// ReturnsValue records whether the function yields a value.
	ReturnsValue bool
	// SrcLines is the number of source lines spanned by the function body,
	// used for Table 1's "C lines" accounting.
	SrcLines int
	// NextLabel is the first unused label id (labels are function-local).
	NextLabel int
	// Inlined names the call path when this body was produced by inline
	// expansion (informational).
	Inlined []string
}

// CodeSize returns the number of real instructions, the paper's
// intermediate-code size metric.
func (f *Func) CodeSize() int {
	n := 0
	for i := range f.Code {
		if f.Code[i].IsReal() {
			n++
		}
	}
	return n
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewLabel allocates a fresh label id.
func (f *Func) NewLabel() int {
	l := f.NextLabel
	f.NextLabel++
	return l
}

// AddSlot appends a local slot with proper alignment and returns its index.
func (f *Func) AddSlot(name string, size, align int, isParam bool) int {
	off := alignUp(f.FrameSize, align)
	f.Slots = append(f.Slots, Slot{Name: name, Offset: off, Size: size, Align: align, IsParam: isParam})
	f.FrameSize = off + size
	return len(f.Slots) - 1
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Emit appends an instruction.
func (f *Func) Emit(in Instr) {
	f.Code = append(f.Code, in)
}

// LabelIndex builds a map from label id to instruction index.
func (f *Func) LabelIndex() map[int]int {
	m := make(map[int]int)
	for i := range f.Code {
		if f.Code[i].Op == OpLabel {
			m[f.Code[i].Label] = i
		}
	}
	return m
}

// Clone returns a deep copy of the function.
func (f *Func) Clone() *Func {
	nf := *f
	nf.Slots = append([]Slot(nil), f.Slots...)
	nf.Code = make([]Instr, len(f.Code))
	for i := range f.Code {
		nf.Code[i] = f.Code[i]
		if f.Code[i].Args != nil {
			nf.Code[i].Args = append([]Value(nil), f.Code[i].Args...)
		}
	}
	nf.Inlined = append([]string(nil), f.Inlined...)
	return &nf
}

// Reloc records that a pointer-sized cell within a global's initial data
// must be filled with the load-time address of a symbol: a global variable
// (IsFunc false) or a function (IsFunc true).
type Reloc struct {
	Offset int
	Sym    string
	IsFunc bool
	Addend int64
}

// Global is a module-level variable with optional initial bytes.
type Global struct {
	Name  string
	Size  int
	Align int
	// Init holds initial data; shorter than Size means zero-filled tail.
	Init []byte
	// Relocs are applied by the loader over Init.
	Relocs []Reloc
}

// Extern describes a function whose body is unavailable to the compiler
// (library routines and system calls — the paper's "external functions").
type Extern struct {
	Name      string
	NumParams int
	Variadic  bool
}

// Module is a compiled translation unit.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global
	Externs []Extern

	// AddressTaken lists functions whose addresses are used in
	// computations: the maximal callee set for calls through pointers.
	AddressTaken map[string]bool

	// ExternGlobals names variables declared `extern` without storage in
	// this unit; the linker must resolve each to a definition in another
	// unit before the module can run.
	ExternGlobals map[string]bool

	funcIndex   map[string]*Func
	globalIndex map[string]*Global
	externIndex map[string]int
	nextCallID  int
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:          name,
		AddressTaken:  make(map[string]bool),
		ExternGlobals: make(map[string]bool),
		funcIndex:     make(map[string]*Func),
		globalIndex:   make(map[string]*Global),
		externIndex:   make(map[string]int),
	}
}

// AddFunc appends a function to the module.
func (m *Module) AddFunc(f *Func) {
	m.Funcs = append(m.Funcs, f)
	m.funcIndex[f.Name] = f
}

// RemoveFunc deletes a function (used by unreachable-function elimination).
func (m *Module) RemoveFunc(name string) {
	for i, f := range m.Funcs {
		if f.Name == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			delete(m.funcIndex, name)
			return
		}
	}
}

// AddGlobal appends a global variable.
func (m *Module) AddGlobal(g *Global) {
	m.Globals = append(m.Globals, g)
	m.globalIndex[g.Name] = g
}

// AddExtern registers an external function.
func (m *Module) AddExtern(e Extern) {
	if _, ok := m.externIndex[e.Name]; ok {
		return
	}
	m.externIndex[e.Name] = len(m.Externs)
	m.Externs = append(m.Externs, e)
}

// Func returns the function with the name, or nil.
func (m *Module) Func(name string) *Func { return m.funcIndex[name] }

// Global returns the global with the name, or nil.
func (m *Module) Global(name string) *Global { return m.globalIndex[name] }

// IsExtern reports whether name is an external function.
func (m *Module) IsExtern(name string) bool {
	_, ok := m.externIndex[name]
	return ok
}

// HasExternCalls reports whether any function calls an external function.
// Under the paper's worst-case rules this forces conservative reachability.
func (m *Module) HasExternCalls() bool {
	for _, f := range m.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == OpCall && m.IsExtern(f.Code[i].Sym) {
				return true
			}
		}
	}
	return false
}

// AssignCallIDs gives every call instruction in the module a unique id.
// Ids already assigned (non-zero) are preserved; fresh ids continue from
// the maximum. The inliner calls this after splicing bodies so that
// duplicated call sites become distinct arcs.
func (m *Module) AssignCallIDs() {
	maxID := m.nextCallID
	for _, f := range m.Funcs {
		for i := range f.Code {
			if id := f.Code[i].CallID; id > maxID {
				maxID = id
			}
		}
	}
	next := maxID
	for _, f := range m.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if (in.Op == OpCall || in.Op == OpCallPtr) && in.CallID == 0 {
				next++
				in.CallID = next
			}
		}
	}
	m.nextCallID = next
}

// TotalCodeSize is the sum of all function code sizes.
func (m *Module) TotalCodeSize() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.CodeSize()
	}
	return n
}

// Clone deep-copies the module. The inline expander works on a clone so
// the caller keeps the original for before/after comparison.
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	for _, f := range m.Funcs {
		nm.AddFunc(f.Clone())
	}
	for _, g := range m.Globals {
		ng := *g
		ng.Init = append([]byte(nil), g.Init...)
		ng.Relocs = append([]Reloc(nil), g.Relocs...)
		nm.AddGlobal(&ng)
	}
	for _, e := range m.Externs {
		nm.AddExtern(e)
	}
	for k, v := range m.AddressTaken {
		nm.AddressTaken[k] = v
	}
	for k, v := range m.ExternGlobals {
		nm.ExternGlobals[k] = v
	}
	nm.nextCallID = m.nextCallID
	return nm
}

// String renders the whole module as IL assembly.
func (m *Module) String() string {
	var sb strings.Builder
	names := make([]string, 0, len(m.Globals))
	for _, g := range m.Globals {
		names = append(names, fmt.Sprintf("global %s[%d]", g.Name, g.Size))
	}
	sort.Strings(names)
	for _, n := range names {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&sb, "\nfunc %s (params=%d frame=%d regs=%d):\n",
			f.Name, f.NumParams, f.FrameSize, f.NumRegs)
		for i := range f.Code {
			sb.WriteString(f.Code[i].String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
