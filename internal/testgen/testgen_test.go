package testgen

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := Generate(seed, Options{})
		b := Generate(seed, Options{})
		if a != b {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
	if Generate(1, Options{}) == Generate(2, Options{}) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGenerateShape(t *testing.T) {
	src := Generate(42, Options{Funcs: 5, Recursion: true, Pointers: true})
	for _, frag := range []string{"int f0(", "int f4(", "int main()", "printf"} {
		if !strings.Contains(src, frag) {
			t.Errorf("generated program missing %q:\n%s", frag, src)
		}
	}
	// The call DAG constraint: f0 must not call any other generated
	// function (no lower-numbered callee exists).
	f0 := src[strings.Index(src, "int f0("):strings.Index(src, "int f1(")]
	for i := 1; i <= 4; i++ {
		if strings.Contains(f0, "f"+string(rune('0'+i))+"(") {
			t.Errorf("f0 calls f%d, breaking the DAG:\n%s", i, f0)
		}
	}
}

func TestGenerateFuncPtrSites(t *testing.T) {
	found := false
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(seed, Options{Funcs: 6, FuncPtrs: true})
		if strings.Contains(src, "int (*fp)(int, int)") {
			found = true
			if !strings.Contains(src, "= fp(") {
				t.Fatalf("seed %d: pointer declared but never called:\n%s", seed, src)
			}
		}
		// f0 has no lower-numbered callee, so it must never take a
		// function pointer — the dynamic graph stays acyclic.
		f0 := src[strings.Index(src, "int f0("):strings.Index(src, "int f1(")]
		if strings.Contains(f0, "fp = f") {
			t.Fatalf("seed %d: f0 routes a call through a pointer:\n%s", seed, f0)
		}
	}
	if !found {
		t.Error("no seed in 0..19 produced an indirect call site")
	}
}

func TestGenerateExternSites(t *testing.T) {
	sawAbs, sawPutchar := false, false
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(seed, Options{Funcs: 6, Extern: true})
		if strings.Contains(src, "abs(") {
			sawAbs = true
			if !strings.Contains(src, "extern int abs(") {
				t.Fatalf("seed %d: abs called without a declaration", seed)
			}
		}
		if strings.Contains(src, "putchar(65") {
			sawPutchar = true
		}
	}
	if !sawAbs || !sawPutchar {
		t.Errorf("extern coverage too thin: abs=%v putchar=%v", sawAbs, sawPutchar)
	}
	// Off by default: the flag gates both the calls and the declarations.
	if src := Generate(7, Options{Funcs: 6}); strings.Contains(src, "abs(") {
		t.Error("extern calls leaked into a default-shape program")
	}
}

func TestGenerateRecursionGuarded(t *testing.T) {
	// Every recursive call the generator emits must sit behind the
	// depth-capping guard.
	for seed := int64(0); seed < 30; seed++ {
		src := Generate(seed, Options{Funcs: 8, Recursion: true})
		for _, line := range strings.Split(src, "\n") {
			for i := 0; i < 8; i++ {
				self := "c = f" + string(rune('0'+i)) + "(x - 1"
				if strings.Contains(line, self) && !strings.Contains(line, "x < 30") {
					t.Fatalf("seed %d: unguarded recursion: %s", seed, line)
				}
			}
		}
	}
}
