// Command ilbench regenerates the paper's experimental tables over the
// twelve-benchmark suite:
//
//	ilbench              # all tables
//	ilbench -table 4     # one table (1, 2, 3, 4, or 4x)
//	ilbench -bench grep  # restrict to one benchmark
//	ilbench -threshold 100 -sizelimit 1.5 -postopt   # parameter overrides
//	ilbench -bench funcptrs -devirt-threshold 0.9 -partial-inline -maxcallee 40  # guarded expansion
//	ilbench -ablation    # design-choice studies (threshold/size/heuristic/order)
//	ilbench -icache      # instruction-cache sweep (conclusion's extension)
//	ilbench -parallel 1  # serial run (default 0 uses every core; same tables)
//	ilbench -engine switch          # the pre-bytecode oracle interpreter
//	ilbench -engine both -json      # both engines, one report (perf comparison)
//	ilbench -profile-mode all       # full/minimal/sampled profiling overhead comparison
//	ilbench -profile-mode sampled -samplerate 32   # one reduced mode only
//	ilbench -profile-mode predicted # profile-free: inline with synthesized weights
//	ilbench -agreement -bench espresso -minagree 80  # predicted-vs-measured decision diff
//	ilbench -json        # machine-readable results (see BENCH_baseline.json)
//	ilbench -bench espresso -baseline BENCH_baseline.json  # perf gate
//	ilbench -bench espresso -profdb 32   # profile-database ingest/merge benchmark
//	ilbench -fleet       # sharded ingest-tier load benchmark (single-node vs quorum fleet)
//	ilbench -fleet -fleet-nodes 5 -fleet-replicas 2 -fleet-ingests 20000
//	ilbench -cpuprofile cpu.pprof -memprofile mem.pprof    # hot-path profiling
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"inlinec/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderrW io.Writer) int {
	fs := flag.NewFlagSet("ilbench", flag.ContinueOnError)
	fs.SetOutput(stderrW)
	table := fs.String("table", "all", "table to print: 1, 2, 3, 4, 4x, or all")
	benchName := fs.String("bench", "", "run a single benchmark by name")
	threshold := fs.Float64("threshold", 10, "arc weight threshold")
	stackBound := fs.Int("stackbound", 4096, "stack bound in bytes for recursion hazard")
	sizeLimit := fs.Float64("sizelimit", 1.25, "program size limit factor")
	maxCallee := fs.Int("maxcallee", 0, "per-callee instruction limit (0 = unlimited)")
	partialInline := fs.Bool("partial-inline", false, "expand the hot entry region of callees over -maxcallee with a guarded fallback call")
	devirtThreshold := fs.Float64("devirt-threshold", 0, "devirtualize pointer-call sites whose dominant profiled target takes at least this fraction of resolved calls (0 = off)")
	maxRuns := fs.Int("runs", 0, "cap profiling runs per benchmark (0 = all)")
	parallel := fs.Int("parallel", 0, "worker count for benchmarks and profiling runs (0 = all cores, 1 = serial); any value yields identical tables")
	engine := fs.String("engine", "bytecode", "interpreter engine: bytecode, switch, or both (identical tables; different wall clock)")
	profileMode := fs.String("profile-mode", "full", "profiling instrumentation: full (alias measured), minimal, sampled, all (every instrumentation mode), or predicted (inline with synthesized weights; zero profiling runs behind the decisions)")
	sampleRate := fs.Int("samplerate", 0, "1-in-k rate for sampled profiling (0 = default rate)")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-benchmark results instead of the tables")
	postOpt := fs.Bool("postopt", false, "apply post-inline cleanup passes before measuring")
	profdbSnaps := fs.Int("profdb", 0, "also run the profile-database pipeline benchmark with this many snapshots (0 = off)")
	fleetRun := fs.Bool("fleet", false, "run the sharded ingest-tier load benchmark instead of the tables (single-node vs quorum fleet)")
	fleetNodes := fs.Int("fleet-nodes", 3, "storage nodes in the -fleet quorum configuration")
	fleetReplicas := fs.Int("fleet-replicas", 2, "replication factor in the -fleet quorum configuration")
	fleetIngests := fs.Int("fleet-ingests", 2000, "snapshot POSTs per -fleet configuration")
	fleetWorkers := fs.Int("fleet-workers", 8, "concurrent ingest clients for -fleet")
	agreement := fs.Bool("agreement", false, "diff predicted-vs-measured inlining decisions instead of running the tables")
	minAgree := fs.Float64("minagree", 0, "with -agreement, fail if the agreement score falls below this percentage")
	ablation := fs.Bool("ablation", false, "run the design-choice ablation studies instead of the tables")
	icache := fs.Bool("icache", false, "run the instruction-cache sweep instead of the tables")
	verbose := fs.Bool("v", false, "print per-benchmark progress and expansion details")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	baselinePath := fs.String("baseline", "", "compare per-run wall time against this -json report and fail on regression")
	maxRegress := fs.Float64("maxregress", 2.0, "allowed wall-time factor over -baseline before failing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			}
			f.Close()
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.Inline.WeightThreshold = *threshold
	cfg.Inline.StackBound = *stackBound
	cfg.Inline.SizeLimitFactor = *sizeLimit
	cfg.Inline.MaxCalleeSize = *maxCallee
	cfg.Inline.PartialInline = *partialInline
	cfg.Inline.DevirtThreshold = *devirtThreshold
	cfg.Classify.WeightThreshold = *threshold
	cfg.Classify.StackBound = *stackBound
	cfg.MaxRuns = *maxRuns
	cfg.PostOptimize = *postOpt
	cfg.Parallelism = *parallel

	var engines []string
	switch *engine {
	case "", "bytecode", "switch":
		engines = []string{*engine}
	case "both":
		engines = []string{"bytecode", "switch"}
	default:
		fmt.Fprintf(stderrW, "ilbench: unknown engine %q (want bytecode, switch, or both)\n", *engine)
		return 2
	}
	cfg.Engine = engines[0]

	var modes []string
	switch *profileMode {
	case "", "full", "minimal", "sampled", bench.ModePredicted:
		modes = []string{*profileMode}
	case "measured":
		modes = []string{"full"}
	case "all":
		modes = []string{"full", "minimal", "sampled"}
	default:
		fmt.Fprintf(stderrW, "ilbench: unknown profile mode %q (want full/measured, minimal, sampled, predicted, or all)\n", *profileMode)
		return 2
	}
	cfg.ProfileMode = modes[0]
	cfg.SampleRate = *sampleRate

	if *ablation {
		report, err := bench.AblationReport(cfg)
		if err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, report)
		return 0
	}
	if *icache {
		report, err := bench.ICacheReport(
			[]string{"cccp", "compress", "eqn", "espresso", "grep", "yacc"},
			[]int{256, 512, 1024, 2048}, cfg)
		if err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, report)
		return 0
	}

	if *fleetRun {
		name := "espresso"
		if *benchName != "" {
			name = *benchName
		}
		// Two configurations with identical load: the single node prices
		// the bare WAL-fsync ack, the quorum fleet adds sharding and
		// replication on top.
		configs := [][2]int{{1, 1}, {*fleetNodes, *fleetReplicas}}
		var fleetResults []*bench.FleetResult
		for _, nr := range configs {
			r, err := bench.RunFleet(name, nr[0], nr[1], *fleetWorkers, *fleetIngests, cfg)
			if err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
				return 1
			}
			fleetResults = append(fleetResults, r)
		}
		if *jsonOut {
			data, err := bench.MarshalResultsFull(nil, cfg.Parallelism, nil, fleetResults)
			if err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
				return 1
			}
			stdout.Write(data)
			return 0
		}
		for _, r := range fleetResults {
			fmt.Fprint(stdout, r)
		}
		return 0
	}

	if *agreement {
		names := []string{"espresso"}
		if *benchName != "" {
			names = []string{*benchName}
		}
		var agrResults []*bench.AgreementResult
		for _, name := range names {
			b := bench.Get(name)
			if b == nil {
				fmt.Fprintf(stderrW, "ilbench: unknown benchmark %q (have %v)\n", name, bench.SuiteNames())
				return 2
			}
			r, err := bench.RunAgreement(b, cfg, nil)
			if err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
				return 1
			}
			agrResults = append(agrResults, r)
		}
		if *jsonOut {
			data, err := bench.MarshalResultsAgreement(nil, cfg.Parallelism, nil, nil, agrResults)
			if err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
				return 1
			}
			stdout.Write(data)
		} else {
			for _, r := range agrResults {
				fmt.Fprint(stdout, r)
			}
		}
		if *minAgree > 0 {
			for _, r := range agrResults {
				if r.ScorePct < *minAgree {
					fmt.Fprintf(stderrW, "ilbench: %s agreement %.1f%% below the %.1f%% floor\n",
						r.Name, r.ScorePct, *minAgree)
					return 1
				}
			}
			fmt.Fprintf(stderrW, "ilbench: agreement at or above the %.1f%% floor\n", *minAgree)
		}
		return 0
	}

	var results []*bench.BenchResult
	var err error
	progress := func(name string) {
		if *verbose {
			fmt.Fprintf(stderrW, "running %s...\n", name)
		}
	}
outer:
	for _, eng := range engines {
		cfg.Engine = eng
		for _, mode := range modes {
			cfg.ProfileMode = mode
			if *benchName != "" {
				b := bench.Get(*benchName)
				if b == nil {
					fmt.Fprintf(stderrW, "ilbench: unknown benchmark %q (have %v)\n", *benchName, bench.SuiteNames())
					return 2
				}
				progress(b.Name)
				var r *bench.BenchResult
				r, err = bench.RunOne(b, cfg)
				if r != nil {
					results = append(results, r)
				}
			} else {
				var rs []*bench.BenchResult
				rs, err = bench.RunAll(cfg, progress)
				results = append(results, rs...)
			}
			if err != nil {
				break outer
			}
		}
	}
	cfg.Engine = engines[0]
	cfg.ProfileMode = modes[0]
	if err != nil {
		fmt.Fprintf(stderrW, "ilbench: %v\n", err)
		return 1
	}

	if *baselinePath != "" {
		base, err := bench.ReadReport(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			return 1
		}
		if err := bench.CheckRegression(results, base, *maxRegress); err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderrW, "ilbench: wall time within %.1fx of %s\n", *maxRegress, *baselinePath)
	}

	var pdbResults []*bench.ProfDBResult
	if *profdbSnaps > 0 {
		names := []string{"espresso"}
		if *benchName != "" {
			names = []string{*benchName}
		}
		for _, name := range names {
			r, err := bench.RunProfDB(name, *profdbSnaps, cfg)
			if err != nil {
				fmt.Fprintf(stderrW, "ilbench: %v\n", err)
				return 1
			}
			pdbResults = append(pdbResults, r)
		}
	}

	if *jsonOut {
		data, err := bench.MarshalResultsProfDB(results, cfg.Parallelism, pdbResults)
		if err != nil {
			fmt.Fprintf(stderrW, "ilbench: %v\n", err)
			return 1
		}
		stdout.Write(data)
		return 0
	}

	switch *table {
	case "1":
		fmt.Fprint(stdout, bench.Table1(results))
	case "2":
		fmt.Fprint(stdout, bench.Table2(results))
	case "3":
		fmt.Fprint(stdout, bench.Table3(results))
	case "4":
		fmt.Fprint(stdout, bench.Table4(results))
	case "4x":
		fmt.Fprint(stdout, bench.Table4x(results))
	default:
		fmt.Fprint(stdout, bench.AllTables(results))
	}
	if t := bench.OverheadTable(results); t != "" {
		fmt.Fprintf(stdout, "\n%s", t)
	}
	for _, r := range pdbResults {
		fmt.Fprintf(stdout, "\n%s", r)
	}
	if *verbose {
		for _, r := range results {
			fmt.Fprintf(stdout, "\n--- %s: %d expansions, cache hit rate %.0f%%\n%s",
				r.Name, r.Expansions, 100*r.Result.Cache.HitRate(), r.Result)
		}
	}
	return 0
}
