package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("burst_total", "help").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("burst_total"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	r.Gauge("depth", "help").Set(3.5)
	var sb bytes.Buffer
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE burst_total counter", "burst_total 8000",
		"# TYPE depth gauge", "depth 3.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Add(1)
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.StartSpan("p")()
	if r.PhaseSeconds() != nil || r.Spans() != nil {
		t.Error("nil registry returned non-nil data")
	}
	var sb bytes.Buffer
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry wrote %q", sb.String())
	}
}

func TestHistogramBucketsAndExport(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	var sb bytes.Buffer
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram export missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "", "code", "200", "method", "GET").Add(2)
	// Same label set, different argument order: must be the same series.
	r.Counter("reqs_total", "", "method", "GET", "code", "200").Add(3)
	if got := r.CounterValue("reqs_total", "code", "200", "method", "GET"); got != 5 {
		t.Errorf("labelled counter = %d, want 5", got)
	}
	var sb bytes.Buffer
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `reqs_total{code="200",method="GET"} 5`) {
		t.Errorf("bad label rendering:\n%s", sb.String())
	}
}

func TestPrometheusExportDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "").Add(1)
	r.Counter("a_total", "").Add(2)
	r.Gauge("m", "").Set(7)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var a, b bytes.Buffer
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Error("two exports of an unchanged registry differ")
	}
	if strings.Index(a.String(), "a_total") > strings.Index(a.String(), "z_total") {
		t.Errorf("families not sorted by name:\n%s", a.String())
	}
}

func TestSpansAndChromeTrace(t *testing.T) {
	r := NewRegistry()
	end := r.StartSpan("parse")
	time.Sleep(time.Millisecond)
	end()
	r.StartSpanWorker("expand", 3)()
	phases := r.PhaseSeconds()
	if phases["parse"] <= 0 {
		t.Errorf("parse phase seconds = %v, want > 0", phases["parse"])
	}
	var sb bytes.Buffer
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(sb.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event ph = %v, want X", ev["ph"])
		}
	}
}

func TestInlineTraceJSONLRoundTrip(t *testing.T) {
	events := []ArcEvent{
		{Site: 3, Caller: "main", Callee: "hot", Weight: 120, Outcome: OutcomeExpanded,
			Cost: &CostTerms{Weight: 120, Threshold: 10, CalleeSize: 9, ProgSize: 100, SizeLimit: 125}},
		{Site: 7, Caller: "main", Callee: "cold", Weight: 2, Outcome: OutcomeRejected,
			Reason: ReasonWeightThreshold, Detail: "weight below threshold",
			Cost: &CostTerms{Weight: 2, Threshold: 10}},
		{Site: 9, Caller: "hot", Callee: "main", Weight: 50, Outcome: OutcomeNotExpandable,
			Reason: ReasonLinearOrder, Detail: "callee does not precede caller"},
	}
	var sb bytes.Buffer
	if err := WriteInlineTraceJSONL(&sb, events); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Errorf("JSONL has %d lines, want 3", got)
	}
	back, err := ReadInlineTraceJSONL(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip lost events: %d", len(back))
	}
	for i := range events {
		if back[i].Site != events[i].Site || back[i].Reason != events[i].Reason ||
			back[i].Outcome != events[i].Outcome {
			t.Errorf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
	report := FormatInlineReport([]string{"hot", "cold", "main"}, events)
	for _, want := range []string{
		"linear order (3 functions)", "expanded (1 arcs",
		"weight_threshold", "linear_order", "not expandable (1 arcs",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRequestLog(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	rl := NewRequestLog(&logBuf, reg, "/stats")
	h := rl.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/stats"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("missing X-Request-Id header")
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	for _, k := range []string{"ts", "id", "method", "path", "status", "dur_ms"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("log line missing %q: %s", k, lines[0])
		}
	}
	if got := reg.CounterValue("http_requests_total", "method", "GET", "path", "/stats", "code", "200"); got != 1 {
		t.Errorf("request counter = %d, want 1", got)
	}
	// Unknown paths collapse to "other" in metric labels (bounded
	// cardinality) but keep the raw path in the log line.
	if got := reg.CounterValue("http_requests_total", "method", "GET", "path", "other", "code", "404"); got != 1 {
		t.Errorf("404 counter = %d, want 1", got)
	}
	if got := reg.CounterValue("http_requests_total", "method", "GET", "path", "/missing", "code", "404"); got != 0 {
		t.Errorf("raw-path 404 counter = %d, want 0 (should be normalized)", got)
	}
	if err := json.Unmarshal([]byte(lines[1]), &doc); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if doc["path"] != "/missing" {
		t.Errorf("log line path = %v, want raw /missing", doc["path"])
	}
}

// TestScrapeDuringRegistration drives WritePrometheus concurrently with
// first-seen registrations of new label sets (counters and lazily
// created histograms). Under -race this pins down the scrape/registry
// races: the export must snapshot family state under the lock, and a
// histogram must be fully constructed before its instance is visible.
func TestScrapeDuringRegistration(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	scraperExited := make(chan struct{})
	go func() {
		defer close(scraperExited)
		for {
			select {
			case <-done:
				return
			default:
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := "/p" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				r.Counter("scrape_race_total", "", "path", p).Inc()
				r.Histogram("scrape_race_seconds", "", nil, "path", p).Observe(0.01)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	<-scraperExited
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hwm", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i <= 1000; i++ {
				g.SetMax(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Errorf("high-water mark = %v, want 8000", got)
	}
	g.SetMax(7) // lower value must not regress it
	if got := g.Value(); got != 8000 {
		t.Errorf("SetMax regressed high-water mark to %v", got)
	}
}
