package sema

import "testing"

func TestCheckGlobalInitFunctionAddress(t *testing.T) {
	p := mustCheck(t, `
int cb(int x) { return x; }
int (*fp)(int) = cb;
int (*tbl[2])(int) = { cb, cb };
`)
	found := false
	for fd := range p.AddressTaken {
		if fd.Name == "cb" {
			found = true
		}
	}
	if !found {
		t.Error("global initializer use must mark cb address-taken")
	}
}

func TestCheckGlobalInitForms(t *testing.T) {
	mustCheck(t, `
int neg = -(3);
int inv = ~0x0f;
char tag = 'q';
`)
	wantError(t, `int weird = "str"[0];`, "constant")
	wantError(t, `struct S { int a; }; struct S s = 3;`, "constant")
}

func TestCheckExternVariables(t *testing.T) {
	p := mustCheck(t, `
extern int shared;
int use() { return shared + 1; }
`)
	if len(p.Globals) != 1 || !p.Globals[0].IsExtern {
		t.Errorf("extern global not recorded: %+v", p.Globals)
	}
}

func TestCheckPointerCallResolution(t *testing.T) {
	p := mustCheck(t, `
typedef int (*Fn)(int);
int id(int x) { return x; }
int call_var(Fn f) { return f(3); }
int call_deref(Fn f) { return (*f)(4); }
int main() { return call_var(id) + call_deref(id); }
`)
	// Direct must be set only for plain named calls.
	_ = p
}

func TestCheckVarargsMismatch(t *testing.T) {
	wantError(t, `
extern int printf(char *fmt, ...);
int f() { return printf(); }
`, "number of arguments")
}

func TestCheckStructReturnByValueForbidden(t *testing.T) {
	// MiniC permits struct params? Parameters decay only arrays; struct
	// params would need copy-in. The checker rejects the unsupported
	// aggregate return; struct pointers are the supported idiom.
	mustCheck(t, `
struct P { int x; };
int get(struct P *p) { return p->x; }
`)
}

func TestCheckForScopeIsolation(t *testing.T) {
	// A name declared in a for-init is invisible after the loop.
	wantError(t, `
int f() {
    for (int i = 0; i < 3; i++) ;
    return i;
}
`, "undefined")
}

func TestCheckCondExprTypes(t *testing.T) {
	mustCheck(t, `char *pick(int c, char *a, char *b) { return c ? a : b; }`)
	mustCheck(t, `char *orNull(int c, char *a) { return c ? a : 0; }`)
	mustCheck(t, `int mix(int c) { return c ? 'x' : 7; }`)
	wantError(t, `
struct S { int a; };
int f(int c) { struct S s; return c ? s : 1; }
`, "mismatched conditional")
}

func TestCheckAssignToArray(t *testing.T) {
	wantError(t, `
int f() {
    int a[3]; int b[3];
    a = b;
    return 0;
}
`, "array")
}

func TestCheckAddressOfRvalue(t *testing.T) {
	wantError(t, `int f(int x) { int *p; p = &(x + 1); return *p; }`, "address")
}
