package lexer

import (
	"testing"
	"testing/quick"

	"inlinec/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("t.c", src)
	if len(errs) > 0 {
		t.Fatalf("unexpected lexical errors: %v", errs[0])
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestLexOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.Plus, "-": token.Minus, "*": token.Star, "/": token.Slash,
		"%": token.Percent, "&": token.Amp, "|": token.Pipe, "^": token.Caret,
		"~": token.Tilde, "!": token.Bang, "<<": token.Shl, ">>": token.Shr,
		"<": token.Lt, ">": token.Gt, "<=": token.Le, ">=": token.Ge,
		"==": token.EqEq, "!=": token.NotEq, "&&": token.AndAnd, "||": token.OrOr,
		"++": token.PlusPlus, "--": token.MinusMinus, "->": token.Arrow,
		".": token.Dot, "...": token.Ellipsis,
		"+=": token.PlusEq, "-=": token.MinusEq, "*=": token.StarEq,
		"/=": token.SlashEq, "%=": token.PercentEq, "&=": token.AmpEq,
		"|=": token.PipeEq, "^=": token.CaretEq, "<<=": token.ShlEq,
		">>=": token.ShrEq, "=": token.Assign,
		"(": token.LParen, ")": token.RParen, "{": token.LBrace,
		"}": token.RBrace, "[": token.LBracket, "]": token.RBracket,
		",": token.Comma, ";": token.Semi, ":": token.Colon, "?": token.Question,
	}
	for src, want := range cases {
		ks := kinds(t, src)
		if len(ks) != 2 || ks[0] != want || ks[1] != token.EOF {
			t.Errorf("lex(%q) = %v, want [%v EOF]", src, ks, want)
		}
	}
}

func TestLexMaximalMunch(t *testing.T) {
	// ">>=" must lex as one token, "a+++b" as a ++ + b (C's munch rule).
	ks := kinds(t, "x >>= 1; a+++b;")
	want := []token.Kind{
		token.Ident, token.ShrEq, token.Int, token.Semi,
		token.Ident, token.PlusPlus, token.Plus, token.Ident, token.Semi,
		token.EOF,
	}
	if len(ks) != len(want) {
		t.Fatalf("got %v, want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v (all: %v)", i, ks[i], want[i], ks)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, _ := ScanAll("t.c", "int intx returnval while whiles")
	want := []token.Kind{token.KwInt, token.Ident, token.Ident, token.KwWhile, token.Ident, token.EOF}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d (%q): got %v, want %v", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestLexIntegerLiterals(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "42": 42, "0x2a": 42, "0X2A": 42, "010": 8, "0xff": 255,
		"'a'": 97, "'\\n'": 10, "'\\0'": 0, "'\\\\'": 92, "'\\x41'": 65,
		"100L": 100, "7u": 7,
	}
	for src, want := range cases {
		toks, errs := ScanAll("t.c", src)
		if len(errs) > 0 {
			t.Errorf("lex(%q): %v", src, errs[0])
			continue
		}
		if toks[0].Kind != token.Int || toks[0].Val != want {
			t.Errorf("lex(%q) = %v val %d, want Int %d", src, toks[0].Kind, toks[0].Val, want)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	// Note \x consumes every following hex digit, as in C, so the third
	// literal stops the escape with a non-hex character.
	toks, errs := ScanAll("t.c", `"a\tb\n" "q\"q" "\x41G"`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	want := []string{"a\tb\n", `q"q`, "AG"}
	for i, w := range want {
		if toks[i].Kind != token.String || toks[i].Str != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Str, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	ks := kinds(t, "a /* block \n comment */ b // line\nc\n# pragma line\nd")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.Ident, token.EOF}
	if len(ks) != len(want) {
		t.Fatalf("got %v, want 4 idents", ks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := ScanAll("f.c", "a\n  bb\n\tc")
	type pos struct{ line, col int }
	want := []pos{{1, 1}, {2, 3}, {3, 2}}
	for i, w := range want {
		if toks[i].Pos.Line != w.line || toks[i].Pos.Col != w.col {
			t.Errorf("token %d at %d:%d, want %d:%d",
				i, toks[i].Pos.Line, toks[i].Pos.Col, w.line, w.col)
		}
	}
	if toks[0].Pos.File != "f.c" {
		t.Errorf("file = %q", toks[0].Pos.File)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"`",               // illegal character
		`"unterminated`,   // unterminated string
		"'",               // unterminated char
		"/* never closed", // unterminated comment
		"089",             // bad octal digit
	}
	for _, src := range cases {
		_, errs := ScanAll("t.c", src)
		if len(errs) == 0 {
			t.Errorf("lex(%q): expected an error", src)
		}
	}
}

// TestLexQuickIdentifiers: any generated identifier-shaped string lexes to
// exactly one Ident (or keyword) token plus EOF, with the original text.
func TestLexQuickIdentifiers(t *testing.T) {
	f := func(raw uint64, length uint8) bool {
		const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_0123456789"
		n := int(length%20) + 1
		buf := make([]byte, n)
		x := raw
		for i := range buf {
			idx := int(x % 53) // letters and '_' only for the first char rule
			buf[i] = chars[idx]
			x = x*6364136223846793005 + 1442695040888963407
		}
		toks, errs := ScanAll("q.c", string(buf))
		if len(errs) > 0 || len(toks) != 2 {
			return false
		}
		k := toks[0].Kind
		if k == token.Ident {
			return toks[0].Text == string(buf)
		}
		_, isKw := token.Keywords[string(buf)]
		return isKw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLexQuickIntRoundTrip: any non-negative int64 formatted as decimal
// lexes back to the same value.
func TestLexQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		if v < 0 { // MinInt64
			v = 0
		}
		src := formatInt(v)
		toks, errs := ScanAll("q.c", src)
		return len(errs) == 0 && toks[0].Kind == token.Int && toks[0].Val == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
