// Microbenchmarks for the parallel table-regeneration passes: wave-
// scheduled physical expansion and the concurrent per-function cleanup
// pipelines. The workload is synthetic — many same-shaped callers
// absorbing a pool of leaf functions — so the expansion DAG has one wide
// wave and the worker pool actually has work to spread.
package inlinec_test

import (
	"fmt"
	"strings"
	"testing"

	"inlinec"
	"inlinec/internal/callgraph"
	"inlinec/internal/inline"
	"inlinec/internal/opt"
)

// expandWorkloadSrc builds a MiniC program with nLeaf leaf functions and
// nCaller callers that each call callsPer leaves. Leaves are sized to
// pass the per-callee limit below and callers to fail it, so expansion
// splices every caller<-leaf arc but never folds callers into main.
func expandWorkloadSrc(nLeaf, nCaller, callsPer int) string {
	var sb strings.Builder
	sb.WriteString("extern int printf(char *fmt, ...);\n")
	for l := 0; l < nLeaf; l++ {
		fmt.Fprintf(&sb, "int leaf%d(int x) {\n    int a; int b;\n    a = x + %d; b = x ^ %d;\n", l, l, l*3+1)
		for s := 0; s < 30; s++ {
			fmt.Fprintf(&sb, "    a = a * 3 + b + %d; b = (b ^ a) + %d;\n", s, s*7+l)
		}
		sb.WriteString("    return a + b;\n}\n")
	}
	for c := 0; c < nCaller; c++ {
		fmt.Fprintf(&sb, "int caller%d(int x) {\n    int s; int t;\n    s = x; t = x + %d;\n", c, c)
		for s := 0; s < 60; s++ {
			fmt.Fprintf(&sb, "    s = s * 5 + t + %d; t = (t ^ s) - %d;\n", s, s+c)
		}
		for k := 0; k < callsPer; k++ {
			fmt.Fprintf(&sb, "    s += leaf%d(s + %d);\n", (c+k)%nLeaf, k)
		}
		sb.WriteString("    return s + t;\n}\n")
	}
	sb.WriteString("int main() {\n    int s;\n    s = 0;\n")
	for c := 0; c < nCaller; c++ {
		fmt.Fprintf(&sb, "    s += caller%d(%d);\n", c, c)
	}
	sb.WriteString("    printf(\"%d\\n\", s);\n    return 0;\n}\n")
	return sb.String()
}

const (
	benchLeaves         = 12
	benchCallers        = 64
	benchCallsPerCaller = 10
)

func expandWorkloadParams() inlinec.Params {
	p := inlinec.DefaultParams()
	p.WeightThreshold = 1
	p.SizeLimitFactor = 12
	p.MaxCalleeSize = 700 // above the ~620-instr leaves, below the ~1300-instr callers
	return p
}

// workloadProgram compiles and profiles the workload once.
func workloadProgram(b *testing.B) (*inlinec.Program, *inlinec.Profile) {
	b.Helper()
	p := inlinec.MustCompile("workload.c", expandWorkloadSrc(benchLeaves, benchCallers, benchCallsPerCaller))
	prof, err := p.ProfileInputs(inlinec.Input{})
	if err != nil {
		b.Fatal(err)
	}
	return p, prof
}

// BenchmarkInlineExpand times the full expansion procedure (linearize,
// select, wave-scheduled splice, verify) at several worker counts on a
// pristine clone each iteration. The selection and verification phases
// are serial, so the speedup is bounded below the splice-phase scaling.
func BenchmarkInlineExpand(b *testing.B) {
	base, prof := workloadProgram(b)
	for _, par := range []int{1, 2, 4, 8} {
		params := expandWorkloadParams()
		params.Parallelism = par
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mod := base.Original.Clone()
				g := callgraph.Build(mod, prof)
				b.StartTimer()
				res, err := inline.Expand(mod, g, prof, params)
				if err != nil {
					b.Fatal(err)
				}
				if want := benchCallers * benchCallsPerCaller; res.NumExpansions != want {
					b.Fatalf("workload shape drifted: %d expansions, want %d", res.NumExpansions, want)
				}
			}
		})
	}
}

// BenchmarkOptimize times the post-inline cleanup pipelines over the
// fully expanded workload module at several worker counts. The passes
// are function-local, so this is the pure scaling of the concurrent
// optimizer.
func BenchmarkOptimize(b *testing.B) {
	base, prof := workloadProgram(b)
	params := expandWorkloadParams()
	params.Parallelism = 1
	if _, err := base.Inline(prof, params); err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mod := base.Module.Clone()
				b.StartTimer()
				opt.PostInlineParallel(mod, par)
			}
		})
	}
}
