package profile

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample(il, calls int64, sites map[int]int64, funcs map[string]int64) *RunStats {
	rs := NewRunStats()
	rs.IL = il
	rs.Control = il / 10
	rs.Calls = calls
	rs.Returns = calls
	for k, v := range sites {
		rs.SiteCounts[k] = v
	}
	for k, v := range funcs {
		rs.FuncCounts[k] = v
	}
	return rs
}

func TestProfileAveraging(t *testing.T) {
	p := NewProfile()
	p.Add(sample(1000, 40, map[int]int64{1: 30, 2: 10}, map[string]int64{"f": 30, "main": 1}))
	p.Add(sample(3000, 60, map[int]int64{1: 50, 3: 10}, map[string]int64{"f": 50, "main": 1}))

	if p.Runs != 2 {
		t.Fatalf("runs = %d", p.Runs)
	}
	if got := p.AvgIL(); got != 2000 {
		t.Errorf("AvgIL = %v, want 2000", got)
	}
	if got := p.AvgCalls(); got != 50 {
		t.Errorf("AvgCalls = %v, want 50", got)
	}
	if got := p.SiteWeight(1); got != 40 {
		t.Errorf("site 1 weight = %v, want 40", got)
	}
	if got := p.SiteWeight(2); got != 5 {
		t.Errorf("site 2 weight = %v, want 5 (present in one of two runs)", got)
	}
	if got := p.SiteWeight(999); got != 0 {
		t.Errorf("unknown site weight = %v, want 0", got)
	}
	if got := p.FuncWeight("f"); got != 40 {
		t.Errorf("func f weight = %v, want 40", got)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := NewProfile()
	if p.AvgIL() != 0 || p.AvgCalls() != 0 || p.SiteWeight(1) != 0 {
		t.Error("empty profile must average to zero")
	}
}

func TestMaxStackIsHighWater(t *testing.T) {
	p := NewProfile()
	a := NewRunStats()
	a.MaxStack = 100
	b := NewRunStats()
	b.MaxStack = 50
	p.Add(a)
	p.Add(b)
	if p.MaxStack != 100 {
		t.Errorf("MaxStack = %d, want high-water 100", p.MaxStack)
	}
}

func TestProfileString(t *testing.T) {
	p := NewProfile()
	p.Add(sample(500, 20, nil, map[string]int64{"hot": 15, "cold": 1}))
	s := p.String()
	if !strings.Contains(s, "hot") || !strings.Contains(s, "cold") {
		t.Errorf("summary missing functions:\n%s", s)
	}
	// Hot functions print before cold ones.
	if strings.Index(s, "hot") > strings.Index(s, "cold") {
		t.Errorf("functions not sorted by weight:\n%s", s)
	}
}

// TestQuickAveragingLinear: averaging N identical runs yields the run's
// own counts, for arbitrary counts.
func TestQuickAveragingLinear(t *testing.T) {
	f := func(il int64, calls int64, n uint8) bool {
		// Keep counts small enough that runs×count cannot overflow and
		// the float average is exact.
		il &= (1 << 40) - 1
		calls &= (1 << 30) - 1
		runs := int(n%7) + 1
		p := NewProfile()
		for i := 0; i < runs; i++ {
			p.Add(sample(il, calls, map[int]int64{7: calls}, nil))
		}
		return p.AvgIL() == float64(il) &&
			p.AvgCalls() == float64(calls) &&
			p.SiteWeight(7) == float64(calls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
