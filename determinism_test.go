package inlinec

import (
	"strings"
	"testing"

	"inlinec/internal/inline"
	"inlinec/internal/testgen"
)

// TestDeterministicExecution: the interpreter is exact — identical inputs
// give identical statistics, not just identical output.
func TestDeterministicExecution(t *testing.T) {
	src := testgen.Generate(31, testgen.Options{Funcs: 8, Recursion: true})
	p, err := Compile("d.c", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(Input{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(Input{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stdout != b.Stdout || a.Stats.IL != b.Stats.IL ||
		a.Stats.Control != b.Stats.Control || a.Stats.Calls != b.Stats.Calls ||
		a.Stats.MaxStack != b.Stats.MaxStack {
		t.Errorf("two runs differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for id, n := range a.Stats.SiteCounts {
		if b.Stats.SiteCounts[id] != n {
			t.Errorf("site %d count %d vs %d", id, n, b.Stats.SiteCounts[id])
		}
	}
}

// TestDeterministicInlining: the expander's decisions are reproducible,
// including the linear order and the decision list.
func TestDeterministicInlining(t *testing.T) {
	src := testgen.Generate(77, testgen.Options{Funcs: 9})
	decide := func() *Result {
		p, err := Compile("d.c", src)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 2.0
		res, err := p.Inline(prof, params)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := decide(), decide()
	if strings.Join(r1.Order, ",") != strings.Join(r2.Order, ",") {
		t.Errorf("linear orders differ:\n%v\n%v", r1.Order, r2.Order)
	}
	if len(r1.Decisions) != len(r2.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(r1.Decisions), len(r2.Decisions))
	}
	for i := range r1.Decisions {
		if r1.Decisions[i] != r2.Decisions[i] {
			t.Errorf("decision %d differs: %+v vs %+v", i, r1.Decisions[i], r2.Decisions[i])
		}
	}
	if r1.FinalSize != r2.FinalSize {
		t.Errorf("final sizes differ: %d vs %d", r1.FinalSize, r2.FinalSize)
	}
}

// TestDensityOrderingUnderTightBudget: with a budget too small for every
// hot arc, density ordering (weight per instruction) must fit at least as
// many eliminated calls per added instruction as raw weight ordering.
func TestDensityOrderingUnderTightBudget(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
/* tiny, hot: superb density */
int inc(int x) { return x + 1; }
/* large, equally hot: poor density */
int wide(int x) {
    int a, b, c, d, e;
    a = x + 1; b = a * 3; c = b ^ a; d = c - b; e = d & 0xff;
    a = e << 2; b = a | d; c = b % 97; d = c + e; e = d * b;
    return (a + b + c + d + e) & 0xffff;
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 500; i++) { s += inc(i); s ^= wide(i); }
    printf("%d\n", s);
    return 0;
}
`
	measure := func(density bool) (callsAfter float64, expanded []string) {
		p, err := Compile("density.c", src)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 1.15 // room for the small callee only
		params.OrderByDensity = density
		res, err := p.Inline(prof, params)
		if err != nil {
			t.Fatal(err)
		}
		after, err := p.ProfileInputs(Input{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Expanded {
			expanded = append(expanded, d.Callee)
		}
		return after.AvgCalls(), expanded
	}

	// Raw weight ordering ties (both arcs weight 500) and may pick the
	// wide callee first, exhausting the budget; density ordering must pick
	// the small callee.
	densityCalls, densityExpanded := measure(true)
	if len(densityExpanded) == 0 || densityExpanded[0] != "inc" {
		t.Errorf("density ordering picked %v, want inc first", densityExpanded)
	}
	weightCalls, _ := measure(false)
	if densityCalls > weightCalls {
		t.Errorf("density ordering eliminated fewer calls under the same budget: %v vs %v",
			densityCalls, weightCalls)
	}
	_ = inline.HeuristicProfile // document the related knob's package
}
