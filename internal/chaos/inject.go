package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// InjectedError marks every failure the injector fabricates, so tests
// and log scrapes can tell deliberate chaos from real faults.
type InjectedError struct {
	Op string
}

func (e *InjectedError) Error() string { return "chaos: injected " + e.Op + " failure" }

// Config sets the per-operation fault probabilities (0..1) for an
// Injector. The zero value injects nothing.
type Config struct {
	Seed int64
	// WriteErr fails a Write after delivering only a prefix (short write).
	WriteErr float64
	// SyncErr fails Sync without flushing — the write-ahead ack barrier's
	// worst enemy.
	SyncErr float64
	// RenameErr fails Rename without touching the namespace.
	RenameErr float64
	// TornRename destroys atomicity: the destination ends up with a
	// half-written copy of the source and the operation reports failure —
	// the crash-mid-rename state recovery must survive.
	TornRename float64
	// OpenErr fails Open/Create/OpenAppend.
	OpenErr float64
}

// ParseConfig reads a -chaos-fs flag spec: comma-separated key=value
// pairs, e.g. "seed=7,write=0.05,sync=0.05,rename=0.02,torn=0.02,open=0.01".
func ParseConfig(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		key, val := parts[0], parts[1]
		if key == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q", val)
			}
			cfg.Seed = n
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return cfg, fmt.Errorf("chaos: bad probability %q for %q (want 0..1)", val, key)
		}
		switch key {
		case "write":
			cfg.WriteErr = p
		case "sync":
			cfg.SyncErr = p
		case "rename":
			cfg.RenameErr = p
		case "torn":
			cfg.TornRename = p
		case "open":
			cfg.OpenErr = p
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	return cfg, nil
}

// Injector wraps an FS and makes it fail deterministically: the same
// seed and operation sequence produce the same faults. Injected errors
// are all *InjectedError.
type Injector struct {
	fs  FS
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	disabled bool
	Injected int // faults delivered so far
}

// NewInjector wraps fs with seeded fault injection.
func NewInjector(fs FS, cfg Config) *Injector {
	return &Injector{fs: fs, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetEnabled toggles injection at runtime (recovery paths are typically
// exercised with injection off after a crash).
func (in *Injector) SetEnabled(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disabled = !on
}

// hit consumes one random draw for op; the draw happens even when the
// fault misses so schedules stay aligned across code changes.
func (in *Injector) hit(p float64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	v := in.rng.Float64()
	if in.disabled || p <= 0 {
		return false
	}
	if v < p {
		in.Injected++
		return true
	}
	return false
}

// frac returns a deterministic fraction for sizing short writes/tears.
func (in *Injector) frac() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

func (in *Injector) Open(name string) (File, error) {
	if in.hit(in.cfg.OpenErr) {
		return nil, &InjectedError{Op: "open"}
	}
	f, err := in.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

func (in *Injector) Create(name string) (File, error) {
	if in.hit(in.cfg.OpenErr) {
		return nil, &InjectedError{Op: "create"}
	}
	f, err := in.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

func (in *Injector) OpenAppend(name string) (File, error) {
	if in.hit(in.cfg.OpenErr) {
		return nil, &InjectedError{Op: "open-append"}
	}
	f, err := in.fs.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

// Rename injects two distinct failure modes: a clean failure (namespace
// untouched) and a torn rename, where the destination is replaced by a
// truncated copy of the source before the error is reported — the state
// a crash in the middle of a non-atomic rename leaves behind.
func (in *Injector) Rename(oldpath, newpath string) error {
	if in.hit(in.cfg.RenameErr) {
		return &InjectedError{Op: "rename"}
	}
	if in.hit(in.cfg.TornRename) {
		if err := in.tear(oldpath, newpath); err == nil {
			return &InjectedError{Op: "torn rename"}
		}
		return &InjectedError{Op: "rename"}
	}
	return in.fs.Rename(oldpath, newpath)
}

// tear clobbers newpath with a prefix of oldpath's content and removes
// oldpath, via the underlying FS so no fresh faults fire mid-tear.
func (in *Injector) tear(oldpath, newpath string) error {
	src, err := in.fs.Open(oldpath)
	if err != nil {
		return err
	}
	var data []byte
	buf := make([]byte, 32<<10)
	for {
		n, rerr := src.Read(buf)
		data = append(data, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	src.Close()
	keep := int(in.frac() * float64(len(data)))
	dst, err := in.fs.Create(newpath)
	if err != nil {
		return err
	}
	dst.Write(data[:keep])
	dst.Sync()
	dst.Close()
	in.fs.Remove(oldpath)
	return nil
}

func (in *Injector) Remove(name string) error {
	return in.fs.Remove(name)
}

func (in *Injector) Size(name string) (int64, error) {
	return in.fs.Size(name)
}

func (in *Injector) SyncDir(dir string) error {
	if in.hit(in.cfg.SyncErr) {
		return &InjectedError{Op: "dir sync"}
	}
	return in.fs.SyncDir(dir)
}

type injectedFile struct {
	in *Injector
	f  File
}

func (jf *injectedFile) Read(p []byte) (int, error) { return jf.f.Read(p) }

func (jf *injectedFile) Write(p []byte) (int, error) {
	if jf.in.hit(jf.in.cfg.WriteErr) {
		// Short write: a prefix lands in the cache, then the error.
		n := int(jf.in.frac() * float64(len(p)))
		if n > 0 {
			jf.f.Write(p[:n])
		}
		return n, &InjectedError{Op: "write"}
	}
	return jf.f.Write(p)
}

func (jf *injectedFile) Sync() error {
	if jf.in.hit(jf.in.cfg.SyncErr) {
		// The data stays cached and unsynced — a later crash may lose it.
		return &InjectedError{Op: "sync"}
	}
	return jf.f.Sync()
}

func (jf *injectedFile) Close() error { return jf.f.Close() }
