// Link-time inline expansion: the paper's section 2.1 weighs performing
// expansion at compile time (program structure visible, but separate
// compilation suffers) against link time (every function body available).
// This example compiles a two-unit program separately, links it, and
// shows that hot calls across the unit boundary — invisible to any
// per-unit compiler — are expanded once the linker has merged the bodies.
package main

import (
	"fmt"
	"log"

	"inlinec"
)

// A string library unit: the app below can only see these through extern
// declarations until link time.
const strlibSrc = `
int sl_length(char *s) {
    int n;
    n = 0;
    while (s[n]) n++;
    return n;
}

int sl_hash(char *s) {
    int h;
    h = 5381;
    while (*s) { h = h * 33 + *s; s++; }
    return h & 0x7fffffff;
}

/* unit-private helper: stays out of the app's namespace */
static int classify(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= '0' && c <= '9') return 2;
    return 0;
}

int sl_letters(char *s) {
    int n;
    n = 0;
    while (*s) { if (classify(*s) == 1) n++; s++; }
    return n;
}
`

const appSrc = `
extern int printf(char *fmt, ...);
extern int sl_length(char *s);
extern int sl_hash(char *s);
extern int sl_letters(char *s);

char *samples[4] = { "inline", "expansion", "call graph", "profile42" };

int main() {
    int i; int round; int hashes; int letters; int chars;
    hashes = 0;
    letters = 0;
    chars = 0;
    for (round = 0; round < 500; round++) {
        for (i = 0; i < 4; i++) {
            hashes ^= sl_hash(samples[i]);
            letters += sl_letters(samples[i]);
            chars += sl_length(samples[i]);
        }
    }
    printf("hashes=%d letters=%d chars=%d\n", hashes, letters, chars);
    return 0;
}
`

func main() {
	lib, err := inlinec.CompileUnit("strlib.c", strlibSrc)
	if err != nil {
		log.Fatal(err)
	}
	app, err := inlinec.CompileUnit("app.c", appSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("units: strlib (%d fns, %d IL), app (%d fns, %d IL)\n",
		len(lib.Module.Funcs), lib.Module.TotalCodeSize(),
		len(app.Module.Funcs), app.Module.TotalCodeSize())

	prog, err := inlinec.LinkUnits("prog", lib, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked: %d fns, %d IL, externs left: %d (true library calls)\n",
		len(prog.Module.Funcs), prog.Module.TotalCodeSize(), len(prog.Module.Externs))

	prof, err := prog.ProfileInputs(inlinec.Input{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %.0f dynamic calls\n", prof.AvgCalls())

	params := inlinec.DefaultParams()
	params.SizeLimitFactor = 2.0
	res, err := prog.Inline(prof, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-unit expansions:")
	for _, d := range res.Expanded {
		fmt.Printf("  %s <- %s (weight %.0f)\n", d.Caller, d.Callee, d.Weight)
	}

	after, err := prog.ProfileInputs(inlinec.Input{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := prog.Run(inlinec.Input{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: %.0f dynamic calls, code %+.1f%%\n", after.AvgCalls(), 100*res.CodeIncrease())
	fmt.Printf("program output: %s", out.Stdout)
}
