package profdb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"inlinec/internal/profile"
)

// Record is the unit the database stores and the wire unit ilprofd
// ingests: the totals of one or more runs of one program version
// (Fingerprint) collected at one generation, with arc weights keyed by
// stable SiteKeys. All fields are sums (MaxStack is a max), so ingesting
// the same set of records in any order produces the same database.
type Record struct {
	// Fingerprint identifies the program version the runs executed.
	Fingerprint string
	// Gen is the producer-stamped generation (a batch/epoch counter, e.g.
	// a CI build number). Age decay is computed from generation distance,
	// so fresh generations dominate merged profiles; stamping is the
	// producer's job precisely so that the database stays independent of
	// ingestion order.
	Gen int

	Runs      int
	IL        int64
	Control   int64
	Calls     int64
	Returns   int64
	Extern    int64
	Ptr       int64
	Truncated int64
	MaxStack  int64

	Funcs map[string]int64
	Sites map[SiteKey]int64
	// Targets holds the per-target resolution counts of pointer-call
	// sites (site key -> resolved target function -> count), the data
	// behind guarded devirtualization. Absent for direct sites, so old
	// databases without target lines parse — and re-serialize — as-is.
	Targets map[SiteKey]map[string]int64

	// SampleRate records how the runs behind this record were counted:
	// 0 means exact (full or minimal profile mode), k > 0 means sampled
	// 1-in-k and rescaled, and -1 means runs with differing rates were
	// merged into one record, so the effective rate is no longer a single
	// number. It combines, never sums.
	SampleRate int
}

// NewRecord returns an empty record for one (fingerprint, generation).
func NewRecord(fingerprint string, gen int) *Record {
	return &Record{
		Fingerprint: fingerprint,
		Gen:         gen,
		Funcs:       make(map[string]int64),
		Sites:       make(map[SiteKey]int64),
		Targets:     make(map[SiteKey]map[string]int64),
	}
}

// addTarget accumulates one per-target count, allocating the inner map
// on first use.
func (r *Record) addTarget(k SiteKey, target string, n int64) {
	m := r.Targets[k]
	if m == nil {
		m = make(map[string]int64)
		r.Targets[k] = m
	}
	m[target] += n
}

// add accumulates another record's counts (same fingerprint and gen).
func (r *Record) add(o *Record) {
	r.Runs += o.Runs
	r.IL += o.IL
	r.Control += o.Control
	r.Calls += o.Calls
	r.Returns += o.Returns
	r.Extern += o.Extern
	r.Ptr += o.Ptr
	r.Truncated += o.Truncated
	if o.MaxStack > r.MaxStack {
		r.MaxStack = o.MaxStack
	}
	for f, n := range o.Funcs {
		r.Funcs[f] += n
	}
	for k, n := range o.Sites {
		r.Sites[k] += n
	}
	for k, targets := range o.Targets {
		for t, n := range targets {
			r.addTarget(k, t, n)
		}
	}
	r.SampleRate = combineSampleRates(r.SampleRate, o.SampleRate, r.Runs-o.Runs, o.Runs)
}

// sortedTargetKeys returns the site keys with per-target data in on-disk
// order, skipping empty inner maps so they never affect serialization.
func (r *Record) sortedTargetKeys() []SiteKey {
	keys := make([]SiteKey, 0, len(r.Targets))
	for k := range r.Targets {
		if len(r.Targets[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return siteKeyLess(keys[i], keys[j]) })
	return keys
}

// combineSampleRates merges the sampling rates of two run populations:
// an empty side adopts the other's rate, equal rates keep it, and
// differing rates collapse to -1 (mixed). The rule is commutative and
// associative, so ingestion order cannot change the result.
func combineSampleRates(a, b int, aRuns, bRuns int) int {
	switch {
	case aRuns <= 0:
		return b
	case bRuns <= 0:
		return a
	case a == b:
		return a
	default:
		return -1
	}
}

// sortedSiteKeys returns the record's site keys in on-disk order.
func (r *Record) sortedSiteKeys() []SiteKey {
	keys := make([]SiteKey, 0, len(r.Sites))
	for k := range r.Sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return siteKeyLess(keys[i], keys[j]) })
	return keys
}

// siteKeyLess is the canonical on-disk site-key order.
func siteKeyLess(a, b SiteKey) bool {
	if a.Caller != b.Caller {
		return a.Caller < b.Caller
	}
	if a.Callee != b.Callee {
		return a.Callee < b.Callee
	}
	if a.Ordinal != b.Ordinal {
		return a.Ordinal < b.Ordinal
	}
	return a.PosHash < b.PosHash
}

// sortedFuncNames returns the record's function names in on-disk order.
func (r *Record) sortedFuncNames() []string {
	names := make([]string, 0, len(r.Funcs))
	for n := range r.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RecordKey identifies one record within the database.
type RecordKey struct {
	Fingerprint string
	Gen         int
}

// DB is the persistent profile database for one program.
type DB struct {
	// Program names the program the database covers (informational; the
	// daemon rejects ingests whose program name disagrees).
	Program string
	// Epoch is the durability epoch stamped by the crash-safe Store: a
	// snapshot at epoch E contains every WAL record from epochs < E, so
	// recovery replays a write-ahead log exactly when its epoch is >= the
	// snapshot's. Offline databases stay at 0 and omit the directive.
	Epoch int
	// Records holds one record per (fingerprint, generation).
	Records map[RecordKey]*Record
}

// NewDB returns an empty database.
func NewDB(program string) *DB {
	return &DB{Program: program, Records: make(map[RecordKey]*Record)}
}

// Ingest merges one record into the store. Records with the same
// fingerprint and generation accumulate; ingestion is commutative, so any
// arrival order of the same record set yields an identical database.
func (db *DB) Ingest(rec *Record) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("profdb: ingest: record has no fingerprint")
	}
	if rec.Runs <= 0 {
		return fmt.Errorf("profdb: ingest: record has non-positive runs count %d", rec.Runs)
	}
	key := RecordKey{rec.Fingerprint, rec.Gen}
	if cur, ok := db.Records[key]; ok {
		cur.add(rec)
		return nil
	}
	cp := NewRecord(rec.Fingerprint, rec.Gen)
	cp.add(rec)
	db.Records[key] = cp
	return nil
}

// MaxGen returns the newest generation in the store (0 when empty).
func (db *DB) MaxGen() int {
	max := 0
	for k := range db.Records {
		if k.Gen > max {
			max = k.Gen
		}
	}
	return max
}

// TotalRuns sums the runs across all records.
func (db *DB) TotalRuns() int {
	n := 0
	for _, r := range db.Records {
		n += r.Runs
	}
	return n
}

// SortedKeys returns record keys in deterministic (fingerprint, gen)
// order — the iteration order every deterministic consumer (merge,
// serialization, the fleet's winner combine) shares.
func (db *DB) SortedKeys() []RecordKey { return db.sortedKeys() }

// sortedKeys returns record keys in deterministic (fingerprint, gen) order.
func (db *DB) sortedKeys() []RecordKey {
	keys := make([]RecordKey, 0, len(db.Records))
	for k := range db.Records {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fingerprint != keys[j].Fingerprint {
			return keys[i].Fingerprint < keys[j].Fingerprint
		}
		return keys[i].Gen < keys[j].Gen
	})
	return keys
}

// MergeParams tunes the weighted merge.
type MergeParams struct {
	// HalfLifeGens is the exponential-decay half-life in generations: a
	// record g generations older than the newest weighs 0.5^(g/HalfLife).
	// 0 disables decay (all generations weigh 1).
	HalfLifeGens int
	// StaleWeight scales records whose fingerprint differs from the merge
	// target: 0 drops them entirely; 1 trusts them fully. Intermediate
	// values down-weight old-version data so it seeds — but never
	// dominates — a fresh build's profile.
	StaleWeight float64
}

// DefaultMergeParams trusts exact records fully, halves a record's weight
// every 4 generations, and down-weights stale-version records to 0.5.
func DefaultMergeParams() MergeParams {
	return MergeParams{HalfLifeGens: 4, StaleWeight: 0.5}
}

// MergeStats reports what went into a merge.
type MergeStats struct {
	Records        int // records considered
	ExactRecords   int // fingerprint matched the target
	StaleRecords   int // fingerprint differed, down-weighted in
	DroppedRecords int // fingerprint differed, dropped (StaleWeight 0)
	ExactRuns      int
	StaleRuns      int // runs behind StaleRecords + DroppedRecords
}

// Merge produces the weighted combination of every stored record for the
// target fingerprint, still in stable-key form. Records are visited in
// sorted (fingerprint, gen) order and float accumulation is rounded once
// per counter at the end, so the result is deterministic for a given
// store; with a single-generation, exact-fingerprint store the weights
// are exactly 1 and the merge is an exact integer sum.
func (db *DB) Merge(fingerprint string, p MergeParams) (*Record, *MergeStats) {
	return db.mergeAt(fingerprint, db.MaxGen(), p)
}

// ResolveStats reports how a stable-key record mapped onto the current
// module.
type ResolveStats struct {
	Sites        int // site keys in the record
	ExactSites   int // resolved with matching position hash
	MovedSites   int // resolved, but the source position changed
	DroppedSites int // no (caller, callee, ordinal) match — stale
	// DroppedWeight is the total count behind DroppedSites.
	DroppedWeight int64
	// DroppedFuncs counts function entries naming functions the current
	// module no longer defines.
	DroppedFuncs int
	// Dropped lists the stale site keys and unknown function names, sorted,
	// for reporting.
	Dropped []string
	// ExactIDs classifies every resolved site by its current raw id:
	// true when the source position matched (exact), false when the site
	// moved. Ids absent from the map did not resolve at all. Hybrid
	// profile-mode uses this to keep measured weights only where the
	// resolution is exact.
	ExactIDs map[int]bool
}

// Resolve remaps a stable-key record onto the current module's raw
// call-site ids, producing the averaged profile the call graph consumes.
// Keys that no longer resolve are dropped and reported — never silently
// attributed to whatever site now holds the old raw id.
func (r *Record) Resolve(keys *KeyMap) (*profile.Profile, *ResolveStats) {
	prof := profile.NewProfile()
	prof.Runs = r.Runs
	prof.TotalIL = r.IL
	prof.TotalControl = r.Control
	prof.TotalCalls = r.Calls
	prof.TotalReturns = r.Returns
	prof.TotalExtern = r.Extern
	prof.TotalPtr = r.Ptr
	prof.TotalTruncated = r.Truncated
	prof.MaxStack = r.MaxStack
	// Mixed-rate records (-1) resolve as exact: the counts were already
	// rescaled at collection time, so no further scaling applies and the
	// profile carries a rate only when a single one describes all runs.
	if r.SampleRate > 0 {
		prof.SampleRate = r.SampleRate
	}

	stats := &ResolveStats{ExactIDs: make(map[int]bool)}
	for _, k := range r.sortedSiteKeys() {
		n := r.Sites[k]
		stats.Sites++
		id, exact, ok := keys.Resolve(k)
		if !ok {
			stats.DroppedSites++
			stats.DroppedWeight += n
			stats.Dropped = append(stats.Dropped, "site "+k.String())
			continue
		}
		if exact {
			stats.ExactSites++
		} else {
			stats.MovedSites++
		}
		// Two keys can resolve onto one id only if one of them moved;
		// the id is exact only when every contributor matched exactly.
		if prev, seen := stats.ExactIDs[id]; seen {
			stats.ExactIDs[id] = prev && exact
		} else {
			stats.ExactIDs[id] = exact
		}
		prof.SiteCounts[id] += n
	}
	// Per-target pointer-site counts ride on the same keys: a target
	// entry resolves exactly when its site does (the drop was already
	// reported above, since every target key also has a site entry).
	for _, k := range r.sortedTargetKeys() {
		id, _, ok := keys.Resolve(k)
		if !ok {
			continue
		}
		for t, n := range r.Targets[k] {
			prof.AddPtrTarget(id, t, n)
		}
	}
	for _, f := range r.sortedFuncNames() {
		if !keys.HasFunc(f) {
			stats.DroppedFuncs++
			stats.Dropped = append(stats.Dropped, "func "+f)
			continue
		}
		prof.FuncCounts[f] += r.Funcs[f]
	}
	sort.Strings(stats.Dropped)
	return prof, stats
}

// Report combines the merge- and resolve-level staleness accounting for
// one database consumption.
type Report struct {
	Merge   MergeStats
	Resolve ResolveStats
}

// Clean reports whether nothing was down-weighted, moved, or dropped.
func (rp *Report) Clean() bool {
	return rp.Merge.StaleRecords == 0 && rp.Merge.DroppedRecords == 0 &&
		rp.Resolve.MovedSites == 0 && rp.Resolve.DroppedSites == 0 &&
		rp.Resolve.DroppedFuncs == 0
}

// String summarizes the report in one or two lines.
func (rp *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profdb: merged %d record(s): %d exact (%d runs), %d stale down-weighted, %d stale dropped (%d runs)",
		rp.Merge.Records, rp.Merge.ExactRecords, rp.Merge.ExactRuns,
		rp.Merge.StaleRecords, rp.Merge.DroppedRecords, rp.Merge.StaleRuns)
	fmt.Fprintf(&sb, "\nprofdb: resolved %d site(s): %d exact, %d moved, %d dropped as stale; %d unknown function(s)",
		rp.Resolve.Sites, rp.Resolve.ExactSites, rp.Resolve.MovedSites,
		rp.Resolve.DroppedSites, rp.Resolve.DroppedFuncs)
	if len(rp.Resolve.Dropped) > 0 {
		fmt.Fprintf(&sb, "\nprofdb: dropped: %s", strings.Join(rp.Resolve.Dropped, ", "))
	}
	return sb.String()
}

// ProfileFor merges the store for the target fingerprint and resolves the
// result against the current module's key map in one step — the
// profiler-to-compiler interface, database edition.
func (db *DB) ProfileFor(fingerprint string, keys *KeyMap, p MergeParams) (*profile.Profile, *Report) {
	merged, ms := db.Merge(fingerprint, p)
	prof, rs := merged.Resolve(keys)
	return prof, &Report{Merge: *ms, Resolve: *rs}
}

// Compact folds every fingerprint's generations into a single record at
// that fingerprint's newest generation, applying age decay relative to
// the store-wide newest generation first so that compaction and a later
// merge agree about how much old data should weigh. It returns the number
// of records eliminated.
func (db *DB) Compact(p MergeParams) int {
	maxGen := db.MaxGen()
	byFP := make(map[string][]*Record)
	for _, key := range db.sortedKeys() {
		rec := db.Records[key]
		byFP[rec.Fingerprint] = append(byFP[rec.Fingerprint], rec)
	}
	removed := 0
	for fp, recs := range byFP {
		if len(recs) == 1 {
			continue
		}
		// Scale each generation into the newest one for this fingerprint.
		newest := recs[len(recs)-1].Gen
		sub := NewDB(db.Program)
		for _, rec := range recs {
			sub.Records[RecordKey{rec.Fingerprint, rec.Gen}] = rec
			delete(db.Records, RecordKey{rec.Fingerprint, rec.Gen})
		}
		// Borrow Merge for the decayed fold: within one fingerprint nothing
		// is stale, and decay must use the store-wide newest generation.
		folded, _ := sub.mergeAt(fp, maxGen, p)
		folded.Gen = newest
		if folded.Runs > 0 {
			db.Records[RecordKey{fp, newest}] = folded
		}
		removed += len(recs) - 1
	}
	return removed
}

// mergeAt is the merge body with an explicit decay origin; Compact folds
// one fingerprint's generations with the store-wide origin so compaction
// never changes how much surviving data weighs.
func (db *DB) mergeAt(fingerprint string, maxGen int, p MergeParams) (*Record, *MergeStats) {
	out := NewRecord(fingerprint, maxGen)
	stats := &MergeStats{}
	var runs, il, control, calls, returns, extern, ptr, truncated float64
	funcs := make(map[string]float64)
	sites := make(map[SiteKey]float64)
	targets := make(map[SiteKey]map[string]float64)
	includedRuns := 0
	for _, key := range db.sortedKeys() {
		rec := db.Records[key]
		stats.Records++
		w := 1.0
		if p.HalfLifeGens > 0 && rec.Gen < maxGen {
			w = math.Pow(0.5, float64(maxGen-rec.Gen)/float64(p.HalfLifeGens))
		}
		if rec.Fingerprint != fingerprint {
			stats.StaleRuns += rec.Runs
			if p.StaleWeight <= 0 {
				stats.DroppedRecords++
				continue
			}
			stats.StaleRecords++
			w *= p.StaleWeight
		} else {
			stats.ExactRecords++
			stats.ExactRuns += rec.Runs
		}
		out.SampleRate = combineSampleRates(out.SampleRate, rec.SampleRate, includedRuns, rec.Runs)
		includedRuns += rec.Runs
		runs += w * float64(rec.Runs)
		il += w * float64(rec.IL)
		control += w * float64(rec.Control)
		calls += w * float64(rec.Calls)
		returns += w * float64(rec.Returns)
		extern += w * float64(rec.Extern)
		ptr += w * float64(rec.Ptr)
		truncated += w * float64(rec.Truncated)
		if rec.MaxStack > out.MaxStack {
			out.MaxStack = rec.MaxStack
		}
		for f, n := range rec.Funcs {
			funcs[f] += w * float64(n)
		}
		for k, n := range rec.Sites {
			sites[k] += w * float64(n)
		}
		for k, ts := range rec.Targets {
			m := targets[k]
			if m == nil {
				m = make(map[string]float64)
				targets[k] = m
			}
			for t, n := range ts {
				m[t] += w * float64(n)
			}
		}
	}
	round := func(v float64) int64 { return int64(math.Round(v)) }
	out.Runs = int(round(runs))
	if out.Runs == 0 && runs > 0 {
		out.Runs = 1
	}
	out.IL = round(il)
	out.Control = round(control)
	out.Calls = round(calls)
	out.Returns = round(returns)
	out.Extern = round(extern)
	out.Ptr = round(ptr)
	out.Truncated = round(truncated)
	for f, v := range funcs {
		if n := round(v); n > 0 {
			out.Funcs[f] = n
		}
	}
	for k, v := range sites {
		if n := round(v); n > 0 {
			out.Sites[k] = n
		}
	}
	for k, ts := range targets {
		for t, v := range ts {
			if n := round(v); n > 0 {
				out.addTarget(k, t, n)
			}
		}
	}
	return out, stats
}
