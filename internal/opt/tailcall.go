package opt

import "inlinec/internal/ir"

// TailCallEliminate rewrites self tail calls into parameter stores plus a
// jump back to the function entry. Section 2.2 of the paper notes "there
// are standard ways of removing tail recursion and expanding simple
// recursive functions" as the complement to its decision not to inline
// simple recursion; this pass is that standard way. It returns the number
// of rewritten call sites.
//
// A self tail call is the pattern
//
//	rN = call f(args...)   ; inside f
//	ret rN
//
// with no instruction between them (labels permitted after lowering only
// before the ret via jump optimization; this pass requires adjacency,
// which the lowering produces for `return f(...)`).
func TailCallEliminate(mod *ir.Module) int {
	total := 0
	for _, f := range mod.Funcs {
		total += tailCallFunc(f)
	}
	if total > 0 {
		mod.AssignCallIDs()
	}
	return total
}

func tailCallFunc(f *ir.Func) int {
	// Find the rewrite opportunities first.
	type site struct{ callIdx, retIdx int }
	var sites []site
	for i := 0; i+1 < len(f.Code); i++ {
		call := &f.Code[i]
		if call.Op != ir.OpCall || call.Sym != f.Name {
			continue
		}
		ret := &f.Code[i+1]
		if ret.Op != ir.OpRet {
			continue
		}
		// The returned value must be exactly the call result (or the call
		// result unused and the function void-returning).
		if call.Dst != ir.NoReg {
			if ret.A.Kind != ir.VKReg || ret.A.Reg != call.Dst {
				continue
			}
		} else if ret.A.Kind != ir.VKNone {
			continue
		}
		if len(call.Args) < f.NumParams {
			continue
		}
		sites = append(sites, site{i, i + 1})
	}
	if len(sites) == 0 {
		return 0
	}

	// Install an entry label as the loop target.
	entry := f.NewLabel()
	rewritten := make([]ir.Instr, 0, len(f.Code)+1+4*len(sites))
	rewritten = append(rewritten, ir.Instr{Op: ir.OpLabel, Label: entry})
	isSite := make(map[int]bool, len(sites))
	for _, s := range sites {
		isSite[s.callIdx] = true
	}
	for i := 0; i < len(f.Code); i++ {
		if !isSite[i] {
			rewritten = append(rewritten, f.Code[i])
			continue
		}
		call := f.Code[i]
		// The incoming arguments may read the current parameter slots, so
		// buffer every argument in a fresh register before storing any of
		// them back (the classic parallel-assignment guard).
		tmps := make([]ir.Reg, f.NumParams)
		for p := 0; p < f.NumParams; p++ {
			tmps[p] = f.NewReg()
			rewritten = append(rewritten, ir.Instr{
				Op: ir.OpMov, Dst: tmps[p], A: call.Args[p], Pos: call.Pos,
			})
		}
		for p := 0; p < f.NumParams; p++ {
			slot := f.Slots[p]
			addr := f.NewReg()
			rewritten = append(rewritten,
				ir.Instr{Op: ir.OpAddrL, Dst: addr, A: ir.C(int64(p)), Pos: call.Pos},
				ir.Instr{Op: ir.OpStore, A: ir.R(addr), B: ir.R(tmps[p]),
					Size: accessOfSlot(slot.Size), Pos: call.Pos},
			)
		}
		rewritten = append(rewritten, ir.Instr{Op: ir.OpJump, Label: entry, Pos: call.Pos})
		i++ // skip the ret that followed the call
	}
	f.Code = rewritten
	return len(sites)
}

func accessOfSlot(size int) int {
	if size == 1 {
		return 1
	}
	return 8
}
