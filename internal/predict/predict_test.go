package predict_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"inlinec"
	"inlinec/internal/predict"
	"inlinec/internal/profile"
	"regexp"
)

// compile builds a module through the real front end; the predictor only
// ever sees compiler output, so tests should too.
func compile(t *testing.T, src string) *inlinec.Program {
	t.Helper()
	p, err := inlinec.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultModelLoads(t *testing.T) {
	m := predict.DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("embedded default model invalid: %v", err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := predict.ReadModel(&buf)
	if err != nil {
		t.Fatalf("default model does not round-trip: %v", err)
	}
	if *back != *m {
		t.Errorf("round trip changed the model: %+v vs %+v", back, m)
	}
}

func TestReadModelStrict(t *testing.T) {
	var valid bytes.Buffer
	if _, err := predict.DefaultModel().WriteTo(&valid); err != nil {
		t.Fatal(err)
	}
	v := valid.String()
	// Strip the ordinal line wherever its (recalibrated) value landed, so
	// this test does not chase the checked-in coefficients.
	ordLine := regexp.MustCompile(`(?m)^coef ordinal .*\n`)
	if !ordLine.MatchString(v) {
		t.Fatal("serialized model has no ordinal coefficient line")
	}
	bad := map[string]string{
		"missing magic":      strings.TrimPrefix(v, "ILPREDICT 1\n"),
		"bad version":        strings.Replace(v, "ILPREDICT 1", "ILPREDICT 9", 1),
		"unknown feature":    v + "coef wibble 1\n",
		"duplicate coef":     v + "coef bias 0\n",
		"duplicate param":    v + "param scale 64\n",
		"missing param":      strings.Replace(v, "param scale 64\n", "", 1),
		"missing coef":       ordLine.ReplaceAllString(v, ""),
		"nan":                strings.Replace(v, "param recursion 2", "param recursion NaN", 1),
		"inf":                strings.Replace(v, "param recursion 2", "param recursion +Inf", 1),
		"domshare too big":   strings.Replace(v, "param domshare 0.9375", "param domshare 1.25", 1),
		"non-canonical 0.50": strings.Replace(v, "param domshare 0.9375", "param domshare 0.93750", 1),
		"trailing garbage":   v + "wibble\n",
		"short line":         v + "coef bias\n",
	}
	for name, text := range bad {
		if _, err := predict.ReadModel(strings.NewReader(text)); err == nil {
			t.Errorf("%s: strict parser accepted:\n%s", name, text)
		}
	}
	if _, err := predict.ReadModel(strings.NewReader(v)); err != nil {
		t.Errorf("canonical model rejected: %v", err)
	}
}

func TestFeaturizeDepths(t *testing.T) {
	p := compile(t, `
int leaf(int x) { return x + 1; }
int main() {
	int i; int j; int s;
	s = leaf(0);                 /* depth 0 */
	for (i = 0; i < 4; i++) {
		s += leaf(i);            /* loop depth 1 */
		for (j = 0; j < 4; j++) {
			s += leaf(j);        /* loop depth 2 */
		}
	}
	if (s > 100) { s += leaf(s); } /* cond depth 1 */
	return s & 0x7f;
}`)
	feats := predict.Featurize(p.Module)
	byOrdinal := map[int][8]float64{}
	for _, sf := range feats {
		if sf.Site.Caller == "main" {
			byOrdinal[sf.Site.Ordinal] = sf.Vec
		}
	}
	if len(byOrdinal) != 4 {
		t.Fatalf("expected 4 sites in main, got %d", len(byOrdinal))
	}
	check := func(ord int, loop, cond float64) {
		t.Helper()
		v := byOrdinal[ord]
		if v[predict.FeatLoopDepth] != loop {
			t.Errorf("site ordinal %d: loop depth %v, want %v", ord, v[predict.FeatLoopDepth], loop)
		}
		if v[predict.FeatCondDepth] != cond {
			t.Errorf("site ordinal %d: cond depth %v, want %v", ord, v[predict.FeatCondDepth], cond)
		}
	}
	check(0, 0, 0)
	check(1, 1, 0)
	check(2, 2, 0)
	check(3, 0, 1)
	for ord, v := range byOrdinal {
		if v[predict.FeatBias] != 1 {
			t.Errorf("site ordinal %d: bias %v, want 1", ord, v[predict.FeatBias])
		}
		if v[predict.FeatCalleeLeaf] != 1 {
			t.Errorf("site ordinal %d: callee leaf flag %v, want 1 (leaf calls nothing)", ord, v[predict.FeatCalleeLeaf])
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	p := compile(t, `
int leaf(int x) { return x * 3 + 1; }
int main() {
	int i; int s;
	s = leaf(7);                        /* cold */
	for (i = 0; i < 50; i++) s += leaf(i); /* hot */
	return s & 0x7f;
}`)
	m := predict.DefaultModel()
	prof := predict.Synthesize(p.Module, m)
	if prof.Runs != int(math.Round(m.Scale)) {
		t.Errorf("Runs = %d, want the model scale %v", prof.Runs, m.Scale)
	}
	if w := prof.FuncWeight("main"); w != 1 {
		t.Errorf("main weight %v, want exactly 1 (one entry per run)", w)
	}
	if prof.FuncWeight("leaf") <= 0 {
		t.Error("leaf got no predicted weight")
	}
	// The loop site must outweigh the straight-line site.
	var weights []float64
	for id := range prof.SiteCounts {
		weights = append(weights, prof.SiteWeight(id))
	}
	if len(weights) != 2 {
		t.Fatalf("expected 2 predicted sites, got %d", len(weights))
	}
	lo, hi := math.Min(weights[0], weights[1]), math.Max(weights[0], weights[1])
	if hi <= lo {
		t.Errorf("loop site (%v) does not outweigh straight-line site (%v)", hi, lo)
	}
	if prof.TotalCalls <= 0 || prof.TotalReturns != prof.TotalCalls {
		t.Errorf("call/return totals inconsistent: %d calls, %d returns", prof.TotalCalls, prof.TotalReturns)
	}
	if prof.TotalIL <= 0 || prof.TotalControl <= 0 {
		t.Errorf("zero synthetic IL/control totals: %d / %d", prof.TotalIL, prof.TotalControl)
	}
}

func TestSynthesizePtrTargets(t *testing.T) {
	// A three-armed dispatch chain: the first arm is the conventional
	// common case and must get the dominant share; the two-armed chain
	// below it must split evenly so devirtualization refuses it.
	p := compile(t, `
int op_a(int x) { return x + 1; }
int op_b(int x) { return x + 2; }
int op_c(int x) { return x + 3; }
int main() {
	int i; int s; int (*fp)(int);
	s = 0;
	for (i = 0; i < 64; i++) {
		if (i < 60) fp = op_a;
		else if (i < 62) fp = op_b;
		else fp = op_c;
		s += fp(i);
		if ((i & 7) == 0) {
			if (i & 1) fp = op_b; else fp = op_c;
			s += fp(i >> 1);
		}
	}
	return s & 0x7f;
}`)
	m := predict.DefaultModel()
	prof := predict.Synthesize(p.Module, m)
	if len(prof.PtrTargets) != 2 {
		t.Fatalf("expected target histograms for 2 pointer sites, got %d", len(prof.PtrTargets))
	}
	var threeArm, twoArm int
	for id, targets := range prof.PtrTargets {
		switch len(targets) {
		case 3:
			threeArm = id
		case 2:
			twoArm = id
		default:
			t.Fatalf("site %d: %d guessed targets", id, len(targets))
		}
	}
	tw := func(id int, name string) float64 { return prof.SiteTargetWeight(id, name) }
	total := tw(threeArm, "op_a") + tw(threeArm, "op_b") + tw(threeArm, "op_c")
	if share := tw(threeArm, "op_a") / total; math.Abs(share-m.DomShare) > 0.02 {
		t.Errorf("first arm op_a share %v, want the dominant share %v", share, m.DomShare)
	}
	if b, c := tw(twoArm, "op_b"), tw(twoArm, "op_c"); math.Abs(b-c) > 1e-9 || b <= 0 {
		t.Errorf("two-armed site must split evenly, got op_b=%v op_c=%v", b, c)
	}
}

func TestHybridMerge(t *testing.T) {
	pred := profile.NewProfile()
	pred.Runs = 64
	pred.SiteCounts[1] = 640  // weight 10
	pred.SiteCounts[2] = 320  // weight 5
	pred.SiteCounts[3] = 6400 // weight 100
	pred.FuncCounts["f"] = 640
	pred.FuncCounts["g"] = 64
	pred.AddPtrTarget(3, "a", 6000)
	pred.AddPtrTarget(3, "b", 400)

	measured := profile.NewProfile()
	measured.Runs = 10
	measured.SiteCounts[1] = 777 // exact: must survive untouched
	measured.SiteCounts[2] = 555 // moved: replaced by prediction
	measured.FuncCounts["f"] = 123
	measured.AddPtrTarget(1, "x", 700)
	measured.TotalIL = 4242
	measured.MaxStack = 512

	exact := map[int]bool{1: true, 2: false}
	out := predict.Hybrid(pred, measured, exact)

	if out.Runs != 10 {
		t.Errorf("Runs = %d, want the measured 10", out.Runs)
	}
	if out.SiteCounts[1] != 777 {
		t.Errorf("exact site kept %d, want the raw measured 777", out.SiteCounts[1])
	}
	if got, want := out.SiteWeight(2), pred.SiteWeight(2); math.Abs(got-want) > 0.1 {
		t.Errorf("moved site weight %v, want the predicted %v", got, want)
	}
	if got, want := out.SiteWeight(3), pred.SiteWeight(3); math.Abs(got-want) > 0.1 {
		t.Errorf("new site weight %v, want the predicted %v", got, want)
	}
	if out.FuncCounts["f"] != 123 {
		t.Errorf("measured func count overwritten: %d", out.FuncCounts["f"])
	}
	if out.FuncWeight("g") <= 0 {
		t.Error("unseen function got no predicted weight")
	}
	if w := out.SiteTargetWeight(1, "x"); w <= 0 {
		t.Error("exact site lost its measured pointer targets")
	}
	if out.SiteTargetWeight(3, "a") <= out.SiteTargetWeight(3, "b") {
		t.Error("new pointer site lost its predicted dominance")
	}
	if out.TotalIL != 4242 || out.MaxStack != 512 {
		t.Errorf("measured scalar totals not carried: il=%d maxstack=%d", out.TotalIL, out.MaxStack)
	}
	var sum int64
	for _, n := range out.SiteCounts {
		sum += n
	}
	if out.TotalCalls != sum || out.TotalReturns != sum {
		t.Errorf("totals inconsistent with merged sites: calls=%d returns=%d sum=%d",
			out.TotalCalls, out.TotalReturns, sum)
	}

	if got := predict.Hybrid(pred, nil, nil); got != pred {
		t.Error("nil measured profile must degrade to the pure prediction")
	}
}

func TestCalibrateRecoversCoefficients(t *testing.T) {
	// Synthetic ground truth: plant a coefficient vector, generate
	// feature vectors, label with exact log-frequencies, and the ridge
	// fit must land near the planted values (exactly at lambda -> 0;
	// near, at the real lambda).
	planted := [predict.NumFeatures]float64{0.3, 1.1, -0.4, 0.25, -0.1, 0.5, -0.02, 0.15}
	r := rand.New(rand.NewSource(7))
	var samples []predict.Sample
	for n := 0; n < 400; n++ {
		vec := [predict.NumFeatures]float64{
			1, float64(r.Intn(5)), float64(r.Intn(4)), r.Float64(),
			float64(r.Intn(4)), float64(r.Intn(2)), r.Float64() * 4, float64(r.Intn(2)),
		}
		y := 0.0
		for i, c := range planted {
			y += c * vec[i]
		}
		samples = append(samples, predict.Sample{Vec: vec, LogFreq: y})
	}
	m, err := predict.Calibrate(samples, predict.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Coef {
		if math.Abs(c-planted[i]) > 0.05 {
			t.Errorf("coef %s: recovered %v, planted %v", predict.FeatureNames[i], c, planted[i])
		}
	}
	// Structural parameters come from the base model, not the fit.
	if m.DomShare != predict.DefaultModel().DomShare {
		t.Errorf("DomShare %v, want the base model's %v", m.DomShare, predict.DefaultModel().DomShare)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	src := `
int a(int x) { return x + 1; }
int b(int x) { return a(x) + a(x + 1); }
int rec(int n) { if (n < 2) return n; return rec(n - 1) + rec(n - 2); }
int main() {
	int i; int s;
	s = rec(8);
	for (i = 0; i < 20; i++) s += b(i);
	return s & 0x7f;
}`
	m := predict.DefaultModel()
	serialize := func() string {
		p := compile(t, src)
		var buf bytes.Buffer
		if _, err := predict.Synthesize(p.Module, m).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := serialize()
	for i := 0; i < 3; i++ {
		if got := serialize(); got != first {
			t.Fatalf("Synthesize run %d differs:\n%s\nvs\n%s", i+2, got, first)
		}
	}
}
