package bench

import (
	"strings"
	"testing"
)

// quickConfig runs the experiment with few profiling runs to keep test
// time down; table-shape assertions do not need the full input set.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxRuns = 2
	return cfg
}

func TestRunOneGrep(t *testing.T) {
	r, err := RunOne(Get("grep"), quickConfig())
	if err != nil {
		t.Fatalf("RunOne: %v", err)
	}
	if r.Name != "grep" || r.Runs != 2 {
		t.Errorf("row = %+v", r)
	}
	if r.AvgIL <= 0 || r.AvgControl <= 0 {
		t.Error("empty dynamic counts")
	}
	if r.Classes.TotalStatic() == 0 {
		t.Error("no call sites classified")
	}
	// grep is call-intensive: the expander must eliminate a majority.
	if r.CallDec < 0.3 {
		t.Errorf("grep call decrease = %.2f, expected substantial", r.CallDec)
	}
	if r.CodeInc < 0 || r.CodeInc > 0.5 {
		t.Errorf("grep code increase = %.2f, out of the capped range", r.CodeInc)
	}
	if r.ILPerCall <= 0 || r.CTPerCall <= 0 {
		t.Error("per-call densities missing")
	}
}

func TestRunOneCallLightPrograms(t *testing.T) {
	// tee (all external calls) and wc (almost no calls) must see ~zero
	// elimination, as the paper reports.
	for _, name := range []string{"tee", "wc"} {
		r, err := RunOne(Get(name), quickConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.CallDec > 0.05 {
			t.Errorf("%s: call dec = %.3f, want ~0", name, r.CallDec)
		}
		if r.CodeInc > 0.02 {
			t.Errorf("%s: code inc = %.3f, want ~0", name, r.CodeInc)
		}
	}
}

func TestPostMixSumsToOne(t *testing.T) {
	r, err := RunOne(Get("eqn"), quickConfig())
	if err != nil {
		t.Fatalf("RunOne: %v", err)
	}
	sum := r.PostMix[0] + r.PostMix[1] + r.PostMix[2] + r.PostMix[3]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("post-inline mix sums to %.4f, want 1", sum)
	}
}

func TestTablesRenderAllRows(t *testing.T) {
	results := []*BenchResult{}
	for _, name := range []string{"cmp", "tee"} {
		r, err := RunOne(Get(name), quickConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results = append(results, r)
	}
	all := AllTables(results)
	for _, frag := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Post-inline dynamic call mix",
		"cmp", "tee", "AVG", "SD",
		"code inc", "call dec", "IL's per call", "CT's per call",
		"external", "pointer", "unsafe", "safe",
	} {
		if !strings.Contains(all, frag) {
			t.Errorf("tables missing %q", frag)
		}
	}
	// Each table renders one line per benchmark.
	if strings.Count(Table4(results), "\n") < 5 {
		t.Errorf("Table 4 too short:\n%s", Table4(results))
	}
}

func TestMeanSD(t *testing.T) {
	m, s := meanSD([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if s < 1.99 || s > 2.01 {
		t.Errorf("sd = %v, want 2", s)
	}
	if m, s := meanSD(nil); m != 0 || s != 0 {
		t.Error("empty meanSD must be zero")
	}
}

func TestBenchmarkMetadata(t *testing.T) {
	names := SuiteNames()
	if len(names) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(names))
	}
	// funcptrs is registered (Get works, -bench funcptrs works) but kept
	// out of the paper's twelve-table suite.
	for _, n := range append(append([]string{}, names...), "funcptrs") {
		b := Get(n)
		if b == nil {
			t.Fatalf("benchmark %s missing", n)
		}
		if b.CLines() < 20 {
			t.Errorf("%s: only %d source lines", n, b.CLines())
		}
		if len(b.Inputs) == 0 {
			t.Errorf("%s: no inputs", n)
		}
		if b.InputDesc == "" {
			t.Errorf("%s: no input description", n)
		}
	}
	if Get("nonexistent") != nil {
		t.Error("Get of unknown benchmark must be nil")
	}
	sorted := SortedNames()
	if len(sorted) != len(names)+1 {
		t.Errorf("SortedNames = %v, want the twelve-table suite plus funcptrs", sorted)
	}
}

// TestRunCountsMatchPaper pins the runs column of Table 1 to the paper's
// values.
func TestRunCountsMatchPaper(t *testing.T) {
	want := map[string]int{
		"cccp": 20, "cmp": 16, "compress": 20, "eqn": 20, "espresso": 20,
		"grep": 20, "lex": 4, "make": 20, "tar": 14, "tee": 20, "wc": 20,
		"yacc": 8,
	}
	for name, runs := range want {
		if got := len(Get(name).Inputs); got != runs {
			t.Errorf("%s: %d runs, paper used %d", name, got, runs)
		}
	}
}
