package inlinec_test

// Randomized crash-consistency suite for the chaos-hardened profile
// fleet. Each seed drives one schedule: a crash-safe profdb store on an
// in-memory filesystem takes ingest traffic while a fault injector
// breaks writes, fsyncs, and renames, and the "machine" is crashed
// (with torn unsynced tails) between episodes. After every recovery
// three properties must hold:
//
//  1. the store loads — no sequence of faults may brick it;
//  2. per (fingerprint, generation): acked runs <= recovered runs <=
//     attempted runs — an acknowledged ingest is never lost, and no
//     record is ever double-counted past what was sent;
//  3. a compile driven by the recovered database produces the same
//     inline decisions and the same rewritten module as in-process
//     profiling — duplicated snapshots only scale runs and totals
//     proportionally, so per-run weights (and every decision made from
//     them) are invariant.
//
// The companion test in cmd/ilprofd kills the real daemon process with
// SIGKILL mid-ingest; this one covers hundreds of schedules cheaply.

import (
	"fmt"
	"math/rand"
	"testing"

	"inlinec"
	"inlinec/internal/chaos"
	"inlinec/internal/profdb"
)

// chaosSrc is small enough to compile hundreds of times yet call-heavy
// enough that inline decisions are non-trivial. Every arc above the
// inline threshold carries a DISTINCT weight (50, 31, 13, 7, 6): the
// recovered database scales all counts by the number of ingested
// copies, and distinct weights keep the decision ordering immune to
// the merge's integer rounding.
const chaosSrc = `
extern int printf(char *fmt, ...);

int square(int x) { return x * x; }
int twice(int x) { return x + x; }
int combine(int a, int b) {
    if (a / 2 * 2 == a) return twice(b);
    return square(a);
}
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int apply(int (*f)(int), int v) { return f(v); }

int main() {
    int i; int sum;
    sum = 0;
    for (i = 0; i < 50; i++) sum += square(i);
    for (i = 0; i < 31; i++) sum += twice(i);
    for (i = 0; i < 13; i++) sum += combine(i, i + 2);
    sum += fact(6);
    sum += apply(twice, sum);
    printf("%d\n", sum);
    return 0;
}
`

// chaosReference holds the shared fault-free baseline artifacts.
type chaosReference struct {
	fp        string
	rec       *profdb.Record // one profiled run, gen 0
	decoy     *profdb.Record // second fingerprint exercising multi-key paths
	decisions string
	module    string
}

func buildChaosReference(t *testing.T) *chaosReference {
	t.Helper()
	prog, err := inlinec.Compile("chaos.c", chaosSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := prog.ProfileInputs(inlinec.Input{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := prog.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	decoy := *rec
	decoy.Fingerprint = "00decoy" + rec.Fingerprint[:8]

	res, err := prog.Inline(prof, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &chaosReference{
		fp:        rec.Fingerprint,
		rec:       rec,
		decoy:     &decoy,
		decisions: decisionList(res),
		module:    prog.Module.String(),
	}
}

func TestChaosCrashConsistency(t *testing.T) {
	seeds := 220
	if testing.Short() {
		seeds = 20
	}
	ref := buildChaosReference(t)

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(seed), ref)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64, ref *chaosReference) {
	rng := rand.New(rand.NewSource(seed))
	m := chaos.NewMemFS()
	inj := chaos.NewInjector(m, chaos.Config{
		Seed:       seed*101 + 7,
		WriteErr:   0.06,
		SyncErr:    0.06,
		RenameErr:  0.03,
		TornRename: 0.04,
		OpenErr:    0.02,
	})
	const dbPath = "fleet/p.profdb"

	// Per (fingerprint, gen): runs known-durable vs. runs ever sent.
	acked := map[profdb.RecordKey]int{}
	attempted := map[profdb.RecordKey]int{}
	checkInvariants := func(s *profdb.Store, when string) {
		for k, want := range acked {
			got := 0
			if r, ok := s.DB().Records[k]; ok {
				got = r.Runs
			}
			if got < want {
				t.Fatalf("%s: %v recovered %d run(s), below %d acked — acked data lost", when, k, got, want)
			}
		}
		for k, r := range s.DB().Records {
			if r.Runs > attempted[k] {
				t.Fatalf("%s: %v recovered %d run(s), above %d attempted — double count", when, k, r.Runs, attempted[k])
			}
		}
	}

	episodes := 2 + rng.Intn(2)
	for ep := 0; ep < episodes; ep++ {
		inj.SetEnabled(false) // recovery itself always runs on healthy hardware
		s, _, err := profdb.Open(inj, dbPath, "chaos.c")
		if err != nil {
			t.Fatalf("episode %d: recovery failed: %v", ep, err)
		}
		checkInvariants(s, fmt.Sprintf("episode %d", ep))

		inj.SetEnabled(true)
		ops := 4 + rng.Intn(10)
		for i := 0; i < ops; i++ {
			switch rng.Intn(8) {
			case 0:
				s.Flush() // may fail under injection; never corrupts
			default:
				rec := *ref.rec
				if rng.Intn(3) == 0 {
					rec = *ref.decoy
				}
				k := profdb.RecordKey{Fingerprint: rec.Fingerprint, Gen: rec.Gen}
				attempted[k] += rec.Runs
				if err := s.Ingest("chaos.c", &rec); err == nil {
					acked[k] += rec.Runs
				}
			}
		}
		// kill -9: unsynced state is torn away, possibly mid-byte.
		m.Crash(rand.New(rand.NewSource(seed*17 + int64(ep))))
	}

	// Final recovery on healthy hardware.
	inj.SetEnabled(false)
	s, _, err := profdb.Open(inj, dbPath, "chaos.c")
	if err != nil {
		t.Fatalf("final recovery failed: %v", err)
	}
	checkInvariants(s, "final")

	// Compile identity: if anything for the real fingerprint survived,
	// a database-driven compile must match in-process profiling bit for
	// bit in its decisions and its rewritten module.
	mainKey := profdb.RecordKey{Fingerprint: ref.fp, Gen: 0}
	if r, ok := s.DB().Records[mainKey]; ok && r.Runs > 0 {
		prog, err := inlinec.Compile("chaos.c", chaosSrc)
		if err != nil {
			t.Fatal(err)
		}
		// StaleWeight 0 keeps the decoy fingerprint out of the merge, so
		// the recovered profile is an exact integer multiple of the
		// reference — per-run weights, and hence every decision line,
		// match bit for bit.
		params := inlinec.DefaultProfDBMergeParams()
		params.StaleWeight = 0
		prof, _ := prog.ProfileFromDB(s.DB(), params)
		if prof.Runs == 0 {
			t.Fatal("recovered database served an empty profile for its own fingerprint")
		}
		res, err := prog.Inline(prof, inlinec.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if got := decisionList(res); got != ref.decisions {
			t.Errorf("decision list diverged after %d recovered run(s):\n--- reference ---\n%s--- recovered db ---\n%s",
				r.Runs, ref.decisions, got)
		}
		if prog.Module.String() != ref.module {
			t.Error("inlined module diverged from the in-process reference")
		}
	}
}
