package ir

import "fmt"

// Verify checks module-level structural invariants: every branch target
// exists, registers and slots are in range, call targets resolve to a
// defined function or a registered extern, every call site has a unique
// id, and every function terminates with ret or an unconditional jump.
// It returns the first violation found, or nil.
func (m *Module) Verify() error {
	seenCallIDs := make(map[int]string)
	for _, f := range m.Funcs {
		if err := m.verifyFunc(f, seenCallIDs); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Func, seenCallIDs map[int]string) error {
	labels := make(map[int]bool)
	for i := range f.Code {
		if f.Code[i].Op == OpLabel {
			if labels[f.Code[i].Label] {
				return fmt.Errorf("label L%d defined twice", f.Code[i].Label)
			}
			labels[f.Code[i].Label] = true
		}
	}
	checkVal := func(v Value) error {
		if v.Kind == VKReg && (v.Reg < 0 || int(v.Reg) >= f.NumRegs) {
			return fmt.Errorf("register r%d out of range [0,%d)", v.Reg, f.NumRegs)
		}
		return nil
	}
	if f.NumParams > len(f.Slots) {
		return fmt.Errorf("NumParams %d exceeds slot count %d", f.NumParams, len(f.Slots))
	}
	for i := range f.Slots {
		s := &f.Slots[i]
		if s.Offset < 0 || s.Offset+s.Size > f.FrameSize {
			return fmt.Errorf("slot %s [%d,%d) outside frame of size %d", s.Name, s.Offset, s.Offset+s.Size, f.FrameSize)
		}
	}
	sawRet := false
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case OpJump, OpBr:
			if !labels[in.Label] {
				return fmt.Errorf("instr %d: branch to undefined label L%d", i, in.Label)
			}
			if in.Op == OpBr {
				if err := checkVal(in.A); err != nil {
					return fmt.Errorf("instr %d: %w", i, err)
				}
			}
		case OpCall:
			if m.Func(in.Sym) == nil && !m.IsExtern(in.Sym) {
				return fmt.Errorf("instr %d: call to unknown function %q", i, in.Sym)
			}
			if in.CallID == 0 {
				return fmt.Errorf("instr %d: call site has no id (run AssignCallIDs)", i)
			}
			if prev, dup := seenCallIDs[in.CallID]; dup {
				return fmt.Errorf("instr %d: call id %d reused (also in %s)", i, in.CallID, prev)
			}
			seenCallIDs[in.CallID] = f.Name
		case OpCallPtr:
			if err := checkVal(in.A); err != nil {
				return fmt.Errorf("instr %d: %w", i, err)
			}
			if in.CallID == 0 {
				return fmt.Errorf("instr %d: callptr site has no id", i)
			}
			if prev, dup := seenCallIDs[in.CallID]; dup {
				return fmt.Errorf("instr %d: call id %d reused (also in %s)", i, in.CallID, prev)
			}
			seenCallIDs[in.CallID] = f.Name
		case OpAddrG:
			if m.Global(in.Sym) == nil && !m.ExternGlobals[in.Sym] {
				return fmt.Errorf("instr %d: address of unknown global %q", i, in.Sym)
			}
		case OpAddrF:
			if m.Func(in.Sym) == nil && !m.IsExtern(in.Sym) {
				return fmt.Errorf("instr %d: address of unknown function %q", i, in.Sym)
			}
		case OpAddrL:
			if in.A.Kind != VKConst || in.A.Imm < 0 || int(in.A.Imm) >= len(f.Slots) {
				return fmt.Errorf("instr %d: addrl of invalid slot %s", i, in.A)
			}
		case OpLoad, OpStore:
			if in.Size != 1 && in.Size != 8 {
				return fmt.Errorf("instr %d: invalid access size %d", i, in.Size)
			}
		case OpRet:
			sawRet = true
		}
		for _, v := range []Value{in.A, in.B} {
			if in.Op == OpConst || in.Op == OpAddrL {
				continue // immediates by construction
			}
			if err := checkVal(v); err != nil {
				return fmt.Errorf("instr %d (%s): %w", i, in.Op, err)
			}
		}
		for _, a := range in.Args {
			if err := checkVal(a); err != nil {
				return fmt.Errorf("instr %d (%s): %w", i, in.Op, err)
			}
		}
		if in.Dst != NoReg && int(in.Dst) >= f.NumRegs {
			return fmt.Errorf("instr %d: destination r%d out of range", i, in.Dst)
		}
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("empty body")
	}
	if !sawRet {
		return fmt.Errorf("no return instruction")
	}
	return nil
}
