package inlinec

import (
	"fmt"
	"strings"
	"testing"

	"inlinec/internal/callgraph"
	"inlinec/internal/interp"
	"inlinec/internal/ir"
	"inlinec/internal/irgen"
	"inlinec/internal/parser"
	"inlinec/internal/predict"
	"inlinec/internal/profdb"
	"inlinec/internal/profile"
	"inlinec/internal/sema"
)

// FuzzCompileAndRun drives the whole pipeline on arbitrary source: any
// input that survives the front end must lower to verified IL, execute
// under a small instruction budget without panicking, and still behave
// identically after inline expansion. Runtime errors (faults, overflow,
// budget) are fine; panics and divergence are not.
func FuzzCompileAndRun(f *testing.F) {
	seeds := []string{
		"int main() { return 42; }",
		`extern int printf(char *f, ...);
int sq(int x) { return x * x; }
int main() { printf("%d\n", sq(7)); return 0; }`,
		`int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`,
		`int main() { int a[4]; int i; for (i=0;i<4;i++) a[i]=i; return a[3]; }`,
		`struct P { int x; char c; };
int main() { struct P p; p.x = 1; p.c = 'z'; return p.x + p.c; }`,
		`int h(int x) { return x ^ 0x5a; }
int g(int x) { return h(x) + h(x+1); }
int main() { int i; int s; s=0; for (i=0;i<9;i++) s+=g(i); return s & 0x7f; }`,
		`int main() { char *s; s = "abc"; return s[0] + s[1]; }`,
		`int main() { int x; x = 1 / 1; return x % 1; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip()
		}
		file, err := parser.Parse("fuzz.c", src)
		if err != nil {
			return
		}
		prog, err := sema.Check(file)
		if err != nil {
			return
		}
		mod, err := irgen.Generate(prog)
		if err != nil {
			return
		}
		if err := mod.Verify(); err != nil {
			t.Fatalf("front end produced invalid IL: %v\nsource:\n%s", err, src)
		}
		if mod.Func("main") == nil {
			return
		}
		run := func(m *ir.Module) (string, bool) {
			mm, err := interp.NewMachine(m, interp.NewEnv(), interp.Options{
				MaxIL: 200000, StackSize: 1 << 20, HeapSize: 1 << 20,
			})
			if err != nil {
				return "", false
			}
			if _, err := mm.Run(); err != nil {
				return "", false
			}
			return mm.Env.Stdout.String(), true
		}
		before, okBefore := run(mod)
		if !okBefore {
			return // runtime error: acceptable, nothing to compare
		}
		p := &Program{Module: mod, Original: mod.Clone(), name: "fuzz.c"}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			return
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 3.0
		if _, err := p.Inline(prof, params); err != nil {
			t.Fatalf("inline failed on valid program: %v\nsource:\n%s", err, src)
		}
		after, okAfter := run(p.Module)
		if !okAfter {
			t.Fatalf("program broke after inlining\nsource:\n%s", src)
		}
		if before != after {
			t.Fatalf("inlining changed output %q -> %q\nsource:\n%s", before, after, src)
		}
	})
}

// FuzzPartialInlineEquivalence drives the guarded expanders on arbitrary
// source with a deliberately tight per-callee limit, so region-based
// partial inlining and pointer-call devirtualization fire wherever they
// can. Any program that survives the front end must behave identically
// after guarded expansion — the guards are plain IL, so divergence means
// a broken region plan or guard, not an interpreter gap.
func FuzzPartialInlineEquivalence(f *testing.F) {
	seeds := []string{
		`int big(int x) {
	int i; int s;
	if (x < 8) return x * 3 + 1;
	s = 0;
	for (i = 0; i < x; i++) { s += i * x; s ^= s >> 2; s += big(i & 7); }
	return s;
}
int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += big(i & 11); return s & 0x7f; }`,
		`int one(int x) { return x + 1; }
int two(int x) { return x + 2; }
int main() {
	int i; int s; int (*fp)(int);
	s = 0;
	for (i = 0; i < 32; i++) { if ((i & 7) != 3) fp = one; else fp = two; s += fp(i); }
	return s & 0xff;
}`,
		`extern int printf(char *f, ...);
int work(int x) {
	if (x & 1) return x ^ 21;
	printf("%d\n", x);
	return x + 3;
}
int main() { int i; int s; s = 0; for (i = 0; i < 12; i++) s += work(i); return s & 0x7f; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip()
		}
		file, err := parser.Parse("fuzz.c", src)
		if err != nil {
			return
		}
		prog, err := sema.Check(file)
		if err != nil {
			return
		}
		mod, err := irgen.Generate(prog)
		if err != nil {
			return
		}
		if mod.Verify() != nil || mod.Func("main") == nil {
			return
		}
		run := func(m *ir.Module) (string, bool) {
			mm, err := interp.NewMachine(m, interp.NewEnv(), interp.Options{
				MaxIL: 200000, StackSize: 1 << 20, HeapSize: 1 << 20,
			})
			if err != nil {
				return "", false
			}
			if _, err := mm.Run(); err != nil {
				return "", false
			}
			return mm.Env.Stdout.String(), true
		}
		before, okBefore := run(mod)
		if !okBefore {
			return
		}
		p := &Program{Module: mod, Original: mod.Clone(), name: "fuzz.c"}
		prof, err := p.ProfileInputs(Input{})
		if err != nil {
			return
		}
		params := DefaultParams()
		params.WeightThreshold = 1
		params.SizeLimitFactor = 3.0
		params.MaxCalleeSize = 20
		params.PartialInline = true
		params.DevirtThreshold = 0.5
		res, err := p.Inline(prof, params)
		if err != nil {
			t.Fatalf("guarded inline failed on valid program: %v\nsource:\n%s", err, src)
		}
		if err := p.Module.Verify(); err != nil {
			t.Fatalf("guarded expansion produced invalid IL: %v\nsource:\n%s", err, src)
		}
		after, okAfter := run(p.Module)
		if !okAfter {
			t.Fatalf("program broke after guarded expansion (expanded %v)\nsource:\n%s", res.Expanded, src)
		}
		if before != after {
			t.Fatalf("guarded expansion changed output %q -> %q\nsource:\n%s", before, after, src)
		}
	})
}

// FuzzReadProfile attacks the legacy ILPROF decoder. The corpus seeds the
// strict-mode rejections (duplicate directives, duplicate func/site
// entries, trailing garbage) alongside valid files; the invariant is that
// anything accepted must round-trip byte-identically through WriteTo.
func FuzzReadProfile(f *testing.F) {
	valid := "ILPROF 1\nruns 2\nil 100\ncontrol 20\ncalls 10\nreturns 10\nextern 1\nptr 0\nmaxstack 256\ntruncated 0\nfunc main 2\nfunc work 50\nsite 0 50\n"
	seeds := []string{
		valid,
		valid + "target 0 work 30\ntarget 0 other 20\n",
		valid + "target 0 work 30\ntarget 0 work 1\n", // duplicate target entry
		valid + "target 0 work\n",                     // wrong field count
		"ILPROF 1\nruns 1\n",
		strings.Replace(valid, "truncated 0\n", "", 1), // truncated is optional
		valid + "runs 3\n",                             // duplicate scalar directive
		valid + "func main 9\n",                        // duplicate func entry
		valid + "site 0 1\n",                           // duplicate site entry
		valid + "garbage trailing line\n",
		valid + "site 1\n", // wrong field count
		valid + "site x y\n",
		"ILPROF 2\nruns 1\n", // bad version
		"runs 1\n",           // missing magic
		"ILPROF 1\nruns -1\n",
		"ILPROF 1\n# comment\n\nruns 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		prof, err := profile.ReadProfile(strings.NewReader(data))
		if err != nil {
			return
		}
		var first strings.Builder
		if _, err := prof.WriteTo(&first); err != nil {
			t.Fatalf("accepted profile does not serialize: %v", err)
		}
		back, err := profile.ReadProfile(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("serialized profile does not re-parse: %v\n%s", err, first.String())
		}
		var second strings.Builder
		back.WriteTo(&second)
		if first.String() != second.String() {
			t.Fatalf("profile round trip not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}

// FuzzProfDBDecoder attacks the database and snapshot decoders with their
// stable-key site lines. Accepted input must round-trip byte-identically,
// and merging whatever was accepted must not panic.
func FuzzProfDBDecoder(f *testing.F) {
	validDB := "ILPROFDB 1\nprogram p.c\nrecord aaaa000011112222 0\nruns 2\nil 100\ncalls 10\nfunc main 2\nsite main work 0 00ff00ff 50\nend\nrecord aaaa000011112222 1\nruns 1\nil 60\nend\n"
	validSnap := "ILPROFSNAP 1\nprogram p.c\nfingerprint aaaa000011112222\ngen 3\nruns 2\nil 100\nfunc main 2\nsite main work 0 00ff00ff 50\n"
	seeds := []string{
		validDB,
		validSnap,
		strings.Replace(validDB, "end\nrecord", "target main work 0 00ff00ff work 30\nend\nrecord", 1),
		validSnap + "target main work 0 00ff00ff work 30\ntarget main work 0 00ff00ff other 20\n",
		validSnap + "target main work 0 00ff00ff work 30\ntarget main work 0 00ff00ff work 1\n", // duplicate target
		"ILPROFDB 1\nprogram p.c\n",                                                           // empty store
		strings.Replace(validDB, "end\nrecord", "record", 1),                                  // unterminated record
		strings.Replace(validDB, "record aaaa000011112222 1", "record aaaa000011112222 0", 1), // duplicate record
		validDB + "trailing\n",
		strings.Replace(validDB, "site main work 0 00ff00ff 50", "site main work 0 zz 50", 1), // bad poshash
		strings.Replace(validDB, "runs 2", "runs 0", 1),                                       // runs must be positive
		strings.Replace(validSnap, "fingerprint aaaa000011112222\n", "", 1),                   // fingerprint required
		validSnap + "gen 4\n",                                                                 // duplicate directive
		"ILPROFDB 2\n",
		"ILPROFSNAP 1\nprogram p.c\nfingerprint f\ngen 0\nruns 1\nsite a b 0 00000000 1\nsite a b 0 00000000 2\n", // duplicate site
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		if db, err := profdb.ReadDB(strings.NewReader(data)); err == nil {
			var first strings.Builder
			if _, err := db.WriteTo(&first); err != nil {
				t.Fatalf("accepted database does not serialize: %v", err)
			}
			back, err := profdb.ReadDB(strings.NewReader(first.String()))
			if err != nil {
				t.Fatalf("serialized database does not re-parse: %v\n%s", err, first.String())
			}
			var second strings.Builder
			back.WriteTo(&second)
			if first.String() != second.String() {
				t.Fatalf("database round trip not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
			}
			for k := range db.Records {
				db.Merge(k.Fingerprint, profdb.DefaultMergeParams())
				break // one representative fingerprint is enough
			}
		}
		if program, rec, err := profdb.ReadSnapshot(strings.NewReader(data)); err == nil {
			var first strings.Builder
			if _, err := profdb.WriteSnapshot(&first, program, rec); err != nil {
				t.Fatalf("accepted snapshot does not serialize: %v", err)
			}
			program2, rec2, err := profdb.ReadSnapshot(strings.NewReader(first.String()))
			if err != nil {
				t.Fatalf("serialized snapshot does not re-parse: %v\n%s", err, first.String())
			}
			var second strings.Builder
			profdb.WriteSnapshot(&second, program2, rec2)
			if first.String() != second.String() {
				t.Fatalf("snapshot round trip not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
			}
		}
	})
}

// FuzzFlowReconstruction is the coverage planner's adversary: build a
// random call-arc system (direct, pointer, and root arcs with random
// true counts), instrument it under a random coverage plan — the
// minimal plan or arbitrary per-equation elision choices — drop the
// elided counters, reconstruct, and require every counter back exactly.
// This pins the flow-conservation algebra independently of the
// interpreter, so a future planner change cannot silently trade
// exactness for coverage.
func FuzzFlowReconstruction(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(6), uint8(0))
	f.Add(int64(2), uint8(1), uint8(0), uint8(0))
	f.Add(int64(3), uint8(8), uint8(23), uint8(1))
	f.Add(int64(4), uint8(5), uint8(12), uint8(1))
	f.Add(int64(5), uint8(2), uint8(20), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, ne, ns, chooseMode uint8) {
		rng := uint64(seed)*2654435761 + 12345
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		n := int(ne)%8 + 1
		entities := make([]string, n)
		for i := range entities {
			entities[i] = fmt.Sprintf("f%d", i)
		}
		root := entities[0]
		rootRuns := int64(next(4))

		numSites := int(ns) % 24
		sites := make([]callgraph.CoverageSite, 0, numSites)
		trueSites := make(map[int]int64)
		trueEntries := make(map[string]int64)
		truePtr := make(map[string]int64)
		trueEntries[root] += rootRuns
		for i := 0; i < numSites; i++ {
			cnt := int64(next(1000))
			trueSites[i] = cnt
			if c := next(n + 1); c == n {
				// Pointer site: its calls enter some entity, witnessed only
				// by that entity's pointer-entry counter.
				sites = append(sites, callgraph.CoverageSite{ID: i})
				tgt := entities[next(n)]
				truePtr[tgt] += cnt
				trueEntries[tgt] += cnt
			} else {
				sites = append(sites, callgraph.CoverageSite{ID: i, Callee: entities[c]})
				trueEntries[entities[c]] += cnt
			}
		}

		var plan *callgraph.CoveragePlan
		if chooseMode%2 == 0 {
			plan = callgraph.MinimalPlanFor(entities, root, sites)
			if plan.Elided != n {
				t.Fatalf("minimal plan elided %d of %d entry counters", plan.Elided, n)
			}
		} else {
			plan = callgraph.NewPlan(entities, root, sites, func(e string, in []int) int {
				switch next(3) {
				case 0:
					return callgraph.ElideEntry
				case 1:
					return callgraph.KeepAll
				default:
					if len(in) == 0 {
						return callgraph.ElideEntry
					}
					return in[next(len(in))]
				}
			})
		}

		// Observe only the instrumented counters (pointer sites always).
		obs := callgraph.Counts{
			Entries:    make(map[string]int64),
			Sites:      make(map[int]int64),
			PtrEntries: truePtr,
			RootRuns:   rootRuns,
		}
		for _, e := range entities {
			if plan.EntryCounted[e] {
				obs.Entries[e] = trueEntries[e]
			}
		}
		for _, s := range sites {
			if s.Callee == "" || plan.SiteCounted[s.ID] {
				obs.Sites[s.ID] = trueSites[s.ID]
			}
		}

		plan.Reconstruct(obs)
		for _, e := range entities {
			if obs.Entries[e] != trueEntries[e] {
				t.Errorf("entity %s reconstructed %d, want %d (counted=%v)",
					e, obs.Entries[e], trueEntries[e], plan.EntryCounted[e])
			}
		}
		for _, s := range sites {
			if obs.Sites[s.ID] != trueSites[s.ID] {
				t.Errorf("site %d reconstructed %d, want %d (counted=%v)",
					s.ID, obs.Sites[s.ID], trueSites[s.ID], plan.SiteCounted[s.ID])
			}
		}
	})
}

// FuzzPredictModelDecoder attacks the strict ILPREDICT parser. Accepted
// models must be valid (finite coefficients, sane structural parameters)
// and serialize to a byte-identical fixed point — the property that lets
// the calibration pass check in its output and re-read it losslessly.
func FuzzPredictModelDecoder(f *testing.F) {
	var valid strings.Builder
	if _, err := predict.DefaultModel().WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	v := valid.String()
	seeds := []string{
		v,
		strings.Replace(v, "coef bias", "coef bogus", 1), // unknown feature
		strings.Replace(v, "param scale 64", "", 1),      // missing parameter
		v + "coef bias 0\n",                              // duplicate coefficient
		v + "param scale 64\n",                           // duplicate parameter
		strings.Replace(v, "ILPREDICT 1", "ILPREDICT 2", 1),
		strings.Replace(v, "param scale 64", "param scale NaN", 1),
		strings.Replace(v, "param scale 64", "param scale +Inf", 1),
		strings.Replace(v, "param domshare 0.9375", "param domshare 1.5", 1), // out of range
		strings.Replace(v, " 0.9375", " 0.93750", 1),                         // non-canonical spelling
		"ILPREDICT 1\n", // nothing else
		"coef bias 0\n", // missing magic
		v + "garbage\n",
		strings.Replace(v, "\n", "\r\n", 1),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		m, err := predict.ReadModel(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted model fails validation: %v", err)
		}
		var first strings.Builder
		if _, err := m.WriteTo(&first); err != nil {
			t.Fatalf("accepted model does not serialize: %v", err)
		}
		back, err := predict.ReadModel(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("serialized model does not re-parse: %v\n%s", err, first.String())
		}
		var second strings.Builder
		back.WriteTo(&second)
		if first.String() != second.String() {
			t.Fatalf("model round trip not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}
