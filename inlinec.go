// Package inlinec is a reproduction of "Inline Function Expansion for
// Compiling C Programs" (Hwu & Chang, PLDI 1989): the IMPACT-I C
// compiler's profile-guided inline function expander, together with every
// substrate it needs — a C-subset (MiniC) front end, a three-address
// intermediate language (IL), an interpreting profiler with a simulated
// UNIX environment, a weighted call graph with the paper's $$$/### summary
// nodes, and the surrounding classical optimizations.
//
// The high-level pipeline matches the paper:
//
//	prog := inlinec.MustCompile("prog.c", src)     // front end -> IL
//	prof := prog.Profile(inputs...)                // many representative runs
//	res, _ := prog.Inline(prof, inlinec.DefaultParams()) // expansion
//	after := prog.Profile(inputs...)               // measure the effect
//
// Compile/Profile/Inline never mutate each other's results implicitly:
// Inline transforms the Program's module in place and returns a report,
// while the original module remains available via Original.
package inlinec

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"inlinec/internal/callgraph"
	"inlinec/internal/icache"
	"inlinec/internal/inline"
	"inlinec/internal/interp"
	"inlinec/internal/ir"
	"inlinec/internal/irgen"
	"inlinec/internal/link"
	"inlinec/internal/obs"
	"inlinec/internal/opt"
	"inlinec/internal/parser"
	"inlinec/internal/predict"
	"inlinec/internal/profdb"
	"inlinec/internal/profile"
	"inlinec/internal/sema"
)

// Params re-exports the inline expander's configuration.
type Params = inline.Params

// Result re-exports the inline expander's report.
type Result = inline.Result

// Profile re-exports averaged multi-run profile data.
type Profile = profile.Profile

// RunStats re-exports single-run dynamic counts.
type RunStats = profile.RunStats

// ReadProfile parses a profile previously serialized with
// Profile.WriteTo — the file interface that lets the profiler and the
// compiler run as separate tool invocations, as IMPACT-I's did.
func ReadProfile(r io.Reader) (*Profile, error) { return profile.ReadProfile(r) }

// ProfDB re-exports the persistent profile database: the fleet-scale
// replacement for single-shot ILPROF files, keyed by stable call-site
// fingerprints instead of raw ids (see internal/profdb and
// docs/profiles.md).
type ProfDB = profdb.DB

// ProfDBRecord re-exports one database record — also the ilprofd
// ingest/serve payload.
type ProfDBRecord = profdb.Record

// ProfDBMergeParams re-exports the weighted-merge tuning (age decay half
// life and stale-version down-weighting).
type ProfDBMergeParams = profdb.MergeParams

// ProfDBReport re-exports the staleness accounting from consuming a
// database.
type ProfDBReport = profdb.Report

// NewProfDB returns an empty profile database for a program.
func NewProfDB(program string) *ProfDB { return profdb.NewDB(program) }

// DefaultProfDBMergeParams returns the default decay/staleness weights.
func DefaultProfDBMergeParams() ProfDBMergeParams { return profdb.DefaultMergeParams() }

// Fingerprint identifies the working module's program version for the
// profile database: profiles snapshot under this fingerprint, and
// ProfileFromDB merges records for it.
func (p *Program) Fingerprint() string { return profdb.ModuleFingerprint(p.Module) }

// Snapshot converts a profile collected on the working module into a
// stable-key database record at the given generation, ready for
// DB.Ingest or an ilprofd POST /ingest.
func (p *Program) Snapshot(prof *Profile, gen int) (*ProfDBRecord, error) {
	return profdb.SnapshotOf(prof, p.Module, gen)
}

// ProfileFromDB merges the database for the working module's fingerprint
// and remaps the stable keys back onto current call-site ids, yielding
// the profile CallGraph/Inline consume plus the staleness report. Records
// from other program versions are down-weighted or dropped per params,
// and site keys that no longer resolve are dropped and reported — never
// silently attributed to a shifted raw id.
func (p *Program) ProfileFromDB(db *ProfDB, params ProfDBMergeParams) (*Profile, *ProfDBReport) {
	return db.ProfileFor(p.Fingerprint(), profdb.ModuleKeys(p.Module), params)
}

// PredictModel re-exports the calibrated weight-prediction model behind
// -profile-mode=predicted (see internal/predict and docs/predict.md).
type PredictModel = predict.Model

// ReadPredictModel parses a serialized ILPREDICT model, strictly.
func ReadPredictModel(r io.Reader) (*PredictModel, error) { return predict.ReadModel(r) }

// DefaultPredictModel returns the embedded calibrated model.
func DefaultPredictModel() *PredictModel { return predict.DefaultModel() }

// PredictProfile synthesizes a profile for the working module from
// static features alone — zero profiling runs — using the embedded
// calibrated model. The result is shaped exactly like a measured
// profile (node weights, arc weights, pointer-target dominance guesses),
// so Inline, guarded devirtualization, and partial inlining consume it
// unchanged. Deterministic: the same module always predicts the same
// profile. Runs under a "predict" span on the program's registry.
func (p *Program) PredictProfile() *Profile {
	return p.PredictProfileWith(predict.DefaultModel())
}

// PredictProfileWith is PredictProfile with an explicit model.
func (p *Program) PredictProfileWith(m *PredictModel) *Profile {
	defer p.Obs.StartSpan("predict")()
	return predict.Synthesize(p.Module, m)
}

// HybridProfileFromDB implements -profile-mode=hybrid against a profile
// database: the database is merged and resolved as in ProfileFromDB,
// then sites whose fingerprint resolution reported `exact` keep their
// measured weights while moved, dropped, and new sites take predictions.
// The returned report carries the underlying resolution accounting.
func (p *Program) HybridProfileFromDB(db *ProfDB, params ProfDBMergeParams) (*Profile, *ProfDBReport) {
	measured, report := p.ProfileFromDB(db, params)
	return predict.Hybrid(p.PredictProfile(), measured, report.Resolve.ExactIDs), report
}

// HybridProfileFromRecord is HybridProfileFromDB for an already-merged
// record, e.g. one served by ilprofd.
func (p *Program) HybridProfileFromRecord(rec *ProfDBRecord) (*Profile, *profdb.ResolveStats) {
	measured, stats := rec.Resolve(profdb.ModuleKeys(p.Module))
	return predict.Hybrid(p.PredictProfile(), measured, stats.ExactIDs), stats
}

// Graph re-exports the weighted call graph.
type Graph = callgraph.Graph

// ClassifyParams re-exports the call-site classification thresholds.
type ClassifyParams = callgraph.ClassifyParams

// DefaultParams returns the paper's thresholds (weight ≥ 10, 4 KiB stack
// bound for recursion, calibrated 1.25× program-size cap).
func DefaultParams() Params { return inline.DefaultParams() }

// DefaultClassifyParams returns the paper's classification thresholds.
func DefaultClassifyParams() ClassifyParams { return callgraph.DefaultClassifyParams() }

// Input is one program execution request: file system, stdin, and an
// optional stack-size override.
type Input struct {
	// Files populates the simulated file system (path -> contents).
	Files map[string][]byte
	// Stdin is the standard-input stream.
	Stdin []byte
	// StackSize overrides the 4 MiB default control stack when positive.
	StackSize int
}

// RunOutput is the observable behaviour of one run.
type RunOutput struct {
	Stdout   string
	Stderr   string
	ExitCode int64
	// Files is the file system after the run (including written files).
	Files map[string][]byte
	Stats *RunStats
}

// Program is a compiled MiniC translation unit plus its pristine original,
// kept for before/after comparisons.
type Program struct {
	// Module is the working IL module; Inline rewrites it in place.
	Module *ir.Module
	// Original is the module as compiled (after the paper's pre-inline
	// constant folding and jump optimization), untouched by Inline.
	Original *ir.Module

	// Parallelism bounds the worker pools the whole table-regeneration
	// pipeline fans out over: 0 uses every core, 1 runs serially, N uses
	// N workers. ProfileInputs distributes profiling runs (independent
	// Machine and Env per run, merged in input order, so any setting
	// produces bit-identical profiles); Inline schedules physical
	// expansion's dependency waves over the same bound; Optimize runs the
	// per-function cleanup pipelines concurrently. Every setting produces
	// byte-identical modules, decision lists, and tables.
	Parallelism int

	// Obs, when set, receives phase spans (profile/callgraph/expand/opt)
	// and pipeline metrics from every subsequent operation on the
	// program. Observation never feeds back into compilation: modules,
	// decision lists, and traces are byte-identical with or without a
	// registry attached, at any Parallelism. A nil registry is a no-op.
	Obs *obs.Registry

	// Engine selects the interpreter engine for Run/Profile/SimulateICache:
	// interp.EngineBytecode (the default when empty) or interp.EngineSwitch.
	// Both engines produce bit-identical outputs, profiles, and traces; the
	// switch engine is retained as the differential-testing oracle.
	Engine string

	// ProfileMode selects how much profiling instrumentation Run and
	// ProfileInputs execute: interp.ProfileFull (the default when empty)
	// counts every arc and entry, interp.ProfileMinimal counts only a
	// minimum coverage set and reconstructs the rest exactly by flow
	// conservation, and interp.ProfileSampled additionally counts 1-in-k
	// events and rescales. Minimal profiles are byte-identical to full
	// ones; sampled profiles are approximate but an order of magnitude
	// cheaper to collect. Both engines honor the mode identically.
	ProfileMode string

	// SampleRate is the 1-in-k rate for interp.ProfileSampled (0 uses
	// interp.DefaultSampleRate, 1 counts everything). Ignored by the
	// other modes.
	SampleRate int

	name string
}

// machineOpts assembles the interpreter options every execution path
// shares, so engine and profiling settings cannot diverge between
// Run/Profile and between workers.
func (p *Program) machineOpts(stackSize int) interp.Options {
	return interp.Options{
		StackSize:   stackSize,
		Obs:         p.Obs,
		Engine:      p.Engine,
		ProfileMode: p.ProfileMode,
		SampleRate:  p.SampleRate,
	}
}

// workers maps the Parallelism field onto an effective worker count.
func (p *Program) workers() int {
	if p.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Parallelism
}

// Compile parses, checks, lowers, and pre-optimizes a MiniC source file.
// As in the paper, constant folding and jump optimization run before
// inline expansion.
func Compile(name, src string) (*Program, error) { return CompileWithObs(name, src, nil) }

// CompileWithObs is Compile with front-end phase accounting: lex/parse,
// semantic checking, IL generation, and pre-inline optimization each run
// under their own span in reg, and the returned Program carries the
// registry so every later pipeline stage reports into it too. A nil
// registry degrades to plain Compile.
func CompileWithObs(name, src string, reg *obs.Registry) (*Program, error) {
	stop := reg.StartSpan("frontend.parse")
	file, err := parser.Parse(name, src)
	stop()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	stop = reg.StartSpan("frontend.sema")
	prog, err := sema.Check(file)
	stop()
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", name, err)
	}
	stop = reg.StartSpan("frontend.irgen")
	mod, err := irgen.Generate(prog)
	stop()
	if err != nil {
		return nil, fmt.Errorf("lower %s: %w", name, err)
	}
	opt.PreInlineParallelObs(mod, 0, reg)
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("pre-inline optimization broke %s: %w", name, err)
	}
	return &Program{Module: mod, Original: mod.Clone(), Obs: reg, name: name}, nil
}

// Unit is one separately compiled translation unit, ready for linking.
// Cross-unit references appear as extern declarations in each unit;
// static functions and variables stay unit-private.
type Unit struct {
	Name   string
	Module *ir.Module
}

// CompileUnit compiles one translation unit for later linking. Unlike a
// whole program, a unit need not define main and may reference functions
// and variables defined elsewhere via extern declarations.
func CompileUnit(name, src string) (*Unit, error) {
	file, err := parser.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", name, err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		return nil, fmt.Errorf("lower %s: %w", name, err)
	}
	opt.PreInline(mod)
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("pre-inline optimization broke %s: %w", name, err)
	}
	return &Unit{Name: name, Module: mod}, nil
}

// UnitSource names one translation unit's source text for CompileUnits.
type UnitSource struct {
	Name string
	Src  string
}

// CompileUnits compiles several translation units concurrently: each
// unit's lex/parse/sema/irgen/pre-optimize pipeline runs in its own
// worker, bounded by par (0 = all cores, 1 = serial). Units come back in
// input order and the diagnostics of every failing unit are merged in
// input order, so any worker count produces identical results and
// identical error text.
func CompileUnits(par int, sources ...UnitSource) ([]*Unit, error) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(sources) {
		par = len(sources)
	}
	units := make([]*Unit, len(sources))
	errs := make([]error, len(sources))
	if par <= 1 {
		for i, s := range sources {
			units[i], errs[i] = CompileUnit(s.Name, s.Src)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sources) {
						return
					}
					units[i], errs[i] = CompileUnit(sources[i].Name, sources[i].Src)
				}
			}()
		}
		wg.Wait()
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return units, nil
}

// CompileAndLink is the parallel multi-unit front end: it compiles the
// units concurrently on up to par workers (0 = all cores) and links them
// into a runnable Program, producing the same module as compiling each
// unit serially and calling LinkUnits.
func CompileAndLink(name string, par int, sources ...UnitSource) (*Program, error) {
	units, err := CompileUnits(par, sources...)
	if err != nil {
		return nil, err
	}
	return LinkUnits(name, units...)
}

// CompileAndLinkObs is CompileAndLink with phase accounting: unit
// compilation runs under a "frontend" span, linking under a "link"
// span, and the returned Program carries the registry so later stages
// report into it too.
func CompileAndLinkObs(name string, par int, reg *obs.Registry, sources ...UnitSource) (*Program, error) {
	stop := reg.StartSpan("frontend")
	units, err := CompileUnits(par, sources...)
	stop()
	if err != nil {
		return nil, err
	}
	stop = reg.StartSpan("link")
	p, err := LinkUnits(name, units...)
	stop()
	if err != nil {
		return nil, err
	}
	p.Obs = reg
	return p, nil
}

// LinkUnits merges separately compiled units into a runnable Program —
// section 2.1's link-time setting, where every function body is available
// and inline expansion "can naturally be performed without sacrificing
// separate compilation".
func LinkUnits(name string, units ...*Unit) (*Program, error) {
	mods := make([]*ir.Module, len(units))
	for i, u := range units {
		mods[i] = u.Module
	}
	linked, err := link.Link(name, mods...)
	if err != nil {
		return nil, err
	}
	return &Program{Module: linked, Original: linked.Clone(), name: name}, nil
}

// MustCompile is Compile that panics on error, for examples and tests.
func MustCompile(name, src string) *Program {
	p, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the source name the program was compiled from.
func (p *Program) Name() string { return p.name }

// Run executes the working module once on the input.
func (p *Program) Run(in Input) (*RunOutput, error) {
	return p.runModule(p.Module, in)
}

// RunOriginal executes the pristine pre-inline module once.
func (p *Program) RunOriginal(in Input) (*RunOutput, error) {
	return p.runModule(p.Original, in)
}

// newEnv builds the simulated environment for one run.
func newEnv(in Input) *interp.Env {
	env := interp.NewEnv()
	for k, v := range in.Files {
		env.Files[k] = append([]byte(nil), v...)
	}
	env.Stdin = in.Stdin
	return env
}

func (p *Program) runModule(mod *ir.Module, in Input) (*RunOutput, error) {
	env := newEnv(in)
	stop := p.Obs.StartSpan("translate")
	m, err := interp.NewMachine(mod, env, p.machineOpts(in.StackSize))
	stop()
	if err != nil {
		return nil, err
	}
	st, err := m.Run()
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		Stdout:   env.Stdout.String(),
		Stderr:   env.Stderr.String(),
		ExitCode: st.ExitCode,
		Files:    env.Files,
		Stats:    st,
	}, nil
}

// ProfileInputs runs the working module once per input and averages the
// statistics — the paper's "average run-time statistics over many runs of
// a program" with representative inputs. Runs execute concurrently on up
// to Parallelism workers; see that field for the determinism contract.
func (p *Program) ProfileInputs(inputs ...Input) (*Profile, error) {
	return p.profileModule(p.Module, inputs)
}

// ProfileOriginal profiles the pristine pre-inline module.
func (p *Program) ProfileOriginal(inputs ...Input) (*Profile, error) {
	return p.profileModule(p.Original, inputs)
}

// profileWorker runs a sequence of profiling inputs on one reused
// Machine and one reused Env: the module is translated once per worker
// (under a "translate" span), then each run Resets the environment and
// re-points it at the input's file set without copying — the Env API
// never mutates input file contents in place (reads share, appends copy,
// closes replace map values), so sharing is safe and the per-run
// output-buffer and file-system copies the old fresh-Env path performed
// are gone. Profiling consumes only RunStats, so nothing else is
// retained. Machine.Run restores exact initial state between runs, so a
// reused machine is bit-identical to a fresh one — which is what keeps
// profiles identical at any Parallelism even though reuse sequences
// differ by worker count.
type profileWorker struct {
	p      *Program
	mod    *ir.Module
	worker int

	m         *interp.Machine
	env       *interp.Env
	stackSize int
}

func (w *profileWorker) run(in Input) (*RunStats, error) {
	if w.env == nil {
		w.env = interp.NewEnv()
	} else {
		w.env.Reset()
		clear(w.env.Files)
	}
	for k, v := range in.Files {
		w.env.Files[k] = v
	}
	w.env.Stdin = in.Stdin
	if w.m == nil || w.stackSize != in.StackSize {
		stop := w.p.Obs.StartSpanWorker("translate", w.worker)
		m, err := interp.NewMachine(w.mod, w.env, w.p.machineOpts(in.StackSize))
		stop()
		if err != nil {
			return nil, err
		}
		w.m = m
		w.stackSize = in.StackSize
	}
	return w.m.Run()
}

// profileModule fans the profiling runs out over a bounded worker pool.
// Each worker translates the module once and reuses its Machine across
// runs; Profile.Add is sums-and-max, so merging in input order makes the
// result bit-identical to a serial pass regardless of worker count.
func (p *Program) profileModule(mod *ir.Module, inputs []Input) (*Profile, error) {
	reg := p.Obs
	defer reg.StartSpan("profile")()
	if len(inputs) == 0 {
		inputs = []Input{{}}
	}
	par := p.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(inputs) {
		par = len(inputs)
	}
	prof := profile.NewProfile()
	if p.ProfileMode == interp.ProfileSampled {
		if k := p.SampleRate; k > 1 {
			prof.SampleRate = k
		} else if k == 0 {
			prof.SampleRate = interp.DefaultSampleRate
		}
	}
	if par <= 1 {
		pw := &profileWorker{p: p, mod: mod}
		for i, in := range inputs {
			stop := reg.StartSpanWorker("profile.run", 0)
			st, err := pw.run(in)
			stop()
			if err != nil {
				return nil, fmt.Errorf("profiling run %d: %w", i+1, err)
			}
			prof.Add(st)
		}
		return prof, nil
	}
	stats := make([]*RunStats, len(inputs))
	errs := make([]error, len(inputs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pw := &profileWorker{p: p, mod: mod, worker: worker}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(inputs) {
					return
				}
				stop := reg.StartSpanWorker("profile.run", worker)
				stats[i], errs[i] = pw.run(inputs[i])
				stop()
			}
		}(w)
	}
	wg.Wait()
	for i := range inputs {
		if errs[i] != nil {
			return nil, fmt.Errorf("profiling run %d: %w", i+1, errs[i])
		}
		prof.Add(stats[i])
	}
	return prof, nil
}

// CallGraph builds the weighted call graph of the working module with the
// profile's node and arc weights attached.
func (p *Program) CallGraph(prof *Profile) *Graph {
	defer p.Obs.StartSpan("callgraph")()
	return callgraph.Build(p.Module, prof)
}

// Inline runs profile-guided inline expansion over the working module in
// place and returns the expansion report. The pristine module remains in
// Original. Unless params.Parallelism is set explicitly, physical
// expansion inherits the Program's Parallelism: its dependency waves are
// scheduled over that many workers, with byte-identical results at any
// count.
func (p *Program) Inline(prof *Profile, params Params) (*Result, error) {
	if params.Parallelism == 0 {
		params.Parallelism = p.workers()
	}
	if params.Obs == nil {
		params.Obs = p.Obs
	}
	stop := params.Obs.StartSpan("callgraph")
	g := callgraph.Build(p.Module, prof)
	stop()
	return inline.Expand(p.Module, g, prof, params)
}

// Optimize applies the post-inline cleanup passes (copy propagation,
// constant folding, dead code elimination, jump optimization) to the
// working module — the "comprehensive code optimizations after inline
// expansion" the paper deferred. The per-function pass pipelines run
// concurrently on up to Parallelism workers; they are function-local, so
// the resulting module is identical at any worker count.
func (p *Program) Optimize() error {
	opt.PostInlineParallelObs(p.Module, p.workers(), p.Obs)
	return p.Module.Verify()
}

// EliminateTailCalls rewrites self tail calls in the working module into
// jumps — the "standard way of removing tail recursion" section 2.2 of
// the paper points to as the complement of not inlining simple recursion.
// It returns the number of rewritten call sites.
func (p *Program) EliminateTailCalls() (int, error) {
	n := opt.TailCallEliminate(p.Module)
	if err := p.Module.Verify(); err != nil {
		return n, err
	}
	return n, nil
}

// Classify categorizes every static call site of the working module as
// external / pointer / unsafe / safe under the paper's rules.
func (p *Program) Classify(prof *Profile, params callgraph.ClassifyParams) callgraph.ClassCounts {
	g := callgraph.Build(p.Module, prof)
	return callgraph.Count(g.Classify(params))
}

// ICacheConfig re-exports the instruction-cache geometry.
type ICacheConfig = icache.Config

// ICacheStats re-exports instruction-cache hit/miss statistics.
type ICacheStats = icache.Stats

// DefaultICacheConfig returns the 2 KiB direct-mapped configuration of
// the paper's companion instruction-cache study.
func DefaultICacheConfig() ICacheConfig { return icache.DefaultConfig() }

// SimulateICache executes the working module once on the input while
// simulating an instruction cache over the dynamic instruction stream,
// reproducing the paper's conclusion-section observation that inline
// expansion reduces mapping conflicts despite larger static code.
func (p *Program) SimulateICache(in Input, cfg ICacheConfig) (ICacheStats, error) {
	return simulateICache(p.Module, in, cfg, p.Obs, p.Engine)
}

// SimulateICacheOriginal simulates the cache over the pristine module.
func (p *Program) SimulateICacheOriginal(in Input, cfg ICacheConfig) (ICacheStats, error) {
	return simulateICache(p.Original, in, cfg, p.Obs, p.Engine)
}

func simulateICache(mod *ir.Module, in Input, cfg ICacheConfig, reg *obs.Registry, engine string) (ICacheStats, error) {
	defer reg.StartSpan("icache.simulate")()
	cache, err := icache.New(cfg)
	if err != nil {
		return ICacheStats{}, err
	}
	tracer := &icache.Tracer{Cache: cache, Layout: icache.NewLayout(mod)}
	env := newEnv(in)
	m, err := interp.NewMachine(mod, env, interp.Options{StackSize: in.StackSize, Trace: tracer.Step, Engine: engine})
	if err != nil {
		return ICacheStats{}, err
	}
	if _, err := m.Run(); err != nil {
		return ICacheStats{}, err
	}
	cache.Stats.RecordTo(reg, cfg)
	return cache.Stats, nil
}
