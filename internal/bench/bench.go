// Package bench contains the reproduction's benchmark suite: twelve
// miniature analogs of the UNIX programs measured by the paper (cccp, cmp,
// compress, eqn, espresso, grep, lex, make, tar, tee, wc, yacc), written
// in MiniC, together with deterministic input generators mirroring the
// paper's "representative inputs" methodology and the experiment driver
// that regenerates Tables 1 through 4.
package bench

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"inlinec"
	"inlinec/internal/obs"
)

//go:embed progs/*.c
var progFS embed.FS

// Benchmark is one suite entry: a MiniC program plus its input set.
type Benchmark struct {
	// Name matches the paper's benchmark name.
	Name string
	// Source is the MiniC program text.
	Source string
	// InputDesc matches Table 1's "input description" column.
	InputDesc string
	// Inputs holds one entry per profiling run (Table 1's "runs" column is
	// len(Inputs)).
	Inputs []inlinec.Input
}

// CLines counts non-blank source lines, the paper's static size metric.
func (b *Benchmark) CLines() int {
	n := 0
	for _, line := range strings.Split(b.Source, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Compile builds the benchmark program.
func (b *Benchmark) Compile() (*inlinec.Program, error) { return b.CompileObs(nil) }

// CompileObs builds the benchmark program with an observability registry
// attached, so the front-end phases land in the same phase breakdown as
// the rest of the methodology.
func (b *Benchmark) CompileObs(reg *obs.Registry) (*inlinec.Program, error) {
	p, err := inlinec.CompileWithObs(b.Name+".c", b.Source, reg)
	if err != nil {
		return nil, fmt.Errorf("benchmark %s: %w", b.Name, err)
	}
	return p, nil
}

// loadSource reads an embedded benchmark program.
func loadSource(name string) string {
	data, err := progFS.ReadFile("progs/" + name + ".c")
	if err != nil {
		panic(fmt.Sprintf("bench: missing embedded program %s: %v", name, err))
	}
	return string(data)
}

// registry is populated by Suite on first use.
var registry map[string]*Benchmark

// Suite returns all twelve benchmarks in the paper's table order.
func Suite() []*Benchmark {
	if registry == nil {
		registry = make(map[string]*Benchmark)
		for _, b := range buildSuite() {
			registry[b.Name] = b
		}
	}
	names := SuiteNames()
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// SuiteNames lists the benchmark names in the paper's table order.
func SuiteNames() []string {
	return []string{
		"cccp", "cmp", "compress", "eqn", "espresso", "grep",
		"lex", "make", "tar", "tee", "wc", "yacc",
	}
}

// Get returns one benchmark by name, or nil.
func Get(name string) *Benchmark {
	Suite()
	return registry[name]
}

// SortedNames returns the registered names sorted alphabetically (handy
// for deterministic iteration in tools).
func SortedNames() []string {
	Suite()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
