/* tee - copy stdin to stdout and to a file, after the UNIX tee
 * benchmark. Like the original in the paper's Table 4, tee spends
 * essentially all of its calls in external I/O routines (getchar,
 * putchar, putc), so inline expansion can eliminate almost nothing:
 * the paper reports a 0% call decrease and ~15 ILs per call. */

extern int getchar();
extern int putchar(int c);
extern int open(char *path, int mode);
extern int close(int fd);
extern int putc(int c, int fd);
extern int printf(char *fmt, ...);

int main() {
    int c, fd, n;
    fd = open("tee.out", 1);
    if (fd < 0) { printf("tee: cannot create output\n"); return 1; }
    n = 0;
    while ((c = getchar()) != -1) {
        putchar(c);
        putc(c, fd);
        n++;
    }
    close(fd);
    return 0;
}
