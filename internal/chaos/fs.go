// Package chaos is the fault-injection layer for the profile fleet's
// durability machinery. It provides:
//
//   - FS/File: the narrow filesystem surface the write-ahead log and
//     snapshot store use, with an OSFS passthrough for production;
//   - MemFS: an in-memory filesystem that models the page cache — data
//     and directory entries become durable only on Sync/SyncDir, and
//     Crash discards (or tears) everything unsynced, exactly what a
//     kill -9 or power loss does to a real disk;
//   - Injector: a deterministic, seeded wrapper that makes any FS fail
//     with short writes, fsync errors, failed or torn renames, and open
//     errors, usable from tests and via ilprofd's -chaos-fs flag;
//   - RoundTripper: the HTTP-side counterpart injecting connection
//     resets, timeouts, and 5xx responses into any http.Client.
//
// Everything is seeded: the same seed and operation sequence produces
// the same faults, so failing chaos schedules replay exactly.
package chaos

import (
	"io"
	"os"
)

// File is the handle surface the durability layer needs: sequential
// reads, appended or truncating writes, an fsync barrier, and close.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to durable storage. Until it returns
	// nil, a crash may discard or tear any write since the last Sync.
	Sync() error
}

// FS is the filesystem surface the WAL and snapshot store are written
// against. Implementations: OSFS (production), MemFS (crash-simulating
// tests), Injector (fault wrapper over either).
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create truncates or creates a file for writing.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Rename replaces newpath with oldpath. Like the POSIX call it is
	// atomic in the namespace, but the new directory entry is durable
	// only after SyncDir — and a fault layer may tear it.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Size returns the file's current length in bytes.
	Size(name string) (int64, error)
	// SyncDir makes the directory's entries (creates, renames, removes)
	// durable.
	SyncDir(dir string) error
}

// OSFS is the passthrough FS backed by the real filesystem.
type OSFS struct{}

func (OSFS) Open(name string) (File, error)   { return os.Open(name) }
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) Size(name string) (int64, error) {
	info, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// SyncDir fsyncs the directory so renames and creates survive a crash.
// Platforms that refuse to sync directories are tolerated: the error is
// swallowed, matching what robust databases do on such systems.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// EINVAL/EBADF on exotic filesystems; nothing more we can do.
		return nil
	}
	return nil
}
