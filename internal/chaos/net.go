package chaos

import (
	"errors"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// errPartitioned is the cause carried by injected dial failures.
var errPartitioned = errors.New("chaos: injected network partition")

// Network is the partition injector: an http.RoundTripper that routes
// requests addressed to stable logical hosts ("node0", "node1", ...)
// to their current real addresses, and can cut any of them off at
// will. Two properties make it the right shape for fleet tests:
//
//   - Logical naming survives restarts. A killed node comes back on a
//     new port; SetAddr repoints the name and every client keeps
//     working with its original URL — exactly how a resolver behaves.
//   - An injected cut fails with a *net.OpError{Op: "dial"}, the same
//     provably-nothing-was-sent error a real refused connection
//     yields, so client retry policies (profdb.NotCommitted) classify
//     injected partitions exactly like real ones.
//
// Each client side owns its own Network, so asymmetric partitions
// (A sees B, B does not see A) fall out naturally. Safe for concurrent
// use.
type Network struct {
	mu   sync.Mutex
	base http.RoundTripper
	addr map[string]string // logical host -> real host:port
	down map[string]bool
	cuts int64
}

// NewNetwork returns a Network delegating real sends to base
// (http.DefaultTransport when nil).
func NewNetwork(base http.RoundTripper) *Network {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Network{
		base: base,
		addr: make(map[string]string),
		down: make(map[string]bool),
	}
}

// SetAddr points a logical host at a real address. realURL may be a
// full URL ("http://127.0.0.1:41321") or a bare host:port. Call again
// after a node restarts on a new port.
func (n *Network) SetAddr(name, realURL string) {
	host := realURL
	if strings.Contains(realURL, "://") {
		if u, err := url.Parse(realURL); err == nil {
			host = u.Host
		}
	}
	n.mu.Lock()
	n.addr[name] = host
	n.mu.Unlock()
}

// SetDown cuts (or restores) one logical host.
func (n *Network) SetDown(name string, down bool) {
	n.mu.Lock()
	n.down[name] = down
	n.mu.Unlock()
}

// Partition cuts every named host in one call.
func (n *Network) Partition(names ...string) {
	n.mu.Lock()
	for _, name := range names {
		n.down[name] = true
	}
	n.mu.Unlock()
}

// Heal restores full connectivity.
func (n *Network) Heal() {
	n.mu.Lock()
	n.down = make(map[string]bool)
	n.mu.Unlock()
}

// Down reports whether a host is currently cut.
func (n *Network) Down(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[name]
}

// Cuts returns how many requests the injector has refused.
func (n *Network) Cuts() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cuts
}

// RoundTrip implements http.RoundTripper: refuse cut hosts with a dial
// error, rewrite known logical hosts to their real addresses, pass
// everything else through untouched.
func (n *Network) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	n.mu.Lock()
	if n.down[host] {
		n.cuts++
		n.mu.Unlock()
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errPartitioned}
	}
	real, known := n.addr[host]
	n.mu.Unlock()
	if !known {
		return n.base.RoundTrip(req)
	}
	clone := req.Clone(req.Context())
	clone.URL.Host = real
	clone.Host = real
	return n.base.RoundTrip(clone)
}
