package bench

import (
	"strings"
	"testing"
)

func TestAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many experiment configurations")
	}
	report, err := AblationReport(quickConfig())
	if err != nil {
		t.Fatalf("AblationReport: %v", err)
	}
	for _, frag := range []string{
		"Ablation A", "threshold",
		"Ablation B", "cap",
		"Ablation C", "profile", "leaf", "small-callee",
		"Ablation D", "linear order", "fixed point",
		"Ablation E", "held out",
	} {
		if !strings.Contains(report, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestICacheReport(t *testing.T) {
	report, err := ICacheReport([]string{"tee"}, []int{256, 1024}, quickConfig())
	if err != nil {
		t.Fatalf("ICacheReport: %v", err)
	}
	if !strings.Contains(report, "tee") || !strings.Contains(report, "256B") {
		t.Errorf("report = %q", report)
	}
	if _, err := ICacheReport([]string{"bogus"}, []int{256}, quickConfig()); err == nil {
		t.Error("unknown benchmark must fail")
	}
}
