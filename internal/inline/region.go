package inline

import (
	"fmt"
	"sort"

	"inlinec/internal/callgraph"
	"inlinec/internal/ir"
)

// planKind discriminates how an accepted arc is physically spliced.
type planKind int

const (
	// planFull is the paper's whole-body splice (the implicit default —
	// arcs without a plan entry use it).
	planFull planKind = iota
	// planPartial splices the callee's hot entry region with a guarded
	// fallback call to the original function on every cold exit.
	planPartial
	// planDevirt rewrites a pointer site as a test-and-inline of its
	// dominant profiled target, keeping the CALLPTR on the miss path.
	planDevirt
)

// expandPlan records the non-default splice for one accepted arc.
// Entries are written during serial selection and only read afterwards.
type expandPlan struct {
	kind   planKind
	target string      // planDevirt: the dominant target to test for
	region *regionPlan // planPartial: the selection-time region snapshot
}

// regionPlan is a hot entry region extracted from a callee: a snapshot
// of the body (selection-time, so expansion order cannot perturb it)
// plus the set of instruction indices that form the region.
type regionPlan struct {
	callee  *ir.Func
	include map[int]bool
	size    int // real-instruction count of the region
}

// planPartial attempts hot-region extraction for an arc whose callee was
// rejected by the per-callee size limit. It returns the plan, the
// estimated code growth, and a human-readable detail on success, or a
// nil plan and the reason no region exists.
func (il *Inliner) planPartial(a *callgraph.Arc) (plan *expandPlan, grow int, detail, why string) {
	fn := il.mod.Func(a.Callee.Name)
	if fn == nil {
		return nil, 0, "", "callee body unavailable"
	}
	snap := fn.Clone()
	rp, why := planRegion(snap, il.params.MaxCalleeSize)
	if rp == nil {
		return nil, 0, "", why
	}
	// Growth: the region itself, the fallback call, and the bail-out jump.
	grow = rp.size + 2
	detail = fmt.Sprintf("hot entry region %d of %d IL; cold paths fall back to %s",
		rp.size, snap.CodeSize(), snap.Name)
	return &expandPlan{kind: planPartial, region: rp}, grow, detail, ""
}

// planRegion computes the hot entry region of callee: the set of
// instructions reachable from entry through side-effect-free code, cut
// at the budget. The region is safe to execute speculatively — if
// control leaves it before returning, the fallback re-executes the
// original function from scratch, so every instruction in the region
// must be re-executable: no calls, and stores only through frame
// addresses materialized (and confined) inside the region. Returns nil
// and a reason when no usable region exists.
func planRegion(callee *ir.Func, budget int) (*regionPlan, string) {
	code := callee.Code
	labels := callee.LabelIndex()

	// Frame-address registers: stores are re-executable only when they
	// write the callee's own frame (discarded by the fallback's fresh
	// activation). Registers are single-assignment in this IL, so one
	// def-site map is sound.
	addrDef := make(map[ir.Reg]int)
	for pc := range code {
		if code[pc].Op == ir.OpAddrL && code[pc].Dst != ir.NoReg {
			addrDef[code[pc].Dst] = pc
		}
	}
	pure := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpLabel, ir.OpNop, ir.OpConst, ir.OpMov, ir.OpNeg, ir.OpNot,
			ir.OpAddrG, ir.OpAddrL, ir.OpAddrF, ir.OpLoad, ir.OpJump, ir.OpBr, ir.OpRet:
			return true
		case ir.OpStore:
			if in.A.Kind != ir.VKReg {
				return false
			}
			_, toFrame := addrDef[in.A.Reg]
			return toFrame
		default:
			return in.Op.IsBinary()
		}
	}

	// Deterministic BFS from the entry. Successors are enqueued only for
	// included instructions, so every excluded-but-enqueued pc marks a
	// cold exit edge out of the region.
	include := make(map[int]bool)
	size, coldExits := 0, 0
	queue := []int{0}
	seen := map[int]bool{0: true}
	visit := func(pc int) {
		if pc < len(code) && !seen[pc] {
			seen[pc] = true
			queue = append(queue, pc)
		}
	}
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		in := &code[pc]
		if !pure(in) {
			coldExits++
			continue
		}
		if in.IsReal() {
			if budget > 0 && size+1 > budget {
				coldExits++
				continue
			}
			size++
		}
		include[pc] = true
		switch in.Op {
		case ir.OpJump:
			visit(labels[in.Label])
		case ir.OpBr:
			visit(labels[in.Label])
			visit(pc + 1)
		case ir.OpRet:
		default:
			visit(pc + 1)
		}
	}

	if coldExits == 0 {
		return nil, "entry region covers every reachable path"
	}
	if size == 0 {
		return nil, "entry instruction is not re-executable"
	}
	hasRet := false
	for pc := range include {
		if code[pc].Op == ir.OpRet {
			hasRet = true
			break
		}
	}
	if !hasRet {
		return nil, "no return is reachable within the region budget"
	}

	// Confinement: a frame address may only feed loads and stores inside
	// the region. Any other use — stored as a value, returned, branched
	// on, folded into arithmetic — lets the address of a speculative slot
	// escape into state the fallback path could observe.
	isAddr := func(v ir.Value) bool {
		if v.Kind != ir.VKReg {
			return false
		}
		_, ok := addrDef[v.Reg]
		return ok
	}
	for pc := range include {
		in := &code[pc]
		switch in.Op {
		case ir.OpLoad:
			// in.A is the address operand: allowed.
		case ir.OpStore:
			if isAddr(in.B) {
				return nil, "a frame address escapes the entry region"
			}
		default:
			if isAddr(in.A) || isAddr(in.B) {
				return nil, "a frame address escapes the entry region"
			}
		}
		// Addresses used by the region must be materialized inside it;
		// an addrl hoisted outside would read as zero speculatively.
		if in.Op == ir.OpLoad || in.Op == ir.OpStore {
			if in.A.Kind == ir.VKReg {
				if def, ok := addrDef[in.A.Reg]; ok && !include[def] {
					return nil, "a memory address is materialized outside the region"
				}
			}
		}
	}
	return &regionPlan{callee: callee, include: include, size: size}, ""
}

// splicePartialCall replaces the OpCall at idx with the callee's hot
// entry region followed by a guarded fallback: the region's returns
// deliver the value and jump past the fallback; every cold exit jumps to
// a fallback block holding a call to the original (unsplit) function.
// The fallback call keeps the site's CallID, so profiling the
// transformed module counts exactly the invocations that left the
// region.
func splicePartialCall(fn *ir.Func, idx int, rp *regionPlan) error {
	call := fn.Code[idx]
	callee := rp.callee
	if call.Op != ir.OpCall {
		return fmt.Errorf("instruction %d is %s, not a call", idx, call.Op)
	}
	if call.Sym != callee.Name {
		return fmt.Errorf("call targets %s, not %s", call.Sym, callee.Name)
	}
	if len(call.Args) < callee.NumParams {
		return fmt.Errorf("call has %d args, callee %s wants %d", len(call.Args), callee.Name, callee.NumParams)
	}

	labels := callee.LabelIndex()
	regBase := ir.Reg(fn.NumRegs)
	fn.NumRegs += callee.NumRegs
	slotMap := make([]int, len(callee.Slots))
	for i, s := range callee.Slots {
		slotMap[i] = fn.AddSlot(callee.Name+"."+s.Name, s.Size, s.Align, false)
	}
	labelMap := make(map[int]int)
	pcs := make([]int, 0, len(rp.include))
	for pc := range rp.include {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		if callee.Code[pc].Op == ir.OpLabel {
			labelMap[callee.Code[pc].Label] = fn.NewLabel()
		}
	}
	contLabel := fn.NewLabel()
	fallLabel := fn.NewLabel()

	mapVal := func(v ir.Value) ir.Value {
		if v.Kind == ir.VKReg {
			v.Reg += regBase
		}
		return v
	}

	var body []ir.Instr
	for i := 0; i < callee.NumParams; i++ {
		slot := fn.Slots[slotMap[i]]
		addrReg := fn.NewReg()
		body = append(body,
			ir.Instr{Op: ir.OpAddrL, Dst: addrReg, A: ir.C(int64(slotMap[i])), Pos: call.Pos},
			ir.Instr{Op: ir.OpStore, A: ir.R(addrReg), B: call.Args[i], Size: accessOf(slot.Size), Pos: call.Pos},
		)
	}
	// Emit the region in original instruction order (adjacency inside the
	// region is preserved, so fallthrough edges stay implicit); edges
	// leaving the region are rewritten to target the fallback block.
	for _, pc := range pcs {
		in := callee.Code[pc] // copy
		fallsThrough := true
		switch in.Op {
		case ir.OpLabel:
			in.Label = labelMap[in.Label]
		case ir.OpJump:
			if rp.include[labels[in.Label]] {
				in.Label = labelMap[in.Label]
			} else {
				in.Label = fallLabel
			}
			fallsThrough = false
		case ir.OpBr:
			in.A = mapVal(in.A)
			if rp.include[labels[in.Label]] {
				in.Label = labelMap[in.Label]
			} else {
				in.Label = fallLabel
			}
		case ir.OpAddrL:
			in.A = ir.C(int64(slotMap[in.A.Imm]))
		case ir.OpRet:
			// The hot path completed: deliver the value and skip the
			// fallback.
			if call.Dst != ir.NoReg {
				mv := ir.Instr{Op: ir.OpMov, Dst: call.Dst, Pos: in.Pos}
				if in.A.Kind == ir.VKNone {
					mv.A = ir.C(0)
				} else {
					mv.A = mapVal(in.A)
				}
				body = append(body, mv)
			}
			body = append(body, ir.Instr{Op: ir.OpJump, Label: contLabel, Pos: in.Pos})
			continue
		default:
			in.A = mapVal(in.A)
			in.B = mapVal(in.B)
		}
		if in.Dst != ir.NoReg {
			in.Dst += regBase
		}
		body = append(body, in)
		if fallsThrough && !rp.include[pc+1] {
			body = append(body, ir.Instr{Op: ir.OpJump, Label: fallLabel, Pos: in.Pos})
		}
	}
	// The fallback re-executes the original function; the speculative
	// region was side-effect-free, so re-execution from a fresh
	// activation is exact.
	fb := call
	fb.Args = append([]ir.Value(nil), call.Args...)
	body = append(body,
		ir.Instr{Op: ir.OpLabel, Label: fallLabel, Pos: call.Pos},
		fb,
		ir.Instr{Op: ir.OpLabel, Label: contLabel, Pos: call.Pos},
	)
	fn.Inlined = append(fn.Inlined, callee.Name)

	out := make([]ir.Instr, 0, len(fn.Code)-1+len(body))
	out = append(out, fn.Code[:idx]...)
	out = append(out, body...)
	out = append(out, fn.Code[idx+1:]...)
	fn.Code = out
	return nil
}
