package inline

import (
	"testing"

	"inlinec/internal/callgraph"
)

// selectedByCaller runs phases 1 and 2 and groups the accepted arcs by
// caller, mirroring what expandAll does before scheduling.
func selectedByCaller(t *testing.T, il *Inliner) map[string][]*callgraph.Arc {
	t.Helper()
	res := &Result{OriginalSize: il.mod.TotalCodeSize()}
	il.linearize(res)
	il.selectSites(res)
	byCaller := make(map[string][]*callgraph.Arc)
	for _, a := range il.graph.Arcs {
		if a.Status == callgraph.StatusToBeExpanded {
			byCaller[a.Caller.Name] = append(byCaller[a.Caller.Name], a)
		}
	}
	return byCaller
}

// TestPlanWavesChain: on the three-level chain, the dependency DAG must
// schedule middle before top before main, and in general every caller
// must come strictly after all of its still-pending callees.
func TestPlanWavesChain(t *testing.T) {
	mod, g, prof := build(t, chainSrc)
	il := New(mod, g, prof, Params{WeightThreshold: 1, SizeLimitFactor: 4.0})
	byCaller := selectedByCaller(t, il)
	if len(byCaller) < 2 {
		t.Fatalf("chain selection too small to schedule: %d callers", len(byCaller))
	}
	waves := il.planWaves(byCaller)

	waveOf := make(map[string]int)
	total := 0
	for k, wave := range waves {
		for _, name := range wave {
			waveOf[name] = k
			total++
		}
	}
	if total != len(byCaller) {
		t.Fatalf("waves hold %d callers, selection produced %d", total, len(byCaller))
	}
	for caller, arcs := range byCaller {
		for _, a := range arcs {
			if _, pending := byCaller[a.Callee.Name]; pending && waveOf[a.Callee.Name] >= waveOf[caller] {
				t.Errorf("caller %s (wave %d) scheduled no later than pending callee %s (wave %d)",
					caller, waveOf[caller], a.Callee.Name, waveOf[a.Callee.Name])
			}
		}
	}
	if len(waves) < 2 {
		t.Errorf("chain program should need multiple waves, got %d", len(waves))
	}
}

// TestParallelExpandMatchesSerial: wave scheduling is invisible — the
// module bytes, expansion count, and program behaviour match the serial
// walk at every worker count, including more workers than callers.
func TestParallelExpandMatchesSerial(t *testing.T) {
	for _, src := range []string{chainSrc, diamondSrc} {
		expand := func(par int) (string, int, string) {
			mod, g, prof := build(t, src)
			res, err := Expand(mod, g, prof, Params{
				WeightThreshold: 1, SizeLimitFactor: 4.0, Parallelism: par,
			})
			if err != nil {
				t.Fatalf("expand (par %d): %v", par, err)
			}
			out, _ := runModule(t, mod)
			return mod.String(), res.NumExpansions, out
		}
		wantMod, wantN, wantOut := expand(1)
		if wantN == 0 {
			t.Fatal("workload selected nothing to expand")
		}
		for _, par := range []int{2, 8, 64} {
			gotMod, gotN, gotOut := expand(par)
			if gotMod != wantMod {
				t.Errorf("par %d: module differs from serial expansion", par)
			}
			if gotN != wantN {
				t.Errorf("par %d: %d expansions, serial did %d", par, gotN, wantN)
			}
			if gotOut != wantOut {
				t.Errorf("par %d: program output %q, serial %q", par, gotOut, wantOut)
			}
		}
	}
}

// diamondSrc gives wave 0 more than one caller, so parallel workers
// genuinely run concurrently within a wave.
const diamondSrc = `
extern int printf(char *fmt, ...);
int base(int x) { return x * 3 + 1; }
int left(int x) { return base(x) + base(x + 1); }
int right(int x) { return base(x) ^ 7; }
int join(int x) { return left(x) + right(x); }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 80; i++) s += join(i);
    printf("%d\n", s);
    return 0;
}
`
