package profdb_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inlinec/internal/profdb"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenDB builds a fixed database by hand — two program versions, two
// generations — so the golden bytes are hermetic (no compiler in the
// loop) and pin both the container format and the merge arithmetic.
func goldenDB() *profdb.DB {
	db := profdb.NewDB("espresso.c")
	mk := func(fp string, gen, runs int, il int64, sites map[profdb.SiteKey]int64) *profdb.Record {
		r := profdb.NewRecord(fp, gen)
		r.Runs = runs
		r.IL = il
		r.Control = il / 4
		r.Calls = il / 10
		r.Returns = il / 10
		r.MaxStack = 4096
		r.Funcs = map[string]int64{"main": int64(runs), "cover": 40 * int64(runs)}
		r.Sites = sites
		return r
	}
	k := func(caller, callee string, ord int, ph uint32) profdb.SiteKey {
		return profdb.SiteKey{Caller: caller, Callee: callee, Ordinal: ord, PosHash: ph}
	}
	db.Ingest(mk("aaaa000011112222", 1, 10, 50000, map[profdb.SiteKey]int64{
		k("main", "cover", 0, 0x1111aa00):  400,
		k("cover", "count", 0, 0x2222bb00): 3600,
		k("cover", "count", 1, 0x3333cc00): 120,
	}))
	db.Ingest(mk("aaaa000011112222", 2, 4, 21000, map[profdb.SiteKey]int64{
		k("main", "cover", 0, 0x1111aa00):  160,
		k("cover", "count", 0, 0x2222bb00): 1440,
	}))
	db.Ingest(mk("bbbb999988887777", 2, 2, 9000, map[profdb.SiteKey]int64{
		k("main", "cover", 0, 0x1111aa77):  80,
		k("cover", "count", 0, 0x2222bb77): 700,
	}))
	return db
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenDatabase pins the serialized database format and proves the
// decoder reproduces it exactly.
func TestGoldenDatabase(t *testing.T) {
	db := goldenDB()
	var sb strings.Builder
	if _, err := db.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.profdb", sb.String())

	back, err := profdb.ReadDB(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("golden bytes do not parse: %v", err)
	}
	var sb2 strings.Builder
	if _, err := back.WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Errorf("golden round trip not identity:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
}

// TestGoldenMerge pins the weighted merge (decay + stale down-weighting)
// as a serialized snapshot.
func TestGoldenMerge(t *testing.T) {
	merged, stats := goldenDB().Merge("aaaa000011112222", profdb.DefaultMergeParams())
	if stats.ExactRecords != 2 || stats.StaleRecords != 1 {
		t.Fatalf("unexpected merge stats %+v", stats)
	}
	var sb strings.Builder
	if _, err := profdb.WriteSnapshot(&sb, "espresso.c", merged); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_merge.profsnap", sb.String())

	_, back, err := profdb.ReadSnapshot(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("merged snapshot does not parse: %v", err)
	}
	var sb2 strings.Builder
	if _, err := profdb.WriteSnapshot(&sb2, "espresso.c", back); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Errorf("snapshot round trip not identity")
	}
}
