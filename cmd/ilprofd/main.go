// Command ilprofd is the fleet profile-ingestion service: a long-running
// HTTP daemon that accepts profdb snapshots from any number of profiling
// machines, batches them into one persistent profile database through a
// single writer, and serves deterministic weighted merges back to
// compiler invocations.
//
//	ilprofd -db espresso.profdb -addr 127.0.0.1:7411
//
// API:
//
//	POST /ingest            body: ILPROFSNAP payload (ilprof -post emits these)
//	GET  /profile?fingerprint=<fp>[&halflife=N][&stale=W]
//	                        merged ILPROFSNAP for that program version
//	GET  /stats             ingest/merge/staleness counters as JSON
//	GET  /metrics           the same counters plus latency histograms, WAL
//	                        fsync timings, and recovery state, in Prometheus
//	                        text exposition format
//
// /stats and /metrics are two views of one registry, so their counts can
// never disagree. Every request is answered with an X-Request-Id header
// and logged as one JSON line to stderr.
//
// Responses to /ingest are sent only after the snapshot is committed to
// the in-memory store, so a client that ingests and immediately fetches
// /profile observes its own write. The database file is rewritten
// atomically every -flush-every commits and once more on shutdown
// (SIGINT/SIGTERM), so killing the daemon never loses acknowledged data
// beyond the final flush.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"inlinec/internal/chaos"
	"inlinec/internal/obs"
	"inlinec/internal/profdb"
)

func main() {
	shutdown := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(shutdown)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, shutdown))
}

// ingestReq is one parsed snapshot waiting for the writer, with the
// channel its HTTP handler blocks on until commit.
type ingestReq struct {
	program string
	rec     *profdb.Record
	done    chan error
}

// server owns the database. All mutation flows through the writer
// goroutine (serve loop over ingestCh); readers take the RLock. With a
// backing store, an ingest is acknowledged only after its write-ahead
// log frame is durable; without one (dbPath == "") the daemon runs
// purely in memory, as some tests and ad-hoc fleets do.
//
// All operational counters live in the obs registry: /stats reads them
// through the same handles /metrics exports, so the two endpoints are
// views of one set of numbers and cannot drift apart.
type server struct {
	mu         sync.RWMutex
	db         *profdb.DB
	store      *profdb.Store // nil in pure in-memory mode
	flushEvery int

	ingestCh chan ingestReq
	writerWG sync.WaitGroup

	obs  *obs.Registry
	logw io.Writer // request-log destination (nil = no log lines)

	ingested     *obs.Counter // snapshots committed
	ingestErrors *obs.Counter // rejected payloads (parse/program mismatch)
	runsIngested *obs.Counter
	merges       *obs.Counter // /profile responses served
	staleMerged  *obs.Counter // stale records folded into served merges
	flushes      *obs.Counter
	naks         *obs.Counter   // 503 NAKs: retries observed from this side
	batchSize    *obs.Histogram // records per writer commit
	sinceFlush   int            // writer-goroutine private
}

func newServer(db *profdb.DB, flushEvery int) *server {
	if flushEvery <= 0 {
		flushEvery = 16
	}
	reg := obs.NewRegistry()
	return &server{
		db:         db,
		flushEvery: flushEvery,
		ingestCh:   make(chan ingestReq, 64),
		obs:        reg,
		ingested: reg.Counter("ilprofd_ingested_snapshots_total",
			"Snapshots committed; each was acked only after commit (WAL-durable with a store)."),
		ingestErrors: reg.Counter("ilprofd_ingest_errors_total",
			"Ingest requests rejected: unparseable payloads, program mismatches, or WAL NAKs."),
		runsIngested: reg.Counter("ilprofd_ingested_runs_total",
			"Profiled runs carried by committed snapshots."),
		merges: reg.Counter("ilprofd_merges_served_total",
			"GET /profile merge responses computed."),
		staleMerged: reg.Counter("ilprofd_stale_records_merged_total",
			"Stale or dropped records encountered while serving merges."),
		flushes: reg.Counter("ilprofd_flushes_total",
			"Snapshot flushes completed by the daemon (periodic and shutdown)."),
		naks: reg.Counter("ilprofd_ingest_naks_total",
			"503 NAKs sent because the WAL was unavailable; clients retry these."),
		batchSize: reg.Histogram("ilprofd_commit_batch_records",
			"Records per single-writer commit batch.", obs.SizeBuckets),
	}
}

// newStoreServer wraps a crash-safe store: the served database IS the
// store's, and every ack is WAL-durable.
func newStoreServer(store *profdb.Store, flushEvery int) *server {
	s := newServer(store.DB(), flushEvery)
	s.store = store
	return s
}

// start launches the single writer goroutine.
func (s *server) start() {
	s.writerWG.Add(1)
	go func() {
		defer s.writerWG.Done()
		for {
			req, ok := <-s.ingestCh
			if !ok {
				return
			}
			// Batch: take everything already queued behind this request so
			// one lock acquisition and at most one flush cover the burst.
			batch := []ingestReq{req}
			closed := false
		drain:
			for len(batch) < 64 {
				select {
				case r, more := <-s.ingestCh:
					if !more {
						closed = true
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
			s.commit(batch)
			if closed {
				return
			}
		}
	}()
}

// commit applies one batch under the write lock and flushes if due.
// With a store, the whole batch reaches the write-ahead log with a
// single fsync before any handler is released — the ack barrier.
func (s *server) commit(batch []ingestReq) {
	s.batchSize.Observe(float64(len(batch)))
	s.mu.Lock()
	var errs []error
	if s.store != nil {
		programs := make([]string, len(batch))
		recs := make([]*profdb.Record, len(batch))
		for i, r := range batch {
			programs[i], recs[i] = r.program, r.rec
		}
		errs = s.store.IngestBatch(programs, recs)
	} else {
		errs = make([]error, len(batch))
		for i, r := range batch {
			errs[i] = s.ingestLocked(r.program, r.rec)
		}
	}
	for i, r := range batch {
		if errs[i] == nil {
			s.ingested.Inc()
			s.runsIngested.Add(int64(r.rec.Runs))
			s.sinceFlush++
		} else {
			s.ingestErrors.Inc()
		}
		r.done <- errs[i]
	}
	flush := s.store != nil && s.sinceFlush >= s.flushEvery
	if flush {
		s.sinceFlush = 0
		if err := s.store.Flush(); err == nil {
			s.flushes.Inc()
		}
	}
	s.mu.Unlock()
}

func (s *server) ingestLocked(program string, rec *profdb.Record) error {
	if s.db.Program == "" {
		s.db.Program = program
	} else if program != "" && program != s.db.Program {
		return fmt.Errorf("snapshot is for program %q, store holds %q", program, s.db.Program)
	}
	return s.db.Ingest(rec)
}

// stop closes the ingest path, waits for the writer to drain, and runs
// the final snapshot flush.
func (s *server) stop() error {
	close(s.ingestCh)
	s.writerWG.Wait()
	if s.store == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.store.Close(); err != nil {
		return err
	}
	s.flushes.Inc()
	return nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return obs.NewRequestLog(s.logw, s.obs, "/ingest", "/profile", "/stats", "/metrics").Wrap(mux)
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	program, rec, err := profdb.ReadSnapshot(body)
	if err != nil {
		s.ingestErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	done := make(chan error, 1)
	s.ingestCh <- ingestReq{program: program, rec: rec, done: done}
	if err := <-done; err != nil {
		if errors.Is(err, profdb.ErrWAL) {
			// The payload was fine but could not be made durable. 503 is
			// an explicit NAK — nothing was committed, clients may retry.
			s.naks.Inc()
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok: %d run(s) ingested for %s gen %d\n", rec.Runs, rec.Fingerprint, rec.Gen)
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	fp := r.URL.Query().Get("fingerprint")
	if fp == "" {
		http.Error(w, "missing fingerprint parameter", http.StatusBadRequest)
		return
	}
	params := profdb.DefaultMergeParams()
	if v := r.URL.Query().Get("halflife"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad halflife parameter", http.StatusBadRequest)
			return
		}
		params.HalfLifeGens = n
	}
	if v := r.URL.Query().Get("stale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			http.Error(w, "bad stale parameter (want 0..1)", http.StatusBadRequest)
			return
		}
		params.StaleWeight = f
	}
	s.mu.RLock()
	merged, stats := s.db.Merge(fp, params)
	program := s.db.Program
	s.mu.RUnlock()
	s.merges.Inc()
	s.staleMerged.Add(int64(stats.StaleRecords + stats.DroppedRecords))
	if stats.Records == 0 || merged.Runs == 0 {
		http.Error(w, fmt.Sprintf("no profile data for fingerprint %s", fp), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Profdb-Exact-Records", strconv.Itoa(stats.ExactRecords))
	w.Header().Set("X-Profdb-Stale-Records", strconv.Itoa(stats.StaleRecords))
	w.Header().Set("X-Profdb-Dropped-Records", strconv.Itoa(stats.DroppedRecords))
	profdb.WriteSnapshot(w, program, merged)
}

// statsJSON is the GET /stats document.
type statsJSON struct {
	Program         string `json:"program"`
	Records         int    `json:"records"`
	TotalRuns       int    `json:"total_runs"`
	MaxGen          int    `json:"max_gen"`
	IngestedSnaps   int64  `json:"ingested_snapshots"`
	IngestedRuns    int64  `json:"ingested_runs"`
	IngestErrors    int64  `json:"ingest_errors"`
	MergesServed    int64  `json:"merges_served"`
	StaleRecsMerged int64  `json:"stale_records_merged"`
	Flushes         int64  `json:"flushes"`
	UptimeSeconds   int64  `json:"uptime_seconds"`
}

var startedAt = time.Now()

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	doc := statsJSON{
		Program:   s.db.Program,
		Records:   len(s.db.Records),
		TotalRuns: s.db.TotalRuns(),
		MaxGen:    s.db.MaxGen(),
	}
	s.mu.RUnlock()
	doc.IngestedSnaps = s.ingested.Value()
	doc.IngestedRuns = s.runsIngested.Value()
	doc.IngestErrors = s.ingestErrors.Value()
	doc.MergesServed = s.merges.Value()
	doc.StaleRecsMerged = s.staleMerged.Value()
	doc.Flushes = s.flushes.Value()
	doc.UptimeSeconds = int64(time.Since(startedAt).Seconds())
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&doc)
}

// handleMetrics serves the registry in Prometheus text exposition
// format. Database-shape gauges are refreshed under the read lock at
// scrape time; everything else is already live in the registry.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	records, runs, maxGen := len(s.db.Records), s.db.TotalRuns(), s.db.MaxGen()
	s.mu.RUnlock()
	s.obs.Gauge("ilprofd_db_records", "Records in the served database.").Set(float64(records))
	s.obs.Gauge("ilprofd_db_runs", "Total profiled runs in the served database.").Set(float64(runs))
	s.obs.Gauge("ilprofd_db_max_gen", "Highest generation in the served database.").Set(float64(maxGen))
	s.obs.Gauge("ilprofd_uptime_seconds", "Seconds since daemon start.").Set(time.Since(startedAt).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w)
}

// run starts the daemon. ready, if non-nil, receives the bound address
// once the listener is up (tests use this); shutdown, when closed,
// triggers graceful drain + final flush.
func run(args []string, stdout, stderr io.Writer, ready func(addr string), shutdown <-chan struct{}) int {
	fs := flag.NewFlagSet("ilprofd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	dbPath := fs.String("db", "", "profile database file (created if missing; WAL-backed, flushed atomically)")
	program := fs.String("program", "", "program name for a fresh database (else taken from the first snapshot)")
	flushEvery := fs.Int("flush-every", 16, "write a fresh snapshot (and rotate the WAL) after this many committed snapshots")
	chaosSpec := fs.String("chaos-fs", "", "fault-injection spec for the store filesystem (testing only), e.g. seed=1,write=0.02,sync=0.02,rename=0.01,torn=0.01")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbPath == "" {
		fmt.Fprintln(stderr, "ilprofd: -db is required")
		fs.PrintDefaults()
		return 2
	}
	var fsys chaos.FS = chaos.OSFS{}
	var inj *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.ParseConfig(*chaosSpec)
		if err != nil {
			fmt.Fprintf(stderr, "ilprofd: -chaos-fs: %v\n", err)
			return 2
		}
		inj = chaos.NewInjector(fsys, cfg)
		inj.SetEnabled(false) // recovery always runs fault-free
		fsys = inj
	}
	store, recovery, err := profdb.Open(fsys, *dbPath, *program)
	if err != nil {
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 1
	}
	if recovery.ReplayedRecords > 0 || !recovery.Clean() {
		fmt.Fprintf(stderr, "ilprofd: recovery: %s\n", recovery)
	}
	if inj != nil {
		inj.SetEnabled(true)
		fmt.Fprintf(stderr, "ilprofd: CHAOS MODE: injecting filesystem faults (%s)\n", *chaosSpec)
	}
	db := store.DB()
	s := newStoreServer(store, *flushEvery)
	s.logw = stderr
	store.Obs = s.obs // WAL fsync latency and batch sizes land on /metrics
	recovery.RecordTo(s.obs)
	s.start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ilprofd: listening on %s (db %s, %d record(s), %d run(s))\n",
		ln.Addr(), *dbPath, len(db.Records), db.TotalRuns())
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{Handler: s.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		s.stop()
		return 1
	case <-shutdown:
	}
	if inj != nil {
		inj.SetEnabled(false) // graceful shutdown drains and flushes fault-free
	}
	fmt.Fprintln(stderr, "ilprofd: shutting down")
	hs.Close()
	if err := s.stop(); err != nil {
		fmt.Fprintf(stderr, "ilprofd: final flush: %v\n", err)
		return 1
	}
	s.mu.RLock()
	records, runs := len(s.db.Records), s.db.TotalRuns()
	s.mu.RUnlock()
	fmt.Fprintf(stdout, "ilprofd: flushed %s: %d record(s), %d run(s), %d snapshot(s) ingested this session\n",
		*dbPath, records, runs, s.ingested.Value())
	return 0
}
