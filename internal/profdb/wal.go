package profdb

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Write-ahead log format (ILWAL 1). The WAL is the ack barrier of the
// fleet ingestion daemon: a snapshot is acknowledged only after its WAL
// frame is durable, so kill -9 at any instant loses no acked record.
//
//	ILWAL 1 <epoch>
//	rec <payload-bytes> <crc32-hex>
//	<payload — one ILPROFSNAP serialization>
//	rec ...
//
// Each frame carries the payload length and an IEEE CRC32 of the
// payload, so replay detects exactly where a torn append stops: the
// synced prefix parses frame by frame, and the first length, checksum,
// or framing violation discards the rest of the file. The epoch in the
// header ties the log to the snapshot lifecycle — a snapshot at epoch E
// embeds every frame logged at epochs < E, so recovery replays a WAL
// exactly when its epoch is >= the loaded snapshot's (see Store).

const walMagic = "ILWAL 1"

// walHeader renders the log's first line.
func walHeader(epoch int) []byte {
	return []byte(fmt.Sprintf("%s %d\n", walMagic, epoch))
}

// appendWALFrame appends one checksummed frame to buf.
func appendWALFrame(buf *bytes.Buffer, payload []byte) {
	fmt.Fprintf(buf, "rec %d %08x\n", len(payload), crc32.ChecksumIEEE(payload))
	buf.Write(payload)
	buf.WriteByte('\n')
}

// parseWAL decodes a log image. It returns the header epoch, the intact
// payloads in append order, and how many trailing bytes were discarded
// at the first framing/checksum violation (torn append). ok is false
// when the header itself is unusable — the whole file is then garbage.
func parseWAL(data []byte) (epoch int, payloads [][]byte, discarded int64, ok bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return 0, nil, int64(len(data)), false
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0]+" "+fields[1] != walMagic {
		return 0, nil, int64(len(data)), false
	}
	e, err := strconv.Atoi(fields[2])
	if err != nil || e < 0 {
		return 0, nil, int64(len(data)), false
	}
	epoch = e
	off := nl + 1
	for off < len(data) {
		frameStart := off
		bad := func() (int, [][]byte, int64, bool) {
			return epoch, payloads, int64(len(data) - frameStart), true
		}
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return bad()
		}
		fields := strings.Fields(string(data[off : off+nl]))
		if len(fields) != 3 || fields[0] != "rec" {
			return bad()
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return bad()
		}
		sum, err := strconv.ParseUint(fields[2], 16, 32)
		if err != nil {
			return bad()
		}
		off += nl + 1
		if off+n+1 > len(data) {
			return bad()
		}
		payload := data[off : off+n]
		if data[off+n] != '\n' || crc32.ChecksumIEEE(payload) != uint32(sum) {
			return bad()
		}
		payloads = append(payloads, payload)
		off += n + 1
	}
	return epoch, payloads, 0, true
}
