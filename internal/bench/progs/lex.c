/* lex - a miniature lexical analyzer generator and driver, after the
 * UNIX lex benchmark ("lexers for C, Lisp, awk, and pic" in the paper).
 * The spec (file "lex.spec") lists keyword ("K word") and operator
 * ("O symbol") tokens, terminated by ".". The program then scans stdin
 * with longest-match against the spec plus built-in identifier, number,
 * string, and whitespace rules, and prints a token census. Per-char
 * classification and per-spec matching are the hot functions; lex ran
 * only 4 inputs in the paper but each was large. */

extern int getchar();
extern int open(char *path, int mode);
extern int close(int fd);
extern int getc(int fd);
extern int read(int fd, char *buf, int n);
extern int printf(char *fmt, ...);

enum { MAXSPECS = 64, MAXTOKLEN = 64, MAXLINE = 1024 };

char spec_text[MAXSPECS][MAXTOKLEN];
int spec_kind[MAXSPECS]; /* 'K' or 'O' */
int nspecs;

int count_keyword;
int count_operator;
int count_ident;
int count_number;
int count_string;
int count_other;

char linebuf[MAXLINE];
int linelen;
int linepos;

int opt_hist;        /* cold: token length histogram */
int ident_lens[16];

/* cold 'T' mode: intern identifiers and report the most frequent */
enum { SYMMAX = 256, SYMLEN = 24 };
char sym_names[SYMMAX][SYMLEN];
int sym_counts[SYMMAX];
int nsyms;
int opt_symtab;
int opt_validate; /* cold 'V': validate the spec table */
int lineno;       /* current input line, for cold diagnostics */

/* ---- classification ---- */

int is_digit(int c) { return c >= '0' && c <= '9'; }

int is_alpha(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int is_alnum(int c) { return is_alpha(c) || is_digit(c); }

int is_space(int c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

/* ---- spec loading ---- */

int load_specs() {
    int fd, c, n, kind;
    fd = open("lex.spec", 0);
    if (fd < 0) return 0;
    nspecs = 0;
    for (;;) {
        kind = getc(fd);
        if (kind == -1 || kind == '.') break;
        if (kind == '\n') continue;
        /* skip the blank */
        getc(fd);
        n = 0;
        while ((c = getc(fd)) != -1 && c != '\n') {
            if (n < MAXTOKLEN - 1) spec_text[nspecs][n++] = c;
        }
        spec_text[nspecs][n] = '\0';
        spec_kind[nspecs] = kind;
        if (nspecs < MAXSPECS - 1) nspecs++;
    }
    close(fd);
    return nspecs;
}

/* ---- line buffering ---- */

char rawbuf[MAXLINE];
int rawlen;
int rawpos;

int in_byte() {
    if (rawpos >= rawlen) {
        rawlen = read(0, rawbuf, MAXLINE);
        rawpos = 0;
        if (rawlen <= 0) return -1;
    }
    return rawbuf[rawpos++];
}

int fill_line() {
    int c;
    linelen = 0;
    linepos = 0;
    for (;;) {
        c = in_byte();
        if (c == -1) {
            if (linelen == 0) return 0;
            break;
        }
        if (linelen < MAXLINE - 1) linebuf[linelen++] = c;
        if (c == '\n') break;
    }
    linebuf[linelen] = '\0';
    return 1;
}

int peek_at(int off) {
    if (linepos + off >= linelen) return -1;
    return linebuf[linepos + off];
}

void advance(int n) { linepos += n; }

/* ---- matching ---- */

/* try one spec at the cursor; returns matched length or 0 */
int try_spec(int s) {
    int i, c;
    for (i = 0; spec_text[s][i]; i++) {
        c = peek_at(i);
        if (c != spec_text[s][i]) return 0;
    }
    /* keywords must not be followed by an identifier character */
    if (spec_kind[s] == 'K' && is_alnum(peek_at(i))) return 0;
    return i;
}

/* longest spec match at cursor; index via *which */
int best_spec(int *which) {
    int s, len, best, bestlen;
    best = -1;
    bestlen = 0;
    for (s = 0; s < nspecs; s++) {
        len = try_spec(s);
        if (len > bestlen) {
            bestlen = len;
            best = s;
        }
    }
    *which = best;
    return bestlen;
}

int scan_ident() {
    int n;
    n = 0;
    while (is_alnum(peek_at(n))) n++;
    return n;
}

int scan_number() {
    int n;
    n = 0;
    while (is_digit(peek_at(n))) n++;
    if (peek_at(n) == '.' && is_digit(peek_at(n + 1))) {
        n++;
        while (is_digit(peek_at(n))) n++;
    }
    return n;
}

int scan_string() {
    int n, c;
    n = 1;
    for (;;) {
        c = peek_at(n);
        if (c == -1 || c == '\n') return n;
        if (c == '\\') { n += 2; continue; }
        n++;
        if (c == '"') return n;
    }
}

/* ---- per-class token actions, dispatched through a pointer table as
 * generated lexers dispatch their rule actions ---- */

enum { T_KEYWORD = 0, T_OPERATOR = 1, T_IDENT = 2, T_NUMBER = 3,
       T_STRING = 4, T_OTHER = 5 };

void act_keyword(int len) { count_keyword++; }
void act_operator(int len) { count_operator++; }
int sym_equal(int slot, char *s, int len) {
    int i;
    for (i = 0; i < len; i++) {
        if (sym_names[slot][i] != s[i]) return 0;
    }
    return sym_names[slot][i] == '\0';
}

int sym_intern(char *s, int len) {
    int i, j;
    if (len >= SYMLEN) len = SYMLEN - 1;
    for (i = 0; i < nsyms; i++) {
        if (sym_equal(i, s, len)) return i;
    }
    if (nsyms >= SYMMAX) return SYMMAX - 1;
    i = nsyms++;
    for (j = 0; j < len; j++) sym_names[i][j] = s[j];
    sym_names[i][j] = '\0';
    return i;
}

void act_ident(int len) {
    count_ident++;
    if (opt_hist) {
        int b;
        b = len;
        if (b > 15) b = 15;
        ident_lens[b]++;
    }
    if (opt_symtab) {
        sym_counts[sym_intern(linebuf + linepos, len)]++;
    }
}
void act_number(int len) { count_number++; }
void act_string(int len) { count_string++; }
void act_other(int len) { count_other++; }

void (*actions[6])(int len);

void init_actions() {
    actions[T_KEYWORD] = act_keyword;
    actions[T_OPERATOR] = act_operator;
    actions[T_IDENT] = act_ident;
    actions[T_NUMBER] = act_number;
    actions[T_STRING] = act_string;
    actions[T_OTHER] = act_other;
}

void emit_token(int kind, int len) {
    actions[kind](len);
    advance(len);
}

/* ---- token loop ---- */

void scan_line() {
    int c, len, which;
    for (;;) {
        c = peek_at(0);
        if (c == -1) return;
        if (is_space(c)) { advance(1); continue; }
        len = best_spec(&which);
        if (len > 0) {
            if (spec_kind[which] == 'K') emit_token(T_KEYWORD, len);
            else emit_token(T_OPERATOR, len);
            continue;
        }
        if (is_alpha(c)) {
            emit_token(T_IDENT, scan_ident());
            continue;
        }
        if (is_digit(c)) {
            emit_token(T_NUMBER, scan_number());
            continue;
        }
        if (c == '"') {
            emit_token(T_STRING, scan_string());
            continue;
        }
        emit_token(T_OTHER, 1);
    }
}

/* ---- cold 'V': spec-table validation, as a generator would lint its
 * rules: duplicates, keyword/operator confusion, and shadowing where an
 * earlier spec is a strict prefix of a later one ---- */

int spec_same(int a, int b) {
    int i;
    for (i = 0; spec_text[a][i] && spec_text[b][i]; i++) {
        if (spec_text[a][i] != spec_text[b][i]) return 0;
    }
    return spec_text[a][i] == spec_text[b][i];
}

int spec_prefix_of(int a, int b) {
    int i;
    for (i = 0; spec_text[a][i]; i++) {
        if (spec_text[a][i] != spec_text[b][i]) return 0;
    }
    return spec_text[b][i] != '\0';
}

int spec_is_wordlike(int s) {
    int i, c;
    for (i = 0; spec_text[s][i]; i++) {
        c = spec_text[s][i];
        if (!is_alnum(c)) return 0;
    }
    return i > 0;
}

void validate_specs() {
    int a, b, problems;
    problems = 0;
    for (a = 0; a < nspecs; a++) {
        if (spec_kind[a] == 'K' && !spec_is_wordlike(a)) {
            printf("lex: keyword spec %d is not word-like\n", a);
            problems++;
        }
        if (spec_kind[a] == 'O' && spec_is_wordlike(a)) {
            printf("lex: operator spec %d looks like a word\n", a);
            problems++;
        }
        for (b = a + 1; b < nspecs; b++) {
            if (spec_same(a, b)) {
                printf("lex: duplicate specs %d and %d\n", a, b);
                problems++;
            }
        }
    }
    /* prefix shadowing is fine under longest match, but worth a note */
    for (a = 0; a < nspecs; a++) {
        for (b = 0; b < nspecs; b++) {
            if (a != b && spec_prefix_of(a, b)) {
                printf("lex: note: spec %d is a prefix of %d\n", a, b);
            }
        }
    }
    if (problems == 0) printf("lex: spec table ok (%d specs)\n", nspecs);
}

/* ---- cold: spec dump for debugging generated tables ---- */

void dump_specs() {
    int s;
    printf("lex: %d specs\n", nspecs);
    for (s = 0; s < nspecs; s++) {
        printf("  %c %s\n", spec_kind[s], spec_text[s]);
    }
}

/* ---- cold: identifier length census under the opts file ---- */

extern int getchar();

int hist_sum() {
    int i, sum;
    sum = 0;
    for (i = 0; i < 16; i++) sum += ident_lens[i];
    return sum;
}

int hist_mode() {
    int i, best, bi;
    best = -1;
    bi = 0;
    for (i = 0; i < 16; i++) {
        if (ident_lens[i] > best) {
            best = ident_lens[i];
            bi = i;
        }
    }
    return bi;
}

void print_hist() {
    int i;
    printf("lex: identifier lengths (%d idents, mode %d)\n",
           hist_sum(), hist_mode());
    for (i = 1; i < 16; i++) {
        if (ident_lens[i] > 0) printf("  len %2d: %d\n", i, ident_lens[i]);
    }
}

int busiest_symbol() {
    int i, best, bi;
    best = -1;
    bi = 0;
    for (i = 0; i < nsyms; i++) {
        if (sym_counts[i] > best) {
            best = sym_counts[i];
            bi = i;
        }
    }
    return bi;
}

void print_symtab() {
    int i, shown;
    printf("lex: %d distinct identifiers, busiest %s (%d)\n",
           nsyms, sym_names[busiest_symbol()], sym_counts[busiest_symbol()]);
    shown = 0;
    for (i = 0; i < nsyms && shown < 10; i++) {
        if (sym_counts[i] >= 5) {
            printf("  %-16s %d\n", sym_names[i], sym_counts[i]);
            shown++;
        }
    }
}

void load_options() {
    int fd, c;
    fd = open("opts", 0);
    if (fd < 0) return;
    while ((c = getc(fd)) != -1) {
        if (c == 'h') opt_hist = 1;
        if (c == 'T') opt_symtab = 1;
        if (c == 'V') opt_validate = 1;
        if (c == 'd') dump_specs();
    }
    close(fd);
}

int main() {
    count_keyword = 0;
    count_operator = 0;
    count_ident = 0;
    count_number = 0;
    count_string = 0;
    count_other = 0;
    rawlen = 0;
    rawpos = 0;
    opt_hist = 0;
    opt_symtab = 0;
    nsyms = 0;
    lineno = 0;
    init_actions();
    if (load_specs() == 0) { printf("lex: no spec\n"); return 2; }
    load_options();
    if (opt_validate) validate_specs();
    while (fill_line()) { lineno++; scan_line(); }
    if (opt_hist) print_hist();
    if (opt_symtab) print_symtab();
    printf("lex: kw=%d op=%d id=%d num=%d str=%d other=%d\n",
           count_keyword, count_operator, count_ident,
           count_number, count_string, count_other);
    return 0;
}
