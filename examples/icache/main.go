// Instruction-cache study: the paper's conclusion notes that although
// inline expansion grows static code, it improves instruction-cache
// behaviour by removing the cross-function jumping that causes mapping
// conflicts in low-associativity caches (Hwu & Chang, ISCA 1989). This
// example measures the miss rate of a small direct-mapped cache on the
// same workload before and after inline expansion, across a sweep of
// cache sizes.
package main

import (
	"fmt"
	"log"

	"inlinec"
)

// A loop whose body bounces between several helper functions laid out far
// apart in instruction memory: the pattern that produces mapping
// conflicts in a direct-mapped cache.
const src = `
extern int printf(char *fmt, ...);

int pad0(int x) { return x + 1; }
int weigh(int a, int b) { return a * 3 + b; }
int pad1(int x) { return x + 2; }
int clamp(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}
int pad2(int x) { return x + 3; }
int mix(int a, int b) { return weigh(a, b) ^ clamp(a - b, 0, 255); }
int pad3(int x) { return x + 4; }

int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 20000; i++) {
        acc = mix(acc & 0xff, i & 0xff);
    }
    printf("%d\n", acc);
    return 0;
}
`

func main() {
	prog, err := inlinec.Compile("hotloop.c", src)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := prog.ProfileInputs(inlinec.Input{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prog.Inline(prof, inlinec.DefaultParams()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("direct-mapped i-cache miss rates, before vs after inlining:")
	fmt.Println("size    before     after")
	for _, size := range []int{256, 512, 1024, 2048} {
		cfg := inlinec.ICacheConfig{Size: size, LineSize: 16, Assoc: 1}
		before, err := prog.SimulateICacheOriginal(inlinec.Input{}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		after, err := prog.SimulateICache(inlinec.Input{}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %8.4f%%  %8.4f%%\n",
			size, 100*before.MissRate(), 100*after.MissRate())
	}
}
