package irgen

import (
	"encoding/binary"
	"testing"

	"inlinec/internal/ir"
	"inlinec/internal/parser"
	"inlinec/internal/sema"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return mod
}

func ops(f *ir.Func, op ir.Op) []*ir.Instr {
	var out []*ir.Instr
	for i := range f.Code {
		if f.Code[i].Op == op {
			out = append(out, &f.Code[i])
		}
	}
	return out
}

func TestLowerModuleShape(t *testing.T) {
	mod := lower(t, `
extern int printf(char *fmt, ...);
int g;
int f(int x) { return x; }
int main() { g = f(2); printf("%d", g); return 0; }
`)
	if mod.Func("f") == nil || mod.Func("main") == nil {
		t.Fatal("functions missing")
	}
	if mod.Global("g") == nil {
		t.Fatal("global missing")
	}
	if !mod.IsExtern("printf") {
		t.Fatal("extern missing")
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestLowerParamsBecomeSlots(t *testing.T) {
	mod := lower(t, "int f(int a, char c, int *p) { return a; }")
	f := mod.Func("f")
	if f.NumParams != 3 {
		t.Fatalf("NumParams = %d", f.NumParams)
	}
	if !f.Slots[0].IsParam || !f.Slots[2].IsParam {
		t.Error("parameter slots not marked")
	}
	if f.Slots[0].Name != "a" || f.Slots[1].Name != "c" || f.Slots[2].Name != "p" {
		t.Errorf("slot names = %v", f.Slots)
	}
	if f.Slots[1].Size != 1 {
		t.Errorf("char param slot size = %d, want 1", f.Slots[1].Size)
	}
}

func TestLowerFrameSizeEstimatesStack(t *testing.T) {
	mod := lower(t, `
int small(int x) { return x; }
int big(int x) { int buf[512]; buf[0] = x; return buf[0]; }
`)
	small := mod.Func("small").FrameSize
	big := mod.Func("big").FrameSize
	if big < 4096 {
		t.Errorf("big frame = %d, want >= 4096 (512 ints)", big)
	}
	if small >= big {
		t.Errorf("small frame %d should be below big %d", small, big)
	}
}

func TestLowerCharAccessSizes(t *testing.T) {
	mod := lower(t, `
char g;
int f(char *p) { g = *p; return g; }
`)
	f := mod.Func("f")
	var saw1Load, saw1Store bool
	for _, in := range ops(f, ir.OpLoad) {
		if in.Size == 1 {
			saw1Load = true
		}
	}
	for _, in := range ops(f, ir.OpStore) {
		if in.Size == 1 {
			saw1Store = true
		}
	}
	if !saw1Load || !saw1Store {
		t.Errorf("char accesses not 1 byte: load=%v store=%v", saw1Load, saw1Store)
	}
}

func TestLowerPointerArithScaling(t *testing.T) {
	// p + i over int* must scale i by 8; the scale appears as a constant.
	mod := lower(t, "int f(int *p, int i) { return *(p + i); }")
	f := mod.Func("f")
	var sawScale bool
	for _, in := range ops(f, ir.OpConst) {
		if in.A.Imm == 8 {
			sawScale = true
		}
	}
	if !sawScale {
		t.Error("no 8-byte scaling constant for int pointer arithmetic")
	}
	// char* needs no scaling multiply.
	mod2 := lower(t, "int g(char *p, int i) { return *(p + i); }")
	g := mod2.Func("g")
	if n := len(ops(g, ir.OpMul)); n != 0 {
		t.Errorf("char pointer arithmetic has %d multiplies, want 0", n)
	}
}

func TestLowerDirectVsPointerCalls(t *testing.T) {
	mod := lower(t, `
int h(int x) { return x; }
int call_direct(int v) { return h(v); }
int call_ptr(int (*f)(int), int v) { return f(v); }
`)
	if n := len(ops(mod.Func("call_direct"), ir.OpCall)); n != 1 {
		t.Errorf("direct calls = %d", n)
	}
	if n := len(ops(mod.Func("call_direct"), ir.OpCallPtr)); n != 0 {
		t.Errorf("direct function lowered to pointer call")
	}
	if n := len(ops(mod.Func("call_ptr"), ir.OpCallPtr)); n != 1 {
		t.Errorf("pointer calls = %d", n)
	}
}

func TestLowerCallIDsUniqueAndDense(t *testing.T) {
	mod := lower(t, `
int h(int x) { return x; }
int f() { return h(1) + h(2) + h(3); }
int main() { return f(); }
`)
	seen := make(map[int]bool)
	count := 0
	for _, fn := range mod.Funcs {
		for i := range fn.Code {
			in := &fn.Code[i]
			if in.Op == ir.OpCall || in.Op == ir.OpCallPtr {
				count++
				if in.CallID == 0 || seen[in.CallID] {
					t.Errorf("call id %d invalid or duplicated", in.CallID)
				}
				seen[in.CallID] = true
			}
		}
	}
	if count != 4 {
		t.Errorf("call sites = %d, want 4", count)
	}
}

func TestLowerGlobalInitializers(t *testing.T) {
	mod := lower(t, `
int a = 42;
int neg = -7;
char c = 'x';
char msg[8] = "hi";
int tab[3] = {1, 2, 3};
char *s = "shared";
int fn(int v) { return v; }
int (*fp)(int) = fn;
`)
	g := mod.Global("a")
	if binary.LittleEndian.Uint64(g.Init) != 42 {
		t.Errorf("a init = %v", g.Init)
	}
	if int64(binary.LittleEndian.Uint64(mod.Global("neg").Init)) != -7 {
		t.Errorf("neg init wrong")
	}
	if mod.Global("c").Init[0] != 'x' {
		t.Errorf("char init wrong")
	}
	msg := mod.Global("msg")
	if string(msg.Init[:2]) != "hi" || msg.Init[2] != 0 {
		t.Errorf("msg init = %v", msg.Init)
	}
	tab := mod.Global("tab")
	if binary.LittleEndian.Uint64(tab.Init[8:]) != 2 {
		t.Errorf("tab[1] init wrong: %v", tab.Init)
	}
	// Pointer and function-pointer initializers become relocations.
	if len(mod.Global("s").Relocs) != 1 || mod.Global("s").Relocs[0].IsFunc {
		t.Errorf("s relocs = %+v", mod.Global("s").Relocs)
	}
	fp := mod.Global("fp")
	if len(fp.Relocs) != 1 || !fp.Relocs[0].IsFunc || fp.Relocs[0].Sym != "fn" {
		t.Errorf("fp relocs = %+v", fp.Relocs)
	}
}

func TestLowerStringInterning(t *testing.T) {
	mod := lower(t, `
char *a = "same";
char *b = "same";
char *c = "different";
`)
	strGlobals := 0
	for _, g := range mod.Globals {
		if len(g.Name) > 4 && g.Name[:4] == ".str" {
			strGlobals++
		}
	}
	if strGlobals != 2 {
		t.Errorf("interned strings = %d, want 2 (duplicates shared)", strGlobals)
	}
}

func TestLowerAddressTaken(t *testing.T) {
	mod := lower(t, `
int cb(int x) { return x; }
int direct(int x) { return x; }
int use(int (*f)(int)) { return f(0); }
int main() { return use(cb) + direct(1); }
`)
	if !mod.AddressTaken["cb"] {
		t.Error("cb must be address-taken")
	}
	if mod.AddressTaken["direct"] {
		t.Error("direct must not be address-taken")
	}
}

func TestLowerShortCircuitNoCalls(t *testing.T) {
	// "b != 0 && a/b > 2" must evaluate a/b only when b != 0, i.e. the
	// division instruction sits behind a branch.
	mod := lower(t, `
int f(int a, int b) {
    if (b != 0 && a / b > 2) return 1;
    return 0;
}
`)
	f := mod.Func("f")
	divIdx, brIdx := -1, -1
	for i := range f.Code {
		if f.Code[i].Op == ir.OpDiv && divIdx < 0 {
			divIdx = i
		}
		if f.Code[i].Op == ir.OpBr && brIdx < 0 {
			brIdx = i
		}
	}
	if divIdx < 0 || brIdx < 0 || brIdx > divIdx {
		t.Errorf("short-circuit shape wrong: first br at %d, div at %d", brIdx, divIdx)
	}
}

func TestLowerSrcLines(t *testing.T) {
	mod := lower(t, `int f(int x) {
    int y;
    y = x + 1;
    return y;
}
`)
	if got := mod.Func("f").SrcLines; got < 4 || got > 6 {
		t.Errorf("SrcLines = %d, want about 5", got)
	}
}

func TestLowerVerifiesOwnOutput(t *testing.T) {
	// Generate runs the verifier itself; a representative feature soup
	// must come out verified.
	mod := lower(t, `
extern int printf(char *fmt, ...);
struct P { int x; char t; struct P *n; };
typedef struct P P;
enum { LIM = 4 };
int rec(P *p, int d) {
    if (!p || d > LIM) return 0;
    return p->x + rec(p->n, d + 1);
}
int main() {
    P a, b;
    a.x = 1; a.t = 'a'; a.n = &b;
    b.x = 2; b.t = 'b'; b.n = 0;
    printf("%d\n", rec(&a, 0));
    return 0;
}
`)
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
