package inline

import (
	"fmt"
	"sync"

	"inlinec/internal/callgraph"
	"inlinec/internal/ir"
	"inlinec/internal/obs"
)

// expandAll is phase 3: physical expansion in linear order. Because every
// callee precedes its callers in the sequence, each function body is final
// by the time it is absorbed, so each to_be_expanded arc is spliced
// exactly once and multi-level inlining falls out for free.
//
// The linear order also exposes pass-level parallelism: caller Y only
// needs to wait for the selected callees that precede it, so the accepted
// arcs induce a dependency DAG that can be expanded in waves. With
// Params.Parallelism > 1, expandWaves schedules those waves over a
// bounded worker pool; the function-local renaming makes every splice
// byte-identical to the serial walk regardless of worker count.
func (il *Inliner) expandAll(res *Result) error {
	// Group the accepted arcs by caller.
	byCaller := make(map[string][]*callgraph.Arc)
	for _, a := range il.graph.Arcs {
		if a.Status == callgraph.StatusToBeExpanded {
			byCaller[a.Caller.Name] = append(byCaller[a.Caller.Name], a)
		}
	}

	if il.params.NoLinearOrder {
		// The ablation has no dependency DAG to schedule: without the
		// order constraint a body absorbed early may be re-expanded later,
		// so the fixed point stays on the serial path.
		return il.expandFixedPoint(res, byCaller, newBodyCache(il.params.CacheCapacity))
	}
	if par := il.params.Parallelism; par > 1 && len(byCaller) > 1 {
		return il.expandWaves(res, byCaller, par)
	}

	// Walk the linear sequence front to back; all expansions pertaining to
	// a function are done before any later function absorbs it.
	cache := newBodyCache(il.params.CacheCapacity)
	for _, name := range il.order {
		if len(byCaller[name]) == 0 {
			continue
		}
		n, err := il.expandCaller(name, byCaller[name], cache)
		if err != nil {
			return err
		}
		res.NumExpansions += n
	}
	res.Cache = cache.Stats
	return nil
}

// planWaves derives the expansion dependency DAG from the linear order
// plus the selected arcs and flattens it into waves: caller Y depends on
// selected callee X only if X has selected expansions of its own (its
// body is not yet final), and selection guarantees X precedes Y in the
// linear order, so a single front-to-back walk computes every caller's
// dependency depth. Wave k holds the callers whose longest chain of
// pending callees has length k; functions within a wave never read each
// other's bodies, so they can expand concurrently.
func (il *Inliner) planWaves(byCaller map[string][]*callgraph.Arc) [][]string {
	depth := make(map[string]int, len(byCaller))
	var waves [][]string
	for _, name := range il.order {
		arcs := byCaller[name]
		if len(arcs) == 0 {
			continue
		}
		d := 0
		for _, a := range arcs {
			dep := a.Callee.Name
			if p := il.plans[a.ID]; p != nil {
				if p.kind == planPartial {
					// The region was snapshotted at selection time and the
					// fallback is a plain call, so a partial site reads no
					// body and imposes no dependency.
					continue
				}
				if p.kind == planDevirt {
					dep = p.target
				}
			}
			if _, pending := byCaller[dep]; pending {
				if dd := depth[dep] + 1; dd > d {
					d = dd
				}
			}
		}
		depth[name] = d
		for len(waves) <= d {
			waves = append(waves, nil)
		}
		waves[d] = append(waves[d], name)
	}
	return waves
}

// expandWaves runs physical expansion wave by wave over a bounded worker
// pool. Within a wave, callers are assigned to workers by a fixed stride
// and each worker keeps its own body cache across waves, so for a given
// worker count the merged CacheStats are reproducible; the module bytes,
// decision list, and expansion count are identical to the serial walk at
// any worker count.
func (il *Inliner) expandWaves(res *Result, byCaller map[string][]*callgraph.Arc, par int) error {
	if par > len(byCaller) {
		par = len(byCaller)
	}
	reg := il.params.Obs
	caches := make([]*bodyCache, par)
	for i := range caches {
		caches[i] = newBodyCache(il.params.CacheCapacity)
	}
	waves := il.planWaves(byCaller)
	// Wave-scheduler occupancy: how wide each wave is and what fraction
	// of the worker pool it keeps busy. A long tail of single-function
	// waves means the dependency DAG, not the pool, bounds throughput.
	if reg != nil {
		reg.Counter("inline_waves_total", "Expansion waves scheduled.").Add(int64(len(waves)))
		width := reg.Histogram("inline_wave_width", "Functions per expansion wave.", obs.SizeBuckets)
		occupancy := reg.Gauge("inline_wave_occupancy",
			"Mean fraction of the expansion worker pool kept busy across waves.")
		busy, slots := 0, 0
		for _, wave := range waves {
			width.Observe(float64(len(wave)))
			w := len(wave)
			if w > par {
				w = par
			}
			busy += w
			slots += par
		}
		if slots > 0 {
			occupancy.Set(float64(busy) / float64(slots))
		}
	}
	for wi, wave := range waves {
		endWave := reg.StartSpan(fmt.Sprintf("inline.wave%d", wi))
		workers := par
		if workers > len(wave) {
			workers = len(wave)
		}
		counts := make([]int, len(wave))
		errs := make([]error, len(wave))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(wave); i += workers {
					counts[i], errs[i] = il.expandCaller(wave[i], byCaller[wave[i]], caches[w])
				}
			}(w)
		}
		wg.Wait()
		endWave()
		for i := range wave {
			if errs[i] != nil {
				return errs[i]
			}
			res.NumExpansions += counts[i]
		}
	}
	for _, c := range caches {
		res.Cache.add(c.Stats)
	}
	return nil
}

// expandCaller splices every selected arc of one caller, fetching callee
// bodies through the given cache, and returns the number of splices.
func (il *Inliner) expandCaller(name string, arcs []*callgraph.Arc, cache *bodyCache) (int, error) {
	fn := il.mod.Func(name)
	if fn == nil {
		return 0, nil
	}
	wanted := make(map[int]*callgraph.Arc, len(arcs))
	for _, a := range arcs {
		wanted[a.ID] = a
	}
	return il.expandSitesIn(fn, wanted, cache)
}

// expandSitesIn splices the callee body at every call instruction of fn
// whose CallID appears in wanted. It touches only fn, the per-task arcs,
// and its own cache, which is what makes intra-wave concurrency safe.
func (il *Inliner) expandSitesIn(fn *ir.Func, wanted map[int]*callgraph.Arc, cache *bodyCache) (int, error) {
	// Iterate until no wanted site remains; splicing invalidates indices,
	// so re-scan after each expansion.
	expanded := 0
	for {
		idx := -1
		var arc *callgraph.Arc
		for i := range fn.Code {
			in := &fn.Code[i]
			if in.Op == ir.OpCall || in.Op == ir.OpCallPtr {
				if a, ok := wanted[in.CallID]; ok {
					idx, arc = i, a
					break
				}
			}
		}
		if idx < 0 {
			return expanded, nil
		}
		delete(wanted, arc.ID)
		switch plan := il.plans[arc.ID]; {
		case plan != nil && plan.kind == planDevirt:
			target := cache.fetch(il.mod, plan.target)
			if target == nil {
				return expanded, fmt.Errorf("inline: devirt target %s not found for site %d", plan.target, arc.ID)
			}
			if err := spliceDevirtCall(fn, idx, target); err != nil {
				return expanded, fmt.Errorf("inline: site %d (%s <- ptr:%s): %w", arc.ID, fn.Name, target.Name, err)
			}
		case plan != nil && plan.kind == planPartial:
			// The region snapshot is in the plan; the fetch still models
			// the definition read, keeping lookups == splices.
			cache.fetch(il.mod, arc.Callee.Name)
			if err := splicePartialCall(fn, idx, plan.region); err != nil {
				return expanded, fmt.Errorf("inline: site %d (%s <- region:%s): %w", arc.ID, fn.Name, arc.Callee.Name, err)
			}
		default:
			callee := cache.fetch(il.mod, arc.Callee.Name)
			if callee == nil {
				return expanded, fmt.Errorf("inline: callee %s not found for site %d", arc.Callee.Name, arc.ID)
			}
			if err := spliceCall(fn, idx, callee); err != nil {
				return expanded, fmt.Errorf("inline: site %d (%s <- %s): %w", arc.ID, fn.Name, callee.Name, err)
			}
		}
		arc.Status = callgraph.StatusExpanded
		expanded++
	}
}

// expandFixedPoint is the NoLinearOrder ablation: expand accepted arcs
// wherever they appear, repeating until no accepted site remains anywhere.
// Without the order constraint a callee may be absorbed before its own
// expansions are done, so its calls get re-expanded in every absorber —
// the extra work the paper's linearization avoids.
func (il *Inliner) expandFixedPoint(res *Result, byCaller map[string][]*callgraph.Arc, cache *bodyCache) error {
	// Accepted callee set: arcs selected for expansion, by callee name.
	accepted := make(map[string]map[string]bool) // caller -> callee set
	for caller, arcs := range byCaller {
		set := make(map[string]bool)
		for _, a := range arcs {
			set[a.Callee.Name] = true
		}
		accepted[caller] = set
	}
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range il.mod.Funcs {
			set := accepted[fn.Name]
			if len(set) == 0 {
				continue
			}
			for {
				// The fixed point re-checks the global size cap on every
				// splice: re-expansion without the linear order can blow
				// past the selection-time estimates.
				if il.mod.TotalCodeSize() > il.limit {
					res.Cache = cache.Stats
					return nil
				}
				idx := -1
				var calleeName string
				for i := range fn.Code {
					in := &fn.Code[i]
					if in.Op == ir.OpCall && set[in.Sym] && in.Sym != fn.Name {
						idx, calleeName = i, in.Sym
						break
					}
				}
				if idx < 0 {
					break
				}
				callee := cache.fetch(il.mod, calleeName)
				if callee == nil {
					break
				}
				if err := spliceCall(fn, idx, callee); err != nil {
					return err
				}
				res.NumExpansions++
				changed = true
				if res.NumExpansions > 100000 {
					return fmt.Errorf("inline: expansion did not converge (runaway without linear order)")
				}
			}
		}
		if !changed {
			res.Cache = cache.Stats
			return nil
		}
	}
	res.Cache = cache.Stats
	return nil
}

// spliceCall replaces the OpCall at index idx in fn with an inline copy of
// callee. The transformation is the paper's section 2.4:
//
//   - duplication of the callee body;
//   - variable renaming: callee locals and formals become fresh caller
//     slots with path-qualified names ("callee.x"), callee virtual
//     registers are shifted past the caller's, callee labels are re-issued
//     from the caller's label space;
//   - parameter buffering: actual argument values are stored into the new
//     formal slots before the body (new local temporaries);
//   - call/return replacement: every ret in the copy becomes a move of the
//     return value into the call's destination register followed by an
//     unconditional jump to a continuation label placed after the body.
func spliceCall(fn *ir.Func, idx int, callee *ir.Func) error {
	call := fn.Code[idx]
	if call.Op != ir.OpCall {
		return fmt.Errorf("instruction %d is %s, not a call", idx, call.Op)
	}
	if call.Sym != callee.Name {
		return fmt.Errorf("call targets %s, not %s", call.Sym, callee.Name)
	}
	if len(call.Args) < callee.NumParams {
		return fmt.Errorf("call has %d args, callee %s wants %d", len(call.Args), callee.Name, callee.NumParams)
	}

	body, contLabel := inlineBody(fn, &call, callee)
	body = append(body, ir.Instr{Op: ir.OpLabel, Label: contLabel, Pos: call.Pos})
	fn.Inlined = append(fn.Inlined, callee.Name)

	// Splice: code[:idx] + body + code[idx+1:].
	out := make([]ir.Instr, 0, len(fn.Code)-1+len(body))
	out = append(out, fn.Code[:idx]...)
	out = append(out, body...)
	out = append(out, fn.Code[idx+1:]...)
	fn.Code = out
	return nil
}

// inlineBody renders a copy of callee ready for splicing in place of the
// call: renaming tables, parameter buffering, and the call/return
// replacement. It returns the instruction sequence (without the trailing
// continuation label, which the caller places) and the continuation
// label id. Both the whole-body and the devirtualized splice build on it.
func inlineBody(fn *ir.Func, call *ir.Instr, callee *ir.Func) ([]ir.Instr, int) {
	// Renaming tables.
	regBase := ir.Reg(fn.NumRegs)
	fn.NumRegs += callee.NumRegs
	slotMap := make([]int, len(callee.Slots))
	for i, s := range callee.Slots {
		slotMap[i] = fn.AddSlot(callee.Name+"."+s.Name, s.Size, s.Align, false)
	}
	labelMap := make(map[int]int)
	for i := range callee.Code {
		if callee.Code[i].Op == ir.OpLabel {
			labelMap[callee.Code[i].Label] = fn.NewLabel()
		}
	}
	contLabel := fn.NewLabel()

	mapVal := func(v ir.Value) ir.Value {
		if v.Kind == ir.VKReg {
			v.Reg += regBase
		}
		return v
	}

	var body []ir.Instr
	// Parameter buffering: store each actual into its formal's new slot.
	for i := 0; i < callee.NumParams; i++ {
		slot := fn.Slots[slotMap[i]]
		addrReg := fn.NewReg()
		body = append(body,
			ir.Instr{Op: ir.OpAddrL, Dst: addrReg, A: ir.C(int64(slotMap[i])), Pos: call.Pos},
			ir.Instr{Op: ir.OpStore, A: ir.R(addrReg), B: call.Args[i], Size: accessOf(slot.Size), Pos: call.Pos},
		)
	}
	// Duplicate and rewrite the body.
	for i := range callee.Code {
		in := callee.Code[i] // copy
		switch in.Op {
		case ir.OpLabel:
			in.Label = labelMap[in.Label]
		case ir.OpJump, ir.OpBr:
			in.Label = labelMap[in.Label]
			in.A = mapVal(in.A)
		case ir.OpAddrL:
			in.A = ir.C(int64(slotMap[in.A.Imm]))
		case ir.OpRet:
			// Return becomes value delivery + jump to the continuation.
			if call.Dst != ir.NoReg {
				mv := ir.Instr{Op: ir.OpMov, Dst: call.Dst, Pos: in.Pos}
				if in.A.Kind == ir.VKNone {
					mv.A = ir.C(0)
				} else {
					mv.A = mapVal(in.A)
				}
				body = append(body, mv)
			}
			body = append(body, ir.Instr{Op: ir.OpJump, Label: contLabel, Pos: in.Pos})
			continue
		case ir.OpCall, ir.OpCallPtr:
			// Duplicated interior call sites become distinct arcs; fresh
			// ids are assigned by Module.AssignCallIDs afterwards.
			in.CallID = 0
			in.A = mapVal(in.A)
			newArgs := make([]ir.Value, len(in.Args))
			for k, a := range in.Args {
				newArgs[k] = mapVal(a)
			}
			in.Args = newArgs
		default:
			in.A = mapVal(in.A)
			in.B = mapVal(in.B)
		}
		if in.Dst != ir.NoReg {
			in.Dst += regBase
		}
		body = append(body, in)
	}
	return body, contLabel
}

func accessOf(slotSize int) int {
	if slotSize == 1 {
		return 1
	}
	return 8
}
