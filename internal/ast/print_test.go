package ast_test

import (
	"strings"
	"testing"

	"inlinec/internal/ast"
	"inlinec/internal/parser"
)

func dump(t *testing.T, src string) string {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ast.Print(f)
}

func TestPrintGolden(t *testing.T) {
	got := dump(t, `
int g = 3;
int add(int a, int b) {
    if (a > 0) return a + b;
    return b - a;
}
`)
	want := strings.TrimLeft(`
file t.c
  var g int
    int 3
  func add int (int, int) (a, b)
    block
      if
        binary >
          ident a
          int 0
        return
          binary +
            ident a
            ident b
      return
        binary -
          ident b
          ident a
`, "\n")
	if got != want {
		t.Errorf("golden mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrintCoversAllStatementKinds(t *testing.T) {
	got := dump(t, `
extern int printf(char *fmt, ...);
struct S { int v; };
int f(int n) {
    int i, acc;
    char *s;
    struct S st;
    acc = 0;
    s = "txt";
    st.v = sizeof(struct S);
    for (i = 0; i < n; i++) { acc += i; continue; }
    while (acc > 100) acc /= 2;
    do acc++; while (acc < 5);
    switch (acc) {
    case 1: acc = n > 0 ? 1 : 2; break;
    default: ;
    }
top:
    if (acc) goto top; else acc--;
    printf("%d %d\n", acc, st.v, (char)i, i, -i, !i, s[0], *s, &acc, st.v);
    return acc;
}
`)
	for _, frag := range []string{
		"declgroup", "for", "while", "do-while", "switch", "case", "default",
		"label top", "goto top", "break", "continue", "if", "else",
		"cond", "call", "member .v", "sizeof-type", "cast char",
		"unary -", "unary !", "unary *", "unary &", "index",
		"string \"txt\"", "postfix ++", "assign +=", "assign /=", "empty",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("printout missing %q\n%s", frag, got)
		}
	}
}

func TestPrintExternAndStatic(t *testing.T) {
	got := dump(t, `
extern int lib(int x);
static int priv(int x) { return x; }
extern int evar;
`)
	for _, frag := range []string{"extern func lib", "static func priv", "var evar int extern"} {
		if !strings.Contains(got, frag) {
			t.Errorf("missing %q in:\n%s", frag, got)
		}
	}
}
