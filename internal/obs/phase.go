package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is one timed region of the pipeline: a compiler phase, one
// profiling run, one expansion wave. Start/Dur are relative to the
// registry's epoch so a whole pipeline shares one time base.
type Span struct {
	// Name is the phase name (lex, parse, sema, irgen, profile,
	// callgraph, expand, opt, link, ...).
	Name string
	// Worker distinguishes concurrent lanes (0 for serial phases); it
	// becomes the Chrome trace tid so parallel work renders as stacked
	// tracks.
	Worker int
	Start  time.Duration
	Dur    time.Duration
}

// StartSpan begins a span on worker lane 0. The returned func ends it:
//
//	defer reg.StartSpan("sema")()
func (r *Registry) StartSpan(name string) func() {
	return r.StartSpanWorker(name, 0)
}

// StartSpanWorker begins a span on a specific worker lane.
func (r *Registry) StartSpanWorker(name string, worker int) func() {
	if r == nil {
		return func() {}
	}
	start := time.Since(r.epoch)
	return func() {
		end := time.Since(r.epoch)
		r.mu.Lock()
		r.spans = append(r.spans, Span{Name: name, Worker: worker, Start: start, Dur: end - start})
		r.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// PhaseSeconds aggregates span durations by name — the per-phase
// breakdown the benchmark reports embed. Nested or concurrent spans
// with the same name sum, so a parallel phase reports total CPU-lane
// time, not wall time.
func (r *Registry) PhaseSeconds() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, 8)
	for _, s := range r.spans {
		out[s.Name] += s.Dur.Seconds()
	}
	return out
}

// chromeEvent is one Chrome trace-event ("X" complete events only) as
// understood by chrome://tracing, Perfetto, and speedscope.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`  // microseconds since trace start
	Dur  int64  `json:"dur"` // microseconds
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Cat  string `json:"cat"`
}

// WriteChromeTrace renders the recorded spans as a Chrome trace-event
// JSON array, for flame-graph viewing (ilcc -trace out.json; open in
// chrome://tracing or Perfetto). Spans are sorted by start time then
// name so an identical span set always renders identical bytes.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	spans := r.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Worker != spans[j].Worker {
			return spans[i].Worker < spans[j].Worker
		}
		return spans[i].Name < spans[j].Name
	})
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Microseconds(),
			Dur:  s.Dur.Microseconds(),
			Pid:  1,
			Tid:  s.Worker,
			Cat:  "phase",
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}
