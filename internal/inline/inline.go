// Package inline implements the paper's contribution: profile-guided
// inline function expansion over the weighted call graph. The procedure is
// the three-phase algorithm of section 3:
//
//  1. Linearization — functions are sorted by node weight (most frequently
//     executed first). Function X may be inlined into function Y only if X
//     precedes Y in this sequence. The constraint bounds the number of
//     physical expansions (each function's body is final before anyone
//     absorbs it) and enables a write-back function-body cache.
//  2. Expansion-site selection — arcs that violate the linear order or
//     touch the $$$/### summary nodes are not_expandable; the rest are
//     considered from heaviest to lightest and accepted unless the cost
//     function returns infinity (recursion + stack hazard, weight below
//     threshold, or program-size limit exceeded). Function code and frame
//     sizes are re-estimated after each accepted site.
//  3. Physical expansion — processing functions in linear order, each
//     selected call is replaced by a copy of the callee body with
//     path-qualified variable renaming; call/return become unconditional
//     jumps into/out of the body.
package inline

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"inlinec/internal/callgraph"
	"inlinec/internal/ir"
	"inlinec/internal/obs"
	"inlinec/internal/profile"
)

// Params configures the expander. Zero values select the paper defaults.
type Params struct {
	// WeightThreshold rejects arcs whose expected invocation count is
	// below it (the paper uses 10).
	WeightThreshold float64
	// StackBound is the limit in bytes on the callee frame when expanding
	// a call into a recursive path (prevents control-stack explosion).
	StackBound int
	// SizeLimitFactor caps the whole program's IL size at
	// factor × original size. The paper discusses fixed and relative
	// limits without stating its value; 1.25 is calibrated so that the
	// reproduced Table 4 matches the paper's observed ~17% average growth.
	SizeLimitFactor float64
	// MaxCalleeSize, when positive, refuses to inline callees whose
	// current body exceeds this many IL instructions (a common practical
	// guard; 0 disables it, matching the paper).
	MaxCalleeSize int
	// ConservativeRecursion treats cycles through the $$$/### summary
	// nodes as recursion for the stack hazard. The paper's incomplete-
	// graph rules imply this; disabling it is an ablation.
	ConservativeRecursion bool
	// NoLinearOrder disables the linearization constraint (ablation). The
	// selection still proceeds by weight, but expansion iterates to a
	// fixed point and may re-expand bodies, increasing expansion work.
	NoLinearOrder bool
	// CacheCapacity is the body-cache capacity in function definitions,
	// emulating the paper's file-read cache (0 = 8).
	CacheCapacity int
	// Heuristic selects the expansion-site policy: the paper's profile-
	// guided selection (default) or one of the static baselines it
	// discusses (inline-all-leaves, inline-small-callees).
	Heuristic Heuristic
	// SmallCalleeLimit bounds callee body size for HeuristicSmall
	// (0 = DefaultSmallCalleeLimit).
	SmallCalleeLimit int
	// OrderByDensity considers arcs in decreasing weight-per-instruction
	// order instead of raw weight. Section 2.3.3 observes that with
	// near-uniform call overheads the benefit term drops out of the cost
	// function; this option is the ablation for when it does not — a
	// greedy knapsack by benefit density under the program-size budget.
	OrderByDensity bool
	// PartialInline enables hot-region expansion of callees that fail the
	// per-callee size limit: when MaxCalleeSize rejects a whole body, the
	// pure entry region every invocation executes first is expanded in
	// place, with every cold exit funnelled into a guarded fallback call
	// to the original function. The fallback call keeps the site's id, so
	// its profile counters stay exact in the transformed module. Ignored
	// under NoLinearOrder (the fixed-point ablation has no plan table).
	PartialInline bool
	// DevirtThreshold enables guarded pointer-call devirtualization: when
	// the profile shows a ### site resolving to one dominant defined
	// target whose share of the site's resolved calls is at least this
	// fraction, the site is rewritten as "if fp == &target { inlined body
	// } else { original CALLPTR }". 0 disables it; the fallback CALLPTR
	// keeps the site's id so the fallback arc's counters stay exact.
	// Ignored under NoLinearOrder.
	DevirtThreshold float64
	// Parallelism bounds the worker pool physical expansion schedules its
	// dependency waves over: 0 or 1 runs the serial linear walk, N > 1
	// uses up to N workers. Any setting produces byte-identical modules
	// and decision lists; only the body-cache hit/miss split varies with
	// the worker count (each worker keeps its own cache). Ignored under
	// NoLinearOrder, whose fixed point has no dependency DAG to schedule.
	Parallelism int
	// Obs, when non-nil, receives phase spans (linearize/select/expand),
	// wave-scheduler occupancy, and body-cache counters. Observability
	// never changes behaviour: the module bytes, decision list, and
	// trace are identical with or without a registry attached.
	Obs *obs.Registry
}

// DefaultParams returns the paper-mirroring configuration.
func DefaultParams() Params {
	return Params{
		WeightThreshold:       10,
		StackBound:            4096,
		SizeLimitFactor:       1.25,
		ConservativeRecursion: true,
	}
}

func (p Params) withDefaults() Params {
	if p.WeightThreshold == 0 {
		p.WeightThreshold = 10
	}
	if p.StackBound == 0 {
		p.StackBound = 4096
	}
	if p.SizeLimitFactor == 0 {
		p.SizeLimitFactor = 1.25
	}
	if p.CacheCapacity == 0 {
		p.CacheCapacity = 8
	}
	return p
}

// Decision records the outcome for one considered arc.
type Decision struct {
	SiteID int
	Caller string
	Callee string
	Weight float64
	// Accepted marks to_be_expanded arcs; Reason explains rejections.
	Accepted bool
	Reason   string
	// Code is the machine-readable rejection reason (obs.ReasonNone when
	// accepted), one code per paper-level rule.
	Code obs.Reason
}

// Result reports what the expander did.
type Result struct {
	// Order is the linear sequence used.
	Order []string
	// Decisions lists every arc considered, heaviest first.
	Decisions []Decision
	// Expanded is the accepted subset of Decisions.
	Expanded []Decision
	// NumExpansions counts physical splices performed (== len(Expanded)
	// under the linear-order constraint; may exceed it without it).
	NumExpansions int
	// OriginalSize and FinalSize are whole-program IL sizes.
	OriginalSize int
	FinalSize    int
	// EliminatedFuncs lists functions removed as unreachable afterwards.
	EliminatedFuncs []string
	// Cache reports body-cache behaviour during physical expansion. With
	// Params.Parallelism > 1 it is the deterministic worker-order merge
	// of the per-worker caches; the hit/miss split depends on the worker
	// count (Lookups always equals the number of splices).
	Cache CacheStats
	// Trace is the typed inline-decision trace: one event per arc the
	// expander looked at, including the not_expandable arcs that never
	// reached the cost function. The order is canonical — arcs excluded
	// before cost evaluation first (by site id), then considered arcs in
	// consideration order — so the trace is byte-identical at any
	// Params.Parallelism.
	Trace []obs.ArcEvent
}

// TraceBySite indexes the decision trace by call-site id — the shape
// arc-level diffing (obs.CompareInlineTraces, the hybrid exact-site
// identity check) consumes. Every arc emits exactly one event, so the
// map is lossless.
func (r *Result) TraceBySite() map[int]obs.ArcEvent {
	m := make(map[int]obs.ArcEvent, len(r.Trace))
	for _, ev := range r.Trace {
		m[ev.Site] = ev
	}
	return m
}

// CodeIncrease returns the fractional static code growth, e.g. 0.17.
func (r *Result) CodeIncrease() float64 {
	if r.OriginalSize == 0 {
		return 0
	}
	return float64(r.FinalSize-r.OriginalSize) / float64(r.OriginalSize)
}

// String summarizes the result.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "inline expansion: %d arcs considered, %d expanded, code %d -> %d (%+.1f%%)\n",
		len(r.Decisions), len(r.Expanded), r.OriginalSize, r.FinalSize, 100*r.CodeIncrease())
	for _, d := range r.Expanded {
		fmt.Fprintf(&sb, "  expanded site %d: %s <- %s (weight %.0f)\n", d.SiteID, d.Caller, d.Callee, d.Weight)
	}
	return sb.String()
}

// Inliner carries the expansion state for one module.
type Inliner struct {
	mod    *ir.Module
	graph  *callgraph.Graph
	prof   *profile.Profile
	params Params

	order    []string
	orderPos map[string]int
	// estSize and estFrame evolve as decisions accumulate, per the paper's
	// "code size ... re-evaluated as new function calls are considered".
	estSize  map[string]int
	estFrame map[string]int
	progSize int
	limit    int
	// plans records, per accepted arc id, how physical expansion must
	// splice it when the plain whole-body copy does not apply (partial
	// regions and devirtualized pointer sites). Written only during the
	// serial selection phase, read-only during (possibly parallel)
	// expansion.
	plans map[int]*expandPlan
}

// New prepares an inliner over mod using the weighted call graph g.
// The module is mutated in place; clone it first to keep the original.
func New(mod *ir.Module, g *callgraph.Graph, prof *profile.Profile, params Params) *Inliner {
	return &Inliner{
		mod: mod, graph: g, prof: prof, params: params.withDefaults(),
		plans: make(map[int]*expandPlan),
	}
}

// Run executes the full three-phase procedure and returns the result.
// Expand is the convenience wrapper most callers want.
func (il *Inliner) Run() (*Result, error) {
	reg := il.params.Obs
	res := &Result{OriginalSize: il.mod.TotalCodeSize()}
	end := reg.StartSpan("inline.linearize")
	il.linearize(res)
	end()
	end = reg.StartSpan("inline.select")
	il.selectSites(res)
	end()
	end = reg.StartSpan("inline.expand")
	err := il.expandAll(res)
	end()
	if err != nil {
		return res, err
	}
	il.mod.AssignCallIDs()
	res.FinalSize = il.mod.TotalCodeSize()
	il.recordMetrics(res)
	endVerify := reg.StartSpan("inline.verify")
	err = il.mod.Verify()
	endVerify()
	if err != nil {
		return res, fmt.Errorf("inline expansion produced invalid IL: %w", err)
	}
	return res, nil
}

// recordMetrics publishes the run's decision and cache counters to the
// attached registry (no-op without one).
func (il *Inliner) recordMetrics(res *Result) {
	reg := il.params.Obs
	if reg == nil {
		return
	}
	var partial, devirt int64
	for _, ev := range res.Trace {
		reg.Counter("inline_arcs_total",
			"Arcs seen by expansion-site selection, by outcome and reason.",
			"outcome", string(ev.Outcome), "reason", string(ev.Reason)).Inc()
		switch ev.Outcome {
		case obs.OutcomePartialInlined:
			partial++
		case obs.OutcomeDevirtualized:
			devirt++
		}
	}
	reg.Counter("inline_partial_total",
		"Hot-region partial expansions (guarded fallback call to the original callee).").
		Add(partial)
	reg.Counter("inline_devirt_total",
		"Pointer-call sites devirtualized into a guarded dominant-target inline.").
		Add(devirt)
	reg.Counter("inline_expansions_total", "Physical call-site splices performed.").
		Add(int64(res.NumExpansions))
	reg.Counter("inline_bodycache_lookups_total", "Body-cache lookups during physical expansion.").
		Add(int64(res.Cache.Lookups))
	reg.Counter("inline_bodycache_hits_total", "Body-cache hits.").Add(int64(res.Cache.Hits))
	reg.Counter("inline_bodycache_misses_total", "Body-cache misses (modelled file reads).").
		Add(int64(res.Cache.Misses))
	reg.Counter("inline_bodycache_evictions_total", "Body-cache write-back evictions.").
		Add(int64(res.Cache.Evictions))
	reg.Gauge("inline_code_growth_ratio", "Static code growth from expansion (final/original).").
		Set(safeRatio(res.FinalSize, res.OriginalSize))
}

func safeRatio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Expand runs profile-guided inline expansion on mod in place.
func Expand(mod *ir.Module, g *callgraph.Graph, prof *profile.Profile, params Params) (*Result, error) {
	return New(mod, g, prof, params).Run()
}

// ------------------------------------------------------------ linearization

// linearize orders functions by node weight, most frequently executed
// first (the paper's heuristic: hot leaf-level functions tend to be called
// by colder callers, so they belong at the front). Ties break by name for
// determinism, standing in for the paper's random initial placement.
func (il *Inliner) linearize(res *Result) {
	names := make([]string, 0, len(il.mod.Funcs))
	for _, f := range il.mod.Funcs {
		names = append(names, f.Name)
	}
	sort.SliceStable(names, func(i, j int) bool {
		ni, nj := il.graph.Nodes[names[i]], il.graph.Nodes[names[j]]
		if ni.Weight != nj.Weight {
			return ni.Weight > nj.Weight
		}
		// Equal weights: leaf-level functions first ("functions which tend
		// to be absorbed by other functions should be placed in front").
		if ni.Height() != nj.Height() {
			return ni.Height() < nj.Height()
		}
		return names[i] < names[j]
	})
	il.order = names
	il.orderPos = make(map[string]int, len(names))
	for i, n := range names {
		il.orderPos[n] = i
	}
	res.Order = names

	il.estSize = make(map[string]int, len(il.mod.Funcs))
	il.estFrame = make(map[string]int, len(il.mod.Funcs))
	il.progSize = 0
	for _, f := range il.mod.Funcs {
		il.estSize[f.Name] = f.CodeSize()
		il.estFrame[f.Name] = f.FrameSize
		il.progSize += f.CodeSize()
	}
	il.limit = int(math.Ceil(il.params.SizeLimitFactor * float64(il.progSize)))
}

// ----------------------------------------------------------- site selection

// selectSites is phase 2: mark arc statuses and pick to_be_expanded arcs
// in decreasing weight order under the cost function. Every arc emits
// exactly one typed trace event into res.Trace: arcs excluded before
// cost evaluation become not_expandable events (sorted by site id for a
// canonical order), then the considered arcs append their events in
// consideration order. Selection is a serial phase, so the trace is
// byte-identical at any Params.Parallelism.
func (il *Inliner) selectSites(res *Result) {
	arcs := make([]*callgraph.Arc, 0, len(il.graph.Arcs))
	var excluded []obs.ArcEvent
	exclude := func(a *callgraph.Arc, reason obs.Reason, detail string) {
		a.Status = callgraph.StatusNotExpandable
		excluded = append(excluded, obs.ArcEvent{
			Site: a.ID, Caller: a.Caller.Name, Callee: a.Callee.Name,
			Weight: a.Weight, Outcome: obs.OutcomeNotExpandable,
			Reason: reason, Detail: detail,
		})
	}
	for _, a := range il.graph.Arcs {
		switch {
		case a.Callee.IsSpecial():
			if a.ViaPointer && il.params.DevirtThreshold > 0 &&
				!il.params.NoLinearOrder && len(a.PtrTargets) > 0 {
				// A profiled pointer site is a devirtualization candidate:
				// it joins the considered arcs so the guarded test-and-inline
				// competes for the program-size budget in weight order.
				a.Status = callgraph.StatusExpandable
				arcs = append(arcs, a)
				break
			}
			// Arcs touching $$$ or ### can never be expanded.
			exclude(a, obs.ReasonSpecialCallee,
				fmt.Sprintf("callee is the %s summary node", a.Callee.Name))
		case a.Caller == a.Callee:
			// Simple recursion is never expanded here (only the first
			// iteration could be absorbed; see section 2.3). Checked
			// before the linear order so a self arc reports the specific
			// reason, not the order violation it also implies.
			exclude(a, obs.ReasonSelfRecursion, "caller and callee are the same function")
		case !il.params.NoLinearOrder && il.orderPos[a.Callee.Name] >= il.orderPos[a.Caller.Name]:
			// Arcs violating the linear order are not expandable: the
			// callee must precede the caller in the sequence.
			exclude(a, obs.ReasonLinearOrder,
				fmt.Sprintf("callee at linear position %d does not precede caller at %d",
					il.orderPos[a.Callee.Name]+1, il.orderPos[a.Caller.Name]+1))
		case il.params.NoLinearOrder && il.graph.SameCycle(a.Caller, a.Callee):
			// Without the linear order, mutual recursion must be rejected
			// explicitly too — the order constraint forbids cycles by
			// construction, but the ablation path would otherwise
			// re-expand a two-function cycle forever.
			exclude(a, obs.ReasonMutualRecursion, "caller and callee share a recursive cycle")
		default:
			a.Status = callgraph.StatusExpandable
			arcs = append(arcs, a)
		}
	}
	sort.SliceStable(excluded, func(i, j int) bool { return excluded[i].Site < excluded[j].Site })
	res.Trace = append(res.Trace, excluded...)

	rank := func(a *callgraph.Arc) float64 {
		if !il.params.OrderByDensity {
			return a.Weight
		}
		size := il.estSize[a.Callee.Name]
		if size <= 0 {
			size = 1
		}
		return a.Weight / float64(size)
	}
	sort.SliceStable(arcs, func(i, j int) bool {
		ri, rj := rank(arcs[i]), rank(arcs[j])
		if ri != rj {
			return ri > rj
		}
		return arcs[i].ID < arcs[j].ID
	})

	for _, a := range arcs {
		if a.ViaPointer {
			il.considerDevirt(a, res)
			continue
		}
		d := Decision{SiteID: a.ID, Caller: a.Caller.Name, Callee: a.Callee.Name, Weight: a.Weight}
		ev := obs.ArcEvent{Site: a.ID, Caller: a.Caller.Name, Callee: a.Callee.Name, Weight: a.Weight}
		cost, code, reason := il.cost(a)
		// The cost terms snapshot the running estimates at decision time,
		// before any growth from accepting this arc is applied.
		ev.Cost = &obs.CostTerms{
			Weight:      a.Weight,
			Threshold:   il.params.WeightThreshold,
			CalleeSize:  il.estSize[a.Callee.Name],
			CalleeFrame: il.estFrame[a.Callee.Name],
			StackBound:  il.params.StackBound,
			ProgSize:    il.progSize,
			SizeLimit:   il.limit,
		}
		if math.IsInf(cost, 1) {
			if code == obs.ReasonCalleeSizeLimit && il.params.PartialInline &&
				!il.params.NoLinearOrder {
				// The whole body is too large; try to expand just its hot
				// entry region with a guarded fallback to the original.
				if plan, grow, detail, why := il.planPartial(a); plan != nil {
					if il.progSize+grow > il.limit {
						code = obs.ReasonProgramSizeLimit
						reason = fmt.Sprintf("program size %d+%d would exceed limit %d",
							il.progSize, grow, il.limit)
					} else {
						a.Status = callgraph.StatusToBeExpanded
						il.plans[a.ID] = plan
						d.Accepted = true
						ev.Outcome, ev.Detail = obs.OutcomePartialInlined, detail
						il.estSize[a.Caller.Name] += grow
						il.progSize += grow
						il.estFrame[a.Caller.Name] += il.estFrame[a.Callee.Name]
						res.Decisions = append(res.Decisions, d)
						res.Expanded = append(res.Expanded, d)
						res.Trace = append(res.Trace, ev)
						continue
					}
				} else {
					code, reason = obs.ReasonNoHotRegion, why
				}
			}
			d.Reason, d.Code = reason, code
			ev.Outcome, ev.Reason, ev.Detail = obs.OutcomeRejected, code, reason
			res.Decisions = append(res.Decisions, d)
			res.Trace = append(res.Trace, ev)
			continue
		}
		a.Status = callgraph.StatusToBeExpanded
		d.Accepted = true
		ev.Outcome = obs.OutcomeExpanded
		// Re-estimate: the caller absorbs the callee's current body (the
		// call instruction itself is replaced, and argument stores roughly
		// offset the removed call), and the caller's frame grows by the
		// callee's frame.
		grow := il.estSize[a.Callee.Name]
		il.estSize[a.Caller.Name] += grow
		il.progSize += grow
		il.estFrame[a.Caller.Name] += il.estFrame[a.Callee.Name]
		res.Decisions = append(res.Decisions, d)
		res.Expanded = append(res.Expanded, d)
		res.Trace = append(res.Trace, ev)
	}
}

// cost implements the paper's cost function: infinity blocks expansion;
// otherwise the cost is the estimated code growth (used only for
// reporting, since selection is greedy by weight). Rejections name the
// exact rule via the obs reason code alongside the human-readable text.
func (il *Inliner) cost(a *callgraph.Arc) (float64, obs.Reason, string) {
	recursive := il.graph.Recursive(a.Callee)
	if il.params.ConservativeRecursion {
		recursive = il.graph.ConservativelyRecursive(a.Callee)
	}
	if recursive && il.estFrame[a.Callee.Name] > il.params.StackBound {
		return math.Inf(1), obs.ReasonStackBound,
			fmt.Sprintf("callee on recursive path with frame %dB > stack bound %dB",
				il.estFrame[a.Callee.Name], il.params.StackBound)
	}
	if ok, code, why := il.accepts(a.Callee.Name, a.Weight); !ok {
		return math.Inf(1), code, why
	}
	grow := il.estSize[a.Callee.Name]
	if il.params.MaxCalleeSize > 0 && grow > il.params.MaxCalleeSize {
		return math.Inf(1), obs.ReasonCalleeSizeLimit,
			fmt.Sprintf("callee size %d exceeds per-callee limit %d", grow, il.params.MaxCalleeSize)
	}
	if il.progSize+grow > il.limit {
		return math.Inf(1), obs.ReasonProgramSizeLimit,
			fmt.Sprintf("program size %d+%d would exceed limit %d", il.progSize, grow, il.limit)
	}
	return float64(grow), obs.ReasonNone, ""
}

// devirtGuardSize is the instruction overhead of a devirtualized site
// beyond the inlined target body: addrf + eq + br + the jump around the
// fallback CALLPTR (which itself replaces the original call).
const devirtGuardSize = 4

// considerDevirt evaluates one profiled pointer-call arc for guarded
// devirtualization and appends its decision and trace event. An accepted
// site is rewritten during physical expansion as a test-and-inline of
// the dominant target; the fallback CALLPTR keeps the site id so the
// fallback arc's counters stay exact in the transformed module.
func (il *Inliner) considerDevirt(a *callgraph.Arc, res *Result) {
	target, domW, totW := a.DominantPtrTarget()
	d := Decision{SiteID: a.ID, Caller: a.Caller.Name, Callee: a.Callee.Name, Weight: a.Weight}
	ev := obs.ArcEvent{Site: a.ID, Caller: a.Caller.Name, Callee: a.Callee.Name, Weight: a.Weight}
	ev.Cost = &obs.CostTerms{
		Weight:      a.Weight,
		Threshold:   il.params.WeightThreshold,
		CalleeSize:  il.estSize[target],
		CalleeFrame: il.estFrame[target],
		StackBound:  il.params.StackBound,
		ProgSize:    il.progSize,
		SizeLimit:   il.limit,
	}
	cost, code, reason := il.costDevirt(a, target, domW, totW)
	if math.IsInf(cost, 1) {
		d.Reason, d.Code = reason, code
		ev.Outcome, ev.Reason, ev.Detail = obs.OutcomeRejected, code, reason
		res.Decisions = append(res.Decisions, d)
		res.Trace = append(res.Trace, ev)
		return
	}
	a.Status = callgraph.StatusToBeExpanded
	il.plans[a.ID] = &expandPlan{kind: planDevirt, target: target}
	d.Accepted = true
	ev.Outcome = obs.OutcomeDevirtualized
	ev.Target = target
	ev.Detail = fmt.Sprintf("dominant target %s takes %.0f of %.0f resolved calls (%.0f%%)",
		target, domW, totW, 100*domW/totW)
	grow := il.estSize[target] + devirtGuardSize
	il.estSize[a.Caller.Name] += grow
	il.progSize += grow
	il.estFrame[a.Caller.Name] += il.estFrame[target]
	res.Decisions = append(res.Decisions, d)
	res.Expanded = append(res.Expanded, d)
	res.Trace = append(res.Trace, ev)
}

// costDevirt is the cost function for a devirtualization candidate: the
// whole-body rules of cost applied to the dominant target, plus the
// dominance-fraction test that makes the guard worthwhile.
func (il *Inliner) costDevirt(a *callgraph.Arc, target string, domW, totW float64) (float64, obs.Reason, string) {
	if target == "" || il.mod.Func(target) == nil {
		return math.Inf(1), obs.ReasonSpecialCallee,
			fmt.Sprintf("dominant target %q is not a defined function", target)
	}
	if totW <= 0 || domW/totW < il.params.DevirtThreshold {
		return math.Inf(1), obs.ReasonDevirtBelowThreshold,
			fmt.Sprintf("dominant target %s takes %.0f of %.0f resolved calls (%.0f%% < %.0f%%)",
				target, domW, totW, 100*domW/math.Max(totW, 1), 100*il.params.DevirtThreshold)
	}
	tn := il.graph.Nodes[target]
	if tn == a.Caller {
		return math.Inf(1), obs.ReasonSelfRecursion, "dominant target is the caller itself"
	}
	if il.orderPos[target] >= il.orderPos[a.Caller.Name] {
		return math.Inf(1), obs.ReasonLinearOrder,
			fmt.Sprintf("dominant target %s at linear position %d does not precede caller at %d",
				target, il.orderPos[target]+1, il.orderPos[a.Caller.Name]+1)
	}
	recursive := il.graph.Recursive(tn)
	if il.params.ConservativeRecursion {
		recursive = il.graph.ConservativelyRecursive(tn)
	}
	if recursive && il.estFrame[target] > il.params.StackBound {
		return math.Inf(1), obs.ReasonStackBound,
			fmt.Sprintf("dominant target on recursive path with frame %dB > stack bound %dB",
				il.estFrame[target], il.params.StackBound)
	}
	if ok, code, why := il.accepts(target, domW); !ok {
		return math.Inf(1), code, why
	}
	if il.params.MaxCalleeSize > 0 && il.estSize[target] > il.params.MaxCalleeSize {
		return math.Inf(1), obs.ReasonCalleeSizeLimit,
			fmt.Sprintf("dominant target size %d exceeds per-callee limit %d",
				il.estSize[target], il.params.MaxCalleeSize)
	}
	grow := il.estSize[target] + devirtGuardSize
	if il.progSize+grow > il.limit {
		return math.Inf(1), obs.ReasonProgramSizeLimit,
			fmt.Sprintf("program size %d+%d would exceed limit %d", il.progSize, grow, il.limit)
	}
	return float64(grow), obs.ReasonNone, ""
}
