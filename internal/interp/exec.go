package interp

import (
	"encoding/binary"
	"fmt"

	"inlinec/internal/profile"
)

// execBC runs entry(args) to completion over the translated bytecode.
// It is the bytecode twin of exec: one dense switch over pre-decoded
// instructions, with pc, the register file, and the code array held in
// locals so the hot path never chases a frame pointer. Every counter
// (IL, control, calls, returns, extern, ptr, site, func) increments at
// exactly the same semantic points as the switch engine — including the
// per-component budget checkpoints inside fused superinstructions — so
// RunStats are bit-identical between engines.
func (m *Machine) execBC(entry *bcFunc, args []int64, st *profile.RunStats) (int64, error) {
	var sp int64 // stack-segment high-water offset
	depth := 0

	f, err := m.pushBC(depth, entry, args, noReg, &sp, st)
	if err != nil {
		return 0, err
	}
	m.rootEntered = true
	depth++

	maxIL := m.opts.MaxIL
	trace := m.opts.Trace
	mem := m.mem

	// Segment views and fast-path bounds, hoisted out of the loop. The
	// backing arrays never move during a run (the heap is pre-allocated,
	// not grown), so loads and stores hit these slices directly; anything
	// that misses every window falls back to Memory for the exact fault.
	stackB, globB, heapB := mem.stack, mem.globals, mem.heap
	stackLim1 := int64(len(stackB)) - 1
	stackLim8 := int64(len(stackB)) - 8
	globLim1 := int64(len(globB)) - 1
	globLim8 := int64(len(globB)) - 8
	heapLim1 := int64(len(heapB)) - 1
	heapLim8 := int64(len(heapB)) - 8

	// Current-frame state in locals; reloaded on call and return.
	bf := f.bf
	code := bf.code
	regs := f.regs
	base := f.base           // absolute frame address
	frel := base - StackBase // frame offset within the stack segment
	pc := int32(0)

	// Run counters in locals, flushed into st on every exit path.
	var il, ctl, calls, rets, externs, ptrs int64
	defer func() {
		st.IL += il
		st.Control += ctl
		st.Calls += calls
		st.Returns += rets
		st.ExternCalls += externs
		st.PtrCalls += ptrs
	}()

	// fault builds a RuntimeError at the current instruction's source
	// position (cold path only).
	fault := func(pc int32, msg string) error {
		return &RuntimeError{Func: bf.fn.Name, Pos: bf.fn.Code[bf.origPC[pc]].Pos, Msg: msg}
	}
	// fault2 is fault for the second component of a fused pair.
	fault2 := func(pc int32, msg string) error {
		return &RuntimeError{Func: bf.fn.Name, Pos: bf.fn.Code[bf.origPC[pc]+1].Pos, Msg: msg}
	}
	budgetMsg := func() string {
		return fmt.Sprintf("instruction budget exceeded (%d)", maxIL)
	}

	var retVal int64
	for depth > 0 {
		in := &code[pc]
		il++
		if il > maxIL {
			if in.op == bcEnd {
				il--
				return 0, &RuntimeError{Func: bf.fn.Name, Msg: "fell off the end of the function"}
			}
			return 0, fault(pc, budgetMsg())
		}
		if trace != nil && in.op != bcEnd {
			trace(bf.fn, int(bf.origPC[pc]))
		}

		switch in.op {
		case bcEnd:
			il--
			return 0, &RuntimeError{Func: bf.fn.Name, Msg: "fell off the end of the function"}
		case bcNop:
			pc++
		case bcConst:
			regs[in.dst] = in.imm
			pc++
		case bcMov:
			regs[in.dst] = regs[in.a]
			pc++
		case bcNeg:
			regs[in.dst] = -regs[in.a]
			pc++
		case bcNot:
			regs[in.dst] = ^regs[in.a]
			pc++
		case bcAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
			pc++
		case bcSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
			pc++
		case bcMul:
			regs[in.dst] = regs[in.a] * regs[in.b]
			pc++
		case bcDiv:
			b := regs[in.b]
			if b == 0 {
				return 0, fault(pc, "division by zero")
			}
			regs[in.dst] = regs[in.a] / b
			pc++
		case bcRem:
			b := regs[in.b]
			if b == 0 {
				return 0, fault(pc, "division by zero")
			}
			regs[in.dst] = regs[in.a] % b
			pc++
		case bcAnd:
			regs[in.dst] = regs[in.a] & regs[in.b]
			pc++
		case bcOr:
			regs[in.dst] = regs[in.a] | regs[in.b]
			pc++
		case bcXor:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
			pc++
		case bcShl:
			regs[in.dst] = regs[in.a] << uint64(regs[in.b]&63)
			pc++
		case bcShr:
			regs[in.dst] = int64(uint64(regs[in.a]) >> uint64(regs[in.b]&63))
			pc++
		case bcEq:
			regs[in.dst] = b2i(regs[in.a] == regs[in.b])
			pc++
		case bcNe:
			regs[in.dst] = b2i(regs[in.a] != regs[in.b])
			pc++
		case bcLt:
			regs[in.dst] = b2i(regs[in.a] < regs[in.b])
			pc++
		case bcLe:
			regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
			pc++
		case bcGt:
			regs[in.dst] = b2i(regs[in.a] > regs[in.b])
			pc++
		case bcGe:
			regs[in.dst] = b2i(regs[in.a] >= regs[in.b])
			pc++
		case bcLoad1:
			addr := regs[in.a]
			if off := addr - StackBase; off >= 0 && off <= stackLim1 {
				regs[in.dst] = int64(stackB[off])
			} else if off := addr - HeapBase; off >= 0 && off <= heapLim1 {
				regs[in.dst] = int64(heapB[off])
			} else if off := addr - GlobalsBase; off >= 0 && off <= globLim1 {
				regs[in.dst] = int64(globB[off])
			} else {
				return 0, fault(pc, (&MemError{Addr: addr, Op: "load1"}).Error())
			}
			pc++
		case bcLoad8:
			addr := regs[in.a]
			if off := addr - StackBase; off >= 0 && off <= stackLim8 {
				regs[in.dst] = int64(binary.LittleEndian.Uint64(stackB[off:]))
			} else if off := addr - HeapBase; off >= 0 && off <= heapLim8 {
				regs[in.dst] = int64(binary.LittleEndian.Uint64(heapB[off:]))
			} else if off := addr - GlobalsBase; off >= 0 && off <= globLim8 {
				regs[in.dst] = int64(binary.LittleEndian.Uint64(globB[off:]))
			} else {
				return 0, fault(pc, (&MemError{Addr: addr, Op: "load8"}).Error())
			}
			pc++
		case bcLoadN:
			v, err := mem.Load(regs[in.a], int(in.aux))
			if err != nil {
				return 0, fault(pc, err.Error())
			}
			regs[in.dst] = v
			pc++
		case bcStore1:
			addr := regs[in.a]
			if off := addr - StackBase; off >= 0 && off <= stackLim1 {
				stackB[off] = byte(regs[in.b])
				if off+1 > mem.dirtyStack {
					mem.dirtyStack = off + 1
				}
			} else if off := addr - HeapBase; off >= 0 && off <= heapLim1 {
				heapB[off] = byte(regs[in.b])
				if off+1 > mem.dirtyHeap {
					mem.dirtyHeap = off + 1
				}
			} else if off := addr - GlobalsBase; off >= 0 && off <= globLim1 {
				globB[off] = byte(regs[in.b])
			} else {
				return 0, fault(pc, (&MemError{Addr: addr, Op: "store1"}).Error())
			}
			pc++
		case bcStore8:
			addr := regs[in.a]
			if off := addr - StackBase; off >= 0 && off <= stackLim8 {
				binary.LittleEndian.PutUint64(stackB[off:], uint64(regs[in.b]))
				if off+8 > mem.dirtyStack {
					mem.dirtyStack = off + 8
				}
			} else if off := addr - HeapBase; off >= 0 && off <= heapLim8 {
				binary.LittleEndian.PutUint64(heapB[off:], uint64(regs[in.b]))
				if off+8 > mem.dirtyHeap {
					mem.dirtyHeap = off + 8
				}
			} else if off := addr - GlobalsBase; off >= 0 && off <= globLim8 {
				binary.LittleEndian.PutUint64(globB[off:], uint64(regs[in.b]))
			} else {
				return 0, fault(pc, (&MemError{Addr: addr, Op: "store8"}).Error())
			}
			pc++
		case bcStoreN:
			if err := mem.Store(regs[in.a], int(in.aux), regs[in.b]); err != nil {
				return 0, fault(pc, err.Error())
			}
			pc++
		case bcAddrL:
			regs[in.dst] = base + in.imm
			pc++
		case bcJump:
			ctl++
			pc = in.aux
		case bcBr:
			ctl++
			if regs[in.a] != 0 {
				pc = in.aux
			} else {
				pc++
			}

		// --- superinstructions -------------------------------------------
		// Each fused form counts its components as separate IL
		// instructions with their own budget checkpoints, matching the
		// unfused execution order exactly: fault positions and
		// partially-updated register state line up with the switch engine.
		case bcEqBr, bcNeBr, bcLtBr, bcLeBr, bcGtBr, bcGeBr:
			var v int64
			a, b := regs[in.a], regs[in.b]
			switch in.op {
			case bcEqBr:
				v = b2i(a == b)
			case bcNeBr:
				v = b2i(a != b)
			case bcLtBr:
				v = b2i(a < b)
			case bcLeBr:
				v = b2i(a <= b)
			case bcGtBr:
				v = b2i(a > b)
			default:
				v = b2i(a >= b)
			}
			regs[in.dst] = v
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			ctl++
			if v != 0 {
				pc = in.aux
			} else {
				pc++
			}
		case bcLoadL1:
			regs[in.a] = base + in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			regs[in.dst] = int64(stackB[frel+in.imm])
			pc++
		case bcLoadL8:
			regs[in.a] = base + in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			regs[in.dst] = int64(binary.LittleEndian.Uint64(stackB[frel+in.imm:]))
			pc++
		case bcStoreL1:
			regs[in.a] = base + in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			stackB[frel+in.imm] = byte(regs[in.b])
			pc++
		case bcStoreL8:
			regs[in.a] = base + in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			binary.LittleEndian.PutUint64(stackB[frel+in.imm:], uint64(regs[in.b]))
			pc++
		case bcLoadG1:
			regs[in.a] = in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			regs[in.dst] = int64(globB[in.aux])
			pc++
		case bcLoadG8:
			regs[in.a] = in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			regs[in.dst] = int64(binary.LittleEndian.Uint64(globB[in.aux:]))
			pc++
		case bcStoreG1:
			regs[in.a] = in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			globB[in.aux] = byte(regs[in.b])
			pc++
		case bcStoreG8:
			regs[in.a] = in.imm
			il++
			if il > maxIL {
				return 0, fault2(pc, budgetMsg())
			}
			binary.LittleEndian.PutUint64(globB[in.aux:], uint64(regs[in.b]))
			pc++

		// --- calls and returns -------------------------------------------
		case bcCall:
			ci := &bf.calls[in.aux]
			calls++
			if ci.countSite {
				if m.sampleK <= 1 {
					m.siteCounts[ci.site]++
				} else {
					m.bumpSite(int(ci.site))
				}
			}
			callArgs := ci.constArgs
			if callArgs == nil {
				callArgs = m.scratchArgs(len(ci.args))
				for i, r := range ci.args {
					callArgs[i] = regs[r]
				}
			}
			if ci.user != nil {
				f.pc = pc + 1 // resume after the call on return
				nf, err := m.pushBC(depth, ci.user, callArgs, ci.dst, &sp, st)
				if err != nil {
					return 0, fault(pc, err.Error())
				}
				f = nf
				depth++
				bf = f.bf
				code = bf.code
				regs = f.regs
				base = f.base
				frel = base - StackBase
				pc = 0
				continue
			}
			if ci.ext == nil {
				return 0, fault(pc, "unimplemented extern "+ci.sym)
			}
			externs++
			if ci.countExtEntry {
				m.funcCounts[ci.extID]++
			}
			rv, err := ci.ext(m, callArgs)
			if err != nil {
				if _, isExit := err.(*exitError); isExit {
					return 0, err
				}
				return 0, fault(pc, err.Error())
			}
			rets++
			if ci.dst != noReg {
				regs[ci.dst] = rv
			}
			pc++
		case bcCallPtr:
			ci := &bf.calls[in.aux]
			calls++
			ptrs++
			if ci.countSite {
				if m.sampleK <= 1 {
					m.siteCounts[ci.site]++
				} else {
					m.bumpSite(int(ci.site))
				}
			}
			target := regs[in.a]
			callArgs := ci.constArgs
			if callArgs == nil {
				callArgs = m.scratchArgs(len(ci.args))
				for i, r := range ci.args {
					callArgs[i] = regs[r]
				}
			}
			var pt *ptrTarget
			if rel := target - FuncBase; rel >= 0 && rel%FuncStride == 0 {
				if idx := rel / FuncStride; idx < int64(len(m.ptrTargets)) {
					pt = &m.ptrTargets[idx]
				}
			}
			if pt != nil && pt.user != nil {
				f.pc = pc + 1
				nf, err := m.pushBC(depth, pt.user, callArgs, ci.dst, &sp, st)
				if err != nil {
					return 0, fault(pc, err.Error())
				}
				if m.ptrEntries != nil {
					m.bumpPtrEntry(int32(pt.user.id))
				}
				m.bumpPtrTarget(int(ci.site), pt.user.id)
				f = nf
				depth++
				bf = f.bf
				code = bf.code
				regs = f.regs
				base = f.base
				frel = base - StackBase
				pc = 0
				continue
			}
			if pt != nil && pt.ext != nil {
				externs++
				if m.ptrEntries == nil {
					m.funcCounts[pt.id]++
				} else {
					m.bumpPtrEntry(pt.id)
				}
				m.bumpPtrTarget(int(ci.site), int(pt.id))
				rv, err := pt.ext(m, callArgs)
				if err != nil {
					if _, isExit := err.(*exitError); isExit {
						return 0, err
					}
					return 0, fault(pc, err.Error())
				}
				rets++
				if ci.dst != noReg {
					regs[ci.dst] = rv
				}
				pc++
				continue
			}
			return 0, fault(pc, fmt.Sprintf("call through invalid function pointer %#x", target))
		case bcRet, bcRetVoid:
			rets++
			if in.op == bcRet {
				retVal = regs[in.a]
			} else {
				retVal = 0
			}
			depth--
			sp = 0
			if depth > 0 {
				retDst := f.retDst
				f = &m.bframes[depth-1]
				bf = f.bf
				code = bf.code
				regs = f.regs
				base = f.base
				frel = base - StackBase
				pc = f.pc
				sp = frel + int64(bf.fn.FrameSize)
				if retDst != noReg {
					regs[retDst] = retVal
				}
			}

		// --- cold faults --------------------------------------------------
		case bcBadAddrG:
			return 0, fault(pc, "unknown global "+bf.syms[in.aux])
		case bcBadAddrF:
			return 0, fault(pc, "unknown function "+bf.syms[in.aux])
		default:
			return 0, fault(pc, "unhandled opcode "+bf.syms[in.aux])
		}
	}
	return retVal, nil
}

// pushBC activates bf at depth, mirroring push for the bytecode engine:
// pooled frame storage, zeroed registers with the constant pool copied
// into the tail, a zeroed stack frame, and parameters stored into their
// slots. Counter updates (funcCounts, MaxStack) are identical to push.
func (m *Machine) pushBC(depth int, bf *bcFunc, callArgs []int64, retDst int32, sp *int64, st *profile.RunStats) (*bcFrame, error) {
	fn := bf.fn
	base := (*sp + 15) &^ 15
	if base+int64(fn.FrameSize) > int64(m.mem.StackSize()) {
		return nil, fmt.Errorf("control stack overflow entering %s (frame %d bytes, used %d of %d)",
			fn.Name, fn.FrameSize, base, m.mem.StackSize())
	}
	if depth == len(m.bframes) {
		m.bframes = append(m.bframes, bcFrame{})
	}
	f := &m.bframes[depth]
	f.bf = bf
	f.base = StackBase + base
	f.pc = 0
	f.retDst = retDst
	if cap(f.regs) >= bf.numRegs {
		f.regs = f.regs[:bf.numRegs]
		user := f.regs[:fn.NumRegs]
		for i := range user {
			user[i] = 0
		}
	} else {
		f.regs = make([]int64, bf.numRegs)
	}
	copy(f.regs[fn.NumRegs:], bf.consts)

	stack := m.mem.stack
	fr := stack[base : base+int64(fn.FrameSize)]
	for i := range fr {
		fr[i] = 0
	}
	dirtyEnd := base + int64(fn.FrameSize)
	for i := 0; i < fn.NumParams && i < len(callArgs); i++ {
		slot := &fn.Slots[i]
		off := base + int64(slot.Offset)
		if slot.Size == 1 {
			stack[off] = byte(callArgs[i])
		} else if off+8 <= int64(len(stack)) {
			binary.LittleEndian.PutUint64(stack[off:], uint64(callArgs[i]))
			if off+8 > dirtyEnd {
				dirtyEnd = off + 8
			}
		} else if err := m.mem.Store(StackBase+off, 8, callArgs[i]); err != nil {
			return nil, err
		}
	}
	if dirtyEnd > m.mem.dirtyStack {
		m.mem.dirtyStack = dirtyEnd
	}
	*sp = base + int64(fn.FrameSize)
	if *sp > st.MaxStack {
		st.MaxStack = *sp
	}
	if bf.countEntry {
		m.funcCounts[bf.id]++
	}
	return f, nil
}
