package inline

import "inlinec/internal/ir"

// CacheStats counts body-cache behaviour during physical expansion. The
// paper caches "the definitions of the most frequently inlined functions
// in memory to reduce the number of file reads" with a write-back policy;
// here every body is in memory anyway, so the cache exists to account for
// the I/O the paper's implementation would have performed: a miss models a
// file read of the callee's definition.
type CacheStats struct {
	Lookups int
	Hits    int
	Misses  int
	// Evictions counts write-backs of displaced definitions.
	Evictions int
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// bodyCache is a tiny LRU over function definitions.
type bodyCache struct {
	cap   int
	order []string // least recently used first
	held  map[string]*ir.Func
	Stats CacheStats
}

func newBodyCache(capacity int) *bodyCache {
	if capacity <= 0 {
		capacity = 8
	}
	return &bodyCache{cap: capacity, held: make(map[string]*ir.Func)}
}

// fetch returns the current definition of name, recording hit/miss and
// maintaining LRU order. Because the linear expansion order finalizes a
// body before any caller absorbs it, a cached definition never goes stale.
func (c *bodyCache) fetch(mod *ir.Module, name string) *ir.Func {
	c.Stats.Lookups++
	if f, ok := c.held[name]; ok {
		c.Stats.Hits++
		c.touch(name)
		return f
	}
	c.Stats.Misses++
	f := mod.Func(name)
	if f == nil {
		return nil
	}
	if len(c.order) >= c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.held, victim)
		c.Stats.Evictions++
	}
	c.held[name] = f
	c.order = append(c.order, name)
	return f
}

func (c *bodyCache) touch(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), name)
			return
		}
	}
}
