// Command ilprofd is the fleet profile-ingestion service. It runs in
// one of two modes sharing one HTTP surface:
//
// Storage node (default) — a long-running daemon that accepts profdb
// snapshots from any number of profiling machines, batches them into
// one persistent WAL-backed profile database through a single writer,
// and serves deterministic weighted merges back to compiler
// invocations:
//
//	ilprofd -db espresso.profdb -addr 127.0.0.1:7411
//
// Router (-router) — a stateless front end over N storage nodes that
// consistent-hashes every snapshot by module fingerprint, replicates it
// to R nodes, and acks only after every replica's WAL fsync; reads fan
// in all nodes and serve the same merged snapshot a single node holding
// all the data would:
//
//	ilprofd -router -peers http://n0:7411,http://n1:7411,http://n2:7411 -replicas 2
//
// API (both modes; see docs/fleet.md for the fleet semantics):
//
//	POST /ingest            body: ILPROFSNAP payload (ilprof -post emits these)
//	GET  /profile?fingerprint=<fp>[&halflife=N][&stale=W]
//	                        merged ILPROFSNAP for that program version
//	GET  /db                full database dump (ILPROFDB)
//	GET  /healthz           readiness: node — store open + WAL clean;
//	                        router — every shard reachable
//	POST /repair            node: adopt pushed winner records;
//	                        router: run one anti-entropy sweep
//	GET  /stats             ingest/merge/staleness counters as JSON
//	GET  /metrics           the same counters plus latency histograms, WAL
//	                        fsync timings, and recovery state, in Prometheus
//	                        text exposition format
//
// /stats and /metrics are two views of one registry, so their counts can
// never disagree. Every request is answered with an X-Request-Id header
// and logged as one JSON line to stderr.
//
// Responses to /ingest are sent only after the snapshot is committed (on
// every replica, in router mode), so a client that ingests and
// immediately fetches /profile observes its own write. A node rewrites
// its database file atomically every -flush-every commits and once more
// on shutdown (SIGINT/SIGTERM), so killing the daemon never loses
// acknowledged data beyond the final flush.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"flag"

	"inlinec/internal/chaos"
	"inlinec/internal/fleet"
	"inlinec/internal/profdb"
)

func main() {
	shutdown := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(shutdown)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, shutdown))
}

// run starts the daemon. ready, if non-nil, receives the bound address
// once the listener is up (tests use this); shutdown, when closed,
// triggers graceful drain + final flush.
func run(args []string, stdout, stderr io.Writer, ready func(addr string), shutdown <-chan struct{}) int {
	fs := flag.NewFlagSet("ilprofd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	dbPath := fs.String("db", "", "profile database file (created if missing; WAL-backed, flushed atomically)")
	program := fs.String("program", "", "program name for a fresh database (else taken from the first snapshot)")
	flushEvery := fs.Int("flush-every", 16, "write a fresh snapshot (and rotate the WAL) after this many committed snapshots")
	chaosSpec := fs.String("chaos-fs", "", "fault-injection spec for the store filesystem (testing only), e.g. seed=1,write=0.02,sync=0.02,rename=0.01,torn=0.01")
	router := fs.Bool("router", false, "run as the stateless fleet router instead of a storage node")
	peers := fs.String("peers", "", "router mode: comma-separated storage-node base URLs")
	replicas := fs.Int("replicas", 2, "router mode: replicas per record (clamped to the peer count)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *router {
		return runRouter(*addr, *peers, *replicas, stdout, stderr, ready, shutdown)
	}
	if *dbPath == "" {
		fmt.Fprintln(stderr, "ilprofd: -db is required (or -router -peers=...)")
		fs.PrintDefaults()
		return 2
	}
	var fsys chaos.FS = chaos.OSFS{}
	var inj *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.ParseConfig(*chaosSpec)
		if err != nil {
			fmt.Fprintf(stderr, "ilprofd: -chaos-fs: %v\n", err)
			return 2
		}
		inj = chaos.NewInjector(fsys, cfg)
		inj.SetEnabled(false) // recovery always runs fault-free
		fsys = inj
	}
	store, recovery, err := profdb.Open(fsys, *dbPath, *program)
	if err != nil {
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 1
	}
	if recovery.ReplayedRecords > 0 || !recovery.Clean() {
		fmt.Fprintf(stderr, "ilprofd: recovery: %s\n", recovery)
	}
	if inj != nil {
		inj.SetEnabled(true)
		fmt.Fprintf(stderr, "ilprofd: CHAOS MODE: injecting filesystem faults (%s)\n", *chaosSpec)
	}
	db := store.DB()
	s := fleet.NewStoreNode(store, *flushEvery, recovery)
	s.SetLog(stderr)
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ilprofd: listening on %s (db %s, %d record(s), %d run(s))\n",
		ln.Addr(), *dbPath, len(db.Records), db.TotalRuns())
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		s.Stop()
		return 1
	case <-shutdown:
	}
	if inj != nil {
		inj.SetEnabled(false) // graceful shutdown drains and flushes fault-free
	}
	fmt.Fprintln(stderr, "ilprofd: shutting down")
	hs.Close()
	if err := s.Stop(); err != nil {
		fmt.Fprintf(stderr, "ilprofd: final flush: %v\n", err)
		return 1
	}
	final := s.DB() // writer drained: safe to read directly
	fmt.Fprintf(stdout, "ilprofd: flushed %s: %d record(s), %d run(s), %d snapshot(s) ingested this session\n",
		*dbPath, len(final.Records), final.TotalRuns(),
		s.Registry().CounterValue("ilprofd_ingested_snapshots_total"))
	return 0
}

// runRouter starts the stateless fleet front end.
func runRouter(addr, peers string, replicas int, stdout, stderr io.Writer, ready func(addr string), shutdown <-chan struct{}) int {
	var peerList []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	if len(peerList) == 0 {
		fmt.Fprintln(stderr, "ilprofd: -router requires -peers")
		return 2
	}
	rt, err := fleet.NewRouter(peerList, replicas, fleet.RouterOptions{Warn: stderr})
	if err != nil {
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 2
	}
	rt.SetLog(stderr)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ilprofd: router listening on %s (%d peer(s), %d replica(s))\n",
		ln.Addr(), len(rt.Ring().Peers()), rt.Ring().Replicas())
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ilprofd: %v\n", err)
		return 1
	case <-shutdown:
	}
	fmt.Fprintln(stderr, "ilprofd: router shutting down")
	hs.Close()
	fmt.Fprintln(stdout, "ilprofd: router stopped")
	return 0
}
