package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RequestLog is structured, per-request HTTP logging: every request
// gets a process-unique id (also returned to the client in the
// X-Request-Id header, so an operator can join a client-side error to
// the daemon's log line), and completion emits one JSON line. When a
// Registry is attached the same middleware records the request counter
// (by method/path/code) and a latency histogram, so logs and /metrics
// can never disagree about how many requests were served.
type RequestLog struct {
	mu     sync.Mutex
	w      io.Writer
	seq    atomic.Int64
	reg    *Registry
	routes map[string]bool
	// now is the clock (tests may override).
	now func() time.Time
}

// NewRequestLog returns a logger writing JSON lines to w (nil = no log
// lines, metrics only) and recording into reg (nil = log lines only).
// routes, when given, is the set of paths the server actually serves:
// the metric path label for any other request collapses to "other", so
// a client probing arbitrary URLs cannot grow the registry's label
// cardinality without bound. Log lines always keep the raw path (one
// line per request — nothing accumulates).
func NewRequestLog(w io.Writer, reg *Registry, routes ...string) *RequestLog {
	l := &RequestLog{w: w, reg: reg, now: time.Now}
	if len(routes) > 0 {
		l.routes = make(map[string]bool, len(routes))
		for _, p := range routes {
			l.routes[p] = true
		}
	}
	return l
}

// logLine is the JSON document for one completed request.
type logLine struct {
	Time   string  `json:"ts"`
	ID     string  `json:"id"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	Dur    string  `json:"dur"`
	DurMS  float64 `json:"dur_ms"`
	Remote string  `json:"remote,omitempty"`
}

// statusWriter captures the status code and byte count.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Wrap instruments an http.Handler.
func (l *RequestLog) Wrap(h http.Handler) http.Handler {
	if l == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := l.now()
		id := fmt.Sprintf("r%06d", l.seq.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := l.now().Sub(start)
		if l.reg != nil {
			mpath := r.URL.Path
			if l.routes != nil && !l.routes[mpath] {
				mpath = "other"
			}
			l.reg.Counter("http_requests_total",
				"HTTP requests served, by method, path, and status code.",
				"method", r.Method, "path", mpath, "code", strconv.Itoa(sw.status)).Inc()
			l.reg.Histogram("http_request_duration_seconds",
				"HTTP request latency.", nil, "path", mpath).Observe(dur.Seconds())
		}
		if l.w == nil {
			return
		}
		line := logLine{
			Time:   start.UTC().Format(time.RFC3339Nano),
			ID:     id,
			Method: r.Method,
			Path:   r.URL.Path,
			Status: sw.status,
			Bytes:  sw.bytes,
			Dur:    dur.Round(time.Microsecond).String(),
			DurMS:  float64(dur.Microseconds()) / 1000,
			Remote: r.RemoteAddr,
		}
		data, err := json.Marshal(&line)
		if err != nil {
			return
		}
		l.mu.Lock()
		l.w.Write(append(data, '\n'))
		l.mu.Unlock()
	})
}
