// Package sema implements semantic analysis for MiniC: scope construction,
// name resolution, type checking, lvalue validation, direct-call
// resolution, and address-taken analysis (which later feeds the call
// graph's worst-case assumptions about calls through pointers).
package sema

import (
	"fmt"

	"inlinec/internal/ast"
	"inlinec/internal/token"
	"inlinec/internal/types"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a collection of semantic errors implementing error.
type ErrorList []*Error

func (el ErrorList) Error() string {
	switch len(el) {
	case 0:
		return "no errors"
	case 1:
		return el[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", el[0], len(el)-1)
	}
}

// Program is the result of semantic analysis over one translation unit.
type Program struct {
	File    *ast.File
	Funcs   []*ast.FuncDecl // defined functions, in declaration order
	Externs []*ast.FuncDecl // functions declared but not defined here
	Globals []*ast.VarDecl
	// AddressTaken holds the functions whose addresses are used in
	// computations (assigned, passed, stored). Under the paper's rules this
	// is the maximal callee set for calls through pointers.
	AddressTaken map[*ast.FuncDecl]bool
	// Main is the program entry point; nil if absent.
	Main *ast.FuncDecl
}

// HasFunc reports whether the program defines a function with the name.
func (p *Program) HasFunc(name string) bool {
	for _, f := range p.Funcs {
		if f.Name == name {
			return true
		}
	}
	return false
}

// Func returns the defined function with the name, or nil.
func (p *Program) Func(name string) *ast.FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// checker carries the analysis state.
type checker struct {
	prog  *Program
	errs  ErrorList
	scope *scope

	curFunc *ast.FuncDecl
	labels  map[string]bool
	gotos   []*ast.GotoStmt
	loops   int // nesting depth of loops (for break/continue)
	switchs int // nesting depth of switches (for break)
}

// scope is a lexical scope mapping names to declarations
// (*ast.VarDecl or *ast.FuncDecl).
type scope struct {
	parent *scope
	names  map[string]any
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]any)}
}

func (s *scope) lookup(name string) any {
	for cur := s; cur != nil; cur = cur.parent {
		if d, ok := cur.names[name]; ok {
			return d
		}
	}
	return nil
}

// Check analyzes the file and returns the program, or an error list.
func Check(file *ast.File) (*Program, error) {
	c := &checker{
		prog: &Program{
			File:         file,
			AddressTaken: make(map[*ast.FuncDecl]bool),
		},
		scope: newScope(nil),
	}
	c.collectGlobals()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			c.checkFunc(fd)
		}
	}
	c.prog.Main = c.prog.Func("main")
	if len(c.errs) > 0 {
		return c.prog, c.errs
	}
	return c.prog, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// collectGlobals installs all top-level names in the file scope, merging
// extern declarations with later definitions.
func (c *checker) collectGlobals() {
	for _, d := range c.prog.File.Decls {
		switch dd := d.(type) {
		case *ast.FuncDecl:
			if prev, ok := c.scope.names[dd.Name]; ok {
				pf, isFunc := prev.(*ast.FuncDecl)
				if !isFunc {
					c.errorf(dd.Pos(), "%s redeclared as function", dd.Name)
					continue
				}
				if pf.Body != nil && dd.Body != nil {
					c.errorf(dd.Pos(), "function %s redefined", dd.Name)
					continue
				}
				if !types.Identical(pf.Type, dd.Type) {
					c.errorf(dd.Pos(), "conflicting declarations of %s: %s vs %s", dd.Name, pf.Type, dd.Type)
				}
				if dd.Body != nil {
					// Definition supersedes the prototype.
					c.scope.names[dd.Name] = dd
					c.replaceExtern(pf, dd)
				}
				continue
			}
			c.scope.names[dd.Name] = dd
			if dd.Body != nil {
				c.prog.Funcs = append(c.prog.Funcs, dd)
			} else {
				c.prog.Externs = append(c.prog.Externs, dd)
			}
		case *ast.VarDecl:
			if _, ok := c.scope.names[dd.Name]; ok {
				c.errorf(dd.Pos(), "global %s redeclared", dd.Name)
				continue
			}
			if dd.Type != nil && dd.Type.Kind() == types.Struct && !dd.Type.(*types.StructType).Complete() {
				c.errorf(dd.Pos(), "variable %s has incomplete type %s", dd.Name, dd.Type)
			}
			c.scope.names[dd.Name] = dd
			c.prog.Globals = append(c.prog.Globals, dd)
			if dd.Init != nil {
				c.checkGlobalInit(dd)
			}
		}
	}
}

func (c *checker) replaceExtern(old, def *ast.FuncDecl) {
	for i, f := range c.prog.Externs {
		if f == old {
			c.prog.Externs = append(c.prog.Externs[:i], c.prog.Externs[i+1:]...)
			break
		}
	}
	c.prog.Funcs = append(c.prog.Funcs, def)
}

// checkGlobalInit validates that a global initializer is a constant
// expression, a string literal, or an initializer list of such.
func (c *checker) checkGlobalInit(vd *ast.VarDecl) {
	var walk func(e ast.Expr, t types.Type)
	walk = func(e ast.Expr, t types.Type) {
		switch ee := e.(type) {
		case *ast.IntLit:
			ee.SetType(types.IntType)
			if t != nil && !types.AssignableTo(types.IntType, t) {
				c.errorf(e.Pos(), "cannot initialize %s with an integer constant", t)
			}
		case *ast.StrLit:
			ee.SetType(types.PointerTo(types.CharType))
		case *ast.UnaryExpr:
			if ee.Op == token.Minus || ee.Op == token.Tilde {
				walk(ee.X, t)
				ee.SetType(types.IntType)
				return
			}
			if ee.Op == token.Amp {
				// &function or &global: a constant address.
				if id, ok := ee.X.(*ast.Ident); ok {
					c.resolveIdent(id)
					ee.SetType(types.PointerTo(types.IntType))
					return
				}
			}
			c.errorf(e.Pos(), "global initializer must be constant")
		case *ast.Ident:
			// Permit function names (constant addresses) in initializers.
			c.resolveIdent(ee)
			if fd, ok := ee.Ref.(*ast.FuncDecl); ok {
				c.prog.AddressTaken[fd] = true
				return
			}
			c.errorf(e.Pos(), "global initializer must be constant")
		case *ast.InitListExpr:
			ee.SetType(t)
			var elemT types.Type = types.IntType
			if arr, ok := t.(*types.Arr); ok {
				elemT = arr.Elem
			}
			for _, el := range ee.Elems {
				walk(el, elemT)
			}
		default:
			c.errorf(e.Pos(), "global initializer must be constant")
		}
	}
	walk(vd.Init, vd.Type)
}

// ---------------------------------------------------------------- functions

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.curFunc = fd
	c.labels = make(map[string]bool)
	c.gotos = nil
	c.loops, c.switchs = 0, 0

	fnScope := newScope(c.scope)
	for _, p := range fd.Params {
		if p.Name == "" {
			c.errorf(fd.Pos(), "function %s has an unnamed parameter", fd.Name)
			continue
		}
		if _, dup := fnScope.names[p.Name]; dup {
			c.errorf(p.Pos(), "parameter %s redeclared", p.Name)
		}
		fnScope.names[p.Name] = p
	}
	saved := c.scope
	c.scope = fnScope
	c.checkBlock(fd.Body, false)
	c.scope = saved

	for _, g := range c.gotos {
		if !c.labels[g.Label] {
			c.errorf(g.Pos(), "goto undefined label %s", g.Label)
		}
	}
	c.curFunc = nil
}

// checkBlock checks a block; if transparent, declarations land in the
// enclosing scope (used for multi-declarator locals and for statement).
func (c *checker) checkBlock(b *ast.BlockStmt, transparent bool) {
	if !transparent {
		c.scope = newScope(c.scope)
		defer func() { c.scope = c.scope.parent }()
	}
	for _, s := range b.List {
		c.checkStmt(s)
	}
}

func (c *checker) declareLocal(vd *ast.VarDecl) {
	if vd.Name == "" {
		return
	}
	if _, dup := c.scope.names[vd.Name]; dup {
		c.errorf(vd.Pos(), "%s redeclared in this scope", vd.Name)
	}
	if vd.Type.Kind() == types.Void {
		c.errorf(vd.Pos(), "variable %s has void type", vd.Name)
	}
	if st, ok := vd.Type.(*types.StructType); ok && !st.Complete() {
		c.errorf(vd.Pos(), "variable %s has incomplete type %s", vd.Name, vd.Type)
	}
	c.scope.names[vd.Name] = vd
	if vd.Init != nil {
		c.checkLocalInit(vd)
	}
}

func (c *checker) checkLocalInit(vd *ast.VarDecl) {
	if lst, ok := vd.Init.(*ast.InitListExpr); ok {
		arr, isArr := vd.Type.(*types.Arr)
		st, isStruct := vd.Type.(*types.StructType)
		switch {
		case isArr:
			if len(lst.Elems) > arr.Len {
				c.errorf(lst.Pos(), "too many initializers for %s", vd.Type)
			}
			for _, el := range lst.Elems {
				t := c.checkExpr(el)
				if t != nil && !types.AssignableTo(t, arr.Elem) {
					c.errorf(el.Pos(), "cannot initialize %s element with %s", arr.Elem, t)
				}
			}
		case isStruct:
			if len(lst.Elems) > len(st.Fields) {
				c.errorf(lst.Pos(), "too many initializers for %s", vd.Type)
			}
			for i, el := range lst.Elems {
				t := c.checkExpr(el)
				if i < len(st.Fields) && t != nil && !types.AssignableTo(t, st.Fields[i].Type) {
					c.errorf(el.Pos(), "cannot initialize field %s with %s", st.Fields[i].Name, t)
				}
			}
		default:
			c.errorf(lst.Pos(), "initializer list requires array or struct type")
		}
		lst.SetType(vd.Type)
		return
	}
	t := c.checkExpr(vd.Init)
	if t == nil {
		return
	}
	if arr, ok := vd.Type.(*types.Arr); ok {
		if _, isStr := vd.Init.(*ast.StrLit); isStr && arr.Elem.Kind() == types.Char {
			return // char buf[] = "..." is fine
		}
	}
	if !types.AssignableTo(t, vd.Type) {
		c.errorf(vd.Init.Pos(), "cannot initialize %s with value of type %s", vd.Type, t)
	}
}

// ---------------------------------------------------------------- statements

func (c *checker) checkStmt(s ast.Stmt) {
	switch ss := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(ss, ss.DeclGroup)
	case *ast.VarDecl:
		c.declareLocal(ss)
	case *ast.EmptyStmt:
	case *ast.ExprStmt:
		c.checkExpr(ss.X)
	case *ast.IfStmt:
		c.condExpr(ss.Cond)
		c.checkStmt(ss.Then)
		if ss.Else != nil {
			c.checkStmt(ss.Else)
		}
	case *ast.WhileStmt:
		c.condExpr(ss.Cond)
		c.loops++
		c.checkStmt(ss.Body)
		c.loops--
	case *ast.DoWhileStmt:
		c.loops++
		c.checkStmt(ss.Body)
		c.loops--
		c.condExpr(ss.Cond)
	case *ast.ForStmt:
		c.scope = newScope(c.scope)
		if ss.Init != nil {
			if blk, ok := ss.Init.(*ast.BlockStmt); ok {
				c.checkBlock(blk, true) // multi-declarator init shares scope
			} else {
				c.checkStmt(ss.Init)
			}
		}
		if ss.Cond != nil {
			c.condExpr(ss.Cond)
		}
		if ss.Post != nil {
			c.checkExpr(ss.Post)
		}
		c.loops++
		c.checkStmt(ss.Body)
		c.loops--
		c.scope = c.scope.parent
	case *ast.ReturnStmt:
		res := c.curFunc.Type.Result
		if ss.X == nil {
			if !types.IsVoid(res) {
				c.errorf(ss.Pos(), "function %s must return a value of type %s", c.curFunc.Name, res)
			}
			return
		}
		if types.IsVoid(res) {
			c.errorf(ss.Pos(), "void function %s returns a value", c.curFunc.Name)
			c.checkExpr(ss.X)
			return
		}
		t := c.checkExpr(ss.X)
		if t != nil && !types.AssignableTo(t, res) {
			c.errorf(ss.X.Pos(), "cannot return %s from function returning %s", t, res)
		}
	case *ast.BreakStmt:
		if c.loops == 0 && c.switchs == 0 {
			c.errorf(ss.Pos(), "break outside loop or switch")
		}
	case *ast.ContinueStmt:
		if c.loops == 0 {
			c.errorf(ss.Pos(), "continue outside loop")
		}
	case *ast.GotoStmt:
		c.gotos = append(c.gotos, ss)
	case *ast.LabeledStmt:
		if c.labels[ss.Label] {
			c.errorf(ss.Pos(), "label %s redefined", ss.Label)
		}
		c.labels[ss.Label] = true
		c.checkStmt(ss.Stmt)
	case *ast.SwitchStmt:
		t := c.checkExpr(ss.Tag)
		if t != nil && !types.IsInteger(t) {
			c.errorf(ss.Tag.Pos(), "switch tag must have integer type, got %s", t)
		}
		c.switchs++
		seen := make(map[int64]bool)
		sawDefault := false
		for _, cc := range ss.Cases {
			if cc.Values == nil {
				if sawDefault {
					c.errorf(cc.Pos(), "duplicate default case")
				}
				sawDefault = true
			}
			for _, v := range cc.Values {
				c.checkExpr(v)
				if lit, ok := v.(*ast.IntLit); ok {
					if seen[lit.Value] {
						c.errorf(v.Pos(), "duplicate case value %d", lit.Value)
					}
					seen[lit.Value] = true
				} else {
					c.errorf(v.Pos(), "case value must be an integer constant")
				}
			}
			c.scope = newScope(c.scope)
			for _, st := range cc.Body {
				c.checkStmt(st)
			}
			c.scope = c.scope.parent
		}
		c.switchs--
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

func (c *checker) condExpr(e ast.Expr) {
	t := c.checkExpr(e)
	if t != nil && !types.IsScalar(types.Decay(t)) {
		c.errorf(e.Pos(), "condition must be scalar, got %s", t)
	}
}

// --------------------------------------------------------------- expressions

// resolveIdent binds an identifier to its declaration without recording an
// address-taken use (callers decide that).
func (c *checker) resolveIdent(id *ast.Ident) any {
	d := c.scope.lookup(id.Name)
	if d == nil {
		c.errorf(id.Pos(), "undefined: %s", id.Name)
		id.SetType(types.IntType)
		return nil
	}
	id.Ref = d
	switch dd := d.(type) {
	case *ast.VarDecl:
		id.SetType(dd.Type)
	case *ast.FuncDecl:
		id.SetType(dd.Type)
	}
	return d
}

// checkExpr type-checks e and returns its type (nil after an error that
// leaves the type unknown; errors still set a fallback type on the node).
func (c *checker) checkExpr(e ast.Expr) types.Type {
	switch ee := e.(type) {
	case *ast.IntLit:
		ee.SetType(types.IntType)
	case *ast.StrLit:
		ee.SetType(types.PointerTo(types.CharType))
	case *ast.Ident:
		d := c.resolveIdent(ee)
		if fd, ok := d.(*ast.FuncDecl); ok {
			// A function name outside a direct-call position is an
			// address-taken use (it decays to a function pointer).
			c.prog.AddressTaken[fd] = true
		}
	case *ast.UnaryExpr:
		return c.checkUnary(ee)
	case *ast.PostfixExpr:
		t := c.checkExpr(ee.X)
		if !c.isLvalue(ee.X) {
			c.errorf(ee.Pos(), "%s requires an lvalue", ee.Op)
		}
		if t != nil && !types.IsScalar(t) {
			c.errorf(ee.Pos(), "%s requires scalar operand, got %s", ee.Op, t)
		}
		ee.SetType(t)
	case *ast.BinaryExpr:
		return c.checkBinary(ee)
	case *ast.AssignExpr:
		return c.checkAssign(ee)
	case *ast.CondExpr:
		c.condExpr(ee.Cond)
		t1 := c.checkExpr(ee.Then)
		t2 := c.checkExpr(ee.Else)
		switch {
		case t1 != nil && t2 != nil && types.Identical(types.Decay(t1), types.Decay(t2)):
			ee.SetType(types.Decay(t1))
		case t1 != nil && t2 != nil && types.IsInteger(t1) && types.IsInteger(t2):
			ee.SetType(types.IntType)
		case t1 != nil && t2 != nil &&
			types.Decay(t1).Kind() == types.Pointer && types.IsInteger(t2):
			ee.SetType(types.Decay(t1)) // p ? p : 0
		case t1 != nil && t2 != nil &&
			types.IsInteger(t1) && types.Decay(t2).Kind() == types.Pointer:
			ee.SetType(types.Decay(t2))
		case t1 != nil && t2 != nil &&
			types.Decay(t1).Kind() == types.Pointer && types.Decay(t2).Kind() == types.Pointer:
			ee.SetType(types.Decay(t1))
		default:
			if t1 != nil && t2 != nil {
				c.errorf(ee.Pos(), "mismatched conditional types %s and %s", t1, t2)
			}
			ee.SetType(types.IntType)
		}
	case *ast.CallExpr:
		return c.checkCall(ee)
	case *ast.IndexExpr:
		bt := c.checkExpr(ee.X)
		it := c.checkExpr(ee.Index)
		if it != nil && !types.IsInteger(it) {
			c.errorf(ee.Index.Pos(), "array index must be integer, got %s", it)
		}
		switch b := types.Decay(bt).(type) {
		case *types.Ptr:
			ee.SetType(b.Elem)
		default:
			if bt != nil {
				c.errorf(ee.Pos(), "cannot index value of type %s", bt)
			}
			ee.SetType(types.IntType)
		}
	case *ast.MemberExpr:
		return c.checkMember(ee)
	case *ast.SizeofExpr:
		if ee.Arg != nil {
			c.checkExpr(ee.Arg)
		}
		ee.SetType(types.IntType)
	case *ast.CastExpr:
		c.checkExpr(ee.X)
		ee.SetType(ee.To)
	case *ast.CommaExpr:
		c.checkExpr(ee.X)
		t := c.checkExpr(ee.Y)
		ee.SetType(t)
	case *ast.InitListExpr:
		c.errorf(ee.Pos(), "initializer list is only valid in a declaration")
		ee.SetType(types.IntType)
	default:
		c.errorf(e.Pos(), "unhandled expression %T", e)
		return nil
	}
	return e.TypeOf()
}

func (c *checker) checkUnary(ee *ast.UnaryExpr) types.Type {
	switch ee.Op {
	case token.Minus, token.Tilde:
		t := c.checkExpr(ee.X)
		if t != nil && !types.IsInteger(t) {
			c.errorf(ee.Pos(), "operator %s requires integer operand, got %s", ee.Op, t)
		}
		ee.SetType(types.IntType)
	case token.Bang:
		t := c.checkExpr(ee.X)
		if t != nil && !types.IsScalar(types.Decay(t)) {
			c.errorf(ee.Pos(), "operator ! requires scalar operand, got %s", t)
		}
		ee.SetType(types.IntType)
	case token.Star:
		t := c.checkExpr(ee.X)
		switch b := types.Decay(t).(type) {
		case *types.Ptr:
			if b.Elem.Kind() == types.Func {
				ee.SetType(b) // *fp is still a function designator
			} else {
				ee.SetType(b.Elem)
			}
		default:
			if t != nil {
				c.errorf(ee.Pos(), "cannot dereference value of type %s", t)
			}
			ee.SetType(types.IntType)
		}
	case token.Amp:
		if id, ok := ee.X.(*ast.Ident); ok {
			d := c.resolveIdent(id)
			if fd, isFn := d.(*ast.FuncDecl); isFn {
				c.prog.AddressTaken[fd] = true
				ee.SetType(types.PointerTo(fd.Type))
				return ee.TypeOf()
			}
		}
		t := c.checkExpr(ee.X)
		if !c.isLvalue(ee.X) {
			c.errorf(ee.Pos(), "cannot take the address of this expression")
		}
		if t == nil {
			t = types.IntType
		}
		ee.SetType(types.PointerTo(t))
	case token.PlusPlus, token.MinusMinus:
		t := c.checkExpr(ee.X)
		if !c.isLvalue(ee.X) {
			c.errorf(ee.Pos(), "%s requires an lvalue", ee.Op)
		}
		if t != nil && !types.IsScalar(t) {
			c.errorf(ee.Pos(), "%s requires scalar operand, got %s", ee.Op, t)
		}
		ee.SetType(t)
	default:
		c.errorf(ee.Pos(), "unhandled unary operator %s", ee.Op)
		ee.SetType(types.IntType)
	}
	return ee.TypeOf()
}

func (c *checker) checkBinary(ee *ast.BinaryExpr) types.Type {
	tx := c.checkExpr(ee.X)
	ty := c.checkExpr(ee.Y)
	if tx == nil || ty == nil {
		ee.SetType(types.IntType)
		return ee.TypeOf()
	}
	dx, dy := types.Decay(tx), types.Decay(ty)
	switch ee.Op {
	case token.Plus:
		switch {
		case types.IsInteger(dx) && types.IsInteger(dy):
			ee.SetType(types.IntType)
		case dx.Kind() == types.Pointer && types.IsInteger(dy):
			ee.SetType(dx)
		case types.IsInteger(dx) && dy.Kind() == types.Pointer:
			ee.SetType(dy)
		default:
			c.errorf(ee.Pos(), "invalid operands to +: %s and %s", tx, ty)
			ee.SetType(types.IntType)
		}
	case token.Minus:
		switch {
		case types.IsInteger(dx) && types.IsInteger(dy):
			ee.SetType(types.IntType)
		case dx.Kind() == types.Pointer && types.IsInteger(dy):
			ee.SetType(dx)
		case dx.Kind() == types.Pointer && dy.Kind() == types.Pointer:
			ee.SetType(types.IntType)
		default:
			c.errorf(ee.Pos(), "invalid operands to -: %s and %s", tx, ty)
			ee.SetType(types.IntType)
		}
	case token.Star, token.Slash, token.Percent, token.Shl, token.Shr,
		token.Amp, token.Pipe, token.Caret:
		if !types.IsInteger(dx) || !types.IsInteger(dy) {
			c.errorf(ee.Pos(), "invalid operands to %s: %s and %s", ee.Op, tx, ty)
		}
		ee.SetType(types.IntType)
	case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge:
		ok := (types.IsInteger(dx) && types.IsInteger(dy)) ||
			(dx.Kind() == types.Pointer && dy.Kind() == types.Pointer) ||
			(dx.Kind() == types.Pointer && types.IsInteger(dy)) ||
			(types.IsInteger(dx) && dy.Kind() == types.Pointer)
		if !ok {
			c.errorf(ee.Pos(), "invalid comparison of %s and %s", tx, ty)
		}
		ee.SetType(types.IntType)
	case token.AndAnd, token.OrOr:
		if !types.IsScalar(dx) || !types.IsScalar(dy) {
			c.errorf(ee.Pos(), "invalid operands to %s: %s and %s", ee.Op, tx, ty)
		}
		ee.SetType(types.IntType)
	default:
		c.errorf(ee.Pos(), "unhandled binary operator %s", ee.Op)
		ee.SetType(types.IntType)
	}
	return ee.TypeOf()
}

func (c *checker) checkAssign(ee *ast.AssignExpr) types.Type {
	tx := c.checkExpr(ee.X)
	ty := c.checkExpr(ee.Y)
	if !c.isLvalue(ee.X) {
		c.errorf(ee.Pos(), "assignment target is not an lvalue")
	}
	if tx != nil && tx.Kind() == types.Array {
		c.errorf(ee.Pos(), "cannot assign to an array")
	}
	if ee.Op == token.Assign {
		if tx != nil && ty != nil && !types.AssignableTo(ty, tx) {
			c.errorf(ee.Pos(), "cannot assign %s to %s", ty, tx)
		}
	} else {
		base := ee.Op.BaseOp()
		dx := types.Decay(tx)
		if base == token.Plus || base == token.Minus {
			if tx != nil && ty != nil && !(types.IsInteger(dx) && types.IsInteger(types.Decay(ty))) &&
				!(dx.Kind() == types.Pointer && types.IsInteger(types.Decay(ty))) {
				c.errorf(ee.Pos(), "invalid operands to %s: %s and %s", ee.Op, tx, ty)
			}
		} else if tx != nil && ty != nil && (!types.IsInteger(dx) || !types.IsInteger(types.Decay(ty))) {
			c.errorf(ee.Pos(), "invalid operands to %s: %s and %s", ee.Op, tx, ty)
		}
	}
	ee.SetType(tx)
	return ee.TypeOf()
}

func (c *checker) checkCall(ee *ast.CallExpr) types.Type {
	// Direct call: callee is an identifier bound to a function.
	var ft *types.FuncType
	if id, ok := ee.Fun.(*ast.Ident); ok {
		d := c.resolveIdent(id)
		if fd, isFn := d.(*ast.FuncDecl); isFn {
			ee.Direct = fd
			ft = fd.Type
		} else if d != nil {
			// Variable holding a function pointer.
			t := types.Decay(id.TypeOf())
			if pt, isPtr := t.(*types.Ptr); isPtr {
				if f, isFt := pt.Elem.(*types.FuncType); isFt {
					ft = f
				}
			}
			if ft == nil {
				c.errorf(ee.Pos(), "called object %s is not a function", id.Name)
			}
		}
	} else {
		t := c.checkExpr(ee.Fun)
		switch tt := types.Decay(t).(type) {
		case *types.Ptr:
			if f, isFt := tt.Elem.(*types.FuncType); isFt {
				ft = f
			}
		case *types.FuncType:
			ft = tt
		}
		if ft == nil && t != nil {
			c.errorf(ee.Pos(), "called object has type %s, not a function", t)
		}
	}
	if ft == nil {
		ee.SetType(types.IntType)
		for _, a := range ee.Args {
			c.checkExpr(a)
		}
		return ee.TypeOf()
	}
	if len(ee.Args) < len(ft.Params) || (!ft.Variadic && len(ee.Args) > len(ft.Params)) {
		c.errorf(ee.Pos(), "wrong number of arguments: have %d, want %d", len(ee.Args), len(ft.Params))
	}
	for i, a := range ee.Args {
		at := c.checkExpr(a)
		if i < len(ft.Params) && at != nil && !types.AssignableTo(at, ft.Params[i]) {
			c.errorf(a.Pos(), "argument %d: cannot use %s as %s", i+1, at, ft.Params[i])
		}
	}
	ee.SetType(ft.Result)
	return ee.TypeOf()
}

func (c *checker) checkMember(ee *ast.MemberExpr) types.Type {
	t := c.checkExpr(ee.X)
	if t == nil {
		ee.SetType(types.IntType)
		return ee.TypeOf()
	}
	var st *types.StructType
	if ee.Arrow {
		if pt, ok := types.Decay(t).(*types.Ptr); ok {
			st, _ = pt.Elem.(*types.StructType)
		}
		if st == nil {
			c.errorf(ee.Pos(), "-> requires a pointer to struct, got %s", t)
		}
	} else {
		st, _ = t.(*types.StructType)
		if st == nil {
			c.errorf(ee.Pos(), ". requires a struct, got %s", t)
		}
	}
	if st == nil {
		ee.SetType(types.IntType)
		return ee.TypeOf()
	}
	f := st.Field(ee.Name)
	if f == nil {
		c.errorf(ee.Pos(), "struct %s has no field %s", st.Name, ee.Name)
		ee.SetType(types.IntType)
		return ee.TypeOf()
	}
	ee.Field = f
	ee.SetType(f.Type)
	return ee.TypeOf()
}

// isLvalue reports whether e designates a storage location.
func (c *checker) isLvalue(e ast.Expr) bool {
	switch ee := e.(type) {
	case *ast.Ident:
		_, isVar := ee.Ref.(*ast.VarDecl)
		return isVar
	case *ast.UnaryExpr:
		return ee.Op == token.Star
	case *ast.IndexExpr:
		return true
	case *ast.MemberExpr:
		if ee.Arrow {
			return true
		}
		return c.isLvalue(ee.X)
	}
	return false
}
