// Command ilprof is the standalone profiler: it runs a MiniC program over
// one or more inputs and prints the averaged profile — function execution
// counts (call-graph node weights) and call-site invocation counts (arc
// weights). With -o the profile is serialized for a later ilcc -inline
// -profile run, mirroring the IMPACT-I profiler-to-compiler interface.
//
//	ilprof prog.c < input              # one run over stdin
//	ilprof -in a.txt -in b.txt prog.c  # one run per -in file
//	ilprof -sites prog.c < input       # include per-site arc weights
//	ilprof -o prog.prof prog.c < input # write the profile to a file
//	ilprof -cpuprofile cpu.pprof ...   # pprof the profiler itself
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"inlinec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type inputList []string

func (f *inputList) String() string { return strings.Join(*f, ",") }
func (f *inputList) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sites := fs.Bool("sites", false, "print per-call-site arc weights")
	outPath := fs.String("o", "", "write the profile to this file (ilcc -profile consumes it)")
	parallel := fs.Int("parallel", 0, "profiling worker count (0 = all cores, 1 = serial); any value yields an identical profile")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the profiler itself to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	var ins inputList
	fs.Var(&ins, "in", "host file used as one profiling run's stdin (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "ilprof: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "ilprof: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "ilprof: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "ilprof: %v\n", err)
			}
			f.Close()
		}()
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ilprof [flags] prog.c")
		fs.PrintDefaults()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "ilprof: %v\n", err)
		return 1
	}
	prog, err := inlinec.Compile(fs.Arg(0), string(src))
	if err != nil {
		fmt.Fprintf(stderr, "ilprof: %v\n", err)
		return 1
	}
	prog.Parallelism = *parallel

	var inputs []inlinec.Input
	if len(ins) == 0 {
		data, _ := io.ReadAll(stdin)
		inputs = []inlinec.Input{{Stdin: data}}
	} else {
		for _, path := range ins {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "ilprof: %v\n", err)
				return 1
			}
			inputs = append(inputs, inlinec.Input{Stdin: data})
		}
	}

	prof, err := prog.ProfileInputs(inputs...)
	if err != nil {
		fmt.Fprintf(stderr, "ilprof: %v\n", err)
		return 1
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "ilprof: %v\n", err)
			return 1
		}
		if _, err := prof.WriteTo(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "ilprof: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "ilprof: %v\n", err)
			return 1
		}
	}
	fmt.Fprint(stdout, prof.String())

	if *sites {
		g := prog.CallGraph(prof)
		var arcs []int
		for id := range prof.SiteCounts {
			arcs = append(arcs, id)
		}
		sort.Slice(arcs, func(i, j int) bool {
			if prof.SiteCounts[arcs[i]] != prof.SiteCounts[arcs[j]] {
				return prof.SiteCounts[arcs[i]] > prof.SiteCounts[arcs[j]]
			}
			return arcs[i] < arcs[j]
		})
		fmt.Fprintln(stdout, "call sites (arc weights):")
		for _, id := range arcs {
			a := g.Arc(id)
			if a == nil {
				continue
			}
			fmt.Fprintf(stdout, "  site %-4d %-20s -> %-20s %12.1f\n",
				id, a.Caller.Name, a.Callee.Name, prof.SiteWeight(id))
		}
	}
	return 0
}
