package interp

import (
	"fmt"
	"strings"

	"inlinec/internal/ir"
)

// This file defines the load-time bytecode the default engine executes.
// Translation (translate.go) compiles each ir.Func into a dense array of
// fixed-width bcInstr with every name resolved up front: operands become
// register indices (constants get pool registers preloaded at function
// entry, so the dispatch loop never inspects an operand kind), branch
// targets become bytecode PCs, call sites become direct *bcFunc/extern
// pointers, and global/function addresses become immediates. Hot
// adjacent pairs additionally fuse into superinstructions (compare+
// branch, address+load/store); the profiling counters inside the fused
// forms checkpoint at the same semantic points as the unfused pair, so
// RunStats stay bit-identical to the switch engine.

// bcOp is a compact bytecode opcode. The values are contiguous so the
// dispatch switch compiles to a dense jump table.
type bcOp uint8

const (
	// bcEnd is the sentinel appended after the last instruction: reaching
	// it reproduces the switch engine's "fell off the end" fault.
	bcEnd bcOp = iota
	bcNop
	bcConst // regs[dst] = imm (also resolved addrg/addrf/mov-const)
	bcMov   // regs[dst] = regs[a]
	bcNeg
	bcNot
	bcAdd // regs[dst] = regs[a] OP regs[b] for the binary group
	bcSub
	bcMul
	bcDiv
	bcRem
	bcAnd
	bcOr
	bcXor
	bcShl
	bcShr
	bcEq
	bcNe
	bcLt
	bcLe
	bcGt
	bcGe
	bcLoad1  // regs[dst] = mem1[regs[a]]
	bcLoad8  // regs[dst] = mem8[regs[a]]
	bcLoadN  // odd widths: regs[dst] = Memory.Load(regs[a], aux)
	bcStore1 // mem1[regs[a]] = regs[b]
	bcStore8 // mem8[regs[a]] = regs[b]
	bcStoreN
	bcAddrL   // regs[dst] = frame base + imm
	bcJump    // pc = aux
	bcBr      // if regs[a] != 0 { pc = aux }
	bcRet     // return regs[a]
	bcRetVoid // return 0
	bcCall    // invoke calls[aux]
	bcCallPtr // invoke *regs[a] with calls[aux] metadata

	// Superinstructions: fused forms of hot adjacent pairs. Each still
	// performs every architectural write of its components (the compare
	// result, the materialized address), so no liveness analysis is
	// needed for correctness.
	bcEqBr // regs[dst] = cmp(regs[a], regs[b]); if taken { pc = aux }
	bcNeBr
	bcLtBr
	bcLeBr
	bcGtBr
	bcGeBr
	bcLoadL1  // regs[a] = frame base + imm; regs[dst] = stack1[imm]
	bcLoadL8  // regs[a] = frame base + imm; regs[dst] = stack8[imm]
	bcStoreL1 // regs[a] = frame base + imm; stack1[imm] = regs[b]
	bcStoreL8
	bcLoadG1  // regs[a] = imm (absolute); regs[dst] = globals1[aux]
	bcLoadG8  // regs[a] = imm (absolute); regs[dst] = globals8[aux]
	bcStoreG1 // regs[a] = imm (absolute); globals1[aux] = regs[b]
	bcStoreG8

	// Cold placeholders for instructions that can only fault: they keep
	// the fault lazy (a program that never executes the bad instruction
	// never sees the error), exactly like the switch engine.
	bcBadAddrG // unknown global syms[aux]
	bcBadAddrF // unknown function syms[aux]
	bcBadOp    // unhandled opcode syms[aux]
)

var bcOpNames = [...]string{
	bcEnd: "end", bcNop: "nop", bcConst: "const", bcMov: "mov",
	bcNeg: "neg", bcNot: "not",
	bcAdd: "add", bcSub: "sub", bcMul: "mul", bcDiv: "div", bcRem: "rem",
	bcAnd: "and", bcOr: "or", bcXor: "xor", bcShl: "shl", bcShr: "shr",
	bcEq: "eq", bcNe: "ne", bcLt: "lt", bcLe: "le", bcGt: "gt", bcGe: "ge",
	bcLoad1: "load1", bcLoad8: "load8", bcLoadN: "loadN",
	bcStore1: "store1", bcStore8: "store8", bcStoreN: "storeN",
	bcAddrL: "addrl", bcJump: "jump", bcBr: "br",
	bcRet: "ret", bcRetVoid: "ret.void",
	bcCall: "call", bcCallPtr: "callptr",
	bcEqBr: "eq.br", bcNeBr: "ne.br", bcLtBr: "lt.br",
	bcLeBr: "le.br", bcGtBr: "gt.br", bcGeBr: "ge.br",
	bcLoadL1: "loadl1", bcLoadL8: "loadl8",
	bcStoreL1: "storel1", bcStoreL8: "storel8",
	bcLoadG1: "loadg1", bcLoadG8: "loadg8",
	bcStoreG1: "storeg1", bcStoreG8: "storeg8",
	bcBadAddrG: "bad.addrg", bcBadAddrF: "bad.addrf", bcBadOp: "bad.op",
}

func (op bcOp) String() string {
	if int(op) < len(bcOpNames) {
		return bcOpNames[op]
	}
	return fmt.Sprintf("bcOp(%d)", int(op))
}

// noReg is ir.NoReg in the bytecode's int32 register encoding.
const noReg int32 = -1

// bcInstr is one fixed-width pre-decoded instruction (32 bytes).
type bcInstr struct {
	op  bcOp
	dst int32 // destination register
	a   int32 // first source register (or fused address register)
	b   int32 // second source register
	aux int32 // branch target pc / call index / sym index / access width
	imm int64 // constant / resolved address / frame offset
}

// bcCallInfo is the pre-resolved metadata of one static call site.
type bcCallInfo struct {
	user  *bcFunc    // non-nil for calls into user functions
	ext   ExternImpl // non-nil for resolved externs
	extID int32      // dense function id of the extern callee
	site  int32      // static call-site id (CallID)
	dst   int32      // caller register receiving the return value, or noReg
	args  []int32    // argument registers (constants via the pool)
	// constArgs, when non-nil, is the fully evaluated argument vector for
	// call sites whose arguments are all constants; the call passes it
	// directly instead of gathering registers (callees copy or read, never
	// mutate, so sharing one backing array is safe).
	constArgs []int64
	sym       string // callee symbol, for unimplemented-extern faults
	// countSite/countExtEntry bake the coverage plan's counter masks into
	// the call site at translate time: a false flag is an elided counter
	// the reduced profile modes reconstruct at finalize (profmode.go).
	countSite     bool
	countExtEntry bool
}

// ptrTarget is one entry of the dense function-pointer table indexed by
// (address - FuncBase) / FuncStride, replacing the byAddr/extByAddr map
// lookups on the indirect-call path.
type ptrTarget struct {
	user *bcFunc
	ext  ExternImpl
	id   int32 // dense function id (meaningful for extern entries)
}

// bcFunc is one translated function.
type bcFunc struct {
	fn      *ir.Func
	id      int
	numRegs int     // fn.NumRegs + len(consts)
	consts  []int64 // constant pool, preloaded into regs[fn.NumRegs:]
	code    []bcInstr
	// origPC maps a bytecode pc back to the index of its (first) source
	// instruction in fn.Code, for trace callbacks and fault positions. A
	// fused instruction's second component is always at origPC+1.
	origPC []int32
	calls  []bcCallInfo
	syms   []string // interned symbols for cold fault messages
	// countEntry is the coverage plan's entry-counter mask for this
	// function (always true in full profile mode).
	countEntry bool
}

// bcFrame is one bytecode activation record.
type bcFrame struct {
	bf     *bcFunc
	base   int64 // absolute stack address of the frame
	regs   []int64
	pc     int32
	retDst int32
}

// disasm renders the translated function, for tests and debugging.
func (bf *bcFunc) disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d bc instrs, %d regs (%d pooled consts)\n",
		bf.fn.Name, len(bf.code), bf.numRegs, len(bf.consts))
	for pc, in := range bf.code {
		fmt.Fprintf(&sb, "  %3d: %-8s dst=%d a=%d b=%d aux=%d imm=%d\n",
			pc, in.op, in.dst, in.a, in.b, in.aux, in.imm)
	}
	return sb.String()
}
