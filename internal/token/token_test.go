package token

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF:      "EOF",
		Ident:    "identifier",
		Int:      "integer",
		Plus:     "+",
		ShrEq:    ">>=",
		KwWhile:  "while",
		Ellipsis: "...",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if s := Kind(9999).String(); !strings.Contains(s, "9999") {
		t.Errorf("unknown kind string = %q", s)
	}
}

func TestEveryKindHasAName(t *testing.T) {
	for k := EOF; k <= KwUnsigned; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestKeywordsTable(t *testing.T) {
	if Keywords["while"] != KwWhile || Keywords["sizeof"] != KwSizeof {
		t.Error("keyword table wrong")
	}
	if _, ok := Keywords["whileloop"]; ok {
		t.Error("non-keyword present")
	}
	// Every Kw* kind must be reachable from the table.
	reached := make(map[Kind]bool)
	for _, k := range Keywords {
		reached[k] = true
	}
	for k := KwInt; k <= KwUnsigned; k++ {
		if !reached[k] {
			t.Errorf("keyword kind %v missing from Keywords", k)
		}
	}
}

func TestIsAssignOpAndBaseOp(t *testing.T) {
	base := map[Kind]Kind{
		Assign: Illegal, PlusEq: Plus, MinusEq: Minus, StarEq: Star,
		SlashEq: Slash, PercentEq: Percent, AmpEq: Amp, PipeEq: Pipe,
		CaretEq: Caret, ShlEq: Shl, ShrEq: Shr,
	}
	for k, want := range base {
		if !k.IsAssignOp() {
			t.Errorf("%v.IsAssignOp() = false", k)
		}
		if got := k.BaseOp(); got != want {
			t.Errorf("%v.BaseOp() = %v, want %v", k, got, want)
		}
	}
	for _, k := range []Kind{Plus, EqEq, Lt, Ident, KwIf} {
		if k.IsAssignOp() {
			t.Errorf("%v.IsAssignOp() = true", k)
		}
		if k.BaseOp() != Illegal {
			t.Errorf("%v.BaseOp() should be Illegal", k)
		}
	}
}

func TestPos(t *testing.T) {
	p := Pos{File: "x.c", Line: 3, Col: 7}
	if p.String() != "x.c:3:7" {
		t.Errorf("pos = %q", p)
	}
	if (Pos{Line: 2, Col: 1}).String() != "2:1" {
		t.Error("file-less pos format wrong")
	}
	if !p.IsValid() || (Pos{}).IsValid() {
		t.Error("IsValid wrong")
	}
}

func TestTokenString(t *testing.T) {
	id := Token{Kind: Ident, Text: "foo"}
	if got := id.String(); !strings.Contains(got, "foo") {
		t.Errorf("ident token string = %q", got)
	}
	op := Token{Kind: Shl}
	if op.String() != "<<" {
		t.Errorf("op token string = %q", op.String())
	}
}
