package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The on-disk profile format is a line-oriented text file, in the spirit
// of the IMPACT-I "Profiler to C Compiler interface" that let profile
// information flow between tool invocations:
//
//	ILPROF 1
//	runs 20
//	il 123456
//	control 2345
//	calls 678
//	returns 678
//	extern 90
//	ptr 2
//	maxstack 4096
//	truncated 0
//	func <name> <total-count>
//	site <id> <total-count>
//	target <site-id> <func-name> <total-count>
//
// Counts are totals across runs (averages are recomputed on load). The
// decoder is strict: every scalar directive may appear at most once, each
// func/site entry at most once, and any malformed or trailing field is a
// line-numbered error — a corrupt or concatenated profile must never
// silently last-write-win its way into the expander's arc weights.
// `truncated` (runs whose Returns != Calls) is optional on input for
// compatibility with pre-existing files. `sampled <k>` marks a profile
// collected at a 1-in-k sampling rate (counts already rescaled by k); it
// is written only when k > 0, so exact profiles — including reconstructed
// minimal-mode ones — serialize byte-identically to full-mode profiles.

const profileMagic = "ILPROF 1"

// WriteTo serializes the profile.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintln(&sb, profileMagic)
	fmt.Fprintf(&sb, "runs %d\n", p.Runs)
	fmt.Fprintf(&sb, "il %d\n", p.TotalIL)
	fmt.Fprintf(&sb, "control %d\n", p.TotalControl)
	fmt.Fprintf(&sb, "calls %d\n", p.TotalCalls)
	fmt.Fprintf(&sb, "returns %d\n", p.TotalReturns)
	fmt.Fprintf(&sb, "extern %d\n", p.TotalExtern)
	fmt.Fprintf(&sb, "ptr %d\n", p.TotalPtr)
	fmt.Fprintf(&sb, "maxstack %d\n", p.MaxStack)
	fmt.Fprintf(&sb, "truncated %d\n", p.TotalTruncated)
	if p.SampleRate > 0 {
		fmt.Fprintf(&sb, "sampled %d\n", p.SampleRate)
	}

	names := make([]string, 0, len(p.FuncCounts))
	for n := range p.FuncCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "func %s %d\n", n, p.FuncCounts[n])
	}
	ids := make([]int, 0, len(p.SiteCounts))
	for id := range p.SiteCounts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&sb, "site %d %d\n", id, p.SiteCounts[id])
	}
	tids := make([]int, 0, len(p.PtrTargets))
	for id := range p.PtrTargets {
		if len(p.PtrTargets[id]) > 0 {
			tids = append(tids, id)
		}
	}
	sort.Ints(tids)
	for _, id := range tids {
		targets := p.PtrTargets[id]
		names := make([]string, 0, len(targets))
		for t := range targets {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			fmt.Fprintf(&sb, "target %d %s %d\n", id, t, targets[t])
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// ReadProfile parses a serialized profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("profile: empty input")
	}
	if sc.Text() != profileMagic {
		return nil, fmt.Errorf("profile: bad magic %q", sc.Text())
	}
	p := NewProfile()
	lineNo := 1
	seenScalar := make(map[string]int)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func() error {
			return fmt.Errorf("profile: line %d: malformed %q", lineNo, line)
		}
		num := func(s string) (int64, error) {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return 0, bad()
			}
			return v, nil
		}
		switch fields[0] {
		case "runs", "il", "control", "calls", "returns", "extern", "ptr", "maxstack", "truncated", "sampled":
			if len(fields) != 2 {
				return nil, bad()
			}
			if prev, dup := seenScalar[fields[0]]; dup {
				return nil, fmt.Errorf("profile: line %d: duplicate %q directive (first on line %d)",
					lineNo, fields[0], prev)
			}
			seenScalar[fields[0]] = lineNo
			v, err := num(fields[1])
			if err != nil {
				return nil, err
			}
			switch fields[0] {
			case "runs":
				p.Runs = int(v)
			case "il":
				p.TotalIL = v
			case "control":
				p.TotalControl = v
			case "calls":
				p.TotalCalls = v
			case "returns":
				p.TotalReturns = v
			case "extern":
				p.TotalExtern = v
			case "ptr":
				p.TotalPtr = v
			case "maxstack":
				p.MaxStack = v
			case "truncated":
				p.TotalTruncated = v
			case "sampled":
				// The writer only emits positive rates, so anything else
				// would not round-trip to the same bytes.
				if v <= 0 {
					return nil, fmt.Errorf("profile: line %d: non-positive sampled rate %d", lineNo, v)
				}
				p.SampleRate = int(v)
			}
		case "func":
			if len(fields) != 3 {
				return nil, bad()
			}
			v, err := num(fields[2])
			if err != nil {
				return nil, err
			}
			if _, dup := p.FuncCounts[fields[1]]; dup {
				return nil, fmt.Errorf("profile: line %d: duplicate func entry %q", lineNo, fields[1])
			}
			p.FuncCounts[fields[1]] = v
		case "site":
			if len(fields) != 3 {
				return nil, bad()
			}
			id, err := num(fields[1])
			if err != nil {
				return nil, err
			}
			v, err := num(fields[2])
			if err != nil {
				return nil, err
			}
			if _, dup := p.SiteCounts[int(id)]; dup {
				return nil, fmt.Errorf("profile: line %d: duplicate site entry %d", lineNo, int(id))
			}
			p.SiteCounts[int(id)] = v
		case "target":
			if len(fields) != 4 {
				return nil, bad()
			}
			id, err := num(fields[1])
			if err != nil {
				return nil, err
			}
			v, err := num(fields[3])
			if err != nil {
				return nil, err
			}
			if _, dup := p.PtrTargets[int(id)][fields[2]]; dup {
				return nil, fmt.Errorf("profile: line %d: duplicate target entry %d %s", lineNo, int(id), fields[2])
			}
			m := p.PtrTargets[int(id)]
			if m == nil {
				m = make(map[string]int64)
				p.PtrTargets[int(id)] = m
			}
			m[fields[2]] = v
		default:
			return nil, fmt.Errorf("profile: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Runs <= 0 {
		return nil, fmt.Errorf("profile: missing or non-positive runs count")
	}
	return p, nil
}
