package link

import (
	"strings"
	"testing"

	"inlinec/internal/interp"
	"inlinec/internal/ir"
	"inlinec/internal/irgen"
	"inlinec/internal/parser"
	"inlinec/internal/sema"
)

func unit(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	f, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	prog, err := sema.Check(f)
	if err != nil {
		t.Fatalf("check %s: %v", name, err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("lower %s: %v", name, err)
	}
	return mod
}

func runLinked(t *testing.T, mod *ir.Module) string {
	t.Helper()
	m, err := interp.NewMachine(mod, interp.NewEnv(), interp.Options{})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Env.Stdout.String()
}

func TestLinkTwoUnits(t *testing.T) {
	mathUnit := unit(t, "math.c", `
int counter;
int square(int x) { counter++; return x * x; }
int cube(int x) { return square(x) * x; }
`)
	mainUnit := unit(t, "main.c", `
extern int printf(char *fmt, ...);
extern int square(int x);
extern int cube(int x);
extern int counter;
int main() {
    printf("%d %d %d\n", square(4), cube(3), counter);
    return 0;
}
`)
	linked, err := Link("prog", mathUnit, mainUnit)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	// square and cube resolved from the library unit; printf stays extern.
	if linked.Func("square") == nil || linked.Func("cube") == nil {
		t.Fatal("cross-unit functions not merged")
	}
	if linked.IsExtern("square") {
		t.Error("square still in the extern table after resolution")
	}
	if !linked.IsExtern("printf") {
		t.Error("printf lost from the extern table")
	}
	if out := runLinked(t, linked); out != "16 27 2\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLinkStringLiteralDedup(t *testing.T) {
	u1 := unit(t, "one.c", `
extern int puts(char *s);
void hello1() { puts("shared"); puts("only-one"); }
`)
	u2 := unit(t, "two.c", `
extern int puts(char *s);
extern void hello1();
int main() { hello1(); puts("shared"); puts("only-two"); return 0; }
`)
	linked, err := Link("prog", u1, u2)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	lits := 0
	for _, g := range linked.Globals {
		if strings.HasPrefix(g.Name, ".str") {
			lits++
		}
	}
	if lits != 3 {
		t.Errorf("string literals after dedup = %d, want 3 (shared, only-one, only-two)", lits)
	}
	if out := runLinked(t, linked); out != "shared\nonly-one\nshared\nonly-two\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLinkStaticSymbolsStayPrivate(t *testing.T) {
	// Both units define a static helper with the same name; both must
	// survive and each unit must call its own.
	u1 := unit(t, "alpha.c", `
static int tag() { return 100; }
int alpha() { return tag() + 1; }
`)
	u2 := unit(t, "beta.c", `
extern int printf(char *fmt, ...);
extern int alpha();
static int tag() { return 200; }
int main() { printf("%d %d\n", alpha(), tag() + 2); return 0; }
`)
	linked, err := Link("prog", u1, u2)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if linked.Func("alpha$tag") == nil || linked.Func("beta$tag") == nil {
		names := []string{}
		for _, f := range linked.Funcs {
			names = append(names, f.Name)
		}
		t.Fatalf("qualified statics missing; have %v", names)
	}
	if out := runLinked(t, linked); out != "101 202\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLinkDuplicateFunction(t *testing.T) {
	u1 := unit(t, "a.c", "int f(int x) { return x; }")
	u2 := unit(t, "b.c", "int f(int x) { return x + 1; } int main() { return f(0); }")
	_, err := Link("prog", u1, u2)
	if err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Errorf("duplicate function not rejected: %v", err)
	}
}

func TestLinkDuplicateGlobal(t *testing.T) {
	u1 := unit(t, "a.c", "int shared = 1;")
	u2 := unit(t, "b.c", "int shared = 2; int main() { return shared; }")
	_, err := Link("prog", u1, u2)
	if err == nil || !strings.Contains(err.Error(), "duplicate variable") {
		t.Errorf("duplicate global not rejected: %v", err)
	}
}

func TestLinkUndefinedExternVariable(t *testing.T) {
	u := unit(t, "a.c", "extern int ghost; int main() { return ghost; }")
	_, err := Link("prog", u)
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("undefined extern variable not rejected: %v", err)
	}
}

func TestLinkMissingMain(t *testing.T) {
	u := unit(t, "a.c", "int f() { return 1; }")
	_, err := Link("prog", u)
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Errorf("missing main not rejected: %v", err)
	}
}

func TestLinkCallIDsUnique(t *testing.T) {
	u1 := unit(t, "a.c", `
int h(int x) { return x; }
int f() { return h(1) + h(2); }
`)
	u2 := unit(t, "b.c", `
extern int f();
int g() { return f() + f(); }
int main() { return g(); }
`)
	linked, err := Link("prog", u1, u2)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	seen := make(map[int]bool)
	for _, f := range linked.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == ir.OpCall || in.Op == ir.OpCallPtr {
				if in.CallID == 0 || seen[in.CallID] {
					t.Fatalf("call id %d invalid or duplicated after link", in.CallID)
				}
				seen[in.CallID] = true
			}
		}
	}
	if len(seen) != 5 {
		t.Errorf("call sites = %d, want 5", len(seen))
	}
}

func TestLinkInputsUntouched(t *testing.T) {
	u1 := unit(t, "a.c", `extern int puts(char *s); void say() { puts("x"); }`)
	before := u1.String()
	u2 := unit(t, "b.c", `extern void say(); int main() { say(); return 0; }`)
	if _, err := Link("prog", u1, u2); err != nil {
		t.Fatalf("link: %v", err)
	}
	if u1.String() != before {
		t.Error("linking mutated an input unit")
	}
}
