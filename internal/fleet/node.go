package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"inlinec/internal/obs"
	"inlinec/internal/profdb"
)

// ingestReq is one parsed snapshot waiting for the writer, with the
// channel its HTTP handler blocks on until commit.
type ingestReq struct {
	program string
	rec     *profdb.Record
	done    chan error
}

// Node is one storage node of the profile fleet: the HTTP server over a
// single profdb database that used to live inside cmd/ilprofd. All
// mutation flows through the writer goroutine (serve loop over
// ingestCh); readers take the RLock. With a backing store, an ingest is
// acknowledged only after its write-ahead log frame is durable; without
// one (pure in-memory mode) the node serves tests and ad-hoc fleets.
//
// All operational counters live in the obs registry: /stats reads them
// through the same handles /metrics exports, so the two endpoints are
// views of one set of numbers and cannot drift apart.
type Node struct {
	mu         sync.RWMutex
	db         *profdb.DB
	store      *profdb.Store // nil in pure in-memory mode
	flushEvery int

	ingestCh chan ingestReq
	writerWG sync.WaitGroup

	obs  *obs.Registry
	logw io.Writer // request-log destination (nil = no log lines)

	// Recovery, when set (store-backed nodes), is what Open found; it is
	// reported on /healthz so an operator — or the fleet router's
	// membership probe — can see a node that restarted dirty.
	recovery *profdb.Recovery
	started  time.Time

	ingested      *obs.Counter // snapshots committed
	ingestErrors  *obs.Counter // rejected payloads (parse/program mismatch)
	runsIngested  *obs.Counter
	merges        *obs.Counter // /profile responses served
	staleMerged   *obs.Counter // stale records folded into served merges
	flushes       *obs.Counter
	naks          *obs.Counter   // 503 NAKs: retries observed from this side
	repairAdopted *obs.Counter   // records replaced by anti-entropy pushes
	batchSize     *obs.Histogram // records per writer commit
	sinceFlush    int            // writer-goroutine private
}

// NewNode returns an in-memory node over db.
func NewNode(db *profdb.DB, flushEvery int) *Node {
	if flushEvery <= 0 {
		flushEvery = 16
	}
	reg := obs.NewRegistry()
	return &Node{
		db:         db,
		flushEvery: flushEvery,
		ingestCh:   make(chan ingestReq, 64),
		obs:        reg,
		started:    time.Now(),
		ingested: reg.Counter("ilprofd_ingested_snapshots_total",
			"Snapshots committed; each was acked only after commit (WAL-durable with a store)."),
		ingestErrors: reg.Counter("ilprofd_ingest_errors_total",
			"Ingest requests rejected: unparseable payloads, program mismatches, or WAL NAKs."),
		runsIngested: reg.Counter("ilprofd_ingested_runs_total",
			"Profiled runs carried by committed snapshots."),
		merges: reg.Counter("ilprofd_merges_served_total",
			"GET /profile merge responses computed."),
		staleMerged: reg.Counter("ilprofd_stale_records_merged_total",
			"Stale or dropped records encountered while serving merges."),
		flushes: reg.Counter("ilprofd_flushes_total",
			"Snapshot flushes completed by the daemon (periodic and shutdown)."),
		naks: reg.Counter("ilprofd_ingest_naks_total",
			"503 NAKs sent because the WAL was unavailable; clients retry these."),
		repairAdopted: reg.Counter("ilprofd_repair_adopted_total",
			"Records replaced by anti-entropy repair pushes that beat the local copy."),
		batchSize: reg.Histogram("ilprofd_commit_batch_records",
			"Records per single-writer commit batch.", obs.SizeBuckets),
	}
}

// NewStoreNode wraps a crash-safe store: the served database IS the
// store's, every ack is WAL-durable, and the store's durability metrics
// land on the node's registry. recovery (optional) is surfaced on
// /healthz.
func NewStoreNode(store *profdb.Store, flushEvery int, recovery *profdb.Recovery) *Node {
	n := NewNode(store.DB(), flushEvery)
	n.store = store
	n.recovery = recovery
	store.Obs = n.obs
	if recovery != nil {
		recovery.RecordTo(n.obs)
	}
	return n
}

// SetLog directs one JSON request-log line per request to w.
func (s *Node) SetLog(w io.Writer) { s.logw = w }

// Registry exposes the node's metrics registry.
func (s *Node) Registry() *obs.Registry { return s.obs }

// DB exposes the served database. Readers must coordinate with the
// node's writer externally — typically by calling this only before
// Start or after Stop, as the tests do.
func (s *Node) DB() *profdb.DB { return s.db }

// Start launches the single writer goroutine.
func (s *Node) Start() {
	s.writerWG.Add(1)
	go func() {
		defer s.writerWG.Done()
		for {
			req, ok := <-s.ingestCh
			if !ok {
				return
			}
			// Batch: take everything already queued behind this request so
			// one lock acquisition and at most one flush cover the burst.
			batch := []ingestReq{req}
			closed := false
		drain:
			for len(batch) < 64 {
				select {
				case r, more := <-s.ingestCh:
					if !more {
						closed = true
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
			s.commit(batch)
			if closed {
				return
			}
		}
	}()
}

// commit applies one batch under the write lock and flushes if due.
// With a store, the whole batch reaches the write-ahead log with a
// single fsync before any handler is released — the ack barrier.
func (s *Node) commit(batch []ingestReq) {
	s.batchSize.Observe(float64(len(batch)))
	s.mu.Lock()
	var errs []error
	if s.store != nil {
		programs := make([]string, len(batch))
		recs := make([]*profdb.Record, len(batch))
		for i, r := range batch {
			programs[i], recs[i] = r.program, r.rec
		}
		errs = s.store.IngestBatch(programs, recs)
	} else {
		errs = make([]error, len(batch))
		for i, r := range batch {
			errs[i] = s.ingestLocked(r.program, r.rec)
		}
	}
	for i, r := range batch {
		if errs[i] == nil {
			s.ingested.Inc()
			s.runsIngested.Add(int64(r.rec.Runs))
			s.sinceFlush++
		} else {
			s.ingestErrors.Inc()
		}
		r.done <- errs[i]
	}
	flush := s.store != nil && s.sinceFlush >= s.flushEvery
	if flush {
		s.sinceFlush = 0
		if err := s.store.Flush(); err == nil {
			s.flushes.Inc()
		}
	}
	s.mu.Unlock()
}

func (s *Node) ingestLocked(program string, rec *profdb.Record) error {
	if s.db.Program == "" {
		s.db.Program = program
	} else if program != "" && program != s.db.Program {
		return fmt.Errorf("snapshot is for program %q, store holds %q", program, s.db.Program)
	}
	return s.db.Ingest(rec)
}

// Kill stops the writer WITHOUT the final flush — the in-process
// equivalent of SIGKILL for crash tests. The backing store (if any) is
// abandoned as-is: whatever the write-ahead log already made durable
// survives, anything else is left for the test's filesystem crash to
// tear away.
func (s *Node) Kill() {
	close(s.ingestCh)
	s.writerWG.Wait()
}

// Stop closes the ingest path, waits for the writer to drain, and runs
// the final snapshot flush.
func (s *Node) Stop() error {
	close(s.ingestCh)
	s.writerWG.Wait()
	if s.store == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.store.Close(); err != nil {
		return err
	}
	s.flushes.Inc()
	return nil
}

// Handler returns the node's HTTP API wrapped in the request-log
// middleware.
func (s *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/db", s.handleDB)
	mux.HandleFunc("/repair", s.handleRepair)
	return obs.NewRequestLog(s.logw, s.obs,
		"/ingest", "/profile", "/stats", "/metrics", "/healthz", "/db", "/repair").Wrap(mux)
}

func (s *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	program, rec, err := profdb.ReadSnapshot(body)
	if err != nil {
		s.ingestErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	done := make(chan error, 1)
	s.ingestCh <- ingestReq{program: program, rec: rec, done: done}
	if err := <-done; err != nil {
		if errors.Is(err, profdb.ErrWAL) {
			// The payload was fine but could not be made durable. 503 is
			// an explicit NAK — nothing was committed, clients may retry.
			s.naks.Inc()
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok: %d run(s) ingested for %s gen %d\n", rec.Runs, rec.Fingerprint, rec.Gen)
}

// mergeParamsFromQuery parses the shared /profile merge knobs. The
// router uses the identical parser so a routed read and a direct node
// read cannot interpret parameters differently.
func mergeParamsFromQuery(r *http.Request) (profdb.MergeParams, error) {
	params := profdb.DefaultMergeParams()
	if v := r.URL.Query().Get("halflife"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return params, fmt.Errorf("bad halflife parameter")
		}
		params.HalfLifeGens = n
	}
	if v := r.URL.Query().Get("stale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return params, fmt.Errorf("bad stale parameter (want 0..1)")
		}
		params.StaleWeight = f
	}
	return params, nil
}

func (s *Node) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	fp := r.URL.Query().Get("fingerprint")
	if fp == "" {
		http.Error(w, "missing fingerprint parameter", http.StatusBadRequest)
		return
	}
	params, err := mergeParamsFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	merged, stats := s.db.Merge(fp, params)
	program := s.db.Program
	s.mu.RUnlock()
	s.merges.Inc()
	s.staleMerged.Add(int64(stats.StaleRecords + stats.DroppedRecords))
	writeMergedSnapshot(w, fp, program, merged, stats)
}

// writeMergedSnapshot renders a /profile response; shared with the
// router so the two endpoints are byte-compatible.
func writeMergedSnapshot(w http.ResponseWriter, fp, program string, merged *profdb.Record, stats *profdb.MergeStats) {
	if stats.Records == 0 || merged.Runs == 0 {
		http.Error(w, fmt.Sprintf("no profile data for fingerprint %s", fp), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Profdb-Exact-Records", strconv.Itoa(stats.ExactRecords))
	w.Header().Set("X-Profdb-Stale-Records", strconv.Itoa(stats.StaleRecords))
	w.Header().Set("X-Profdb-Dropped-Records", strconv.Itoa(stats.DroppedRecords))
	profdb.WriteSnapshot(w, program, merged)
}

// handleDB dumps the node's full database in ILPROFDB form — the raw
// material of the router's merged reads and of anti-entropy.
func (s *Node) handleDB(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.db.WriteTo(w)
}

// handleRepair accepts an anti-entropy push: an ILPROFDB document whose
// records replace the local copies they beat under the fleet winner
// order (higher Runs, then higher serialized bytes). Losing or equal
// pushes are ignored, so repair is idempotent and monotone; with a
// store the adopted records are made durable by a snapshot flush before
// the push is acknowledged (replacement cannot ride the WAL, whose
// replay semantics are additive).
func (s *Node) handleRepair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	push, err := profdb.ReadDB(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db.Program != "" && push.Program != "" && push.Program != s.db.Program {
		http.Error(w, fmt.Sprintf("repair push is for program %q, store holds %q",
			push.Program, s.db.Program), http.StatusConflict)
		return
	}
	var adopt []*profdb.Record
	for _, key := range push.SortedKeys() {
		rec := push.Records[key]
		local := s.db.Records[key]
		if betterRecord(rec, local) {
			adopt = append(adopt, rec)
		}
	}
	adopted := len(adopt)
	if adopted > 0 {
		if s.store != nil {
			if err := s.store.ReplaceBatch(push.Program, adopt); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		} else {
			if s.db.Program == "" {
				s.db.Program = push.Program
			}
			for _, rec := range adopt {
				s.db.Records[profdb.RecordKey{Fingerprint: rec.Fingerprint, Gen: rec.Gen}] = rec
			}
		}
		s.repairAdopted.Add(int64(adopted))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{
		"pushed":  len(push.Records),
		"adopted": adopted,
	})
}

// handleHealthz is the readiness probe: 200 when the node can durably
// ack ingests (store open with a clean WAL, recovery complete), 503
// otherwise. The router's membership probe and the request log both see
// the same answer.
func (s *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	ready := s.store == nil || s.store.WALClean()
	records, runs := len(s.db.Records), s.db.TotalRuns()
	s.mu.RUnlock()
	doc := struct {
		Ready    bool   `json:"ready"`
		Mode     string `json:"mode"`
		WALClean bool   `json:"wal_clean"`
		Records  int    `json:"records"`
		Runs     int    `json:"runs"`
		Recovery string `json:"recovery,omitempty"`
	}{
		Ready:    ready,
		Mode:     "store",
		WALClean: ready,
		Records:  records,
		Runs:     runs,
	}
	if s.store == nil {
		doc.Mode = "memory"
	}
	if s.recovery != nil {
		doc.Recovery = s.recovery.String()
	}
	readyGauge := 0.0
	if ready {
		readyGauge = 1
	}
	s.obs.Gauge("ilprofd_ready",
		"1 when the node can durably ack ingests (clean WAL, recovery complete).").Set(readyGauge)
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(&doc)
}

// statsJSON is the GET /stats document.
type statsJSON struct {
	Program         string `json:"program"`
	Records         int    `json:"records"`
	TotalRuns       int    `json:"total_runs"`
	MaxGen          int    `json:"max_gen"`
	IngestedSnaps   int64  `json:"ingested_snapshots"`
	IngestedRuns    int64  `json:"ingested_runs"`
	IngestErrors    int64  `json:"ingest_errors"`
	MergesServed    int64  `json:"merges_served"`
	StaleRecsMerged int64  `json:"stale_records_merged"`
	Flushes         int64  `json:"flushes"`
	RepairAdopted   int64  `json:"repair_adopted"`
	UptimeSeconds   int64  `json:"uptime_seconds"`
}

func (s *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	doc := statsJSON{
		Program:   s.db.Program,
		Records:   len(s.db.Records),
		TotalRuns: s.db.TotalRuns(),
		MaxGen:    s.db.MaxGen(),
	}
	s.mu.RUnlock()
	doc.IngestedSnaps = s.ingested.Value()
	doc.IngestedRuns = s.runsIngested.Value()
	doc.IngestErrors = s.ingestErrors.Value()
	doc.MergesServed = s.merges.Value()
	doc.StaleRecsMerged = s.staleMerged.Value()
	doc.Flushes = s.flushes.Value()
	doc.RepairAdopted = s.repairAdopted.Value()
	doc.UptimeSeconds = int64(time.Since(s.started).Seconds())
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&doc)
}

// handleMetrics serves the registry in Prometheus text exposition
// format. Database-shape gauges are refreshed under the read lock at
// scrape time; everything else is already live in the registry.
func (s *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	records, runs, maxGen := len(s.db.Records), s.db.TotalRuns(), s.db.MaxGen()
	s.mu.RUnlock()
	s.obs.Gauge("ilprofd_db_records", "Records in the served database.").Set(float64(records))
	s.obs.Gauge("ilprofd_db_runs", "Total profiled runs in the served database.").Set(float64(runs))
	s.obs.Gauge("ilprofd_db_max_gen", "Highest generation in the served database.").Set(float64(maxGen))
	s.obs.Gauge("ilprofd_uptime_seconds", "Seconds since daemon start.").Set(time.Since(s.started).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w)
}
