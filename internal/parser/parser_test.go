package parser

import (
	"testing"

	"inlinec/internal/ast"
	"inlinec/internal/token"
	"inlinec/internal/types"
)

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return f
}

func firstFunc(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name == name {
			return fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestParseFunctionDecl(t *testing.T) {
	f := parseOK(t, `
int add(int a, int b) { return a + b; }
void nothing() { }
extern int printf(char *fmt, ...);
char *dup(char *s);
`)
	add := firstFunc(t, f, "add")
	if len(add.Params) != 2 || add.Params[0].Name != "a" || add.Params[1].Name != "b" {
		t.Errorf("add params = %+v", add.Params)
	}
	if !types.Identical(add.Type.Result, types.IntType) {
		t.Errorf("add result = %s", add.Type.Result)
	}
	pf := firstFunc(t, f, "printf")
	if !pf.IsExtern || !pf.Type.Variadic {
		t.Errorf("printf extern=%v variadic=%v", pf.IsExtern, pf.Type.Variadic)
	}
	dup := firstFunc(t, f, "dup")
	if !dup.IsExtern {
		t.Error("prototype without body must be extern")
	}
	if p, ok := dup.Type.Result.(*types.Ptr); !ok || p.Elem.Kind() != types.Char {
		t.Errorf("dup result = %s, want char*", dup.Type.Result)
	}
}

func TestParseDeclarators(t *testing.T) {
	f := parseOK(t, `
int x;
int *p;
int **pp;
int arr[10];
int grid[3][4];
char *names[5];
int (*fp)(int, int);
int (*handlers[4])(char *);
char buf[] = "hello";
int init[] = {1, 2, 3};
`)
	want := map[string]string{
		"x":        "int",
		"p":        "int*",
		"pp":       "int**",
		"arr":      "int[10]",
		"grid":     "int[4][3]",
		"names":    "char*[5]",
		"fp":       "int (int, int)*",
		"handlers": "int (char*)*[4]",
		"buf":      "char[6]",
		"init":     "int[3]",
	}
	for _, d := range f.Decls {
		vd, ok := d.(*ast.VarDecl)
		if !ok {
			continue
		}
		if w, exists := want[vd.Name]; exists {
			if vd.Type.String() != w {
				t.Errorf("%s: type %s, want %s", vd.Name, vd.Type, w)
			}
			delete(want, vd.Name)
		}
	}
	for name := range want {
		t.Errorf("declaration %s not parsed", name)
	}
}

func TestParseStructEnumTypedef(t *testing.T) {
	f := parseOK(t, `
struct Node { int val; struct Node *next; char tag; };
enum { A, B, C = 10, D };
typedef struct Node Node;
typedef int (*Handler)(int);
struct Node head;
int pick() { return C + D; }
`)
	if len(f.Structs) != 1 || f.Structs[0].Name != "Node" {
		t.Fatalf("structs = %v", f.Structs)
	}
	st := f.Structs[0]
	if !st.Complete() || len(st.Fields) != 3 {
		t.Fatalf("struct Node incomplete or wrong fields: %+v", st.Fields)
	}
	if next := st.Field("next"); next == nil || next.Type.Kind() != types.Pointer {
		t.Errorf("next field should be a pointer")
	}
	// Enum constants fold at parse time: C + D == 10 + 11.
	pick := firstFunc(t, f, "pick")
	ret := pick.Body.List[0].(*ast.ReturnStmt)
	bin := ret.X.(*ast.BinaryExpr)
	if bin.X.(*ast.IntLit).Value != 10 || bin.Y.(*ast.IntLit).Value != 11 {
		t.Errorf("enum constants = %d, %d; want 10, 11",
			bin.X.(*ast.IntLit).Value, bin.Y.(*ast.IntLit).Value)
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 parses as 1 + (2 * 3).
	f := parseOK(t, "int v() { return 1 + 2 * 3; }")
	ret := firstFunc(t, f, "v").Body.List[0].(*ast.ReturnStmt)
	top := ret.X.(*ast.BinaryExpr)
	if top.Op != token.Plus {
		t.Fatalf("top op = %v, want +", top.Op)
	}
	rhs, ok := top.Y.(*ast.BinaryExpr)
	if !ok || rhs.Op != token.Star {
		t.Fatalf("rhs = %T, want 2*3", top.Y)
	}

	// a = b = c is right-associative.
	f = parseOK(t, "int w(int a, int b, int c) { a = b = c; return a; }")
	expr := firstFunc(t, f, "w").Body.List[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if _, ok := expr.Y.(*ast.AssignExpr); !ok {
		t.Errorf("a = b = c: right side is %T, want nested assignment", expr.Y)
	}

	// shift binds tighter than comparison, looser than addition.
	f = parseOK(t, "int u(int a) { return a + 1 << 2 < 3; }")
	cmp := firstFunc(t, f, "u").Body.List[0].(*ast.ReturnStmt).X.(*ast.BinaryExpr)
	if cmp.Op != token.Lt {
		t.Fatalf("top = %v, want <", cmp.Op)
	}
	sh, ok := cmp.X.(*ast.BinaryExpr)
	if !ok || sh.Op != token.Shl {
		t.Fatalf("lhs of < is %v, want <<", cmp.X)
	}
}

func TestParseStatements(t *testing.T) {
	f := parseOK(t, `
int f(int n) {
    int i, total;
    total = 0;
    for (i = 0; i < n; i++) total += i;
    while (total > 100) total /= 2;
    do { total++; } while (total < 10);
    if (total == 7) return 1; else total--;
    switch (total) {
    case 1: return 10;
    case 2: case 3: return 20;
    default: break;
    }
again:
    if (total > 0) { total--; goto again; }
    return total;
}
`)
	fd := firstFunc(t, f, "f")
	kinds := make(map[string]bool)
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch ss := s.(type) {
		case *ast.BlockStmt:
			kinds["block"] = true
			for _, st := range ss.List {
				walk(st)
			}
		case *ast.ForStmt:
			kinds["for"] = true
			walk(ss.Body)
		case *ast.WhileStmt:
			kinds["while"] = true
			walk(ss.Body)
		case *ast.DoWhileStmt:
			kinds["do"] = true
			walk(ss.Body)
		case *ast.IfStmt:
			kinds["if"] = true
			walk(ss.Then)
			if ss.Else != nil {
				walk(ss.Else)
			}
		case *ast.SwitchStmt:
			kinds["switch"] = true
			for _, cc := range ss.Cases {
				for _, st := range cc.Body {
					walk(st)
				}
			}
		case *ast.GotoStmt:
			kinds["goto"] = true
		case *ast.LabeledStmt:
			kinds["label"] = true
			walk(ss.Stmt)
		}
	}
	walk(fd.Body)
	for _, k := range []string{"for", "while", "do", "if", "switch", "goto", "label"} {
		if !kinds[k] {
			t.Errorf("statement kind %q not parsed", k)
		}
	}
}

func TestParseSwitchCaseGroups(t *testing.T) {
	f := parseOK(t, `
int g(int x) {
    switch (x) {
    case 1: case 2: case 3: return 1;
    default: return 0;
    }
}
`)
	sw := firstFunc(t, f, "g").Body.List[0].(*ast.SwitchStmt)
	if len(sw.Cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 3 {
		t.Errorf("first clause has %d values, want 3", len(sw.Cases[0].Values))
	}
	if sw.Cases[1].Values != nil {
		t.Errorf("second clause should be default")
	}
}

func TestParseAdjacentStringConcat(t *testing.T) {
	f := parseOK(t, `char *s = "ab" "cd" "ef";`)
	vd := f.Decls[0].(*ast.VarDecl)
	lit, ok := vd.Init.(*ast.StrLit)
	if !ok || lit.Value != "abcdef" {
		t.Errorf("concatenated literal = %#v", vd.Init)
	}
}

func TestParseSizeofAndCast(t *testing.T) {
	f := parseOK(t, `
struct S { int a; int b; };
int h(int x) { return sizeof(struct S) + sizeof x + (char)(x + 1); }
`)
	ret := firstFunc(t, f, "h").Body.List[0].(*ast.ReturnStmt)
	// Just require the tree to contain a SizeofExpr with ArgType and one
	// with Arg, and a CastExpr.
	var sawType, sawExpr, sawCast bool
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch ee := e.(type) {
		case *ast.BinaryExpr:
			walk(ee.X)
			walk(ee.Y)
		case *ast.SizeofExpr:
			if ee.ArgType != nil {
				sawType = true
			}
			if ee.Arg != nil {
				sawExpr = true
			}
		case *ast.CastExpr:
			sawCast = true
			walk(ee.X)
		}
	}
	walk(ret.X)
	if !sawType || !sawExpr || !sawCast {
		t.Errorf("sizeof(type)=%v sizeof expr=%v cast=%v", sawType, sawExpr, sawCast)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int f() { return }",
		"int f() { x = ; }",
		"struct { int x; } v;",      // MiniC requires struct tags
		"int f() { case 1: ; }",     // case outside switch
		"int a[-1];",                // negative array length
		"int f() { if x) return; }", // missing paren
		"int 5x;",                   // bad name
	}
	for _, src := range cases {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// Multiple errors should be reported, not just the first.
	_, err := Parse("t.c", `
int f() { x = ; }
int g() { y = ; }
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(el) < 2 {
		t.Errorf("got %d errors, want at least 2 (recovery failed)", len(el))
	}
}
