package inlinec_test

// End-to-end acceptance for the persistent profile database: espresso
// profiling runs flow into a profdb (offline and over ilprofd's HTTP
// protocol), the compiler consumes the merged database, and the inline
// decision list and rewritten module come out byte-identical to
// in-process profiling. A second scenario edits the source so every raw
// call-site id shifts, and checks the staleness machinery reports — and
// never misapplies — the old records.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"inlinec"
	"inlinec/internal/bench"
	"inlinec/internal/profdb"
)

// decisionList renders an inline result as a deterministic byte string:
// the expansion order plus every decision line.
func decisionList(res *inlinec.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "order %s\n", strings.Join(res.Order, " "))
	for _, d := range res.Decisions {
		fmt.Fprintf(&sb, "%v\n", d)
	}
	return sb.String()
}

func TestE2EDatabaseMatchesInProcessProfiling(t *testing.T) {
	b := bench.Get("espresso")
	if b == nil {
		t.Fatal("espresso benchmark missing")
	}
	inputs := b.Inputs[:4]

	// Reference pipeline: profile in-process, inline directly.
	ref, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ref.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot before inlining — Inline rewrites the module in place, and
	// the snapshot must be keyed against the module the profile measured.
	db := inlinec.NewProfDB("espresso.c")
	rec, err := ref.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	refFP := ref.Fingerprint()

	refRes, err := ref.Inline(prof, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	dbProg, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if dbProg.Fingerprint() != refFP {
		t.Fatal("recompiling the same source changed the module fingerprint")
	}
	dbProf, report := dbProg.ProfileFromDB(db, inlinec.DefaultProfDBMergeParams())
	if !report.Clean() {
		t.Fatalf("same-version consumption must be clean:\n%s", report)
	}

	// The resolved profile must be byte-identical to the in-process one...
	var want, got strings.Builder
	if _, err := prof.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := dbProf.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("database round trip changed the profile:\n--- in-process ---\n%s--- via db ---\n%s",
			want.String(), got.String())
	}

	// ...and so must the decision list and the rewritten module.
	dbRes, err := dbProg.Inline(dbProf, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if decisionList(refRes) != decisionList(dbRes) {
		t.Errorf("decision lists differ:\n--- in-process ---\n%s--- via db ---\n%s",
			decisionList(refRes), decisionList(dbRes))
	}
	if ref.Module.String() != dbProg.Module.String() {
		t.Error("inlined modules differ between in-process and database profiles")
	}
}

// TestE2EMinimalModeDatabaseMatchesFull closes the loop on reduced-mode
// profiling: profiles collected in minimal mode flow through snapshot,
// database ingest, and merged resolution, and the database-driven
// compile is byte-identical — profile, decision list, and rewritten
// module — to in-process full-mode profiling. Reconstruction exactness
// composes with the whole fleet pipeline, not just with Profile.Add.
func TestE2EMinimalModeDatabaseMatchesFull(t *testing.T) {
	b := bench.Get("espresso")
	if b == nil {
		t.Fatal("espresso benchmark missing")
	}
	inputs := b.Inputs[:4]

	// Reference: in-process, full instrumentation.
	ref, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	refProf, err := ref.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Inline(refProf, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Collector: minimal instrumentation, published through the database.
	coll, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	coll.ProfileMode = "minimal"
	collProf, err := coll.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	if collProf.ProfileEvents >= refProf.ProfileEvents {
		t.Errorf("minimal mode performed %d profiling events, full %d — no reduction",
			collProf.ProfileEvents, refProf.ProfileEvents)
	}
	db := inlinec.NewProfDB("espresso.c")
	rec, err := coll.Snapshot(collProf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SampleRate != 0 {
		t.Errorf("minimal-mode snapshot carries sample rate %d, want 0 (exact)", rec.SampleRate)
	}
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}

	// Consumer: fresh compile, database profile, inline.
	cons, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	consProf, report := cons.ProfileFromDB(db, inlinec.DefaultProfDBMergeParams())
	if !report.Clean() {
		t.Fatalf("same-version consumption must be clean:\n%s", report)
	}
	var want, got strings.Builder
	if _, err := refProf.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := consProf.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("minimal-mode database profile differs from full in-process profile:\n--- full ---\n%s--- minimal via db ---\n%s",
			want.String(), got.String())
	}
	consRes, err := cons.Inline(consProf, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if decisionList(refRes) != decisionList(consRes) {
		t.Errorf("decision lists differ:\n--- full ---\n%s--- minimal via db ---\n%s",
			decisionList(refRes), decisionList(consRes))
	}
	if ref.Module.String() != cons.Module.String() {
		t.Error("inlined modules differ between full in-process and minimal database profiles")
	}
}

func TestE2EStaleDatabaseAfterSourceEdit(t *testing.T) {
	b := bench.Get("espresso")
	if b == nil {
		t.Fatal("espresso benchmark missing")
	}
	inputs := b.Inputs[:2]

	v1, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := v1.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	db := inlinec.NewProfDB("espresso.c")
	rec, err := v1.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}

	// Prepend a function: every raw call-site id in the module shifts, the
	// exact failure mode that silently corrupts id-keyed profiles.
	edited := "int profdb_e2e_pad(int x) { return x + 1; }\n" + b.Source
	v2, err := inlinec.Compile("espresso.c", edited)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Fingerprint() == v1.Fingerprint() {
		t.Fatal("source edit did not change the module fingerprint")
	}

	params := inlinec.DefaultProfDBMergeParams()
	params.StaleWeight = 1 // keep full weight so surviving arcs are comparable
	v2prof, report := v2.ProfileFromDB(db, params)
	if report.Clean() {
		t.Fatal("consuming v1 records on v2 must be reported as stale")
	}
	if report.Merge.StaleRecords != 1 || report.Merge.ExactRecords != 0 {
		t.Fatalf("merge stats: %+v", report.Merge)
	}
	if report.Resolve.ExactSites != 0 {
		t.Errorf("no site kept its position, yet %d reported exact", report.Resolve.ExactSites)
	}
	if report.Resolve.MovedSites == 0 {
		t.Error("name-stable sites must survive the id shift as moved")
	}

	// No weight may leak onto the inserted function's sites, and every
	// surviving arc must connect the same (caller, callee) names as in v1.
	g := v2.CallGraph(v2prof)
	keysV2 := profdb.ModuleKeys(v2.Module)
	for id := range v2prof.SiteCounts {
		k, ok := keysV2.Key(id)
		if !ok {
			t.Fatalf("profile references unknown site id %d", id)
		}
		if k.Caller == "profdb_e2e_pad" || k.Callee == "profdb_e2e_pad" {
			t.Errorf("weight misattributed to the inserted function: site %v", k)
		}
		if a := g.Arc(id); a != nil && a.Caller.Name != k.Caller {
			t.Errorf("arc %d caller %s does not match stable key %v", id, a.Caller.Name, k)
		}
	}

	// The surviving weights still drive inlining on the edited program.
	res, err := v2.Inline(v2prof, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expanded) == 0 {
		t.Error("no expansions from the migrated profile")
	}
}

// TestE2EHybridAppendEditKeepsExactDecisions covers the hybrid profile
// mode's core contract: after a source edit that leaves every recorded
// call site in place (appending a function), fingerprint resolution
// reports the surviving sites exact, the hybrid profile keeps their
// measured weights bit-for-bit, and the inline decisions at those sites
// are identical — arc by arc — to measured mode. The compile stays
// deterministic and byte-identical at Parallelism 1, 2, and 8 on both
// engines.
func TestE2EHybridAppendEditKeepsExactDecisions(t *testing.T) {
	b := bench.Get("espresso")
	if b == nil {
		t.Fatal("espresso benchmark missing")
	}
	inputs := b.Inputs[:4]

	// v1: measured profile into the database.
	v1, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := v1.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	db := inlinec.NewProfDB("espresso.c")
	rec, err := v1.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}

	// v2: appended function — fingerprint changes, site ids do not.
	edited := b.Source + "\nint hybrid_e2e_pad(int x) { return x * 2 + 1; }\n"
	compileV2 := func() *inlinec.Program {
		t.Helper()
		p, err := inlinec.Compile("espresso.c", edited)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	v2 := compileV2()
	if v2.Fingerprint() == v1.Fingerprint() {
		t.Fatal("source edit did not change the module fingerprint")
	}

	// Measured-mode reference on v2 (the appended function is dead code,
	// so its measured behavior matches v1's weights on the shared sites).
	ref := compileV2()
	refProf, err := ref.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Inline(refProf, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// The edit changes the fingerprint, so the record merges as stale;
	// keep full weight so the raw counts stay comparable (the per-run
	// averages — and hence the decisions — are scale-invariant anyway).
	mergeParams := inlinec.DefaultProfDBMergeParams()
	mergeParams.StaleWeight = 1
	hybridProf, report := v2.HybridProfileFromDB(db, mergeParams)
	if report.Resolve.MovedSites != 0 {
		t.Fatalf("append-only edit moved %d sites", report.Resolve.MovedSites)
	}
	if report.Resolve.ExactSites == 0 {
		t.Fatal("no site resolved exact after an append-only edit")
	}
	for id, exact := range report.Resolve.ExactIDs {
		if !exact {
			t.Errorf("site %d resolved non-exact after an append-only edit", id)
		}
	}

	// Exact sites keep the raw measured counts — same Runs, same totals,
	// hence bit-identical averaged weights.
	if hybridProf.Runs != prof.Runs {
		t.Fatalf("hybrid Runs = %d, want the measured %d", hybridProf.Runs, prof.Runs)
	}
	for id, n := range prof.SiteCounts {
		if hybridProf.SiteCounts[id] != n {
			t.Errorf("exact site %d: hybrid count %d, want the measured %d",
				id, hybridProf.SiteCounts[id], n)
		}
	}

	// Same expansion parameters: every exact site must decide exactly as
	// measured mode did — same outcome, same devirtualization target.
	// (Sites the database never saw — cold sites with zero measured
	// weight — take predicted weights by design, so only their decision
	// class is compared: the predictor may move a rejection between the
	// classifier and the cost function, but it must not flip accept and
	// reject on this corpus.)
	hybRes, err := v2.Inline(hybridProf, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	refBy, hybBy := refRes.TraceBySite(), hybRes.TraceBySite()
	exactCompared := 0
	for id, want := range refBy {
		got, ok := hybBy[id]
		if !ok {
			t.Errorf("site %d decided in measured mode but absent in hybrid", id)
			continue
		}
		if report.Resolve.ExactIDs[id] {
			exactCompared++
			if got.Outcome != want.Outcome || got.Target != want.Target {
				t.Errorf("exact site %d (%s <- %s): hybrid %s(%s), measured %s(%s)",
					id, want.Caller, want.Callee, got.Outcome, got.Target, want.Outcome, want.Target)
			}
		} else if got.Outcome.DecisionClass() != want.Outcome.DecisionClass() {
			t.Errorf("unmeasured site %d (%s <- %s): hybrid class %s, measured class %s",
				id, want.Caller, want.Callee, got.Outcome.DecisionClass(), want.Outcome.DecisionClass())
		}
	}
	if exactCompared == 0 {
		t.Error("no exact site reached the decision comparison")
	}
	for id := range hybBy {
		if _, ok := refBy[id]; !ok {
			t.Errorf("site %d decided in hybrid mode but absent in measured", id)
		}
	}

	// Determinism: parallelism and engine must not perturb the compile.
	refModule := v2.Module.String()
	for _, engine := range []string{"bytecode", "switch"} {
		for _, par := range []int{1, 2, 8} {
			p := compileV2()
			p.Parallelism = par
			p.Engine = engine
			hp, _ := p.HybridProfileFromDB(db, mergeParams)
			if _, err := p.Inline(hp, inlinec.DefaultParams()); err != nil {
				t.Fatal(err)
			}
			if p.Module.String() != refModule {
				t.Errorf("hybrid compile differs at Parallelism %d on %s engine", par, engine)
			}
		}
	}
}

// TestE2EHybridPrependEditPredictsMovedSites is the other half of the
// hybrid contract: an edit that shifts every raw call-site id (prepending
// a function) makes fingerprint resolution report every surviving site
// moved — and hybrid mode then trusts the predictor, not the displaced
// measurements, for every site weight. Function entry counts, which key
// on names rather than positions, stay measured.
func TestE2EHybridPrependEditPredictsMovedSites(t *testing.T) {
	b := bench.Get("espresso")
	if b == nil {
		t.Fatal("espresso benchmark missing")
	}
	inputs := b.Inputs[:2]

	v1, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := v1.ProfileInputs(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	db := inlinec.NewProfDB("espresso.c")
	rec, err := v1.Snapshot(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}

	edited := "int hybrid_e2e_pad(int x) { return x + 1; }\n" + b.Source
	v2, err := inlinec.Compile("espresso.c", edited)
	if err != nil {
		t.Fatal(err)
	}

	params := inlinec.DefaultProfDBMergeParams()
	params.StaleWeight = 1
	hybridProf, report := v2.HybridProfileFromDB(db, params)
	if report.Resolve.ExactSites != 0 {
		t.Fatalf("every id shifted, yet %d sites reported exact", report.Resolve.ExactSites)
	}
	if report.Resolve.MovedSites == 0 {
		t.Fatal("name-stable sites must survive the id shift as moved")
	}

	// Every site weight must come from the prediction (scaled to the
	// measured run count), not from the displaced measurements.
	pred := v2.PredictProfile()
	for id, n := range hybridProf.SiteCounts {
		want := int64(math.Round(pred.SiteWeight(id) * float64(hybridProf.Runs)))
		if n != want {
			t.Errorf("moved site %d: hybrid count %d, want the predicted %d", id, n, want)
		}
	}
	// ...while name-keyed function entries stay measured.
	for name, n := range prof.FuncCounts {
		if got := hybridProf.FuncCounts[name]; got != n {
			t.Errorf("func %s: hybrid count %d, want the measured %d", name, got, n)
		}
	}

	res, err := v2.Inline(hybridProf, inlinec.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expanded) == 0 {
		t.Error("no expansions from the hybrid profile after an id-shifting edit")
	}
}
