package predict

import (
	"fmt"
	"math"

	"inlinec/internal/ir"
	"inlinec/internal/profile"
)

// Calibration fits the feature coefficients against measured profiles:
// for every executed call site, the observed local frequency is
// SiteWeight / FuncWeight(caller), and the model is a log-linear map from
// features to that frequency — so the fit is an ordinary ridge-regularized
// least squares on log frequencies, solved exactly by Gaussian
// elimination on the normal equations. No iteration, no randomness: the
// same corpus always yields the same coefficients, and serialization
// rounds them (to 1e-6) so the checked-in model is stable across
// platforms too.

// Sample is one calibration observation: a site's static feature vector
// and the log of its measured local frequency.
type Sample struct {
	Vec     [NumFeatures]float64
	LogFreq float64
}

// coldFreq floors an observed local frequency: sites a caller executed
// but the site itself (almost) never ran still teach the model, without
// log(0) blowing the fit up.
const coldFreq = 1.0 / 64

// SiteSamples extracts calibration samples from one module and its
// measured profile, in deterministic StableSites order. Sites whose
// caller never executed carry no frequency information and are skipped.
func SiteSamples(mod *ir.Module, prof *profile.Profile) []Sample {
	var out []Sample
	for _, sf := range Featurize(mod) {
		callerW := prof.FuncWeight(sf.Site.Caller)
		if callerW <= 0 {
			continue
		}
		freq := prof.SiteWeight(sf.Site.ID) / callerW
		if freq < coldFreq {
			freq = coldFreq
		}
		out = append(out, Sample{Vec: sf.Vec, LogFreq: math.Log(freq)})
	}
	return out
}

// ridgeLambda regularizes the normal equations: features that barely vary
// across the corpus (or are collinear) get pulled toward zero instead of
// producing a singular system or wild coefficients. The bias term is
// exempt so regularization never shifts the overall frequency level.
const ridgeLambda = 1e-3

// Calibrate fits the feature coefficients to the samples and returns a
// model carrying base's structural parameters (recursion, domshare,
// maxfreq, scale) with the fitted, 1e-6-rounded coefficients. It fails
// on an empty corpus or a singular system.
func Calibrate(samples []Sample, base *Model) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: calibrate: no samples")
	}
	// Normal equations: (XᵀX + λI) c = Xᵀy.
	var a [NumFeatures][NumFeatures]float64
	var b [NumFeatures]float64
	for _, s := range samples {
		for i := 0; i < NumFeatures; i++ {
			for j := 0; j < NumFeatures; j++ {
				a[i][j] += s.Vec[i] * s.Vec[j]
			}
			b[i] += s.Vec[i] * s.LogFreq
		}
	}
	for i := 1; i < NumFeatures; i++ {
		a[i][i] += ridgeLambda * float64(len(samples))
	}
	coef, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	m := *base
	for i, c := range coef {
		m.Coef[i] = math.Round(c*1e6) / 1e6
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// (small, dense) normal-equation system.
func solve(a [NumFeatures][NumFeatures]float64, b [NumFeatures]float64) ([NumFeatures]float64, error) {
	const n = NumFeatures
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in the column, lowest row on ties.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return b, fmt.Errorf("predict: calibrate: singular system at feature %s", FeatureNames[col])
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [NumFeatures]float64
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// SamplesFromModules harvests calibration samples from several
// (module, profile) pairs — the corpus interface the regeneration test
// in internal/bench uses.
func SamplesFromModules(mods []*ir.Module, profs []*profile.Profile) []Sample {
	var out []Sample
	for i := range mods {
		out = append(out, SiteSamples(mods[i], profs[i])...)
	}
	return out
}
