package profdb

// Client behavior added for the fleet tier: seedable retry jitter, the
// 502 no-retry rule, the NotCommitted classifier, and the /db and
// /repair endpoints.

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientSeedBackoffDeterministic: two clients with the same seed
// must compute identical retry schedules — the property the chaos
// suites replay against.
func TestClientSeedBackoffDeterministic(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		c := NewClient("http://unused")
		c.Backoff = 10 * time.Millisecond
		c.MaxBackoff = 500 * time.Millisecond
		c.SeedBackoff(seed)
		var ds []time.Duration
		for n := 0; n < 8; n++ {
			ds = append(ds, c.delay(n))
		}
		return ds
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: %v vs %v — same seed, different schedule", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter — seeding inert")
	}
}

// TestClientPostNoRetry502: the router answers 502 when a write may
// have partially committed; retrying could double-count, so the client
// must surface it after ONE attempt.
func TestClientPostNoRetry502(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "fleet: 1/2 replicas committed (do NOT retry)", http.StatusBadGateway)
	}))
	defer srv.Close()
	c := testClient(srv.URL)
	rec := NewRecord("cafe", 0)
	rec.Runs = 1
	_, err := c.PostSnapshot("p.c", rec)
	if err == nil {
		t.Fatal("502 reported as success")
	}
	if attempts != 1 {
		t.Fatalf("client sent %d attempts after 502, want exactly 1", attempts)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusBadGateway {
		t.Errorf("unexpected error shape: %v", err)
	}
	if NotCommitted(err) {
		t.Error("502 classified NotCommitted — a retry loop would double-count")
	}
}

// TestClientPostStillRetries503: 503 remains the explicit
// nothing-committed NAK and is retried as before.
func TestClientPostStillRetries503(t *testing.T) {
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "fleet: no replica committed (safe to retry)", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := testClient(srv.URL)
	rec := NewRecord("cafe", 0)
	rec.Runs = 1
	if _, err := c.PostSnapshot("p.c", rec); err != nil {
		t.Fatalf("503s within the attempt budget should be ridden out: %v", err)
	}
}

// TestNotCommittedClassifier pins the classifier table.
func TestNotCommittedClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&net.OpError{Op: "dial", Net: "tcp"}, true},
		{&net.OpError{Op: "read", Net: "tcp"}, false},
		{&HTTPError{StatusCode: http.StatusServiceUnavailable}, true},
		{&HTTPError{StatusCode: http.StatusBadGateway}, false},
		{&HTTPError{StatusCode: http.StatusInternalServerError}, false},
		{&HTTPError{StatusCode: http.StatusConflict}, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := NotCommitted(tc.err); got != tc.want {
			t.Errorf("NotCommitted(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestClientFetchDBRoundTrip: /db fetches parse back into a database.
func TestClientFetchDBRoundTrip(t *testing.T) {
	db := NewDB("d.c")
	rec := NewRecord("beef", 1)
	rec.Runs = 4
	rec.IL = 44
	if err := db.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/db" {
			http.NotFound(w, r)
			return
		}
		db.WriteTo(w)
	}))
	defer srv.Close()
	got, err := testClient(srv.URL).FetchDB()
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "d.c" || len(got.Records) != 1 {
		t.Fatalf("fetched db: program=%q records=%d", got.Program, len(got.Records))
	}
	if r := got.Records[RecordKey{Fingerprint: "beef", Gen: 1}]; r == nil || r.Runs != 4 {
		t.Fatalf("fetched record wrong: %+v", r)
	}
}
