package inline

import "inlinec/internal/obs"

// Heuristic selects how expansion sites are chosen. The paper's
// contribution is the profile-guided policy; the two static policies are
// the contemporaries it discusses in section 1.2 — the IBM PL.8 compiler
// inline-expands all leaf-level procedures, and the MIPS C compiler
// examines code structure (callee size) to choose sites. Section 4.2's
// open question — "whether inline expansion decisions based on program
// structure analysis without profile information are sufficient" — is
// answered empirically by the ablation benchmarks that sweep this knob.
type Heuristic int

// Expansion-site selection policies.
const (
	// HeuristicProfile is the paper's policy: arcs chosen by profiled
	// invocation counts with the weight threshold.
	HeuristicProfile Heuristic = iota
	// HeuristicLeaf inlines every call whose callee is a leaf function
	// (no user calls inside), regardless of execution frequency — the
	// PL.8 policy. The weight threshold is ignored; the size and stack
	// hazards still apply.
	HeuristicLeaf
	// HeuristicSmall inlines every call whose callee's current body is at
	// most SmallCalleeLimit IL instructions — a MIPS-style structural
	// policy. The weight threshold is ignored; hazards still apply.
	HeuristicSmall
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeuristicLeaf:
		return "leaf"
	case HeuristicSmall:
		return "small-callee"
	}
	return "profile"
}

// DefaultSmallCalleeLimit is the body-size bound for HeuristicSmall.
const DefaultSmallCalleeLimit = 25

// isLeaf reports whether the function makes no user-function calls (calls
// to externals do not disqualify a leaf: PL.8's notion concerns the call
// graph over compiled procedures).
func (il *Inliner) isLeaf(name string) bool {
	n := il.graph.Nodes[name]
	if n == nil {
		return false
	}
	for _, a := range n.Out {
		if a.Synthetic {
			continue
		}
		if !a.Callee.IsSpecial() {
			return false
		}
	}
	return true
}

// accepts reports whether the active heuristic wants this arc, before the
// common hazard checks run. Rejections carry the machine-readable
// reason code alongside the human-readable text.
func (il *Inliner) accepts(callee string, weight float64) (bool, obs.Reason, string) {
	switch il.params.Heuristic {
	case HeuristicLeaf:
		if !il.isLeaf(callee) {
			return false, obs.ReasonNotLeaf, "callee is not a leaf function"
		}
		return true, obs.ReasonNone, ""
	case HeuristicSmall:
		limit := il.params.SmallCalleeLimit
		if limit <= 0 {
			limit = DefaultSmallCalleeLimit
		}
		if il.estSize[callee] > limit {
			return false, obs.ReasonCalleeStructure, "callee larger than the structural size bound"
		}
		return true, obs.ReasonNone, ""
	default:
		if weight < il.params.WeightThreshold {
			return false, obs.ReasonWeightThreshold, "weight below threshold"
		}
		return true, obs.ReasonNone, ""
	}
}
