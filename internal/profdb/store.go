package profdb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"inlinec/internal/chaos"
	"inlinec/internal/obs"
)

// ErrWAL marks ingest failures caused by the log or the filesystem
// beneath it, as opposed to a rejected payload: the record was valid
// but could not be made durable, so the caller should answer "try
// again later", not "bad request".
var ErrWAL = errors.New("profdb store: write-ahead log unavailable")

// Store is the crash-safe persistence layer behind ilprofd: an
// in-memory DB, an append-only checksummed write-ahead log, and an
// atomically-replaced snapshot with a one-generation backup. The
// durability contract:
//
//   - Ingest returns nil only after the record's WAL frame is fsynced —
//     that is the daemon's ack barrier;
//   - Flush installs a fsynced snapshot (epoch E+1), mirrors the same
//     bytes to <path>.bak once the primary is durable, and only then
//     rotates the WAL (the old log survives one epoch as
//     <path>.wal.prev);
//   - Open replays whatever a crash left: a torn snapshot falls back to
//     the backup, WALs replay when their epoch is >= the loaded
//     snapshot's (frames older than the snapshot are skipped, so nothing
//     double-counts), torn log tails are detected by checksum and
//     discarded with a report.
//
// At every crash instant at most one file is mid-replacement, and each
// file's replacement leaves either the old or the new content durable
// alongside a log/backup pair that covers it — so kill -9 anywhere
// loses no acked record and the store always loads.
//
// Store is single-writer: Ingest/IngestBatch/Flush/Close must be called
// from one goroutine (ilprofd's writer); concurrent readers of DB()
// must be coordinated externally, as the daemon does with its RWMutex.
type Store struct {
	fs   chaos.FS
	path string
	db   *DB

	wal      chaos.File
	walDirty bool // the open log may end in garbage; rotate before next ack

	// Obs, when set, receives durability metrics (WAL fsync latency,
	// batch sizes, flush timings). The single-writer rule covers it: set
	// it right after Open, before the first ingest. A nil registry is a
	// no-op, so instrumented paths never branch.
	Obs *obs.Registry
}

func (s *Store) walPath() string  { return s.path + ".wal" }
func (s *Store) prevPath() string { return s.path + ".wal.prev" }
func (s *Store) bakPath() string  { return s.path + ".bak" }

// Recovery reports what Open found and salvaged.
type Recovery struct {
	// SnapshotCorrupt: the primary snapshot existed but did not parse
	// (torn rename); the backup was consulted.
	SnapshotCorrupt bool
	// UsedBackup: state was restored from the .bak snapshot.
	UsedBackup bool
	// BackupCorrupt: the backup also failed to parse.
	BackupCorrupt bool
	// ReplayedRecords counts WAL frames re-ingested into the store.
	ReplayedRecords int
	// SkippedWALs counts log files whose epoch predates the snapshot —
	// their frames are already embedded, replaying would double-count.
	SkippedWALs int
	// DiscardedRecords counts intact frames whose payload failed to
	// parse or apply (never silently ingested).
	DiscardedRecords int
	// DiscardedBytes counts torn log tails and unusable log files.
	DiscardedBytes int64
}

// Clean reports whether nothing was corrupt and nothing was discarded.
// A clean recovery may still have replayed records (normal after a
// crash between flushes).
func (r *Recovery) Clean() bool {
	return !r.SnapshotCorrupt && !r.BackupCorrupt &&
		r.DiscardedRecords == 0 && r.DiscardedBytes == 0
}

// String summarizes the recovery in one line.
func (r *Recovery) String() string {
	var parts []string
	if r.SnapshotCorrupt {
		parts = append(parts, "snapshot corrupt")
	}
	if r.UsedBackup {
		parts = append(parts, "restored from backup")
	}
	if r.BackupCorrupt {
		parts = append(parts, "backup corrupt")
	}
	if r.ReplayedRecords > 0 {
		parts = append(parts, fmt.Sprintf("replayed %d WAL record(s)", r.ReplayedRecords))
	}
	if r.SkippedWALs > 0 {
		parts = append(parts, fmt.Sprintf("skipped %d already-snapshotted WAL(s)", r.SkippedWALs))
	}
	if r.DiscardedRecords > 0 {
		parts = append(parts, fmt.Sprintf("discarded %d unparseable record(s)", r.DiscardedRecords))
	}
	if r.DiscardedBytes > 0 {
		parts = append(parts, fmt.Sprintf("discarded %d byte(s) of torn log tail", r.DiscardedBytes))
	}
	if len(parts) == 0 {
		return "clean start"
	}
	return strings.Join(parts, ", ")
}

// RecordTo publishes the recovery outcome as gauges, so an operator can
// read off /metrics what the last restart found without scraping logs.
func (r *Recovery) RecordTo(reg *obs.Registry) {
	b2g := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	reg.Gauge("profdb_recovery_clean",
		"1 when the last recovery found nothing corrupt and discarded nothing.").Set(b2g(r.Clean()))
	reg.Gauge("profdb_recovery_snapshot_corrupt",
		"1 when the primary snapshot failed to parse at the last recovery.").Set(b2g(r.SnapshotCorrupt))
	reg.Gauge("profdb_recovery_used_backup",
		"1 when state was restored from the .bak snapshot.").Set(b2g(r.UsedBackup))
	reg.Gauge("profdb_recovery_replayed_records",
		"WAL frames re-ingested at the last recovery.").Set(float64(r.ReplayedRecords))
	reg.Gauge("profdb_recovery_skipped_wals",
		"Log files skipped at the last recovery because the snapshot already embeds them.").Set(float64(r.SkippedWALs))
	reg.Gauge("profdb_recovery_discarded_records",
		"Intact WAL frames whose payload failed to parse or apply at the last recovery.").Set(float64(r.DiscardedRecords))
	reg.Gauge("profdb_recovery_discarded_bytes",
		"Bytes of torn log tail discarded at the last recovery.").Set(float64(r.DiscardedBytes))
}

// readAndParseDB loads one snapshot file. exists is false only when the
// file is absent; a present-but-unreadable file counts as corrupt.
func readAndParseDB(fsys chaos.FS, path string) (db *DB, exists bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, true, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, true, err
	}
	db, err = ReadDB(bytes.NewReader(data))
	if err != nil {
		return nil, true, err
	}
	return db, true, nil
}

// Open loads (or creates) a crash-safe store at path, performing full
// recovery, and leaves it in canonical state: a fresh durable snapshot
// and an empty WAL whenever anything had to be replayed or repaired.
// The returned Recovery says what happened; an error means the
// filesystem would not even let recovery complete.
func Open(fsys chaos.FS, path, program string) (*Store, *Recovery, error) {
	rep := &Recovery{}
	db, exists, _ := readAndParseDB(fsys, path)
	if db == nil && exists {
		rep.SnapshotCorrupt = true
	}
	if db == nil {
		bak, bakExists, _ := readAndParseDB(fsys, bakPathOf(path))
		if bak != nil {
			db = bak
			rep.UsedBackup = true
		} else if bakExists {
			rep.BackupCorrupt = true
		}
	}
	fresh := db == nil
	if fresh {
		db = NewDB(program)
	}
	if program != "" && db.Program == "" {
		db.Program = program
	}
	s := &Store{fs: fsys, path: path, db: db}

	// Replay logs in age order. The epoch rule makes this safe against
	// every crash point in the flush sequence: a log strictly older than
	// the snapshot is fully embedded in it.
	for _, wp := range []string{s.prevPath(), s.walPath()} {
		f, err := fsys.Open(wp)
		if err != nil {
			continue // absent (or unreadable: nothing to salvage)
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			continue
		}
		epoch, payloads, discarded, ok := parseWAL(data)
		if !ok {
			rep.DiscardedBytes += int64(len(data))
			continue
		}
		if epoch < db.Epoch {
			rep.SkippedWALs++
			continue
		}
		for _, pl := range payloads {
			prg, rec, err := ReadSnapshot(bytes.NewReader(pl))
			if err != nil {
				rep.DiscardedRecords++
				continue
			}
			if err := s.apply(prg, rec); err != nil {
				rep.DiscardedRecords++
				continue
			}
			rep.ReplayedRecords++
		}
		rep.DiscardedBytes += discarded
	}

	// Canonicalize unconditionally: a fresh snapshot at epoch E+1
	// embedding everything recovered, plus a fresh aligned WAL. Reusing
	// a survivor log is never safe in general — its epoch may already
	// trail the snapshot (a crash between snapshot install and log
	// rotation), and appending to it would write frames that the next
	// recovery rightly skips.
	if err := s.Flush(); err != nil {
		return nil, rep, fmt.Errorf("profdb store: recovery flush: %w", err)
	}
	return s, rep, nil
}

func bakPathOf(path string) string { return path + ".bak" }

// DB exposes the in-memory database for merges and stats. Readers must
// coordinate with the writing goroutine externally.
func (s *Store) DB() *DB { return s.db }

// apply validates and commits one record to memory only.
func (s *Store) apply(program string, rec *Record) error {
	if s.db.Program == "" {
		if err := s.db.Ingest(rec); err != nil {
			return err
		}
		s.db.Program = program
		return nil
	}
	if program != "" && program != s.db.Program {
		return fmt.Errorf("snapshot is for program %q, store holds %q", program, s.db.Program)
	}
	return s.db.Ingest(rec)
}

// precheck mirrors apply's validation without mutating anything, so a
// batch can be split into WAL-worthy records and immediate rejections.
func (s *Store) precheck(program string, rec *Record) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("profdb: ingest: record has no fingerprint")
	}
	if rec.Runs <= 0 {
		return fmt.Errorf("profdb: ingest: record has non-positive runs count %d", rec.Runs)
	}
	if s.db.Program != "" && program != "" && program != s.db.Program {
		return fmt.Errorf("snapshot is for program %q, store holds %q", program, s.db.Program)
	}
	return nil
}

// Ingest durably logs one record and applies it. A nil return is the
// ack: the record survives kill -9 from this moment on.
func (s *Store) Ingest(program string, rec *Record) error {
	errs := s.IngestBatch([]string{program}, []*Record{rec})
	return errs[0]
}

// IngestBatch logs a batch with a single write+fsync, then applies the
// accepted records. The returned slice has one entry per input record:
// nil means acked-and-durable. A WAL failure fails the whole batch and
// poisons the log, which is rotated (with a fresh snapshot barrier)
// before anything else is acked.
func (s *Store) IngestBatch(programs []string, recs []*Record) []error {
	errs := make([]error, len(recs))
	s.Obs.Histogram("profdb_ingest_batch_records",
		"Records per ingest batch committed with a single fsync.",
		obs.SizeBuckets).Observe(float64(len(recs)))
	if s.walDirty || s.wal == nil {
		// A previous append may have left garbage at the log's tail; any
		// frame written after it would be discarded by replay. A full
		// Flush (not a bare rotation) re-establishes a clean log: the
		// snapshot barrier means retiring the poisoned log to .wal.prev
		// can never clobber acked records that exist nowhere else.
		if err := s.Flush(); err != nil {
			for i := range errs {
				errs[i] = fmt.Errorf("%w: recovery flush: %v", ErrWAL, err)
			}
			return errs
		}
	}
	var buf bytes.Buffer
	accepted := make([]int, 0, len(recs))
	for i, rec := range recs {
		if err := s.precheck(programs[i], rec); err != nil {
			errs[i] = err
			continue
		}
		var payload bytes.Buffer
		if _, err := WriteSnapshot(&payload, programs[i], rec); err != nil {
			errs[i] = err
			continue
		}
		appendWALFrame(&buf, payload.Bytes())
		accepted = append(accepted, i)
	}
	if len(accepted) == 0 {
		return errs
	}
	if _, err := s.wal.Write(buf.Bytes()); err != nil {
		s.walDirty = true
		s.Obs.Counter("profdb_wal_errors_total",
			"WAL append or fsync failures (each NAKs its whole batch).",
			"op", "append").Inc()
		for _, i := range accepted {
			errs[i] = fmt.Errorf("%w: append: %v", ErrWAL, err)
		}
		return errs
	}
	fsyncStart := time.Now()
	err := s.wal.Sync()
	s.Obs.Histogram("profdb_wal_fsync_seconds",
		"WAL fsync latency — the daemon's ack barrier.",
		nil).Observe(time.Since(fsyncStart).Seconds())
	if err != nil {
		s.walDirty = true
		s.Obs.Counter("profdb_wal_errors_total",
			"WAL append or fsync failures (each NAKs its whole batch).",
			"op", "fsync").Inc()
		for _, i := range accepted {
			errs[i] = fmt.Errorf("%w: fsync: %v", ErrWAL, err)
		}
		return errs
	}
	for _, i := range accepted {
		if err := s.apply(programs[i], recs[i]); err != nil {
			// Precheck passed, so this is a first-ingest adoption race with
			// itself within the batch (program conflict): report it.
			errs[i] = err
		}
	}
	return errs
}

// writeFileSynced writes name via the FS with an fsync before close.
func (s *Store) writeFileSynced(name string, data []byte) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Flush advances the snapshot to epoch E+1 and rotates the WAL:
//
//  1. serialize the store at epoch E+1 into <path>.tmp (fsynced);
//  2. rename <path>.tmp over <path> and fsync the directory — if this
//     tears, the backup from the PREVIOUS flush (epoch E) plus the
//     still-unrotated epoch-E log reconstruct the full state;
//  3. install the same bytes as <path>.bak (via its own tmp + rename) —
//     written from memory, never copied from the primary, so a torn
//     primary can never poison it; it replaces the old backup only
//     after the new primary is durable, so at every crash instant at
//     least one snapshot file parses;
//  4. install a fresh epoch-E+1 WAL, keeping the old log one more
//     epoch as <path>.wal.prev.
//
// The backup always carries the same epoch as the state it embeds, so
// whichever snapshot recovery loads, the epoch rule replays exactly
// the log records that snapshot lacks — no loss, no double count. A
// failure in step 1 leaves the old pair authoritative (error returned,
// store still usable); a failure from step 2 on poisons the log so the
// next ingest retries a full flush before acking anything.
func (s *Store) Flush() error {
	flushStart := time.Now()
	defer func() {
		s.Obs.Counter("profdb_flushes_total",
			"Snapshot flushes attempted (including the recovery flush).").Inc()
		s.Obs.Histogram("profdb_flush_seconds",
			"Wall time of one snapshot flush and WAL rotation.",
			nil).Observe(time.Since(flushStart).Seconds())
	}()
	oldEpoch := s.db.Epoch
	s.db.Epoch = oldEpoch + 1
	var snap bytes.Buffer
	if _, err := s.db.WriteTo(&snap); err != nil {
		s.db.Epoch = oldEpoch
		return err
	}
	tmp := s.path + ".tmp"
	if err := s.writeFileSynced(tmp, snap.Bytes()); err != nil {
		s.db.Epoch = oldEpoch
		return err
	}
	if err := s.fs.Rename(tmp, s.path); err != nil {
		// The primary may now be torn; the previous backup plus the
		// unrotated log cover it. Keep the bumped epoch and poison the
		// log so recovery-by-flush runs before the next ack.
		s.walDirty = true
		return err
	}
	if err := s.fs.SyncDir(filepath.Dir(s.path)); err != nil {
		s.walDirty = true
		return err
	}
	bakTmp := s.bakPath() + ".tmp"
	if err := s.writeFileSynced(bakTmp, snap.Bytes()); err != nil {
		s.walDirty = true
		return fmt.Errorf("profdb store: backup: %w", err)
	}
	if err := s.fs.Rename(bakTmp, s.bakPath()); err != nil {
		s.walDirty = true
		return fmt.Errorf("profdb store: backup: %w", err)
	}
	// The snapshot is durable; from here on the old WAL is redundant
	// (epoch < E+1 is skipped at recovery). Rotate it.
	if err := s.rotateWAL(); err != nil {
		// Snapshot E+1 is safely installed, but no clean log exists yet;
		// stay dirty so the next ingest retries before acking.
		return fmt.Errorf("profdb store: wal rotate: %w", err)
	}
	return nil
}

// rotateWAL installs a fresh, empty log at the store's current epoch,
// retiring any existing log to <path>.wal.prev. The retired log's
// epoch rule keeps its records replayable exactly when still needed.
func (s *Store) rotateWAL() error {
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	s.walDirty = true // stays set until a clean log is standing
	tmp := s.walPath() + ".tmp"
	if err := s.writeFileSynced(tmp, walHeader(s.db.Epoch)); err != nil {
		return err
	}
	if _, err := s.fs.Size(s.walPath()); err == nil {
		if err := s.fs.Rename(s.walPath(), s.prevPath()); err != nil {
			return err
		}
	}
	if err := s.fs.Rename(tmp, s.walPath()); err != nil {
		return err
	}
	if err := s.fs.SyncDir(filepath.Dir(s.path)); err != nil {
		return err
	}
	wal, err := s.fs.OpenAppend(s.walPath())
	if err != nil {
		return err
	}
	s.wal = wal
	s.walDirty = false
	return nil
}

// WALClean reports whether a clean write-ahead log is standing, i.e.
// whether the next ingest can be acked without first re-establishing
// the log. This is the store half of the daemon's readiness probe.
func (s *Store) WALClean() bool {
	return s.wal != nil && !s.walDirty
}

// ReplaceBatch overwrites whole records — the anti-entropy adoption
// path, where a repair push carries a replica copy that beats the
// local one. Replacement cannot ride the WAL (its replay semantics are
// additive: a replayed frame re-ingests, it does not overwrite), so
// durability comes from a full snapshot flush before the nil return.
// Single-writer like every other mutation.
func (s *Store) ReplaceBatch(program string, recs []*Record) error {
	if s.db.Program == "" && program != "" {
		s.db.Program = program
	}
	for _, rec := range recs {
		s.db.Records[RecordKey{Fingerprint: rec.Fingerprint, Gen: rec.Gen}] = rec
	}
	if err := s.Flush(); err != nil {
		// The adoption is in memory but not yet durable; Flush poisoned
		// the log, so nothing further is acked until a flush succeeds.
		return fmt.Errorf("%w: repair flush: %v", ErrWAL, err)
	}
	return nil
}

// Close flushes a final snapshot and releases the log handle.
func (s *Store) Close() error {
	err := s.Flush()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	return err
}
