package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"inlinec"
	"inlinec/internal/ir"
	"inlinec/internal/predict"
	"inlinec/internal/profile"
	"inlinec/internal/testgen"
)

// The calibration corpus: measured profiles harvested from the testgen
// shape zoo plus the espresso and funcptrs benchmarks. The checked-in
// internal/predict/default.ilpredict is the ridge fit over exactly this
// corpus; regenerate it after changing the corpus, the feature set, or
// the profile pipeline with
//
//	go test ./internal/bench -run TestCalibratedDefaultModel -update
func calibrationCorpus(t *testing.T) (mods []*ir.Module, profs []*profile.Profile) {
	t.Helper()
	shapes := []testgen.Options{
		{Funcs: 9},
		{Funcs: 8, Recursion: true},
		{Funcs: 8, FuncPtrs: true, Extern: true, Recursion: true},
		{Funcs: 10, Pointers: true, MaxDepth: 3},
		{Funcs: 10, MaxStmts: 8, HotColdBodies: true},
		{Funcs: 8, DominantFuncPtr: true},
		{Funcs: 12, MaxStmts: 8, Recursion: true, Pointers: true, FuncPtrs: true, Extern: true},
	}
	for i, opts := range shapes {
		for _, seed := range []int64{41, 42, 43} {
			src := testgen.Generate(seed+int64(100*i), opts)
			p, err := inlinec.Compile("gen.c", src)
			if err != nil {
				t.Fatalf("shape %d seed %d: %v", i, seed, err)
			}
			prof, err := p.ProfileInputs(inlinec.Input{})
			if err != nil {
				t.Fatalf("shape %d seed %d: %v", i, seed, err)
			}
			mods = append(mods, p.Module)
			profs = append(profs, prof)
		}
	}
	for _, name := range []string{"espresso", "funcptrs"} {
		b := Get(name)
		if b == nil {
			t.Fatalf("benchmark %s not registered", name)
		}
		p, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.ProfileInputs(b.Inputs...)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, p.Module)
		profs = append(profs, prof)
	}
	return mods, profs
}

func fitCorpusModel(t *testing.T) *predict.Model {
	t.Helper()
	mods, profs := calibrationCorpus(t)
	samples := predict.SamplesFromModules(mods, profs)
	if len(samples) < predict.NumFeatures*10 {
		t.Fatalf("corpus too thin: %d samples", len(samples))
	}
	m, err := predict.Calibrate(samples, predict.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCalibratedDefaultModel refits the predictor on the calibration
// corpus and checks the checked-in default model matches the fit. The
// comparison uses a small tolerance (the fit rounds coefficients to
// 1e-6, but cross-platform FMA contraction can wiggle the last digit);
// -update rewrites internal/predict/default.ilpredict instead.
func TestCalibratedDefaultModel(t *testing.T) {
	m := fitCorpusModel(t)
	path := filepath.Join("..", "predict", "default.ilpredict")
	if *updateGolden {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want := predict.DefaultModel()
	const tol = 2e-6
	for i, c := range m.Coef {
		if math.Abs(c-want.Coef[i]) > tol {
			t.Errorf("coef %s: fit %v, checked-in %v (|diff| > %v)\n"+
				"regenerate with: go test ./internal/bench -run TestCalibratedDefaultModel -update",
				predict.FeatureNames[i], c, want.Coef[i], tol)
		}
	}
}

// TestCalibrationDeterministic: two in-process fits over the same corpus
// serialize byte-identically — the calibration pass has no hidden
// iteration-order or accumulation nondeterminism.
func TestCalibrationDeterministic(t *testing.T) {
	serialize := func(m *predict.Model) []byte {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := serialize(fitCorpusModel(t))
	b := serialize(fitCorpusModel(t))
	if !bytes.Equal(a, b) {
		t.Errorf("two calibration passes disagree:\n--- first\n%s--- second\n%s", a, b)
	}
}
