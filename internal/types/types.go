// Package types implements the MiniC type system: char, int, void,
// pointers, fixed-size arrays, structs, enums (as int), and function types.
// Sizes follow a simple 64-bit model: char is 1 byte, int/long/pointers are
// 8 bytes. Struct fields are laid out in declaration order with natural
// alignment.
package types

import (
	"fmt"
	"strings"
)

// Sizes of the primitive types in bytes.
const (
	CharSize = 1
	IntSize  = 8
	PtrSize  = 8
)

// Kind discriminates the type representations.
type Kind int

// Type kinds.
const (
	Void Kind = iota
	Char
	Int
	Pointer
	Array
	Struct
	Func
)

// Type is the interface implemented by all MiniC types.
type Type interface {
	Kind() Kind
	// Size returns the storage size in bytes; function and void types
	// have size 0.
	Size() int
	// Align returns the required alignment in bytes (at least 1).
	Align() int
	String() string
}

// Basic is one of the primitive types void, char, int.
type Basic struct{ K Kind }

// Predeclared singleton types.
var (
	VoidType = &Basic{K: Void}
	CharType = &Basic{K: Char}
	IntType  = &Basic{K: Int}
)

// Kind returns the primitive kind.
func (b *Basic) Kind() Kind { return b.K }

// Size returns the primitive size.
func (b *Basic) Size() int {
	switch b.K {
	case Char:
		return CharSize
	case Int:
		return IntSize
	default:
		return 0
	}
}

// Align returns the primitive alignment.
func (b *Basic) Align() int {
	if b.K == Char {
		return 1
	}
	if b.K == Int {
		return IntSize
	}
	return 1
}

func (b *Basic) String() string {
	switch b.K {
	case Void:
		return "void"
	case Char:
		return "char"
	default:
		return "int"
	}
}

// Ptr is a pointer type.
type Ptr struct{ Elem Type }

// PointerTo returns the pointer type to elem.
func PointerTo(elem Type) *Ptr { return &Ptr{Elem: elem} }

// Kind returns Pointer.
func (p *Ptr) Kind() Kind { return Pointer }

// Size returns the pointer size.
func (p *Ptr) Size() int { return PtrSize }

// Align returns the pointer alignment.
func (p *Ptr) Align() int     { return PtrSize }
func (p *Ptr) String() string { return p.Elem.String() + "*" }

// Arr is a fixed-length array type.
type Arr struct {
	Elem Type
	Len  int
}

// ArrayOf returns the array type [n]elem.
func ArrayOf(elem Type, n int) *Arr { return &Arr{Elem: elem, Len: n} }

// Kind returns Array.
func (a *Arr) Kind() Kind { return Array }

// Size returns element size times length.
func (a *Arr) Size() int { return a.Elem.Size() * a.Len }

// Align returns the element alignment.
func (a *Arr) Align() int     { return a.Elem.Align() }
func (a *Arr) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }

// Field is a struct member with its computed byte offset.
type Field struct {
	Name   string
	Type   Type
	Offset int
}

// StructType is a named struct with laid-out fields.
type StructType struct {
	Name   string
	Fields []Field
	size   int
	align  int
	laid   bool
}

// NewStruct returns a struct type shell; call SetFields to lay it out.
// Incomplete structs (declared but not defined) have no fields and size 0.
func NewStruct(name string) *StructType { return &StructType{Name: name, align: 1} }

// SetFields installs the field list and computes offsets, size, and
// alignment using natural alignment rules.
func (s *StructType) SetFields(fields []Field) {
	off := 0
	align := 1
	for i := range fields {
		a := fields[i].Type.Align()
		if a > align {
			align = a
		}
		off = alignUp(off, a)
		fields[i].Offset = off
		off += fields[i].Type.Size()
	}
	s.Fields = fields
	s.size = alignUp(off, align)
	s.align = align
	s.laid = true
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Complete reports whether the struct definition has been seen.
func (s *StructType) Complete() bool { return s.laid }

// Field returns the field with the given name, or nil.
func (s *StructType) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Kind returns Struct.
func (s *StructType) Kind() Kind { return Struct }

// Size returns the laid-out size.
func (s *StructType) Size() int { return s.size }

// Align returns the struct alignment.
func (s *StructType) Align() int     { return s.align }
func (s *StructType) String() string { return "struct " + s.Name }

// FuncType describes a function signature.
type FuncType struct {
	Params   []Type
	Result   Type
	Variadic bool
}

// Kind returns Func.
func (f *FuncType) Kind() Kind { return Func }

// Size of a function type is 0; only pointers to functions are stored.
func (f *FuncType) Size() int { return 0 }

// Align of a function type is 1.
func (f *FuncType) Align() int { return 1 }

func (f *FuncType) String() string {
	var sb strings.Builder
	sb.WriteString(f.Result.String())
	sb.WriteString(" (")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	if f.Variadic {
		if len(f.Params) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("...")
	}
	sb.WriteString(")")
	return sb.String()
}

// IsInteger reports whether t is char or int.
func IsInteger(t Type) bool {
	k := t.Kind()
	return k == Char || k == Int
}

// IsScalar reports whether t is an integer or pointer type (valid in
// conditions and arithmetic).
func IsScalar(t Type) bool {
	return IsInteger(t) || t.Kind() == Pointer
}

// IsVoid reports whether t is void.
func IsVoid(t Type) bool { return t.Kind() == Void }

// Decay converts array types to pointer-to-element (the C "decay" rule)
// and function types to pointer-to-function; other types pass through.
func Decay(t Type) Type {
	switch tt := t.(type) {
	case *Arr:
		return PointerTo(tt.Elem)
	case *FuncType:
		return PointerTo(tt)
	}
	return t
}

// Identical reports structural type identity (structs by name).
func Identical(a, b Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch at := a.(type) {
	case *Basic:
		return at.K == b.(*Basic).K
	case *Ptr:
		return Identical(at.Elem, b.(*Ptr).Elem)
	case *Arr:
		bt := b.(*Arr)
		return at.Len == bt.Len && Identical(at.Elem, bt.Elem)
	case *StructType:
		return at.Name == b.(*StructType).Name
	case *FuncType:
		bt := b.(*FuncType)
		if at.Variadic != bt.Variadic || len(at.Params) != len(bt.Params) {
			return false
		}
		if !Identical(at.Result, bt.Result) {
			return false
		}
		for i := range at.Params {
			if !Identical(at.Params[i], bt.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// AssignableTo reports whether a value of type src may be assigned to a
// location of type dst under MiniC's forgiving (C-like) rules: integers
// convert freely among themselves, any pointer converts to any pointer
// (as with void* in pre-ANSI C), and integers convert to pointers (for 0).
func AssignableTo(src, dst Type) bool {
	src, dst = Decay(src), Decay(dst)
	if Identical(src, dst) {
		return true
	}
	if IsInteger(src) && IsInteger(dst) {
		return true
	}
	if src.Kind() == Pointer && dst.Kind() == Pointer {
		return true
	}
	if IsInteger(src) && dst.Kind() == Pointer {
		return true
	}
	if src.Kind() == Pointer && IsInteger(dst) {
		return true
	}
	return false
}
