package profdb

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inlinec/internal/chaos"
)

func testClient(base string) *Client {
	c := NewClient(base)
	c.Backoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	c.sleep = func(time.Duration) {}
	return c
}

// TestClientFetchRetries5xx: GET /profile is idempotent — the client
// rides out transient 5xx responses and reports the retries.
func TestClientFetchRetries5xx(t *testing.T) {
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "sync: injected fault", http.StatusServiceUnavailable)
			return
		}
		WriteSnapshot(w, "prog", testRec("fp", 1, 2))
	}))
	defer srv.Close()

	var warns bytes.Buffer
	c := testClient(srv.URL)
	c.Warn = &warns
	program, rec, err := c.FetchProfile("fp", nil)
	if err != nil {
		t.Fatalf("FetchProfile: %v", err)
	}
	if program != "prog" || rec.Runs != 2 {
		t.Errorf("got program %q, runs %d", program, rec.Runs)
	}
	if !strings.Contains(warns.String(), "retry") {
		t.Errorf("retries were silent: %q", warns.String())
	}
}

// TestClientFetch404NotRetried: a 4xx is a definitive answer, not a
// transient fault — exactly one request, typed error back.
func TestClientFetch404NotRetried(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "no profile data", http.StatusNotFound)
	}))
	defer srv.Close()

	c := testClient(srv.URL)
	_, _, err := c.FetchProfile("fp", nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusNotFound {
		t.Fatalf("want HTTPError 404, got %v", err)
	}
	if hits != 1 {
		t.Errorf("404 was retried: %d requests", hits)
	}
}

// TestClientPostRetries5xxNAK: a 5xx from the daemon is an explicit
// "nothing committed", so POST may retry it safely.
func TestClientPostRetries5xxNAK(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			http.Error(w, "wal fsync failed", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok: ingested\n"))
	}))
	defer srv.Close()

	c := testClient(srv.URL)
	body, err := c.PostSnapshot("prog", testRec("fp", 1, 2))
	if err != nil {
		t.Fatalf("PostSnapshot: %v", err)
	}
	if hits != 2 || !strings.Contains(body, "ok") {
		t.Errorf("hits = %d, body = %q", hits, body)
	}
}

// TestClientPostNoRetryAfterAmbiguousFailure: when the connection dies
// after the request may have been delivered, the client must NOT send
// again — ingestion is not idempotent and a blind retry double-counts.
func TestClientPostNoRetryAfterAmbiguousFailure(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()

	rt := chaos.NewRoundTripper(nil, chaos.HTTPConfig{Seed: 1, Reset: 1})
	rt.AfterSend = true // the dangerous case: delivered, then the reply is lost
	c := testClient(srv.URL)
	c.HTTP = &http.Client{Transport: rt}
	_, err := c.PostSnapshot("prog", testRec("fp", 1, 2))
	if err == nil {
		t.Fatal("ambiguous failure reported success")
	}
	if hits != 1 {
		t.Errorf("ambiguous POST was retried: server saw %d requests", hits)
	}
}

// TestClientPostRetriesDialFailure: a dial error means the snapshot
// never left the machine — retrying is safe, and the attempts are
// bounded.
func TestClientPostRetriesDialFailure(t *testing.T) {
	c := testClient("http://127.0.0.1:1")
	c.Attempts = 3
	_, err := c.PostSnapshot("prog", testRec("fp", 1, 2))
	if err == nil {
		t.Fatal("post to a dead address succeeded")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempt(s)") {
		t.Errorf("want bounded-retry error, got: %v", err)
	}
}
