package bench

import (
	"fmt"
	"strings"
)

// rng is a deterministic xorshift generator so every benchmark input is
// reproducible across runs and machines.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) pick(words []string) string { return words[r.intn(len(words))] }

var identWords = []string{
	"count", "total", "index", "value", "buffer", "line", "token", "node",
	"next", "head", "tail", "size", "limit", "offset", "state", "flags",
	"input", "output", "temp", "result", "left", "right", "depth", "width",
}

var textWords = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"compiler", "function", "inline", "expansion", "profile", "weight",
	"graph", "node", "arc", "stack", "frame", "register", "branch",
	"loop", "call", "return", "program", "section", "table", "figure",
}

// genIdent produces a C-ish identifier.
func (r *rng) genIdent() string {
	w := r.pick(identWords)
	if r.intn(3) == 0 {
		return w + fmt.Sprint(r.intn(100))
	}
	return w
}

// genCSource generates a small C-like source file of roughly the given
// number of lines — the cccp benchmark's input class ("C programs,
// 100-3000 lines" in the paper, scaled down for the interpreter).
func genCSource(r *rng, lines int) string {
	var sb strings.Builder
	defines := r.intn(6) + 3
	for i := 0; i < defines; i++ {
		fmt.Fprintf(&sb, "#define %s %d\n", strings.ToUpper(r.genIdent())+fmt.Sprint(i), r.intn(1000))
	}
	sb.WriteString("#include <stdio.h>\n")
	if r.intn(2) == 0 {
		fmt.Fprintf(&sb, "#ifdef %s0\n", strings.ToUpper(r.pick(identWords)))
		fmt.Fprintf(&sb, "int guarded_%s;\n", r.genIdent())
		sb.WriteString("#endif\n")
	}
	if r.intn(3) == 0 {
		fmt.Fprintf(&sb, "#undef %s1\n", strings.ToUpper(r.pick(identWords)))
	}
	emitted := defines + 1
	for emitted < lines {
		switch r.intn(5) {
		case 0:
			fmt.Fprintf(&sb, "int %s(int %s) {\n", r.genIdent(), r.genIdent())
			fmt.Fprintf(&sb, "    return %s + %d; /* %s */\n", r.genIdent(), r.intn(50), r.pick(textWords))
			sb.WriteString("}\n")
			emitted += 3
		case 1:
			fmt.Fprintf(&sb, "/* %s %s %s */\n", r.pick(textWords), r.pick(textWords), r.pick(textWords))
			emitted++
		case 2:
			fmt.Fprintf(&sb, "int %s = %d;\n", r.genIdent(), r.intn(1000))
			emitted++
		case 3:
			fmt.Fprintf(&sb, "    if (%s > %d) %s = %s * 2;\n", r.genIdent(), r.intn(10), r.genIdent(), r.genIdent())
			emitted++
		default:
			fmt.Fprintf(&sb, "    %s(%s, %d);\n", r.genIdent(), r.genIdent(), r.intn(9))
			emitted++
		}
	}
	return sb.String()
}

// genText generates prose-like text with the given approximate word count.
func genText(r *rng, words int) string {
	var sb strings.Builder
	col := 0
	for i := 0; i < words; i++ {
		w := r.pick(textWords)
		if col+len(w)+1 > 60 {
			sb.WriteByte('\n')
			col = 0
		} else if col > 0 {
			sb.WriteByte(' ')
			col++
		}
		sb.WriteString(w)
		col += len(w)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// genBinary generates length pseudo-random bytes (tar/cmp payloads).
func genBinary(r *rng, length int) []byte {
	out := make([]byte, length)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

// mutate flips a few bytes of data, returning a near-identical copy
// (cmp's "similar/dissimilar text files" inputs).
func mutate(r *rng, data []byte, flips int) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < flips && len(out) > 0; i++ {
		out[r.intn(len(out))] ^= byte(1 + r.intn(254))
	}
	return out
}

// genEqnDoc generates a document with embedded .EQ/.EN equation blocks
// (the eqn benchmark's "papers with .EQ options").
func genEqnDoc(r *rng, blocks int) string {
	var sb strings.Builder
	ops := []string{"+", "-", "*", "/"}
	for b := 0; b < blocks; b++ {
		sb.WriteString(genText(r, 10+r.intn(20)))
		sb.WriteString(".EQ\n")
		terms := 2 + r.intn(4)
		for t := 0; t < terms; t++ {
			if t > 0 {
				fmt.Fprintf(&sb, " %s ", ops[r.intn(len(ops))])
			}
			switch r.intn(4) {
			case 0:
				fmt.Fprintf(&sb, "x sub %d", r.intn(9))
			case 1:
				fmt.Fprintf(&sb, "y sup %d", r.intn(9))
			case 2:
				fmt.Fprintf(&sb, "%s over %s", r.pick([]string{"a", "b", "n"}), r.pick([]string{"c", "d", "m"}))
			default:
				fmt.Fprintf(&sb, "%d", r.intn(100))
			}
		}
		sb.WriteString("\n.EN\n")
	}
	return sb.String()
}

// genTruthTable generates an espresso-style PLA: lines of input bits and
// an output bit.
func genTruthTable(r *rng, inputs, terms int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".i %d\n.p %d\n", inputs, terms)
	for t := 0; t < terms; t++ {
		for i := 0; i < inputs; i++ {
			sb.WriteByte(byte('0' + r.intn(2)))
		}
		sb.WriteByte(' ')
		sb.WriteByte(byte('0' + r.intn(2)))
		sb.WriteByte('\n')
	}
	sb.WriteString(".e\n")
	return sb.String()
}

// genMakefile generates a dependency file in the mini-make syntax plus a
// matching timestamp table.
func genMakefile(r *rng, targets int) (string, string) {
	var mk, ts strings.Builder
	now := 1000
	for i := 0; i < targets; i++ {
		name := fmt.Sprintf("obj%d", i)
		fmt.Fprintf(&mk, "%s:", name)
		deps := r.intn(3)
		for d := 0; d < deps && i > 0; d++ {
			fmt.Fprintf(&mk, " obj%d", r.intn(i))
		}
		if r.intn(4) == 0 || i == 0 {
			fmt.Fprintf(&mk, " src%d", i)
			fmt.Fprintf(&ts, "src%d %d\n", i, now+r.intn(500))
		}
		mk.WriteByte('\n')
		fmt.Fprintf(&ts, "%s %d\n", name, now+r.intn(500))
	}
	return mk.String(), ts.String()
}

// genGrammar generates a yacc-style grammar over single-letter
// nonterminals and lowercase terminals, plus a sample sentence.
func genGrammar(r *rng, rules int) (string, string) {
	var g strings.Builder
	// A fixed LL(1)-friendly skeleton with random embellishment: the
	// driver benchmark parses expressions over +, *, (, ), n.
	g.WriteString("E: T e\n")
	g.WriteString("e: + T e\n")
	g.WriteString("e: .\n")
	g.WriteString("T: F t\n")
	g.WriteString("t: * F t\n")
	g.WriteString("t: .\n")
	g.WriteString("F: ( E )\n")
	g.WriteString("F: n\n")
	// Sample sentence: a random arithmetic expression.
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || r.intn(3) == 0 {
			return "n"
		}
		switch r.intn(3) {
		case 0:
			return expr(depth-1) + "+" + expr(depth-1)
		case 1:
			return expr(depth-1) + "*" + expr(depth-1)
		default:
			return "(" + expr(depth-1) + ")"
		}
	}
	var sent strings.Builder
	for i := 0; i < rules; i++ {
		sent.WriteString(expr(3 + r.intn(3)))
		sent.WriteByte('\n')
	}
	return g.String(), sent.String()
}

// genLexSpec generates token specifications for the mini-lex benchmark:
// keyword and operator literals, one per line, followed by input text to
// scan.
func genLexSpec(r *rng) string {
	kws := []string{"if", "else", "while", "for", "return", "break", "int", "char"}
	var sb strings.Builder
	for _, k := range kws {
		fmt.Fprintf(&sb, "K %s\n", k)
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||", "++", "--"} {
		fmt.Fprintf(&sb, "O %s\n", op)
	}
	sb.WriteString(".\n")
	return sb.String()
}
