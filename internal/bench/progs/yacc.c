/* yacc - a miniature LL(1) parser generator and driver, after the UNIX
 * yacc benchmark ("grammar for a C compiler, etc."). The grammar file
 * "grammar" holds rules "N: sym sym ...\n" where uppercase letters are
 * nonterminals, "." is epsilon, and anything else is a terminal. The
 * program computes NULLABLE, FIRST, and FOLLOW sets with iterative
 * fixpoint passes (set operations are the hot functions), builds the
 * LL(1) table, and then parses each line of stdin with a table-driven
 * pushdown automaton, reporting accept/reject counts. */

extern int getchar();
extern int open(char *path, int mode);
extern int close(int fd);
extern int getc(int fd);
extern int printf(char *fmt, ...);

enum { MAXRULES = 64, MAXRHS = 8, MAXSYMS = 128, STACKMAX = 256 };

/* rules[r][0] is the LHS nonterminal; rhs stored as chars, 0-terminated */
char rule_lhs[MAXRULES];
char rule_rhs[MAXRULES][MAXRHS];
int rule_len[MAXRULES];
int nrules;

/* per-symbol facts, indexed by character code */
int nullable[MAXSYMS];
int first[MAXSYMS][MAXSYMS];   /* first[A][t] */
int follow[MAXSYMS][MAXSYMS];  /* follow[A][t] */
int ll_table[MAXSYMS][MAXSYMS]; /* ll_table[A][t] = rule index + 1, 0 = err */

int accepted;
int rejected;
int steps;

int opt_sets;      /* cold: dump FIRST/FOLLOW sets */
int opt_conflicts; /* cold: report LL(1) table conflicts */
int opt_derive;    /* cold: print the derivation of the first sentence */
int table_conflicts;
int derivation_shown;

int is_nonterm(int s) { return s >= 'A' && s <= 'Z'; }

int is_term(int s) { return s != 0 && !is_nonterm(s); }

/* ---- set helpers (hot) ---- */

int set_has(int *set, int x) { return set[x]; }

int set_add(int *set, int x) {
    if (set[x]) return 0;
    set[x] = 1;
    return 1;
}

/* add every member of src to dst; returns 1 if dst grew */
int set_union(int *dst, int *src) {
    int i, grew;
    grew = 0;
    for (i = 1; i < MAXSYMS; i++) {
        if (src[i] && set_add(dst, i)) grew = 1;
    }
    return grew;
}

/* ---- grammar loading ---- */

int load_grammar() {
    int fd, c, r, n;
    fd = open("grammar", 0);
    if (fd < 0) return 0;
    nrules = 0;
    for (;;) {
        /* LHS */
        c = getc(fd);
        while (c == '\n' || c == ' ') c = getc(fd);
        if (c == -1) break;
        r = nrules;
        if (r >= MAXRULES) break;
        rule_lhs[r] = c;
        /* colon */
        c = getc(fd);
        while (c == ' ' || c == ':') c = getc(fd);
        /* RHS symbols to end of line; '.' alone means epsilon */
        n = 0;
        while (c != -1 && c != '\n') {
            if (c != ' ' && c != '.') {
                if (n < MAXRHS - 1) rule_rhs[r][n++] = c;
            }
            c = getc(fd);
        }
        rule_rhs[r][n] = '\0';
        rule_len[r] = n;
        nrules++;
    }
    close(fd);
    return nrules;
}

/* ---- NULLABLE ---- */

void compute_nullable() {
    int changed, r, i, allnull;
    changed = 1;
    while (changed) {
        changed = 0;
        for (r = 0; r < nrules; r++) {
            if (nullable[rule_lhs[r]]) continue;
            allnull = 1;
            for (i = 0; i < rule_len[r]; i++) {
                if (!nullable[rule_rhs[r][i]]) { allnull = 0; break; }
            }
            if (allnull) {
                nullable[rule_lhs[r]] = 1;
                changed = 1;
            }
        }
    }
}

/* ---- FIRST ---- */

void seed_first() {
    int r, i, s;
    for (r = 0; r < nrules; r++) {
        for (i = 0; i < rule_len[r]; i++) {
            s = rule_rhs[r][i];
            if (is_term(s)) set_add(first[s], s);
        }
    }
}

void compute_first() {
    int changed, r, i, s;
    seed_first();
    changed = 1;
    while (changed) {
        changed = 0;
        for (r = 0; r < nrules; r++) {
            for (i = 0; i < rule_len[r]; i++) {
                s = rule_rhs[r][i];
                if (set_union(first[rule_lhs[r]], first[s])) changed = 1;
                if (!nullable[s]) break;
            }
        }
    }
}

/* ---- FOLLOW ---- */

void compute_follow() {
    int changed, r, i, j, s, t, brk;
    set_add(follow[rule_lhs[0]], '$');
    changed = 1;
    while (changed) {
        changed = 0;
        for (r = 0; r < nrules; r++) {
            for (i = 0; i < rule_len[r]; i++) {
                s = rule_rhs[r][i];
                if (!is_nonterm(s)) continue;
                /* everything in FIRST of the tail goes into FOLLOW(s) */
                brk = 0;
                for (j = i + 1; j < rule_len[r]; j++) {
                    t = rule_rhs[r][j];
                    if (set_union(follow[s], first[t])) changed = 1;
                    if (!nullable[t]) { brk = 1; break; }
                }
                if (!brk) {
                    if (set_union(follow[s], follow[rule_lhs[r]])) changed = 1;
                }
            }
        }
    }
}

/* ---- LL(1) table ---- */

int rhs_first_has(int r, int t) {
    int i, s;
    for (i = 0; i < rule_len[r]; i++) {
        s = rule_rhs[r][i];
        if (set_has(first[s], t)) return 1;
        if (!nullable[s]) return 0;
    }
    return 0;
}

int rhs_nullable(int r) {
    int i;
    for (i = 0; i < rule_len[r]; i++) {
        if (!nullable[rule_rhs[r][i]]) return 0;
    }
    return 1;
}

void build_table() {
    int r, t;
    for (r = 0; r < nrules; r++) {
        for (t = 1; t < MAXSYMS; t++) {
            if (!is_term(t) && t != '$') continue;
            if (rhs_first_has(r, t) ||
                (rhs_nullable(r) && set_has(follow[rule_lhs[r]], t))) {
                if (ll_table[rule_lhs[r]][t] == 0) {
                    ll_table[rule_lhs[r]][t] = r + 1;
                } else if (ll_table[rule_lhs[r]][t] != r + 1) {
                    table_conflicts++;
                }
            }
        }
    }
}

/* ---- cold diagnostics: set dumps and conflict report ---- */

int set_size(int *set) {
    int i, n;
    n = 0;
    for (i = 1; i < MAXSYMS; i++) {
        if (set[i]) n++;
    }
    return n;
}

void print_set(char *label, int nt, int *set) {
    int i;
    printf("%s(%c) = {", label, nt);
    for (i = 1; i < MAXSYMS; i++) {
        if (set[i]) printf(" %c", i);
    }
    printf(" } [%d]\n", set_size(set));
}

int seen_nt(int s, int upto) {
    int r;
    for (r = 0; r < upto; r++) {
        if (rule_lhs[r] == s) return 1;
    }
    return 0;
}

void dump_sets() {
    int r, s;
    for (r = 0; r < nrules; r++) {
        s = rule_lhs[r];
        if (seen_nt(s, r)) continue;
        if (nullable[s]) printf("nullable(%c)\n", s);
        print_set("FIRST", s, first[s]);
        print_set("FOLLOW", s, follow[s]);
    }
}

void report_conflicts() {
    if (table_conflicts > 0)
        printf("yacc: %d LL(1) conflicts (first rule wins)\n", table_conflicts);
    else
        printf("yacc: grammar is LL(1)\n");
}

extern int read(int fd, char *buf, int n);

void load_options() {
    char buf[16];
    int fd, n, i;
    fd = open("opts", 0);
    if (fd < 0) return;
    n = read(fd, buf, 15);
    close(fd);
    for (i = 0; i < n; i++) {
        if (buf[i] == 'S') opt_sets = 1;
        if (buf[i] == 'c') opt_conflicts = 1;
        if (buf[i] == 'p') opt_derive = 1;
    }
}

/* ---- cold: leftmost-derivation printer ('p' option) re-parses one
 * sentence, printing each rule application ---- */

void print_rule(int r) {
    int i;
    printf("  %c ->", rule_lhs[r]);
    if (rule_len[r] == 0) printf(" .");
    for (i = 0; i < rule_len[r]; i++) printf(" %c", rule_rhs[r][i]);
    printf("\n");
}

char dstack[STACKMAX];
int dsp;

void dpush(int s) {
    if (dsp < STACKMAX) dstack[dsp++] = s;
}

int dpop() {
    if (dsp == 0) return 0;
    dsp--;
    return dstack[dsp];
}

void show_derivation(char *text) {
    int pos, top, t, r, i, steps_left;
    printf("derivation of %s:\n", text);
    dsp = 0;
    dpush('$');
    dpush(rule_lhs[0]);
    pos = 0;
    steps_left = 200;
    for (;;) {
        if (steps_left-- <= 0) { printf("  ...\n"); return; }
        top = dpop();
        t = text[pos];
        if (t == '\0') t = '$';
        if (top == '$' && t == '$') { printf("  accept\n"); return; }
        if (is_nonterm(top)) {
            r = ll_table[top][t];
            if (r == 0) { printf("  reject at %c\n", t); return; }
            r--;
            print_rule(r);
            for (i = rule_len[r] - 1; i >= 0; i--) dpush(rule_rhs[r][i]);
            continue;
        }
        if (top != t) { printf("  reject: want %c saw %c\n", top, t); return; }
        pos++;
    }
}

/* ---- table-driven parser ---- */

char stack[STACKMAX];
int sp;

void push(int s) {
    if (sp < STACKMAX) stack[sp++] = s;
}

int pop() {
    if (sp == 0) return 0;
    sp--;
    return stack[sp];
}

/* parse one NUL-terminated sentence; returns 1 on accept */
int parse_line(char *text) {
    int pos, top, t, r, i;
    sp = 0;
    push('$');
    push(rule_lhs[0]);
    pos = 0;
    for (;;) {
        steps++;
        top = pop();
        t = text[pos];
        if (t == '\0') t = '$';
        if (top == '$' && t == '$') return 1;
        if (is_nonterm(top)) {
            r = ll_table[top][t];
            if (r == 0) return 0;
            r--;
            /* push RHS in reverse */
            for (i = rule_len[r] - 1; i >= 0; i--) push(rule_rhs[r][i]);
            continue;
        }
        if (top != t) return 0;
        pos++;
    }
}

int read_line(char *buf, int max) {
    int c, n;
    n = 0;
    for (;;) {
        c = getchar();
        if (c == -1) {
            if (n == 0) return -1;
            break;
        }
        if (c == '\n') break;
        if (n < max - 1) buf[n++] = c;
    }
    buf[n] = '\0';
    return n;
}

int main() {
    char line[256];
    int n;
    accepted = 0;
    rejected = 0;
    steps = 0;
    opt_sets = 0;
    opt_conflicts = 0;
    opt_derive = 0;
    derivation_shown = 0;
    table_conflicts = 0;
    load_options();
    if (load_grammar() == 0) { printf("yacc: no grammar\n"); return 2; }
    compute_nullable();
    compute_first();
    compute_follow();
    build_table();
    if (opt_sets) dump_sets();
    if (opt_conflicts) report_conflicts();
    for (;;) {
        n = read_line(line, 256);
        if (n < 0) break;
        if (n == 0) continue;
        if (parse_line(line)) {
            accepted++;
            if (opt_derive && !derivation_shown) {
                derivation_shown = 1;
                show_derivation(line);
            }
        } else rejected++;
    }
    printf("yacc: %d rules, %d accepted, %d rejected, %d steps\n",
           nrules, accepted, rejected, steps);
    return 0;
}
