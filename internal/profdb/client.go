package profdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"inlinec/internal/obs"
)

// Client is the fleet-side HTTP client for ilprofd, shared by ilcc,
// ilprof, and the benchmark harness. It layers resilience over the
// daemon's plain API:
//
//   - every request carries a timeout (no compile ever hangs on a dead
//     daemon);
//   - idempotent requests (GET /profile) retry transport errors and 5xx
//     responses with bounded exponential backoff plus jitter;
//   - POST /ingest is not idempotent, so it retries only when the
//     snapshot provably never reached the server — a dial failure — or
//     when the server itself answered a 5xx other than 502 (an explicit
//     NAK: the daemon acks only after its write-ahead log is durable,
//     so a 503 means nothing was committed). 502 is the fleet router's
//     "partially committed or ambiguous" verdict — some replica may
//     already hold the record — so it is surfaced, never retried, like
//     an ambiguous mid-request transport error, keeping delivery
//     at-most-once.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTP performs the requests. NewClient installs a timeout-bearing
	// default.
	HTTP *http.Client
	// Attempts bounds tries per request (including the first).
	Attempts int
	// Backoff is the delay before the first retry; it doubles per retry.
	Backoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
	// Warn, when non-nil, receives one line per retry so operators can
	// see flakiness that resilience would otherwise hide.
	Warn io.Writer
	// Obs, when non-nil, counts the same retries into
	// profdb_client_retries_total so fleet flakiness shows up on
	// /metrics as well as in the warning stream.
	Obs *obs.Registry

	rngMu sync.Mutex
	rng   *rand.Rand
	// sleep is swappable by tests.
	sleep func(time.Duration)
}

// NewClient returns a client with production defaults: 10s request
// timeout, 4 attempts, 150ms initial backoff capped at 2s.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTP:       &http.Client{Timeout: 10 * time.Second},
		Attempts:   4,
		Backoff:    150 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:      time.Sleep,
	}
}

// HTTPError is a non-2xx daemon response.
type HTTPError struct {
	URL        string
	StatusCode int
	Status     string
	Body       string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.URL, e.Status, e.Body)
}

// SeedBackoff replaces the jitter source with a deterministic one, so
// chaos tests replaying a seeded fault schedule see the same retry
// timings every run. Call before the first request.
func (c *Client) SeedBackoff(seed int64) {
	c.rngMu.Lock()
	c.rng = rand.New(rand.NewSource(seed))
	c.rngMu.Unlock()
}

// provablyUnsent reports whether the request never left this machine:
// only then is an automatic POST retry safe without idempotence.
func provablyUnsent(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// NotCommitted reports whether a delivery error proves the server
// committed nothing: the request never left this machine (dial
// failure), or the server answered 503 — the explicit
// nothing-was-made-durable NAK of both the single node and the fleet
// router. Only such failures are safe to retry without idempotence;
// everything else (ambiguous transport errors, the router's 502
// partial-commit verdict) may have landed.
func NotCommitted(err error) bool {
	if provablyUnsent(err) {
		return true
	}
	var he *HTTPError
	return errors.As(err, &he) && he.StatusCode == http.StatusServiceUnavailable
}

// postRetriable is the POST /ingest retry policy: dial failures and
// every 5xx except 502 (see Client and NotCommitted).
func postRetriable(err error) bool {
	if provablyUnsent(err) {
		return true
	}
	var he *HTTPError
	return errors.As(err, &he) && he.StatusCode >= 500 && he.StatusCode != http.StatusBadGateway
}

// delay computes the backoff before retry number n (0-based) with up
// to 50% additive jitter, so a recovering daemon is not hit by a
// synchronized thundering herd of compile jobs.
func (c *Client) delay(n int) time.Duration {
	d := c.Backoff << uint(n)
	if c.MaxBackoff > 0 && d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	return d + j
}

func (c *Client) warnf(format string, args ...interface{}) {
	if c.Warn != nil {
		fmt.Fprintf(c.Warn, format, args...)
	}
}

// doRetry runs make-request/send cycles under the client's retry
// policy. build must return a fresh request each call (bodies are
// consumed by failed sends). retriable classifies a delivery error —
// transport errors are passed as-is, 5xx responses as *HTTPError. The
// caller owns the response body on success.
func (c *Client) doRetry(what string, build func() (*http.Request, error), retriable func(error) bool) (*http.Response, error) {
	attempts := c.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			d := c.delay(n - 1)
			c.warnf("profdb client: %s failed (%v); retry %d/%d in %v\n", what, lastErr, n, attempts-1, d.Round(time.Millisecond))
			c.Obs.Counter("profdb_client_retries_total",
				"Request retries performed by the profdb client, by request.",
				"request", what).Inc()
			c.sleep(d)
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			lastErr = err
			if retriable(err) {
				continue
			}
			return nil, err
		}
		if resp.StatusCode >= 500 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = &HTTPError{URL: req.URL.String(), StatusCode: resp.StatusCode,
				Status: resp.Status, Body: strings.TrimSpace(string(body))}
			if retriable(lastErr) {
				continue
			}
			return nil, lastErr
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%s: giving up after %d attempt(s): %w", what, attempts, lastErr)
}

// FetchProfile GETs the merged snapshot for a fingerprint. query may
// carry extra merge parameters (halflife, stale). Idempotent: retried
// on any transport error and on 5xx.
func (c *Client) FetchProfile(fingerprint string, query url.Values) (program string, rec *Record, err error) {
	q := url.Values{}
	for k, vs := range query {
		q[k] = vs
	}
	q.Set("fingerprint", fingerprint)
	u := c.BaseURL + "/profile?" + q.Encode()
	resp, err := c.doRetry("GET /profile", func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, u, nil)
	}, func(error) bool { return true })
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", nil, &HTTPError{URL: u, StatusCode: resp.StatusCode,
			Status: resp.Status, Body: strings.TrimSpace(string(body))}
	}
	program, rec, err = ReadSnapshot(resp.Body)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", u, err)
	}
	return program, rec, nil
}

// PostSnapshot delivers one snapshot to /ingest and returns the
// daemon's ack line. Retried only on dial failures and 5xx NAKs other
// than 502; an ambiguous transport error after the body may have been
// sent — or the router's 502 partial-commit verdict — is returned
// as-is so the caller decides (the payload might already be committed,
// and profile ingestion is not idempotent).
func (c *Client) PostSnapshot(program string, rec *Record) (string, error) {
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, program, rec); err != nil {
		return "", err
	}
	payload := buf.Bytes()
	u := c.BaseURL + "/ingest"
	resp, err := c.doRetry("POST /ingest", func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		return req, nil
	}, postRetriable)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return "", &HTTPError{URL: u, StatusCode: resp.StatusCode,
			Status: resp.Status, Body: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// FetchDB GETs a node's full database dump (/db). Idempotent: retried
// on any transport error and on 5xx. The fleet router's read fan-in
// and anti-entropy sweep are built on this.
func (c *Client) FetchDB() (*DB, error) {
	u := c.BaseURL + "/db"
	resp, err := c.doRetry("GET /db", func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, u, nil)
	}, func(error) bool { return true })
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &HTTPError{URL: u, StatusCode: resp.StatusCode,
			Status: resp.Status, Body: strings.TrimSpace(string(body))}
	}
	db, err := ReadDB(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", u, err)
	}
	return db, nil
}

// PostRepair pushes an anti-entropy document to a node's /repair
// endpoint and returns how many records the node adopted. Repair is
// adopt-if-better, hence idempotent and monotone: retried on any
// transport error and on 5xx.
func (c *Client) PostRepair(push *DB) (adopted int, err error) {
	var buf bytes.Buffer
	if _, err := push.WriteTo(&buf); err != nil {
		return 0, err
	}
	payload := buf.Bytes()
	u := c.BaseURL + "/repair"
	resp, err := c.doRetry("POST /repair", func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		return req, nil
	}, func(error) bool { return true })
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return 0, &HTTPError{URL: u, StatusCode: resp.StatusCode,
			Status: resp.Status, Body: strings.TrimSpace(string(body))}
	}
	var doc struct {
		Adopted int `json:"adopted"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", u, err)
	}
	return doc.Adopted, nil
}

// Ready probes /healthz once (no retries — a probe's answer should be
// about now, not about eventually) and returns nil when the node
// reports it can durably ack ingests.
func (c *Client) Ready() error {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &HTTPError{URL: req.URL.String(), StatusCode: resp.StatusCode,
			Status: resp.Status, Body: strings.TrimSpace(string(body))}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
