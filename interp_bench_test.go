// Interpreter and profiling-pipeline microbenchmarks. These track the
// hot-loop dispatch cost (ns and allocations per run) and the end-to-end
// profiling throughput that every table regeneration pays, so interpreter
// regressions show up in the bench trajectory alongside the paper's
// result-shape metrics.
package inlinec_test

import (
	"fmt"
	"testing"

	"inlinec/internal/bench"
)

// BenchmarkInterpDispatch measures the raw interpreter hot loop on the
// espresso benchmark — the suite's most dispatch-heavy program (tight
// cube-cover loops, high dynamic IL per call). ReportAllocs makes the
// per-call frame/argument allocation behaviour part of the metric.
func BenchmarkInterpDispatch(b *testing.B) {
	bm := bench.Get("espresso")
	p, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	var il int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := p.Run(bm.Inputs[0])
		if err != nil {
			b.Fatal(err)
		}
		il = out.Stats.IL
	}
	b.ReportMetric(float64(il)*float64(b.N)/b.Elapsed().Seconds(), "IL/s")
}

// BenchmarkProfileSuite measures the multi-run profiling pipeline (the
// paper's "average run-time statistics over many runs") on one benchmark
// at several parallelism levels.
func BenchmarkProfileSuite(b *testing.B) {
	bm := bench.Get("wc")
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			p, err := bm.Compile()
			if err != nil {
				b.Fatal(err)
			}
			p.Parallelism = par
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ProfileInputs(bm.Inputs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
