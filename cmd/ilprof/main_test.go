package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inlinec"
)

const prog = `
extern int printf(char *fmt, ...);
int work(int x) { return x * x; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i++) s += work(i);
    printf("%d\n", s);
    return 0;
}
`

func runCLI(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestProfilerBasic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(prog), 0o644)
	code, out, errb := runCLI(t, []string{p}, "")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if !strings.Contains(out, "work") || !strings.Contains(out, "25.0") {
		t.Errorf("profile output = %q", out)
	}
}

func TestProfilerSites(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(prog), 0o644)
	code, out, _ := runCLI(t, []string{"-sites", p}, "")
	if code != 0 {
		t.Fatal("nonzero exit")
	}
	if !strings.Contains(out, "call sites") || !strings.Contains(out, "main") {
		t.Errorf("sites output = %q", out)
	}
}

func TestProfilerMultipleInputsAndOutputFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "cat.c")
	os.WriteFile(p, []byte(`
extern int getchar();
int seen;
int note(int c) { seen++; return c; }
int main() {
    int c;
    while ((c = getchar()) != -1) note(c);
    return 0;
}
`), 0o644)
	in1 := filepath.Join(dir, "a.txt")
	in2 := filepath.Join(dir, "b.txt")
	os.WriteFile(in1, []byte("xx"), 0o644)     // 2 calls
	os.WriteFile(in2, []byte("yyyyyy"), 0o644) // 6 calls
	profPath := filepath.Join(dir, "out.prof")
	code, out, errb := runCLI(t, []string{"-in", in1, "-in", in2, "-o", profPath, p}, "")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	// Averaged over two runs: note entered (2+6)/2 = 4 times.
	if !strings.Contains(out, "2 run(s)") {
		t.Errorf("runs missing from %q", out)
	}
	data, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	prof, err := inlinec.ReadProfile(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := prof.FuncWeight("note"); got != 4 {
		t.Errorf("note weight = %v, want 4", got)
	}
}

func TestProfilerErrors(t *testing.T) {
	if code, _, _ := runCLI(t, nil, ""); code == 0 {
		t.Error("no args must fail")
	}
	if code, _, _ := runCLI(t, []string{"nope.c"}, ""); code == 0 {
		t.Error("missing file must fail")
	}
}

// TestProfilerDatabaseFlow exercises the database life cycle end to end
// through the CLI: profile with -db twice (two generations), inspect with
// show, and read back a merged legacy profile with merge.
func TestProfilerDatabaseFlow(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(prog), 0o644)
	dbPath := filepath.Join(dir, "p.profdb")

	for i := 0; i < 2; i++ {
		code, _, errb := runCLI(t, []string{"-db", dbPath, p}, "")
		if code != 0 {
			t.Fatalf("profile+ingest %d: exit = %d (%s)", i, code, errb)
		}
		if !strings.Contains(errb, "ingested 1 run(s)") {
			t.Errorf("ingest report missing: %q", errb)
		}
	}

	code, out, errb := runCLI(t, []string{"show", "-db", dbPath}, "")
	if code != 0 {
		t.Fatalf("show: exit = %d (%s)", code, errb)
	}
	if !strings.Contains(out, "2 record(s), 2 run(s), newest gen 1") {
		t.Errorf("show output = %q", out)
	}
	if !strings.Contains(out, "gen 0") || !strings.Contains(out, "gen 1") {
		t.Errorf("show must list both generations: %q", out)
	}

	// -halflife 0 disables age decay, so the merge is the exact integer
	// sum of both generations.
	profPath := filepath.Join(dir, "merged.prof")
	code, out, errb = runCLI(t, []string{"merge", "-db", dbPath, "-halflife", "0", "-o", profPath, p}, "")
	if code != 0 {
		t.Fatalf("merge: exit = %d (%s)", code, errb)
	}
	if errb != "" {
		t.Errorf("merge on identical source must be clean, got %q", errb)
	}
	if !strings.Contains(out, "work") {
		t.Errorf("merged profile output = %q", out)
	}
	data, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := inlinec.ReadProfile(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("merge -o wrote an unreadable legacy profile: %v", err)
	}
	if merged.Runs != 2 {
		t.Errorf("merged runs = %d, want 2", merged.Runs)
	}
	if merged.FuncWeight("work") != 25 {
		t.Errorf("work weight = %v, want the per-run average 25", merged.FuncWeight("work"))
	}
}

// TestProfilerMixedRateWarning: publishing sampled runs into a
// generation that already holds exactly-counted data (or vice versa)
// must warn that the combined counts become mixed-rate, while same-rate
// republishing stays silent.
func TestProfilerMixedRateWarning(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(prog), 0o644)
	dbPath := filepath.Join(dir, "p.profdb")

	// First publish: exact counts into gen 0.
	if code, _, errb := runCLI(t, []string{"-db", dbPath, "-gen", "0", p}, ""); code != 0 {
		t.Fatalf("exact ingest: exit = %d (%s)", code, errb)
	}
	// Same rate again: no warning.
	if code, _, errb := runCLI(t, []string{"-db", dbPath, "-gen", "0", p}, ""); code != 0 {
		t.Fatalf("exact re-ingest: exit = %d (%s)", code, errb)
	} else if strings.Contains(errb, "mixed-rate") {
		t.Errorf("same-rate republish must not warn: %q", errb)
	}
	// Sampled runs into the same generation: warn.
	code, _, errb := runCLI(t, []string{"-db", dbPath, "-gen", "0", "-profile-mode", "sampled", "-samplerate", "4", p}, "")
	if code != 0 {
		t.Fatalf("sampled ingest: exit = %d (%s)", code, errb)
	}
	if !strings.Contains(errb, "mixed-rate") || !strings.Contains(errb, "exactly-counted") || !strings.Contains(errb, "1-in-4 sampled") {
		t.Errorf("mixed-rate warning missing or incomplete: %q", errb)
	}
	// show must surface the record's now-mixed rate marker.
	_, out, _ := runCLI(t, []string{"show", "-db", dbPath}, "")
	if !strings.Contains(out, "[mixed-rate]") {
		t.Errorf("show output lacks the mixed-rate marker: %q", out)
	}
}

// TestProfilerMergeStaleSource: a database built from one source applied
// to an edited source must report staleness instead of misattributing.
func TestProfilerMergeStaleSource(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.c")
	os.WriteFile(v1, []byte(prog), 0o644)
	v2 := filepath.Join(dir, "v2.c")
	os.WriteFile(v2, []byte(strings.Replace(prog, "int work(int x) { return x * x; }",
		"int twice(int x) { return x + x; }\nint work(int x) { return twice(x) * x; }", 1)), 0o644)
	dbPath := filepath.Join(dir, "p.profdb")

	if code, _, errb := runCLI(t, []string{"-db", dbPath, v1}, ""); code != 0 {
		t.Fatalf("ingest v1: %s", errb)
	}
	code, out, errb := runCLI(t, []string{"merge", "-db", dbPath, "-stale", "1", v2}, "")
	if code != 0 {
		t.Fatalf("merge v2: exit = %d (%s)", code, errb)
	}
	if !strings.Contains(errb, "1 stale down-weighted") {
		t.Errorf("stale record not reported: %q", errb)
	}
	if !strings.Contains(out, "work") {
		t.Errorf("merged profile output = %q", out)
	}
}

// TestProfilerDiff compares two program versions stored in one database.
func TestProfilerDiff(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.c")
	os.WriteFile(v1, []byte(prog), 0o644)
	v2 := filepath.Join(dir, "v2.c")
	os.WriteFile(v2, []byte(strings.Replace(prog, "i < 25", "i < 50", 1)), 0o644)
	dbPath := filepath.Join(dir, "p.profdb")

	if code, _, errb := runCLI(t, []string{"-db", dbPath, v1}, ""); code != 0 {
		t.Fatalf("ingest v1: %s", errb)
	}
	if code, _, errb := runCLI(t, []string{"-db", dbPath, v2}, ""); code != 0 {
		t.Fatalf("ingest v2: %s", errb)
	}

	_, out, _ := runCLI(t, []string{"show", "-db", dbPath}, "")
	var fps []string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 2 && f[1] == "gen" {
			fps = append(fps, f[0])
		}
	}
	if len(fps) != 2 {
		t.Fatalf("want 2 fingerprints in show output, got %v from %q", fps, out)
	}

	code, out, errb := runCLI(t, []string{"diff", "-db", dbPath, fps[0], fps[1]}, "")
	if code != 0 {
		t.Fatalf("diff: exit = %d (%s)", code, errb)
	}
	// The loop bound doubled, so the main->work arc weight changed; the
	// shared site must show up with its stable key, under either order.
	if !strings.Contains(out, "main work 0") {
		t.Errorf("diff output lacks the shared main->work site: %q", out)
	}
	if !strings.Contains(out, "25.0") || !strings.Contains(out, "50.0") {
		t.Errorf("diff output lacks the per-run weights: %q", out)
	}
}

// TestProfilerTruncatedWarning: a program exiting mid-call-chain must
// trigger the stderr warning.
func TestProfilerTruncatedWarning(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "p.c")
	os.WriteFile(p, []byte(`
extern void exit(int c);
int leave(int c) { exit(c); return 0; }
int main() { leave(3); return 0; }
`), 0o644)
	code, out, errb := runCLI(t, []string{p}, "")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if !strings.Contains(errb, "truncated") {
		t.Errorf("stderr warning missing: %q", errb)
	}
	if !strings.Contains(out, "1 of 1 run(s) truncated") {
		t.Errorf("profile summary missing truncation count: %q", out)
	}

	// And the converse: a run that unwinds normally (returns == calls+1,
	// counting main's own ret) must not be flagged.
	clean := filepath.Join(dir, "clean.c")
	os.WriteFile(clean, []byte(`
int leave(int c) { return c; }
int main() { leave(3); return 0; }
`), 0o644)
	code, out, errb = runCLI(t, []string{clean}, "")
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, errb)
	}
	if strings.Contains(errb, "truncated") || strings.Contains(out, "truncated") {
		t.Errorf("clean run spuriously flagged truncated:\nstderr %q\nstdout %q", errb, out)
	}
}

// TestProfilerVerbErrors: each verb validates its arguments.
func TestProfilerVerbErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"merge"},             // no -db
		{"merge", "-db", "x"}, // no source or fingerprint
		{"show"},              // no -db
		{"diff", "-db", "x"},  // missing fingerprints
		{"merge", "-db", filepath.Join(dir, "empty.profdb"), "-fingerprint", "ffff"}, // no data
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args, ""); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}
