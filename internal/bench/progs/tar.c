/* tar - a miniature archiver, after the UNIX tar benchmark
 * ("save/extract files"). The command file "tar.cmd" holds either
 * "c name name ..." (create archive "archive" from the named files) or
 * "x" (extract the archive back into the file system). Headers carry
 * name, size, and a checksum over the header bytes; data is copied byte
 * by byte through small helpers, which dominate the dynamic call
 * profile. */

extern int open(char *path, int mode);
extern int close(int fd);
extern int getc(int fd);
extern int putc(int c, int fd);
extern int read(int fd, char *buf, int n);
extern int write(int fd, char *buf, int n);
extern int printf(char *fmt, ...);

enum { NAMELEN = 32, HDRLEN = 48, TARBLK = 512 };

int files_done;
int bytes_copied;
int opt_verbose;   /* cold: detailed listing */

/* ---- blocked I/O, as tar's 512-byte tape blocks (hot) ---- */

char rblock[TARBLK];
int rlen;
int rpos;
int rfd;

void read_bind(int fd) {
    rfd = fd;
    rlen = 0;
    rpos = 0;
}

int read_byte(int fd) {
    if (fd != rfd) return getc(fd); /* unblocked path for side files */
    if (rpos >= rlen) {
        rlen = read(rfd, rblock, TARBLK);
        rpos = 0;
        if (rlen <= 0) return -1;
    }
    return rblock[rpos++];
}

char wblock[TARBLK];
int wlen;
int wfd;

void write_bind(int fd) {
    wfd = fd;
    wlen = 0;
}

void write_flush() {
    if (wlen > 0) write(wfd, wblock, wlen);
    wlen = 0;
}

void write_byte(int fd, int c) {
    if (fd != wfd) {
        putc(c, fd);
        bytes_copied++;
        return;
    }
    if (wlen >= TARBLK) write_flush();
    wblock[wlen++] = c;
    bytes_copied++;
}

void copy_bytes(int from, int to, int n) {
    int i, c;
    for (i = 0; i < n; i++) {
        c = read_byte(from);
        if (c == -1) break;
        write_byte(to, c);
    }
}

/* ---- header encoding: name[NAMELEN], size as 8 digits, checksum as 8
 * digits, all bytes included in the sum with checksum field as spaces */

int checksum_add(int sum, int c) { return (sum + c) & 0xffffff; }

void put_num(char *buf, int off, int v) {
    int i;
    for (i = 7; i >= 0; i--) {
        buf[off + i] = '0' + v % 10;
        v = v / 10;
    }
}

int get_num(char *buf, int off) {
    int i, v;
    v = 0;
    for (i = 0; i < 8; i++) {
        v = v * 10 + (buf[off + i] - '0');
    }
    return v;
}

int header_sum(char *hdr) {
    int i, sum;
    sum = 0;
    for (i = 0; i < HDRLEN; i++) {
        if (i >= NAMELEN + 8 && i < NAMELEN + 16) {
            sum = checksum_add(sum, ' ');
        } else {
            sum = checksum_add(sum, hdr[i]);
        }
    }
    return sum;
}

void write_header(int fd, char *name, int size) {
    char hdr[HDRLEN];
    int i;
    for (i = 0; i < HDRLEN; i++) hdr[i] = 0;
    for (i = 0; name[i] && i < NAMELEN - 1; i++) hdr[i] = name[i];
    put_num(hdr, NAMELEN, size);
    put_num(hdr, NAMELEN + 8, header_sum(hdr));
    for (i = 0; i < HDRLEN; i++) write_byte(fd, hdr[i]);
}

/* returns size, or -1 at end of archive / bad checksum */
int read_header(int fd, char *name) {
    char hdr[HDRLEN];
    int i, c, size, sum;
    for (i = 0; i < HDRLEN; i++) {
        c = read_byte(fd);
        if (c == -1) return -1;
        hdr[i] = c;
    }
    for (i = 0; i < NAMELEN - 1; i++) name[i] = hdr[i];
    name[NAMELEN - 1] = '\0';
    size = get_num(hdr, NAMELEN);
    sum = get_num(hdr, NAMELEN + 8);
    if (sum != header_sum(hdr)) {
        printf("tar: bad checksum for %s\n", name);
        return -1;
    }
    return size;
}

/* ---- size probe: read the file once to learn its length ---- */

int file_size(char *name) {
    int fd, n;
    fd = open(name, 0);
    if (fd < 0) return -1;
    n = 0;
    while (read_byte(fd) != -1) n++;
    close(fd);
    return n;
}

/* ---- create / extract ---- */

void archive_file(int out, char *name) {
    int in, size;
    size = file_size(name);
    if (size < 0) {
        printf("tar: cannot open %s\n", name);
        return;
    }
    write_header(out, name, size);
    in = open(name, 0);
    copy_bytes(in, out, size);
    close(in);
    files_done++;
    printf("a %s %d\n", name, size);
}

void extract_all(int in) {
    char name[NAMELEN];
    int out, size;
    for (;;) {
        size = read_header(in, name);
        if (size < 0) break;
        out = open(name, 1);
        write_bind(out);
        copy_bytes(in, out, size);
        write_flush();
        write_bind(-1);
        close(out);
        files_done++;
        printf("x %s %d\n", name, size);
    }
}

/* ---- cold: 'V' verify mode re-walks the archive, recomputing header
 * checksums and summing the data bytes per file ---- */

int data_checksum(int in, int size) {
    int i, c, sum;
    sum = 0;
    for (i = 0; i < size; i++) {
        c = read_byte(in);
        if (c == -1) return -1;
        sum = checksum_add(sum, c);
    }
    return sum;
}

int name_sane(char *name) {
    int i;
    if (name[0] == '\0' || name[0] == '/') return 0;
    for (i = 0; name[i]; i++) {
        if (name[i] == '.' && name[i + 1] == '.') return 0;
    }
    return 1;
}

void verify_all(int in) {
    char name[NAMELEN];
    int size, sum, ok, bad;
    ok = 0;
    bad = 0;
    for (;;) {
        size = read_header(in, name);
        if (size < 0) break;
        if (!name_sane(name)) {
            printf("tar: suspicious name %s\n", name);
            bad++;
        }
        sum = data_checksum(in, size);
        if (sum < 0) {
            printf("tar: truncated data for %s\n", name);
            bad++;
            break;
        }
        printf("ok %s %d sum=%d\n", name, size, sum);
        ok++;
    }
    printf("tar: verify: %d ok, %d bad\n", ok, bad);
}

/* cold: 't' listing mode walks headers and skips the data */
void list_all(int in) {
    char name[NAMELEN];
    int size, i;
    for (;;) {
        size = read_header(in, name);
        if (size < 0) break;
        if (opt_verbose) printf("-rw-r--r-- %8d %s\n", size, name);
        else printf("%s\n", name);
        for (i = 0; i < size; i++) {
            if (read_byte(in) == -1) return;
        }
        files_done++;
    }
}

/* ---- command parsing ---- */

int read_word(int fd, char *out, int max) {
    int c, n;
    n = 0;
    for (;;) {
        c = getc(fd);
        if (c == -1) break;
        if (c == ' ' || c == '\n') {
            if (n > 0) break;
            continue;
        }
        if (n < max - 1) out[n++] = c;
    }
    out[n] = '\0';
    return n;
}

int main() {
    char word[NAMELEN];
    int cmdfd, arfd, mode;
    files_done = 0;
    bytes_copied = 0;
    opt_verbose = 0;
    rfd = -1;
    wfd = -1;
    cmdfd = open("tar.cmd", 0);
    if (cmdfd < 0) { printf("tar: no command\n"); return 2; }
    if (read_word(cmdfd, word, NAMELEN) == 0) { close(cmdfd); return 2; }
    mode = word[0];
    if (word[1] == 'v') opt_verbose = 1;
    if (mode == 'c') {
        arfd = open("archive", 1);
        write_bind(arfd);
        while (read_word(cmdfd, word, NAMELEN) > 0) {
            archive_file(arfd, word);
        }
        write_flush();
        close(arfd);
    } else if (mode == 't') {
        arfd = open("archive", 0);
        if (arfd < 0) { printf("tar: no archive\n"); close(cmdfd); return 2; }
        read_bind(arfd);
        list_all(arfd);
        close(arfd);
    } else if (mode == 'V') {
        arfd = open("archive", 0);
        if (arfd < 0) { printf("tar: no archive\n"); close(cmdfd); return 2; }
        read_bind(arfd);
        verify_all(arfd);
        close(arfd);
    } else {
        arfd = open("archive", 0);
        if (arfd < 0) { printf("tar: no archive\n"); close(cmdfd); return 2; }
        read_bind(arfd);
        extract_all(arfd);
        close(arfd);
    }
    close(cmdfd);
    printf("tar: %d files, %d bytes\n", files_done, bytes_copied);
    return 0;
}
