package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"inlinec/internal/obs"
	"inlinec/internal/profdb"
)

// RouterOptions tunes the router's per-peer clients. The zero value is
// production-reasonable; tests tighten timeouts, zero the backoff, and
// seed the jitter.
type RouterOptions struct {
	// Transport, when non-nil, underlies every peer request — the hook
	// the chaos network injector plugs into.
	Transport http.RoundTripper
	// Timeout bounds each peer request (default 10s).
	Timeout time.Duration
	// Attempts bounds tries per peer request (default 3).
	Attempts int
	// Backoff seeds the per-retry delay (default 100ms; set negative
	// for literally zero backoff in tests).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 1s).
	MaxBackoff time.Duration
	// Seed, when non-zero, makes every client's retry jitter
	// deterministic.
	Seed int64
	// Warn receives one line per peer-request retry.
	Warn io.Writer
}

// Router is the stateless ingest/read front end of the fleet. It holds
// no profile data: every POST /ingest fans out to the ring owners of
// the record's fingerprint and acks only after ALL of them acked
// (which each does only after its WAL fsync — the single-node ack
// barrier, promoted to a replication quorum), and every GET /profile
// fans in all reachable nodes' databases, combines per-key winners,
// and merges exactly as a single node holding all the data would.
// Being stateless, any number of router instances can front the same
// fleet; given the same peer list they compute identical rings.
type Router struct {
	ring    *Ring
	clients map[string]*profdb.Client
	obs     *obs.Registry
	logw    io.Writer

	acked    *obs.Counter
	naks     *obs.Counter
	partial  *obs.Counter
	rejected *obs.Counter
	reads    *obs.Counter
	readErrs *obs.Counter
	ingestH  *obs.Histogram
	readH    *obs.Histogram
	pushed   *obs.Counter
	adopted  *obs.Counter
	sweeps   *obs.Counter
}

// NewRouter builds a router over peers with the given replication
// factor (clamped to [1, len(peers)] by the ring).
func NewRouter(peers []string, replicas int, opts RouterOptions) (*Router, error) {
	ring, err := NewRing(peers, replicas)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.Backoff == 0 {
		opts.Backoff = 100 * time.Millisecond
	} else if opts.Backoff < 0 {
		opts.Backoff = 0
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = time.Second
	}
	reg := obs.NewRegistry()
	rt := &Router{
		ring:    ring,
		clients: make(map[string]*profdb.Client, len(ring.Peers())),
		obs:     reg,
		acked: reg.Counter("fleet_router_ingests_total",
			"Ingests routed, by outcome.", "result", "acked"),
		naks: reg.Counter("fleet_router_ingests_total",
			"Ingests routed, by outcome.", "result", "nak"),
		partial: reg.Counter("fleet_router_ingests_total",
			"Ingests routed, by outcome.", "result", "partial"),
		rejected: reg.Counter("fleet_router_ingests_total",
			"Ingests routed, by outcome.", "result", "rejected"),
		reads: reg.Counter("fleet_router_reads_total",
			"Merged reads served, by outcome.", "result", "ok"),
		readErrs: reg.Counter("fleet_router_reads_total",
			"Merged reads served, by outcome.", "result", "error"),
		ingestH: reg.Histogram("fleet_router_ingest_seconds",
			"Wall time of one routed ingest, including every replica's fsync.",
			obs.DefBuckets),
		readH: reg.Histogram("fleet_router_read_seconds",
			"Wall time of one fan-in merged read.", obs.DefBuckets),
		pushed: reg.Counter("fleet_router_repair_pushed_total",
			"Records pushed to lagging replicas by anti-entropy sweeps."),
		adopted: reg.Counter("fleet_router_repair_adopted_total",
			"Pushed records the receiving nodes actually adopted."),
		sweeps: reg.Counter("fleet_router_repair_sweeps_total",
			"Anti-entropy sweeps run."),
	}
	reg.Gauge("fleet_router_peers", "Storage nodes in the ring.").Set(float64(len(ring.Peers())))
	reg.Gauge("fleet_router_replicas", "Effective replication factor.").Set(float64(ring.Replicas()))
	for i, p := range ring.Peers() {
		c := profdb.NewClient(p)
		c.HTTP = &http.Client{Timeout: opts.Timeout, Transport: opts.Transport}
		c.Attempts = opts.Attempts
		c.Backoff = opts.Backoff
		c.MaxBackoff = opts.MaxBackoff
		c.Warn = opts.Warn
		c.Obs = reg
		if opts.Seed != 0 {
			c.SeedBackoff(opts.Seed + int64(i))
		}
		rt.clients[p] = c
	}
	return rt, nil
}

// SetLog directs one JSON request-log line per routed request to w.
func (rt *Router) SetLog(w io.Writer) { rt.logw = w }

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.obs }

// Ring exposes the placement ring (read-only).
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler returns the router's HTTP API, wrapped in the request-log
// middleware. The surface mirrors a single node's, so clients need not
// know whether they talk to one ilprofd or a fleet.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", rt.handleIngest)
	mux.HandleFunc("/profile", rt.handleProfile)
	mux.HandleFunc("/db", rt.handleDB)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/repair", rt.handleRepair)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return obs.NewRequestLog(rt.logw, rt.obs,
		"/ingest", "/profile", "/db", "/healthz", "/repair", "/stats", "/metrics").Wrap(mux)
}

// handleIngest is the quorum write path. The record's ring owners each
// receive a copy; the client is acked 200 only when every owner
// committed (all-replica quorum: with accumulating counters, anything
// less would leave acked data a lagging replica can never prove it is
// missing — see repair.go). Zero commits with every failure provably
// not-committed is a 503: safe to retry. Anything else — a partial
// commit, or any ambiguous failure — is a 502: a retry could
// double-count on the replicas that did commit, so the client must not.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	program, rec, err := profdb.ReadSnapshot(body)
	if err != nil {
		rt.rejected.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	owners := rt.ring.Owners(rec.Fingerprint)
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, peer := range owners {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			_, errs[i] = rt.clients[peer].PostSnapshot(program, rec)
		}(i, peer)
	}
	wg.Wait()
	rt.ingestH.Observe(time.Since(start).Seconds())

	committed := 0
	allNotCommitted := true
	var fails []string
	for i, err := range errs {
		if err == nil {
			committed++
			continue
		}
		if !provedNotCommitted(err) {
			allNotCommitted = false
		}
		fails = append(fails, fmt.Sprintf("%s: %v", owners[i], err))
	}
	switch {
	case committed == len(owners):
		rt.acked.Inc()
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "ok: %d run(s) replicated to %d node(s) for %s gen %d\n",
			rec.Runs, len(owners), rec.Fingerprint, rec.Gen)
	case committed == 0 && allNotCommitted:
		rt.naks.Inc()
		http.Error(w, "fleet: no replica committed (safe to retry): "+strings.Join(fails, "; "),
			http.StatusServiceUnavailable)
	default:
		rt.partial.Inc()
		http.Error(w, fmt.Sprintf("fleet: %d/%d replicas committed (do NOT retry): %s",
			committed, len(owners), strings.Join(fails, "; ")), http.StatusBadGateway)
	}
}

// provedNotCommitted classifies a replica-post failure after the
// per-peer client has exhausted its own retries. The client's final
// error wraps the last attempt's cause; only a dial failure or an
// explicit 503 NAK proves the node holds nothing.
func provedNotCommitted(err error) bool { return profdb.NotCommitted(err) }

// gather fetches every peer's database in parallel. Unreachable peers
// are simply absent from the result.
func (rt *Router) gather() map[string]*profdb.DB {
	peers := rt.ring.Peers()
	dbs := make([]*profdb.DB, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			db, err := rt.clients[peer].FetchDB()
			if err == nil {
				dbs[i] = db
			}
		}(i, peer)
	}
	wg.Wait()
	out := make(map[string]*profdb.DB, len(peers))
	for i, peer := range peers {
		if dbs[i] != nil {
			out[peer] = dbs[i]
		}
	}
	return out
}

// fleetView gathers all reachable databases and combines them into the
// per-key-winner view, requiring full shard coverage (every replica
// set must have at least one reachable member — otherwise some keys
// would silently be missing and the merged read would not be
// read-your-writes).
func (rt *Router) fleetView() (*profdb.DB, map[string]*profdb.DB, error) {
	dbs := rt.gather()
	if !rt.ring.Covered(func(peer string) bool { _, ok := dbs[peer]; return ok }) {
		var down []string
		for _, p := range rt.ring.Peers() {
			if _, ok := dbs[p]; !ok {
				down = append(down, p)
			}
		}
		return nil, dbs, fmt.Errorf("fleet: shard coverage incomplete, unreachable: %s",
			strings.Join(down, ", "))
	}
	ordered := make([]*profdb.DB, 0, len(dbs))
	for _, p := range rt.ring.Peers() {
		if db, ok := dbs[p]; ok {
			ordered = append(ordered, db)
		}
	}
	combined, err := combineWinners(ordered)
	if err != nil {
		return nil, dbs, err
	}
	return combined, dbs, nil
}

// handleProfile serves the fleet-merged snapshot: fan-in, winner
// combine, then the identical merge and rendering a single node uses —
// which is what makes the routed read byte-identical to a single-node
// read of the same data.
func (rt *Router) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	fp := r.URL.Query().Get("fingerprint")
	if fp == "" {
		http.Error(w, "missing fingerprint parameter", http.StatusBadRequest)
		return
	}
	params, err := mergeParamsFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	combined, _, err := rt.fleetView()
	rt.readH.Observe(time.Since(start).Seconds())
	if err != nil {
		rt.readErrs.Inc()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	rt.reads.Inc()
	merged, stats := combined.Merge(fp, params)
	writeMergedSnapshot(w, fp, combined.Program, merged, stats)
}

// handleDB dumps the combined fleet view in ILPROFDB form.
func (rt *Router) handleDB(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	combined, _, err := rt.fleetView()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	combined.WriteTo(w)
}

// handleHealthz is the fleet membership probe: every peer's /healthz,
// in parallel, plus the coverage verdict. 200 means a full-fleet read
// is possible right now.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	peers := rt.ring.Peers()
	ready := make([]bool, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			ready[i] = rt.clients[peer].Ready() == nil
		}(i, peer)
	}
	wg.Wait()
	peerMap := make(map[string]bool, len(peers))
	readyCount := 0
	for i, p := range peers {
		peerMap[p] = ready[i]
		if ready[i] {
			readyCount++
		}
	}
	covered := rt.ring.Covered(func(peer string) bool { return peerMap[peer] })
	rt.obs.Gauge("fleet_router_peers_ready",
		"Peers whose readiness probe passed at the last /healthz.").Set(float64(readyCount))
	doc := struct {
		Ready    bool            `json:"ready"`
		Mode     string          `json:"mode"`
		Covered  bool            `json:"covered"`
		Replicas int             `json:"replicas"`
		Peers    map[string]bool `json:"peers"`
	}{Ready: covered, Mode: "router", Covered: covered, Replicas: rt.ring.Replicas(), Peers: peerMap}
	w.Header().Set("Content-Type", "application/json")
	if !covered {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(&doc)
}

// SweepResult reports one anti-entropy pass.
type SweepResult struct {
	// Reachable counts peers whose database could be fetched.
	Reachable int `json:"reachable"`
	// Pushed counts winner records sent to replicas holding a losing
	// (or missing) copy.
	Pushed int `json:"pushed"`
	// Adopted counts pushed records the receivers accepted.
	Adopted int `json:"adopted"`
	// Converged is true when every peer was reachable and nothing
	// needed pushing: the fleet is byte-identical to the winner view.
	Converged bool `json:"converged"`
}

// RepairSweep runs one anti-entropy pass: fetch every reachable
// database, compute per-key winners, and push each winner to the
// reachable owners whose copy loses. Adoption is adopt-if-better, so
// sweeps are idempotent and monotone; repeating until Converged drains
// all divergence the current membership can express.
func (rt *Router) RepairSweep() (*SweepResult, error) {
	rt.sweeps.Inc()
	done := rt.obs.StartSpan("fleet_repair_sweep")
	defer done()
	dbs := rt.gather()
	res := &SweepResult{Reachable: len(dbs)}
	if len(dbs) == 0 {
		return res, fmt.Errorf("fleet: no peer reachable")
	}
	ordered := make([]*profdb.DB, 0, len(dbs))
	for _, p := range rt.ring.Peers() {
		if db, ok := dbs[p]; ok {
			ordered = append(ordered, db)
		}
	}
	combined, err := combineWinners(ordered)
	if err != nil {
		return res, err
	}
	pushes := make(map[string]*profdb.DB)
	for _, key := range combined.SortedKeys() {
		winner := combined.Records[key]
		for _, owner := range rt.ring.Owners(key.Fingerprint) {
			local, reachable := dbs[owner]
			if !reachable || !betterRecord(winner, local.Records[key]) {
				continue
			}
			push := pushes[owner]
			if push == nil {
				push = profdb.NewDB(combined.Program)
				pushes[owner] = push
			}
			push.Records[key] = winner
			res.Pushed++
		}
	}
	peersToPush := make([]string, 0, len(pushes))
	for p := range pushes {
		peersToPush = append(peersToPush, p)
	}
	sort.Strings(peersToPush)
	adopted := make([]int, len(peersToPush))
	errs := make([]error, len(peersToPush))
	var wg sync.WaitGroup
	for i, peer := range peersToPush {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			adopted[i], errs[i] = rt.clients[peer].PostRepair(pushes[peer])
		}(i, peer)
	}
	wg.Wait()
	var pushErrs []string
	for i := range peersToPush {
		res.Adopted += adopted[i]
		if errs[i] != nil {
			pushErrs = append(pushErrs, fmt.Sprintf("%s: %v", peersToPush[i], errs[i]))
		}
	}
	rt.pushed.Add(int64(res.Pushed))
	rt.adopted.Add(int64(res.Adopted))
	res.Converged = len(dbs) == len(rt.ring.Peers()) && res.Pushed == 0
	if len(pushErrs) > 0 {
		return res, fmt.Errorf("fleet: repair pushes failed: %s", strings.Join(pushErrs, "; "))
	}
	return res, nil
}

// handleRepair triggers one sweep. Operators (and the CI smoke test)
// POST it in a loop until the response says converged.
func (rt *Router) handleRepair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	res, err := rt.RepairSweep()
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]interface{}{"error": err.Error(), "sweep": res})
		return
	}
	json.NewEncoder(w).Encode(res)
}

// routerStats is the GET /stats document.
type routerStats struct {
	Mode          string `json:"mode"`
	Peers         int    `json:"peers"`
	Replicas      int    `json:"replicas"`
	IngestsAcked  int64  `json:"ingests_acked"`
	IngestsNAK    int64  `json:"ingests_nak"`
	IngestsPartal int64  `json:"ingests_partial"`
	IngestsRej    int64  `json:"ingests_rejected"`
	ReadsOK       int64  `json:"reads_ok"`
	ReadsErr      int64  `json:"reads_error"`
	RepairSweeps  int64  `json:"repair_sweeps"`
	RepairPushed  int64  `json:"repair_pushed"`
	RepairAdopted int64  `json:"repair_adopted"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	doc := routerStats{
		Mode:          "router",
		Peers:         len(rt.ring.Peers()),
		Replicas:      rt.ring.Replicas(),
		IngestsAcked:  rt.acked.Value(),
		IngestsNAK:    rt.naks.Value(),
		IngestsPartal: rt.partial.Value(),
		IngestsRej:    rt.rejected.Value(),
		ReadsOK:       rt.reads.Value(),
		ReadsErr:      rt.readErrs.Value(),
		RepairSweeps:  rt.sweeps.Value(),
		RepairPushed:  rt.pushed.Value(),
		RepairAdopted: rt.adopted.Value(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&doc)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.obs.WritePrometheus(w)
}
