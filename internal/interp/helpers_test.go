package interp

import (
	"strings"

	"inlinec/internal/ast"
	"inlinec/internal/ir"
	"inlinec/internal/irgen"
	"inlinec/internal/parser"
	"inlinec/internal/sema"
)

// parserParse and buildMachine are thin non-testing.T helpers for tests
// that need to observe errors instead of failing fast.
func parserParse(src string) (*ast.File, error) {
	return parser.Parse("t.c", src)
}

func buildMachine(file *ast.File) (*Machine, error) {
	prog, err := sema.Check(file)
	if err != nil {
		return nil, err
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		return nil, err
	}
	return NewMachine(mod, NewEnv(), Options{})
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }

// mustLower checks and lowers a parsed file, for tests that need custom
// machine options.
func mustLower(t testingT, file *ast.File) (*sema.Program, *ir.Module) {
	prog, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	mod, err := irgen.Generate(prog)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return prog, mod
}

// testingT is the subset of *testing.T the helpers need.
type testingT interface {
	Fatalf(format string, args ...any)
}
