package inline

import (
	"fmt"

	"inlinec/internal/ir"
)

// spliceDevirtCall rewrites the OpCallPtr at idx into a guarded
// test-and-inline of target:
//
//	rA = addrf &target
//	rC = eq fp, rA
//	br rC, Linl
//	(dst =) callptr fp(args)   ; original site, original CallID
//	jump Lcont
//	Linl:
//	  <inlined body of target>
//	Lcont:
//
// The guard compiles to plain IL — both interpreter engines execute it
// through their ordinary dispatch, with no new opcodes. The fallback
// CALLPTR keeps the site's CallID, so profiling the transformed module
// counts exactly the calls that missed the dominant target.
func spliceDevirtCall(fn *ir.Func, idx int, target *ir.Func) error {
	call := fn.Code[idx]
	if call.Op != ir.OpCallPtr {
		return fmt.Errorf("instruction %d is %s, not a callptr", idx, call.Op)
	}
	if len(call.Args) < target.NumParams {
		return fmt.Errorf("callptr has %d args, target %s wants %d", len(call.Args), target.Name, target.NumParams)
	}

	body, contLabel := inlineBody(fn, &call, target)
	inlLabel := fn.NewLabel()
	addrReg := fn.NewReg()
	cmpReg := fn.NewReg()

	fb := call
	fb.Args = append([]ir.Value(nil), call.Args...)
	head := []ir.Instr{
		{Op: ir.OpAddrF, Dst: addrReg, Sym: target.Name, Pos: call.Pos},
		{Op: ir.OpEq, Dst: cmpReg, A: call.A, B: ir.R(addrReg), Pos: call.Pos},
		{Op: ir.OpBr, A: ir.R(cmpReg), Label: inlLabel, Pos: call.Pos},
		fb,
		{Op: ir.OpJump, Label: contLabel, Pos: call.Pos},
		{Op: ir.OpLabel, Label: inlLabel, Pos: call.Pos},
	}
	fn.Inlined = append(fn.Inlined, target.Name)

	out := make([]ir.Instr, 0, len(fn.Code)-1+len(head)+len(body)+1)
	out = append(out, fn.Code[:idx]...)
	out = append(out, head...)
	out = append(out, body...)
	out = append(out, ir.Instr{Op: ir.OpLabel, Label: contLabel, Pos: call.Pos})
	out = append(out, fn.Code[idx+1:]...)
	fn.Code = out
	return nil
}
