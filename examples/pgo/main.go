// Profile-guided optimization walkthrough on a text-processing workload:
// the example mirrors the paper's methodology end to end — multiple
// representative profiling inputs, call-site classification (Table 2/3
// style), the expansion decision list with rejection reasons (hazards),
// a weight-threshold sweep, and a comparison against the two static
// baselines the paper discusses (inline-all-leaves and
// inline-small-callees).
package main

import (
	"fmt"
	"log"

	"inlinec"
	"inlinec/internal/inline"
)

// A word-frequency counter with the call structure the paper cares about:
// hot leaves (hashing, classification), a recursive cold path (report
// tree), library calls, and a rarely-executed error branch.
const src = `
extern int getchar();
extern int printf(char *fmt, ...);

enum { NBUCKETS = 256, MAXWORDS = 2048, WORDLEN = 24 };

char words[MAXWORDS][WORDLEN];
int counts[MAXWORDS];
int buckets[NBUCKETS];
int chain[MAXWORDS];
int nwords;

int is_letter(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int to_lower(int c) {
    if (c >= 'A' && c <= 'Z') return c - 'A' + 'a';
    return c;
}

int hash_word(char *w) {
    int h;
    h = 0;
    while (*w) { h = h * 31 + *w; w++; }
    h = h % NBUCKETS;
    if (h < 0) h += NBUCKETS;
    return h;
}

int same_word(char *a, char *b) {
    while (*a && *b) {
        if (*a != *b) return 0;
        a++; b++;
    }
    return *a == *b;
}

void overflow() {
    printf("word table overflow\n");
}

int intern(char *w) {
    int h, i, j;
    h = hash_word(w);
    for (i = buckets[h] - 1; i >= 0; i = chain[i] - 1) {
        if (same_word(words[i], w)) return i;
    }
    if (nwords >= MAXWORDS) { overflow(); return MAXWORDS - 1; }
    i = nwords++;
    for (j = 0; w[j] && j < WORDLEN - 1; j++) words[i][j] = w[j];
    words[i][j] = '\0';
    chain[i] = buckets[h];
    buckets[h] = i + 1;
    return i;
}

int main() {
    char w[WORDLEN];
    int c, n, total, i, maxc, maxi;
    n = 0;
    total = 0;
    for (;;) {
        c = getchar();
        if (is_letter(c)) {
            if (n < WORDLEN - 1) w[n++] = to_lower(c);
            continue;
        }
        if (n > 0) {
            w[n] = '\0';
            counts[intern(w)]++;
            total++;
            n = 0;
        }
        if (c == -1) break;
    }
    maxc = 0;
    maxi = 0;
    for (i = 0; i < nwords; i++) {
        if (counts[i] > maxc) { maxc = counts[i]; maxi = i; }
    }
    printf("%d words, %d distinct, top=%s (%d)\n", total, nwords, words[maxi], maxc);
    return 0;
}
`

func inputs() []inlinec.Input {
	texts := []string{
		"the quick brown fox jumps over the lazy dog and the dog sleeps",
		"inline function expansion replaces a function call with the function body",
		"profile information identifies the important function calls to expand",
		"code expansion stack expansion and unavailable function bodies are the hazards",
	}
	var ins []inlinec.Input
	for _, t := range texts {
		big := ""
		for i := 0; i < 40; i++ {
			big += t + "\n"
		}
		ins = append(ins, inlinec.Input{Stdin: []byte(big)})
	}
	return ins
}

func measure(p *inlinec.Program, ins []inlinec.Input) (calls, il float64) {
	prof, err := p.ProfileInputs(ins...)
	if err != nil {
		log.Fatal(err)
	}
	return prof.AvgCalls(), prof.AvgIL()
}

func main() {
	ins := inputs()

	// --- classification, as Tables 2 and 3 ---
	base, err := inlinec.Compile("wordfreq.c", src)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := base.ProfileInputs(ins...)
	if err != nil {
		log.Fatal(err)
	}
	cc := base.Classify(prof, inlinec.DefaultClassifyParams())
	fmt.Println("call-site classification (external/pointer/unsafe/safe):")
	fmt.Printf("  static:  %v of %d sites\n", cc.Static, cc.TotalStatic())
	fmt.Printf("  dynamic: %.0f %.0f %.0f %.0f of %.0f calls\n",
		cc.Dynamic[0], cc.Dynamic[1], cc.Dynamic[2], cc.Dynamic[3], cc.TotalDynamic())

	// --- the paper's policy, with the decision list ---
	res, err := base.Inline(prof, inlinec.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpansion decisions (profile-guided):")
	for _, d := range res.Decisions {
		verdict := "EXPAND"
		if !d.Accepted {
			verdict = "reject: " + d.Reason
		}
		fmt.Printf("  %-12s <- %-12s w=%-8.0f %s\n", d.Caller, d.Callee, d.Weight, verdict)
	}
	afterCalls, _ := measure(base, ins)
	beforeCalls := prof.AvgCalls()
	fmt.Printf("dynamic calls: %.0f -> %.0f (%.0f%% eliminated), code %+.1f%%\n",
		beforeCalls, afterCalls, 100*(beforeCalls-afterCalls)/beforeCalls, 100*res.CodeIncrease())

	// --- threshold sweep ---
	fmt.Println("\nweight-threshold sweep:")
	for _, th := range []float64{1, 10, 100, 1000, 100000} {
		p, _ := inlinec.Compile("wordfreq.c", src)
		pr, _ := p.ProfileInputs(ins...)
		params := inlinec.DefaultParams()
		params.WeightThreshold = th
		r, err := p.Inline(pr, params)
		if err != nil {
			log.Fatal(err)
		}
		ac, _ := measure(p, ins)
		fmt.Printf("  threshold %-7.0f expanded %-3d code %+6.1f%%  calls %.0f -> %.0f\n",
			th, len(r.Expanded), 100*r.CodeIncrease(), pr.AvgCalls(), ac)
	}

	// --- static baselines the paper discusses ---
	fmt.Println("\nstatic baselines vs profile guidance:")
	for _, h := range []inline.Heuristic{inline.HeuristicProfile, inline.HeuristicLeaf, inline.HeuristicSmall} {
		p, _ := inlinec.Compile("wordfreq.c", src)
		pr, _ := p.ProfileInputs(ins...)
		params := inlinec.DefaultParams()
		params.Heuristic = h
		r, err := p.Inline(pr, params)
		if err != nil {
			log.Fatal(err)
		}
		ac, _ := measure(p, ins)
		fmt.Printf("  %-13s expanded %-3d code %+6.1f%%  calls %.0f -> %.0f\n",
			h, len(r.Expanded), 100*r.CodeIncrease(), pr.AvgCalls(), ac)
	}
}
