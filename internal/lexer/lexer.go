// Package lexer implements the MiniC scanner. It converts source text into
// a stream of tokens, handling C comments, character/string escapes, and
// decimal/hex/octal integer literals.
package lexer

import (
	"fmt"
	"strings"

	"inlinec/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text.
type Lexer struct {
	src  string
	file string
	off  int // byte offset of next unread character
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src; file names the source for positions.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) match(c byte) bool {
	if l.peek() == c {
		l.advance()
		return true
	}
	return false
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isHex(c byte) bool    { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// skipSpace consumes whitespace, // comments, /* */ comments, and
// preprocessor-style lines beginning with '#' (MiniC has no preprocessor;
// such lines are treated as comments so that sources may carry #-pragmas).
func (l *Lexer) skipSpace() {
	for {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		case c == '#' && l.col == 1:
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	pos := l.pos()
	c := l.peek()
	switch {
	case c == 0:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '\'':
		return l.scanChar(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	mk := func(k token.Kind, text string) token.Token {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	switch c {
	case '(':
		return mk(token.LParen, "(")
	case ')':
		return mk(token.RParen, ")")
	case '{':
		return mk(token.LBrace, "{")
	case '}':
		return mk(token.RBrace, "}")
	case '[':
		return mk(token.LBracket, "[")
	case ']':
		return mk(token.RBracket, "]")
	case ',':
		return mk(token.Comma, ",")
	case ';':
		return mk(token.Semi, ";")
	case ':':
		return mk(token.Colon, ":")
	case '?':
		return mk(token.Question, "?")
	case '~':
		return mk(token.Tilde, "~")
	case '.':
		if l.peek() == '.' && l.peek2() == '.' {
			l.advance()
			l.advance()
			return mk(token.Ellipsis, "...")
		}
		return mk(token.Dot, ".")
	case '+':
		if l.match('+') {
			return mk(token.PlusPlus, "++")
		}
		if l.match('=') {
			return mk(token.PlusEq, "+=")
		}
		return mk(token.Plus, "+")
	case '-':
		if l.match('-') {
			return mk(token.MinusMinus, "--")
		}
		if l.match('=') {
			return mk(token.MinusEq, "-=")
		}
		if l.match('>') {
			return mk(token.Arrow, "->")
		}
		return mk(token.Minus, "-")
	case '*':
		if l.match('=') {
			return mk(token.StarEq, "*=")
		}
		return mk(token.Star, "*")
	case '/':
		if l.match('=') {
			return mk(token.SlashEq, "/=")
		}
		return mk(token.Slash, "/")
	case '%':
		if l.match('=') {
			return mk(token.PercentEq, "%=")
		}
		return mk(token.Percent, "%")
	case '&':
		if l.match('&') {
			return mk(token.AndAnd, "&&")
		}
		if l.match('=') {
			return mk(token.AmpEq, "&=")
		}
		return mk(token.Amp, "&")
	case '|':
		if l.match('|') {
			return mk(token.OrOr, "||")
		}
		if l.match('=') {
			return mk(token.PipeEq, "|=")
		}
		return mk(token.Pipe, "|")
	case '^':
		if l.match('=') {
			return mk(token.CaretEq, "^=")
		}
		return mk(token.Caret, "^")
	case '!':
		if l.match('=') {
			return mk(token.NotEq, "!=")
		}
		return mk(token.Bang, "!")
	case '=':
		if l.match('=') {
			return mk(token.EqEq, "==")
		}
		return mk(token.Assign, "=")
	case '<':
		if l.match('<') {
			if l.match('=') {
				return mk(token.ShlEq, "<<=")
			}
			return mk(token.Shl, "<<")
		}
		if l.match('=') {
			return mk(token.Le, "<=")
		}
		return mk(token.Lt, "<")
	case '>':
		if l.match('>') {
			if l.match('=') {
				return mk(token.ShrEq, ">>=")
			}
			return mk(token.Shr, ">>")
		}
		if l.match('=') {
			return mk(token.Ge, ">=")
		}
		return mk(token.Gt, ">")
	}
	l.errorf(pos, "illegal character %q", string(rune(c)))
	return token.Token{Kind: token.Illegal, Text: string(rune(c)), Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for isIdent(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if k, ok := token.Keywords[text]; ok {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.Ident, Text: text, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	var val int64
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHex(l.peek()) {
			l.errorf(pos, "malformed hex literal")
		}
		for isHex(l.peek()) {
			c := l.advance()
			val = val*16 + int64(hexVal(c))
		}
	} else if l.peek() == '0' {
		// Octal (or plain zero).
		for isDigit(l.peek()) {
			c := l.advance()
			if c >= '8' {
				l.errorf(pos, "invalid octal digit %q", string(rune(c)))
			}
			val = val*8 + int64(c-'0')
		}
	} else {
		for isDigit(l.peek()) {
			c := l.advance()
			val = val*10 + int64(c-'0')
		}
	}
	// Ignore C integer suffixes.
	for l.peek() == 'l' || l.peek() == 'L' || l.peek() == 'u' || l.peek() == 'U' {
		l.advance()
	}
	return token.Token{Kind: token.Int, Text: l.src[start:l.off], Pos: pos, Val: val}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// scanEscape decodes one escape sequence after a backslash has been consumed.
func (l *Lexer) scanEscape(pos token.Pos) byte {
	c := l.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	case '\\', '\'', '"', '?':
		return c
	case 'x':
		v := 0
		for isHex(l.peek()) {
			v = v*16 + hexVal(l.advance())
		}
		return byte(v)
	}
	l.errorf(pos, "unknown escape sequence \\%s", string(rune(c)))
	return c
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.advance() // opening quote
	var v byte
	switch c := l.peek(); c {
	case 0, '\n':
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.Illegal, Pos: pos}
	case '\\':
		l.advance()
		v = l.scanEscape(pos)
	default:
		v = l.advance()
	}
	if !l.match('\'') {
		l.errorf(pos, "unterminated character literal")
	}
	return token.Token{Kind: token.Int, Text: fmt.Sprintf("'%c'", v), Pos: pos, Val: int64(v)}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		c := l.peek()
		if c == 0 || c == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		if c == '"' {
			l.advance()
			break
		}
		if c == '\\' {
			l.advance()
			sb.WriteByte(l.scanEscape(pos))
			continue
		}
		sb.WriteByte(l.advance())
	}
	return token.Token{Kind: token.String, Text: sb.String(), Pos: pos, Str: sb.String()}
}

// ScanAll tokenizes the whole input, returning the tokens (ending with EOF)
// and any lexical errors.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}
