// Package testgen generates random but well-formed MiniC programs for
// property-based testing. Every generated program terminates, performs
// deterministic integer arithmetic through a random acyclic call graph
// (with optional self-recursion of bounded depth), and prints a final
// checksum — so "compile, transform, re-run, compare output" is a
// complete semantic equivalence oracle for the optimizer and the inline
// expander.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options bounds the generated program's shape.
type Options struct {
	// Funcs is the number of functions besides main (default 6).
	Funcs int
	// MaxStmts bounds the statements per function body (default 6).
	MaxStmts int
	// MaxDepth bounds expression nesting (default 3).
	MaxDepth int
	// Recursion permits bounded self-recursive functions.
	Recursion bool
	// Pointers permits address-of/deref statements over locals.
	Pointers bool
	// FuncPtrs permits calls through local function-pointer variables —
	// indirect ("###") call sites the expander must leave alone.
	FuncPtrs bool
	// Extern permits calls to external library routines (abs, putchar) —
	// "$" call sites that profile but never inline.
	Extern bool
	// HotColdBodies makes every other function a large body with a
	// skewed shape: a cheap pure early-return fast path followed by a
	// long cold tail of calls and loops. These are the callees
	// region-based partial inlining splits — too big to inline whole,
	// with a hot entry region worth expanding.
	HotColdBodies bool
	// DominantFuncPtr emits pointer calls that pick between two targets
	// with a ~15-in-16 skew toward one — the profile shape guarded
	// devirtualization keys on. Implies function-pointer statements.
	DominantFuncPtr bool
}

func (o Options) withDefaults() Options {
	if o.Funcs == 0 {
		o.Funcs = 6
	}
	if o.MaxStmts == 0 {
		o.MaxStmts = 6
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	return o
}

// Generate returns a random MiniC program. Programs generated from the
// same seed are identical.
func Generate(seed int64, opts Options) string {
	o := opts.withDefaults()
	g := &gen{r: rand.New(rand.NewSource(seed)), o: o}
	return g.program()
}

type gen struct {
	r *rand.Rand
	o Options

	recursive []bool
}

// locals available in every generated function body.
var localNames = []string{"a", "b", "c", "d"}

func (g *gen) program() string {
	var sb strings.Builder
	sb.WriteString("extern int printf(char *fmt, ...);\n")
	if g.o.Extern {
		sb.WriteString("extern int abs(int v);\n")
		sb.WriteString("extern int putchar(int c);\n")
	}
	sb.WriteString("\n")

	n := g.o.Funcs
	g.recursive = make([]bool, n)
	for i := 0; i < n; i++ {
		g.recursive[i] = g.o.Recursion && g.r.Intn(4) == 0
	}

	// Function i may call only functions with smaller indices (a DAG), plus
	// itself when recursive. Two parameters keep call sites interesting.
	for i := 0; i < n; i++ {
		if g.o.HotColdBodies && i%2 == 1 {
			sb.WriteString(g.hotColdBody(i))
			continue
		}
		fmt.Fprintf(&sb, "int f%d(int x, int y) {\n", i)
		sb.WriteString("    int a, b, c, d;\n")
		sb.WriteString("    a = x; b = y; c = 1; d = 2;\n")
		if g.recursive[i] {
			// Bounded self recursion: the guard both requires a positive
			// argument and caps the depth, so arbitrarily large incoming
			// values cannot run away.
			fmt.Fprintf(&sb, "    if (x > 0 && x < 30) c = f%d(x - 1, y ^ %d);\n", i, g.r.Intn(64))
		}
		for s := 0; s < 1+g.r.Intn(g.o.MaxStmts); s++ {
			sb.WriteString(g.stmt(i, 1))
		}
		fmt.Fprintf(&sb, "    return %s;\n}\n\n", g.expr(i, g.o.MaxDepth))
	}

	sb.WriteString("int main() {\n    int a, b, c, d;\n    int i;\n")
	sb.WriteString("    a = 3; b = 5; c = 7; d = 11;\n")
	fmt.Fprintf(&sb, "    for (i = 0; i < %d; i++) {\n", 5+g.r.Intn(20))
	for s := 0; s < 2+g.r.Intn(3); s++ {
		sb.WriteString("    " + g.stmt(n, 2))
	}
	sb.WriteString("    }\n")
	sb.WriteString("    printf(\"%d %d %d %d\\n\", a, b, c, d);\n")
	sb.WriteString("    return 0;\n}\n")
	return sb.String()
}

// stmt emits one statement for function fn (fn == Funcs means main).
func (g *gen) stmt(fn, indent int) string {
	pad := strings.Repeat("    ", indent)
	v := localNames[g.r.Intn(len(localNames))]
	kinds := 6
	if g.o.FuncPtrs || g.o.DominantFuncPtr {
		kinds++
	}
	if g.o.Extern {
		kinds++
	}
	k := g.r.Intn(kinds)
	if k >= 6 {
		if k == 6 && (g.o.FuncPtrs || g.o.DominantFuncPtr) {
			return g.funcPtrStmt(fn, pad, v)
		}
		return g.externStmt(fn, pad, v)
	}
	switch k {
	case 0:
		return fmt.Sprintf("%s%s = %s;\n", pad, v, g.expr(fn, g.o.MaxDepth))
	case 1:
		return fmt.Sprintf("%sif (%s) %s = %s; else %s = %s;\n",
			pad, g.cond(fn), v, g.expr(fn, 2), v, g.expr(fn, 2))
	case 2:
		// A bounded while loop over a fresh counter expression.
		return fmt.Sprintf("%s{ int t; t = %d; while (t > 0) { %s = %s + t; t--; } }\n",
			pad, 1+g.r.Intn(6), v, v)
	case 3:
		if g.o.Pointers {
			w := localNames[g.r.Intn(len(localNames))]
			return fmt.Sprintf("%s{ int *p; p = &%s; *p = *p + %d; }\n", pad, w, g.r.Intn(9))
		}
		return fmt.Sprintf("%s%s += %s;\n", pad, v, g.expr(fn, 1))
	case 4:
		return fmt.Sprintf("%s%s = %s & 0xffff;\n", pad, v, g.expr(fn, 2))
	default:
		return fmt.Sprintf("%s%s ^= %s;\n", pad, v, g.expr(fn, 2))
	}
}

// funcPtrStmt routes a call through a local function-pointer variable.
// The pointee is still a lower-numbered function, so the dynamic call
// graph stays acyclic even though the site itself is indirect.
func (g *gen) funcPtrStmt(fn int, pad, v string) string {
	if fn == 0 {
		return fmt.Sprintf("%s%s = %s;\n", pad, v, g.expr(fn, 1))
	}
	if g.o.DominantFuncPtr && fn >= 2 {
		// A data-dependent two-way choice skewed ~15:1 toward the
		// dominant target: the exact profile split depends on the local's
		// values, but the shape reliably produces sites with one heavy
		// target and a live fallback path.
		dom := g.r.Intn(fn)
		alt := g.r.Intn(fn)
		if alt == dom {
			alt = (dom + 1) % fn
		}
		sel := localNames[g.r.Intn(len(localNames))]
		return fmt.Sprintf("%s{ int (*fp)(int, int); if ((%s & 15) != %d) fp = f%d; else fp = f%d; %s = fp(%s, %s); }\n",
			pad, sel, g.r.Intn(16), dom, alt, v, g.expr(fn, 1), g.expr(fn, 1))
	}
	callee := g.r.Intn(fn)
	return fmt.Sprintf("%s{ int (*fp)(int, int); fp = f%d; %s = fp(%s, %s); }\n",
		pad, callee, v, g.expr(fn, 1), g.expr(fn, 1))
}

// hotColdBody emits a function partial inlining can split: a pure,
// cheap early-return fast path taken for most argument values, then a
// cold tail long enough to fail any reasonable per-callee size limit,
// full of loops and (for fn >= 1) calls that keep the tail impure.
func (g *gen) hotColdBody(fn int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "int f%d(int x, int y) {\n", fn)
	sb.WriteString("    int a, b, c, d;\n")
	sb.WriteString("    a = x; b = y; c = 1; d = 2;\n")
	// The hot entry region: a guard plus a call-free return expression.
	fmt.Fprintf(&sb, "    if ((x & %d) != %d) return (x * %d + y) ^ %d;\n",
		3+4*g.r.Intn(4), g.r.Intn(4), 1+g.r.Intn(9), g.r.Intn(256))
	// The cold tail: enough statements to dwarf the region.
	tail := 2 * (2 + g.o.MaxStmts)
	for s := 0; s < tail; s++ {
		sb.WriteString(g.stmt(fn, 1))
	}
	fmt.Fprintf(&sb, "    return %s;\n}\n\n", g.expr(fn, g.o.MaxDepth))
	return sb.String()
}

// externStmt calls into the host library: abs feeds a value back into
// the arithmetic, putchar emits one printable byte into the checksum
// stream.
func (g *gen) externStmt(fn int, pad, v string) string {
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("%s%s = abs(%s - %s);\n", pad, v, g.expr(fn, 1), g.expr(fn, 1))
	}
	return fmt.Sprintf("%sputchar(65 + (%s & 15));\n", pad, g.expr(fn, 1))
}

// expr emits an integer expression usable in function fn; calls target
// only lower-numbered functions, keeping the call graph acyclic.
func (g *gen) expr(fn, depth int) string {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprint(g.r.Intn(100))
		default:
			return localNames[g.r.Intn(len(localNames))]
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprint(g.r.Intn(1000))
	case 1, 2:
		return localNames[g.r.Intn(len(localNames))]
	case 3:
		if fn > 0 {
			callee := g.r.Intn(fn)
			return fmt.Sprintf("f%d(%s, %s)", callee, g.expr(fn, depth-1), g.expr(fn, depth-1))
		}
		return localNames[g.r.Intn(len(localNames))]
	case 4:
		op := []string{"+", "-", "*", "&", "|", "^"}[g.r.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.expr(fn, depth-1), op, g.expr(fn, depth-1))
	case 5:
		// Division guarded against zero.
		return fmt.Sprintf("(%s / (1 + (%s & 7)))", g.expr(fn, depth-1), g.expr(fn, depth-1))
	case 6:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(fn), g.expr(fn, depth-1), g.expr(fn, depth-1))
	default:
		return fmt.Sprintf("(%s << %d)", g.expr(fn, depth-1), g.r.Intn(4))
	}
}

func (g *gen) cond(fn int) string {
	a := localNames[g.r.Intn(len(localNames))]
	b := g.r.Intn(50)
	op := []string{"<", ">", "<=", ">=", "==", "!="}[g.r.Intn(6)]
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("%s %s %d && %s", a, op, b,
			localNames[g.r.Intn(len(localNames))])
	case 1:
		return fmt.Sprintf("%s %s %d || !%s", a, op, b,
			localNames[g.r.Intn(len(localNames))])
	default:
		return fmt.Sprintf("%s %s %d", a, op, b)
	}
}
