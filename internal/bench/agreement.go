package bench

import (
	"fmt"

	"inlinec/internal/obs"
)

// Predicted-vs-measured agreement measurement: the benchmark is compiled
// twice from scratch; one copy inlines with its measured profile, the
// other with the synthesized prediction (zero profiling runs feed its
// weights), and the two decision traces diff arc by arc. The score is
// the predict-gate's CI currency (scripts/check_agreement.sh compares it
// against .github/agreement-threshold.txt).

// AgreementResult is one benchmark's arc-level agreement between
// predicted and measured inlining decisions, as reported by
// `ilbench -agreement -json`.
type AgreementResult struct {
	Name string `json:"name"`
	// ScorePct is the headline number: the percentage of arcs where
	// predicted mode made the same accept/reject/partial/devirt decision
	// as measured mode.
	ScorePct float64 `json:"score_pct"`
	*obs.AgreementStats
}

// String renders the full agreement report.
func (r *AgreementResult) String() string {
	return obs.FormatAgreementReport(r.Name, r.AgreementStats)
}

// RunAgreement compiles the benchmark twice, inlines one copy with
// measured weights and the other with predicted weights (same expansion
// parameters), and diffs the decision traces. The comparison lands in
// reg's inline_decisions_agree_total{mode="predicted"} metrics when a
// registry is supplied.
func RunAgreement(b *Benchmark, cfg Config, reg *obs.Registry) (*AgreementResult, error) {
	inputs := b.Inputs
	if cfg.MaxRuns > 0 && len(inputs) > cfg.MaxRuns {
		inputs = inputs[:cfg.MaxRuns]
	}

	mp, err := b.Compile()
	if err != nil {
		return nil, err
	}
	mp.Parallelism = cfg.Parallelism
	mp.Engine = cfg.Engine
	measured, err := mp.ProfileInputs(inputs...)
	if err != nil {
		return nil, fmt.Errorf("%s: profiling: %w", b.Name, err)
	}
	mres, err := mp.Inline(measured, cfg.Inline)
	if err != nil {
		return nil, fmt.Errorf("%s: measured-mode inline: %w", b.Name, err)
	}

	// A fresh compile for the predicted leg: Inline rewrites the module
	// in place, and the diff is only meaningful over identical pre-inline
	// modules (compilation is deterministic, so the site ids align).
	pp, err := b.CompileObs(reg)
	if err != nil {
		return nil, err
	}
	pp.Parallelism = cfg.Parallelism
	pp.Engine = cfg.Engine
	pres, err := pp.Inline(pp.PredictProfile(), cfg.Inline)
	if err != nil {
		return nil, fmt.Errorf("%s: predicted-mode inline: %w", b.Name, err)
	}

	stats := obs.CompareInlineTraces(mres.Trace, pres.Trace)
	reg.RecordAgreement("predicted", stats)
	return &AgreementResult{Name: b.Name, ScorePct: stats.ScorePct(), AgreementStats: stats}, nil
}
