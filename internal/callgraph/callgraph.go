// Package callgraph builds the weighted call graph G = (N, E, main) of
// section 2.2 of the paper. Nodes are functions weighted by execution
// count; arcs are static call sites weighted by invocation count. Two
// special nodes summarize missing information exactly as the paper
// prescribes: "$$$" stands for all external functions (bodies unavailable
// — library routines and system calls) and "###" stands for the targets of
// calls through pointers. Worst-case assumptions apply: an external
// function may call any user function, and a call through a pointer may
// reach any address-taken function (any function at all once the program
// calls an external function).
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"inlinec/internal/ir"
	"inlinec/internal/profile"
)

// Names of the special summary nodes.
const (
	ExternalNodeName = "$$$"
	PointerNodeName  = "###"
)

// ArcStatus is the paper's per-arc status attribute.
type ArcStatus int

// Arc statuses.
const (
	StatusExpandable ArcStatus = iota
	StatusNotExpandable
	StatusToBeExpanded
	StatusExpanded
)

// String returns the status name.
func (s ArcStatus) String() string {
	switch s {
	case StatusExpandable:
		return "expandable"
	case StatusNotExpandable:
		return "not_expandable"
	case StatusToBeExpanded:
		return "to_be_expanded"
	case StatusExpanded:
		return "expanded"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// SiteClass categorizes a static call site for Tables 2 and 3.
type SiteClass int

// Site classes, in the paper's column order.
const (
	ClassExternal SiteClass = iota // callee body unavailable (incl. syscalls)
	ClassPointer                   // call through pointer
	ClassUnsafe                    // recursion/stack hazard or weight below threshold
	ClassSafe                      // considered for inline expansion
)

// String returns the class name.
func (c SiteClass) String() string {
	switch c {
	case ClassExternal:
		return "external"
	case ClassPointer:
		return "pointer"
	case ClassUnsafe:
		return "unsafe"
	}
	return "safe"
}

// Node is a call-graph node.
type Node struct {
	Name string
	// Fn is nil for the special $$$ and ### nodes.
	Fn *ir.Func
	// Weight is the function's expected execution count.
	Weight float64
	Out    []*Arc
	In     []*Arc
	// scc is the strongly-connected-component id over user arcs only.
	scc int
	// sccConservative additionally follows $$$ and ### arcs.
	sccConservative int
	// height is the longest user-arc path to a leaf (0 for leaves; nodes
	// sharing a cycle share a height). Used to put leaf-level functions at
	// the front of the linearization when weights tie, per section 3.3.
	height int
}

// Height returns the node's call-graph height: 0 for leaf functions,
// 1 + max(callee heights) otherwise, computed over user arcs with cycles
// collapsed.
func (n *Node) Height() int { return n.height }

// IsSpecial reports whether the node is $$$ or ###.
func (n *Node) IsSpecial() bool { return n.Fn == nil }

// Arc is a static call site (or a synthetic worst-case edge).
type Arc struct {
	// ID is the call-site id from the IL; synthetic arcs (out of $$$/###)
	// have negative ids.
	ID     int
	Caller *Node
	Callee *Node
	Weight float64
	Status ArcStatus
	// ViaPointer marks a call-through-pointer site.
	ViaPointer bool
	// Synthetic marks worst-case edges added for $$$/### summarization.
	Synthetic bool
	// Instr locates the call instruction within Caller.Fn.Code
	// (-1 for synthetic arcs).
	Instr int
	// PtrTargets holds the profiled per-target weights of a ViaPointer
	// arc (resolved target name -> averaged invocation count), installed
	// by ApplyProfile. Nil for direct arcs or unprofiled graphs.
	PtrTargets map[string]float64
}

// DominantPtrTarget returns the heaviest profiled target of a ViaPointer
// arc, its weight, and the total resolved weight. Ties break toward the
// lexically smaller name so selection is deterministic.
func (a *Arc) DominantPtrTarget() (target string, weight, total float64) {
	for t, w := range a.PtrTargets {
		total += w
		if w > weight || (w == weight && (target == "" || t < target)) {
			target, weight = t, w
		}
	}
	return target, weight, total
}

// Graph is the weighted call graph of one module.
type Graph struct {
	Mod      *ir.Module
	Nodes    map[string]*Node
	Main     *Node
	External *Node // $$$
	Pointer  *Node // ###
	// Arcs lists real call-site arcs (synthetic arcs hang off nodes only).
	Arcs []*Arc
	// HasExternCalls records whether any user function calls $$$; if so the
	// worst-case rules widen ###'s reach and defeat dead-code removal.
	HasExternCalls bool
}

// Build constructs the call graph from a module and (optionally) a
// profile. A nil profile yields zero weights — callers may attach weights
// later with ApplyProfile.
func Build(mod *ir.Module, prof *profile.Profile) *Graph {
	g := &Graph{
		Mod:      mod,
		Nodes:    make(map[string]*Node),
		External: &Node{Name: ExternalNodeName},
		Pointer:  &Node{Name: PointerNodeName},
	}
	// Step 1: allocate a node for each function.
	for _, f := range mod.Funcs {
		g.Nodes[f.Name] = &Node{Name: f.Name, Fn: f}
	}
	g.Main = g.Nodes["main"]

	addArc := func(a *Arc) {
		a.Caller.Out = append(a.Caller.Out, a)
		a.Callee.In = append(a.Callee.In, a)
		if !a.Synthetic {
			g.Arcs = append(g.Arcs, a)
		}
	}

	// Step 2: connect nodes corresponding to the static calls.
	for _, f := range mod.Funcs {
		caller := g.Nodes[f.Name]
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case ir.OpCall:
				if callee, ok := g.Nodes[in.Sym]; ok {
					addArc(&Arc{ID: in.CallID, Caller: caller, Callee: callee, Instr: i})
				} else {
					// Step 3a: call to an external function -> one arc to $$$.
					g.HasExternCalls = true
					addArc(&Arc{ID: in.CallID, Caller: caller, Callee: g.External, Instr: i})
				}
			case ir.OpCallPtr:
				// Step 3b: call through pointer -> one arc to ###.
				addArc(&Arc{ID: in.CallID, Caller: caller, Callee: g.Pointer, Instr: i, ViaPointer: true})
			}
		}
	}

	// Worst case: $$$ may call any user function.
	synthID := -1
	if g.HasExternCalls {
		for _, f := range mod.Funcs {
			addArc(&Arc{ID: synthID, Caller: g.External, Callee: g.Nodes[f.Name], Synthetic: true, Instr: -1})
			synthID--
		}
	}
	// ### reaches every address-taken function; with external calls present
	// the precise maximal set is unknowable, so it reaches everything.
	for _, f := range mod.Funcs {
		if g.HasExternCalls || mod.AddressTaken[f.Name] {
			addArc(&Arc{ID: synthID, Caller: g.Pointer, Callee: g.Nodes[f.Name], Synthetic: true, Instr: -1})
			synthID--
		}
	}

	g.computeSCCs()
	if prof != nil {
		g.ApplyProfile(prof)
	}
	return g
}

// ApplyProfile installs node and arc weights from averaged profile data.
func (g *Graph) ApplyProfile(prof *profile.Profile) {
	for name, n := range g.Nodes {
		n.Weight = prof.FuncWeight(name)
	}
	var extW, ptrW float64
	for _, a := range g.Arcs {
		a.Weight = prof.SiteWeight(a.ID)
		if a.Callee == g.External {
			extW += a.Weight
		}
		if a.Callee == g.Pointer {
			ptrW += a.Weight
		}
		if a.ViaPointer {
			if targets := prof.PtrTargets[a.ID]; len(targets) > 0 {
				a.PtrTargets = make(map[string]float64, len(targets))
				for t := range targets {
					a.PtrTargets[t] = prof.SiteTargetWeight(a.ID, t)
				}
			}
		}
	}
	g.External.Weight = extW
	g.Pointer.Weight = ptrW
}

// Arc returns the real arc with the call-site id, or nil.
func (g *Graph) Arc(id int) *Arc {
	for _, a := range g.Arcs {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// ---------------------------------------------------------------- recursion

// computeSCCs runs Tarjan's algorithm twice: once over user arcs only
// (strict recursion) and once including the $$$/### worst-case edges
// (conservative recursion).
func (g *Graph) computeSCCs() {
	nodes := g.allNodes()
	assign := func(useSynthetic bool, set func(n *Node, id int)) {
		index := make(map[*Node]int)
		low := make(map[*Node]int)
		onStack := make(map[*Node]bool)
		var stack []*Node
		next, comp := 0, 0

		var strongconnect func(v *Node)
		strongconnect = func(v *Node) {
			index[v] = next
			low[v] = next
			next++
			stack = append(stack, v)
			onStack[v] = true
			for _, a := range v.Out {
				if a.Synthetic && !useSynthetic {
					continue
				}
				w := a.Callee
				if _, seen := index[w]; !seen {
					strongconnect(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					set(w, comp)
					if w == v {
						break
					}
				}
				comp++
			}
		}
		for _, n := range nodes {
			if _, seen := index[n]; !seen {
				strongconnect(n)
			}
		}
	}
	assign(false, func(n *Node, id int) { n.scc = id })
	assign(true, func(n *Node, id int) { n.sccConservative = id })
	g.computeHeights()
}

// computeHeights assigns each user node its longest-path-to-leaf height
// over the condensation of the user call graph (cycles share one height).
func (g *Graph) computeHeights() {
	// Group user nodes by SCC and build the condensation successor sets.
	members := make(map[int][]*Node)
	succ := make(map[int]map[int]bool)
	for _, n := range g.Nodes {
		members[n.scc] = append(members[n.scc], n)
		if succ[n.scc] == nil {
			succ[n.scc] = make(map[int]bool)
		}
		for _, a := range n.Out {
			if a.Synthetic || a.Callee.IsSpecial() {
				continue
			}
			if a.Callee.scc != n.scc {
				succ[n.scc][a.Callee.scc] = true
			}
		}
	}
	memo := make(map[int]int)
	var height func(c int) int
	height = func(c int) int {
		if h, ok := memo[c]; ok {
			return h
		}
		memo[c] = 0 // breaks unexpected cycles defensively
		h := 0
		for s := range succ[c] {
			if sh := height(s) + 1; sh > h {
				h = sh
			}
		}
		memo[c] = h
		return h
	}
	for c, ns := range members {
		h := height(c)
		for _, n := range ns {
			n.height = h
		}
	}
}

func (g *Graph) allNodes() []*Node {
	names := make([]string, 0, len(g.Nodes))
	for n := range g.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	nodes := make([]*Node, 0, len(names)+2)
	for _, n := range names {
		nodes = append(nodes, g.Nodes[n])
	}
	nodes = append(nodes, g.External, g.Pointer)
	return nodes
}

// SelfRecursive reports whether the node has an arc to itself — the
// paper's "simple recursion", which the expander does not handle.
func (g *Graph) SelfRecursive(n *Node) bool {
	for _, a := range n.Out {
		if a.Callee == n && !a.Synthetic {
			return true
		}
	}
	return false
}

// Recursive reports whether the node lies on a user-level cycle (including
// self loops). Detecting recursion is finding cycles in the call graph.
func (g *Graph) Recursive(n *Node) bool {
	if g.SelfRecursive(n) {
		return true
	}
	for _, m := range g.Nodes {
		if m != n && m.scc == n.scc {
			return true
		}
	}
	return false
}

// SameCycle reports whether two user nodes share a user-level cycle
// (the same non-trivial strongly connected component).
func (g *Graph) SameCycle(a, b *Node) bool {
	if a == nil || b == nil || a == b {
		return false
	}
	return a.scc == b.scc
}

// ConservativelyRecursive additionally follows the $$$/### worst-case
// edges, as an incomplete call graph demands.
func (g *Graph) ConservativelyRecursive(n *Node) bool {
	if g.SelfRecursive(n) {
		return true
	}
	for _, m := range g.allNodes() {
		if m != n && m.sccConservative == n.sccConservative {
			return true
		}
	}
	return false
}

// --------------------------------------------------------------- reachability

// Reachable returns the set of user functions reachable from main. When
// conservative is true (or the graph has extern calls and conservative
// dead-code rules apply), synthetic edges are followed, so any function
// reachable via "an external function may call anything" counts.
func (g *Graph) Reachable(conservative bool) map[string]bool {
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, a := range n.Out {
			if a.Synthetic && !conservative {
				continue
			}
			visit(a.Callee)
		}
	}
	visit(g.Main)
	out := make(map[string]bool)
	for n := range seen {
		if !n.IsSpecial() {
			out[n.Name] = true
		}
	}
	return out
}

// UnreachableFunctions lists functions that can be removed: not reachable
// from main under the conservative rules the paper mandates (synthetic
// edges count whenever the module calls external functions; address-taken
// functions are always kept because an asynchronous event or stored
// pointer may invoke them).
func (g *Graph) UnreachableFunctions() []string {
	reach := g.Reachable(g.HasExternCalls)
	var dead []string
	for _, f := range g.Mod.Funcs {
		if f.Name == "main" {
			continue
		}
		if !reach[f.Name] && !g.Mod.AddressTaken[f.Name] {
			dead = append(dead, f.Name)
		}
	}
	sort.Strings(dead)
	return dead
}

// ------------------------------------------------------------ classification

// ClassifyParams are the thresholds of the paper's hazard analysis.
type ClassifyParams struct {
	// WeightThreshold marks sites with estimated execution count below it
	// as unsafe (the paper uses 10).
	WeightThreshold float64
	// StackBound is the byte bound on callee frames expanded into a
	// recursive path.
	StackBound int
}

// DefaultClassifyParams mirrors the paper's settings.
func DefaultClassifyParams() ClassifyParams {
	return ClassifyParams{WeightThreshold: 10, StackBound: 4096}
}

// Classify assigns each real arc a SiteClass under the given thresholds.
func (g *Graph) Classify(p ClassifyParams) map[*Arc]SiteClass {
	out := make(map[*Arc]SiteClass, len(g.Arcs))
	for _, a := range g.Arcs {
		out[a] = g.classifyArc(a, p)
	}
	return out
}

func (g *Graph) classifyArc(a *Arc, p ClassifyParams) SiteClass {
	switch {
	case a.Callee == g.External:
		return ClassExternal
	case a.ViaPointer || a.Callee == g.Pointer:
		return ClassPointer
	}
	// Hazards: simple recursion (never expanded), a callee on a recursive
	// path whose frame exceeds the stack bound, or a cold site.
	if a.Caller == a.Callee {
		return ClassUnsafe
	}
	if g.Recursive(a.Callee) && a.Callee.Fn.FrameSize > p.StackBound {
		return ClassUnsafe
	}
	if a.Weight < p.WeightThreshold {
		return ClassUnsafe
	}
	return ClassSafe
}

// ClassCounts aggregates a classification into static counts and
// dynamic (weight) totals per class.
type ClassCounts struct {
	Static  [4]int
	Dynamic [4]float64
}

// Count tallies classification results.
func Count(classes map[*Arc]SiteClass) ClassCounts {
	var cc ClassCounts
	for a, cl := range classes {
		cc.Static[cl]++
		cc.Dynamic[cl] += a.Weight
	}
	return cc
}

// TotalStatic is the total number of static call sites.
func (cc ClassCounts) TotalStatic() int {
	return cc.Static[0] + cc.Static[1] + cc.Static[2] + cc.Static[3]
}

// TotalDynamic is the total dynamic call count.
func (cc ClassCounts) TotalDynamic() float64 {
	return cc.Dynamic[0] + cc.Dynamic[1] + cc.Dynamic[2] + cc.Dynamic[3]
}

// ------------------------------------------------------------------ output

// Dot renders the graph in Graphviz dot format (weights as labels;
// synthetic arcs dashed).
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph callgraph {\n  rankdir=LR;\n")
	for _, n := range g.allNodes() {
		shape := "box"
		if n.IsSpecial() {
			shape = "ellipse"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s,label=\"%s\\n%.0f\"];\n", n.Name, shape, n.Name, n.Weight)
	}
	emit := func(a *Arc) {
		style := ""
		if a.Synthetic {
			style = ",style=dashed"
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%.0f\"%s];\n", a.Caller.Name, a.Callee.Name, a.Weight, style)
	}
	for _, n := range g.allNodes() {
		for _, a := range n.Out {
			emit(a)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String summarizes the graph.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "call graph: %d functions, %d static call sites (extern calls: %v)\n",
		len(g.Nodes), len(g.Arcs), g.HasExternCalls)
	for _, n := range g.allNodes() {
		if n.IsSpecial() {
			continue
		}
		fmt.Fprintf(&sb, "  %-20s weight=%-10.0f arcs-out=%d\n", n.Name, n.Weight, len(n.Out))
	}
	return sb.String()
}
