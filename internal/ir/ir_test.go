package ir

import (
	"strings"
	"testing"
)

// tinyFunc builds: f(x) { if (x) return x+1; return 0; } over slots/regs.
func tinyFunc(name string) *Func {
	f := &Func{Name: name, ReturnsValue: true}
	f.AddSlot("x", 8, 8, true)
	f.NumParams = 1
	l := f.NewLabel()
	r0, r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.Emit(Instr{Op: OpAddrL, Dst: r0, A: C(0)})
	f.Emit(Instr{Op: OpLoad, Dst: r1, A: R(r0), Size: 8})
	f.Emit(Instr{Op: OpBr, A: R(r1), Label: l})
	f.Emit(Instr{Op: OpConst, Dst: r2, A: C(0)})
	f.Emit(Instr{Op: OpRet, A: R(r2)})
	f.Emit(Instr{Op: OpLabel, Label: l})
	f.Emit(Instr{Op: OpConst, Dst: r3, A: C(1)})
	rsum := f.NewReg()
	f.Emit(Instr{Op: OpAdd, Dst: rsum, A: R(r1), B: R(r3)})
	f.Emit(Instr{Op: OpRet, A: R(rsum)})
	return f
}

func tinyModule() *Module {
	m := NewModule("tiny")
	f := tinyFunc("f")
	m.AddFunc(f)
	mn := &Func{Name: "main", ReturnsValue: true}
	r := mn.NewReg()
	d := mn.NewReg()
	mn.Emit(Instr{Op: OpConst, Dst: r, A: C(5)})
	mn.Emit(Instr{Op: OpCall, Dst: d, Sym: "f", Args: []Value{R(r)}})
	mn.Emit(Instr{Op: OpRet, A: R(d)})
	m.AddFunc(mn)
	m.AssignCallIDs()
	return m
}

func TestCodeSizeExcludesLabels(t *testing.T) {
	f := tinyFunc("f")
	if got := f.CodeSize(); got != 8 {
		t.Errorf("CodeSize = %d, want 8 (9 instrs minus 1 label)", got)
	}
}

func TestSlotLayout(t *testing.T) {
	f := &Func{Name: "g"}
	a := f.AddSlot("c", 1, 1, false)
	b := f.AddSlot("n", 8, 8, false)
	c := f.AddSlot("d", 1, 1, false)
	if f.Slots[a].Offset != 0 || f.Slots[b].Offset != 8 || f.Slots[c].Offset != 16 {
		t.Errorf("offsets = %d,%d,%d; want 0,8,16",
			f.Slots[a].Offset, f.Slots[b].Offset, f.Slots[c].Offset)
	}
	if f.FrameSize != 17 {
		t.Errorf("frame = %d, want 17", f.FrameSize)
	}
}

func TestVerifyAcceptsValidModule(t *testing.T) {
	if err := tinyModule().Verify(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	corrupt := []struct {
		name  string
		mut   func(m *Module)
		fragz string
	}{
		{"undefined label", func(m *Module) {
			f := m.Func("f")
			f.Code[2].Label = 99
		}, "undefined label"},
		{"bad register", func(m *Module) {
			f := m.Func("f")
			f.Code[1].A = R(Reg(1000))
		}, "out of range"},
		{"unknown callee", func(m *Module) {
			f := m.Func("main")
			f.Code[1].Sym = "ghost"
		}, "unknown function"},
		{"missing call id", func(m *Module) {
			f := m.Func("main")
			f.Code[1].CallID = 0
		}, "no id"},
		{"bad access size", func(m *Module) {
			f := m.Func("f")
			f.Code[1].Size = 3
		}, "invalid access size"},
		{"bad slot", func(m *Module) {
			f := m.Func("f")
			f.Code[0].A = C(42)
		}, "invalid slot"},
		{"no return", func(m *Module) {
			f := m.Func("main")
			for i := range f.Code {
				if f.Code[i].Op == OpRet {
					f.Code[i] = Instr{Op: OpNop}
				}
			}
		}, "no return"},
	}
	for _, c := range corrupt {
		m := tinyModule()
		c.mut(m)
		err := m.Verify()
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.fragz) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.fragz)
		}
	}
}

func TestVerifyDuplicateCallIDs(t *testing.T) {
	m := tinyModule()
	mn := m.Func("main")
	// Duplicate the call instruction with the same id.
	dup := mn.Code[1]
	dup.Args = append([]Value(nil), dup.Args...)
	mn.Code = append(mn.Code[:2], append([]Instr{dup}, mn.Code[2:]...)...)
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "reused") {
		t.Errorf("duplicate call id not detected: %v", err)
	}
}

func TestAssignCallIDsFreshAndStable(t *testing.T) {
	m := tinyModule()
	mn := m.Func("main")
	orig := mn.Code[1].CallID
	// Add a new call with id 0; reassignment must not disturb orig.
	dup := mn.Code[1]
	dup.CallID = 0
	dup.Args = append([]Value(nil), dup.Args...)
	mn.Code = append(mn.Code, dup)
	m.AssignCallIDs()
	if mn.Code[1].CallID != orig {
		t.Errorf("existing id changed: %d -> %d", orig, mn.Code[1].CallID)
	}
	newID := mn.Code[len(mn.Code)-1].CallID
	if newID == 0 || newID == orig {
		t.Errorf("new site id = %d, want fresh nonzero", newID)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := tinyModule()
	m.AddGlobal(&Global{Name: "g", Size: 8, Align: 8, Init: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	cl := m.Clone()

	// Mutate the clone deeply.
	cl.Func("f").Code[0].Op = OpNop
	cl.Func("f").Slots[0].Name = "mutated"
	cl.Global("g").Init[0] = 99
	cl.AddressTaken["f"] = true

	if m.Func("f").Code[0].Op == OpNop {
		t.Error("clone shares code with original")
	}
	if m.Func("f").Slots[0].Name == "mutated" {
		t.Error("clone shares slots with original")
	}
	if m.Global("g").Init[0] == 99 {
		t.Error("clone shares global init data")
	}
	if m.AddressTaken["f"] {
		t.Error("clone shares address-taken map")
	}
}

func TestRemoveFunc(t *testing.T) {
	m := tinyModule()
	m.RemoveFunc("f")
	if m.Func("f") != nil || len(m.Funcs) != 1 {
		t.Error("RemoveFunc left the function behind")
	}
	// Verify should now fail: main calls the removed f.
	if err := m.Verify(); err == nil {
		t.Error("dangling call not detected after removal")
	}
}

func TestLabelIndex(t *testing.T) {
	f := tinyFunc("f")
	idx := f.LabelIndex()
	if len(idx) != 1 {
		t.Fatalf("label index = %v", idx)
	}
	for l, i := range idx {
		if f.Code[i].Op != OpLabel || f.Code[i].Label != l {
			t.Errorf("index entry L%d -> %d is wrong", l, i)
		}
	}
}

func TestModuleStringAndInstrString(t *testing.T) {
	m := tinyModule()
	s := m.String()
	for _, frag := range []string{"func f", "func main", "call f", "ret", "br"} {
		if !strings.Contains(s, frag) {
			t.Errorf("module dump missing %q:\n%s", frag, s)
		}
	}
}

func TestHasExternCalls(t *testing.T) {
	m := tinyModule()
	if m.HasExternCalls() {
		t.Error("module without externs reports extern calls")
	}
	m.AddExtern(Extern{Name: "printf", NumParams: 1, Variadic: true})
	mn := m.Func("main")
	call := Instr{Op: OpCall, Dst: NoReg, Sym: "printf", Args: nil}
	mn.Code = append([]Instr{call}, mn.Code...)
	m.AssignCallIDs()
	if !m.HasExternCalls() {
		t.Error("extern call not detected")
	}
}
