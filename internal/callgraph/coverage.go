package callgraph

import (
	"sort"

	"inlinec/internal/ir"
)

// Coverage planning: choose a minimal subset of profiling counters such
// that every node and arc weight of the call graph is recoverable by flow
// conservation, in the spirit of Knuth's spanning-tree counter placement
// and its modern treatment in "Minimum Coverage Instrumentation".
//
// The conservation law available to a call-graph profiler is callee-side
// only: for every callee entity n (user function or extern),
//
//	entries(n) = Σ cnt(s) over direct sites s targeting n
//	           + ptrEntries(n)                    (calls through pointers)
//	           + 1 if n is the root of the run    (entered without an arc)
//
// Unlike basic-block flow graphs there is no caller-side counterpart (a
// function body may call any subset of its sites per invocation), so the
// equations form a bipartite system in which each direct-call counter
// appears in exactly one equation and pointer-entry counters appear in
// none. Two consequences shape the planner: at most one counter per
// equation can be elided (it is the single unknown, solved directly — no
// leaf-peeling propagation is ever needed), and pointer-entry counters can
// never be elided. Eliding every entry counter is therefore a minimum
// coverage plan: it removes exactly one counter per equation, the maximum
// the system permits.

// CoverageSite describes one static call site as the planner sees it.
type CoverageSite struct {
	// ID is the call-site id (ir.Instr.CallID).
	ID int
	// Callee is the direct callee entity name; "" marks a call through a
	// pointer, whose counter is never elidable.
	Callee string
}

// ReconStep solves one conservation equation at profile-finalize time.
type ReconStep struct {
	// Entity is the callee the equation belongs to.
	Entity string
	// SolveSite is the elided direct site id to solve for, or -1 when the
	// entity's entry counter is the unknown.
	SolveSite int
	// Sites lists every direct in-site id of Entity (including SolveSite
	// when a site is the unknown).
	Sites []int
	// Root marks the run's root entity, which receives one entry per run
	// that no call arc accounts for.
	Root bool
}

// CoveragePlan is the planner's output: which counters to keep and how to
// reconstruct the elided ones.
type CoveragePlan struct {
	// SiteCounted reports, per direct site id, whether the site's counter
	// is instrumented. Pointer sites are absent (always instrumented, as
	// ptr-entry counters on the resolved target).
	SiteCounted map[int]bool
	// EntryCounted reports, per entity, whether the entity's entry counter
	// is instrumented.
	EntryCounted map[string]bool
	// Steps are the reconstruction steps, one per elided counter. The
	// system is bipartite, so steps are independent and order-free.
	Steps []ReconStep
	// Elided and Total count counters dropped vs. the full-instrumentation
	// baseline (entries + direct sites + pointer-entry counters).
	Elided, Total int
}

// ElideEntry and KeepAll are sentinel returns for NewPlan's chooser.
const (
	ElideEntry = -1
	KeepAll    = -2
)

// NewPlan builds a coverage plan. entities lists every callee entity in
// deterministic order; root names the entity entered once per run without
// a call arc (may be empty). choose picks, per entity, the counter to
// elide from its equation: a direct in-site id, ElideEntry for the entry
// counter, or KeepAll to instrument everything. Because each direct site
// appears in exactly one equation, any combination of per-entity choices
// is valid.
func NewPlan(entities []string, root string, sites []CoverageSite, choose func(entity string, inSites []int) int) *CoveragePlan {
	inSites := make(map[string][]int, len(entities))
	ptrSites := 0
	for _, s := range sites {
		if s.Callee == "" {
			ptrSites++
			continue
		}
		inSites[s.Callee] = append(inSites[s.Callee], s.ID)
	}
	p := &CoveragePlan{
		SiteCounted:  make(map[int]bool),
		EntryCounted: make(map[string]bool, len(entities)),
	}
	for _, s := range sites {
		if s.Callee != "" {
			p.SiteCounted[s.ID] = true
		}
	}
	for _, e := range entities {
		p.EntryCounted[e] = true
		p.Total++ // the entity's entry counter
	}
	p.Total += len(p.SiteCounted) + ptrSites

	for _, e := range entities {
		in := inSites[e]
		sort.Ints(in)
		pick := choose(e, in)
		switch {
		case pick == KeepAll:
			continue
		case pick == ElideEntry:
			p.EntryCounted[e] = false
		default:
			if !p.SiteCounted[pick] {
				continue // not a direct in-site of this entity: keep all
			}
			ok := false
			for _, s := range in {
				if s == pick {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
			p.SiteCounted[pick] = false
		}
		p.Elided++
		p.Steps = append(p.Steps, ReconStep{
			Entity:    e,
			SolveSite: pick,
			Sites:     in,
			Root:      e == root,
		})
	}
	return p
}

// MinimalPlanFor elides every entry counter — the minimum coverage plan
// for the callee-side conservation system (see the package comment above:
// one elision per equation is the maximum possible).
func MinimalPlanFor(entities []string, root string, sites []CoverageSite) *CoveragePlan {
	return NewPlan(entities, root, sites, func(string, []int) int { return ElideEntry })
}

// ModuleCoverage extracts the planner's view of a module: every callee
// entity (module functions first, in module order, then direct-call extern
// names sorted) and every call site. The root is the interpreter's entry
// point, "main".
func ModuleCoverage(mod *ir.Module) (entities []string, root string, sites []CoverageSite) {
	seen := make(map[string]bool, len(mod.Funcs))
	for _, f := range mod.Funcs {
		entities = append(entities, f.Name)
		seen[f.Name] = true
	}
	var externs []string
	for _, f := range mod.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case ir.OpCall:
				sites = append(sites, CoverageSite{ID: in.CallID, Callee: in.Sym})
				if !seen[in.Sym] {
					seen[in.Sym] = true
					externs = append(externs, in.Sym)
				}
			case ir.OpCallPtr:
				sites = append(sites, CoverageSite{ID: in.CallID})
			}
		}
	}
	sort.Strings(externs)
	return append(entities, externs...), "main", sites
}

// MinimalPlan is the module-level minimum coverage plan the interpreter's
// minimal and sampled profile modes consume.
func MinimalPlan(mod *ir.Module) *CoveragePlan {
	entities, root, sites := ModuleCoverage(mod)
	return MinimalPlanFor(entities, root, sites)
}

// Counts holds raw observed counters for map-based reconstruction (the
// interpreter keeps dense arrays and applies Steps directly; this form
// serves tests and the reconstruction fuzzer).
type Counts struct {
	// Entries maps entity → entry count (only instrumented entities).
	Entries map[string]int64
	// Sites maps direct site id → count (only instrumented sites).
	Sites map[int]int64
	// PtrEntries maps entity → entries via pointer calls.
	PtrEntries map[string]int64
	// RootRuns is how many runs the counts cover (one uncounted root entry
	// each).
	RootRuns int64
}

// Reconstruct solves every step's equation in place, filling the elided
// counters in c. Exact whenever the observed counters are exact — which
// holds at every profile-visible stop point, including truncated runs
// (exit() before main returns): entry and site counters are bumped on the
// caller side of the transfer, so a run that stops mid-call leaves every
// equation balanced.
func (p *CoveragePlan) Reconstruct(c Counts) {
	for _, st := range p.Steps {
		known := c.PtrEntries[st.Entity]
		if st.Root {
			known += c.RootRuns
		}
		if st.SolveSite == ElideEntry {
			for _, s := range st.Sites {
				known += c.Sites[s]
			}
			c.Entries[st.Entity] = known
		} else {
			for _, s := range st.Sites {
				if s != st.SolveSite {
					known += c.Sites[s]
				}
			}
			c.Sites[st.SolveSite] = c.Entries[st.Entity] - known
		}
	}
}
