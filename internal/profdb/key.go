// Package profdb is the persistent profile database: a versioned on-disk
// store that accumulates profiles across runs, machines, and program
// versions, and serves deterministic weighted merges back to the compiler.
//
// The legacy ILPROF file keys arc weights by raw call-site ids, which are
// assigned sequentially over the whole module — one inserted function (or
// one new call) silently shifts every later id, so an old profile applied
// to an edited program misattributes weights without any error. profdb
// instead keys every site by a stable fingerprint: caller name, callee
// name, the per-caller ordinal among calls to that callee, and a hash of
// the source position. Raw ids never leave the process that profiled;
// they are remapped back from stable keys against the current module just
// before the weighted call graph is built, and keys that no longer
// resolve are reported as stale instead of being misapplied.
package profdb

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"

	"inlinec/internal/callgraph"
	"inlinec/internal/ir"
	"inlinec/internal/token"
)

// SiteKey is the stable identity of one static call site.
type SiteKey struct {
	// Caller is the containing function's name.
	Caller string
	// Callee is the callee's name, or the call graph's "###" summary name
	// for calls through pointers.
	Callee string
	// Ordinal is the 0-based index of this site among Caller's static
	// calls to Callee, in code order.
	Ordinal int
	// PosHash is a hash of the call's source position. It is not part of
	// the primary identity: a site whose (Caller, Callee, Ordinal) triple
	// still resolves but whose position changed is remapped as "moved"
	// rather than dropped, so pure reformatting doesn't discard data.
	PosHash uint32
}

// String renders the key in its on-disk field order.
func (k SiteKey) String() string {
	return fmt.Sprintf("%s %s %d %08x", k.Caller, k.Callee, k.Ordinal, k.PosHash)
}

// primary is the lookup identity of a key (everything but the position).
type primary struct {
	Caller  string
	Callee  string
	Ordinal int
}

// siteRef is the current module's view of one primary key.
type siteRef struct {
	id      int
	posHash uint32
}

// PosHash hashes a source position (FNV-32a over file:line:col).
func PosHash(p token.Pos) uint32 {
	h := fnv.New32a()
	h.Write([]byte(p.String()))
	return h.Sum32()
}

// KeyMap translates between a module's raw call-site ids and stable keys.
type KeyMap struct {
	byID      map[int]SiteKey
	byPrimary map[primary]siteRef
	funcs     map[string]bool
}

// ModuleKeys builds the key map for a module from the call graph's
// deterministic site enumeration.
func ModuleKeys(mod *ir.Module) *KeyMap {
	km := &KeyMap{
		byID:      make(map[int]SiteKey),
		byPrimary: make(map[primary]siteRef),
		funcs:     make(map[string]bool),
	}
	for _, s := range callgraph.StableSites(mod) {
		k := SiteKey{Caller: s.Caller, Callee: s.Callee, Ordinal: s.Ordinal, PosHash: PosHash(s.Pos)}
		km.byID[s.ID] = k
		km.byPrimary[primary{k.Caller, k.Callee, k.Ordinal}] = siteRef{id: s.ID, posHash: k.PosHash}
	}
	for _, f := range mod.Funcs {
		km.funcs[f.Name] = true
	}
	// Extern entries appear in FuncCounts too (the profiler counts calls
	// into $$$); they are name-stable, so they resolve like user functions.
	for _, e := range mod.Externs {
		km.funcs[e.Name] = true
	}
	return km
}

// Key returns the stable key of a raw call-site id.
func (km *KeyMap) Key(id int) (SiteKey, bool) {
	k, ok := km.byID[id]
	return k, ok
}

// Resolve maps a stable key to the current module's raw id. exact reports
// whether the position hash also matched (false means the site moved but
// its (caller, callee, ordinal) identity survived).
func (km *KeyMap) Resolve(k SiteKey) (id int, exact, ok bool) {
	ref, ok := km.byPrimary[primary{k.Caller, k.Callee, k.Ordinal}]
	if !ok {
		return 0, false, false
	}
	return ref.id, ref.posHash == k.PosHash, true
}

// HasFunc reports whether the current module defines the function.
func (km *KeyMap) HasFunc(name string) bool { return km.funcs[name] }

// Len returns the number of call sites in the map.
func (km *KeyMap) Len() int { return len(km.byID) }

// ModuleFingerprint identifies one program version: a truncated SHA-256
// of the module's deterministic IL rendering. Any IL change — including
// the id shifts that motivate stable keys — yields a new fingerprint, so
// the database can tell exactly which records were collected on the
// program now being compiled.
func ModuleFingerprint(mod *ir.Module) string {
	sum := sha256.Sum256([]byte(mod.String()))
	return hex.EncodeToString(sum[:8])
}
