// Package icache implements a set-associative instruction-cache simulator,
// reproducing the study the paper points to in its conclusion ("we have
// obtained good instruction cache performance after inline expansion...
// it greatly reduces the mapping conflict in instruction caches with
// small set-associativities", citing Hwu & Chang, ISCA 1989). Functions
// are laid out sequentially in instruction memory, one 4-byte word per IL
// instruction; the simulator consumes the dynamic instruction trace the
// interpreter produces and reports hit/miss statistics.
package icache

import (
	"fmt"
	"strconv"

	"inlinec/internal/ir"
	"inlinec/internal/obs"
)

// WordSize is the encoded size of one IL instruction in bytes.
const WordSize = 4

// Config describes a cache geometry.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the block size in bytes.
	LineSize int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
}

// DefaultConfig is a small direct-mapped cache of the era studied by the
// companion ISCA paper: 2 KiB, 16-byte lines, direct mapped.
func DefaultConfig() Config { return Config{Size: 2048, LineSize: 16, Assoc: 1} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("icache: size, line size, and associativity must be positive")
	}
	if c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("icache: size %d not divisible by line*assoc %d", c.Size, c.LineSize*c.Assoc)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("icache: line size %d must be a power of two", c.LineSize)
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// RecordTo publishes the accumulated counts into an obs registry,
// labeled by cache geometry so that configuration sweeps stay
// distinguishable on one registry.
func (s Stats) RecordTo(reg *obs.Registry, cfg Config) {
	labels := []string{
		"size", strconv.Itoa(cfg.Size),
		"line", strconv.Itoa(cfg.LineSize),
		"assoc", strconv.Itoa(cfg.Assoc),
	}
	reg.Counter("icache_accesses_total",
		"Simulated instruction fetches, by cache geometry.", labels...).Add(s.Accesses)
	reg.Counter("icache_misses_total",
		"Simulated instruction-cache misses, by cache geometry.", labels...).Add(s.Misses)
	reg.Gauge("icache_miss_rate",
		"Miss rate of the most recent simulation, by cache geometry.", labels...).Set(s.MissRate())
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg   Config
	sets  int
	tags  [][]int64 // per set, most recently used last
	Stats Stats
}

// New builds a cache; the configuration must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	c := &Cache{cfg: cfg, sets: sets, tags: make([][]int64, sets)}
	return c, nil
}

// Access simulates one instruction fetch at the byte address, returning
// true on a hit.
func (c *Cache) Access(addr int64) bool {
	c.Stats.Accesses++
	line := addr / int64(c.cfg.LineSize)
	set := int(line % int64(c.sets))
	tag := line / int64(c.sets)
	ways := c.tags[set]
	for i, t := range ways {
		if t == tag {
			// Hit: move to MRU position.
			copy(ways[i:], ways[i+1:])
			ways[len(ways)-1] = tag
			return true
		}
	}
	c.Stats.Misses++
	if len(ways) >= c.cfg.Assoc {
		copy(ways, ways[1:]) // evict LRU (front)
		ways[len(ways)-1] = tag
	} else {
		c.tags[set] = append(ways, tag)
	}
	return false
}

// Layout assigns each function a base address in instruction memory,
// functions laid end to end in module order.
type Layout struct {
	base map[*ir.Func]int64
	// TotalWords is the laid-out program size in instruction words.
	TotalWords int64
}

// NewLayout computes the address map for a module.
func NewLayout(mod *ir.Module) *Layout {
	l := &Layout{base: make(map[*ir.Func]int64, len(mod.Funcs))}
	addr := int64(0)
	for _, f := range mod.Funcs {
		l.base[f] = addr
		addr += int64(len(f.Code))
	}
	l.TotalWords = addr
	return l
}

// Addr returns the byte address of instruction pc within f.
func (l *Layout) Addr(f *ir.Func, pc int) int64 {
	return (l.base[f] + int64(pc)) * WordSize
}

// Tracer adapts a cache and layout into the interpreter's instruction
// trace callback.
type Tracer struct {
	Cache  *Cache
	Layout *Layout
}

// Step records one executed instruction.
func (t *Tracer) Step(f *ir.Func, pc int) {
	t.Cache.Access(t.Layout.Addr(f, pc))
}
