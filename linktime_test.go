package inlinec

import (
	"strings"
	"testing"
)

// Separate compilation + link-time inlining — the section 2.1 setting.

const libSrc = `
int hot_calls;
int scale(int x) { hot_calls++; return x * 3; }
int offset(int x) { return scale(x) + 7; }
static int helper(int x) { return x ^ 0x55; }
int obscure(int x) { return helper(x); }
`

const appSrc = `
extern int printf(char *fmt, ...);
extern int scale(int x);
extern int offset(int x);
extern int obscure(int x);
extern int hot_calls;
static int helper(int x) { return x + 1000; }
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 200; i++) acc += offset(i) + scale(i);
    acc += obscure(acc) + helper(1);
    printf("%d %d\n", acc, hot_calls);
    return 0;
}
`

func linkTestProgram(t *testing.T) *Program {
	t.Helper()
	lib, err := CompileUnit("lib.c", libSrc)
	if err != nil {
		t.Fatalf("compile lib: %v", err)
	}
	app, err := CompileUnit("app.c", appSrc)
	if err != nil {
		t.Fatalf("compile app: %v", err)
	}
	p, err := LinkUnits("prog", lib, app)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

func TestLinkTimeInlining(t *testing.T) {
	p := linkTestProgram(t)
	before, err := p.Run(Input{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	prof, err := p.ProfileInputs(Input{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	params := DefaultParams()
	params.SizeLimitFactor = 3.0
	res, err := p.Inline(prof, params)
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	after, err := p.Run(Input{})
	if err != nil {
		t.Fatalf("run after: %v", err)
	}
	if before.Stdout != after.Stdout {
		t.Fatalf("link-time inlining changed output: %q -> %q", before.Stdout, after.Stdout)
	}

	// The whole point of link-time expansion: app's hot calls into lib
	// (scale, offset) are expandable because the bodies are now available.
	expandedCrossUnit := false
	for _, d := range res.Expanded {
		if d.Caller == "main" && (d.Callee == "scale" || d.Callee == "offset") {
			expandedCrossUnit = true
		}
	}
	if !expandedCrossUnit {
		t.Errorf("no cross-unit expansion happened: %+v", res.Expanded)
	}
	if before.Stats.Calls <= after.Stats.Calls {
		t.Errorf("calls %d -> %d; want decrease", before.Stats.Calls, after.Stats.Calls)
	}
}

func TestLinkTimeStaticsDistinct(t *testing.T) {
	p := linkTestProgram(t)
	// Both units define static helper(); the linked module must keep both
	// under qualified names, and the app must call its own (+1000 flavor).
	var libHelper, appHelper bool
	for _, f := range p.Module.Funcs {
		if strings.HasSuffix(f.Name, "$helper") {
			if strings.HasPrefix(f.Name, "lib") {
				libHelper = true
			}
			if strings.HasPrefix(f.Name, "app") {
				appHelper = true
			}
		}
	}
	if !libHelper || !appHelper {
		t.Fatalf("qualified statics missing (lib=%v app=%v)", libHelper, appHelper)
	}
	out, err := p.Run(Input{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// acc after loop: sum(offset(i)+scale(i)) = sum(3i+7+3i) = 6*sum(i)+200*7
	// = 6*19900 + 1400 = 120800; obscure(120800) = 120800^0x55 = 120757;
	// helper(1) = 1001 -> total 120800+120757+1001 = 242558; hot_calls 400.
	if out.Stdout != "242558 400\n" {
		t.Errorf("output = %q", out.Stdout)
	}
}

func TestLinkTimeUndefinedFunction(t *testing.T) {
	app, err := CompileUnit("app.c", `
extern int missing(int x);
int main() { return missing(1); }
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := LinkUnits("prog", app)
	if err != nil {
		// Also acceptable: rejected at link time.
		return
	}
	// missing stays in the extern table; running should fail because no
	// implementation exists.
	if _, err := p.Run(Input{}); err == nil {
		t.Error("call to undefined function did not fail")
	}
}
