package bench

import (
	"fmt"

	"inlinec"
)

// buildSuite constructs the twelve benchmarks with their deterministic
// input sets. Run counts mirror the paper's Table 1 (cccp 20, cmp 16,
// compress 20, eqn 20, espresso 20, grep 20, lex 4, make 20, tar 14,
// tee 20, wc 20, yacc 8); input sizes are scaled to interpreter speed.
func buildSuite() []*Benchmark {
	return []*Benchmark{
		cccpBench(), cmpBench(), compressBench(), eqnBench(),
		espressoBench(), grepBench(), lexBench(), makeBench(),
		tarBench(), teeBench(), wcBench(), yaccBench(),
		funcPtrsBench(),
	}
}

// funcPtrsBench is the guarded-expansion workload: a dispatch kernel
// whose hot call sites are all indirect (one dominant target) or
// oversized (hot entry region + cold tail), so plain inline expansion
// finds nothing and -partial-inline/-devirt-threshold do all the work.
// It is registered for -bench funcptrs but kept out of SuiteNames — the
// paper's twelve tables stay twelve.
func funcPtrsBench() *Benchmark {
	b := &Benchmark{
		Name:      "funcptrs",
		Source:    loadSource("funcptrs"),
		InputDesc: "byte streams through a skewed dispatch table",
	}
	r := newRng(1313)
	for i := 0; i < 12; i++ {
		b.Inputs = append(b.Inputs, inlinec.Input{Stdin: genBinary(r, 9000+r.intn(6000))})
	}
	return b
}

func cccpBench() *Benchmark {
	b := &Benchmark{
		Name:      "cccp",
		Source:    loadSource("cccp"),
		InputDesc: "C programs (100-3000 lines)",
	}
	r := newRng(101)
	for i := 0; i < 20; i++ {
		lines := 100 + r.intn(400)
		in := inlinec.Input{Stdin: []byte(genCSource(r, lines))}
		// A few runs exercise the cold option paths, as the paper's
		// methodology ("exercise as many program options as possible").
		switch i % 7 {
		case 2:
			in.Files = map[string][]byte{"opts": []byte("-DEXTRA=42\n-k\n")}
		case 5:
			in.Files = map[string][]byte{"opts": []byte("-c\n")}
		case 6:
			in.Files = map[string][]byte{"opts": []byte("-m\n-V\n")}
		}
		b.Inputs = append(b.Inputs, in)
	}
	return b
}

func cmpBench() *Benchmark {
	b := &Benchmark{
		Name:      "cmp",
		Source:    loadSource("cmp"),
		InputDesc: "similar/dissimilar text files",
	}
	r := newRng(202)
	modes := []string{"f", "l", "s"}
	for i := 0; i < 16; i++ {
		base := []byte(genText(r, 1500+r.intn(2000)))
		var other []byte
		if i%4 == 0 {
			other = append([]byte(nil), base...) // identical
		} else if i%4 == 1 {
			other = mutate(r, base, 1+r.intn(3)) // similar
		} else {
			other = []byte(genText(r, 1500+r.intn(2000))) // dissimilar
		}
		mode := modes[i%3]
		if mode == "l" && i%4 >= 2 {
			mode = "f" // avoid pathological -l output on dissimilar files
		}
		if i == 9 {
			mode = "p" // position-report mode, exercised once
		}
		if i == 13 {
			mode = "h" // histogram mode, exercised once
		}
		cmd := fmt.Sprintf("%s a.txt b.txt\n", mode)
		b.Inputs = append(b.Inputs, inlinec.Input{Files: map[string][]byte{
			"cmp.cmd": []byte(cmd),
			"a.txt":   base,
			"b.txt":   other,
		}})
	}
	return b
}

func compressBench() *Benchmark {
	b := &Benchmark{
		Name:      "compress",
		Source:    loadSource("compress"),
		InputDesc: "same as cccp",
	}
	r := newRng(303)
	for i := 0; i < 20; i++ {
		lines := 120 + r.intn(300)
		in := inlinec.Input{Stdin: []byte(genCSource(r, lines))}
		switch i % 6 {
		case 1:
			in.Files = map[string][]byte{"opts": []byte("v")}
		case 4:
			in.Files = map[string][]byte{"opts": []byte("vC")}
		case 5:
			in.Files = map[string][]byte{"opts": []byte("d")}
		case 3:
			in.Files = map[string][]byte{"opts": []byte("B")}
		}
		b.Inputs = append(b.Inputs, in)
	}
	return b
}

func eqnBench() *Benchmark {
	b := &Benchmark{
		Name:      "eqn",
		Source:    loadSource("eqn"),
		InputDesc: "papers with .EQ options",
	}
	r := newRng(404)
	for i := 0; i < 20; i++ {
		blocks := 30 + r.intn(60)
		in := inlinec.Input{Stdin: []byte(genEqnDoc(r, blocks))}
		if i%10 == 7 {
			in.Files = map[string][]byte{"opts": []byte("d")}
		}
		if i%10 == 3 {
			in.Files = map[string][]byte{"opts": []byte("cs")}
		}
		if i%10 == 9 {
			in.Files = map[string][]byte{"opts": []byte("w")}
		}
		b.Inputs = append(b.Inputs, in)
	}
	return b
}

func espressoBench() *Benchmark {
	b := &Benchmark{
		Name:      "espresso",
		Source:    loadSource("espresso"),
		InputDesc: "original espresso benchmarks (synthetic PLAs)",
	}
	r := newRng(505)
	for i := 0; i < 20; i++ {
		inputs := 6 + r.intn(5)
		terms := 40 + r.intn(120)
		in := inlinec.Input{Stdin: []byte(genTruthTable(r, inputs, terms))}
		switch i % 5 {
		case 2:
			in.Files = map[string][]byte{"opts": []byte("v")}
		case 4:
			in.Files = map[string][]byte{"opts": []byte("s")}
		case 1:
			in.Files = map[string][]byte{"opts": []byte("x")}
		}
		b.Inputs = append(b.Inputs, in)
	}
	return b
}

func grepBench() *Benchmark {
	b := &Benchmark{
		Name:      "grep",
		Source:    loadSource("grep"),
		InputDesc: "exercised .*^$ options",
	}
	r := newRng(606)
	patterns := []string{
		"the", "c.mpiler", "^the", "fox$", "in*line", "[gq]raph",
		"pro.*le", "^[a-f]", "lo*p", "[^aeiou]all",
	}
	for i := 0; i < 20; i++ {
		text := genText(r, 2500+r.intn(2500))
		pat := patterns[i%len(patterns)]
		files := map[string][]byte{"pattern": []byte(pat + "\n")}
		switch i % 6 {
		case 1:
			files["opts"] = []byte("n")
		case 3:
			files["opts"] = []byte("c")
		case 5:
			files["opts"] = []byte("v")
		}
		if i == 8 {
			files["patterns"] = []byte("the\nfox$\n[gq]raph\n")
		}
		if i == 14 {
			files["opts"] = []byte("B")
		}
		if i == 16 {
			files["opts"] = []byte("L")
		}
		b.Inputs = append(b.Inputs, inlinec.Input{
			Stdin: []byte(text),
			Files: files,
		})
	}
	return b
}

func lexBench() *Benchmark {
	b := &Benchmark{
		Name:      "lex",
		Source:    loadSource("lex"),
		InputDesc: "lexers for C, Lisp, awk, and pic (token specs + sources)",
	}
	r := newRng(707)
	for i := 0; i < 4; i++ {
		// Few runs, large inputs, matching the paper's lex workload shape.
		src := genCSource(r, 1200+r.intn(800))
		files := map[string][]byte{"lex.spec": []byte(genLexSpec(r))}
		if i == 3 {
			files["opts"] = []byte("h")
		}
		if i == 1 {
			files["opts"] = []byte("T")
		}

		b.Inputs = append(b.Inputs, inlinec.Input{
			Stdin: []byte(src),
			Files: files,
		})
	}
	return b
}

func makeBench() *Benchmark {
	b := &Benchmark{
		Name:      "make",
		Source:    loadSource("make"),
		InputDesc: "makefiles for cccp, compress, etc.",
	}
	r := newRng(808)
	for i := 0; i < 20; i++ {
		mk, ts := genMakefile(r, 30+r.intn(60))
		files := map[string][]byte{
			"makefile": []byte(mk),
			"mtimes":   []byte(ts),
		}
		switch i % 8 {
		case 3:
			files["opts"] = []byte("n")
		case 6:
			files["opts"] = []byte("d")
		case 1:
			files["opts"] = []byte("k")
		case 5:
			files["opts"] = []byte("c")
		}
		b.Inputs = append(b.Inputs, inlinec.Input{Files: files})
	}
	return b
}

// tarArchive builds archive bytes in the mini-tar on-disk format, so that
// extraction runs do not depend on a prior creation run.
func tarArchive(files map[string][]byte, names []string) []byte {
	var out []byte
	for _, name := range names {
		data := files[name]
		hdr := make([]byte, 48)
		copy(hdr, name)
		putNum := func(off, v int) {
			for i := 7; i >= 0; i-- {
				hdr[off+i] = byte('0' + v%10)
				v /= 10
			}
		}
		putNum(32, len(data))
		sum := 0
		for i := 0; i < 48; i++ {
			c := int(hdr[i])
			if i >= 40 && i < 48 {
				c = ' '
			}
			sum = (sum + c) & 0xffffff
		}
		putNum(40, sum)
		out = append(out, hdr...)
		out = append(out, data...)
	}
	return out
}

func tarBench() *Benchmark {
	b := &Benchmark{
		Name:      "tar",
		Source:    loadSource("tar"),
		InputDesc: "save/extract files",
	}
	r := newRng(909)
	for i := 0; i < 14; i++ {
		nfiles := 3 + r.intn(4)
		files := make(map[string][]byte)
		var names []string
		cmd := "c"
		for f := 0; f < nfiles; f++ {
			name := fmt.Sprintf("file%d.dat", f)
			files[name] = genBinary(r, 800+r.intn(2500))
			names = append(names, name)
			cmd += " " + name
		}
		if i%7 == 6 {
			// Listing run over a pre-built archive (cold mode).
			archive := tarArchive(files, names)
			for _, n := range names {
				delete(files, n)
			}
			files["tar.cmd"] = []byte("tv\n")
			files["archive"] = archive
		} else if i == 4 {
			// Verify run (cold checksum walk).
			archive := tarArchive(files, names)
			for _, n := range names {
				delete(files, n)
			}
			files["tar.cmd"] = []byte("V\n")
			files["archive"] = archive
		} else if i%2 == 0 {
			// Create run.
			files["tar.cmd"] = []byte(cmd + "\n")
		} else {
			// Extract run over a pre-built archive.
			archive := tarArchive(files, names)
			for _, n := range names {
				delete(files, n)
			}
			files["tar.cmd"] = []byte("x\n")
			files["archive"] = archive
		}
		b.Inputs = append(b.Inputs, inlinec.Input{Files: files})
	}
	return b
}

func teeBench() *Benchmark {
	b := &Benchmark{
		Name:      "tee",
		Source:    loadSource("tee"),
		InputDesc: "same as cccp",
	}
	r := newRng(1010)
	for i := 0; i < 20; i++ {
		b.Inputs = append(b.Inputs, inlinec.Input{Stdin: []byte(genCSource(r, 60+r.intn(120)))})
	}
	return b
}

func wcBench() *Benchmark {
	b := &Benchmark{
		Name:      "wc",
		Source:    loadSource("wc"),
		InputDesc: "same as cccp",
	}
	r := newRng(1111)
	for i := 0; i < 20; i++ {
		b.Inputs = append(b.Inputs, inlinec.Input{Stdin: []byte(genCSource(r, 200+r.intn(500)))})
	}
	return b
}

func yaccBench() *Benchmark {
	b := &Benchmark{
		Name:      "yacc",
		Source:    loadSource("yacc"),
		InputDesc: "grammar for a C compiler, etc. (expression grammar + sentences)",
	}
	r := newRng(1212)
	for i := 0; i < 8; i++ {
		grammar, sentences := genGrammar(r, 400+r.intn(400))
		files := map[string][]byte{"grammar": []byte(grammar)}
		switch i {
		case 2:
			files["opts"] = []byte("c")
		case 5:
			files["opts"] = []byte("Sc")
		case 7:
			files["opts"] = []byte("p")
		}
		b.Inputs = append(b.Inputs, inlinec.Input{
			Stdin: []byte(sentences),
			Files: files,
		})
	}
	return b
}
